// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations for the design choices called out in
// DESIGN.md. Each benchmark regenerates its artifact and reports the key
// measured quantities via b.ReportMetric; run with -v (or read the bench
// log) to see the rendered tables.
//
// The corpus scale is controlled by TWOSMART_BENCH_SCALE (fraction of the
// paper's 3621-application corpus; default 0.15). EXPERIMENTS.md records a
// full run next to the paper's numbers.
package twosmart_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"twosmart"
	"twosmart/internal/baseline"
	"twosmart/internal/core"
	"twosmart/internal/corpus"
	"twosmart/internal/dataset"
	"twosmart/internal/experiments"
	"twosmart/internal/hpc"
	"twosmart/internal/microarch"
	"twosmart/internal/ml"
	"twosmart/internal/ml/bayes"
	"twosmart/internal/ml/ensemble"
	"twosmart/internal/ml/linear"
	"twosmart/internal/ml/mltest"
	"twosmart/internal/ml/nn"
	"twosmart/internal/ml/rules"
	"twosmart/internal/ml/tree"
	"twosmart/internal/monitor"
	"twosmart/internal/sandbox"
	"twosmart/internal/workload"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
	benchErr  error
)

func benchScale() float64 {
	if s := os.Getenv("TWOSMART_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.15
}

// benchContext collects the shared benchmark corpus once per process.
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx, benchErr = experiments.NewContext(experiments.Options{
			Corpus: corpus.Config{
				Scale:      benchScale(),
				Seed:       42,
				Omniscient: true,
			},
			Seed: 42,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCtx
}

// BenchmarkFig1Traces regenerates Fig 1: branch-instruction and branch-miss
// traces of a benign versus a malware application.
func BenchmarkFig1Traces(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.Fig1Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ctx.Fig1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MalwareMeanBranch/res.BenignMeanBranch, "branch_ratio")
	b.ReportMetric(res.MalwareMeanMiss/res.BenignMeanMiss, "miss_ratio")
	b.Logf("\n%s", res)
}

// BenchmarkTable1BestClassifier regenerates Table I: the best classifier
// per malware class at 16, 8 and 4 HPCs.
func BenchmarkTable1BestClassifier(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.Table1Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ctx.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.DistinctWinners()), "distinct_winners")
	b.Logf("\n%s", res)
}

// BenchmarkTable2FeatureReduction regenerates Table II: the correlation +
// PCA feature-reduction pipeline output.
func BenchmarkTable2FeatureReduction(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.Table2Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ctx.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	// How many of the paper's Common-4 events our data-driven pipeline
	// also keeps in its correlation top-16.
	kept := 0
	for _, want := range res.PaperCommon {
		for _, got := range res.CorrelationTop16 {
			if want == got {
				kept++
				break
			}
		}
	}
	b.ReportMetric(float64(kept), "paper_common_in_top16")
	b.Logf("\n%s", res)
}

// BenchmarkFig2Pipeline regenerates Fig 2: the 11-batch multiplexed
// data-collection pipeline statistics.
func BenchmarkFig2Pipeline(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.Fig2Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ctx.Fig2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Batches), "batches")
	b.ReportMetric(float64(res.ContainersCreated), "containers")
	b.Logf("\n%s", res)
}

// BenchmarkFig3TwoStage regenerates the end-to-end two-stage pipeline
// evaluation (Fig 3).
func BenchmarkFig3TwoStage(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.Fig3Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ctx.Fig3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Stage1Accuracy4, "stage1_acc4_pct")
	b.ReportMetric(100*res.Stage1Accuracy16, "stage1_acc16_pct")
	b.ReportMetric(100*res.EndToEndF, "end_to_end_F_pct")
	b.Logf("\n%s", res)
}

// BenchmarkTable3FMeasure regenerates Table III: F-measure of every
// specialized detector with and without boosting.
func BenchmarkTable3FMeasure(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.Table3Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ctx.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	var n int
	for _, byKind := range res.F {
		for _, byConfig := range byKind {
			sum += byConfig["4-Boosted"]
			n++
		}
	}
	b.ReportMetric(sum/float64(n), "mean_F_4boosted_pct")
	b.Logf("\n%s", res)
}

// BenchmarkFig4Performance regenerates Fig 4: detection performance
// (F x AUC) across classifiers, classes and HPC configurations.
func BenchmarkFig4Performance(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.Fig4Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ctx.Fig4()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, config := range experiments.SweepConfigs {
		b.ReportMetric(res.Average(config), "avg_perf_"+config+"_pct")
	}
	b.Logf("\n%s", res)
}

// BenchmarkTable4Improvement regenerates Table IV: the boosted-4HPC
// improvement over the 8- and 4-HPC unboosted detectors.
func BenchmarkTable4Improvement(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.Table4Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ctx.Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	best := res.ImprovementOver8[core.J48]
	for _, k := range core.Kinds() {
		if res.ImprovementOver8[k] > best {
			best = res.ImprovementOver8[k]
		}
	}
	b.ReportMetric(best, "best_improvement_over8_pct")
	b.Logf("\n%s", res)
}

// BenchmarkFig5aStage1VsTwoStage regenerates Fig 5a: stage-1 MLR alone
// versus the two-stage detector, per class.
func BenchmarkFig5aStage1VsTwoStage(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.Fig5aResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ctx.Fig5a()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.AverageImprovement(), "avg_improvement_points")
	b.Logf("\n%s", res)
}

// BenchmarkFig5bVsSingleStage regenerates Fig 5b: 2SMaRT against the
// single-stage state-of-the-art HMD with 4 and 8 HPCs.
func BenchmarkFig5bVsSingleStage(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.Fig5bResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ctx.Fig5b()
		if err != nil {
			b.Fatal(err)
		}
	}
	u4, b4 := res.AverageGainOverSingleStage(4)
	u8, b8 := res.AverageGainOverSingleStage(8)
	b.ReportMetric(u4, "gain_over_ss4_points")
	b.ReportMetric(b4, "gain_over_ss4_boosted_points")
	b.ReportMetric(u8, "gain_over_ss8_points")
	b.ReportMetric(b8, "gain_over_ss8_boosted_points")
	b.Logf("\n%s", res)
}

// BenchmarkTable5Hardware regenerates Table V: hardware cost of every
// classifier at 8, 4 and boosted-4 HPC configurations.
func BenchmarkTable5Hardware(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.Table5Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ctx.Table5()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Latency[core.MLP]["4-Boosted"], "mlp_boosted_latency_cycles")
	b.ReportMetric(res.Area[core.J48]["4-Boosted"], "j48_boosted_area_pct")
	b.Logf("\n%s", res)
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationMultiplexing measures the run-time cost of the paper's
// methodological constraint: collecting all 44 events takes 11 multiplexed
// runs, whereas a run-time detector needs a single 4-event run.
func BenchmarkAblationMultiplexing(b *testing.B) {
	arch := microarch.DefaultConfig()
	prog := workload.Generate(workload.Virus, 0, workload.Options{Budget: 60000, Seed: 1})
	opts := sandbox.ProfileOptions{FreqHz: corpus.DefaultFreqHz, Period: 10 * time.Millisecond}

	b.Run("single-run-4HPC", func(b *testing.B) {
		mgr := sandbox.NewManager(arch)
		events := make([]hpc.Event, 0, 4)
		for _, name := range twosmart.CommonFeatures() {
			e, _ := hpc.EventByName(name)
			events = append(events, e)
		}
		for i := 0; i < b.N; i++ {
			if _, err := mgr.RunIsolated(prog.MustStream(), events, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("multiplexed-44-events", func(b *testing.B) {
		mgr := sandbox.NewManager(arch)
		groups := hpc.MultiplexSchedule(hpc.AllEvents())
		for i := 0; i < b.N; i++ {
			for _, g := range groups {
				if _, err := mgr.RunIsolated(prog.MustStream(), []hpc.Event(g), opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationBoostRounds sweeps the AdaBoost round count for the
// 4-HPC J48 Virus detector, reporting held-out F per setting.
func BenchmarkAblationBoostRounds(b *testing.B) {
	ctx := benchContext(b)
	trainBin := mustBinary(b, ctx.Train, workload.Virus)
	testBin := mustBinary(b, ctx.Test, workload.Virus)
	for _, rounds := range []int{1, 5, 10, 20} {
		b.Run(fmt.Sprintf("rounds-%d", rounds), func(b *testing.B) {
			var ev ml.BinaryEval
			for i := 0; i < b.N; i++ {
				tr := &ensemble.AdaBoostTrainer{Base: core.NewTrainer(core.J48, 1), Rounds: rounds, Seed: 1}
				model, err := tr.Train(trainBin)
				if err != nil {
					b.Fatal(err)
				}
				ev, err = ml.EvaluateBinary(model, testBin)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*ev.F1, "F_pct")
			b.ReportMetric(100*ev.Performance, "perf_pct")
		})
	}
}

// BenchmarkAblationNoise injects multiplicative Gaussian measurement noise
// into the test features, quantifying the detector's sensitivity to counter
// non-determinism (a known HPC measurement hazard).
func BenchmarkAblationNoise(b *testing.B) {
	ctx := benchContext(b)
	trainBin := mustBinary(b, ctx.Train, workload.Trojan)
	model, err := core.NewTrainer(core.J48, 1).Train(trainBin)
	if err != nil {
		b.Fatal(err)
	}
	for _, sigma := range []float64{0, 0.05, 0.15, 0.30} {
		b.Run(fmt.Sprintf("sigma-%.2f", sigma), func(b *testing.B) {
			var ev ml.BinaryEval
			for i := 0; i < b.N; i++ {
				noisy := perturb(mustBinary(b, ctx.Test, workload.Trojan), sigma, 7)
				ev, err = ml.EvaluateBinary(model, noisy)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*ev.F1, "F_pct")
		})
	}
}

// BenchmarkAblationDropout tests the paper's overfitting remark: MLP with
// 16 HPC features overfits, and "techniques such as dropout can be
// employed". Compares plain and dropout MLPs on the 16-feature virus task.
func BenchmarkAblationDropout(b *testing.B) {
	ctx := benchContext(b)
	red, err := ctx.Table2()
	if err != nil {
		b.Fatal(err)
	}
	feats, err := red.ClassFeatureSet(workload.Virus, 16)
	if err != nil {
		b.Fatal(err)
	}
	prep := func(d *dataset.Dataset) *dataset.Dataset {
		bin, err := core.BinaryTask(d, workload.Virus)
		if err != nil {
			b.Fatal(err)
		}
		bin, err = bin.SelectByName(feats)
		if err != nil {
			b.Fatal(err)
		}
		return bin
	}
	trainBin, testBin := prep(ctx.Train), prep(ctx.Test)
	for _, cfg := range []struct {
		name    string
		dropout float64
	}{
		{"plain", 0},
		{"dropout-0.2", 0.2},
		{"dropout-0.5", 0.5},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var ev ml.BinaryEval
			for i := 0; i < b.N; i++ {
				model, err := (&nn.MLPTrainer{Dropout: cfg.dropout, Seed: 1}).Train(trainBin)
				if err != nil {
					b.Fatal(err)
				}
				ev, err = ml.EvaluateBinary(model, testBin)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*ev.F1, "F_pct")
			b.ReportMetric(100*ev.Performance, "perf_pct")
		})
	}
}

// BenchmarkAblationReplacement quantifies how sensitive the HPC signatures
// are to the modelled cache replacement policy: the same application is
// profiled under LRU and random replacement and the resulting cache-miss
// rates are reported. Detection features must not hinge on a policy detail.
func BenchmarkAblationReplacement(b *testing.B) {
	for _, pol := range []struct {
		name   string
		policy microarch.Policy
	}{
		{"LRU", microarch.PolicyLRU},
		{"random", microarch.PolicyRandom},
	} {
		b.Run(pol.name, func(b *testing.B) {
			cfg := microarch.DefaultConfig()
			cfg.CachePolicy = pol.policy
			var missRate float64
			for i := 0; i < b.N; i++ {
				var misses, refs uint64
				core, err := microarch.NewCore(cfg, hpc.SinkFunc(func(e hpc.Event, n uint64) {
					switch e {
					case hpc.EvCacheMiss:
						misses += n
					case hpc.EvCacheRef:
						refs += n
					}
				}))
				if err != nil {
					b.Fatal(err)
				}
				prog := workload.Generate(workload.Rootkit, 0, workload.Options{Budget: 60000, Seed: 5})
				core.Bind(prog.MustStream())
				for core.Run(4096) > 0 {
				}
				missRate = float64(misses) / float64(refs)
			}
			b.ReportMetric(100*missRate, "llc_miss_rate_pct")
		})
	}
}

// BenchmarkExtendedModelZoo extends the paper's four stage-2 algorithms
// with the wider family the authors' companion studies evaluate (Naive
// Bayes, multinomial logistic regression), all on the pooled 4-HPC task.
func BenchmarkExtendedModelZoo(b *testing.B) {
	ctx := benchContext(b)
	pool := func(d *dataset.Dataset) *dataset.Dataset {
		bin, err := baseline.PoolMalware(d)
		if err != nil {
			b.Fatal(err)
		}
		bin, err = bin.SelectByName(twosmart.CommonFeatures())
		if err != nil {
			b.Fatal(err)
		}
		return bin
	}
	trainBin, testBin := pool(ctx.Train), pool(ctx.Test)
	zoo := map[string]ml.Trainer{
		"J48":        core.NewTrainer(core.J48, 1),
		"JRip":       core.NewTrainer(core.JRip, 1),
		"MLP":        core.NewTrainer(core.MLP, 1),
		"OneR":       core.NewTrainer(core.OneR, 1),
		"NaiveBayes": &bayes.NBTrainer{},
		"MLR":        &linear.MLRTrainer{Seed: 1},
	}
	for _, name := range []string{"J48", "JRip", "MLP", "OneR", "NaiveBayes", "MLR"} {
		b.Run(name, func(b *testing.B) {
			var ev ml.BinaryEval
			for i := 0; i < b.N; i++ {
				model, err := zoo[name].Train(trainBin)
				if err != nil {
					b.Fatal(err)
				}
				ev, err = ml.EvaluateBinary(model, testBin)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*ev.F1, "F_pct")
			b.ReportMetric(100*ev.AUC, "AUC_pct")
		})
	}
}

// BenchmarkAblationCorpusScale measures detection quality as a function of
// corpus size (a learning-curve ablation beyond the paper): the pooled
// 4-HPC J48 detector trained on increasingly large corpora.
func BenchmarkAblationCorpusScale(b *testing.B) {
	for _, scale := range []float64{0.02, 0.05, 0.1} {
		b.Run(fmt.Sprintf("scale-%.2f", scale), func(b *testing.B) {
			var f float64
			for i := 0; i < b.N; i++ {
				data, err := corpus.Collect(corpus.Config{Scale: scale, Seed: 42, Omniscient: true})
				if err != nil {
					b.Fatal(err)
				}
				bin, err := baseline.PoolMalware(data)
				if err != nil {
					b.Fatal(err)
				}
				bin, err = bin.SelectByName(twosmart.CommonFeatures())
				if err != nil {
					b.Fatal(err)
				}
				ev, err := ml.TrainAndEvaluate(core.NewTrainer(core.J48, 1), bin, 0.6, 1)
				if err != nil {
					b.Fatal(err)
				}
				f = ev.F1
			}
			b.ReportMetric(100*f, "F_pct")
		})
	}
}

func mustBinary(b *testing.B, d *dataset.Dataset, class workload.Class) *dataset.Dataset {
	b.Helper()
	bin, err := core.BinaryTask(d, class)
	if err != nil {
		b.Fatal(err)
	}
	bin, err = bin.SelectByName(twosmart.CommonFeatures())
	if err != nil {
		b.Fatal(err)
	}
	return bin
}

func perturb(d *dataset.Dataset, sigma float64, seed int64) *dataset.Dataset {
	if sigma == 0 {
		return d
	}
	rng := rand.New(rand.NewSource(seed))
	out := d.Clone()
	for i := range out.Instances {
		for j := range out.Instances[i].Features {
			out.Instances[i].Features[j] *= 1 + sigma*rng.NormFloat64()
		}
	}
	return out
}

// BenchmarkExtGranularity runs the decision-granularity extension: F at
// per-sample versus per-application (majority vote) level.
func BenchmarkExtGranularity(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.ExtGranularityResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ctx.ExtGranularity()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.SampleF, "sample_F_pct")
	b.ReportMetric(100*res.AppF, "app_F_pct")
	b.Logf("\n%s", res)
}

// BenchmarkExtLatency runs the detection-latency extension: time to first
// monitor alarm for freshly started malware.
func BenchmarkExtLatency(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.ExtLatencyResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ctx.ExtLatency()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanSamples*10, "mean_ms_to_alarm")
	b.ReportMetric(float64(res.Detected)/float64(res.Total), "detect_fraction")
	b.Logf("\n%s", res)
}

// BenchmarkExtInterference runs the co-scheduling interference extension:
// recall as the malware timeslice share shrinks.
func BenchmarkExtInterference(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.ExtInterferenceResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ctx.ExtInterference()
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, share := range res.Shares {
		b.ReportMetric(100*res.Recall[i], fmt.Sprintf("recall_at_%.0f_pct", 100*share))
	}
	b.Logf("\n%s", res)
}

// ---------------------------------------------------------------------------
// Compiled inference path. The BenchmarkScore* benchmarks (together with
// BenchmarkObserve* in internal/telemetry and internal/monitor) are what the
// CI benchmark gate runs with -count=6 on base and head; they therefore use
// small self-contained synthetic datasets, not the shared corpus.

// benchDetectorData builds a small 5-class dataset over the Common-4
// feature space — the shape core.Train expects — cheap enough to retrain
// on every gate run.
func benchDetectorData() *dataset.Dataset {
	rng := rand.New(rand.NewSource(17))
	classes := make([]string, workload.NumClasses)
	for i := range classes {
		classes[i] = workload.Class(i).String()
	}
	d := dataset.New(append([]string(nil), core.CommonFeatures...), classes)
	for i := 0; i < 600; i++ {
		label := i % workload.NumClasses
		fv := make([]float64, len(core.CommonFeatures))
		for j := range fv {
			fv[j] = rng.NormFloat64() + float64(label)*1.8
		}
		d.Add(dataset.Instance{Features: fv, Label: label})
	}
	return d
}

// benchRuntimeDetector trains the detector the Score benchmarks evaluate,
// pinning one stage-2 kind per class so every compiled evaluator family is
// on the measured path.
func benchRuntimeDetector(b *testing.B) (*core.Detector, *dataset.Dataset) {
	b.Helper()
	data := benchDetectorData()
	det, err := core.Train(data, core.TrainConfig{
		Stage2Kinds: map[workload.Class]core.Kind{
			workload.Backdoor: core.J48,
			workload.Rootkit:  core.JRip,
			workload.Virus:    core.MLP,
			workload.Trojan:   core.OneR,
		},
		Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	return det, data
}

// BenchmarkScoreModels compares each classifier family's interpreted
// Scores against its compiled ScoresInto on one sample.
func BenchmarkScoreModels(b *testing.B) {
	binary := mltest.Gaussian2Class(400, 6, 1.5, 11)
	multi := mltest.MultiClass(500, 5, 6, 2.0, 12)
	cases := []struct {
		name    string
		trainer ml.Trainer
		data    *dataset.Dataset
	}{
		{"J48", &tree.J48Trainer{}, binary},
		{"JRip", &rules.JRipTrainer{Seed: 3}, binary},
		{"OneR", &rules.OneRTrainer{}, binary},
		{"MLP", &nn.MLPTrainer{Seed: 3, Epochs: 40}, binary},
		{"MLR", &linear.MLRTrainer{Seed: 3, Epochs: 60}, multi},
		{"AdaBoostJ48", &ensemble.AdaBoostTrainer{Base: &tree.J48Trainer{}, Rounds: 5, Seed: 3}, binary},
	}
	for _, tc := range cases {
		model, err := tc.trainer.Train(tc.data)
		if err != nil {
			b.Fatal(err)
		}
		fv := append([]float64(nil), tc.data.Instances[1].Features...)
		b.Run(tc.name+"/interpreted", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				model.Scores(fv)
			}
		})
		compiled := ml.Compile(model)
		dst := make([]float64, compiled.NumClasses())
		b.Run(tc.name+"/compiled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				compiled.ScoresInto(dst, fv)
			}
		})
	}
}

// BenchmarkScoreDetector compares the full two-stage detector's interpreted
// Detect against the compiled single-sample and batched paths. The compiled
// cases must report 0 allocs/op — the CI gate fails the build if that
// regresses — and the ISSUE's acceptance bar is >=2x on compiled vs
// interpreted single-sample ns/op.
func BenchmarkScoreDetector(b *testing.B) {
	det, data := benchRuntimeDetector(b)
	fv := append([]float64(nil), data.Instances[3].Features...)
	b.Run("interpreted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := det.Detect(fv); err != nil {
				b.Fatal(err)
			}
		}
	})
	cd := det.Compile()
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cd.Detect(fv); err != nil {
				b.Fatal(err)
			}
		}
	})
	const batch = 64
	samples := make([][]float64, batch)
	for i := range samples {
		samples[i] = data.Instances[i%data.Len()].Features
	}
	verdicts := make([]core.Verdict, batch)
	scores := make([]float64, batch)
	b.Run("compiled-batch64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := cd.DetectBatch(verdicts, samples); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled-scorebatch64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := cd.MalwareScoreBatch(scores, samples); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScoreMonitor measures monitor.Observe over the compiled versus
// interpreted detector — the end-to-end per-sample hot path a deployment
// actually runs.
func BenchmarkScoreMonitor(b *testing.B) {
	det, data := benchRuntimeDetector(b)
	fv := append([]float64(nil), data.Instances[3].Features...)
	run := func(b *testing.B, s monitor.Scorer) {
		m, err := monitor.New(s, monitor.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Observe(fv); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("interpreted", func(b *testing.B) { run(b, det) })
	b.Run("compiled", func(b *testing.B) { run(b, det.Compile()) })
}
