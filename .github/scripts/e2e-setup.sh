#!/usr/bin/env bash
# Shared setup for the end-to-end smoke jobs: build every service-tier
# tool into /tmp and train the tiny runtime model(s) the smokes serve.
#
#   MODELS=1 (default)  /tmp/det.json                 (seed 1)
#   MODELS=2            /tmp/det1.json, /tmp/det2.json (seeds 5, 17)
#
# Every job gets every tool — the build is seconds on a warm module
# cache, and one script beats four drifting copies of the same steps.
set -euo pipefail

MODELS="${MODELS:-1}"

for tool in smartrain smartserve smartgw smartload smartctl; do
  go build -o "/tmp/$tool" "./cmd/$tool"
done

if [ "$MODELS" = "2" ]; then
  /tmp/smartrain -scale 0.002 -runtime -model /tmp/det1.json -seed 5 -quiet
  /tmp/smartrain -scale 0.002 -runtime -model /tmp/det2.json -seed 17 -quiet
else
  # The stage-0 envelope rides along for the cascade smoke pass.
  /tmp/smartrain -scale 0.002 -runtime -model /tmp/det.json -envelope /tmp/env.json -quiet
fi
