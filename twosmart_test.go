package twosmart_test

import (
	"bytes"

	"sync"
	"testing"

	"twosmart"
	"twosmart/internal/corpus"
	"twosmart/internal/dataset"
)

var (
	once sync.Once
	data *twosmart.Dataset
	derr error
)

func testData(t *testing.T) *twosmart.Dataset {
	t.Helper()
	once.Do(func() {
		data, derr = twosmart.Collect(twosmart.CollectConfig{
			Scale:       0.001,
			MinPerClass: 24,
			Budget:      30000,
			Seed:        9,
			Omniscient:  true,
		})
	})
	if derr != nil {
		t.Fatal(derr)
	}
	return data
}

func TestPublicAPITrainDetect(t *testing.T) {
	d := testData(t)
	train, test, err := d.Split(0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	det, err := twosmart.Train(train, twosmart.TrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	correctSide := 0
	for _, ins := range test.Instances {
		v, err := det.Detect(ins.Features)
		if err != nil {
			t.Fatal(err)
		}
		if v.Malware == twosmart.Class(ins.Label).IsMalware() {
			correctSide++
		}
	}
	if acc := float64(correctSide) / float64(test.Len()); acc < 0.7 {
		t.Fatalf("public API end-to-end accuracy %.2f", acc)
	}
}

func TestPublicAPIFeatureSets(t *testing.T) {
	common := twosmart.CommonFeatures()
	if len(common) != 4 {
		t.Fatalf("common features=%d, want 4", len(common))
	}
	// Mutating the returned slice must not corrupt the package state.
	common[0] = "junk"
	if twosmart.CommonFeatures()[0] == "junk" {
		t.Fatal("CommonFeatures leaks internal state")
	}
	for _, c := range twosmart.MalwareClasses() {
		feats, err := twosmart.CustomFeatures(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(feats) != 8 {
			t.Fatalf("%v custom features=%d, want 8", c, len(feats))
		}
	}
	if _, err := twosmart.CustomFeatures(twosmart.Benign); err == nil {
		t.Fatal("benign custom features accepted")
	}
}

func TestPublicAPIBaselineAndHardware(t *testing.T) {
	d := testData(t)
	det, err := twosmart.TrainBaseline(d, twosmart.BaselineConfig{Kind: twosmart.J48, NumHPCs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cost, err := twosmart.EstimateHardware(det.Model())
	if err != nil {
		t.Fatal(err)
	}
	if cost.LatencyCycles <= 0 || cost.AreaPercent() <= 0 {
		t.Fatalf("degenerate hardware cost %+v", cost)
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	d := testData(t)
	exp, err := twosmart.NewExperimentsFromDataset(d, twosmart.ExperimentOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tab1, err := exp.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if tab1.DistinctWinners() < 1 {
		t.Fatal("no winners")
	}
	tab2, err := exp.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab2.CorrelationTop16) != 16 {
		t.Fatal("reduction wrong")
	}
}

// The CSV interchange round-trips a collected corpus and feeds the
// experiment drivers, mirroring the smartrain -out / -in flow.
func TestPublicAPICSVRoundTrip(t *testing.T) {
	d := testData(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := dataset.ReadCSV(&buf, corpus.ClassNames())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != d.Len() || loaded.NumFeatures() != d.NumFeatures() {
		t.Fatal("round trip changed shape")
	}
	exp, err := twosmart.NewExperimentsFromDataset(loaded, twosmart.ExperimentOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	red, err := exp.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(red.Common) != 4 {
		t.Fatal("reduction on reloaded corpus failed")
	}
}

// ARFF export produces WEKA-loadable data from a real corpus.
func TestPublicAPIARFF(t *testing.T) {
	d := testData(t)
	var buf bytes.Buffer
	if err := d.WriteARFF(&buf, "twosmart-corpus"); err != nil {
		t.Fatal(err)
	}
	loaded, err := dataset.ReadARFF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != d.Len() {
		t.Fatal("ARFF round trip changed size")
	}
}

// Exercise the remaining facade surface: persistence, monitoring and the
// hardware tooling over one trained detector.
func TestPublicAPIDeploymentSurface(t *testing.T) {
	d := testData(t)
	common, err := d.SelectByName(twosmart.CommonFeatures())
	if err != nil {
		t.Fatal(err)
	}
	det, err := twosmart.Train(common, twosmart.TrainConfig{
		Stage2Kinds: map[twosmart.Class]twosmart.Kind{
			twosmart.Backdoor: twosmart.J48, twosmart.Rootkit: twosmart.JRip,
			twosmart.Virus: twosmart.OneR, twosmart.Trojan: twosmart.J48,
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Persistence.
	blob, err := det.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := twosmart.LoadDetector(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := twosmart.LoadDetector([]byte("junk")); err == nil {
		t.Fatal("garbage detector accepted")
	}

	// Hardware.
	cost, err := twosmart.EstimateDetectorHardware(restored)
	if err != nil {
		t.Fatal(err)
	}
	if cost.LatencyCycles <= 0 || cost.AreaPercent() <= 0 {
		t.Fatalf("degenerate two-stage cost %+v", cost)
	}
	model, err := restored.Stage2Model(twosmart.Virus)
	if err != nil {
		t.Fatal(err)
	}
	verilog, err := twosmart.GenerateVerilog(model, "virus_oner", twosmart.CommonFeatures())
	if err != nil {
		t.Fatal(err)
	}
	if len(verilog) == 0 {
		t.Fatal("empty Verilog")
	}

	// Monitoring.
	mon, err := twosmart.NewMonitor(restored, twosmart.MonitorConfig{MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := twosmart.NewTracker(restored, twosmart.MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range common.Instances[:20] {
		if _, err := mon.Observe(ins.Features); err != nil {
			t.Fatal(err)
		}
		if _, err := tracker.Observe(ins.App, ins.Features); err != nil {
			t.Fatal(err)
		}
	}
	if mon.Samples() != 20 {
		t.Fatalf("monitor observed %d samples", mon.Samples())
	}
	if len(tracker.Active()) == 0 {
		t.Fatal("tracker lost its applications")
	}
}
