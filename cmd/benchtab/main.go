// Command benchtab regenerates any table or figure of the paper's
// evaluation and prints it in the paper's layout.
//
// Usage:
//
//	benchtab -exp tab3 -scale 0.15 -seed 42
//	benchtab -exp all -report run.json
//
// Experiments: fig1 tab1 tab2 fig2 fig3 tab3 fig4 tab4 fig5a fig5b tab5,
// plus the extensions extgran (decision granularity), extlat (detection
// latency) and extint (co-scheduling interference); all runs everything.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"twosmart"
	"twosmart/internal/cli"
	"twosmart/internal/corpus"
)

var app = cli.New("benchtab")

func main() {
	exp := flag.String("exp", "all", "experiment id: fig1|tab1|tab2|fig2|fig3|tab3|fig4|tab4|fig5a|fig5b|tab5|extgran|extlat|extint|extcas|all")
	scale := flag.Float64("scale", 0.15, "corpus scale (1.0 = the paper's 3621 applications)")
	seed := flag.Int64("seed", 42, "experiment seed")
	budget := flag.Int64("budget", 0, "per-run instruction budget (0 = default)")
	workers := flag.Int("workers", 0, "bound on profiling and sweep parallelism (0 = NumCPU)")
	faithful := flag.Bool("faithful", false, "use the 11-batch multiplexed collection path instead of the omniscient fast path")
	jsonOut := flag.String("json", "", "also run every experiment and write the aggregate machine-readable report to this file (use - for stdout)")
	reportOut := flag.String("report", "", "write the machine-readable run report (JSON: stage timings, pool metrics, dataset stats) to this file (- for stdout)")
	flag.Parse()

	sigctx := app.Start()
	defer app.Close()

	opts := twosmart.ExperimentOptions{
		Corpus: corpus.Config{
			Scale:      *scale,
			Seed:       *seed,
			Budget:     *budget,
			Omniscient: !*faithful,
			Workers:    *workers,
			Progress:   app.Progress("profiling"),
		},
		Seed:      *seed,
		Workers:   *workers,
		Progress:  app.Progress("sweep"),
		Telemetry: app.Telemetry,
	}
	start := time.Now()
	app.Log.Info("collecting corpus", "scale", *scale)
	ctx, err := twosmart.NewExperimentsContext(sigctx, opts)
	if err != nil {
		fatal(err)
	}
	app.Log.Info("corpus ready", "samples", ctx.Data.Len(), "duration", time.Since(start).Round(time.Millisecond))

	type driver struct {
		id  string
		run func() (fmt.Stringer, error)
	}
	drivers := []driver{
		{"fig1", func() (fmt.Stringer, error) { return ctx.Fig1() }},
		{"tab1", func() (fmt.Stringer, error) { return ctx.Table1() }},
		{"tab2", func() (fmt.Stringer, error) { return ctx.Table2() }},
		{"fig2", func() (fmt.Stringer, error) { return ctx.Fig2() }},
		{"fig3", func() (fmt.Stringer, error) { return ctx.Fig3() }},
		{"tab3", func() (fmt.Stringer, error) { return ctx.Table3() }},
		{"fig4", func() (fmt.Stringer, error) { return ctx.Fig4() }},
		{"tab4", func() (fmt.Stringer, error) { return ctx.Table4() }},
		{"fig5a", func() (fmt.Stringer, error) { return ctx.Fig5a() }},
		{"fig5b", func() (fmt.Stringer, error) { return ctx.Fig5b() }},
		{"tab5", func() (fmt.Stringer, error) { return ctx.Table5() }},
		// Extensions beyond the paper's evaluation (run with -exp ext*).
		{"extgran", func() (fmt.Stringer, error) { return ctx.ExtGranularity() }},
		{"extlat", func() (fmt.Stringer, error) { return ctx.ExtLatency() }},
		{"extint", func() (fmt.Stringer, error) { return ctx.ExtInterference() }},
		{"extcas", func() (fmt.Stringer, error) { return ctx.ExtCascade() }},
	}

	// The sweep dominates several drivers; populate its cache through the
	// cancellable path so an interrupt lands there instead of mid-table.
	sweepBased := map[string]bool{"tab1": true, "tab3": true, "fig4": true, "tab4": true, "tab5": true}

	ran := false
	for _, d := range drivers {
		if *exp != "all" && *exp != d.id {
			continue
		}
		if err := sigctx.Err(); err != nil {
			fatal(fmt.Errorf("interrupted before %s: %w", d.id, err))
		}
		ran = true
		t0 := time.Now()
		span := app.Telemetry.StartSpan("exp/" + d.id)
		if sweepBased[d.id] {
			if _, err := ctx.SweepContext(sigctx); err != nil {
				fatal(fmt.Errorf("%s: %w", d.id, err))
			}
		}
		res, err := d.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", d.id, err))
		}
		span.End()
		fmt.Printf("==== %s (%v) ====\n%s\n", d.id, time.Since(t0).Round(time.Millisecond), res)
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}

	if *jsonOut != "" {
		report, err := ctx.Report()
		if err != nil {
			fatal(err)
		}
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := report.WriteJSON(w); err != nil {
			fatal(err)
		}
		if *jsonOut != "-" {
			app.Log.Info("wrote JSON report", "path", *jsonOut)
		}
	}

	if *reportOut != "" {
		rep := app.Telemetry.Report(app.Tool)
		rep.Dataset = &twosmart.DatasetStats{
			Samples:  ctx.Data.Len(),
			Features: len(ctx.Data.FeatureNames),
			Classes:  map[string]int{},
		}
		for _, ins := range ctx.Data.Instances {
			rep.Dataset.Classes[ctx.Data.ClassNames[ins.Label]]++
		}
		if err := rep.WriteFile(*reportOut); err != nil {
			fatal(err)
		}
		if *reportOut != "-" {
			app.Log.Info("wrote run report", "path", *reportOut)
		}
	}
}

func fatal(err error) {
	app.Fatal(err)
}
