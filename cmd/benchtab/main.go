// Command benchtab regenerates any table or figure of the paper's
// evaluation and prints it in the paper's layout.
//
// Usage:
//
//	benchtab -exp tab3 -scale 0.15 -seed 42
//	benchtab -exp all
//
// Experiments: fig1 tab1 tab2 fig2 fig3 tab3 fig4 tab4 fig5a fig5b tab5,
// plus the extensions extgran (decision granularity), extlat (detection
// latency) and extint (co-scheduling interference); all runs everything.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"twosmart"
	"twosmart/internal/corpus"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig1|tab1|tab2|fig2|fig3|tab3|fig4|tab4|fig5a|fig5b|tab5|extgran|extlat|extint|all")
	scale := flag.Float64("scale", 0.15, "corpus scale (1.0 = the paper's 3621 applications)")
	seed := flag.Int64("seed", 42, "experiment seed")
	budget := flag.Int64("budget", 0, "per-run instruction budget (0 = default)")
	faithful := flag.Bool("faithful", false, "use the 11-batch multiplexed collection path instead of the omniscient fast path")
	jsonOut := flag.String("json", "", "also run every experiment and write the aggregate machine-readable report to this file (use - for stdout)")
	flag.Parse()

	opts := twosmart.ExperimentOptions{
		Corpus: corpus.Config{
			Scale:      *scale,
			Seed:       *seed,
			Budget:     *budget,
			Omniscient: !*faithful,
		},
		Seed: *seed,
	}
	start := time.Now()
	fmt.Fprintf(os.Stderr, "collecting corpus (scale %.3g)...\n", *scale)
	ctx, err := twosmart.NewExperiments(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "corpus ready: %d samples in %v\n\n", ctx.Data.Len(), time.Since(start).Round(time.Millisecond))

	type driver struct {
		id  string
		run func() (fmt.Stringer, error)
	}
	drivers := []driver{
		{"fig1", func() (fmt.Stringer, error) { return ctx.Fig1() }},
		{"tab1", func() (fmt.Stringer, error) { return ctx.Table1() }},
		{"tab2", func() (fmt.Stringer, error) { return ctx.Table2() }},
		{"fig2", func() (fmt.Stringer, error) { return ctx.Fig2() }},
		{"fig3", func() (fmt.Stringer, error) { return ctx.Fig3() }},
		{"tab3", func() (fmt.Stringer, error) { return ctx.Table3() }},
		{"fig4", func() (fmt.Stringer, error) { return ctx.Fig4() }},
		{"tab4", func() (fmt.Stringer, error) { return ctx.Table4() }},
		{"fig5a", func() (fmt.Stringer, error) { return ctx.Fig5a() }},
		{"fig5b", func() (fmt.Stringer, error) { return ctx.Fig5b() }},
		{"tab5", func() (fmt.Stringer, error) { return ctx.Table5() }},
		// Extensions beyond the paper's evaluation (run with -exp ext*).
		{"extgran", func() (fmt.Stringer, error) { return ctx.ExtGranularity() }},
		{"extlat", func() (fmt.Stringer, error) { return ctx.ExtLatency() }},
		{"extint", func() (fmt.Stringer, error) { return ctx.ExtInterference() }},
	}

	ran := false
	for _, d := range drivers {
		if *exp != "all" && *exp != d.id {
			continue
		}
		ran = true
		t0 := time.Now()
		res, err := d.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", d.id, err))
		}
		fmt.Printf("==== %s (%v) ====\n%s\n", d.id, time.Since(t0).Round(time.Millisecond), res)
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}

	if *jsonOut != "" {
		report, err := ctx.Report()
		if err != nil {
			fatal(err)
		}
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := report.WriteJSON(w); err != nil {
			fatal(err)
		}
		if *jsonOut != "-" {
			fmt.Fprintf(os.Stderr, "wrote JSON report to %s\n", *jsonOut)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	os.Exit(1)
}
