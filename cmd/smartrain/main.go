// Command smartrain collects the profiling corpus, runs the feature
// reduction pipeline, trains the 2SMaRT two-stage detector and reports its
// held-out detection quality. The collected dataset can be exported to CSV
// for later reuse (cmd/smartdetect and the experiment drivers accept it).
//
// Usage:
//
//	smartrain -scale 0.15 -out corpus.csv
//	smartrain -in corpus.csv -boost
//	smartrain -telemetry-addr :8080 -report run.json
//	smartrain -runtime -model det.json -envelope env.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"twosmart"
	"twosmart/internal/anomaly"
	"twosmart/internal/cli"
	"twosmart/internal/corpus"
	"twosmart/internal/dataset"
	"twosmart/internal/metrics"
	"twosmart/internal/persist"
	"twosmart/internal/workload"
)

// profiled tracks collection progress so an interrupted run can report how
// far it got (packed as done<<32 | total).
var profiled atomic.Uint64

var app = cli.New("smartrain")

func main() {
	scale := flag.Float64("scale", 0.15, "corpus scale (1.0 = the paper's 3621 applications)")
	seed := flag.Int64("seed", 42, "seed for corpus, split and training")
	boost := flag.Bool("boost", false, "wrap stage-2 detectors in AdaBoost.M1")
	rounds := flag.Int("rounds", 10, "AdaBoost rounds when -boost is set")
	outCSV := flag.String("out", "", "write the collected dataset to this CSV file")
	inCSV := flag.String("in", "", "load the dataset from this CSV file instead of collecting")
	modelOut := flag.String("model", "", "write the trained detector (JSON) to this file")
	manifestOut := flag.String("manifest", "", "write the corpus provenance manifest (JSON) to this file")
	runtimeModel := flag.Bool("runtime", false, "train on the 4 Common HPC features only, producing a model deployable with cmd/smartdetect -model")
	faithful := flag.Bool("faithful", false, "use the 11-batch multiplexed collection path")
	reportOut := flag.String("report", "", "write the machine-readable run report (JSON: stage timings, dataset stats, final metrics) to this file (- for stdout)")
	envelopeOut := flag.String("envelope", "", "train a stage-0 anomaly envelope from the training split's benign samples and write it (JSON) to this file")
	envelopeBudget := flag.Float64("envelope-budget", anomaly.DefaultBudget, "envelope false-short-circuit budget: the held-out benign fraction allowed to score above the calibrated threshold")
	flag.Parse()
	ctx := app.Start()
	defer app.Close()

	data, err := loadOrCollect(ctx, *inCSV, *scale, *seed, *faithful)
	if err != nil {
		fatal(err)
	}
	if *outCSV != "" {
		f, err := os.Create(*outCSV)
		if err != nil {
			fatal(err)
		}
		if err := data.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		app.Log.Info("wrote dataset", "samples", data.Len(), "path", *outCSV)
	}

	if *manifestOut != "" {
		f, err := os.Create(*manifestOut)
		if err != nil {
			fatal(err)
		}
		m := corpus.Config{Scale: *scale, Seed: *seed, Omniscient: !*faithful}.Manifest()
		if err := m.WriteJSON(f, time.Now()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		app.Log.Info("wrote manifest", "path", *manifestOut)
	}

	if *runtimeModel {
		data, err = data.SelectByName(twosmart.CommonFeatures())
		if err != nil {
			fatal(err)
		}
	}

	train, test, err := data.Split(0.6, *seed)
	if err != nil {
		fatal(err)
	}
	app.Log.Info("training 2SMaRT", "samples", train.Len(), "boost", *boost)
	trainSpan := app.Telemetry.StartSpan("train")
	det, err := twosmart.TrainContext(ctx, train, twosmart.TrainConfig{
		Boost:       *boost,
		BoostRounds: *rounds,
		Seed:        *seed,
		Telemetry:   app.Telemetry,
	})
	if err != nil {
		fatal(err)
	}
	trainDur := trainSpan.End()
	app.Log.Info("trained", "duration", trainDur.Round(time.Millisecond))

	if *modelOut != "" {
		blob, err := det.Marshal()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*modelOut, blob, 0o644); err != nil {
			fatal(err)
		}
		app.Log.Info("wrote detector", "bytes", len(blob), "path", *modelOut)
	}

	if *envelopeOut != "" {
		if err := trainEnvelope(*envelopeOut, *envelopeBudget, *seed, train, test); err != nil {
			fatal(err)
		}
	}

	fmt.Println("stage-2 specialized detectors:")
	for _, c := range twosmart.MalwareClasses() {
		kind, feats, err := det.Stage2Info(c)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-10s %-5v features=%v\n", c, kind, feats)
	}

	evalSpan := app.Telemetry.StartSpan("evaluate")
	var pooled metrics.Confusion
	perClass := map[workload.Class]*metrics.Confusion{}
	for _, c := range twosmart.MalwareClasses() {
		perClass[c] = &metrics.Confusion{}
	}
	for _, ins := range test.Instances {
		v, err := det.Detect(ins.Features)
		if err != nil {
			fatal(err)
		}
		actual := workload.Class(ins.Label)
		pooled.Add(actual.IsMalware(), v.Malware)
		for _, c := range twosmart.MalwareClasses() {
			if actual == workload.Benign || actual == c {
				perClass[c].Add(actual == c, v.Malware)
			}
		}
	}
	evalSpan.End()
	fmt.Printf("\nheld-out detection (%d samples):\n", test.Len())
	fmt.Printf("  pooled: F=%.1f%% precision=%.1f%% recall=%.1f%%\n",
		100*pooled.F1(), 100*pooled.Precision(), 100*pooled.Recall())
	for _, c := range twosmart.MalwareClasses() {
		fmt.Printf("  %-10s F=%.1f%%\n", c, 100*perClass[c].F1())
	}

	if *reportOut != "" {
		rep := app.Telemetry.Report(app.Tool)
		rep.Dataset = datasetStats(data)
		rep.Results["pooled_f1"] = pooled.F1()
		rep.Results["pooled_precision"] = pooled.Precision()
		rep.Results["pooled_recall"] = pooled.Recall()
		for _, c := range twosmart.MalwareClasses() {
			rep.Results["f1_"+c.String()] = perClass[c].F1()
		}
		if err := rep.WriteFile(*reportOut); err != nil {
			fatal(err)
		}
		if *reportOut != "-" {
			app.Log.Info("wrote run report", "path", *reportOut)
		}
	}
}

// trainEnvelope fits the stage-0 cascade envelope on the training split's
// benign samples (in the same feature space the detector trains in),
// persists it and reports the calibration: the short-circuit threshold
// plus how the fully held-out test benign behaves under it.
func trainEnvelope(path string, budget float64, seed int64, train, test *twosmart.Dataset) error {
	benignOf := func(d *twosmart.Dataset) [][]float64 {
		var out [][]float64
		for _, ins := range d.Instances {
			if workload.Class(ins.Label) == workload.Benign {
				out = append(out, ins.Features)
			}
		}
		return out
	}
	env, err := anomaly.Train(train.FeatureNames, benignOf(train), anomaly.TrainConfig{
		Budget: budget,
		Seed:   seed,
	})
	if err != nil {
		return err
	}
	blob, err := persist.MarshalEnvelope(env)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	testPass := env.PassRate(benignOf(test), env.Threshold)
	app.Log.Info("wrote stage-0 envelope", "path", path,
		"features", env.NumFeatures(), "threshold", env.Threshold, "budget", env.Budget)
	fmt.Printf("\nstage-0 envelope: threshold=%.4g budget=%.4g test-benign passed onward=%.2f%%\n",
		env.Threshold, env.Budget, 100*testPass)
	return nil
}

func loadOrCollect(ctx context.Context, inCSV string, scale float64, seed int64, faithful bool) (*twosmart.Dataset, error) {
	if inCSV != "" {
		f, err := os.Open(inCSV)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return readCSV(f)
	}
	app.Log.Info("collecting corpus", "scale", scale, "faithful", faithful)
	progress := app.Progress("profiling")
	return twosmart.CollectContext(ctx, twosmart.CollectConfig{
		Scale:      scale,
		Seed:       seed,
		Omniscient: !faithful,
		Telemetry:  app.Telemetry,
		Progress: func(done, total int) {
			profiled.Store(uint64(done)<<32 | uint64(total))
			if progress != nil {
				progress(done, total)
			}
		},
	})
}

// readCSV parses a dataset written by WriteCSV under the standard 5-class
// naming.
func readCSV(f *os.File) (*twosmart.Dataset, error) {
	return dataset.ReadCSV(f, corpus.ClassNames())
}

func datasetStats(d *twosmart.Dataset) *twosmart.DatasetStats {
	stats := &twosmart.DatasetStats{
		Samples:  d.Len(),
		Features: len(d.FeatureNames),
		Classes:  map[string]int{},
	}
	for _, ins := range d.Instances {
		stats.Classes[d.ClassNames[ins.Label]]++
	}
	return stats
}

func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		if p := profiled.Load(); p != 0 {
			app.Log.Warn("interrupted mid-collection; partial work discarded",
				"profiled", p>>32, "total", p&0xffffffff)
		}
	}
	app.Fatal(err)
}
