// Command smartload is the load harness for cmd/smartserve: it replays
// corpus-derived HPC sample streams over many concurrent connections and
// reports end-to-end throughput, verdict latency quantiles (p50/p95/p99)
// and the shed rate the server's load-shedding reported.
//
// With -cluster the harness loads a smartgw gateway instead of a single
// server: -addr points at the gateway, and -shards (the same list the
// gateway was started with) lets the harness predict each stream's
// consistent-hash placement and report per-shard throughput skew. A
// failing connection never surfaces a raw socket error: failures are
// classified (server closed mid-run, drained, timed out) and summarized
// per connection before the non-zero exit.
//
// With -replay the harness feeds a recorded sample log (a smartserve or
// smartgw -samplelog directory) back through the wire path instead of
// the synthetic corpus: the exact production feature stream, replayed on
// its recorded inter-arrival timeline compressed by -amplify (1 = real
// time, 0 = full speed). Recorded streams map onto fresh wire streams in
// first-appearance order, so each original stream's samples arrive in
// their original sequence.
//
// Usage:
//
//	smartload -addr 127.0.0.1:7643
//	smartload -addr 127.0.0.1:7643 -conns 8 -streams 4 -samples 20000
//	smartload -addr 127.0.0.1:7643 -interval 10ms   # the paper's sampling period
//	smartload -addr 127.0.0.1:7643 -cluster -shards 127.0.0.1:7644,127.0.0.1:7645
//	smartload -addr 127.0.0.1:7643 -replay samples/ -amplify 10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"twosmart"
	"twosmart/internal/cli"
	"twosmart/internal/cluster"
	"twosmart/internal/corpus"
	"twosmart/internal/dataset"
	"twosmart/internal/serve"
	"twosmart/internal/telemetry"
	"twosmart/internal/wire"
	"twosmart/internal/workload"
)

var app = cli.New("smartload")

func main() {
	addr := flag.String("addr", "127.0.0.1:7643", "smartserve address to load")
	conns := flag.Int("conns", 4, "concurrent agent connections")
	streams := flag.Int("streams", 4, "app streams per connection")
	samples := flag.Int("samples", 10000, "samples per stream")
	interval := flag.Duration("interval", 0, "delay between a stream's samples (0 = full speed; 10ms = the paper's sampling period)")
	seed := flag.Int64("seed", 7, "corpus seed for the replayed samples")
	clusterMode := flag.Bool("cluster", false, "load a smartgw gateway: report per-shard routing and throughput skew (give the fleet with -shards)")
	shardsFlag := flag.String("shards", "", "with -cluster: comma-separated shard addresses behind the gateway, used to predict consistent-hash placement")
	replicas := flag.Int("replicas", cluster.DefaultReplicas, "with -cluster: virtual nodes per shard (must match smartgw -replicas)")
	reportOut := flag.String("report", "", "write the machine-readable run report (JSON: throughput, latency and heartbeat RTT histograms) to this file (- for stdout)")
	benign := flag.Bool("benign", false, "replay only the corpus's benign-class samples — the benign-heavy traffic profile a stage-0 cascade (-envelope on the server) is built for")
	replayDir := flag.String("replay", "", "replay a recorded sample log (smartserve/smartgw -samplelog directory) through the wire path instead of the synthetic corpus")
	amplify := flag.Int("amplify", 1, "with -replay: compress the recorded timeline by this factor (1 = real time, 0 = full speed)")
	flag.Parse()

	// Fail fast on nonsense sizing before spinning up telemetry or
	// collecting a corpus; exit 2 like any other flag error, with the
	// full usage text so the fix is one screen away.
	badFlag := func(msg string) {
		fmt.Fprintf(os.Stderr, "smartload: %s\n", msg)
		flag.Usage()
		os.Exit(2)
	}
	switch {
	case *conns < 1:
		badFlag(fmt.Sprintf("-conns must be positive (got %d)", *conns))
	case *streams < 1:
		badFlag(fmt.Sprintf("-streams must be positive (got %d)", *streams))
	case *samples < 1:
		badFlag(fmt.Sprintf("-samples must be positive (got %d)", *samples))
	case *interval < 0:
		badFlag(fmt.Sprintf("-interval must not be negative (got %s)", *interval))
	case !*clusterMode && *shardsFlag != "":
		badFlag("-shards needs -cluster")
	case *amplify < 0:
		badFlag(fmt.Sprintf("-amplify must not be negative (got %d)", *amplify))
	}
	// In replay mode the log dictates streams, pacing and sample counts;
	// an explicitly-set corpus-shape flag is a conflicting intent, not a
	// silently ignored default.
	replaySet := map[string]bool{
		"conns": true, "streams": true, "samples": true, "interval": true,
		"seed": true, "cluster": true, "shards": true, "replicas": true, "benign": true,
	}
	flag.Visit(func(f *flag.Flag) {
		switch {
		case *replayDir != "" && replaySet[f.Name]:
			badFlag(fmt.Sprintf("-%s does not apply with -replay (the recorded log dictates streams, pacing and sample counts)", f.Name))
		case *replayDir == "" && f.Name == "amplify":
			badFlag("-amplify needs -replay")
		}
	})
	var fleet []string
	if *shardsFlag != "" {
		fleet = strings.Split(*shardsFlag, ",")
		for i := range fleet {
			fleet[i] = strings.TrimSpace(fleet[i])
		}
	}

	ctx := app.Start()
	defer app.Close()

	if *replayDir != "" {
		runReplay(ctx, *addr, *replayDir, *amplify, *reportOut)
		return
	}

	app.Log.Info("collecting replay corpus", "seed", *seed)
	data, err := twosmart.CollectContext(ctx, corpus.Config{
		Scale:       0.001,
		MinPerClass: 24,
		Budget:      30000,
		Seed:        *seed,
		Omniscient:  true,
	})
	if err != nil {
		app.Fatal(err)
	}

	// Probe the server once to learn the model's feature width, then
	// project the corpus onto it.
	probe, err := serve.Dial(ctx, *addr, "smartload-probe")
	if err != nil {
		app.Fatal(fmt.Errorf("dialing %s: %w", *addr, err))
	}
	welcome := probe.Welcome()
	probe.Close()
	app.Log.Info("probed server",
		"model", welcome.Model, "model_format", welcome.ModelFormat,
		"model_version", welcome.ModelVersion, "features", welcome.NumFeatures)
	data, err = project(data, int(welcome.NumFeatures))
	if err != nil {
		app.Fatal(err)
	}
	if *benign {
		kept := data.Instances[:0]
		for _, ins := range data.Instances {
			if workload.Class(ins.Label) == workload.Benign {
				kept = append(kept, ins)
			}
		}
		if len(kept) == 0 {
			app.Fatal(fmt.Errorf("-benign: corpus has no benign-class samples"))
		}
		data.Instances = kept
		app.Log.Info("benign-only corpus", "samples", data.Len())
	}
	replay := make([][]float64, data.Len())
	for i, ins := range data.Instances {
		replay[i] = ins.Features
	}

	total := *conns * *streams * *samples
	app.Log.Info("starting load",
		"conns", *conns, "streams", *streams, "samples_per_stream", *samples, "total", total)

	results := make([]connResult, *conns)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < *conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			results[ci] = driveConn(ctx, *addr, ci, *streams, *samples, *interval, replay)
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var agg connResult
	var failed []int
	for ci, r := range results {
		if r.err != nil {
			failed = append(failed, ci)
		}
		agg.sent += r.sent
		agg.verdicts += r.verdicts
		agg.shed += r.shed
		agg.alarms += r.alarms
		agg.latencies = append(agg.latencies, r.latencies...)
		for v, n := range r.versions {
			if agg.versions == nil {
				agg.versions = map[uint32]uint64{}
			}
			agg.versions[v] += n
		}
	}
	if len(failed) > 0 {
		// One classified line per failed connection instead of whichever
		// raw socket error happened to surface first.
		if ctx.Err() != nil {
			app.Fatal(context.Canceled)
		}
		fmt.Fprintf(os.Stderr, "smartload: %d/%d connections failed:\n", len(failed), *conns)
		for _, ci := range failed {
			r := results[ci]
			fmt.Fprintf(os.Stderr, "  conn %d: %s (sent %d samples, received %d verdicts)\n",
				ci, classify(r.err), r.sent, r.verdicts)
		}
		app.Fatal(fmt.Errorf("%d/%d connections failed: %s", len(failed), *conns, classify(results[failed[0]].err)))
	}

	perSec := float64(agg.sent) / elapsed.Seconds()
	shedRate := 0.0
	if agg.sent > 0 {
		shedRate = float64(agg.shed) / float64(agg.sent)
	}
	fmt.Printf("sent     %d samples in %.2fs (%.0f samples/s)\n", agg.sent, elapsed.Seconds(), perSec)
	fmt.Printf("verdicts %d (%.0f/s)  alarms %d\n", agg.verdicts, float64(agg.verdicts)/elapsed.Seconds(), agg.alarms)
	fmt.Printf("shed     %d (%.2f%%)\n", agg.shed, 100*shedRate)
	if len(agg.versions) > 0 {
		vs := make([]int, 0, len(agg.versions))
		for v := range agg.versions {
			vs = append(vs, int(v))
		}
		sort.Ints(vs)
		fmt.Printf("models  ")
		for _, v := range vs {
			fmt.Printf(" v%d=%d", v, agg.versions[uint32(v)])
		}
		fmt.Printf("  (stream summaries per model version)\n")
	}
	if len(agg.latencies) > 0 {
		sort.Float64s(agg.latencies)
		fmt.Printf("latency  p50=%s p95=%s p99=%s max=%s\n",
			quantile(agg.latencies, 0.50), quantile(agg.latencies, 0.95),
			quantile(agg.latencies, 0.99), quantile(agg.latencies, 1))
		// Fold the exact latency samples into the run-report histogram.
		lat := app.Telemetry.Histogram("load_verdict_latency_seconds", telemetry.LatencyBuckets)
		for _, l := range agg.latencies {
			lat.Observe(l)
		}
	}
	if hb := hbHist().Summary(); hb.Count > 0 {
		fmt.Printf("hb rtt   p50=%s p99=%s max=%s (%d echoes)\n",
			time.Duration(hb.P50*float64(time.Second)),
			time.Duration(hb.P99*float64(time.Second)),
			time.Duration(hb.Max*float64(time.Second)), hb.Count)
	}
	if *clusterMode && len(fleet) > 0 {
		skewReport(results, fleet, *replicas, *streams)
	}
	if *reportOut != "" {
		writeReport(*reportOut, agg, elapsed, welcome)
	}
}

// hbHist is the heartbeat-RTT histogram every connection's receiver
// feeds; it rides into the -report document like any other metric.
func hbHist() telemetry.Histogram {
	return app.Telemetry.Histogram("load_heartbeat_rtt_seconds", telemetry.LatencyBuckets)
}

// writeReport emits the RunReport-shaped JSON artifact: the headline
// throughput/latency figures in Results, plus every histogram the run
// recorded (verdict latency, heartbeat RTT).
func writeReport(path string, agg connResult, elapsed time.Duration, welcome wire.Welcome) {
	rep := app.Telemetry.Report(app.Tool)
	rep.Results["samples_sent"] = float64(agg.sent)
	rep.Results["verdicts"] = float64(agg.verdicts)
	rep.Results["shed"] = float64(agg.shed)
	rep.Results["alarms"] = float64(agg.alarms)
	rep.Results["wall_s"] = elapsed.Seconds()
	rep.Results["samples_per_s"] = float64(agg.sent) / elapsed.Seconds()
	rep.Results["verdicts_per_s"] = float64(agg.verdicts) / elapsed.Seconds()
	if agg.sent > 0 {
		rep.Results["shed_rate"] = float64(agg.shed) / float64(agg.sent)
	}
	if len(agg.latencies) > 0 { // already sorted by the summary print
		rep.Results["latency_p50_s"] = quantile(agg.latencies, 0.50).Seconds()
		rep.Results["latency_p95_s"] = quantile(agg.latencies, 0.95).Seconds()
		rep.Results["latency_p99_s"] = quantile(agg.latencies, 0.99).Seconds()
	}
	rep.Results["model_version"] = float64(welcome.ModelVersion)
	rep.Notes = map[string]string{"model": welcome.Model}
	if err := rep.WriteFile(path); err != nil {
		app.Log.Error("write run report", "path", path, "err", err)
		return
	}
	if path != "-" {
		app.Log.Info("wrote run report", "path", path)
	}
}

// skewReport maps every stream's verdict count onto the shard the
// consistent-hash ring places it on — the same (members, replicas, key)
// routing smartgw computes — and prints the per-shard throughput split
// plus the max/mean skew factor. A skew near 1.00 means the virtual-node
// ring is spreading (agent, app) streams evenly.
func skewReport(results []connResult, fleet []string, replicas, streams int) {
	ring := cluster.BuildRing(fleet, replicas)
	verdictsBy := make(map[string]uint64, len(fleet))
	streamsBy := make(map[string]int, len(fleet))
	var total uint64
	for ci, r := range results {
		for s := 0; s < streams; s++ {
			shard := ring.Route(cluster.RouteKey(fmt.Sprintf("smartload-%d", ci), fmt.Sprintf("conn%d-app%d", ci, s)))
			streamsBy[shard]++
			n := r.byStream[uint32(s)]
			verdictsBy[shard] += n
			total += n
		}
	}
	fmt.Printf("cluster  %d shards, %d streams (predicted placement, verdicts actually received per stream)\n",
		len(fleet), len(results)*streams)
	var max, sum float64
	for _, shard := range ring.Members() {
		share := 0.0
		if total > 0 {
			share = float64(verdictsBy[shard]) / float64(total)
		}
		if float64(verdictsBy[shard]) > max {
			max = float64(verdictsBy[shard])
		}
		sum += float64(verdictsBy[shard])
		fmt.Printf("  shard %-21s streams=%-4d verdicts=%-8d (%.1f%%)\n",
			shard, streamsBy[shard], verdictsBy[shard], 100*share)
	}
	if mean := sum / float64(len(fleet)); mean > 0 {
		fmt.Printf("  skew max/mean = %.2f\n", max/mean)
	}
}

// project reduces the replay corpus to the feature width the served model
// expects.
func project(d *dataset.Dataset, width int) (*dataset.Dataset, error) {
	if width == d.NumFeatures() {
		return d, nil
	}
	if width == len(twosmart.CommonFeatures()) {
		return d.SelectByName(twosmart.CommonFeatures())
	}
	return nil, fmt.Errorf("server model wants %d features; corpus has %d and only the Common-%d projection is known",
		width, d.NumFeatures(), len(twosmart.CommonFeatures()))
}

type connResult struct {
	err       error
	sent      uint64
	verdicts  uint64
	shed      uint64
	alarms    uint64
	latencies []float64         // seconds
	versions  map[uint32]uint64 // summaries per model version (hot-swap visibility)
	byStream  map[uint32]uint64 // verdicts per stream id (cluster skew report)
}

// classify turns a connection failure into an operator-readable line:
// the common "server went away mid-run" socket errors get a clear
// diagnosis with the raw cause in parentheses.
func classify(err error) string {
	switch {
	case errors.Is(err, syscall.EPIPE), errors.Is(err, syscall.ECONNRESET):
		return fmt.Sprintf("server closed the connection mid-run (%v)", err)
	case errors.Is(err, io.ErrUnexpectedEOF):
		return "server closed the connection mid-run (stream cut mid-frame)"
	case errors.Is(err, io.EOF):
		return "server closed the connection mid-run (EOF before all stream summaries arrived)"
	default:
		return err.Error()
	}
}

// driveConn runs one agent connection: a sender pushing every stream's
// samples round-robin and a receiver matching verdicts back to send
// timestamps. Send times cross the goroutine boundary through atomics —
// the verdict for (stream, seq) is causally after its send, but the Go
// memory model still wants explicit synchronisation.
func driveConn(ctx context.Context, addr string, ci, streams, samples int, interval time.Duration, replay [][]float64) connResult {
	var res connResult
	c, err := serve.Dial(ctx, addr, fmt.Sprintf("smartload-%d", ci))
	if err != nil {
		res.err = err
		return res
	}
	defer c.Close()

	sendNanos := make([]atomic.Int64, streams*samples)
	recvDone := make(chan connResult, 1)
	go func() {
		var r connResult
		summaries := 0
		for summaries < streams {
			f, err := c.Next()
			if err != nil {
				r.err = err
				break
			}
			switch fr := f.(type) {
			case wire.Heartbeat:
				// Echo of a probe this sender stamped with its send time:
				// the round trip measures wire + server turnaround without
				// any scoring in the path.
				if rtt := time.Since(time.Unix(0, int64(fr.Nanos))).Seconds(); rtt > 0 {
					hbHist().Observe(rtt)
				}
			case wire.Verdict:
				r.verdicts++
				if fr.Flags&wire.FlagAlarm != 0 {
					r.alarms++
				}
				if r.byStream == nil {
					r.byStream = map[uint32]uint64{}
				}
				r.byStream[fr.Stream]++
				idx := int(fr.Stream)*samples + int(fr.Seq)
				if idx < len(sendNanos) {
					if t0 := sendNanos[idx].Load(); t0 != 0 {
						r.latencies = append(r.latencies, time.Since(time.Unix(0, t0)).Seconds())
					}
				}
			case wire.StreamSummary:
				r.shed += fr.Shed
				if r.versions == nil {
					r.versions = map[uint32]uint64{}
				}
				r.versions[fr.ModelVersion]++
				summaries++
			case wire.Error:
				r.err = fmt.Errorf("server error %d: %s", fr.Code, fr.Msg)
			}
			if r.err != nil {
				break
			}
		}
		recvDone <- r
	}()

	for s := 0; s < streams; s++ {
		if err := c.OpenStream(uint32(s), fmt.Sprintf("conn%d-app%d", ci, s)); err != nil {
			res.err = err
			return res
		}
	}
	var tick *time.Ticker
	if interval > 0 {
		tick = time.NewTicker(interval)
		defer tick.Stop()
	}
send:
	for i := 0; i < samples; i++ {
		for s := 0; s < streams; s++ {
			if ctx.Err() != nil {
				res.err = ctx.Err()
				break send
			}
			fv := replay[(i*streams+s)%len(replay)]
			sendNanos[s*samples+i].Store(time.Now().UnixNano())
			if err := c.Send(uint32(s), uint32(i), fv); err != nil {
				res.err = err
				break send
			}
			res.sent++
		}
		// Flush in bursts so frames actually hit the wire while keeping
		// syscalls amortised. Each burst carries one heartbeat probe so the
		// run samples wire RTT alongside verdict latency.
		if i%64 == 63 {
			if err := c.Heartbeat(uint64(time.Now().UnixNano())); err != nil {
				res.err = err
				break send
			}
			if err := c.Flush(); err != nil {
				res.err = err
				break send
			}
		}
		if tick != nil {
			select {
			case <-tick.C:
			case <-ctx.Done():
				res.err = ctx.Err()
				break send
			}
		}
	}
	if res.err == nil {
		for s := 0; s < streams; s++ {
			if err := c.CloseStream(uint32(s)); err != nil {
				res.err = err
				break
			}
		}
	}
	if err := c.Flush(); err != nil && res.err == nil {
		res.err = err
	}

	select {
	case r := <-recvDone:
		r.sent = res.sent
		if res.err != nil && r.err == nil {
			r.err = res.err
		}
		return r
	case <-time.After(60 * time.Second):
		res.err = fmt.Errorf("conn %d: receiver did not finish within 60s", ci)
		return res
	}
}

// quantile returns the q-th quantile of sorted latencies, formatted as a
// duration.
func quantile(sorted []float64, q float64) time.Duration {
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return time.Duration(sorted[idx] * float64(time.Second))
}
