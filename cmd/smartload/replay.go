package main

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"twosmart/internal/samplelog"
	"twosmart/internal/serve"
	"twosmart/internal/telemetry"
	"twosmart/internal/wire"
)

// replayStream is one recorded (app, stream) pair mapped onto a fresh
// wire stream id for the replay connection. The recorded stream ids came
// from many original connections, so they can collide; replay ids are
// assigned sequentially in first-appearance order. App names collide the
// same way (the engine rejects duplicate apps per connection), so a
// reused name gets a #stream suffix.
type replayStream struct {
	id     uint32
	app    string
	count  int // records assigned, fixed by the pre-pass
	opened bool
	seq    uint32
}

// runReplay is smartload's -replay mode: it feeds a recorded sample log
// (smartserve/smartgw -samplelog) back through the wire path on one
// connection, preserving the recorded inter-arrival timeline compressed
// by -amplify (0 = full speed). The recorded verdicts are ignored — the
// point is to re-serve the exact production feature stream and measure
// the live fleet's answers — but record order is the append order, so
// each original stream's samples replay in their original sequence.
func runReplay(ctx context.Context, addr, dir string, amplify int, reportOut string) {
	app.Log.Info("loading sample log", "dir", dir)
	var recs []samplelog.Record
	logRep, err := samplelog.ReadDir(dir, func(r samplelog.Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		app.Fatal(err)
	}
	if len(recs) == 0 {
		app.Fatal(fmt.Errorf("replay: no records in %s", dir))
	}
	app.Log.Info("loaded sample log",
		"records", len(recs), "segments", len(logRep.Segments),
		"torn_bytes", logRep.TornBytes, "corrupted", logRep.Corrupted,
		"span", time.Duration(logRep.LastNanos-logRep.FirstNanos).String())

	// Probe the target once: the recorded feature width must match the
	// served model exactly — a replay is a bit-for-bit re-serve, never a
	// projection.
	probe, err := serve.Dial(ctx, addr, "smartload-probe")
	if err != nil {
		app.Fatal(fmt.Errorf("dialing %s: %w", addr, err))
	}
	welcome := probe.Welcome()
	probe.Close()
	app.Log.Info("probed server",
		"model", welcome.Model, "model_version", welcome.ModelVersion,
		"features", welcome.NumFeatures)
	for i, r := range recs {
		if len(r.Features) != int(welcome.NumFeatures) {
			app.Fatal(fmt.Errorf("replay: record %d (app %q) has %d features; the served model wants %d — replay the log against a registry generation trained on the same width",
				i, r.App, len(r.Features), welcome.NumFeatures))
		}
	}

	streams, order := mapStreams(recs)
	app.Log.Info("starting replay",
		"records", len(recs), "streams", len(streams), "amplify", amplify)

	start := time.Now()
	agg := driveReplay(ctx, addr, recs, streams, order, amplify)
	elapsed := time.Since(start)
	if agg.err != nil {
		if ctx.Err() != nil {
			app.Fatal(context.Canceled)
		}
		app.Fatal(fmt.Errorf("replay: %s (sent %d/%d records, received %d verdicts)",
			classify(agg.err), agg.sent, len(recs), agg.verdicts))
	}

	perSec := float64(agg.sent) / elapsed.Seconds()
	fmt.Printf("replayed %d records over %d streams in %.2fs (%.0f samples/s, amplify %d)\n",
		agg.sent, len(streams), elapsed.Seconds(), perSec, amplify)
	fmt.Printf("verdicts %d (%.0f/s)  alarms %d\n", agg.verdicts, float64(agg.verdicts)/elapsed.Seconds(), agg.alarms)
	fmt.Printf("shed     %d\n", agg.shed)
	if len(agg.latencies) > 0 {
		sort.Float64s(agg.latencies)
		fmt.Printf("latency  p50=%s p95=%s p99=%s max=%s\n",
			quantile(agg.latencies, 0.50), quantile(agg.latencies, 0.95),
			quantile(agg.latencies, 0.99), quantile(agg.latencies, 1))
		lat := app.Telemetry.Histogram("load_verdict_latency_seconds", telemetry.LatencyBuckets)
		for _, l := range agg.latencies {
			lat.Observe(l)
		}
	}
	if hb := hbHist().Summary(); hb.Count > 0 {
		fmt.Printf("hb rtt   p50=%s p99=%s max=%s (%d echoes)\n",
			time.Duration(hb.P50*float64(time.Second)),
			time.Duration(hb.P99*float64(time.Second)),
			time.Duration(hb.Max*float64(time.Second)), hb.Count)
	}
	if reportOut != "" {
		rep := app.Telemetry.Report(app.Tool)
		rep.Results["replay_records"] = float64(len(recs))
		rep.Results["replay_streams"] = float64(len(streams))
		rep.Results["replay_amplify"] = float64(amplify)
		rep.Results["samples_sent"] = float64(agg.sent)
		rep.Results["verdicts"] = float64(agg.verdicts)
		rep.Results["shed"] = float64(agg.shed)
		rep.Results["alarms"] = float64(agg.alarms)
		rep.Results["wall_s"] = elapsed.Seconds()
		rep.Results["samples_per_s"] = perSec
		rep.Results["verdicts_per_s"] = float64(agg.verdicts) / elapsed.Seconds()
		if len(agg.latencies) > 0 {
			rep.Results["latency_p50_s"] = quantile(agg.latencies, 0.50).Seconds()
			rep.Results["latency_p99_s"] = quantile(agg.latencies, 0.99).Seconds()
		}
		rep.Results["model_version"] = float64(welcome.ModelVersion)
		rep.Notes = map[string]string{"model": welcome.Model, "replay_log": dir}
		if err := rep.WriteFile(reportOut); err != nil {
			app.Log.Error("write run report", "path", reportOut, "err", err)
		} else if reportOut != "-" {
			app.Log.Info("wrote run report", "path", reportOut)
		}
	}
}

// streamKey identifies one original stream inside the log. The pair is
// unique per original connection but not across the whole log, which is
// as close as the record format gets; a collision only merges two
// same-app streams onto one replay stream, preserving each one's order.
type streamKey struct {
	app    string
	stream uint32
}

// mapStreams assigns every recorded (app, stream) pair a replay stream
// id (sequential, in first-appearance order) and counts its records so
// the driver can pre-size its latency tables. order[i] is the replay
// stream carrying record i.
func mapStreams(recs []samplelog.Record) ([]*replayStream, []*replayStream) {
	byKey := make(map[streamKey]*replayStream)
	usedApps := make(map[string]bool)
	var streams []*replayStream
	order := make([]*replayStream, len(recs))
	for i, r := range recs {
		key := streamKey{app: r.App, stream: r.Stream}
		st := byKey[key]
		if st == nil {
			name := r.App
			if usedApps[name] {
				name = fmt.Sprintf("%s#%d", r.App, r.Stream)
			}
			usedApps[name] = true
			st = &replayStream{id: uint32(len(streams)), app: name}
			byKey[key] = st
			streams = append(streams, st)
		}
		st.count++
		order[i] = st
	}
	return streams, order
}

// driveReplay pushes the whole log through one connection: streams open
// lazily at their first record, samples pace against the recorded
// timeline compressed by amplify, and the receiver matches verdicts back
// to send times until every opened stream's summary has arrived.
func driveReplay(ctx context.Context, addr string, recs []samplelog.Record, streams []*replayStream, order []*replayStream, amplify int) connResult {
	var res connResult
	c, err := serve.Dial(ctx, addr, "smartload-replay")
	if err != nil {
		res.err = err
		return res
	}
	defer c.Close()

	// Send times cross to the receiver through atomics, indexed by the
	// replay (stream, seq) the verdict echoes back.
	sendNanos := make([][]atomic.Int64, len(streams))
	for _, st := range streams {
		sendNanos[st.id] = make([]atomic.Int64, st.count)
	}

	recvDone := make(chan connResult, 1)
	go func() {
		var r connResult
		summaries := 0
		for summaries < len(streams) {
			f, err := c.Next()
			if err != nil {
				r.err = err
				break
			}
			switch fr := f.(type) {
			case wire.Heartbeat:
				if rtt := time.Since(time.Unix(0, int64(fr.Nanos))).Seconds(); rtt > 0 {
					hbHist().Observe(rtt)
				}
			case wire.Verdict:
				r.verdicts++
				if fr.Flags&wire.FlagAlarm != 0 {
					r.alarms++
				}
				if int(fr.Stream) < len(sendNanos) && int(fr.Seq) < len(sendNanos[fr.Stream]) {
					if t0 := sendNanos[fr.Stream][fr.Seq].Load(); t0 != 0 {
						r.latencies = append(r.latencies, time.Since(time.Unix(0, t0)).Seconds())
					}
				}
			case wire.StreamSummary:
				r.shed += fr.Shed
				summaries++
			case wire.Error:
				r.err = fmt.Errorf("server error %d: %s", fr.Code, fr.Msg)
			}
			if r.err != nil {
				break
			}
		}
		recvDone <- r
	}()

	first := recs[0].Nanos
	start := time.Now()
send:
	for i, rec := range recs {
		if ctx.Err() != nil {
			res.err = ctx.Err()
			break send
		}
		// Pace against the recorded timeline: record i replays at
		// start + (its recorded offset ÷ amplify), so the whole log's
		// inter-arrival structure survives, just compressed. Targets
		// already in the past (and amplify 0) send immediately.
		if amplify > 0 {
			target := start.Add(time.Duration((rec.Nanos - first) / int64(amplify)))
			if d := time.Until(target); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					res.err = ctx.Err()
					break send
				}
			}
		}
		st := order[i]
		if !st.opened {
			if err := c.OpenStream(st.id, st.app); err != nil {
				res.err = err
				break send
			}
			st.opened = true
		}
		sendNanos[st.id][st.seq].Store(time.Now().UnixNano())
		if err := c.Send(st.id, st.seq, rec.Features); err != nil {
			res.err = err
			break send
		}
		st.seq++
		res.sent++
		if i%64 == 63 {
			if err := c.Heartbeat(uint64(time.Now().UnixNano())); err != nil {
				res.err = err
				break send
			}
			if err := c.Flush(); err != nil {
				res.err = err
				break send
			}
		}
	}
	if res.err == nil {
		for _, st := range streams {
			if !st.opened {
				// A stream whose only records were never reached (send
				// aborted early) was never opened; the receiver still
				// counts it, so open-close it for the summary.
				if err := c.OpenStream(st.id, st.app); err != nil {
					res.err = err
					break
				}
			}
			if err := c.CloseStream(st.id); err != nil {
				res.err = err
				break
			}
		}
	}
	if err := c.Flush(); err != nil && res.err == nil {
		res.err = err
	}

	select {
	case r := <-recvDone:
		r.sent = res.sent
		if res.err != nil && r.err == nil {
			r.err = res.err
		}
		return r
	case <-time.After(60 * time.Second):
		res.err = fmt.Errorf("replay receiver did not finish within 60s")
		return res
	}
}
