// Command hpctrace runs one synthetic application inside a disposable
// sandbox container and prints its HPC trace: per-10 ms-sample counts of up
// to four events (the modelled machine's programmable-counter limit), plus
// the fixed-function instruction and cycle counters.
//
// Usage:
//
//	hpctrace -class virus -id 3 -events branch-instructions,branch-misses
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"twosmart/internal/cli"
	"twosmart/internal/hpc"
	"twosmart/internal/microarch"
	"twosmart/internal/sandbox"
	"twosmart/internal/workload"
)

var app = cli.New("hpctrace")

func main() {
	class := flag.String("class", "benign", "application class: benign|backdoor|rootkit|virus|trojan")
	id := flag.Int("id", 0, "application variant id")
	events := flag.String("events", "branch-instructions,branch-misses,cache-references,node-stores",
		"comma-separated perf event names (at most 4)")
	budget := flag.Int64("budget", 4*workload.DefaultBudget, "dynamic instruction budget")
	seed := flag.Int64("seed", 0, "corpus seed")
	list := flag.Bool("list", false, "list the 44 available events and exit")
	stats := flag.Bool("stats", false, "also print whole-run microarchitectural statistics (simulator-omniscient)")
	flag.Parse()
	ctx := app.Start()
	defer app.Close()

	if *list {
		for _, e := range hpc.AllEvents() {
			fmt.Println(e)
		}
		return
	}

	cls, ok := workload.ClassByName(*class)
	if !ok {
		fatal(fmt.Errorf("unknown class %q", *class))
	}
	var evs []hpc.Event
	for _, name := range strings.Split(*events, ",") {
		e, ok := hpc.EventByName(strings.TrimSpace(name))
		if !ok {
			fatal(fmt.Errorf("unknown event %q (use -list)", name))
		}
		evs = append(evs, e)
	}

	prog := workload.Generate(cls, *id, workload.Options{Budget: *budget, Seed: *seed})
	mgr := sandbox.NewManager(microarch.DefaultConfig())
	c, err := mgr.Create()
	if err != nil {
		fatal(err)
	}
	defer c.Destroy()

	cf := hpc.NewCounterFile()
	if err := cf.Program(evs...); err != nil {
		fatal(err)
	}
	samples, err := c.Profile(prog.MustStream(), evs, sandbox.ProfileOptions{
		FreqHz: 4e6,
		Period: 10 * time.Millisecond,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("# app=%s container=%s events=%s\n", prog.Name, c.Name(), *events)
	fmt.Printf("%-7s %-12s %-12s", "sample", "instructions", "cycles")
	for _, e := range evs {
		fmt.Printf(" %-22s", e)
	}
	fmt.Println()
	for _, s := range samples {
		fmt.Printf("%-7d %-12d %-12d", s.Index, s.Fixed[0], s.Fixed[1])
		for _, v := range s.Counts {
			fmt.Printf(" %-22d", v)
		}
		fmt.Println()
	}

	if *stats {
		// Replay the identical deterministic program on an omniscient
		// core to report every structure's statistics (the 4-register
		// hardware above cannot observe these all at once).
		acc := &hpc.Accumulator{}
		core, err := microarch.NewCore(microarch.DefaultConfig(), acc)
		if err != nil {
			fatal(err)
		}
		core.Bind(workload.Generate(cls, *id, workload.Options{Budget: *budget, Seed: *seed}).MustStream())
		for core.Run(4096) > 0 {
			if err := ctx.Err(); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("\n# whole-run statistics (omniscient replay)\n%s", acc.Summary())
		if p, ok := workload.Describe(cls); ok {
			fmt.Printf("# behavioural model: %s\n", p.Behaviour)
		}
	}
}

func fatal(err error) {
	app.Fatal(err)
}
