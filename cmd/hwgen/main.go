// Command hwgen trains a specialized stage-2 detector and emits a
// synthesizable combinational Verilog module implementing it — the
// HDL-implementation step of the paper's hardware evaluation (Table V),
// here as generated RTL instead of a Vivado-HLS flow.
//
// Usage:
//
//	hwgen -class virus -kind J48 -hpcs 4 -o virus_j48.v
//	hwgen -class rootkit -kind JRip -hpcs 8
package main

import (
	"flag"
	"fmt"
	"os"

	"twosmart"
	"twosmart/internal/cli"
	"twosmart/internal/core"
	"twosmart/internal/hls"
	"twosmart/internal/workload"
)

var app = cli.New("hwgen")

func main() {
	className := flag.String("class", "virus", "malware class: backdoor|rootkit|virus|trojan")
	kindName := flag.String("kind", "J48", "classifier kind: J48|JRip|OneR (combinational families)")
	hpcs := flag.Int("hpcs", 4, "feature count: 4 (Common) or 8 (per-class Custom)")
	scale := flag.Float64("scale", 0.05, "training corpus scale")
	seed := flag.Int64("seed", 42, "training seed")
	module := flag.String("module", "", "Verilog module name (default <class>_<kind>)")
	out := flag.String("o", "", "output file (default stdout)")
	tbOut := flag.String("tb", "", "also write a self-checking testbench (with dataset-derived vectors) to this file")
	tbVectors := flag.Int("vectors", 32, "number of testbench vectors")
	flag.Parse()
	ctx := app.Start()
	defer app.Close()

	class, ok := workload.ClassByName(*className)
	if !ok || !class.IsMalware() {
		fatal(fmt.Errorf("unknown malware class %q", *className))
	}
	kind, ok := core.KindByName(*kindName)
	if !ok {
		fatal(fmt.Errorf("unknown classifier kind %q", *kindName))
	}
	var feats []string
	switch *hpcs {
	case 4:
		feats = twosmart.CommonFeatures()
	case 8:
		var err error
		feats, err = twosmart.CustomFeatures(class)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("-hpcs must be 4 or 8, got %d", *hpcs))
	}

	app.Log.Info("collecting corpus and training detector", "scale", *scale, "kind", kind.String(), "class", class.String())
	data, err := twosmart.CollectContext(ctx, twosmart.CollectConfig{
		Scale: *scale, Seed: *seed, Omniscient: true,
		Telemetry: app.Telemetry, Progress: app.Progress("profiling"),
	})
	if err != nil {
		fatal(err)
	}
	if err := ctx.Err(); err != nil {
		fatal(err)
	}
	binary, err := core.BinaryTask(data, class)
	if err != nil {
		fatal(err)
	}
	binary, err = binary.SelectByName(feats)
	if err != nil {
		fatal(err)
	}
	model, err := core.NewTrainer(kind, *seed).Train(binary)
	if err != nil {
		fatal(err)
	}

	name := *module
	if name == "" {
		name = fmt.Sprintf("%s_%s", class, kind)
	}
	verilog, err := hls.GenerateVerilog(model, name, feats)
	if err != nil {
		fatal(err)
	}
	cost, err := hls.Estimate(model)
	if err != nil {
		fatal(err)
	}
	app.Log.Info("estimated cost",
		"cycles@10ns", cost.LatencyCycles, "luts", cost.LUTs, "ffs", cost.FFs,
		"area_pct_opensparc", fmt.Sprintf("%.2f", cost.AreaPercent()))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if _, err := fmt.Fprint(w, verilog); err != nil {
		fatal(err)
	}
	if *out != "" {
		app.Log.Info("wrote Verilog", "path", *out)
	}

	if *tbOut != "" {
		n := *tbVectors
		if n > binary.Len() {
			n = binary.Len()
		}
		vectors := make([][]float64, 0, n)
		for _, ins := range binary.Instances[:n] {
			vectors = append(vectors, ins.Features)
		}
		tb, err := hls.GenerateTestbench(model, name, feats, vectors)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*tbOut, []byte(tb), 0o644); err != nil {
			fatal(err)
		}
		app.Log.Info("wrote testbench", "vectors", len(vectors), "path", *tbOut)
	}
}

func fatal(err error) {
	app.Fatal(err)
}
