package main

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// benchLog renders a synthetic go-test bench log with count repeats per
// benchmark; ns draws jitter around the given center.
func benchLog(rng *rand.Rand, count int, rows map[string]struct {
	ns     float64
	allocs int
}) string {
	var b strings.Builder
	b.WriteString("goos: linux\ngoarch: amd64\npkg: twosmart\n")
	for name, row := range rows {
		for i := 0; i < count; i++ {
			ns := row.ns * (1 + 0.02*(rng.Float64()-0.5))
			fmt.Fprintf(&b, "%s-8   \t 1000\t %.2f ns/op\t 16 B/op\t %d allocs/op\n", name, ns, row.allocs)
		}
	}
	b.WriteString("PASS\nok  \ttwosmart\t1.2s\n")
	return b.String()
}

type row = struct {
	ns     float64
	allocs int
}

func TestParseBench(t *testing.T) {
	log := "BenchmarkScoreDetector/compiled-16 \t 500 \t 150.5 ns/op \t 0 B/op \t 0 allocs/op\n" +
		"BenchmarkScoreDetector/compiled-16 \t 500 \t 151.5 ns/op \t 0 B/op \t 0 allocs/op\n" +
		"not a bench line\n" +
		"BenchmarkObserve/disabled-16 \t 900 \t 22.1 ns/op\n"
	got, err := parseBench(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	s := got["BenchmarkScoreDetector/compiled"]
	if s == nil || len(s.NsOp) != 2 || len(s.AllocsOp) != 2 {
		t.Fatalf("parsed %+v", got)
	}
	if s.NsOp[0] != 150.5 || s.AllocsOp[1] != 0 {
		t.Fatalf("values %+v", s)
	}
	if o := got["BenchmarkObserve/disabled"]; o == nil || len(o.NsOp) != 1 || len(o.AllocsOp) != 0 {
		t.Fatalf("no-allocs benchmark parsed as %+v", o)
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":          "BenchmarkX",
		"BenchmarkX-128":        "BenchmarkX",
		"BenchmarkX/sub-case-4": "BenchmarkX/sub-case",
		"BenchmarkX/odd-name":   "BenchmarkX/odd-name",
		"BenchmarkNoSuffix":     "BenchmarkNoSuffix",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median %v", m)
	}
}

func TestMannWhitney(t *testing.T) {
	a := []float64{10, 10.1, 9.9, 10.05, 9.95, 10.02}
	shifted := []float64{13, 13.1, 12.9, 13.05, 12.95, 13.02}
	if p := mannWhitneyP(a, shifted); p > 0.05 {
		t.Fatalf("clear shift not significant: p=%v", p)
	}
	if p := mannWhitneyP(a, a); p != 1 {
		t.Fatalf("identical samples p=%v, want 1", p)
	}
	b := []float64{10.01, 10.09, 9.91, 10.06, 9.94, 10.03}
	if p := mannWhitneyP(a, b); p < 0.05 {
		t.Fatalf("same-distribution samples significant: p=%v", p)
	}
}

func TestGateRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base, err := parseBench(strings.NewReader(benchLog(rng, 6, map[string]row{
		"BenchmarkScoreDetector/compiled": {ns: 150, allocs: 0},
		"BenchmarkObserve/disabled":       {ns: 22, allocs: 0},
	})))
	if err != nil {
		t.Fatal(err)
	}
	head, err := parseBench(strings.NewReader(benchLog(rng, 6, map[string]row{
		"BenchmarkScoreDetector/compiled": {ns: 200, allocs: 0}, // +33% ns/op
		"BenchmarkObserve/disabled":       {ns: 22, allocs: 0},
	})))
	if err != nil {
		t.Fatal(err)
	}
	results := compare(base, head, 0.10, 0.05)
	if !hasRegression(results, "BenchmarkScoreDetector/compiled", "ns/op") {
		t.Fatalf("33%% slowdown not gated: %+v", results)
	}
	if hasRegression(results, "BenchmarkObserve/disabled", "ns/op") {
		t.Fatalf("unchanged benchmark gated: %+v", results)
	}
}

func TestGateAllocRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base, _ := parseBench(strings.NewReader(benchLog(rng, 6, map[string]row{
		"BenchmarkScoreDetector/compiled": {ns: 150, allocs: 0},
	})))
	head, _ := parseBench(strings.NewReader(benchLog(rng, 6, map[string]row{
		"BenchmarkScoreDetector/compiled": {ns: 150, allocs: 1}, // lost the 0-alloc contract
	})))
	results := compare(base, head, 0.10, 0.05)
	if !hasRegression(results, "BenchmarkScoreDetector/compiled", "allocs/op") {
		t.Fatalf("alloc increase from 0 not gated: %+v", results)
	}
}

func TestGateWithinThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base, _ := parseBench(strings.NewReader(benchLog(rng, 6, map[string]row{
		"BenchmarkScoreMonitor/compiled": {ns: 150, allocs: 0},
	})))
	head, _ := parseBench(strings.NewReader(benchLog(rng, 6, map[string]row{
		"BenchmarkScoreMonitor/compiled": {ns: 158, allocs: 0}, // +5%: significant but tolerated
	})))
	for _, r := range compare(base, head, 0.10, 0.05) {
		if r.Regressed {
			t.Fatalf("within-threshold change gated: %+v", r)
		}
	}
}

func TestGateSkipsUnmatched(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base, _ := parseBench(strings.NewReader(benchLog(rng, 6, map[string]row{
		"BenchmarkOld": {ns: 10, allocs: 0},
	})))
	head, _ := parseBench(strings.NewReader(benchLog(rng, 6, map[string]row{
		"BenchmarkNew": {ns: 10, allocs: 0},
	})))
	results := compare(base, head, 0.10, 0.05)
	if len(results) != 2 {
		t.Fatalf("results %+v", results)
	}
	for _, r := range results {
		if !r.Skipped || r.Regressed {
			t.Fatalf("unmatched benchmark not skipped: %+v", r)
		}
	}
	var out strings.Builder
	if report(&out, results) {
		t.Fatalf("skips reported as failure:\n%s", out.String())
	}
}

// TestGateSkipsSingleSample pins that a log with fewer than two runs per
// benchmark (a -count=1 or truncated log) skips the gate with a note
// instead of producing a spurious verdict from a one-sample "test".
func TestGateSkipsSingleSample(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base, _ := parseBench(strings.NewReader(benchLog(rng, 1, map[string]row{
		"BenchmarkScoreDetector/compiled": {ns: 150, allocs: 0},
	})))
	head, _ := parseBench(strings.NewReader(benchLog(rng, 6, map[string]row{
		"BenchmarkScoreDetector/compiled": {ns: 400, allocs: 0}, // huge shift, but base has 1 run
	})))
	results := compare(base, head, 0.10, 0.05)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range results {
		if !r.Skipped {
			t.Fatalf("single-sample base not skipped: %+v", r)
		}
		if r.Regressed {
			t.Fatalf("single-sample base gated: %+v", r)
		}
		if !strings.Contains(r.SkipReason, "too few") {
			t.Fatalf("skip reason %q does not explain the sample shortfall", r.SkipReason)
		}
	}
	var out strings.Builder
	if report(&out, results) {
		t.Fatalf("single-sample skip reported as failure:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "too few") {
		t.Fatalf("report does not carry the skip note:\n%s", out.String())
	}
}

func TestReportFailureText(t *testing.T) {
	var out strings.Builder
	failed := report(&out, []result{
		{Name: "BenchmarkX", Metric: "ns/op", BaseMed: 100, HeadMed: 140, P: 0.002, Regressed: true},
		{Name: "BenchmarkY", Metric: "ns/op", BaseMed: 100, HeadMed: 101, P: 0.4},
	})
	if !failed {
		t.Fatal("regression did not fail the gate")
	}
	text := out.String()
	if !strings.Contains(text, "REGRESSION") || !strings.Contains(text, "+40.0%") {
		t.Fatalf("report text:\n%s", text)
	}
}

func hasRegression(results []result, name, metric string) bool {
	for _, r := range results {
		if r.Name == name && r.Metric == metric && r.Regressed {
			return true
		}
	}
	return false
}
