// Command benchgate compares two `go test -bench` logs (base and head of a
// pull request, each run with -count=N) and exits non-zero when head shows
// a statistically significant regression: median ns/op more than -threshold
// worse than base with a Mann-Whitney U p-value below -alpha, or any
// significant increase in allocs/op. Benchmarks present in only one log are
// reported and skipped, so a PR that introduces new benchmarks can
// bootstrap the gate.
//
// benchstat produces the human-readable comparison artifact in CI; this
// tool exists so the pass/fail decision is deterministic, dependency-free
// and testable in-repo.
//
// Usage:
//
//	benchgate -base base.txt -head head.txt [-threshold 0.10] [-alpha 0.05]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	base := flag.String("base", "", "benchmark log of the base commit")
	head := flag.String("head", "", "benchmark log of the head commit")
	threshold := flag.Float64("threshold", 0.10, "tolerated fractional ns/op regression")
	alpha := flag.Float64("alpha", 0.05, "Mann-Whitney significance level")
	flag.Parse()
	if *base == "" || *head == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		os.Exit(2)
	}
	baseRuns, err := parseFile(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	headRuns, err := parseFile(*head)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	results := compare(baseRuns, headRuns, *threshold, *alpha)
	failed := report(os.Stdout, results)
	if failed {
		os.Exit(1)
	}
}

// samples holds one benchmark's repeated measurements from one log.
type samples struct {
	NsOp     []float64
	AllocsOp []float64
}

func parseFile(path string) (map[string]*samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

// parseBench extracts per-benchmark ns/op and allocs/op series from go test
// -bench output. The trailing -N GOMAXPROCS suffix is stripped so logs from
// machines with different core counts still line up.
func parseBench(r io.Reader) (map[string]*samples, error) {
	out := make(map[string]*samples)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcs(fields[0])
		s := out[name]
		if s == nil {
			s = &samples{}
			out[name] = s
		}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.NsOp = append(s.NsOp, v)
			case "allocs/op":
				s.AllocsOp = append(s.AllocsOp, v)
			}
		}
	}
	return out, sc.Err()
}

// stripProcs removes the "-8" style GOMAXPROCS suffix from a benchmark name.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// result is one benchmark metric's comparison.
type result struct {
	Name, Metric        string
	BaseMed, HeadMed, P float64
	Regressed, Skipped  bool
	SkipReason          string
}

// compare gates every benchmark present in both logs. A metric regresses
// when the head median is worse than the tolerated fraction over base AND
// the shift is statistically significant; allocs/op tolerates no increase
// at all (the compiled hot path's contract is exactly zero).
func compare(base, head map[string]*samples, threshold, alpha float64) []result {
	names := make([]string, 0, len(head))
	for name := range head {
		names = append(names, name)
	}
	for name := range base {
		if _, ok := head[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []result
	for _, name := range names {
		b, inBase := base[name]
		h, inHead := head[name]
		if !inBase || !inHead {
			reason := "only in head (new benchmark)"
			if !inHead {
				reason = "only in base (removed benchmark)"
			}
			out = append(out, result{Name: name, Skipped: true, SkipReason: reason})
			continue
		}
		out = append(out, gate(name, "ns/op", b.NsOp, h.NsOp, threshold, alpha))
		if len(b.AllocsOp) > 0 && len(h.AllocsOp) > 0 {
			out = append(out, gate(name, "allocs/op", b.AllocsOp, h.AllocsOp, 0, alpha))
		}
	}
	return out
}

func gate(name, metric string, base, head []float64, threshold, alpha float64) result {
	r := result{Name: name, Metric: metric, BaseMed: median(base), HeadMed: median(head)}
	if len(base) < 2 || len(head) < 2 {
		// A single measurement cannot carry a significance test; a log from
		// a -count=1 run (or a truncated one) skips the gate instead of
		// producing a spurious verdict either way.
		r.Skipped = true
		r.SkipReason = fmt.Sprintf("too few %s samples (base %d, head %d; need 2+ each)",
			metric, len(base), len(head))
		return r
	}
	worse := r.HeadMed > r.BaseMed*(1+threshold)
	if r.BaseMed == 0 {
		worse = r.HeadMed > 0
	}
	r.P = mannWhitneyP(base, head)
	r.Regressed = worse && r.P < alpha
	return r
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// mannWhitneyP is the two-sided Mann-Whitney U test p-value under the
// normal approximation with tie correction — the same test benchstat uses
// for its delta column. Identical distributions (zero variance) return 1.
func mannWhitneyP(a, b []float64) float64 {
	n1, n2 := float64(len(a)), float64(len(b))
	all := make([]float64, 0, len(a)+len(b))
	all = append(all, a...)
	all = append(all, b...)
	sorted := append([]float64(nil), all...)
	sort.Float64s(sorted)

	// Average ranks with ties; count tie group sizes for the variance
	// correction.
	rank := make(map[float64]float64)
	var tieTerm float64
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		t := float64(j - i)
		rank[sorted[i]] = float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		tieTerm += t*t*t - t
		i = j
	}
	var r1 float64
	for _, v := range a {
		r1 += rank[v]
	}
	u := r1 - n1*(n1+1)/2
	n := n1 + n2
	mean := n1 * n2 / 2
	variance := n1 * n2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if variance <= 0 {
		return 1
	}
	z := math.Abs(u-mean) / math.Sqrt(variance)
	return math.Erfc(z / math.Sqrt2)
}

// report renders the comparison table and returns whether any metric
// regressed.
func report(w io.Writer, results []result) bool {
	failed := false
	fmt.Fprintf(w, "%-55s %-10s %14s %14s %8s  %s\n", "benchmark", "metric", "base(med)", "head(med)", "p", "verdict")
	for _, r := range results {
		if r.Skipped {
			fmt.Fprintf(w, "%-55s %-10s %14s %14s %8s  skip: %s\n", r.Name, r.Metric, "-", "-", "-", r.SkipReason)
			continue
		}
		verdict := "ok"
		if r.Regressed {
			verdict = "REGRESSION"
			failed = true
		}
		delta := "~"
		if r.BaseMed > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(r.HeadMed-r.BaseMed)/r.BaseMed)
		}
		fmt.Fprintf(w, "%-55s %-10s %14.4g %14.4g %8.3f  %s (%s)\n",
			r.Name, r.Metric, r.BaseMed, r.HeadMed, r.P, verdict, delta)
	}
	if failed {
		fmt.Fprintln(w, "\nbenchgate: statistically significant benchmark regression detected")
	}
	return failed
}
