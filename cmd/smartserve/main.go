// Command smartserve is the fleet-scale streaming detection service: it
// loads a trained detector (from smartrain -model, or the active version
// of a smartctl-managed registry), listens for agent connections
// speaking the internal/wire protocol and streams verdicts back for
// every HPC sample received. Each (connection, app) stream gets its own
// compiled detector and smoothing monitor; an overloaded server sheds
// the oldest queued samples instead of building unbounded backlog.
//
// With -registry the server supports zero-downtime model swaps: SIGHUP
// re-reads the registry's active version, and -watch polls it so a
// `smartctl promote` lands without any signal at all. In-flight streams
// finish on the model generation they opened with; new streams pick up
// the promoted version. -shadow N scores registry version N side-by-side
// off the hot path and reports verdict divergence at exit; a published
// drift reference turns on live feature-distribution monitoring, whose
// verdict ("ok" / "retrain-or-rollback") lands in the -report document.
//
// With -samplelog DIR every scored sample is recorded to a segmented,
// checksummed, append-only log (features, verdict, score, model version)
// written off the hot path — the substrate for `smartctl backtest` and
// `smartload -replay`. A slow log disk sheds records (counted in
// samplelog_dropped_total) instead of ever stalling verdicts.
//
// With -envelope (or a registry entry published with an envelope) the
// server runs the stage-0 anomaly cascade ahead of the detector: samples
// inside the benign envelope short-circuit to a benign verdict without
// touching stage 1/2, and -cascade-threshold tunes (or, negative,
// disables) the short-circuit boundary. Cascade cost and effectiveness
// are exported as cascade_* metrics and a stage0 trace hop.
//
// On SIGINT/SIGTERM the server drains gracefully — stops accepting,
// scores and flushes everything already queued — and exits 130.
//
// Behind a smartgw gateway, run each instance with -shard: the gateway
// health-checks shards over the same wire protocol and consistent-hashes
// (agent, app) streams across them. -idle-timeout (defaulted to 5m by
// -shard) reaps connections whose peer stops sending entirely, so a dead
// agent or gateway cannot pin tracker and ring memory forever.
//
// Usage:
//
//	smartrain -runtime -model det.json -envelope env.json
//	smartserve -model det.json -addr :7643
//	smartserve -model det.json -envelope env.json -cascade-threshold 0
//	smartserve -registry models/ -watch -shadow 3 -report run.json
//	smartserve -model det.json -shard -addr :7644   # behind smartgw
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"twosmart"
	"twosmart/internal/anomaly"
	"twosmart/internal/cli"
	"twosmart/internal/core"
	"twosmart/internal/drift"
	"twosmart/internal/monitor"
	"twosmart/internal/persist"
	"twosmart/internal/registry"
	"twosmart/internal/samplelog"
	"twosmart/internal/serve"
	"twosmart/internal/shadow"
	"twosmart/internal/trace"
)

var app = cli.New("smartserve")

func main() {
	addr := flag.String("addr", "127.0.0.1:7643", "TCP listen address (use :0 for a random port; the bound address is printed on stdout)")
	modelIn := flag.String("model", "", "detector to serve (JSON, from smartrain -model); this or -registry is required")
	regDir := flag.String("registry", "", "serve the active version of this model registry (see smartctl) instead of -model")
	watch := flag.Bool("watch", false, "with -registry: poll the manifest and hot-swap when the active version changes")
	watchInterval := flag.Duration("watch-interval", 2*time.Second, "with -watch: manifest poll interval")
	shadowVer := flag.Int("shadow", 0, "with -registry: score this version side-by-side off the hot path and report divergence at exit")
	driftAlert := flag.Float64("drift-alert", 0, "PSI above which drift monitoring recommends retrain-or-rollback (0 = default 0.25; needs a registry entry published with -reference)")
	reportOut := flag.String("report", "", "write the machine-readable run report (JSON: stage timings, drift assessment, shadow divergence) to this file (- for stdout)")
	queueDepth := flag.Int("queue-depth", 4096, "per-connection ingress queue depth; beyond it the oldest samples are shed")
	maxBatch := flag.Int("max-batch", 512, "largest per-stream scoring micro-batch")
	workers := flag.Int("workers", 0, "per-connection scoring fan-out across streams (0 = NumCPU)")
	shard := flag.Bool("shard", false, "run as a backend shard behind smartgw: tags logs with the shard role and defaults -idle-timeout to 5m so abandoned gateway connections are reaped")
	shardID := flag.String("shard-id", "", "stable shard identity for per-shard version pins (the registry pin table key smartctl rollout targets); implies -shard. With -registry the shard serves its pinned version when one exists, the active version otherwise")
	idleTimeout := flag.Duration("idle-timeout", 0, "reap connections that send no frame (not even a Heartbeat) for this long (0 = never; -shard defaults it to 5m)")
	alpha := flag.Float64("alpha", 0, "EWMA smoothing coefficient in (0,1] (0 = monitor default)")
	raise := flag.Float64("raise", 0, "smoothed score above which the alarm raises (0 = monitor default)")
	clear := flag.Float64("clear", 0, "smoothed score below which the alarm clears (0 = monitor default)")
	traceSample := flag.Int("trace-sample", 1024, "capture one end-to-end trace per this many scored samples (0 = tracing off; served at /debug/traces with -telemetry-addr)")
	traceDepth := flag.Int("trace-depth", 256, "trace ring capacity (rounded up to a power of two)")
	sampleLogDir := flag.String("samplelog", "", "record every scored sample (features, verdict, score, model version) to this durable log directory for smartctl backtest / smartload -replay; written off the hot path, a slow disk sheds records instead of stalling verdicts")
	sampleLogSegment := flag.Int64("samplelog-segment", 8<<20, "with -samplelog: rotate segments at this many bytes")
	sampleLogRetain := flag.Int("samplelog-retain", 64, "with -samplelog: keep at most this many segments, pruning oldest-first (-1 = unbounded)")
	envelopeIn := flag.String("envelope", "", "with -model: stage-0 anomaly envelope (JSON, from smartrain -envelope) enabling the detection cascade; with -registry the active entry's published envelope is used instead")
	cascadeThreshold := flag.Float64("cascade-threshold", 0, "stage-0 short-circuit threshold: 0 uses the envelope's calibrated threshold, >0 overrides it, <0 disables the cascade even when an envelope is present")
	flag.Parse()
	ctx := app.Start()
	defer app.Close()

	tracer := trace.New(trace.Config{SampleEvery: *traceSample, Depth: *traceDepth})
	app.DebugHandle("/debug/traces", tracer.Handler())

	if *shardID != "" {
		*shard = true
	}
	if *shard {
		app.Log = app.Log.With("role", "shard")
		if *shardID != "" {
			app.Log = app.Log.With("shard_id", *shardID)
		}
		if *idleTimeout == 0 {
			*idleTimeout = 5 * time.Minute
		}
	}

	if (*modelIn == "") == (*regDir == "") {
		app.Fatal(fmt.Errorf("exactly one of -model or -registry is required (train one with: smartrain -runtime -model det.json)"))
	}

	var (
		reg     *registry.Registry
		initial serve.Model
		err     error
	)
	if *regDir != "" {
		if *envelopeIn != "" {
			app.Fatal(fmt.Errorf("-envelope only applies with -model; registry entries carry their envelope (publish one with: smartctl publish -envelope env.json)"))
		}
		reg, err = registry.Open(*regDir)
		if err != nil {
			app.Fatal(err)
		}
		initial, err = loadFromRegistry(reg, *driftAlert, *shardID)
	} else {
		initial, err = loadFromFile(*modelIn)
		if err == nil && *envelopeIn != "" {
			initial.Envelope, err = loadEnvelope(*envelopeIn)
		}
	}
	if err != nil {
		app.Fatal(err)
	}

	var sampleLog *samplelog.Writer
	if *sampleLogDir != "" {
		sampleLog, err = samplelog.OpenWriter(samplelog.WriterConfig{
			Dir:          *sampleLogDir,
			SegmentBytes: *sampleLogSegment,
			MaxSegments:  *sampleLogRetain,
			Telemetry:    app.Telemetry,
		})
		if err != nil {
			app.Fatal(err)
		}
		app.Log.Info("sample log attached", "dir", *sampleLogDir,
			"segment_bytes", *sampleLogSegment, "retain", *sampleLogRetain)
	}

	srv, err := serve.New(serve.Config{
		Detector:         initial.Detector,
		Model:            initial.Name,
		ModelVersion:     initial.Version,
		Drift:            initial.Drift,
		Envelope:         initial.Envelope,
		CascadeThreshold: *cascadeThreshold,
		Monitor:          monitor.Config{Alpha: *alpha, RaiseThreshold: *raise, ClearThreshold: *clear, Telemetry: app.Telemetry},
		QueueDepth:       *queueDepth,
		MaxBatch:         *maxBatch,
		Workers:          *workers,
		IdleTimeout:      *idleTimeout,
		Telemetry:        app.Telemetry,
		Tracer:           tracer,
		SampleLog:        sampleLog,
		Log:              app.Log,
	})
	if err != nil {
		app.Fatal(err)
	}
	if am := srv.ActiveModel(); am.CascadeEnabled() {
		app.Log.Info("stage-0 cascade enabled", "threshold", am.CascadeThreshold())
	}

	var sh *shadow.Shadow
	if *shadowVer != 0 {
		if reg == nil {
			app.Fatal(fmt.Errorf("-shadow needs -registry"))
		}
		cand, entry, err := reg.Load(*shadowVer)
		if err != nil {
			app.Fatal(err)
		}
		sh, err = shadow.New(cand, shadow.Config{Version: entry.Version, Telemetry: app.Telemetry})
		if err != nil {
			app.Fatal(err)
		}
		if err := srv.SetShadow(sh); err != nil {
			app.Fatal(err)
		}
		app.Log.Info("shadow scoring attached", "version", entry.Version, "sha256", entry.SHA256)
	}

	// Hot-swap triggers: SIGHUP always re-reads the registry; -watch
	// polls it so a promote lands without any operator signal.
	if reg != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-hup:
					swapFromRegistry(srv, reg, *driftAlert, *shardID, "SIGHUP")
				}
			}
		}()
		if *watch {
			// WatchEffective tracks this shard's pinned-else-active
			// version, so a pin-table-only manifest write (smartctl
			// rollout start) swaps the canary without any promotion.
			go reg.WatchEffective(ctx, *watchInterval, *shardID, initial.Version,
				func(registry.Entry) { swapFromRegistry(srv, reg, *driftAlert, *shardID, "watch") },
				func(err error) { app.Log.Warn("registry watch", "err", err) })
		}
		if *shardID != "" {
			// The pinned gauge can change without an effective-version
			// change (widen promotes the candidate, then unpins), so it
			// refreshes on its own poll rather than riding the watch.
			go func() {
				tick := time.NewTicker(*watchInterval)
				defer tick.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-tick.C:
						updatePinnedGauge(reg, *shardID)
					}
				}
			}()
		}
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		app.Fatal(err)
	}
	// The bound address goes to stdout so scripts using -addr :0 can
	// capture it (logs go to stderr).
	fmt.Printf("listening %s\n", bound)
	app.Log.Info("serving detector",
		"model", initial.Name, "version", initial.Version,
		"features", srv.NumFeatures(), "addr", bound.String())

	serveErr := srv.Serve(ctx)
	finish(srv, sh, sampleLog, *reportOut)
	if serveErr != nil {
		app.Fatal(serveErr)
	}
	if ctx.Err() != nil {
		app.Log.Info("drained cleanly after signal")
		app.Close()
		os.Exit(cli.ExitInterrupted)
	}
}

// loadFromFile loads a detector blob from disk, logging its SHA-256 so
// operators can tie the running process to an artifact.
func loadFromFile(path string) (serve.Model, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return serve.Model{}, err
	}
	det, err := twosmart.LoadDetector(blob)
	if err != nil {
		return serve.Model{}, err
	}
	sum := sha256.Sum256(blob)
	sha := hex.EncodeToString(sum[:])
	app.Log.Info("model loaded", "path", path, "sha256", sha, "features", det.NumFeatures())
	return serve.Model{Detector: det, Name: filepath.Base(path)}, nil
}

// loadFromRegistry loads the shard's effective registry version — its
// pin when -shard-id names one, the active version otherwise (integrity
// checked against the manifest) — and builds its drift monitor when the
// entry carries a training-time feature reference.
func loadFromRegistry(reg *registry.Registry, alertPSI float64, shardID string) (serve.Model, error) {
	det, entry, err := reg.LoadEffective(shardID)
	if err != nil {
		return serve.Model{}, err
	}
	updatePinnedGauge(reg, shardID)
	m := serve.Model{
		Detector: det,
		Version:  entry.Version,
		Name:     fmt.Sprintf("%s@v%d", filepath.Base(reg.Root()), entry.Version),
	}
	m.Drift, err = driftMonitorFor(det, entry, alertPSI)
	if err != nil {
		return serve.Model{}, err
	}
	m.Envelope, err = cascadeEnvelopeFor(entry)
	if err != nil {
		return serve.Model{}, err
	}
	app.Log.Info("model loaded", "registry", reg.Root(), "version", entry.Version,
		"sha256", entry.SHA256, "features", det.NumFeatures(), "drift", m.Drift != nil,
		"envelope", m.Envelope != nil)
	return m, nil
}

// loadEnvelope reads a stage-0 anomaly envelope written by smartrain
// -envelope.
func loadEnvelope(path string) (*anomaly.Envelope, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	env, err := persist.UnmarshalEnvelope(blob)
	if err != nil {
		return nil, fmt.Errorf("envelope %s: %w", path, err)
	}
	app.Log.Info("envelope loaded", "path", path,
		"features", env.NumFeatures(), "threshold", env.Threshold)
	return env, nil
}

// cascadeEnvelopeFor returns the entry's published stage-0 envelope, or
// nil when the entry predates envelope publishing — older registries keep
// serving, just with the cascade disabled.
func cascadeEnvelopeFor(entry registry.Entry) (*anomaly.Envelope, error) {
	env, err := entry.CascadeEnvelope()
	if err != nil {
		if errors.Is(err, registry.ErrNoEnvelope) {
			app.Log.Info("registry entry has no stage-0 envelope; cascade disabled", "version", entry.Version)
			return nil, nil
		}
		return nil, err
	}
	return env, nil
}

// updatePinnedGauge keeps serve_rollout_pinned at 1 while this shard is
// the target of a registry pin (a baking canary) and 0 when it follows
// the active version — the fleet status plane renders it as the ROLLOUT
// column. Manifest read errors leave the gauge untouched; the next poll
// retries.
func updatePinnedGauge(reg *registry.Registry, shardID string) {
	if shardID == "" {
		return
	}
	m, err := reg.Manifest()
	if err != nil {
		return
	}
	var pinned float64
	if _, ok := m.Pins[shardID]; ok {
		pinned = 1
	}
	app.Telemetry.Gauge("serve_rollout_pinned").Set(pinned)
}

func driftMonitorFor(det *core.Detector, entry registry.Entry, alertPSI float64) (*drift.Monitor, error) {
	if entry.Reference == nil {
		return nil, nil
	}
	mon, err := drift.NewMonitor(entry.Reference, drift.Config{AlertPSI: alertPSI, Telemetry: app.Telemetry})
	if err != nil {
		return nil, fmt.Errorf("registry v%d drift reference: %w", entry.Version, err)
	}
	if want := det.NumFeatures(); mon.NumFeatures() != want {
		return nil, fmt.Errorf("registry v%d drift reference is %d-wide, detector expects %d features",
			entry.Version, mon.NumFeatures(), want)
	}
	return mon, nil
}

// swapFromRegistry re-reads the shard's effective registry version
// (pinned-else-active) and promotes it into the running server.
// In-flight streams keep the generation they opened with; a
// same-version trigger is a logged no-op.
func swapFromRegistry(srv *serve.Server, reg *registry.Registry, alertPSI float64, shardID, trigger string) {
	cur := srv.ActiveModel()
	det, entry, err := reg.LoadEffective(shardID)
	if err != nil {
		app.Log.Error("hot swap failed", "trigger", trigger, "err", err)
		return
	}
	updatePinnedGauge(reg, shardID)
	if entry.Version == cur.Version {
		app.Log.Info("hot swap skipped: version unchanged", "trigger", trigger, "version", entry.Version)
		return
	}
	mon, err := driftMonitorFor(det, entry, alertPSI)
	if err != nil {
		app.Log.Error("hot swap failed", "trigger", trigger, "err", err)
		return
	}
	env, err := cascadeEnvelopeFor(entry)
	if err != nil {
		app.Log.Error("hot swap failed", "trigger", trigger, "err", err)
		return
	}
	next := serve.Model{
		Detector: det,
		Version:  entry.Version,
		Name:     fmt.Sprintf("%s@v%d", filepath.Base(reg.Root()), entry.Version),
		Drift:    mon,
		Envelope: env,
	}
	if err := srv.Swap(next); err != nil {
		app.Log.Error("hot swap failed", "trigger", trigger, "version", entry.Version, "err", err)
		return
	}
	app.Log.Info("hot swap complete", "trigger", trigger,
		"from", cur.Version, "to", entry.Version, "sha256", entry.SHA256)
}

// finish detaches the shadow, drains and closes the sample log, folds
// the drift assessment, shadow divergence and log accounting into the
// run report, and writes it when -report is set.
func finish(srv *serve.Server, sh *shadow.Shadow, sampleLog *samplelog.Writer, reportOut string) {
	var shadowRep shadow.Report
	if sh != nil {
		if err := srv.SetShadow(nil); err != nil {
			app.Log.Warn("shadow detach", "err", err)
		}
		shadowRep = sh.Close()
		app.Log.Info("shadow verdict",
			"candidate_version", shadowRep.CandidateVersion,
			"scored", shadowRep.Scored, "dropped", shadowRep.Dropped,
			"divergence", shadowRep.VerdictDivergence)
	}
	var logStats samplelog.Stats
	if sampleLog != nil {
		var err error
		logStats, err = sampleLog.Close()
		if err != nil {
			app.Log.Warn("sample log close", "err", err)
		}
		app.Log.Info("sample log closed",
			"appended", logStats.Appended, "dropped", logStats.Dropped,
			"bytes", logStats.Bytes, "segments", logStats.Segments, "pruned", logStats.Pruned)
	}
	var driftRep drift.Report
	active := srv.ActiveModel()
	var cascadeShort, cascadePass uint64
	var cascadeFrac float64
	if active.CascadeEnabled() {
		cascadeShort = app.Telemetry.Counter("cascade_short_total").Value()
		cascadePass = app.Telemetry.Counter("cascade_pass_total").Value()
		if total := cascadeShort + cascadePass; total > 0 {
			cascadeFrac = float64(cascadeShort) / float64(total)
		}
		app.Log.Info("cascade summary",
			"short_circuited", cascadeShort, "passed_on", cascadePass,
			"short_fraction", cascadeFrac, "threshold", active.CascadeThreshold())
	}
	if active.Drift != nil {
		driftRep = active.Drift.Snapshot()
		app.Log.Info("drift verdict",
			"samples", driftRep.Samples, "max_psi", driftRep.MaxPSI,
			"recommendation", driftRep.Recommendation)
	}
	if reportOut == "" {
		return
	}
	rep := app.Telemetry.Report(app.Tool)
	rep.Results["model_version"] = float64(active.Version)
	if active.Drift != nil {
		rep.Results["drift_samples"] = float64(driftRep.Samples)
		rep.Results["drift_max_psi"] = driftRep.MaxPSI
		rep.Results["drift_alert"] = btof(driftRep.Alert)
		rep.Notes = map[string]string{"drift_recommendation": driftRep.Recommendation}
	}
	if sh != nil {
		rep.Results["shadow_candidate_version"] = float64(shadowRep.CandidateVersion)
		rep.Results["shadow_scored"] = float64(shadowRep.Scored)
		rep.Results["shadow_dropped"] = float64(shadowRep.Dropped)
		rep.Results["shadow_verdict_divergence"] = shadowRep.VerdictDivergence
	}
	if active.CascadeEnabled() {
		rep.Results["cascade_short_circuited"] = float64(cascadeShort)
		rep.Results["cascade_passed_on"] = float64(cascadePass)
		rep.Results["cascade_short_fraction"] = cascadeFrac
		if rep.Notes == nil {
			rep.Notes = map[string]string{}
		}
		rep.Notes["cascade"] = fmt.Sprintf("enabled threshold=%g", active.CascadeThreshold())
	}
	if sampleLog != nil {
		rep.Results["samplelog_appended"] = float64(logStats.Appended)
		rep.Results["samplelog_dropped"] = float64(logStats.Dropped)
		rep.Results["samplelog_bytes"] = float64(logStats.Bytes)
		rep.Results["samplelog_segments"] = float64(logStats.Segments)
	}
	if err := rep.WriteFile(reportOut); err != nil {
		app.Log.Error("write run report", "path", reportOut, "err", err)
		return
	}
	if reportOut != "-" {
		app.Log.Info("wrote run report", "path", reportOut)
	}
}

func btof(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
