// Command smartserve is the fleet-scale streaming detection service: it
// loads a trained detector (from smartrain -model), listens for agent
// connections speaking the internal/wire protocol and streams verdicts
// back for every HPC sample received. Each (connection, app) stream gets
// its own compiled detector and smoothing monitor; an overloaded server
// sheds the oldest queued samples instead of building unbounded backlog.
//
// On SIGINT/SIGTERM the server drains gracefully — stops accepting,
// scores and flushes everything already queued — and exits 130.
//
// Usage:
//
//	smartrain -runtime -model det.json
//	smartserve -model det.json -addr :7643
//	smartserve -model det.json -addr 127.0.0.1:0 -telemetry-addr :8080
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"twosmart"
	"twosmart/internal/cli"
	"twosmart/internal/monitor"
	"twosmart/internal/serve"
)

var app = cli.New("smartserve")

func main() {
	addr := flag.String("addr", "127.0.0.1:7643", "TCP listen address (use :0 for a random port; the bound address is printed on stdout)")
	modelIn := flag.String("model", "", "detector to serve (JSON, from smartrain -model); required")
	queueDepth := flag.Int("queue-depth", 4096, "per-connection ingress queue depth; beyond it the oldest samples are shed")
	maxBatch := flag.Int("max-batch", 512, "largest per-stream scoring micro-batch")
	workers := flag.Int("workers", 0, "per-connection scoring fan-out across streams (0 = NumCPU)")
	alpha := flag.Float64("alpha", 0, "EWMA smoothing coefficient in (0,1] (0 = monitor default)")
	raise := flag.Float64("raise", 0, "smoothed score above which the alarm raises (0 = monitor default)")
	clear := flag.Float64("clear", 0, "smoothed score below which the alarm clears (0 = monitor default)")
	flag.Parse()
	ctx := app.Start()
	defer app.Close()

	if *modelIn == "" {
		app.Fatal(fmt.Errorf("-model is required (train one with: smartrain -runtime -model det.json)"))
	}
	blob, err := os.ReadFile(*modelIn)
	if err != nil {
		app.Fatal(err)
	}
	det, err := twosmart.LoadDetector(blob)
	if err != nil {
		app.Fatal(err)
	}

	srv, err := serve.New(serve.Config{
		Detector:   det,
		Model:      filepath.Base(*modelIn),
		Monitor:    monitor.Config{Alpha: *alpha, RaiseThreshold: *raise, ClearThreshold: *clear, Telemetry: app.Telemetry},
		QueueDepth: *queueDepth,
		MaxBatch:   *maxBatch,
		Workers:    *workers,
		Telemetry:  app.Telemetry,
		Log:        app.Log,
	})
	if err != nil {
		app.Fatal(err)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		app.Fatal(err)
	}
	// The bound address goes to stdout so scripts using -addr :0 can
	// capture it (logs go to stderr).
	fmt.Printf("listening %s\n", bound)
	app.Log.Info("serving detector",
		"model", *modelIn, "features", srv.NumFeatures(), "addr", bound.String())

	if err := srv.Serve(ctx); err != nil {
		app.Fatal(err)
	}
	if ctx.Err() != nil {
		app.Log.Info("drained cleanly after signal")
		app.Close()
		os.Exit(cli.ExitInterrupted)
	}
}
