// Command smartgw is the sharded gateway tier: it accepts agent
// connections speaking the same internal/wire protocol as smartserve and
// routes each (agent, app) stream to one of N backend smartserve shards
// by consistent hash. Agents point at the gateway exactly as they would
// at a single server; the fleet behind it can grow, shrink or lose a
// shard without any agent reconfiguration.
//
// The gateway health-checks every shard each -check-interval with a
// Heartbeat round-trip and reroutes streams when the healthy set changes:
// a stream leaving a shard is drained there (closed upstream, its summary
// suppressed) and re-opened on the shard the rebuilt hash ring picks.
// Shard deaths noticed on the data path reroute immediately, without
// waiting for the next probe. Fleet telemetry lands in the cluster_*
// metric families and, with -report, in the machine-readable run report.
//
// With -envelope the gateway runs the stage-0 cascade at the edge:
// samples inside the benign envelope get a synthesized benign verdict at
// the gateway and are never forwarded, cutting shard load on benign-heavy
// traffic. -cascade-threshold tunes (or, negative, disables) the
// short-circuit boundary.
//
// On SIGINT/SIGTERM the gateway drains gracefully — stops accepting,
// forwards everything already queued — and exits 130.
//
// Usage:
//
//	smartserve -model det.json -shard -addr 127.0.0.1:7644 &
//	smartserve -model det.json -shard -addr 127.0.0.1:7645 &
//	smartgw -addr 127.0.0.1:7643 -shards 127.0.0.1:7644,127.0.0.1:7645
//	smartload -addr 127.0.0.1:7643 -cluster -shards 127.0.0.1:7644,127.0.0.1:7645
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"twosmart/internal/anomaly"
	"twosmart/internal/cli"
	"twosmart/internal/cluster"
	"twosmart/internal/persist"
	"twosmart/internal/samplelog"
	"twosmart/internal/trace"
)

var app = cli.New("smartgw")

func main() {
	addr := flag.String("addr", "127.0.0.1:7643", "TCP listen address for agent connections (use :0 for a random port; the bound address is printed on stdout)")
	shards := flag.String("shards", "", "comma-separated backend smartserve shard addresses (required)")
	replicas := flag.Int("replicas", cluster.DefaultReplicas, "virtual nodes per shard on the consistent-hash ring")
	checkInterval := flag.Duration("check-interval", 2*time.Second, "shard health-probe period")
	dialTimeout := flag.Duration("dial-timeout", 3*time.Second, "upstream dial + handshake / probe round-trip budget")
	queueDepth := flag.Int("queue-depth", 4096, "per-connection ingress queue depth; beyond it the oldest samples are shed")
	reportOut := flag.String("report", "", "write the machine-readable run report (JSON, includes the cluster_* counters) to this file (- for stdout)")
	traceSample := flag.Int("trace-sample", 1024, "capture one gateway-tier trace per this many forwarded samples (0 = tracing off; served at /debug/traces with -telemetry-addr)")
	traceDepth := flag.Int("trace-depth", 256, "trace ring capacity (rounded up to a power of two)")
	sampleLogDir := flag.String("samplelog", "", "record every sample arriving at the gateway edge (features only, no verdict) to this durable log directory for smartload -replay; written off the hot path")
	sampleLogSegment := flag.Int64("samplelog-segment", 8<<20, "with -samplelog: rotate segments at this many bytes")
	sampleLogRetain := flag.Int("samplelog-retain", 64, "with -samplelog: keep at most this many segments, pruning oldest-first (-1 = unbounded)")
	envelopeIn := flag.String("envelope", "", "stage-0 anomaly envelope (JSON, from smartrain -envelope): short-circuit clear-benign samples at the gateway edge instead of forwarding them to a shard")
	cascadeThreshold := flag.Float64("cascade-threshold", 0, "stage-0 short-circuit threshold: 0 uses the envelope's calibrated threshold, >0 overrides it, <0 disables the edge cascade even when an envelope is present")
	flag.Parse()
	ctx := app.Start()
	defer app.Close()

	tracer := trace.New(trace.Config{SampleEvery: *traceSample, Depth: *traceDepth})
	app.DebugHandle("/debug/traces", tracer.Handler())

	if *shards == "" {
		app.Fatal(fmt.Errorf("-shards is required (comma-separated smartserve addresses)"))
	}
	fleet := strings.Split(*shards, ",")
	for i := range fleet {
		fleet[i] = strings.TrimSpace(fleet[i])
	}

	var sampleLog *samplelog.Writer
	if *sampleLogDir != "" {
		sl, err := samplelog.OpenWriter(samplelog.WriterConfig{
			Dir:          *sampleLogDir,
			SegmentBytes: *sampleLogSegment,
			MaxSegments:  *sampleLogRetain,
			Telemetry:    app.Telemetry,
		})
		if err != nil {
			app.Fatal(err)
		}
		sampleLog = sl
		app.Log.Info("sample log attached", "dir", *sampleLogDir,
			"segment_bytes", *sampleLogSegment, "retain", *sampleLogRetain)
	}

	var envelope *anomaly.Envelope
	if *envelopeIn != "" {
		blob, err := os.ReadFile(*envelopeIn)
		if err != nil {
			app.Fatal(err)
		}
		envelope, err = persist.UnmarshalEnvelope(blob)
		if err != nil {
			app.Fatal(fmt.Errorf("envelope %s: %w", *envelopeIn, err))
		}
		app.Log.Info("envelope loaded", "path", *envelopeIn,
			"features", envelope.NumFeatures(), "threshold", envelope.Threshold)
	}

	gw, err := cluster.New(cluster.Config{
		Shards:           fleet,
		Replicas:         *replicas,
		CheckInterval:    *checkInterval,
		DialTimeout:      *dialTimeout,
		QueueDepth:       *queueDepth,
		Envelope:         envelope,
		CascadeThreshold: *cascadeThreshold,
		Telemetry:        app.Telemetry,
		Tracer:           tracer,
		SampleLog:        sampleLog,
		Log:              app.Log,
	})
	if err != nil {
		app.Fatal(err)
	}

	bound, err := gw.Listen(*addr)
	if err != nil {
		app.Fatal(err)
	}
	// The bound address goes to stdout so scripts using -addr :0 can
	// capture it (logs go to stderr).
	fmt.Printf("listening %s\n", bound)
	app.Log.Info("gateway up", "addr", bound.String(), "shards", len(fleet), "replicas", *replicas)

	serveErr := gw.Serve(ctx)
	var logStats samplelog.Stats
	if sampleLog != nil {
		var err error
		logStats, err = sampleLog.Close()
		if err != nil {
			app.Log.Warn("sample log close", "err", err)
		}
		app.Log.Info("sample log closed",
			"appended", logStats.Appended, "dropped", logStats.Dropped,
			"bytes", logStats.Bytes, "segments", logStats.Segments, "pruned", logStats.Pruned)
	}
	if *reportOut != "" {
		rep := app.Telemetry.Report(app.Tool)
		if sampleLog != nil {
			rep.Results["samplelog_appended"] = float64(logStats.Appended)
			rep.Results["samplelog_dropped"] = float64(logStats.Dropped)
		}
		if envelope != nil && *cascadeThreshold >= 0 {
			short := app.Telemetry.Counter("cascade_short_total").Value()
			pass := app.Telemetry.Counter("cascade_pass_total").Value()
			rep.Results["cascade_short_circuited"] = float64(short)
			rep.Results["cascade_passed_on"] = float64(pass)
			if total := short + pass; total > 0 {
				rep.Results["cascade_short_fraction"] = float64(short) / float64(total)
			}
		}
		if err := rep.WriteFile(*reportOut); err != nil {
			app.Log.Error("write run report", "path", *reportOut, "err", err)
		} else if *reportOut != "-" {
			app.Log.Info("wrote run report", "path", *reportOut)
		}
	}
	if serveErr != nil {
		app.Fatal(serveErr)
	}
	if ctx.Err() != nil {
		app.Log.Info("drained cleanly after signal")
		app.Close()
		os.Exit(cli.ExitInterrupted)
	}
}
