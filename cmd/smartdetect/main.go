// Command smartdetect demonstrates the run-time detection flow end to end:
// it trains a 2SMaRT detector restricted to the four Common HPC events
// (exactly what a four-register machine can collect in one run), then
// profiles a stream of previously unseen applications — one single run
// each, no multiplexing — and prints the per-sample verdicts.
//
// Usage:
//
//	smartdetect -apps 12 -scale 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"twosmart"
	"twosmart/internal/cli"
	"twosmart/internal/hpc"
	"twosmart/internal/microarch"
	"twosmart/internal/sandbox"
	"twosmart/internal/workload"
)

func main() {
	ctx, stop := cli.Context()
	defer stop()
	scale := flag.Float64("scale", 0.05, "training corpus scale")
	apps := flag.Int("apps", 12, "number of unseen applications to stream")
	seed := flag.Int64("seed", 42, "training seed")
	boost := flag.Bool("boost", true, "boost the stage-2 detectors (the paper's run-time configuration)")
	modelIn := flag.String("model", "", "load a detector (JSON, from smartrain -model) instead of training; it must have been trained on the Common-4 feature space")
	flag.Parse()

	common := twosmart.CommonFeatures()
	var det *twosmart.Detector
	if *modelIn != "" {
		blob, err := os.ReadFile(*modelIn)
		if err != nil {
			fatal(err)
		}
		det, err = twosmart.LoadDetector(blob)
		if err != nil {
			fatal(err)
		}
		if got := det.FeatureNames(); len(got) != len(common) {
			fatal(fmt.Errorf("model expects %d features; the run-time monitor collects the %d Common events", len(got), len(common)))
		}
		fmt.Fprintf(os.Stderr, "loaded detector from %s\n\n", *modelIn)
	} else {
		// --- Train on the Common-4 feature space.
		fmt.Fprintf(os.Stderr, "collecting training corpus (scale %.3g)...\n", *scale)
		full, err := twosmart.CollectContext(ctx, twosmart.CollectConfig{Scale: *scale, Seed: *seed, Omniscient: true})
		if err != nil {
			fatal(err)
		}
		data, err := full.SelectByName(common)
		if err != nil {
			fatal(err)
		}
		det, err = twosmart.TrainContext(ctx, data, twosmart.TrainConfig{Boost: *boost, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "detector ready (features: %v)\n\n", common)
	}

	// --- Stream unseen applications: one single-run profile each.
	events := make([]hpc.Event, len(common))
	for i, name := range common {
		e, ok := hpc.EventByName(name)
		if !ok {
			fatal(fmt.Errorf("unknown event %q", name))
		}
		events[i] = e
	}
	mgr := sandbox.NewManager(microarch.DefaultConfig())
	// Unseen: a different corpus seed than training.
	wopts := workload.Options{Seed: *seed + 1000}

	correct, total := 0, 0
	for i := 0; i < *apps; i++ {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "smartdetect: interrupted after %d/%d applications\n", total, *apps)
			break
		}
		class := workload.AllClasses()[i%workload.NumClasses]
		prog := workload.Generate(class, 1000+i, wopts)
		samples, err := mgr.RunIsolated(prog.MustStream(), events, sandbox.ProfileOptions{
			FreqHz: 4e6, Period: 10 * time.Millisecond,
		})
		if err != nil {
			fatal(err)
		}
		// Majority vote across the application's samples.
		malVotes := 0
		for _, s := range samples {
			fv := make([]float64, len(events))
			instr := float64(s.Fixed[0])
			for j, c := range s.Counts {
				fv[j] = float64(c) * 1000 / instr
			}
			v, err := det.Detect(fv)
			if err != nil {
				fatal(err)
			}
			if v.Malware {
				malVotes++
			}
		}
		verdict := malVotes*2 > len(samples)
		ok := verdict == class.IsMalware()
		if ok {
			correct++
		}
		total++
		status := "OK "
		if !ok {
			status = "MISS"
		}
		fmt.Printf("%-4s %-16s samples=%-3d malware-votes=%-3d verdict=%v actual=%v\n",
			status, prog.Name, len(samples), malVotes, verdict, class.IsMalware())
	}
	fmt.Printf("\n%d/%d applications classified correctly\n", correct, total)
}

func fatal(err error) {
	cli.Fatal("smartdetect", err)
}
