// Command smartdetect demonstrates the run-time detection flow end to end:
// it trains a 2SMaRT detector restricted to the four Common HPC events
// (exactly what a four-register machine can collect in one run), then
// profiles a stream of previously unseen applications — one single run
// each, no multiplexing — and prints the per-sample verdicts alongside the
// measured per-app detection latency (min/mean/p99 of det.Detect).
//
// Usage:
//
//	smartdetect -apps 12 -scale 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"twosmart"
	"twosmart/internal/cli"
	"twosmart/internal/hpc"
	"twosmart/internal/microarch"
	"twosmart/internal/sandbox"
	"twosmart/internal/telemetry"
	"twosmart/internal/workload"
)

var app = cli.New("smartdetect")

func main() {
	scale := flag.Float64("scale", 0.05, "training corpus scale")
	apps := flag.Int("apps", 12, "number of unseen applications to stream")
	seed := flag.Int64("seed", 42, "training seed")
	boost := flag.Bool("boost", true, "boost the stage-2 detectors (the paper's run-time configuration)")
	compiled := flag.Bool("compiled", true, "detect through the compiled allocation-free inference path (false = interpreted)")
	modelIn := flag.String("model", "", "load a detector (JSON, from smartrain -model) instead of training; it must have been trained on the Common-4 feature space")
	flag.Parse()
	ctx := app.Start()
	defer app.Close()

	common := twosmart.CommonFeatures()
	var det *twosmart.Detector
	if *modelIn != "" {
		blob, err := os.ReadFile(*modelIn)
		if err != nil {
			fatal(err)
		}
		det, err = twosmart.LoadDetector(blob)
		if err != nil {
			fatal(err)
		}
		if got := det.FeatureNames(); len(got) != len(common) {
			fatal(fmt.Errorf("model expects %d features; the run-time monitor collects the %d Common events", len(got), len(common)))
		}
		app.Log.Info("loaded detector", "path", *modelIn)
	} else {
		// --- Train on the Common-4 feature space.
		app.Log.Info("collecting training corpus", "scale", *scale)
		full, err := twosmart.CollectContext(ctx, twosmart.CollectConfig{
			Scale:      *scale,
			Seed:       *seed,
			Omniscient: true,
			Telemetry:  app.Telemetry,
			Progress:   app.Progress("profiling"),
		})
		if err != nil {
			fatal(err)
		}
		data, err := full.SelectByName(common)
		if err != nil {
			fatal(err)
		}
		span := app.Telemetry.StartSpan("train")
		det, err = twosmart.TrainContext(ctx, data, twosmart.TrainConfig{
			Boost: *boost, Seed: *seed, Telemetry: app.Telemetry,
		})
		if err != nil {
			fatal(err)
		}
		span.End()
		app.Log.Info("detector ready", "features", common)
	}

	// --- Stream unseen applications: one single-run profile each.
	events := make([]hpc.Event, len(common))
	for i, name := range common {
		e, ok := hpc.EventByName(name)
		if !ok {
			fatal(fmt.Errorf("unknown event %q", name))
		}
		events[i] = e
	}
	mgr := sandbox.NewManager(microarch.DefaultConfig())
	// Unseen: a different corpus seed than training.
	wopts := workload.Options{Seed: *seed + 1000}

	// Select the inference path. The compiled detector is the interpreted
	// one lowered into flat allocation-free evaluators (see
	// internal/core.Detector.Compile); both paths are prediction-equivalent.
	mode := "interpreted"
	detect := det.Detect
	if *compiled {
		mode = "compiled"
		detect = det.Compile().Detect
	}
	app.Log.Info("inference path", "mode", mode)

	// Per-sample detection latency, overall and per app, labelled by
	// inference mode so compiled and interpreted runs land in separate
	// histograms on the debug endpoint.
	overall := app.Telemetry.Histogram(
		telemetry.Label("detect_latency_seconds", "mode", mode),
		telemetry.LatencyBuckets)

	correct, total := 0, 0
	fv := make([]float64, len(events)) // reused: Detect never retains it
	for i := 0; i < *apps; i++ {
		if ctx.Err() != nil {
			app.Log.Warn("interrupted", "streamed", total, "requested", *apps)
			break
		}
		class := workload.AllClasses()[i%workload.NumClasses]
		prog := workload.Generate(class, 1000+i, wopts)
		samples, err := mgr.RunIsolated(prog.MustStream(), events, sandbox.ProfileOptions{
			FreqHz: 4e6, Period: 10 * time.Millisecond,
		})
		if err != nil {
			fatal(err)
		}
		appLat := app.Telemetry.Histogram(
			telemetry.Label(
				telemetry.Label("detect_app_latency_seconds", "app", prog.Name),
				"mode", mode),
			telemetry.LatencyBuckets)
		// Majority vote across the application's samples.
		malVotes := 0
		for _, s := range samples {
			instr := float64(s.Fixed[0])
			for j, c := range s.Counts {
				fv[j] = float64(c) * 1000 / instr
			}
			t0 := time.Now()
			v, err := detect(fv)
			lat := time.Since(t0)
			if err != nil {
				fatal(err)
			}
			overall.ObserveDuration(lat)
			appLat.ObserveDuration(lat)
			if v.Malware {
				malVotes++
			}
		}
		verdict := malVotes*2 > len(samples)
		ok := verdict == class.IsMalware()
		if ok {
			correct++
		}
		total++
		status := "OK "
		if !ok {
			status = "MISS"
		}
		lat := appLat.Summary()
		fmt.Printf("%-4s %-16s samples=%-3d malware-votes=%-3d verdict=%-5v actual=%-5v latency(min/mean/p99)=%s/%s/%s\n",
			status, prog.Name, len(samples), malVotes, verdict, class.IsMalware(),
			fmtLatency(lat.Min), fmtLatency(lat.Mean()), fmtLatency(lat.P99))
	}
	fmt.Printf("\n%d/%d applications classified correctly\n", correct, total)
	if sum := overall.Summary(); sum.Count > 0 {
		fmt.Printf("detection latency over %d samples: min=%s mean=%s p99=%s max=%s\n",
			sum.Count, fmtLatency(sum.Min), fmtLatency(sum.Mean()), fmtLatency(sum.P99), fmtLatency(sum.Max))
	}
}

// fmtLatency renders a latency in seconds at microsecond resolution.
func fmtLatency(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(100 * time.Nanosecond).String()
}

func fatal(err error) {
	app.Fatal(err)
}
