// Command smartctl operates the model registry behind the streaming
// detection service: it publishes trained detector blobs into a
// versioned, content-addressed store, promotes and rolls back the active
// version (a running smartserve -registry -watch picks the change up
// with zero downtime), and diffs two published versions on a replayed
// corpus before an operator commits to a promotion.
//
// Usage:
//
//	smartctl publish  -registry models/ -model det.json -note "weekly retrain" -promote
//	smartctl list     -registry models/
//	smartctl promote  -registry models/ -version 3
//	smartctl rollback -registry models/
//	smartctl diff     -registry models/ -baseline 2 -candidate 3
//	smartctl prune    -registry models/ -keep 5
//	smartctl status   -fleet 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083
//	smartctl backtest -registry models/ -log samples/ -version 3
//	smartctl logverify -log samples/
//	smartctl rollout start  -registry models/ -candidate 3 -canary-shard shard-a \
//	    -canary-addr 127.0.0.1:8082 -baseline-addrs 127.0.0.1:8083 -bake 2m
//	smartctl rollout status -registry models/ [-json]
//	smartctl rollout abort  -registry models/
//
// rollout drives a staged canary rollout: start pins the candidate
// version to one canary shard (whose smartserve -shard-id ... -watch
// picks it up like any hot swap), bakes it for -bake while scraping the
// canary and baseline shards, and gates each evidence window on shadow
// divergence, p99 regression ratio, the drift monitor's verdict, and a
// minimum canary sample count (an idle canary can never pass). Every
// gate holding for the full bake widens the candidate fleet-wide;
// any failure unpins immediately and records why. start exits 0 only
// when the rollout widened, so scripts can branch on the outcome.
// status renders the durable evidence trail (rollout.json in the
// registry root); abort drops a cooperative flag the running controller
// honors — it never writes the manifest from a second process.
//
// backtest replays a durable sample log (smartserve -samplelog) through
// a published candidate version at full speed and reports divergence
// against the verdicts the fleet actually served — the same report shape
// as diff, but over real recorded traffic instead of the synthetic
// corpus. -from/-to (RFC3339) and -app narrow the replay window. When the
// candidate carries a published stage-0 envelope (or -envelope FILE is
// given), the replay also runs the cascade and reports the would-be
// short-circuit fraction plus the safety number: recorded malware
// verdicts the envelope would have suppressed.
//
// logverify scans a sample log's segments and reports record counts,
// torn-tail bytes (a crash mid-append; recovered on next open) and
// checksum-corrupted records. It exits non-zero when corruption is
// found, so CI can assert a SIGKILLed log recovered cleanly.
//
// status is the fleet observability view: it scrapes each node's
// /metrics twice (-window apart) and /debug/traces once, autodetects
// gateway vs shard roles from the metric families, and renders one
// merged table — per-shard verdict rates, p99 latency, shed rates,
// model versions, drift recommendations, gateway reroute counts and
// probe RTTs — plus the slowest captured traces with per-hop latency
// attribution. -json emits the same merged document for scripts.
//
// publish -reference profiles the deterministic synthetic corpus and
// stores the training-time feature distribution alongside the model, so
// smartserve can monitor live traffic for drift against it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"twosmart/internal/anomaly"
	"twosmart/internal/cli"
	"twosmart/internal/core"
	"twosmart/internal/corpus"
	"twosmart/internal/dataset"
	"twosmart/internal/drift"
	"twosmart/internal/fleet"
	"twosmart/internal/parallel"
	"twosmart/internal/persist"
	"twosmart/internal/registry"
	"twosmart/internal/rollout"
	"twosmart/internal/samplelog"
	"twosmart/internal/shadow"
)

var app = cli.New("smartctl")

const usageHint = "usage: smartctl {publish|list|promote|rollback|diff|prune|backtest} -registry DIR [flags] | smartctl rollout {start|status|abort} -registry DIR [flags] | smartctl status -fleet ADDR,... [flags] | smartctl logverify -log DIR [flags]"

func main() {
	regDir := flag.String("registry", "", "model registry directory; required")
	modelIn := flag.String("model", "", "publish: detector blob to publish (JSON, from smartrain -model)")
	note := flag.String("note", "", "publish: free-form provenance recorded in the manifest")
	meta := flag.String("meta", "", "publish: training metadata as comma-separated k=v pairs")
	promote := flag.Bool("promote", false, "publish: make the new version active immediately")
	withRef := flag.Bool("reference", false, "publish: profile the synthetic corpus and store the feature distribution for drift monitoring")
	version := flag.Int("version", 0, "promote: version to make active; backtest: candidate version to replay (default: the latest)")
	keep := flag.Int("keep", 5, "prune: newest versions to keep (the active one always survives)")
	baseline := flag.Int("baseline", 0, "diff: baseline version (default: the active one)")
	candidate := flag.Int("candidate", 0, "diff/rollout start: candidate version (default: the latest)")
	scale := flag.Float64("scale", 0.01, "diff/-reference: synthetic corpus scale")
	seed := flag.Int64("seed", 1, "diff/-reference: synthetic corpus seed")
	workers := flag.Int("workers", 0, "diff/backtest: scoring parallelism (0 = NumCPU)")
	logDir := flag.String("log", "", "backtest/logverify: sample log directory (written by smartserve/smartgw -samplelog)")
	appFilter := flag.String("app", "", "backtest: replay only this application's records")
	fromTS := flag.String("from", "", "backtest: replay window start, inclusive (RFC3339, e.g. 2026-08-07T12:00:00Z)")
	toTS := flag.String("to", "", "backtest: replay window end, inclusive (RFC3339)")
	envelopeIn := flag.String("envelope", "", "publish: stage-0 anomaly envelope (JSON, from smartrain -envelope) to store with the model; backtest: replay through this envelope instead of the candidate's published one")
	cascadeThreshold := flag.Float64("cascade-threshold", 0, "backtest: stage-0 short-circuit threshold (0 = the envelope's calibrated threshold, >0 overrides, <0 skips the cascade replay)")
	fleetAddrs := flag.String("fleet", "", "status: comma-separated telemetry addresses of the gateways and shards to scrape (their -telemetry-addr)")
	window := flag.Duration("window", 2*time.Second, "status: time between the two /metrics scrapes that anchor the rate columns")
	top := flag.Int("top", 5, "status: slowest traces to show")
	jsonOut := flag.Bool("json", false, "status/backtest/logverify/rollout status: emit the result as JSON instead of text")
	canaryShard := flag.String("canary-shard", "", "rollout start: the canary shard's -shard-id (the registry pin key)")
	canaryAddr := flag.String("canary-addr", "", "rollout start: the canary shard's -telemetry-addr, scraped for canary-side evidence")
	baselineAddrs := flag.String("baseline-addrs", "", "rollout start: comma-separated -telemetry-addr of the shards staying on the baseline version")
	bake := flag.Duration("bake", 2*time.Minute, "rollout start: total bake window before the candidate may widen")
	every := flag.Duration("every", 0, "rollout start: gate evaluation cadence (0 = bake/4); each evaluation scrapes both sides twice, this far apart")
	convergeTimeout := flag.Duration("converge-timeout", 30*time.Second, "rollout start: how long the canary may take to start serving the candidate after the pin")
	maxDivergence := flag.Float64("max-divergence", 0, "rollout start: gate — max canary shadow_divergence (0 disables; skipped when the canary runs no shadow scorer)")
	maxP99Ratio := flag.Float64("max-p99-ratio", 0, "rollout start: gate — max canary/baseline p99 latency ratio (0 disables)")
	minSamples := flag.Float64("min-samples", 50, "rollout start: gate — min canary verdicts per evaluation window, so an idle canary cannot pass (0 disables)")

	if len(os.Args) < 2 || strings.HasPrefix(os.Args[1], "-") {
		fmt.Fprintln(os.Stderr, usageHint)
		os.Exit(2)
	}
	cmd := os.Args[1]
	os.Args = append(os.Args[:1], os.Args[2:]...)
	// rollout carries its own action word before the flags.
	var rolloutAction string
	if cmd == "rollout" {
		if len(os.Args) < 2 || strings.HasPrefix(os.Args[1], "-") {
			fmt.Fprintln(os.Stderr, "usage: smartctl rollout {start|status|abort} -registry DIR [flags]")
			os.Exit(2)
		}
		rolloutAction = os.Args[1]
		os.Args = append(os.Args[:1], os.Args[2:]...)
	}
	flag.Parse()
	ctx := app.Start()
	defer app.Close()

	// status talks to running processes, not to a registry directory.
	if cmd == "status" {
		runStatus(ctx, *fleetAddrs, *window, *top, *jsonOut)
		return
	}
	// logverify only reads the sample log, no registry needed.
	if cmd == "logverify" {
		runLogVerify(*logDir, *jsonOut)
		return
	}

	if *regDir == "" {
		app.Fatal(fmt.Errorf("-registry is required (%s)", usageHint))
	}
	reg, err := registry.Open(*regDir)
	if err != nil {
		app.Fatal(err)
	}

	switch cmd {
	case "publish":
		runPublish(reg, *modelIn, *note, *meta, *envelopeIn, *withRef, *promote, *scale, *seed)
	case "list":
		runList(reg)
	case "promote":
		if *version < 1 {
			app.Fatal(fmt.Errorf("promote needs -version N"))
		}
		e, err := reg.Promote(*version)
		if err != nil {
			app.Fatal(err)
		}
		fmt.Printf("active v%d (sha256 %s)\n", e.Version, short(e.SHA256))
	case "rollback":
		e, err := reg.Rollback()
		if err != nil {
			app.Fatal(err)
		}
		fmt.Printf("rolled back, active v%d (sha256 %s)\n", e.Version, short(e.SHA256))
	case "diff":
		runDiff(ctx, reg, *baseline, *candidate, *scale, *seed, *workers)
	case "backtest":
		runBacktest(ctx, reg, *logDir, *version, *appFilter, *fromTS, *toTS, *envelopeIn, *cascadeThreshold, *workers, *jsonOut)
	case "rollout":
		switch rolloutAction {
		case "start":
			runRolloutStart(ctx, reg, rollout.Config{
				Candidate:       *candidate,
				CanaryShard:     *canaryShard,
				CanaryAddr:      *canaryAddr,
				BaselineAddrs:   splitAddrs(*baselineAddrs),
				Bake:            *bake,
				Every:           *every,
				ConvergeTimeout: *convergeTimeout,
				Gates: rollout.Gates{
					MaxDivergence: *maxDivergence,
					MaxP99Ratio:   *maxP99Ratio,
					MinSamples:    *minSamples,
				},
			})
		case "status":
			runRolloutStatus(reg, *jsonOut)
		case "abort":
			if err := rollout.RequestAbort(reg); err != nil {
				app.Fatal(err)
			}
			fmt.Println("abort requested; the running controller will unpin the canary at its next poll")
		default:
			app.Fatal(fmt.Errorf("unknown rollout action %q (want start, status or abort)", rolloutAction))
		}
	case "prune":
		removed, err := reg.Prune(*keep)
		if err != nil {
			app.Fatal(err)
		}
		for _, e := range removed {
			fmt.Printf("removed v%d (sha256 %s)\n", e.Version, short(e.SHA256))
		}
		fmt.Printf("pruned %d version(s)\n", len(removed))
	default:
		app.Fatal(fmt.Errorf("unknown command %q (%s)", cmd, usageHint))
	}
}

// runStatus scrapes every fleet node's /metrics (twice, window apart)
// and /debug/traces, and renders the merged view: per-shard verdict
// rates, p99 latency, shed rates, model versions and drift state, the
// gateway's per-shard forwarding and probe RTTs, and the slowest traces
// with per-hop attribution.
func runStatus(ctx context.Context, fleetAddrs string, window time.Duration, top int, jsonOut bool) {
	if fleetAddrs == "" {
		app.Fatal(fmt.Errorf("status needs -fleet ADDR,... (each node's -telemetry-addr)"))
	}
	addrs := strings.Split(fleetAddrs, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	st, err := fleet.CollectStatus(ctx, addrs, fleet.CollectConfig{Window: window, Top: top})
	if err != nil {
		app.Fatal(err)
	}
	if jsonOut {
		if err := st.WriteJSON(os.Stdout); err != nil {
			app.Fatal(err)
		}
		return
	}
	st.Render(os.Stdout)
}

// splitAddrs splits a comma-separated address list, trimming whitespace
// and dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// runRolloutStart drives one staged canary rollout to a terminal phase
// and prints the outcome with its gate evidence. Exit status: 0 only
// when the candidate widened; a rollback or abort exits 1 so CI and
// scripts can branch on it.
func runRolloutStart(ctx context.Context, reg *registry.Registry, cfg rollout.Config) {
	cfg.Registry = reg
	cfg.Telemetry = app.Telemetry
	cfg.Log = app.Log
	if cfg.Candidate == 0 {
		m, err := reg.Manifest()
		if err != nil {
			app.Fatal(err)
		}
		e, ok := m.Latest()
		if !ok {
			app.Fatal(fmt.Errorf("rollout start: registry is empty, nothing to roll out"))
		}
		cfg.Candidate = e.Version
	}
	ctrl, err := rollout.New(cfg)
	if err != nil {
		app.Fatal(err)
	}
	st, err := ctrl.Run(ctx)
	if err != nil {
		app.Fatal(err)
	}
	renderRollout(st)
	if st.Phase != rollout.PhaseWidened {
		app.Close()
		os.Exit(1)
	}
}

// runRolloutStatus renders the durable rollout document — phase,
// gates, and the canary-vs-baseline evidence trail.
func runRolloutStatus(reg *registry.Registry, jsonOut bool) {
	st, err := rollout.ReadState(reg)
	if err != nil {
		app.Fatal(err)
	}
	if st == nil {
		app.Fatal(fmt.Errorf("rollout status: no rollout has been run against this registry"))
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			app.Fatal(err)
		}
		return
	}
	renderRollout(st)
}

// renderRollout prints the human-readable rollout summary: identity,
// gates, per-evaluation evidence, and why the terminal phase was
// reached.
func renderRollout(st *rollout.State) {
	fmt.Printf("rollout %s: candidate v%d vs baseline v%d (canary shard %s)\n",
		st.Phase, st.Candidate, st.Baseline, st.CanaryShard)
	fmt.Printf("  started %s, updated %s, bake %s\n",
		st.StartedAt.Format(time.RFC3339), st.UpdatedAt.Format(time.RFC3339),
		time.Duration(st.BakeSeconds*float64(time.Second)))
	fmt.Printf("  gates: max-divergence %g, max-p99-ratio %g, min-samples %g\n",
		st.Gates.MaxDivergence, st.Gates.MaxP99Ratio, st.Gates.MinSamples)
	if len(st.Evaluations) > 0 {
		fmt.Printf("  evidence (%d evaluation(s)):\n", len(st.Evaluations))
		fmt.Printf("    %-22s %-6s %-14s %-14s %-10s %-10s %s\n",
			"AT", "PASS", "CANARY V/S", "BASELINE V/S", "P99 RATIO", "DIVERGE", "DRIFT")
		for _, ev := range st.Evaluations {
			diverge := "-"
			if ev.Divergence >= 0 {
				diverge = fmt.Sprintf("%.4f", ev.Divergence)
			}
			drift := "ok"
			if ev.DriftRetrain {
				drift = "RETRAIN"
			}
			fmt.Printf("    %-22s %-6t %-14.1f %-14.1f %-10.2f %-10s %s\n",
				ev.At.Format("2006-01-02T15:04:05Z"), ev.Pass,
				ev.Canary.VerdictRate, ev.Baseline.VerdictRate, ev.P99Ratio, diverge, drift)
			for _, f := range ev.Failures {
				fmt.Printf("      FAIL %s\n", f)
			}
		}
	}
	if st.Reason != "" {
		fmt.Printf("  reason: %s\n", st.Reason)
	}
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

// trainingSet reproduces the deterministic synthetic corpus in the
// model's feature space, the shared sample source for drift references
// and version diffs.
func trainingSet(features []string, scale float64, seed int64) (*dataset.Dataset, error) {
	data, err := corpus.Collect(corpus.Config{
		Scale:      scale,
		Seed:       seed,
		Omniscient: true,
		Progress:   app.Progress("profiling corpus"),
		Telemetry:  app.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	return data.SelectByName(features)
}

func runPublish(reg *registry.Registry, modelIn, note, meta, envelopeIn string, withRef, promote bool, scale float64, seed int64) {
	if modelIn == "" {
		app.Fatal(fmt.Errorf("publish needs -model det.json"))
	}
	blob, err := os.ReadFile(modelIn)
	if err != nil {
		app.Fatal(err)
	}
	opts := registry.PublishOptions{Note: note, Promote: promote}
	if envelopeIn != "" {
		opts.Envelope = loadEnvelope(envelopeIn)
	}
	if meta != "" {
		opts.TrainMeta = map[string]string{}
		for _, pair := range strings.Split(meta, ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				app.Fatal(fmt.Errorf("publish -meta entry %q is not k=v", pair))
			}
			opts.TrainMeta[k] = v
		}
	}
	if withRef {
		det, err := core.UnmarshalDetector(blob)
		if err != nil {
			app.Fatal(err)
		}
		data, err := trainingSet(det.FeatureNames(), scale, seed)
		if err != nil {
			app.Fatal(err)
		}
		ref, err := drift.BuildReference(data, 0)
		if err != nil {
			app.Fatal(err)
		}
		opts.Reference = ref
	}
	e, err := reg.Publish(blob, opts)
	if err != nil {
		app.Fatal(err)
	}
	state := "published"
	if promote {
		state = "published and promoted"
	}
	fmt.Printf("%s v%d (sha256 %s, %d bytes)\n", state, e.Version, short(e.SHA256), e.Size)
	if opts.Envelope != nil {
		fmt.Printf("  stage-0 envelope: %d features, threshold %.4g\n",
			opts.Envelope.NumFeatures(), opts.Envelope.Threshold)
	}
}

// loadEnvelope reads a stage-0 anomaly envelope written by smartrain
// -envelope.
func loadEnvelope(path string) *anomaly.Envelope {
	blob, err := os.ReadFile(path)
	if err != nil {
		app.Fatal(err)
	}
	env, err := persist.UnmarshalEnvelope(blob)
	if err != nil {
		app.Fatal(fmt.Errorf("envelope %s: %w", path, err))
	}
	return env
}

func runList(reg *registry.Registry) {
	m, err := reg.Manifest()
	if err != nil {
		app.Fatal(err)
	}
	if len(m.Models) == 0 {
		fmt.Println("registry is empty")
		return
	}
	fmt.Printf("%-8s %-14s %-8s %-20s %-6s %-8s %s\n", "VERSION", "SHA256", "SIZE", "CREATED", "DRIFT", "CASCADE", "NOTE")
	for _, e := range m.Models {
		mark := " "
		if e.Version == m.Active {
			mark = "*"
		}
		ref := "-"
		if e.Reference != nil {
			ref = "yes"
		}
		env := "-"
		if e.Envelope != nil {
			env = "yes"
		}
		fmt.Printf("%s%-7d %-14s %-8d %-20s %-6s %-8s %s\n",
			mark, e.Version, short(e.SHA256), e.Size,
			e.CreatedAt.Format("2006-01-02 15:04:05"), ref, env, e.Note)
	}
}

func runDiff(ctx context.Context, reg *registry.Registry, baseVer, candVer int, scale float64, seed int64, workers int) {
	m, err := reg.Manifest()
	if err != nil {
		app.Fatal(err)
	}
	if baseVer == 0 {
		baseVer = m.Active
	}
	if candVer == 0 {
		if e, ok := m.Latest(); ok {
			candVer = e.Version
		}
	}
	if baseVer == 0 || candVer == 0 {
		app.Fatal(fmt.Errorf("diff needs -baseline and -candidate (no active/latest version to default to)"))
	}
	base, baseEntry, err := reg.Load(baseVer)
	if err != nil {
		app.Fatal(err)
	}
	cand, _, err := reg.Load(candVer)
	if err != nil {
		app.Fatal(err)
	}
	data, err := trainingSet(baseEntry.Features, scale, seed)
	if err != nil {
		app.Fatal(err)
	}
	samples := make([][]float64, data.Len())
	for i, ins := range data.Instances {
		samples[i] = ins.Features
	}
	rep, err := shadow.Evaluate(ctx, base, cand, samples, parallel.Options{Workers: workers})
	if err != nil {
		app.Fatal(err)
	}
	rep.CandidateVersion = candVer
	fmt.Printf("diff v%d -> v%d over %d samples\n", baseVer, candVer, rep.Scored)
	fmt.Printf("  verdict divergence: %.4f (%d disagreements)\n", rep.VerdictDivergence, rep.Disagreements)
	fmt.Printf("  score delta: mean abs %.4f, max %.4f\n", rep.MeanAbsScoreDelta, rep.MaxScoreDelta)
	classes := make([]string, 0, len(rep.PerClass))
	for name := range rep.PerClass {
		classes = append(classes, name)
	}
	sort.Strings(classes)
	for _, name := range classes {
		cs := rep.PerClass[name]
		fmt.Printf("  class %-10s observed %-6d disagreed %-6d mean abs delta %.4f\n",
			name, cs.Observed, cs.Disagreed, cs.MeanAbsDelta)
	}
}

// parseWindowTS parses one -from/-to bound; empty means unbounded.
func parseWindowTS(flagName, val string) int64 {
	if val == "" {
		return 0
	}
	t, err := time.Parse(time.RFC3339Nano, val)
	if err != nil {
		app.Fatal(fmt.Errorf("backtest -%s %q is not RFC3339: %w", flagName, val, err))
	}
	return t.UnixNano()
}

// runBacktest replays a recorded sample log through a published candidate
// version at full speed and prints the divergence against the verdicts
// the fleet actually served — runDiff's report shape over real traffic.
func runBacktest(ctx context.Context, reg *registry.Registry, logDir string, candVer int, appFilter, fromTS, toTS, envelopeIn string, cascadeThreshold float64, workers int, jsonOut bool) {
	if logDir == "" {
		app.Fatal(fmt.Errorf("backtest needs -log DIR (a smartserve/smartgw -samplelog directory)"))
	}
	if candVer == 0 {
		m, err := reg.Manifest()
		if err != nil {
			app.Fatal(err)
		}
		e, ok := m.Latest()
		if !ok {
			app.Fatal(fmt.Errorf("backtest: registry is empty, nothing to replay through"))
		}
		candVer = e.Version
	}
	cand, entry, err := reg.Load(candVer)
	if err != nil {
		app.Fatal(err)
	}
	// Explicit -envelope wins; otherwise the candidate's published
	// envelope rides along, so a plain backtest evaluates the cascade the
	// fleet would actually run with that version.
	envelope := entry.Envelope
	if envelopeIn != "" {
		envelope = loadEnvelope(envelopeIn)
	}
	res, err := samplelog.Backtest(ctx, logDir, cand, samplelog.BacktestOptions{
		Version:          candVer,
		Workers:          workers,
		FromNanos:        parseWindowTS("from", fromTS),
		ToNanos:          parseWindowTS("to", toTS),
		App:              appFilter,
		Envelope:         envelope,
		CascadeThreshold: cascadeThreshold,
	})
	if err != nil {
		app.Fatal(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			app.Fatal(err)
		}
		return
	}
	rep := res.Report
	fmt.Printf("backtest v%d over %d recorded verdicts (log: %d records in %d segments)\n",
		candVer, res.Replayed, res.Log.Records, len(res.Log.Segments))
	fmt.Printf("  skipped: %d unscored, %d outside window/app filter\n",
		res.SkippedUnscored, res.SkippedFiltered)
	if res.Log.TornBytes > 0 || res.Log.Corrupted > 0 {
		fmt.Printf("  log integrity: torn tail %d bytes, corrupted %d record(s)\n",
			res.Log.TornBytes, res.Log.Corrupted)
	}
	fmt.Printf("  verdict divergence: %.4f (%d disagreements)\n", rep.VerdictDivergence, rep.Disagreements)
	fmt.Printf("  score delta: mean abs %.4f, max %.4f\n", rep.MeanAbsScoreDelta, rep.MaxScoreDelta)
	if rep.Errors > 0 {
		fmt.Printf("  scoring errors: %d\n", rep.Errors)
	}
	if c := res.Cascade; c != nil {
		fmt.Printf("  cascade (threshold %.4g): %d short-circuited (%.1f%%), %d passed on\n",
			c.Threshold, c.ShortCircuited, 100*c.ShortFraction, c.PassedOn)
		fmt.Printf("  cascade safety: %d recorded malware verdict(s) would have short-circuited\n",
			c.MalwareShortCircuited)
	}
	classes := make([]string, 0, len(rep.PerClass))
	for name := range rep.PerClass {
		classes = append(classes, name)
	}
	sort.Strings(classes)
	for _, name := range classes {
		cs := rep.PerClass[name]
		fmt.Printf("  class %-10s observed %-6d disagreed %-6d mean abs delta %.4f\n",
			name, cs.Observed, cs.Disagreed, cs.MeanAbsDelta)
	}
}

// runLogVerify scans a sample log and reports its integrity: record and
// segment counts, the crash-torn tail (benign, truncated on reopen) and
// checksum-corrupted records (never benign — non-zero exits 1 so the CI
// crash-recovery step can assert a SIGKILLed log recovered cleanly).
func runLogVerify(logDir string, jsonOut bool) {
	if logDir == "" {
		app.Fatal(fmt.Errorf("logverify needs -log DIR (a smartserve/smartgw -samplelog directory)"))
	}
	rep, err := samplelog.Verify(logDir)
	if err != nil {
		app.Fatal(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			app.Fatal(err)
		}
	} else {
		fmt.Printf("sample log %s: %d record(s) in %d segment(s), %d scored\n",
			logDir, rep.Records, len(rep.Segments), rep.ScoredRecords)
		if rep.Records > 0 {
			fmt.Printf("  window: %s .. %s\n",
				time.Unix(0, rep.FirstNanos).UTC().Format(time.RFC3339Nano),
				time.Unix(0, rep.LastNanos).UTC().Format(time.RFC3339Nano))
		}
		fmt.Printf("  torn tail bytes: %d\n", rep.TornBytes)
		fmt.Printf("  corrupted records: %d\n", rep.Corrupted)
	}
	if rep.Corrupted > 0 {
		app.Fatal(fmt.Errorf("logverify: %d corrupted record(s) in %s", rep.Corrupted, logDir))
	}
}
