// Package twosmart is a from-scratch reproduction of 2SMaRT (Sayadi et al.,
// DATE 2019): a two-stage machine-learning-based run-time specialized
// hardware-assisted malware detector driven by hardware performance
// counters (HPCs).
//
// The package is a facade over the repository's subsystems:
//
//   - a behavioural microarchitecture simulator with a perf-style
//     44-event counter subsystem constrained to four programmable
//     registers (internal/microarch, internal/hpc);
//   - disposable sandbox containers and a synthetic benign/malware
//     application corpus (internal/sandbox, internal/workload,
//     internal/corpus);
//   - from-scratch WEKA-equivalent learners — J48, JRip, OneR, MLP, MLR
//     and AdaBoost.M1 (internal/ml/...), plus correlation and PCA feature
//     reduction (internal/features);
//   - the 2SMaRT two-stage detector itself (internal/core), the
//     single-stage comparison baseline (internal/baseline), an HLS-style
//     hardware cost model (internal/hls), and drivers reproducing every
//     table and figure of the paper (internal/experiments).
//
// A minimal end-to-end use:
//
//	data, err := twosmart.Collect(twosmart.CollectConfig{Scale: 0.05})
//	train, test, _ := data.Split(0.6, 1)
//	det, err := twosmart.Train(train, twosmart.TrainConfig{})
//	verdict, err := det.Detect(test.Instances[0].Features)
package twosmart

import (
	"context"

	"twosmart/internal/baseline"
	"twosmart/internal/core"
	"twosmart/internal/corpus"
	"twosmart/internal/dataset"
	"twosmart/internal/experiments"
	"twosmart/internal/hls"
	"twosmart/internal/ml"
	"twosmart/internal/monitor"
	"twosmart/internal/telemetry"
	"twosmart/internal/workload"
)

// Class labels an application: benign or one of the paper's four malware
// classes.
type Class = workload.Class

// The five application classes.
const (
	Benign   = workload.Benign
	Backdoor = workload.Backdoor
	Rootkit  = workload.Rootkit
	Virus    = workload.Virus
	Trojan   = workload.Trojan
)

// MalwareClasses returns the four malware classes in canonical order.
func MalwareClasses() []Class { return workload.MalwareClasses() }

// Kind enumerates the stage-2 classifier algorithms (J48, JRip, MLP, OneR).
type Kind = core.Kind

// The four stage-2 algorithm families.
const (
	J48  = core.J48
	JRip = core.JRip
	MLP  = core.MLP
	OneR = core.OneR
)

// Dataset is a labelled feature-vector collection; see the Split, Select
// and WriteCSV methods for the standard protocol operations.
type Dataset = dataset.Dataset

// Instance is one labelled observation.
type Instance = dataset.Instance

// CollectConfig configures corpus collection; the zero value profiles the
// full paper-sized corpus (1000 benign plus 452/350/650/1169 malware
// applications) through the faithful 11-batch multiplexed schedule.
type CollectConfig = corpus.Config

// Collect generates the benign/malware application corpus, profiles every
// application in disposable sandbox containers under the four-counter
// constraint, and returns the labelled 44-feature dataset (one instance per
// 10 ms sample, events normalised per thousand retired instructions).
func Collect(cfg CollectConfig) (*Dataset, error) { return corpus.Collect(cfg) }

// CollectContext is Collect with cancellation: profiling fans out over a
// bounded worker pool (CollectConfig.Workers) and aborts promptly with
// ctx's error when ctx is cancelled. For a given Seed the dataset is
// byte-identical at any worker count.
func CollectContext(ctx context.Context, cfg CollectConfig) (*Dataset, error) {
	return corpus.CollectContext(ctx, cfg)
}

// TrainConfig configures 2SMaRT training; the zero value trains the
// run-time configuration: stage-1 MLR and per-class specialized detectors
// (winner selected by validation) on the four Common HPC features.
type TrainConfig = core.TrainConfig

// Detector is a trained 2SMaRT two-stage detector.
type Detector = core.Detector

// Verdict is a detection decision.
type Verdict = core.Verdict

// Train fits a 2SMaRT detector on a 5-class dataset produced by Collect.
func Train(d *Dataset, cfg TrainConfig) (*Detector, error) { return core.Train(d, cfg) }

// TrainContext is Train with cancellation: the four specialized stage-2
// detectors train concurrently, and cancelling ctx aborts training with
// ctx's error. The trained detector is identical to a serial run for the
// same seed.
func TrainContext(ctx context.Context, d *Dataset, cfg TrainConfig) (*Detector, error) {
	return core.TrainContext(ctx, d, cfg)
}

// CompiledDetector is a trained detector lowered into flat allocation-free
// evaluators for the run-time hot path (see Detector.Compile). It is
// prediction-equivalent to the Detector it was compiled from, adds
// DetectBatch/MalwareScoreBatch, and performs zero heap allocations per
// sample — but owns scratch space, so compile one per goroutine.
type CompiledDetector = core.CompiledDetector

// LoadDetector reconstructs a detector serialised with Detector.Marshal,
// enabling a train-once / deploy-many flow (cmd/smartrain -model writes the
// file; cmd/smartdetect -model loads it).
func LoadDetector(data []byte) (*Detector, error) { return core.UnmarshalDetector(data) }

// CommonFeatures are the paper's four Common HPC events — the features a
// four-register machine can collect in a single run.
func CommonFeatures() []string { return append([]string(nil), core.CommonFeatures...) }

// CustomFeatures returns the paper's per-class 8-event feature set
// (Common 4 plus the class's Custom 4).
func CustomFeatures(class Class) ([]string, error) { return core.CustomFeatures(class) }

// BaselineConfig configures the single-stage general HMD used as the
// state-of-the-art comparison ([2], Patel et al. DAC'17).
type BaselineConfig = baseline.Config

// BaselineDetector is a trained single-stage general detector.
type BaselineDetector = baseline.Detector

// TrainBaseline fits a single-stage general detector on a 5-class dataset.
func TrainBaseline(d *Dataset, cfg BaselineConfig) (*BaselineDetector, error) {
	return baseline.Train(d, cfg)
}

// Classifier is a trained model (scores per class plus argmax prediction).
type Classifier = ml.Classifier

// HardwareCost is the estimated FPGA implementation cost of a trained
// classifier (latency in cycles at a 10 ns clock; LUT/FF/DSP usage).
type HardwareCost = hls.Cost

// EstimateHardware computes the implementation cost of a trained classifier
// with the repository's HLS-style cost model.
func EstimateHardware(c Classifier) (HardwareCost, error) { return hls.Estimate(c) }

// EstimateDetectorHardware computes the implementation cost of a complete
// 2SMaRT deployment: the stage-1 MLR plus all four specialized stage-2
// detectors instantiated side by side (sum of areas; latency of stage 1
// plus the slowest stage-2 detector).
func EstimateDetectorHardware(det *Detector) (HardwareCost, error) {
	stage2 := make([]ml.Classifier, 0, len(MalwareClasses()))
	for _, class := range MalwareClasses() {
		m, err := det.Stage2Model(class)
		if err != nil {
			return HardwareCost{}, err
		}
		stage2 = append(stage2, m)
	}
	return hls.TwoStage(det.Stage1Model(), stage2)
}

// GenerateVerilog emits a synthesizable combinational Verilog module
// implementing a trained J48, JRip or OneR classifier over Q16.16
// fixed-point inputs (see cmd/hwgen).
func GenerateVerilog(c Classifier, moduleName string, featureNames []string) (string, error) {
	return hls.GenerateVerilog(c, moduleName, featureNames)
}

// MonitorConfig tunes the run-time monitor's smoothing and alarm
// hysteresis.
type MonitorConfig = monitor.Config

// MonitorEvent is the monitor's per-sample output.
type MonitorEvent = monitor.Event

// Monitor smooths one application's malware-score stream into stable
// alarms.
type Monitor = monitor.Monitor

// Tracker monitors many applications concurrently.
type Tracker = monitor.Tracker

// NewMonitor wraps a trained detector in a run-time monitor. Scoring goes
// through the detector's compiled form, so with telemetry disabled each
// Observe performs zero heap allocations.
func NewMonitor(det *Detector, cfg MonitorConfig) (*Monitor, error) {
	return monitor.New(det.Compile(), cfg)
}

// NewTracker wraps a trained detector in a multi-application run-time
// tracker. Each tracked application gets its own compiled detector
// instance (compiled detectors own scratch space and are not
// concurrent-safe), so observing different applications from different
// goroutines stays safe and allocation-free.
func NewTracker(det *Detector, cfg MonitorConfig) (*Tracker, error) {
	return monitor.NewTrackerFactory(func() monitor.Scorer { return det.Compile() }, cfg)
}

// ExperimentOptions configures the paper-reproduction experiment drivers.
type ExperimentOptions = experiments.Options

// Experiments is a handle for regenerating the paper's tables and figures;
// see the Table1..Table5 and Fig1..Fig5b methods.
type Experiments = experiments.Context

// NewExperiments collects a corpus and prepares the shared 60/40 split used
// by every experiment driver.
func NewExperiments(opts ExperimentOptions) (*Experiments, error) {
	return experiments.NewContext(opts)
}

// NewExperimentsContext is NewExperiments with cancellation of the corpus
// collection; the returned handle's SweepContext method extends the same
// cancellation to the classifier sweep.
func NewExperimentsContext(ctx context.Context, opts ExperimentOptions) (*Experiments, error) {
	return experiments.NewContextCtx(ctx, opts)
}

// NewExperimentsFromDataset prepares experiment drivers over an existing
// dataset (e.g. one loaded from CSV).
func NewExperimentsFromDataset(d *Dataset, opts ExperimentOptions) (*Experiments, error) {
	return experiments.NewContextFromDataset(d, opts)
}

// Telemetry is the runtime observability registry: atomic counters, gauges
// and latency histograms plus pipeline-stage spans. Pass one through
// CollectConfig, TrainConfig, MonitorConfig or ExperimentOptions to
// instrument that layer; a nil registry disables instrumentation at
// negligible cost. See internal/telemetry and the README's
// "Observability" section for the metric inventory.
type Telemetry = telemetry.Registry

// NewTelemetry builds an empty telemetry registry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// RunReport is the machine-readable per-run artifact (stage timings,
// metric values, dataset stats, result figures) written by the cmd tools'
// -report flag.
type RunReport = telemetry.RunReport

// DatasetStats summarises a dataset inside a RunReport.
type DatasetStats = telemetry.DatasetStats
