// Feature reduction: run the paper's 44 -> 16 -> 8 pipeline on a freshly
// collected corpus — correlation attribute evaluation followed by per-class
// PCA — and compare the data-driven selection against the paper's published
// Table II feature sets.
package main

import (
	"fmt"
	"log"

	"twosmart"
	"twosmart/internal/core"
	"twosmart/internal/features"
	"twosmart/internal/workload"
)

func main() {
	data, err := twosmart.Collect(twosmart.CollectConfig{Scale: 0.03, Seed: 11, Omniscient: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d samples x %d events\n\n", data.Len(), data.NumFeatures())

	// Step 1: correlation attribute evaluation over all 44 events.
	ranked, err := features.CorrelationRank(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("correlation ranking (top 16 of 44):")
	for i, r := range ranked[:16] {
		fmt.Printf("  %2d. %-28s score=%.3f\n", i+1, r.Name, r.Score)
	}
	top16 := features.Names(ranked, 16)

	// Step 2: per-class PCA over the 16 survivors; keep 8 raw events per
	// class by their loadings on the leading components.
	fmt.Println("\nper-class PCA top-8 (data-driven) vs paper's Table II:")
	for _, class := range workload.MalwareClasses() {
		binary, err := core.BinaryTask(data, class)
		if err != nil {
			log.Fatal(err)
		}
		sub, err := binary.SelectByName(top16)
		if err != nil {
			log.Fatal(err)
		}
		pca, err := features.FitPCA(sub)
		if err != nil {
			log.Fatal(err)
		}
		mine := features.Names(pca.RankFeatures(8), 8)
		paper, _ := twosmart.CustomFeatures(class)
		fmt.Printf("\n  %s:\n    measured: %v\n    paper:    %v\n", class, mine, paper)

		ratios := pca.ExplainedRatio()
		fmt.Printf("    PC1 explains %.0f%%, PC1-4 explain %.0f%% of variance\n",
			100*ratios[0], 100*(ratios[0]+ratios[1]+ratios[2]+ratios[3]))
	}
}
