// Runtime detection: the scenario the paper's introduction motivates.
// A deployed detector can only read the four HPC registers the processor
// exposes — no multiple runs, no 16-event feature vectors. This example
// trains the boosted 4-HPC configuration and then watches applications
// execute live, scoring each 10 ms sample as it arrives.
package main

import (
	"fmt"
	"log"
	"time"

	"twosmart"
	"twosmart/internal/hpc"
	"twosmart/internal/microarch"
	"twosmart/internal/sandbox"
	"twosmart/internal/workload"
)

func main() {
	common := twosmart.CommonFeatures()

	// Train the run-time configuration: boosted specialized detectors on
	// the four run-time-available events only.
	full, err := twosmart.Collect(twosmart.CollectConfig{Scale: 0.03, Seed: 7, Omniscient: true})
	if err != nil {
		log.Fatal(err)
	}
	data, err := full.SelectByName(common)
	if err != nil {
		log.Fatal(err)
	}
	det, err := twosmart.Train(data, twosmart.TrainConfig{Boost: true, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Program the four counter registers once.
	events := make([]hpc.Event, len(common))
	for i, name := range common {
		events[i], _ = hpc.EventByName(name)
	}

	// Watch three unseen applications execute, with the run-time monitor
	// smoothing the per-sample scores into stable alarms (EWMA plus
	// raise/clear hysteresis).
	tracker, err := twosmart.NewTracker(det, twosmart.MonitorConfig{
		Alpha:          0.35,
		RaiseThreshold: 0.6,
		ClearThreshold: 0.4,
		MinSamples:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	mgr := sandbox.NewManager(microarch.DefaultConfig())
	for _, spec := range []struct {
		class workload.Class
		id    int
	}{
		{workload.Benign, 2001},
		{workload.Rootkit, 2002},
		{workload.Virus, 2003},
	} {
		prog := workload.Generate(spec.class, spec.id, workload.Options{Seed: 99})
		samples, err := mgr.RunIsolated(prog.MustStream(), events, sandbox.ProfileOptions{
			FreqHz: 4e6, Period: 10 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== %s (actually %v) ==\n", prog.Name, spec.class)
		for _, s := range samples {
			// Normalise counts per thousand retired instructions
			// using the fixed-function instruction counter.
			fv := make([]float64, len(events))
			for j, c := range s.Counts {
				fv[j] = float64(c) * 1000 / float64(s.Fixed[0])
			}
			ev, err := tracker.Observe(prog.Name, fv)
			if err != nil {
				log.Fatal(err)
			}
			if ev.Changed {
				state := "ALARM RAISED"
				if !ev.Alarm {
					state = "alarm cleared"
				}
				fmt.Printf("  t=%3dms %s (score=%.2f smoothed=%.2f)\n",
					(s.Index+1)*10, state, ev.Score, ev.Smoothed)
			}
		}
		summary, _ := tracker.Close(prog.Name)
		fmt.Printf("  session: %d samples, %d alarms, peak smoothed score %.2f, final alarm=%v\n",
			summary.Samples, summary.Alarms, summary.MaxSmoothed, summary.AlarmActive)
	}
}
