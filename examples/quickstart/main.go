// Quickstart: collect a small corpus, train the 2SMaRT two-stage detector
// with default settings, and classify held-out samples.
package main

import (
	"fmt"
	"log"

	"twosmart"
)

func main() {
	// Collect a reduced corpus: every application is executed in a
	// disposable sandbox container and profiled through the modelled
	// 4-register HPC subsystem.
	data, err := twosmart.Collect(twosmart.CollectConfig{
		Scale:      0.02, // 2% of the paper's 3621 applications
		Seed:       1,
		Omniscient: true, // single-run collection (identical output, 11x faster)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d samples of %d features\n", data.Len(), data.NumFeatures())

	// The paper's protocol: 60% train / 40% test, stratified.
	train, test, err := data.Split(0.6, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Train with defaults: stage-1 MLR plus per-class specialized
	// detectors (winner picked by validation) on the 4 Common HPCs.
	det, err := twosmart.Train(train, twosmart.TrainConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, class := range twosmart.MalwareClasses() {
		kind, _, _ := det.Stage2Info(class)
		fmt.Printf("stage-2 winner for %-9s: %v\n", class, kind)
	}

	// Detect.
	correct := 0
	for _, ins := range test.Instances {
		v, err := det.Detect(ins.Features)
		if err != nil {
			log.Fatal(err)
		}
		if v.Malware == twosmart.Class(ins.Label).IsMalware() {
			correct++
		}
	}
	fmt.Printf("held-out accuracy: %.1f%% over %d samples\n",
		100*float64(correct)/float64(test.Len()), test.Len())
}
