// Deploy: the full production lifecycle of a 2SMaRT detector.
//
//  1. Train the run-time (4-counter, boosted) configuration.
//  2. Serialise the detector to JSON and reload it (train once, deploy
//     many — nothing is retrained on the deployment host).
//  3. Estimate the hardware cost of the deployed two-stage design.
//  4. Generate synthesizable Verilog for one specialized detector.
//  5. Monitor live applications with smoothing and alarm hysteresis.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"twosmart"
	"twosmart/internal/hpc"
	"twosmart/internal/microarch"
	"twosmart/internal/sandbox"
	"twosmart/internal/workload"
)

func main() {
	common := twosmart.CommonFeatures()

	// --- 1. Train.
	data, err := twosmart.Collect(twosmart.CollectConfig{Scale: 0.03, Seed: 21, Omniscient: true})
	if err != nil {
		log.Fatal(err)
	}
	runtimeData, err := data.SelectByName(common)
	if err != nil {
		log.Fatal(err)
	}
	trained, err := twosmart.Train(runtimeData, twosmart.TrainConfig{Boost: true, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	// --- 2. Ship: serialise, "transfer", reload.
	blob, err := trained.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialised detector: %d bytes of JSON\n", len(blob))
	det, err := twosmart.LoadDetector(blob)
	if err != nil {
		log.Fatal(err)
	}

	// --- 3. Hardware budget of the deployed design.
	cost, err := twosmart.EstimateDetectorHardware(det)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-stage hardware: %d cycles @10ns decision latency, %.2f%% of an OpenSPARC core\n",
		cost.LatencyCycles, cost.AreaPercent())

	// --- 4. RTL: the combinational generator covers the unboosted
	// tree/rule families (boosted ensembles are sequential datapaths),
	// so generate from an unboosted sibling of the deployed detector.
	plain, err := twosmart.Train(runtimeData, twosmart.TrainConfig{
		Stage2Kinds: map[twosmart.Class]twosmart.Kind{
			twosmart.Backdoor: twosmart.J48, twosmart.Rootkit: twosmart.J48,
			twosmart.Virus: twosmart.J48, twosmart.Trojan: twosmart.J48,
		},
		Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := plain.Stage2Model(twosmart.Virus)
	if err != nil {
		log.Fatal(err)
	}
	verilog, err := twosmart.GenerateVerilog(model, "virus_stage2", common)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d lines of Verilog for the virus J48 detector\n",
		strings.Count(verilog, "\n"))

	// --- 5. Monitor a live application.
	tracker, err := twosmart.NewTracker(det, twosmart.MonitorConfig{MinSamples: 2})
	if err != nil {
		log.Fatal(err)
	}
	events := make([]hpc.Event, len(common))
	for i, name := range common {
		events[i], _ = hpc.EventByName(name)
	}
	mgr := sandbox.NewManager(microarch.DefaultConfig())
	prog := workload.Generate(workload.Backdoor, 9001, workload.Options{Seed: 77})
	samples, err := mgr.RunIsolated(prog.MustStream(), events, sandbox.ProfileOptions{
		FreqHz: 4e6, Period: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range samples {
		fv := make([]float64, len(events))
		for j, c := range s.Counts {
			fv[j] = float64(c) * 1000 / float64(s.Fixed[0])
		}
		if _, err := tracker.Observe(prog.Name, fv); err != nil {
			log.Fatal(err)
		}
	}
	summary, _ := tracker.Close(prog.Name)
	fmt.Printf("monitored %s: %d samples, %d alarm(s) raised, peak smoothed score %.2f\n",
		prog.Name, summary.Samples, summary.Alarms, summary.MaxSmoothed)
}
