// Hardware overhead: train every stage-2 classifier family at the 8-HPC,
// 4-HPC and boosted-4-HPC configurations and estimate its FPGA
// implementation cost (latency at a 10 ns clock, area relative to an
// OpenSPARC core) with the HLS-style cost model — the analysis behind the
// paper's Table V.
package main

import (
	"fmt"
	"log"

	"twosmart"
	"twosmart/internal/core"
	"twosmart/internal/ml"
	"twosmart/internal/ml/ensemble"
	"twosmart/internal/workload"
)

func main() {
	data, err := twosmart.Collect(twosmart.CollectConfig{Scale: 0.03, Seed: 13, Omniscient: true})
	if err != nil {
		log.Fatal(err)
	}
	// Cost the Virus detector (the per-class models are similar in
	// structure; cmd/benchtab -exp tab5 averages over all four classes).
	binary, err := core.BinaryTask(data, workload.Virus)
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		name  string
		feats func() []string
		boost bool
	}{
		{"8HPC", func() []string { f, _ := twosmart.CustomFeatures(workload.Virus); return f }, false},
		{"4HPC", twosmart.CommonFeatures, false},
		{"4HPC-Boosted", twosmart.CommonFeatures, true},
	}

	fmt.Printf("%-6s %-13s %10s %10s %8s %8s %6s %8s\n",
		"model", "config", "latency", "latency", "LUTs", "FFs", "DSPs", "area")
	fmt.Printf("%-6s %-13s %10s %10s %8s %8s %6s %8s\n",
		"", "", "(cycles)", "(ns)", "", "", "", "(%)")
	for _, kind := range []twosmart.Kind{twosmart.J48, twosmart.JRip, twosmart.MLP, twosmart.OneR} {
		for _, cfg := range configs {
			sub, err := binary.SelectByName(cfg.feats())
			if err != nil {
				log.Fatal(err)
			}
			var trainer ml.Trainer = core.NewTrainer(kind, 1)
			if cfg.boost {
				trainer = &ensemble.AdaBoostTrainer{Base: trainer, Rounds: 10, Seed: 1}
			}
			model, err := trainer.Train(sub)
			if err != nil {
				log.Fatal(err)
			}
			cost, err := twosmart.EstimateHardware(model)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6v %-13s %10d %10d %8d %8d %6d %7.2f%%\n",
				kind, cfg.name, cost.LatencyCycles, cost.LatencyNs(),
				cost.LUTs, cost.FFs, cost.DSPs, cost.AreaPercent())
		}
	}
}
