package features

import (
	"errors"
	"math"
	"sort"

	"twosmart/internal/dataset"
)

// InfoGainRank scores every feature by its information gain with respect to
// the class label, an alternative to CorrelationRank mirroring WEKA's
// InfoGainAttributeEval. Numeric features are discretised into
// equal-frequency bins (WEKA uses MDL discretisation; equal-frequency is a
// simpler, deterministic stand-in documented here). The result is sorted by
// descending gain.
func InfoGainRank(d *dataset.Dataset, bins int) ([]Ranked, error) {
	if d.Len() < 2 {
		return nil, errors.New("features: need at least two instances")
	}
	if bins < 2 {
		bins = 10
	}
	labels := d.Labels()
	k := d.NumClasses()
	baseH := labelEntropy(labels, k)

	out := make([]Ranked, d.NumFeatures())
	for j := 0; j < d.NumFeatures(); j++ {
		col := d.Column(j)
		gain := baseH - conditionalEntropy(col, labels, k, bins)
		if gain < 0 {
			gain = 0 // numeric noise on uninformative features
		}
		out[j] = Ranked{Index: j, Name: d.FeatureNames[j], Score: gain}
	}
	sortRanked(out)
	return out, nil
}

func labelEntropy(labels []int, k int) float64 {
	counts := make([]float64, k)
	for _, l := range labels {
		counts[l]++
	}
	return entropyOf(counts, float64(len(labels)))
}

func entropyOf(counts []float64, total float64) float64 {
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c > 0 {
			p := c / total
			h -= p * math.Log2(p)
		}
	}
	return h
}

// conditionalEntropy computes H(class | bin(feature)) with equal-frequency
// binning.
func conditionalEntropy(col []float64, labels []int, k, bins int) float64 {
	n := len(col)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return col[order[a]] < col[order[b]] })

	var h float64
	start := 0
	for b := 0; b < bins && start < n; b++ {
		end := (b + 1) * n / bins
		if end <= start {
			continue
		}
		// Never split ties across bins: extend until the value changes.
		for end < n && col[order[end]] == col[order[end-1]] {
			end++
		}
		counts := make([]float64, k)
		for _, idx := range order[start:end] {
			counts[labels[idx]]++
		}
		weight := float64(end-start) / float64(n)
		h += weight * entropyOf(counts, float64(end-start))
		start = end
	}
	return h
}
