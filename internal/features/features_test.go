package features

import (
	"math"
	"math/rand"
	"testing"

	"twosmart/internal/dataset"
)

// syntheticDataset builds a binary dataset where feature relevance is known
// by construction: f0 is perfectly informative, f1 is weakly informative,
// f2 is pure noise, f3 duplicates f0 with noise.
func syntheticDataset(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New([]string{"f0", "f1", "f2", "f3"}, []string{"benign", "malware"})
	for i := 0; i < n; i++ {
		label := i % 2
		f0 := float64(label)*4 + rng.NormFloat64()*0.3
		f1 := float64(label)*1 + rng.NormFloat64()*1.5
		f2 := rng.NormFloat64()
		f3 := f0 + rng.NormFloat64()*0.5
		d.Add(dataset.Instance{Features: []float64{f0, f1, f2, f3}, Label: label})
	}
	return d
}

func TestCorrelationRankOrdersByRelevance(t *testing.T) {
	d := syntheticDataset(400, 1)
	ranked, err := CorrelationRank(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 4 {
		t.Fatalf("ranked %d features", len(ranked))
	}
	// f0 (or its noisy copy f3) must rank above f1, which ranks above f2.
	pos := map[string]int{}
	for i, r := range ranked {
		pos[r.Name] = i
	}
	if pos["f0"] > 1 {
		t.Fatalf("f0 ranked %d, want top-2: %+v", pos["f0"], ranked)
	}
	if pos["f2"] != 3 {
		t.Fatalf("noise feature f2 ranked %d, want last", pos["f2"])
	}
	if ranked[0].Score < ranked[1].Score || ranked[2].Score < ranked[3].Score {
		t.Fatal("scores not descending")
	}
}

func TestCorrelationRankMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := dataset.New([]string{"sig", "noise"}, []string{"a", "b", "c"})
	for i := 0; i < 300; i++ {
		label := i % 3
		d.Add(dataset.Instance{
			Features: []float64{float64(label) + rng.NormFloat64()*0.2, rng.NormFloat64()},
			Label:    label,
		})
	}
	ranked, err := CorrelationRank(d)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Name != "sig" {
		t.Fatalf("multiclass ranking put %q first", ranked[0].Name)
	}
}

func TestCorrelationRankErrors(t *testing.T) {
	d := dataset.New([]string{"a"}, []string{"x"})
	if _, err := CorrelationRank(d); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestTopKAndNames(t *testing.T) {
	r := []Ranked{{Index: 2, Name: "c", Score: 3}, {Index: 0, Name: "a", Score: 2}, {Index: 1, Name: "b", Score: 1}}
	if got := TopK(r, 2); got[0] != 2 || got[1] != 0 {
		t.Fatalf("TopK=%v", got)
	}
	if got := TopK(r, 10); len(got) != 3 {
		t.Fatalf("TopK overflow=%v", got)
	}
	if got := Names(r, 2); got[0] != "c" || got[1] != "a" {
		t.Fatalf("Names=%v", got)
	}
}

func TestFitPCAKnownStructure(t *testing.T) {
	// Two perfectly correlated features and one independent: the first
	// component must capture the correlated pair.
	rng := rand.New(rand.NewSource(3))
	d := dataset.New([]string{"x", "y", "z"}, []string{"only"})
	for i := 0; i < 500; i++ {
		v := rng.NormFloat64()
		d.Add(dataset.Instance{Features: []float64{v, 2 * v, rng.NormFloat64() * 0.1}, Label: 0})
	}
	pca, err := FitPCA(d)
	if err != nil {
		t.Fatal(err)
	}
	ratios := pca.ExplainedRatio()
	if ratios[0] < 0.5 {
		t.Fatalf("first component explains %.2f, want > 0.5", ratios[0])
	}
	var sum float64
	for _, r := range ratios {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("explained ratios sum to %v", sum)
	}
	// The loading of z on PC1 must be small relative to x and y.
	if math.Abs(pca.Components.At(2, 0)) > 0.3 {
		t.Fatalf("independent feature has PC1 loading %v", pca.Components.At(2, 0))
	}
}

func TestPCAProject(t *testing.T) {
	d := syntheticDataset(200, 4)
	pca, err := FitPCA(d)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := pca.Project(d.Instances[0].Features, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(proj) != 2 {
		t.Fatalf("projection length %d", len(proj))
	}
	if _, err := pca.Project([]float64{1}, 2); err == nil {
		t.Fatal("wrong-width projection accepted")
	}
	if _, err := pca.Project(d.Instances[0].Features, 99); err == nil {
		t.Fatal("excess components accepted")
	}
}

func TestPCARankFeatures(t *testing.T) {
	d := syntheticDataset(400, 5)
	pca, err := FitPCA(d)
	if err != nil {
		t.Fatal(err)
	}
	// Rank over PC1 only: the correlated informative cluster (f0, f3)
	// carries the leading component. (With more PCs, independent noise
	// directions legitimately score high — PCA is unsupervised, which is
	// exactly why the pipeline runs correlation filtering first.)
	ranked := pca.RankFeatures(1)
	if len(ranked) != 4 {
		t.Fatalf("ranked %d", len(ranked))
	}
	top2 := map[string]bool{ranked[0].Name: true, ranked[1].Name: true}
	if !top2["f0"] || !top2["f3"] {
		t.Fatalf("top-2 by PCA loadings = %v, want f0 and f3", top2)
	}
}

func TestReducePipeline(t *testing.T) {
	d := syntheticDataset(400, 6)
	red, err := Reduce(d, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(red.CorrelationTop) != 3 || len(red.Selected) != 2 {
		t.Fatalf("sizes: corr=%d selected=%d", len(red.CorrelationTop), len(red.Selected))
	}
	// Noise must not survive to the final selection.
	for _, n := range red.Selected {
		if n == "f2" {
			t.Fatal("noise feature survived reduction")
		}
	}
	// Selected features must come from the correlation survivors.
	surv := map[string]bool{}
	for _, n := range red.CorrelationTop {
		surv[n] = true
	}
	for _, n := range red.Selected {
		if !surv[n] {
			t.Fatalf("selected %q not among correlation survivors", n)
		}
	}
}

func TestReduceValidation(t *testing.T) {
	d := syntheticDataset(100, 7)
	for _, c := range []struct{ corrK, pcaK int }{{0, 1}, {4, 0}, {2, 3}} {
		if _, err := Reduce(d, c.corrK, c.pcaK); err == nil {
			t.Fatalf("Reduce(%d,%d) accepted", c.corrK, c.pcaK)
		}
	}
}

func TestReduceDeterministic(t *testing.T) {
	d := syntheticDataset(300, 8)
	a, err := Reduce(d, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reduce(d, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Selected {
		if a.Selected[i] != b.Selected[i] {
			t.Fatal("reduction not deterministic")
		}
	}
}

func TestFitPCAErrors(t *testing.T) {
	d := dataset.New([]string{"a"}, []string{"x"})
	if _, err := FitPCA(d); err == nil {
		t.Fatal("PCA on empty dataset accepted")
	}
	empty := dataset.New(nil, []string{"x"})
	empty.Instances = append(empty.Instances, dataset.Instance{}, dataset.Instance{})
	if _, err := FitPCA(empty); err == nil {
		t.Fatal("PCA with zero features accepted")
	}
}

func TestInfoGainRankOrdersByRelevance(t *testing.T) {
	d := syntheticDataset(500, 21)
	ranked, err := InfoGainRank(d, 10)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, r := range ranked {
		pos[r.Name] = i
	}
	if pos["f0"] > 1 {
		t.Fatalf("f0 ranked %d by info gain, want top-2: %+v", pos["f0"], ranked)
	}
	if pos["f2"] != 3 {
		t.Fatalf("noise feature ranked %d, want last", pos["f2"])
	}
	for _, r := range ranked {
		if r.Score < 0 {
			t.Fatalf("negative gain %v", r.Score)
		}
	}
	// Gain is bounded by the label entropy (1 bit for balanced binary).
	if ranked[0].Score > 1.0+1e-9 {
		t.Fatalf("gain %v exceeds label entropy", ranked[0].Score)
	}
}

func TestInfoGainAgreesWithCorrelationOnStrongSignal(t *testing.T) {
	d := syntheticDataset(500, 22)
	ig, err := InfoGainRank(d, 0) // default bins
	if err != nil {
		t.Fatal(err)
	}
	corr, err := CorrelationRank(d)
	if err != nil {
		t.Fatal(err)
	}
	// Both rankers must put the informative pair {f0,f3} in their top 2.
	for name, ranked := range map[string][]Ranked{"infogain": ig, "correlation": corr} {
		top := map[string]bool{ranked[0].Name: true, ranked[1].Name: true}
		if !top["f0"] || !top["f3"] {
			t.Fatalf("%s top-2 = %v", name, top)
		}
	}
}

func TestInfoGainErrors(t *testing.T) {
	d := dataset.New([]string{"a"}, []string{"x"})
	if _, err := InfoGainRank(d, 10); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestInfoGainConstantFeature(t *testing.T) {
	d := dataset.New([]string{"const", "sig"}, []string{"a", "b"})
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		label := i % 2
		d.Add(dataset.Instance{Features: []float64{5, float64(label) + rng.NormFloat64()*0.1}, Label: label})
	}
	ranked, err := InfoGainRank(d, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Name != "sig" {
		t.Fatalf("ranking=%v", ranked)
	}
	// A constant feature carries zero information.
	if ranked[1].Score > 1e-9 {
		t.Fatalf("constant feature has gain %v", ranked[1].Score)
	}
}
