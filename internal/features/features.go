// Package features implements the paper's two-step feature-reduction
// pipeline: correlation attribute evaluation (ranking the 44 collected HPC
// events by correlation with the class label, keeping the top 16) followed
// by principal component analysis over the survivors, ranking the original
// events by their loadings on the leading components and keeping the top 8
// per malware class. The selected features remain raw HPC events — as in
// the paper's Table II — rather than projected components, so a run-time
// detector can collect them directly from counter registers.
package features

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"twosmart/internal/dataset"
	"twosmart/internal/mat"
)

// Ranked is one feature with its ranking score, higher being more relevant.
type Ranked struct {
	Index int
	Name  string
	Score float64
}

// CorrelationRank scores every feature by its correlation with the class
// label, as WEKA's CorrelationAttributeEval does: for each class the label
// is binarised one-vs-rest, the absolute Pearson correlation with the
// feature is computed, and the per-class correlations are averaged weighted
// by class prevalence. The result is sorted by descending score.
func CorrelationRank(d *dataset.Dataset) ([]Ranked, error) {
	if d.Len() < 2 {
		return nil, errors.New("features: need at least two instances")
	}
	counts := d.ClassCounts()
	labels := d.Labels()
	n := float64(d.Len())

	out := make([]Ranked, d.NumFeatures())
	indicator := make([]float64, d.Len())
	for j := 0; j < d.NumFeatures(); j++ {
		col := d.Column(j)
		var score float64
		for c, cnt := range counts {
			if cnt == 0 {
				continue
			}
			for i, l := range labels {
				if l == c {
					indicator[i] = 1
				} else {
					indicator[i] = 0
				}
			}
			score += (float64(cnt) / n) * math.Abs(mat.PearsonCorrelation(col, indicator))
		}
		// With two classes both one-vs-rest correlations are identical;
		// the prevalence weighting already sums to one either way.
		out[j] = Ranked{Index: j, Name: d.FeatureNames[j], Score: score}
	}
	sortRanked(out)
	return out, nil
}

func sortRanked(r []Ranked) {
	sort.SliceStable(r, func(i, j int) bool {
		if r[i].Score != r[j].Score {
			return r[i].Score > r[j].Score
		}
		return r[i].Index < r[j].Index // deterministic tie-break
	})
}

// TopK returns the feature indices of the best k entries of a ranking.
func TopK(ranked []Ranked, k int) []int {
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ranked[i].Index
	}
	return out
}

// Names returns the feature names of the best k entries of a ranking.
func Names(ranked []Ranked, k int) []string {
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = ranked[i].Name
	}
	return out
}

// PCA holds a fitted principal component analysis: the scaler used to
// standardise inputs, the component matrix (features x components, one
// eigenvector per column) and the explained variance of each component.
type PCA struct {
	FeatureNames []string
	Scaler       *dataset.Scaler
	Components   *mat.Matrix
	Explained    []float64 // eigenvalues, descending
}

// FitPCA standardises the dataset's features and computes the principal
// components of the correlation matrix.
func FitPCA(d *dataset.Dataset) (*PCA, error) {
	if d.Len() < 2 {
		return nil, errors.New("features: PCA needs at least two instances")
	}
	if d.NumFeatures() == 0 {
		return nil, errors.New("features: PCA needs at least one feature")
	}
	scaler := dataset.FitScaler(d)
	std := scaler.Apply(d)
	cov, err := std.Matrix().Covariance()
	if err != nil {
		return nil, err
	}
	eig, err := mat.SymmetricEigen(cov)
	if err != nil {
		return nil, fmt.Errorf("features: PCA eigendecomposition: %w", err)
	}
	return &PCA{
		FeatureNames: append([]string(nil), d.FeatureNames...),
		Scaler:       scaler,
		Components:   eig.Vectors,
		Explained:    eig.Values,
	}, nil
}

// ExplainedRatio returns the fraction of total variance captured by each
// component.
func (p *PCA) ExplainedRatio() []float64 {
	var total float64
	for _, v := range p.Explained {
		if v > 0 {
			total += v
		}
	}
	out := make([]float64, len(p.Explained))
	if total == 0 {
		return out
	}
	for i, v := range p.Explained {
		if v > 0 {
			out[i] = v / total
		}
	}
	return out
}

// Project maps a raw feature vector onto the first k principal components.
func (p *PCA) Project(features []float64, k int) ([]float64, error) {
	if len(features) != len(p.FeatureNames) {
		return nil, fmt.Errorf("features: vector has %d features, want %d", len(features), len(p.FeatureNames))
	}
	if k <= 0 || k > p.Components.Cols {
		return nil, fmt.Errorf("features: k=%d outside [1,%d]", k, p.Components.Cols)
	}
	std := append([]float64(nil), features...)
	p.Scaler.Transform(std)
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		var s float64
		for r := 0; r < p.Components.Rows; r++ {
			s += std[r] * p.Components.At(r, c)
		}
		out[c] = s
	}
	return out, nil
}

// RankFeatures ranks the original features by their importance across the
// first numPCs principal components: the absolute loading on each component
// weighted by the square root of its eigenvalue (i.e. by how much variance
// the component carries). This keeps the selection in the original event
// space, as Table II requires.
func (p *PCA) RankFeatures(numPCs int) []Ranked {
	if numPCs <= 0 || numPCs > p.Components.Cols {
		numPCs = p.Components.Cols
	}
	out := make([]Ranked, len(p.FeatureNames))
	for f := range p.FeatureNames {
		var score float64
		for c := 0; c < numPCs; c++ {
			ev := p.Explained[c]
			if ev < 0 {
				ev = 0
			}
			score += math.Abs(p.Components.At(f, c)) * math.Sqrt(ev)
		}
		out[f] = Ranked{Index: f, Name: p.FeatureNames[f], Score: score}
	}
	sortRanked(out)
	return out
}

// Reduction is the result of the full two-step pipeline for one detection
// task.
type Reduction struct {
	// CorrelationTop are the names of the correlation-selected features
	// (the paper's 16), in rank order.
	CorrelationTop []string
	// Selected are the names of the final PCA-selected features (the
	// paper's 8), in rank order over the correlation survivors.
	Selected []string
	// PCA is the analysis fitted on the correlation survivors.
	PCA *PCA
}

// Reduce runs correlation attribute evaluation keeping corrK features, then
// PCA-based ranking keeping pcaK of them. The paper uses corrK=16, pcaK=8.
func Reduce(d *dataset.Dataset, corrK, pcaK int) (*Reduction, error) {
	if corrK <= 0 || pcaK <= 0 || pcaK > corrK {
		return nil, fmt.Errorf("features: invalid reduction sizes corrK=%d pcaK=%d", corrK, pcaK)
	}
	ranked, err := CorrelationRank(d)
	if err != nil {
		return nil, err
	}
	corrTop := TopK(ranked, corrK)
	sub, err := d.Select(corrTop)
	if err != nil {
		return nil, err
	}
	pca, err := FitPCA(sub)
	if err != nil {
		return nil, err
	}
	// Rank over the leading components that explain most variance; using
	// half the dimensionality keeps noise components out of the score.
	numPCs := (corrK + 1) / 2
	pcaRank := pca.RankFeatures(numPCs)
	return &Reduction{
		CorrelationTop: Names(ranked, corrK),
		Selected:       Names(pcaRank, pcaK),
		PCA:            pca,
	}, nil
}
