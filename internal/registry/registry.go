// Package registry is the versioned on-disk model store behind the
// serving tier's train-once / promote-many lifecycle. Models are
// content-addressed — every published blob is named by its SHA-256 and
// re-hashed on load, so a bit-rotted or hand-edited artifact can never
// reach the scoring path — and indexed by a JSON manifest carrying a
// monotonic version number, the persist format version, the feature
// width, operator-supplied training metadata and (optionally) the
// training-time feature distribution for drift monitoring.
//
// Layout:
//
//	<root>/
//	  manifest.json                 # Manifest, written atomically
//	  blobs/sha256-<hex>.json       # model blobs, content-addressed
//
// Both the manifest and blobs are published with the write-temp-then-
// rename idiom, so a reader (or a crashed writer) never observes a
// half-written file. The registry assumes a single writer at a time
// (cmd/smartctl or a training pipeline); concurrent readers — the
// serving tier's watch loop — are always safe.
package registry

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"twosmart/internal/anomaly"
	"twosmart/internal/core"
	"twosmart/internal/drift"
	"twosmart/internal/persist"
)

// ErrIntegrity is wrapped by load errors caused by a blob whose bytes no
// longer match the digest the manifest recorded; match with errors.Is.
var ErrIntegrity = errors.New("registry: blob integrity check failed")

// ErrNoActive is returned by LoadActive and ActiveEntry when no version
// is promoted.
var ErrNoActive = errors.New("registry: no active version")

const (
	manifestName = "manifest.json"
	blobsDir     = "blobs"
)

// Registry is a handle on one on-disk model store.
type Registry struct {
	root string
}

// Open opens (creating if needed) a registry rooted at dir.
func Open(dir string) (*Registry, error) {
	if dir == "" {
		return nil, errors.New("registry: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, blobsDir), 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	r := &Registry{root: dir}
	// Surface a corrupt manifest at open time, not on the first publish.
	if _, err := r.Manifest(); err != nil {
		return nil, err
	}
	return r, nil
}

// Root returns the registry's root directory.
func (r *Registry) Root() string { return r.root }

func (r *Registry) manifestPath() string { return filepath.Join(r.root, manifestName) }

// BlobPath returns where a digest's blob lives.
func (r *Registry) BlobPath(sha string) string {
	return filepath.Join(r.root, blobsDir, "sha256-"+sha+".json")
}

// Manifest reads and validates the current manifest. A registry with no
// manifest yet yields an empty one.
func (r *Registry) Manifest() (*Manifest, error) {
	data, err := os.ReadFile(r.manifestPath())
	if errors.Is(err, os.ErrNotExist) {
		return &Manifest{ManifestVersion: ManifestVersion}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	return DecodeManifest(data)
}

// writeManifest publishes a manifest atomically: encode, write to a temp
// file in the same directory, fsync, rename over manifest.json.
func (r *Registry) writeManifest(m *Manifest) error {
	data, err := EncodeManifest(m)
	if err != nil {
		return err
	}
	return atomicWrite(r.manifestPath(), data)
}

func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, path)
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("registry: %w", werr)
	}
	return nil
}

// PublishOptions carries the optional metadata of a Publish call.
type PublishOptions struct {
	// Note is free-form provenance recorded in the manifest entry.
	Note string
	// TrainMeta is structured training metadata (seed, scale, ...).
	TrainMeta map[string]string
	// Reference is the training-time feature distribution for drift
	// monitoring; must cover exactly the model's feature space when set.
	Reference *drift.Reference
	// Envelope is the stage-0 anomaly envelope for the detection
	// cascade; must cover exactly the model's feature space (names and
	// order) when set. Entries published without one serve with the
	// cascade disabled.
	Envelope *anomaly.Envelope
	// Promote makes the new version active in the same manifest write.
	Promote bool
}

// Publish verifies that blob decodes as a detector, stores it
// content-addressed and appends a manifest entry with the next monotonic
// version; with opts.Promote the new version also becomes active
// atomically. It returns the new entry.
func (r *Registry) Publish(blob []byte, opts PublishOptions) (Entry, error) {
	det, err := core.UnmarshalDetector(blob)
	if err != nil {
		return Entry{}, fmt.Errorf("registry: blob does not decode as a detector: %w", err)
	}
	m, err := r.Manifest()
	if err != nil {
		return Entry{}, err
	}
	sum := sha256.Sum256(blob)
	sha := hex.EncodeToString(sum[:])
	e := Entry{
		Version:     m.NextVersion(),
		SHA256:      sha,
		Size:        int64(len(blob)),
		ModelFormat: persist.FormatVersion,
		Features:    det.FeatureNames(),
		CreatedAt:   time.Now().UTC().Truncate(time.Second),
		Note:        opts.Note,
		TrainMeta:   opts.TrainMeta,
	}
	if opts.Reference != nil {
		if err := opts.Reference.Validate(); err != nil {
			return Entry{}, fmt.Errorf("registry: drift reference: %w", err)
		}
		if opts.Reference.NumFeatures() != len(e.Features) {
			return Entry{}, fmt.Errorf("registry: drift reference covers %d features, model has %d",
				opts.Reference.NumFeatures(), len(e.Features))
		}
		e.Reference = opts.Reference
	}
	if opts.Envelope != nil {
		if err := opts.Envelope.Validate(); err != nil {
			return Entry{}, fmt.Errorf("registry: anomaly envelope: %w", err)
		}
		if opts.Envelope.NumFeatures() != len(e.Features) {
			return Entry{}, fmt.Errorf("registry: anomaly envelope covers %d features, model has %d",
				opts.Envelope.NumFeatures(), len(e.Features))
		}
		for i, name := range opts.Envelope.Features {
			if name != e.Features[i] {
				return Entry{}, fmt.Errorf("registry: anomaly envelope feature %d is %q, model has %q",
					i, name, e.Features[i])
			}
		}
		e.Envelope = opts.Envelope
	}
	// Blob first, manifest second: a crash between the two leaves an
	// orphaned blob (harmless, prunable), never a dangling manifest entry.
	if err := atomicWrite(r.BlobPath(sha), blob); err != nil {
		return Entry{}, err
	}
	m.Models = append(m.Models, e)
	if opts.Promote {
		m.Active = e.Version
	}
	if err := r.writeManifest(m); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// List returns every published entry, oldest first.
func (r *Registry) List() ([]Entry, error) {
	m, err := r.Manifest()
	if err != nil {
		return nil, err
	}
	return append([]Entry(nil), m.Models...), nil
}

// ActiveEntry returns the promoted entry, or ErrNoActive.
func (r *Registry) ActiveEntry() (Entry, error) {
	m, err := r.Manifest()
	if err != nil {
		return Entry{}, err
	}
	if m.Active == 0 {
		return Entry{}, ErrNoActive
	}
	e, ok := m.Entry(m.Active)
	if !ok {
		return Entry{}, fmt.Errorf("registry: active version %d missing from manifest", m.Active)
	}
	return e, nil
}

// Promote makes a published version the active one.
func (r *Registry) Promote(version int) (Entry, error) {
	m, err := r.Manifest()
	if err != nil {
		return Entry{}, err
	}
	e, ok := m.Entry(version)
	if !ok {
		return Entry{}, fmt.Errorf("registry: version %d not published", version)
	}
	m.Active = version
	return e, r.writeManifest(m)
}

// Pin targets one shard at a published version, overriding Active for
// that shard only. This is the canary primitive: the rollout controller
// pins a candidate to a single shard, bakes, then either widens
// (Promote + Unpin) or rolls back (Unpin).
func (r *Registry) Pin(shardID string, version int) (Entry, error) {
	if shardID == "" {
		return Entry{}, errors.New("registry: pin needs a shard id")
	}
	m, err := r.Manifest()
	if err != nil {
		return Entry{}, err
	}
	e, ok := m.Entry(version)
	if !ok {
		return Entry{}, fmt.Errorf("registry: version %d not published", version)
	}
	if m.Pins == nil {
		m.Pins = make(map[string]int)
	}
	m.Pins[shardID] = version
	return e, r.writeManifest(m)
}

// Unpin removes a shard's pin so it follows the active version again.
// Unpinning a shard that has no pin is a no-op.
func (r *Registry) Unpin(shardID string) error {
	m, err := r.Manifest()
	if err != nil {
		return err
	}
	if _, ok := m.Pins[shardID]; !ok {
		return nil
	}
	delete(m.Pins, shardID)
	if len(m.Pins) == 0 {
		m.Pins = nil
	}
	return r.writeManifest(m)
}

// EffectiveEntry resolves the entry a shard should serve: its pinned
// version when the pin table mentions shardID, the active version
// otherwise (ErrNoActive when neither applies).
func (r *Registry) EffectiveEntry(shardID string) (Entry, error) {
	m, err := r.Manifest()
	if err != nil {
		return Entry{}, err
	}
	v := m.EffectiveVersion(shardID)
	if v == 0 {
		return Entry{}, ErrNoActive
	}
	e, ok := m.Entry(v)
	if !ok {
		return Entry{}, fmt.Errorf("registry: effective version %d missing from manifest", v)
	}
	return e, nil
}

// Rollback demotes the active version to the newest published version
// below it and returns the newly active entry.
func (r *Registry) Rollback() (Entry, error) {
	m, err := r.Manifest()
	if err != nil {
		return Entry{}, err
	}
	if m.Active == 0 {
		return Entry{}, ErrNoActive
	}
	var prev *Entry
	for i := range m.Models {
		e := &m.Models[i]
		if e.Version < m.Active && (prev == nil || e.Version > prev.Version) {
			prev = e
		}
	}
	if prev == nil {
		return Entry{}, fmt.Errorf("registry: no version below active v%d to roll back to", m.Active)
	}
	m.Active = prev.Version
	return *prev, r.writeManifest(m)
}

// Load reads a published version's blob, re-verifies its SHA-256 against
// the manifest (ErrIntegrity on mismatch) and decodes the detector.
func (r *Registry) Load(version int) (*core.Detector, Entry, error) {
	m, err := r.Manifest()
	if err != nil {
		return nil, Entry{}, err
	}
	e, ok := m.Entry(version)
	if !ok {
		return nil, Entry{}, fmt.Errorf("registry: version %d not published", version)
	}
	det, err := r.loadEntry(e)
	return det, e, err
}

// LoadActive loads the promoted version (ErrNoActive when none is).
func (r *Registry) LoadActive() (*core.Detector, Entry, error) {
	e, err := r.ActiveEntry()
	if err != nil {
		return nil, Entry{}, err
	}
	det, err := r.loadEntry(e)
	return det, e, err
}

// LoadEffective loads the version a shard should serve — its pin when
// one exists, the active version otherwise. With an empty shardID it is
// exactly LoadActive.
func (r *Registry) LoadEffective(shardID string) (*core.Detector, Entry, error) {
	e, err := r.EffectiveEntry(shardID)
	if err != nil {
		return nil, Entry{}, err
	}
	det, err := r.loadEntry(e)
	return det, e, err
}

func (r *Registry) loadEntry(e Entry) (*core.Detector, error) {
	blob, err := os.ReadFile(r.BlobPath(e.SHA256))
	if err != nil {
		return nil, fmt.Errorf("registry: v%d blob: %w", e.Version, err)
	}
	if int64(len(blob)) != e.Size {
		return nil, fmt.Errorf("%w: v%d blob is %d bytes, manifest says %d",
			ErrIntegrity, e.Version, len(blob), e.Size)
	}
	sum := sha256.Sum256(blob)
	if got := hex.EncodeToString(sum[:]); got != e.SHA256 {
		return nil, fmt.Errorf("%w: v%d blob hashes to %s, manifest says %s",
			ErrIntegrity, e.Version, got, e.SHA256)
	}
	det, err := core.UnmarshalDetector(blob)
	if err != nil {
		return nil, fmt.Errorf("registry: v%d: %w", e.Version, err)
	}
	return det, nil
}

// Prune removes all but the newest keep versions from the manifest and
// deletes blobs no surviving entry references. The active version and
// every version a shard pin references are always kept, even when older
// than the cut — pruning a pinned canary out from under a baking shard
// would turn its next watch poll into a load error. It returns the
// removed entries.
func (r *Registry) Prune(keep int) ([]Entry, error) {
	if keep < 1 {
		return nil, fmt.Errorf("registry: prune must keep at least 1 version, got %d", keep)
	}
	m, err := r.Manifest()
	if err != nil {
		return nil, err
	}
	if len(m.Models) <= keep {
		return nil, nil
	}
	pinned := make(map[int]bool, len(m.Pins))
	for _, v := range m.Pins {
		pinned[v] = true
	}
	cut := len(m.Models) - keep
	var removed []Entry
	kept := make([]Entry, 0, keep+1)
	for i, e := range m.Models {
		if i < cut && e.Version != m.Active && !pinned[e.Version] {
			removed = append(removed, e)
		} else {
			kept = append(kept, e)
		}
	}
	m.Models = kept
	if err := r.writeManifest(m); err != nil {
		return nil, err
	}
	// Delete blobs only after the manifest no longer references them, and
	// only when no surviving entry shares the digest.
	live := make(map[string]bool, len(kept))
	for _, e := range kept {
		live[e.SHA256] = true
	}
	for _, e := range removed {
		if !live[e.SHA256] {
			os.Remove(r.BlobPath(e.SHA256))
		}
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i].Version < removed[j].Version })
	return removed, nil
}

// Watch polls the manifest every interval and invokes onChange each time
// the active version differs from the last one observed (including the
// first observation when the registry already has an active version and
// from differs). It blocks until ctx is cancelled; manifest read errors
// are reported through onError (nil to ignore) and polling continues —
// a torn NFS read must not kill the serving tier's swap loop.
func (r *Registry) Watch(ctx context.Context, interval time.Duration, from int, onChange func(Entry), onError func(error)) {
	r.WatchEffective(ctx, interval, "", from, onChange, onError)
}

// WatchEffective is Watch for a specific shard: it tracks the shard's
// effective version (pin when present, active otherwise), so a
// pin-table-only manifest write — no version published, no promotion —
// still fires onChange on the shard it targets. With an empty shardID it
// degenerates to Watch.
func (r *Registry) WatchEffective(ctx context.Context, interval time.Duration, shardID string, from int, onChange func(Entry), onError func(error)) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	last := from
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		m, err := r.Manifest()
		if err != nil {
			if onError != nil {
				onError(err)
			}
			continue
		}
		v := m.EffectiveVersion(shardID)
		if v == 0 || v == last {
			continue
		}
		e, ok := m.Entry(v)
		if !ok {
			continue
		}
		last = v
		onChange(e)
	}
}
