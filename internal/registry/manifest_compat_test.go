package registry

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"twosmart/internal/anomaly"
	"twosmart/internal/core"
)

// testEnvelope builds a valid envelope over the Common-4 feature space.
func testEnvelope() *anomaly.Envelope {
	n := len(core.CommonFeatures)
	e := &anomaly.Envelope{
		Features:  append([]string(nil), core.CommonFeatures...),
		Lo:        make([]float64, n),
		Hi:        make([]float64, n),
		InvWidth:  make([]float64, n),
		Threshold: 0.2,
		Budget:    0.001,
	}
	for i := range e.Lo {
		e.Lo[i] = float64(10 * (i + 1))
		e.Hi[i] = float64(100 * (i + 1))
		e.InvWidth[i] = 1 / (e.Hi[i] - e.Lo[i])
	}
	return e
}

// TestManifestEnvelopeCompat is the forward/backward compat table test:
// a manifest carrying the new envelope section must load on the old
// struct shape (unknown-field tolerance), and a pre-cascade manifest must
// load cleanly post-change with a typed "no envelope" note — never a
// nil-deref.
func TestManifestEnvelopeCompat(t *testing.T) {
	sha := strings.Repeat("ab", 32)
	withEnvelope := &Manifest{
		ManifestVersion: ManifestVersion,
		Active:          1,
		Models: []Entry{{
			Version:     1,
			SHA256:      sha,
			Size:        10,
			ModelFormat: 1,
			Features:    append([]string(nil), core.CommonFeatures...),
			CreatedAt:   time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC),
			Envelope:    testEnvelope(),
		}},
	}
	newBytes, err := EncodeManifest(withEnvelope)
	if err != nil {
		t.Fatal(err)
	}
	// The pre-cascade manifest shape: exactly today's document minus the
	// envelope field, as an older build would have written it.
	preCascade := []byte(`{
	  "manifest_version": 1,
	  "active": 1,
	  "models": [{
	    "version": 1,
	    "sha256": "` + sha + `",
	    "size": 10,
	    "model_format": 1,
	    "features": ["branch-instructions", "cache-references", "branch-misses", "node-stores"],
	    "created_at": "2026-08-01T00:00:00Z"
	  }]
	}`)

	t.Run("new manifest loads on old struct shape", func(t *testing.T) {
		// oldEntry mirrors the Entry struct as it existed before the
		// cascade: no Envelope field. encoding/json drops unknown fields,
		// so an old build reading a new manifest must decode cleanly and
		// keep everything it understands.
		type oldEntry struct {
			Version  int      `json:"version"`
			SHA256   string   `json:"sha256"`
			Size     int64    `json:"size"`
			Features []string `json:"features"`
		}
		type oldManifest struct {
			ManifestVersion int        `json:"manifest_version"`
			Active          int        `json:"active"`
			Models          []oldEntry `json:"models"`
		}
		var old oldManifest
		if err := json.Unmarshal(newBytes, &old); err != nil {
			t.Fatalf("old shape rejects new manifest: %v", err)
		}
		if len(old.Models) != 1 || old.Models[0].Version != 1 || old.Models[0].SHA256 != sha {
			t.Fatalf("old shape lost fields: %+v", old)
		}
	})

	t.Run("pre-cascade manifest loads post-change", func(t *testing.T) {
		m, err := DecodeManifest(preCascade)
		if err != nil {
			t.Fatalf("pre-cascade manifest rejected: %v", err)
		}
		e, ok := m.Entry(1)
		if !ok {
			t.Fatal("entry missing")
		}
		if e.Envelope != nil {
			t.Fatalf("pre-cascade entry grew an envelope: %+v", e.Envelope)
		}
		env, err := e.CascadeEnvelope()
		if !errors.Is(err, ErrNoEnvelope) {
			t.Fatalf("CascadeEnvelope error = %v, want ErrNoEnvelope", err)
		}
		if env != nil {
			t.Fatal("envelope non-nil alongside ErrNoEnvelope")
		}
	})

	t.Run("new manifest round-trips with envelope", func(t *testing.T) {
		m, err := DecodeManifest(newBytes)
		if err != nil {
			t.Fatal(err)
		}
		e, _ := m.Entry(1)
		env, err := e.CascadeEnvelope()
		if err != nil {
			t.Fatal(err)
		}
		if env.Threshold != 0.2 || env.NumFeatures() != len(core.CommonFeatures) {
			t.Fatalf("envelope changed across round trip: %+v", env)
		}
	})
}

func TestManifestRejectsBadEnvelope(t *testing.T) {
	sha := strings.Repeat("cd", 32)
	base := func() *Manifest {
		return &Manifest{
			ManifestVersion: ManifestVersion,
			Models: []Entry{{
				Version:     1,
				SHA256:      sha,
				Size:        10,
				ModelFormat: 1,
				Features:    append([]string(nil), core.CommonFeatures...),
				CreatedAt:   time.Now().UTC(),
				Envelope:    testEnvelope(),
			}},
		}
	}
	cases := []struct {
		name string
		mut  func(*Manifest)
	}{
		{"invalid envelope", func(m *Manifest) { m.Models[0].Envelope.InvWidth[0] = -1 }},
		{"width mismatch", func(m *Manifest) {
			m.Models[0].Envelope.Features = m.Models[0].Envelope.Features[:2]
			m.Models[0].Envelope.Lo = m.Models[0].Envelope.Lo[:2]
			m.Models[0].Envelope.Hi = m.Models[0].Envelope.Hi[:2]
			m.Models[0].Envelope.InvWidth = m.Models[0].Envelope.InvWidth[:2]
		}},
		{"name mismatch", func(m *Manifest) { m.Models[0].Envelope.Features[0] = "not-a-model-feature" }},
	}
	if _, err := EncodeManifest(base()); err != nil {
		t.Fatalf("base manifest invalid: %v", err)
	}
	for _, tc := range cases {
		m := base()
		tc.mut(m)
		if _, err := EncodeManifest(m); err == nil {
			t.Errorf("%s: EncodeManifest succeeded, want error", tc.name)
		}
	}
}

// TestPublishWithEnvelope pins the publish→load path: an envelope rides
// the manifest entry and comes back intact; a mismatched one is refused.
func TestPublishWithEnvelope(t *testing.T) {
	blob1, _, _ := fixtures(t)
	r := open(t)
	env := testEnvelope()
	e, err := r.Publish(blob1, PublishOptions{Envelope: env, Promote: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.Entry(e.Version)
	if !ok {
		t.Fatal("published entry missing")
	}
	loaded, err := got.CascadeEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Threshold != env.Threshold {
		t.Fatalf("threshold %v, want %v", loaded.Threshold, env.Threshold)
	}

	bad := testEnvelope()
	bad.Features[0] = "wrong-name"
	if _, err := r.Publish(blob1, PublishOptions{Envelope: bad}); err == nil {
		t.Fatal("publish accepted mismatched envelope")
	}
}
