package registry

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"twosmart/internal/core"
	"twosmart/internal/corpus"
	"twosmart/internal/dataset"
	"twosmart/internal/drift"
)

var (
	fixOnce sync.Once
	fixErr  error
	fixData *dataset.Dataset
	blobs   [2][]byte // two distinct tiny trained detectors
)

// fixtures trains two tiny Common-4 detectors (different seeds, so
// different bytes) shared by the whole package.
func fixtures(t *testing.T) ([]byte, []byte, *dataset.Dataset) {
	t.Helper()
	fixOnce.Do(func() {
		data, err := corpus.Collect(corpus.Config{
			Scale:       0.001,
			MinPerClass: 24,
			Budget:      30000,
			Seed:        7,
			Omniscient:  true,
		})
		if err != nil {
			fixErr = err
			return
		}
		fixData, err = data.SelectByName(core.CommonFeatures)
		if err != nil {
			fixErr = err
			return
		}
		for i, seed := range []int64{5, 17} {
			det, err := core.Train(fixData, core.TrainConfig{Seed: seed})
			if err != nil {
				fixErr = err
				return
			}
			blobs[i], fixErr = det.Marshal()
			if fixErr != nil {
				return
			}
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return blobs[0], blobs[1], fixData
}

func open(t *testing.T) *Registry {
	t.Helper()
	r, err := Open(filepath.Join(t.TempDir(), "models"))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestPublishLoadRoundTrip pins the core lifecycle: publish two versions,
// list them, promote, load with integrity verification, roll back.
func TestPublishLoadRoundTrip(t *testing.T) {
	blob1, blob2, data := fixtures(t)
	r := open(t)

	ref, err := drift.BuildReference(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := r.Publish(blob1, PublishOptions{
		Note:      "first",
		TrainMeta: map[string]string{"seed": "5"},
		Reference: ref,
		Promote:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e1.Version != 1 || len(e1.SHA256) != 64 || e1.Size != int64(len(blob1)) {
		t.Fatalf("entry %+v", e1)
	}
	if len(e1.Features) != len(core.CommonFeatures) {
		t.Fatalf("entry features %v", e1.Features)
	}
	e2, err := r.Publish(blob2, PublishOptions{Note: "second"})
	if err != nil {
		t.Fatal(err)
	}
	if e2.Version != 2 {
		t.Fatalf("second publish got version %d", e2.Version)
	}
	if e2.SHA256 == e1.SHA256 {
		t.Fatal("different blobs share a digest")
	}

	list, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Version != 1 || list[1].Version != 2 {
		t.Fatalf("list %+v", list)
	}

	// v1 was promoted at publish; the active load carries its reference.
	det, act, err := r.LoadActive()
	if err != nil {
		t.Fatal(err)
	}
	if act.Version != 1 || det == nil {
		t.Fatalf("active %+v", act)
	}
	if act.Reference == nil || act.Reference.NumFeatures() != len(act.Features) {
		t.Fatal("active entry lost its drift reference")
	}
	if act.TrainMeta["seed"] != "5" {
		t.Fatalf("train meta %v", act.TrainMeta)
	}

	if _, err := r.Promote(2); err != nil {
		t.Fatal(err)
	}
	_, act, err = r.LoadActive()
	if err != nil {
		t.Fatal(err)
	}
	if act.Version != 2 {
		t.Fatalf("after promote, active is v%d", act.Version)
	}

	back, err := r.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != 1 {
		t.Fatalf("rollback landed on v%d", back.Version)
	}
	if _, err := r.Rollback(); err == nil {
		t.Fatal("rollback below v1 succeeded")
	}

	// Both versions load and differ behaviourally on at least one sample
	// (different training seeds), proving the right blob backs each.
	d1, _, err := r.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := r.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	differ := false
	for _, ins := range data.Instances {
		s1, err1 := d1.MalwareScore(ins.Features)
		s2, err2 := d2.MalwareScore(ins.Features)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if s1 != s2 {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("v1 and v2 score identically; fixtures are not distinct")
	}
}

// TestIntegrityVerification pins that a tampered blob fails Load with
// ErrIntegrity.
func TestIntegrityVerification(t *testing.T) {
	blob1, _, _ := fixtures(t)
	r := open(t)
	e, err := r.Publish(blob1, PublishOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := r.BlobPath(e.SHA256)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40 // flip one bit mid-blob, size unchanged
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Load(e.Version); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered blob load: %v, want ErrIntegrity", err)
	}
	// Truncation is caught by the cheap size check first.
	if err := os.WriteFile(path, raw[:len(raw)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Load(e.Version); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("truncated blob load: %v, want ErrIntegrity", err)
	}
}

// TestPublishRejectsGarbage pins that a non-detector blob never enters
// the store.
func TestPublishRejectsGarbage(t *testing.T) {
	r := open(t)
	if _, err := r.Publish([]byte(`{"not":"a detector"}`), PublishOptions{}); err == nil {
		t.Fatal("garbage blob published")
	}
	list, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("registry not empty after rejected publish: %+v", list)
	}
}

// TestPruneKeepsActive pins that prune never drops the active version
// and deletes only unreferenced blobs.
func TestPruneKeepsActive(t *testing.T) {
	blob1, blob2, _ := fixtures(t)
	r := open(t)
	if _, err := r.Publish(blob1, PublishOptions{Promote: true}); err != nil { // v1 active
		t.Fatal(err)
	}
	if _, err := r.Publish(blob2, PublishOptions{}); err != nil { // v2
		t.Fatal(err)
	}
	if _, err := r.Publish(blob1, PublishOptions{}); err != nil { // v3, same bytes as v1
		t.Fatal(err)
	}
	removed, err := r.Prune(1)
	if err != nil {
		t.Fatal(err)
	}
	// v1 is active (kept); v2 removed; v3 is the newest (kept).
	if len(removed) != 1 || removed[0].Version != 2 {
		t.Fatalf("removed %+v, want just v2", removed)
	}
	if _, _, err := r.Load(1); err != nil {
		t.Fatalf("active v1 gone after prune: %v", err)
	}
	if _, _, err := r.Load(3); err != nil {
		t.Fatalf("newest v3 gone after prune: %v", err)
	}
	if _, _, err := r.Load(2); err == nil {
		t.Fatal("pruned v2 still loads")
	}
}

// TestRejectsMismatchedReference pins that a drift reference with the
// wrong width cannot be published.
func TestRejectsMismatchedReference(t *testing.T) {
	blob1, _, data := fixtures(t)
	wide, err := data.Select([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := drift.BuildReference(wide, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := open(t)
	if _, err := r.Publish(blob1, PublishOptions{Reference: ref}); err == nil {
		t.Fatal("2-feature reference accepted for a 4-feature model")
	}
}

// TestManifestSurvivesReopen pins durability: a fresh handle on the same
// directory sees everything.
func TestManifestSurvivesReopen(t *testing.T) {
	blob1, _, _ := fixtures(t)
	dir := filepath.Join(t.TempDir(), "models")
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish(blob1, PublishOptions{Promote: true}); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r2.LoadActive(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenRejectsCorruptManifest pins that a torn or tampered manifest
// fails at Open, before any model can be served from it.
func TestOpenRejectsCorruptManifest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "models")
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"manifest_version":1,"active":9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "active version 9") {
		t.Fatalf("corrupt manifest open: %v", err)
	}
}

// TestPinLifecycle pins the canary primitive: Pin overrides Active for
// one shard only, Unpin restores it, and the pin table round-trips the
// manifest (omitted when empty).
func TestPinLifecycle(t *testing.T) {
	blob1, blob2, _ := fixtures(t)
	r := open(t)
	if _, err := r.Publish(blob1, PublishOptions{Promote: true}); err != nil { // v1 active
		t.Fatal(err)
	}
	e2, err := r.Publish(blob2, PublishOptions{}) // v2 candidate
	if err != nil {
		t.Fatal(err)
	}

	if _, err := r.Pin("", e2.Version); err == nil {
		t.Fatal("pin with empty shard id accepted")
	}
	if _, err := r.Pin("canary", 9); err == nil {
		t.Fatal("pin to unpublished version accepted")
	}
	if _, err := r.Pin("canary", e2.Version); err != nil {
		t.Fatal(err)
	}

	// The pinned shard sees v2; everyone else still follows active v1.
	_, eff, err := r.LoadEffective("canary")
	if err != nil {
		t.Fatal(err)
	}
	if eff.Version != 2 {
		t.Fatalf("pinned shard loads v%d, want v2", eff.Version)
	}
	_, eff, err = r.LoadEffective("other")
	if err != nil {
		t.Fatal(err)
	}
	if eff.Version != 1 {
		t.Fatalf("unpinned shard loads v%d, want active v1", eff.Version)
	}
	_, eff, err = r.LoadEffective("")
	if err != nil || eff.Version != 1 {
		t.Fatalf("empty shard id: v%d, %v, want active v1", eff.Version, err)
	}

	if err := r.Unpin("canary"); err != nil {
		t.Fatal(err)
	}
	if err := r.Unpin("canary"); err != nil { // idempotent
		t.Fatal(err)
	}
	_, eff, err = r.LoadEffective("canary")
	if err != nil || eff.Version != 1 {
		t.Fatalf("after unpin: v%d, %v, want active v1", eff.Version, err)
	}
	m, err := r.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Pins != nil {
		t.Fatalf("empty pin table persisted: %v", m.Pins)
	}
}

// TestPruneKeepsPinned is the regression test for prune removing a
// version a shard pin references: only the active version used to be
// protected, so pruning mid-bake deleted the canary's blob.
func TestPruneKeepsPinned(t *testing.T) {
	blob1, blob2, _ := fixtures(t)
	r := open(t)
	if _, err := r.Publish(blob1, PublishOptions{}); err != nil { // v1 pinned
		t.Fatal(err)
	}
	if _, err := r.Publish(blob2, PublishOptions{}); err != nil { // v2 prunable
		t.Fatal(err)
	}
	if _, err := r.Publish(blob1, PublishOptions{Promote: true}); err != nil { // v3 active
		t.Fatal(err)
	}
	if _, err := r.Pin("canary", 1); err != nil {
		t.Fatal(err)
	}
	removed, err := r.Prune(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0].Version != 2 {
		t.Fatalf("removed %+v, want just v2 (v1 is pinned, v3 is active)", removed)
	}
	if _, _, err := r.LoadEffective("canary"); err != nil {
		t.Fatalf("pinned v1 gone after prune: %v", err)
	}
	// v1 and v3 share bytes; the digest must survive v2's removal.
	if _, _, err := r.Load(3); err != nil {
		t.Fatalf("active v3 gone after prune: %v", err)
	}
}

// TestManifestRejectsDanglingPin pins validation: a pin referencing an
// unpublished version (e.g. hand-edited manifest) fails decode loudly.
func TestManifestRejectsDanglingPin(t *testing.T) {
	blob1, _, _ := fixtures(t)
	r := open(t)
	e, err := r.Publish(blob1, PublishOptions{Promote: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	m.Pins = map[string]int{"canary": e.Version + 7}
	if _, err := EncodeManifest(m); err == nil || !strings.Contains(err.Error(), "pinned to version") {
		t.Fatalf("dangling pin encode: %v", err)
	}
	m.Pins = map[string]int{"": e.Version}
	if _, err := EncodeManifest(m); err == nil || !strings.Contains(err.Error(), "empty shard id") {
		t.Fatalf("empty shard id encode: %v", err)
	}
}

// TestWatchSeesPromotion pins the watch loop: promoting a version wakes
// the callback with the new entry.
func TestWatchSeesPromotion(t *testing.T) {
	blob1, blob2, _ := fixtures(t)
	r := open(t)
	e1, err := r.Publish(blob1, PublishOptions{Promote: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish(blob2, PublishOptions{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got := make(chan Entry, 1)
	go r.Watch(ctx, 5*time.Millisecond, e1.Version, func(e Entry) { got <- e }, nil)
	if _, err := r.Promote(2); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-got:
		if e.Version != 2 {
			t.Fatalf("watch reported v%d, want v2", e.Version)
		}
	case <-ctx.Done():
		t.Fatal("watch never reported the promotion")
	}
}

// TestWatchEffectiveSeesPinOnlyChange pins the rollout-critical watch
// path: a pin-table-only manifest write — no new version, no promotion,
// Active untouched — must still wake the shard it targets, and the
// later unpin must swap it back to the active version. A shard watching
// under a different id must see neither.
func TestWatchEffectiveSeesPinOnlyChange(t *testing.T) {
	blob1, blob2, _ := fixtures(t)
	r := open(t)
	e1, err := r.Publish(blob1, PublishOptions{Promote: true})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := r.Publish(blob2, PublishOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	canary := make(chan Entry, 1)
	other := make(chan Entry, 1)
	go r.WatchEffective(ctx, 5*time.Millisecond, "canary", e1.Version, func(e Entry) { canary <- e }, nil)
	go r.WatchEffective(ctx, 5*time.Millisecond, "other", e1.Version, func(e Entry) { other <- e }, nil)

	if _, err := r.Pin("canary", e2.Version); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-canary:
		if e.Version != 2 {
			t.Fatalf("pinned shard watch reported v%d, want v2", e.Version)
		}
	case <-ctx.Done():
		t.Fatal("pin-only manifest change never reached the pinned shard's watch")
	}

	if err := r.Unpin("canary"); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-canary:
		if e.Version != 1 {
			t.Fatalf("unpin reported v%d, want active v1", e.Version)
		}
	case <-ctx.Done():
		t.Fatal("unpin never reached the pinned shard's watch")
	}

	// The untargeted shard's effective version never changed.
	select {
	case e := <-other:
		t.Fatalf("untargeted shard woke on someone else's pin: v%d", e.Version)
	case <-time.After(50 * time.Millisecond):
	}
}
