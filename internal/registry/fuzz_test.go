package registry

import (
	"bytes"
	"testing"
)

// FuzzDecodeManifest pins two properties of the manifest decoder: it
// never panics on arbitrary bytes, and anything it accepts survives an
// encode/decode round trip unchanged (the decoder and validator agree).
func FuzzDecodeManifest(f *testing.F) {
	const sha = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
	seeds := []string{
		`{"manifest_version":1,"active":0,"models":[]}`,
		`{"manifest_version":1,"active":1,"models":[{"version":1,"sha256":"` + sha +
			`","size":10,"model_format":1,"features":["cycles"],"created_at":"2026-01-01T00:00:00Z"}]}`,
		`{"manifest_version":2}`,
		`{"manifest_version":1,"active":9}`,
		`{`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		out, err := EncodeManifest(m)
		if err != nil {
			t.Fatalf("accepted manifest fails to re-encode: %v", err)
		}
		m2, err := DecodeManifest(out)
		if err != nil {
			t.Fatalf("re-encoded manifest fails to decode: %v", err)
		}
		out2, err := EncodeManifest(m2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("encode not stable:\n%s\nvs\n%s", out, out2)
		}
	})
}
