package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"regexp"
	"time"

	"twosmart/internal/anomaly"
	"twosmart/internal/drift"
)

// ManifestVersion is the manifest schema generation; DecodeManifest
// refuses any other value so an old build meeting a newer registry fails
// with a clear error instead of silently dropping fields.
const ManifestVersion = 1

// shaPattern is the only blob digest form the registry accepts:
// lowercase hex SHA-256.
var shaPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// Entry describes one published model version.
type Entry struct {
	// Version is the registry-assigned monotonic version number (>= 1).
	Version int `json:"version"`
	// SHA256 is the lowercase hex digest of the model blob; the blob
	// lives at blobs/sha256-<SHA256>.json and is re-hashed on load.
	SHA256 string `json:"sha256"`
	// Size is the blob length in bytes (a cheap first-line integrity
	// check before hashing).
	Size int64 `json:"size"`
	// ModelFormat is the persist.FormatVersion the blob was written with.
	ModelFormat int `json:"model_format"`
	// Features is the model's input feature space, in order; its length
	// is the feature width the serving tier must enforce.
	Features []string `json:"features"`
	// CreatedAt is the publish time (UTC).
	CreatedAt time.Time `json:"created_at"`
	// Note is free-form operator-supplied provenance ("retrained on
	// 2026-08 corpus", ticket links, ...).
	Note string `json:"note,omitempty"`
	// TrainMeta carries structured training metadata (seed, corpus
	// scale, boosting...), merged verbatim from the publisher.
	TrainMeta map[string]string `json:"train_meta,omitempty"`
	// Reference is the training-time feature distribution for drift
	// monitoring; optional (models published without one serve with
	// drift monitoring disabled).
	Reference *drift.Reference `json:"reference,omitempty"`
	// Envelope is the stage-0 anomaly envelope for the detection
	// cascade; optional. Pre-cascade manifests have no envelope field
	// and load unchanged — serving with such an entry simply runs with
	// the cascade disabled (see CascadeEnvelope).
	Envelope *anomaly.Envelope `json:"envelope,omitempty"`
}

// ErrNoEnvelope is returned by CascadeEnvelope for an entry published
// without a stage-0 anomaly envelope. It is a typed "cascade disabled"
// signal, not a failure: the serve path matches it with errors.Is, logs
// the note and serves the full two-stage path for every sample.
var ErrNoEnvelope = errors.New("registry: entry has no anomaly envelope (cascade disabled)")

// CascadeEnvelope returns the entry's stage-0 envelope, or ErrNoEnvelope
// when the entry predates the cascade (or was published without one).
// Callers in the serve path use this instead of dereferencing Envelope so
// a pre-cascade manifest degrades to "cascade disabled" with a typed
// note, never a nil-deref.
func (e *Entry) CascadeEnvelope() (*anomaly.Envelope, error) {
	if e.Envelope == nil {
		return nil, fmt.Errorf("%w (model v%d)", ErrNoEnvelope, e.Version)
	}
	return e.Envelope, nil
}

// Manifest is the registry's index document: every published version
// plus which one is active. It is written atomically (temp file +
// rename), so readers always see a complete manifest.
type Manifest struct {
	ManifestVersion int `json:"manifest_version"`
	// Active is the promoted version number, 0 when nothing is promoted.
	Active int     `json:"active"`
	Models []Entry `json:"models"`
	// Pins targets specific shards (by the shard id smartserve announces
	// with -shard-id) at a version other than Active — the canary
	// mechanism behind staged rollout. Omitted when empty, so pre-rollout
	// manifests round-trip byte-identical and old builds that ignore
	// unknown fields keep serving the active version.
	Pins map[string]int `json:"pins,omitempty"`
}

// Entry returns the entry for a version number.
func (m *Manifest) Entry(version int) (Entry, bool) {
	for _, e := range m.Models {
		if e.Version == version {
			return e, true
		}
	}
	return Entry{}, false
}

// EffectiveVersion resolves the version a shard should serve: its pin
// when one exists, the active version otherwise. A shardID the pin
// table does not mention (or the empty string) follows Active.
func (m *Manifest) EffectiveVersion(shardID string) int {
	if shardID != "" {
		if v, ok := m.Pins[shardID]; ok {
			return v
		}
	}
	return m.Active
}

// Latest returns the highest published version, or false when the
// registry is empty.
func (m *Manifest) Latest() (Entry, bool) {
	if len(m.Models) == 0 {
		return Entry{}, false
	}
	return m.Models[len(m.Models)-1], true
}

// NextVersion returns the version number Publish will assign next.
func (m *Manifest) NextVersion() int {
	if e, ok := m.Latest(); ok {
		return e.Version + 1
	}
	return 1
}

// EncodeManifest serialises a manifest to indented JSON.
func EncodeManifest(m *Manifest) ([]byte, error) {
	if err := validateManifest(m); err != nil {
		return nil, err
	}
	return json.MarshalIndent(m, "", "  ")
}

// DecodeManifest parses and validates a manifest document. It is strict
// on purpose — the manifest gates which model blob gets loaded into the
// serving tier, so a malformed or tampered one must fail loudly here,
// never deeper in the load path. It never panics on malformed input
// (FuzzDecodeManifest pins that).
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("registry: reading manifest: %w", err)
	}
	if err := validateManifest(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

func validateManifest(m *Manifest) error {
	if m.ManifestVersion != ManifestVersion {
		return fmt.Errorf("registry: unsupported manifest version %d (this build reads v%d)",
			m.ManifestVersion, ManifestVersion)
	}
	prev := 0
	for i := range m.Models {
		e := &m.Models[i]
		if e.Version <= prev {
			return fmt.Errorf("registry: manifest versions not strictly ascending at index %d (%d after %d)",
				i, e.Version, prev)
		}
		prev = e.Version
		if !shaPattern.MatchString(e.SHA256) {
			return fmt.Errorf("registry: v%d has malformed sha256 %q", e.Version, e.SHA256)
		}
		if e.Size <= 0 {
			return fmt.Errorf("registry: v%d has non-positive blob size %d", e.Version, e.Size)
		}
		if len(e.Features) == 0 {
			return fmt.Errorf("registry: v%d has no feature space", e.Version)
		}
		if e.Reference != nil {
			if err := e.Reference.Validate(); err != nil {
				return fmt.Errorf("registry: v%d drift reference: %w", e.Version, err)
			}
			if e.Reference.NumFeatures() != len(e.Features) {
				return fmt.Errorf("registry: v%d drift reference covers %d features, model has %d",
					e.Version, e.Reference.NumFeatures(), len(e.Features))
			}
		}
		if e.Envelope != nil {
			if err := e.Envelope.Validate(); err != nil {
				return fmt.Errorf("registry: v%d anomaly envelope: %w", e.Version, err)
			}
			// The envelope scores the same sample vectors the model does,
			// so its feature space must match the model's exactly —
			// names and order, not just width.
			if e.Envelope.NumFeatures() != len(e.Features) {
				return fmt.Errorf("registry: v%d anomaly envelope covers %d features, model has %d",
					e.Version, e.Envelope.NumFeatures(), len(e.Features))
			}
			for i, name := range e.Envelope.Features {
				if name != e.Features[i] {
					return fmt.Errorf("registry: v%d anomaly envelope feature %d is %q, model has %q",
						e.Version, i, name, e.Features[i])
				}
			}
		}
	}
	if m.Active != 0 {
		if _, ok := m.Entry(m.Active); !ok {
			return fmt.Errorf("registry: active version %d not in manifest", m.Active)
		}
	}
	for shard, v := range m.Pins {
		if shard == "" {
			return fmt.Errorf("registry: pin table has an empty shard id")
		}
		if _, ok := m.Entry(v); !ok {
			return fmt.Errorf("registry: shard %q pinned to version %d not in manifest", shard, v)
		}
	}
	return nil
}
