// Package baseline implements the state-of-the-art single-stage
// hardware-assisted malware detectors 2SMaRT is compared against in Fig 5b
// (Patel et al., DAC'17 [2]): one general binary classifier trained on the
// pooled malware-versus-benign dataset — no per-class specialization and no
// class prediction stage — using a given number of HPC features selected by
// correlation ranking.
package baseline

import (
	"errors"
	"fmt"

	"twosmart/internal/core"
	"twosmart/internal/dataset"
	"twosmart/internal/features"
	"twosmart/internal/ml"
	"twosmart/internal/workload"
)

// Config configures a single-stage detector.
type Config struct {
	// Kind is the classifier algorithm.
	Kind core.Kind
	// NumHPCs is how many events the detector may use (4 or 8 in the
	// paper's comparison). Features are chosen by correlation ranking on
	// the pooled binary training data.
	NumHPCs int
	// Features overrides automatic selection with explicit event names.
	Features []string
	// Seed drives stochastic trainers.
	Seed int64
}

// Detector is a trained single-stage general HMD.
type Detector struct {
	model        ml.Classifier
	featureIdx   []int
	featureNames []string
	inputWidth   int
	kind         core.Kind
}

// PoolMalware converts a 5-class dataset into the pooled binary task:
// label 0 = benign, 1 = any malware class.
func PoolMalware(d *dataset.Dataset) (*dataset.Dataset, error) {
	if d.NumClasses() != workload.NumClasses {
		return nil, fmt.Errorf("baseline: dataset has %d classes, want %d", d.NumClasses(), workload.NumClasses)
	}
	return d.Relabel([]string{"benign", "malware"}, func(old int) int {
		if workload.Class(old).IsMalware() {
			return 1
		}
		return 0
	})
}

// Train fits a single-stage detector on a 5-class dataset.
func Train(d *dataset.Dataset, cfg Config) (*Detector, error) {
	if d.Len() == 0 {
		return nil, errors.New("baseline: empty training set")
	}
	binary, err := PoolMalware(d)
	if err != nil {
		return nil, err
	}

	var names []string
	if cfg.Features != nil {
		names = cfg.Features
	} else {
		n := cfg.NumHPCs
		if n <= 0 {
			n = 4
		}
		if n > binary.NumFeatures() {
			n = binary.NumFeatures()
		}
		ranked, err := features.CorrelationRank(binary)
		if err != nil {
			return nil, err
		}
		names = features.Names(ranked, n)
	}

	idx := make([]int, len(names))
	for i, n := range names {
		j := d.FeatureIndex(n)
		if j < 0 {
			return nil, fmt.Errorf("baseline: feature %q not in dataset", n)
		}
		idx[i] = j
	}
	sub, err := binary.Select(idx)
	if err != nil {
		return nil, err
	}
	model, err := core.NewTrainer(cfg.Kind, cfg.Seed).Train(sub)
	if err != nil {
		return nil, fmt.Errorf("baseline: training %v: %w", cfg.Kind, err)
	}
	return &Detector{
		model:        model,
		featureIdx:   idx,
		featureNames: names,
		inputWidth:   d.NumFeatures(),
		kind:         cfg.Kind,
	}, nil
}

// Detect reports whether the sample is classified as malware.
func (det *Detector) Detect(featureVector []float64) (bool, error) {
	s, err := det.Score(featureVector)
	if err != nil {
		return false, err
	}
	return s > 0.5, nil
}

// Score returns the malware-ness ranking score in [0,1].
func (det *Detector) Score(featureVector []float64) (float64, error) {
	if len(featureVector) != det.inputWidth {
		return 0, fmt.Errorf("baseline: sample has %d features, want %d", len(featureVector), det.inputWidth)
	}
	sub := make([]float64, len(det.featureIdx))
	for i, j := range det.featureIdx {
		sub[i] = featureVector[j]
	}
	scores := det.model.Scores(sub)
	total := scores[0] + scores[1]
	if total <= 0 {
		return 0.5, nil
	}
	return scores[1] / total, nil
}

// Kind returns the detector's algorithm.
func (det *Detector) Kind() core.Kind { return det.kind }

// Features returns the event names the detector uses.
func (det *Detector) Features() []string {
	return append([]string(nil), det.featureNames...)
}

// Model exposes the trained classifier (for the hardware cost model).
func (det *Detector) Model() ml.Classifier { return det.model }

// Evaluate computes the paper's binary metrics for the detector over a
// 5-class test set (pooled to binary).
func (det *Detector) Evaluate(test *dataset.Dataset) (ml.BinaryEval, error) {
	binary, err := PoolMalware(test)
	if err != nil {
		return ml.BinaryEval{}, err
	}
	sub, err := binary.Select(det.featureIdx)
	if err != nil {
		return ml.BinaryEval{}, err
	}
	return ml.EvaluateBinary(det.model, sub)
}
