package baseline

import (
	"sync"
	"testing"

	"twosmart/internal/core"
	"twosmart/internal/corpus"
	"twosmart/internal/dataset"
	"twosmart/internal/workload"
)

var (
	once sync.Once
	data *dataset.Dataset
	derr error
)

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	once.Do(func() {
		data, derr = corpus.Collect(corpus.Config{
			Scale:       0.001,
			MinPerClass: 20,
			Budget:      30000,
			Seed:        11,
			Omniscient:  true,
		})
	})
	if derr != nil {
		t.Fatal(derr)
	}
	return data
}

func TestPoolMalware(t *testing.T) {
	d := testData(t)
	b, err := PoolMalware(d)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumClasses() != 2 || b.Len() != d.Len() {
		t.Fatal("pooling changed size or class count")
	}
	counts := b.ClassCounts()
	full := d.ClassCounts()
	if counts[0] != full[int(workload.Benign)] {
		t.Fatal("benign count changed")
	}
	if counts[1] != d.Len()-full[int(workload.Benign)] {
		t.Fatal("malware pool count wrong")
	}
	binary, _ := PoolMalware(d)
	if _, err := PoolMalware(binary); err == nil {
		t.Fatal("re-pooling a binary dataset accepted")
	}
}

func TestTrainAndEvaluate(t *testing.T) {
	d := testData(t)
	train, test, err := d.Split(0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	det, err := Train(train, Config{Kind: core.J48, NumHPCs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Features()) != 4 {
		t.Fatalf("selected %d features, want 4", len(det.Features()))
	}
	if det.Kind() != core.J48 {
		t.Fatal("kind wrong")
	}
	ev, err := det.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.F1 < 0.6 {
		t.Fatalf("single-stage F1=%v, too weak", ev.F1)
	}
	t.Logf("single-stage J48-4HPC F1=%.3f AUC=%.3f", ev.F1, ev.AUC)
}

func TestMoreHPCsSelectsMore(t *testing.T) {
	d := testData(t)
	det8, err := Train(d, Config{Kind: core.JRip, NumHPCs: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(det8.Features()) != 8 {
		t.Fatalf("selected %d features, want 8", len(det8.Features()))
	}
}

func TestExplicitFeatures(t *testing.T) {
	d := testData(t)
	det, err := Train(d, Config{Kind: core.OneR, Features: core.CommonFeatures, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	feats := det.Features()
	if len(feats) != 4 || feats[0] != "branch-instructions" {
		t.Fatalf("features=%v", feats)
	}
	if _, err := Train(d, Config{Kind: core.OneR, Features: []string{"junk"}}); err == nil {
		t.Fatal("unknown explicit feature accepted")
	}
}

func TestDetectAndScore(t *testing.T) {
	d := testData(t)
	det, err := Train(d, Config{Kind: core.J48, NumHPCs: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range d.Instances[:30] {
		s, err := det.Score(ins.Features)
		if err != nil {
			t.Fatal(err)
		}
		if s < 0 || s > 1 {
			t.Fatalf("score %v", s)
		}
		mal, err := det.Detect(ins.Features)
		if err != nil {
			t.Fatal(err)
		}
		if mal != (s > 0.5) {
			t.Fatal("Detect disagrees with Score")
		}
	}
	if _, err := det.Score([]float64{1}); err == nil {
		t.Fatal("short vector accepted")
	}
	if det.Model() == nil {
		t.Fatal("no model")
	}
}

func TestTrainValidation(t *testing.T) {
	d := testData(t)
	empty := dataset.New(d.FeatureNames, d.ClassNames)
	if _, err := Train(empty, Config{Kind: core.J48}); err == nil {
		t.Fatal("empty training set accepted")
	}
}
