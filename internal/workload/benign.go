package workload

import (
	"math/rand"

	"twosmart/internal/isa"
)

// archetype is a parametric description of one benign application family.
// The suite mirrors the paper's benign set: MiBench kernels plus everyday
// Linux programs (editor, browser, word processor).
type archetype struct {
	name string
	// instruction mix fractions (normalised by the isa package)
	alu, mul, div, load, store, branch, call, ret, syscall float64
	// footprints
	codeSize  uint64
	loadKind  isa.AccessKind
	loadWS    uint64
	loadStr   uint64 // stride for AccessStrided loads (0 means 8 bytes)
	storeKind isa.AccessKind
	storeWS   uint64
	storeStr  uint64
	// branch behaviour
	bias, entropy float64
}

// benignSuite is the MiBench-like benign application set.
var benignSuite = []archetype{
	{name: "qsort", alu: 0.45, load: 0.22, store: 0.08, branch: 0.18, call: 0.03, ret: 0.03, syscall: 0.001,
		codeSize: 4 << 10, loadKind: isa.AccessRandom, loadWS: 12 << 10, storeKind: isa.AccessRandom, storeWS: 12 << 10,
		bias: 0.55, entropy: 0.30},
	{name: "dijkstra", alu: 0.45, load: 0.28, store: 0.06, branch: 0.16, call: 0.02, ret: 0.02, syscall: 0.001,
		codeSize: 6 << 10, loadKind: isa.AccessPointerChase, loadWS: 24 << 10, storeKind: isa.AccessSequential, storeWS: 4 << 10,
		bias: 0.65, entropy: 0.20},
	{name: "fft", alu: 0.30, mul: 0.22, load: 0.25, store: 0.12, branch: 0.09, call: 0.01, ret: 0.01,
		codeSize: 4 << 10, loadKind: isa.AccessStrided, loadWS: 32 << 10, loadStr: 8, storeKind: isa.AccessStrided, storeWS: 32 << 10, storeStr: 8,
		bias: 0.80, entropy: 0.05},
	{name: "sha", alu: 0.62, load: 0.20, store: 0.06, branch: 0.10, call: 0.01, ret: 0.01,
		codeSize: 3 << 10, loadKind: isa.AccessSequential, loadWS: 48 << 10, storeKind: isa.AccessSequential, storeWS: 2 << 10,
		bias: 0.85, entropy: 0.05},
	{name: "crc32", alu: 0.60, load: 0.26, branch: 0.12, call: 0.01, ret: 0.01,
		codeSize: 1 << 10, loadKind: isa.AccessSequential, loadWS: 64 << 10,
		bias: 0.90, entropy: 0.02},
	{name: "stringsearch", alu: 0.50, load: 0.26, branch: 0.20, call: 0.02, ret: 0.02,
		codeSize: 2 << 10, loadKind: isa.AccessSequential, loadWS: 40 << 10,
		bias: 0.60, entropy: 0.25},
	{name: "basicmath", alu: 0.40, mul: 0.20, div: 0.12, load: 0.12, store: 0.04, branch: 0.10, call: 0.01, ret: 0.01,
		codeSize: 3 << 10, loadKind: isa.AccessSequential, loadWS: 4 << 10, storeKind: isa.AccessSequential, storeWS: 2 << 10,
		bias: 0.75, entropy: 0.08},
	{name: "patricia", alu: 0.42, load: 0.30, store: 0.05, branch: 0.17, call: 0.03, ret: 0.03, syscall: 0.001,
		codeSize: 5 << 10, loadKind: isa.AccessPointerChase, loadWS: 48 << 10, storeKind: isa.AccessRandom, storeWS: 8 << 10,
		bias: 0.55, entropy: 0.25},
	{name: "susan", alu: 0.35, mul: 0.18, load: 0.26, store: 0.10, branch: 0.10, call: 0.005, ret: 0.005,
		codeSize: 6 << 10, loadKind: isa.AccessStrided, loadWS: 48 << 10, loadStr: 16, storeKind: isa.AccessStrided, storeWS: 24 << 10, storeStr: 16,
		bias: 0.82, entropy: 0.06},
	{name: "editor", alu: 0.45, load: 0.22, store: 0.10, branch: 0.15, call: 0.03, ret: 0.03, syscall: 0.012,
		codeSize: 24 << 10, loadKind: isa.AccessRandom, loadWS: 32 << 10, storeKind: isa.AccessSequential, storeWS: 16 << 10,
		bias: 0.65, entropy: 0.20},
	{name: "browser", alu: 0.40, load: 0.24, store: 0.10, branch: 0.16, call: 0.04, ret: 0.04, syscall: 0.015,
		codeSize: 72 << 10, loadKind: isa.AccessRandom, loadWS: 40 << 10, storeKind: isa.AccessRandom, storeWS: 16 << 10,
		bias: 0.62, entropy: 0.28},
	{name: "wordproc", alu: 0.46, load: 0.22, store: 0.11, branch: 0.13, call: 0.03, ret: 0.03, syscall: 0.008,
		codeSize: 36 << 10, loadKind: isa.AccessSequential, loadWS: 48 << 10, storeKind: isa.AccessSequential, storeWS: 24 << 10,
		bias: 0.70, entropy: 0.15},
	// Heavier benign applications that overlap the malware signature
	// space (large footprints, cache pressure, store traffic), keeping
	// the detection task realistically hard.
	{name: "database", alu: 0.40, load: 0.27, store: 0.10, branch: 0.16, call: 0.03, ret: 0.03, syscall: 0.010,
		codeSize: 48 << 10, loadKind: isa.AccessRandom, loadWS: 176 << 10, storeKind: isa.AccessRandom, storeWS: 96 << 10,
		bias: 0.58, entropy: 0.35},
	{name: "compress", alu: 0.42, mul: 0.04, load: 0.27, store: 0.14, branch: 0.12, call: 0.005, ret: 0.005,
		codeSize: 8 << 10, loadKind: isa.AccessSequential, loadWS: 256 << 10, storeKind: isa.AccessSequential, storeWS: 160 << 10,
		bias: 0.68, entropy: 0.22},
	{name: "compiler", alu: 0.42, load: 0.26, store: 0.07, branch: 0.16, call: 0.04, ret: 0.04, syscall: 0.006,
		codeSize: 96 << 10, loadKind: isa.AccessPointerChase, loadWS: 144 << 10, storeKind: isa.AccessSequential, storeWS: 16 << 10,
		bias: 0.60, entropy: 0.30},
}

// BenignArchetypes returns the names of the benign suite's members.
func BenignArchetypes() []string {
	out := make([]string, len(benignSuite))
	for i, a := range benignSuite {
		out[i] = a.name
	}
	return out
}

// block instantiates an archetype as an isa.Block with per-instance
// parameter jitter.
func (a *archetype) block(rng *rand.Rand, base uint64, dataBase uint64) isa.Block {
	var mix isa.OpMix
	mix[isa.KindALU] = jitter(rng, a.alu+1e-9, 0.10)
	mix[isa.KindMul] = jitter(rng, a.mul, 0.10)
	mix[isa.KindDiv] = jitter(rng, a.div, 0.10)
	mix[isa.KindLoad] = jitter(rng, a.load, 0.10)
	mix[isa.KindStore] = jitter(rng, a.store, 0.10)
	mix[isa.KindBranch] = jitter(rng, a.branch, 0.10)
	mix[isa.KindCall] = jitter(rng, a.call, 0.10)
	mix[isa.KindReturn] = jitter(rng, a.ret, 0.10)
	mix[isa.KindSyscall] = jitter(rng, a.syscall, 0.15)

	b := isa.Block{
		Name:          a.name,
		Mix:           mix,
		CodeBase:      base,
		CodeSize:      jitterU(rng, a.codeSize, 0.35),
		BranchBias:    clamp01(jitter(rng, a.bias, 0.08)),
		BranchEntropy: clamp01(jitter(rng, a.entropy, 0.20)),
		Len:           150 + rng.Intn(150),
	}
	loadStr, storeStr := a.loadStr, a.storeStr
	if loadStr == 0 {
		loadStr = 8
	}
	if storeStr == 0 {
		storeStr = 8
	}
	if mix[isa.KindLoad] > 0 {
		b.Loads = isa.AccessPattern{Kind: a.loadKind, Base: dataBase, WorkingSet: jitterU(rng, a.loadWS, 0.40), Stride: loadStr}
	}
	if mix[isa.KindStore] > 0 {
		b.Stores = isa.AccessPattern{Kind: a.storeKind, Base: dataBase + 0x0100_0000, WorkingSet: jitterU(rng, a.storeWS, 0.40), Stride: storeStr}
	}
	return b
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// benignProgram builds benign application number id: ids rotate through the
// suite so the corpus covers every archetype, with a second low-weight
// "idle/startup" block for phase variety.
func benignProgram(id int, rng *rand.Rand) *isa.Program {
	a := benignSuite[id%len(benignSuite)]
	main := a.block(rng, codeBase, heapBase)

	// Startup/idle phase: small, syscall-light glue code.
	var idleMix isa.OpMix
	idleMix[isa.KindALU] = 0.7
	idleMix[isa.KindLoad] = 0.15
	idleMix[isa.KindBranch] = 0.12
	idleMix[isa.KindSyscall] = 0.01
	idle := isa.Block{
		Name:          "startup",
		Mix:           idleMix,
		CodeBase:      codeBase + 0x8000,
		CodeSize:      2 << 10,
		Loads:         isa.AccessPattern{Kind: isa.AccessSequential, Base: heapBase + 0x0200_0000, WorkingSet: 4 << 10},
		BranchBias:    0.7,
		BranchEntropy: 0.1,
		Len:           120,
	}

	return &isa.Program{
		Blocks: []isa.Block{main, idle},
		// Mostly the main phase with occasional idle visits.
		Trans: [][]float64{
			{0.92, 0.08},
			{0.60, 0.40},
		},
	}
}
