package workload

import (
	"testing"
	"time"

	"twosmart/internal/hpc"
	"twosmart/internal/isa"
	"twosmart/internal/microarch"
	"twosmart/internal/sandbox"
)

func TestClassNames(t *testing.T) {
	if Benign.String() != "benign" || Trojan.String() != "trojan" {
		t.Fatal("class names wrong")
	}
	if Class(99).String() != "class(99)" {
		t.Fatal("unknown class name wrong")
	}
	if Benign.IsMalware() {
		t.Fatal("benign flagged as malware")
	}
	for _, c := range MalwareClasses() {
		if !c.IsMalware() {
			t.Fatalf("%v not flagged as malware", c)
		}
	}
	if len(AllClasses()) != NumClasses {
		t.Fatal("AllClasses incomplete")
	}
	if c, ok := ClassByName("rootkit"); !ok || c != Rootkit {
		t.Fatal("ClassByName failed")
	}
	if _, ok := ClassByName("nope"); ok {
		t.Fatal("ClassByName resolved junk")
	}
}

func TestGenerateValidPrograms(t *testing.T) {
	for _, c := range AllClasses() {
		for id := 0; id < 20; id++ {
			p := Generate(c, id, Options{})
			if err := p.Validate(); err != nil {
				t.Fatalf("%v id=%d: %v", c, id, err)
			}
			if p.Budget != DefaultBudget {
				t.Fatalf("budget=%d", p.Budget)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Virus, 3, Options{Seed: 5})
	b := Generate(Virus, 3, Options{Seed: 5})
	if a.Seed != b.Seed {
		t.Fatal("seeds differ for identical parameters")
	}
	sa, sb := a.MustStream(), b.MustStream()
	var tmpA, tmpB isa.Instr
	for i := 0; i < 100; i++ {
		sa.Next(&tmpA)
		sb.Next(&tmpB)
		if tmpA != tmpB {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestGenerateVariants(t *testing.T) {
	a := Generate(Backdoor, 0, Options{})
	b := Generate(Backdoor, 1, Options{})
	if a.Seed == b.Seed {
		t.Fatal("different ids share a seed")
	}
	if a.Blocks[1].CodeSize == b.Blocks[1].CodeSize &&
		a.Blocks[1].Loads.WorkingSet == b.Blocks[1].Loads.WorkingSet {
		t.Fatal("variants did not jitter parameters")
	}
}

func TestBenignRotation(t *testing.T) {
	names := BenignArchetypes()
	if len(names) < 10 {
		t.Fatalf("benign suite has %d archetypes, want >= 10", len(names))
	}
	seen := map[string]bool{}
	for id := 0; id < len(names); id++ {
		p := Generate(Benign, id, Options{})
		seen[p.Blocks[0].Name] = true
	}
	if len(seen) != len(names) {
		t.Fatalf("rotation covered %d archetypes, want %d", len(seen), len(names))
	}
}

// profile runs a program on a fresh container and returns all-44-event
// totals using an omniscient sink (test-only shortcut around the 4-counter
// limit: we sum the 11 batches implicitly by counting everything).
func profileAll(t *testing.T, c Class, id int) [hpc.NumEvents]float64 {
	t.Helper()
	p := Generate(c, id, Options{Budget: 40000})
	var totals [hpc.NumEvents]float64
	core := microarch.MustNewCore(microarch.DefaultConfig(),
		hpc.SinkFunc(func(e hpc.Event, n uint64) { totals[e] += float64(n) }))
	core.Bind(p.MustStream())
	for core.Run(4096) > 0 {
	}
	// Normalise to per-kilo-instruction rates.
	inv := 1000 / totals[hpc.EvInstrs]
	for i := range totals {
		totals[i] *= inv
	}
	return totals
}

func classMean(t *testing.T, c Class, n int, e hpc.Event) float64 {
	t.Helper()
	var sum float64
	for id := 0; id < n; id++ {
		sum += profileAll(t, c, id)[e]
	}
	return sum / float64(n)
}

// The four Common features must separate every malware class from benign.
func TestCommonFeatureSeparation(t *testing.T) {
	const n = 12
	common := []hpc.Event{hpc.EvBranchInstr, hpc.EvCacheRef, hpc.EvBranchMiss, hpc.EvNodeStores}
	for _, e := range common {
		benign := classMean(t, Benign, n, e)
		for _, c := range MalwareClasses() {
			mal := classMean(t, c, n, e)
			if mal <= benign {
				t.Errorf("%v: %v rate %.2f not above benign %.2f", c, e, mal, benign)
			}
		}
	}
}

// Per-class custom signatures from the paper's Table II.
func TestPerClassSignatures(t *testing.T) {
	const n = 12
	// Backdoor: branch-loads and iTLB-load-misses prominent.
	if b, v := classMean(t, Backdoor, n, hpc.EvBranchLoads), classMean(t, Virus, n, hpc.EvBranchLoads); b <= v {
		t.Errorf("backdoor branch-loads %.2f <= virus %.2f", b, v)
	}
	// Virus: L1-dcache-loads and major faults dominate.
	if v, b := classMean(t, Virus, n, hpc.EvL1DLoads), classMean(t, Backdoor, n, hpc.EvL1DLoads); v <= b {
		t.Errorf("virus L1d loads %.2f <= backdoor %.2f", v, b)
	}
	if v := classMean(t, Virus, n, hpc.EvMajorFault); v == 0 {
		t.Error("virus produced no major faults (file scanning)")
	}
	if be := classMean(t, Benign, n, hpc.EvMajorFault); be > 0 {
		t.Errorf("benign produced major faults: %.3f", be)
	}
	// Rootkit: LLC load misses from pointer chasing above benign.
	if r, be := classMean(t, Rootkit, n, hpc.EvLLCLoadMiss), classMean(t, Benign, n, hpc.EvLLCLoadMiss); r <= 2*be {
		t.Errorf("rootkit LLC-load-misses %.2f not well above benign %.2f", r, be)
	}
	// Trojan: cache misses well above benign.
	if tr, be := classMean(t, Trojan, n, hpc.EvCacheMiss), classMean(t, Benign, n, hpc.EvCacheMiss); tr <= 2*be {
		t.Errorf("trojan cache-misses %.2f not well above benign %.2f", tr, be)
	}
	// Backdoor beacons: context switches above benign.
	if bd, be := classMean(t, Backdoor, n, hpc.EvCtxSwitch), classMean(t, Benign, n, hpc.EvCtxSwitch); bd <= be {
		t.Errorf("backdoor ctx switches %.3f <= benign %.3f", bd, be)
	}
}

func TestGenerateRunsInSandbox(t *testing.T) {
	m := sandbox.NewManager(microarch.DefaultConfig())
	p := Generate(Trojan, 0, Options{Budget: 30000})
	samples, err := m.RunIsolated(p.MustStream(),
		[]hpc.Event{hpc.EvBranchInstr, hpc.EvCacheRef, hpc.EvBranchMiss, hpc.EvNodeStores},
		sandbox.ProfileOptions{FreqHz: 1e6, Period: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples from sandboxed malware run")
	}
}

func TestGeneratePanicsOnUnknownClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown class")
		}
	}()
	Generate(Class(42), 0, Options{})
}

func TestDescribe(t *testing.T) {
	for _, c := range AllClasses() {
		p, ok := Describe(c)
		if !ok {
			t.Fatalf("no profile for %v", c)
		}
		if p.Class != c || p.Behaviour == "" {
			t.Fatalf("profile for %v incomplete", c)
		}
		if c.IsMalware() {
			if len(p.Signature) < 8 {
				t.Fatalf("%v signature has %d events, want >= 8", c, len(p.Signature))
			}
			// Every signature entry must be a real perf event, and the
			// Common four must lead the list.
			for _, name := range p.Signature {
				if _, ok := hpc.EventByName(name); !ok {
					t.Fatalf("%v signature has unknown event %q", c, name)
				}
			}
			common := []string{"branch-instructions", "cache-references", "branch-misses", "node-stores"}
			for i, want := range common {
				if p.Signature[i] != want {
					t.Fatalf("%v signature[%d]=%q, want common %q", c, i, p.Signature[i], want)
				}
			}
		}
	}
	if _, ok := Describe(Class(42)); ok {
		t.Fatal("profile for unknown class")
	}
}
