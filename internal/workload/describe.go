package workload

// Profile documents the behavioural model of one application class: what
// the generator does and which microarchitectural events it is designed to
// pressure. Exposed so tools can explain why a class is detectable (e.g.
// cmd/hpctrace, documentation generators).
type Profile struct {
	Class     Class
	Behaviour string
	// Signature lists the perf events the class's payload is designed to
	// elevate relative to benign applications (the paper's Table II
	// custom features plus the shared Common events).
	Signature []string
}

var profiles = map[Class]Profile{
	Benign: {
		Class: Benign,
		Behaviour: "MiBench-like compute kernels and everyday programs " +
			"(editors, browsers, databases, compilers): small-to-moderate " +
			"footprints, predictable branches, little store traffic past the LLC",
		Signature: nil,
	},
	Backdoor: {
		Class: Backdoor,
		Behaviour: "command-and-control beaconing: heavy call/return " +
			"indirection through a large sparse injected code region, " +
			"frequent syscalls, network-buffer stores overflowing the LLC",
		Signature: []string{
			"branch-instructions", "cache-references", "branch-misses", "node-stores",
			"branch-loads", "L1-icache-load-misses", "LLC-load-misses", "iTLB-load-misses",
			"context-switches",
		},
	},
	Rootkit: {
		Class: Rootkit,
		Behaviour: "kernel-object hooking: trampoline indirection on " +
			"intercepted calls, pointer chases through structures far larger " +
			"than the LLC, stores patching hooked objects",
		Signature: []string{
			"branch-instructions", "cache-references", "branch-misses", "node-stores",
			"cache-misses", "branch-loads", "LLC-load-misses", "L1-dcache-stores",
		},
	},
	Virus: {
		Class: Virus,
		Behaviour: "file infection: strided signature scans over large " +
			"file-backed mappings (major page faults), heavy infection writes",
		Signature: []string{
			"branch-instructions", "cache-references", "branch-misses", "node-stores",
			"LLC-loads", "L1-dcache-loads", "L1-dcache-stores", "iTLB-load-misses",
			"major-faults",
		},
	},
	Trojan: {
		Class: Trojan,
		Behaviour: "host-program mimicry punctuated by dropper bursts: large " +
			"injected code footprint and random data churn far over the LLC",
		Signature: []string{
			"branch-instructions", "cache-references", "branch-misses", "node-stores",
			"cache-misses", "L1-icache-load-misses", "LLC-load-misses", "iTLB-load-misses",
		},
	},
}

// Describe returns the behavioural profile of a class.
func Describe(c Class) (Profile, bool) {
	p, ok := profiles[c]
	return p, ok
}
