// Package workload generates the synthetic application corpus: a
// MiBench-like benign suite plus behavioural malware generators for the
// paper's four malware classes (Backdoor, Rootkit, Virus, Trojan).
//
// HPC-based malware detection observes microarchitectural side effects, so
// each malware class is modelled by the structural pressure it exerts,
// matching the per-class custom features the paper's Table II identifies:
//
//   - Backdoor: beaconing/command loops — heavy call/return indirection
//     (branch-loads), a large sparse code footprint (L1-icache and iTLB
//     load misses), frequent syscalls, and network-buffer stores.
//   - Trojan: a dropper bolted onto host-program mimicry — mostly
//     benign-looking phases with bursts of large-footprint code and
//     over-LLC data churn (cache-misses, icache misses, iTLB misses).
//   - Virus: file-infection scanning — streaming loads over large
//     file-backed regions (LLC-loads, L1-dcache-loads, major faults) and
//     heavy infection writes (L1-dcache-stores).
//   - Rootkit: hook trampolines and kernel-structure walks — pointer
//     chasing (cache-misses, LLC-load-misses), call/return indirection
//     (branch-loads) and stores into hooked structures (L1-dcache-stores).
//
// All malware classes share elevated branch density, branch-outcome
// entropy, LLC reference traffic and store traffic that misses the LLC —
// the paper's four Common features (branch instructions, cache references,
// branch misses, node stores).
package workload

import (
	"fmt"
	"math/rand"

	"twosmart/internal/isa"
	"twosmart/internal/microarch"
)

// Class labels an application.
type Class int

// The five application classes: benign plus the paper's four malware
// classes.
const (
	Benign Class = iota
	Backdoor
	Rootkit
	Virus
	Trojan

	// NumClasses counts all classes including Benign.
	NumClasses = int(Trojan) + 1
)

var classNames = [...]string{
	Benign:   "benign",
	Backdoor: "backdoor",
	Rootkit:  "rootkit",
	Virus:    "virus",
	Trojan:   "trojan",
}

// String returns the lower-case class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// IsMalware reports whether c is one of the four malware classes.
func (c Class) IsMalware() bool { return c != Benign }

// MalwareClasses returns the four malware classes in canonical order.
func MalwareClasses() []Class { return []Class{Backdoor, Rootkit, Virus, Trojan} }

// AllClasses returns all five classes, Benign first.
func AllClasses() []Class {
	return []Class{Benign, Backdoor, Rootkit, Virus, Trojan}
}

// ClassByName resolves a class from its name.
func ClassByName(name string) (Class, bool) {
	for i, n := range classNames {
		if n == name {
			return Class(i), true
		}
	}
	return 0, false
}

// Options configures generation.
type Options struct {
	// Budget is the dynamic instruction count per program; 0 means
	// DefaultBudget.
	Budget int64
	// Seed perturbs the whole corpus; programs are deterministic in
	// (class, id, Seed).
	Seed int64
}

// DefaultBudget is the default per-program dynamic instruction budget.
const DefaultBudget = 60000

// Generate builds program number id of the given class. Programs of the
// same (class, id, opts) are identical; different ids give behavioural
// variants (parameter jitter plus, for Benign, rotation through the suite's
// archetypes).
func Generate(class Class, id int, opts Options) *isa.Program {
	budget := opts.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	seed := mix64(uint64(opts.Seed)*0x9E3779B97F4A7C15 + uint64(class)*0xBF58476D1CE4E5B9 + uint64(id)*0x94D049BB133111EB)
	rng := rand.New(rand.NewSource(int64(seed)))

	var p *isa.Program
	switch class {
	case Benign:
		p = benignProgram(id, rng)
	case Backdoor:
		p = backdoorProgram(rng)
	case Rootkit:
		p = rootkitProgram(rng)
	case Virus:
		p = virusProgram(rng)
	case Trojan:
		p = trojanProgram(rng)
	default:
		panic(fmt.Sprintf("workload: unknown class %d", class))
	}
	p.Budget = budget
	p.Seed = int64(mix64(seed ^ 0xD6E8FEB86659FD93))
	p.Name = fmt.Sprintf("%s-%04d", class, id)
	return p
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// jitter returns v scaled by a uniform factor in [1-f, 1+f].
func jitter(rng *rand.Rand, v float64, f float64) float64 {
	return v * (1 + f*(2*rng.Float64()-1))
}

// jitterU returns a working-set-style quantity jittered by f.
func jitterU(rng *rand.Rand, v uint64, f float64) uint64 {
	j := jitter(rng, float64(v), f)
	if j < 64 {
		j = 64
	}
	return uint64(j)
}

// Address-space conventions shared by all generators.
const (
	codeBase  = 0x0040_0000 // main program text
	libBase   = 0x0060_0000 // injected/library text (trampolines, payload code)
	heapBase  = 0x1000_0000 // anonymous data
	heap2Base = 0x2000_0000 // secondary anonymous data
	fileBase  = microarch.DefaultFileBackedBase
)
