package microarch

import (
	"testing"

	"twosmart/internal/hpc"
	"twosmart/internal/isa"
)

// countingSink records every event, regardless of counter-register limits.
type countingSink struct {
	counts [hpc.NumEvents]uint64
}

func (s *countingSink) Inc(e hpc.Event, n uint64) { s.counts[e] += n }

func (s *countingSink) get(e hpc.Event) uint64 { return s.counts[e] }

func runProgram(t *testing.T, p *isa.Program) *countingSink {
	t.Helper()
	sink := &countingSink{}
	core := MustNewCore(DefaultConfig(), sink)
	stream, err := p.Stream()
	if err != nil {
		t.Fatal(err)
	}
	core.Bind(stream)
	for core.Run(4096) > 0 {
	}
	return sink
}

func testProgram(seed int64, budget int64, mutate func(*isa.Block)) *isa.Program {
	var mix isa.OpMix
	mix[isa.KindALU] = 0.5
	mix[isa.KindLoad] = 0.25
	mix[isa.KindStore] = 0.1
	mix[isa.KindBranch] = 0.15
	b := isa.Block{
		Name:       "main",
		Mix:        mix,
		CodeBase:   0x1000,
		CodeSize:   2048,
		Loads:      isa.AccessPattern{Kind: isa.AccessSequential, Base: 0x100000, WorkingSet: 4 << 10},
		Stores:     isa.AccessPattern{Kind: isa.AccessSequential, Base: 0x200000, WorkingSet: 4 << 10},
		BranchBias: 0.6,
		Len:        200,
	}
	if mutate != nil {
		mutate(&b)
	}
	return &isa.Program{Name: "t", Blocks: []isa.Block{b}, Budget: budget, Seed: seed}
}

func TestCoreCountsInstructions(t *testing.T) {
	sink := runProgram(t, testProgram(1, 10000, nil))
	if got := sink.get(hpc.EvInstrs); got != 10000 {
		t.Fatalf("instructions=%d, want 10000", got)
	}
	if sink.get(hpc.EvCycles) < 10000 {
		t.Fatalf("cycles=%d, want >= instructions", sink.get(hpc.EvCycles))
	}
	if sink.get(hpc.EvCycles) != sink.get(hpc.EvRefCycles) {
		t.Fatal("ref-cycles must equal cycles in the fixed-frequency model")
	}
}

func TestCoreRunBoundsAndEnd(t *testing.T) {
	core := MustNewCore(DefaultConfig(), nil)
	if n := core.Run(100); n != 0 {
		t.Fatalf("unbound core ran %d instructions", n)
	}
	stream := testProgram(1, 100, nil).MustStream()
	core.Bind(stream)
	if n := core.Run(60); n != 60 {
		t.Fatalf("Run(60)=%d", n)
	}
	if n := core.Run(60); n != 40 {
		t.Fatalf("second Run(60)=%d, want 40", n)
	}
	if n := core.Run(60); n != 0 {
		t.Fatalf("Run after end=%d, want 0", n)
	}
}

func TestCoreMemoryEvents(t *testing.T) {
	sink := runProgram(t, testProgram(2, 50000, nil))
	loads := sink.get(hpc.EvL1DLoads)
	stores := sink.get(hpc.EvL1DStores)
	if loads == 0 || stores == 0 {
		t.Fatalf("no memory events: loads=%d stores=%d", loads, stores)
	}
	// Mix is 25% loads, 10% stores.
	if ratio := float64(loads) / float64(stores); ratio < 1.5 || ratio > 4 {
		t.Fatalf("load/store ratio=%.2f, want ~2.5", ratio)
	}
	if sink.get(hpc.EvDTLBLoads) != loads {
		t.Fatal("every load must access the dTLB")
	}
	if sink.get(hpc.EvDTLBStores) != stores {
		t.Fatal("every store must access the dTLB")
	}
	// Misses cannot exceed accesses.
	if sink.get(hpc.EvL1DLoadMiss) > loads {
		t.Fatal("more load misses than loads")
	}
}

func TestCoreWorkingSetDrivesMissRate(t *testing.T) {
	small := runProgram(t, testProgram(3, 100000, func(b *isa.Block) {
		b.Loads.WorkingSet = 4 << 10 // fits L1d
		b.Loads.Kind = isa.AccessRandom
	}))
	large := runProgram(t, testProgram(3, 100000, func(b *isa.Block) {
		b.Loads.WorkingSet = 1 << 20 // 1 MB >> LLC
		b.Loads.Kind = isa.AccessRandom
	}))
	smallRate := float64(small.get(hpc.EvL1DLoadMiss)) / float64(small.get(hpc.EvL1DLoads))
	largeRate := float64(large.get(hpc.EvL1DLoadMiss)) / float64(large.get(hpc.EvL1DLoads))
	if largeRate < 4*smallRate {
		t.Fatalf("miss rates small=%.3f large=%.3f: large working set should miss far more", smallRate, largeRate)
	}
	if large.get(hpc.EvLLCLoadMiss) == 0 || large.get(hpc.EvNodeLoads) == 0 {
		t.Fatal("over-LLC working set produced no LLC misses / node loads")
	}
	if large.get(hpc.EvCacheMiss) == 0 {
		t.Fatal("cache-misses not counted")
	}
}

func TestCoreBranchPredictability(t *testing.T) {
	patterned := runProgram(t, testProgram(4, 100000, func(b *isa.Block) {
		b.BranchEntropy = 0
	}))
	random := runProgram(t, testProgram(4, 100000, func(b *isa.Block) {
		b.BranchEntropy = 1
		b.BranchBias = 0.5
	}))
	pRate := float64(patterned.get(hpc.EvBranchMiss)) / float64(patterned.get(hpc.EvBranchInstr))
	rRate := float64(random.get(hpc.EvBranchMiss)) / float64(random.get(hpc.EvBranchInstr))
	if rRate < 2*pRate {
		t.Fatalf("mispredict rates patterned=%.3f random=%.3f: random should be much worse", pRate, rRate)
	}
	if patterned.get(hpc.EvBranchLoads) != patterned.get(hpc.EvBranchInstr) {
		t.Fatal("every branch must perform a branch-unit load")
	}
}

func TestCorePageFaults(t *testing.T) {
	sink := runProgram(t, testProgram(5, 50000, func(b *isa.Block) {
		b.Loads.WorkingSet = 64 << 10 // 16 pages
	}))
	pages := sink.get(hpc.EvPageFaults)
	// 16 load pages + up to 1 store page... store WS is 4KB = 1 page.
	if pages < 16 || pages > 20 {
		t.Fatalf("page faults=%d, want ~17 (one per touched page)", pages)
	}
	if sink.get(hpc.EvMinorFault) != pages {
		t.Fatal("anonymous pages must fault as minor faults")
	}
	if sink.get(hpc.EvMajorFault) != 0 {
		t.Fatal("no file-backed pages were touched")
	}
}

func TestCoreMajorFaultsForFileBackedRegions(t *testing.T) {
	sink := runProgram(t, testProgram(6, 50000, func(b *isa.Block) {
		b.Loads.Base = DefaultFileBackedBase // file-backed mapping
		b.Loads.WorkingSet = 64 << 10
	}))
	if sink.get(hpc.EvMajorFault) == 0 {
		t.Fatal("file-backed first touches must raise major faults")
	}
	if sink.get(hpc.EvMajorFault)+sink.get(hpc.EvMinorFault) != sink.get(hpc.EvPageFaults) {
		t.Fatal("minor+major faults must equal page faults")
	}
}

func TestCoreSyscallsDriveContextSwitches(t *testing.T) {
	sink := runProgram(t, testProgram(7, 50000, func(b *isa.Block) {
		b.Mix[isa.KindSyscall] = 0.05
	}))
	if sink.get(hpc.EvCtxSwitch) == 0 {
		t.Fatal("syscalls produced no context switches")
	}
	quiet := runProgram(t, testProgram(7, 50000, nil))
	if quiet.get(hpc.EvCtxSwitch) != 0 {
		t.Fatal("program without syscalls produced context switches")
	}
}

func TestCoreSequentialBenefitsFromPrefetch(t *testing.T) {
	seqMiss := func(ws uint64) (float64, uint64) {
		sink := runProgram(t, testProgram(8, 200000, func(b *isa.Block) {
			b.Loads.Kind = isa.AccessSequential
			b.Loads.WorkingSet = ws
		}))
		return float64(sink.get(hpc.EvLLCLoadMiss)) / float64(sink.get(hpc.EvL1DLoads)),
			sink.get(hpc.EvL1DPrefetch)
	}
	_, prefetches := seqMiss(1 << 20)
	if prefetches == 0 {
		t.Fatal("sequential streaming triggered no prefetches")
	}
	randSink := runProgram(t, testProgram(8, 200000, func(b *isa.Block) {
		b.Loads.Kind = isa.AccessPointerChase
		b.Loads.WorkingSet = 1 << 20
	}))
	if randSink.get(hpc.EvL1DPrefetch) > prefetches/4 {
		t.Fatalf("pointer chase triggered %d prefetches vs %d sequential: stream detector too eager",
			randSink.get(hpc.EvL1DPrefetch), prefetches)
	}
}

func TestCoreResetClearsState(t *testing.T) {
	sink := &countingSink{}
	core := MustNewCore(DefaultConfig(), sink)
	core.Bind(testProgram(9, 20000, nil).MustStream())
	for core.Run(4096) > 0 {
	}
	if core.Occupancy() == 0 {
		t.Fatal("expected residual cache state after a run")
	}
	if core.CycleCount() == 0 {
		t.Fatal("no cycles elapsed")
	}
	core.Reset()
	if core.Occupancy() != 0 {
		t.Fatal("Reset left residual cache state")
	}
	if core.CycleCount() != 0 {
		t.Fatal("Reset did not clear the cycle count")
	}
}

func TestCoreWarmStateChangesCounts(t *testing.T) {
	// Running the same program twice without Reset must produce fewer
	// misses the second time (contamination), and identical counts with
	// Reset between runs (clean containers).
	prog := testProgram(10, 30000, nil)

	run := func(core *Core) uint64 {
		sink := &countingSink{}
		core.SetSink(sink)
		core.Bind(prog.MustStream())
		for core.Run(4096) > 0 {
		}
		return sink.get(hpc.EvL1DLoadMiss) + sink.get(hpc.EvL1ILoadMiss)
	}

	core := MustNewCore(DefaultConfig(), nil)
	first := run(core)
	warm := run(core) // no reset: warm caches
	core.Reset()
	clean := run(core)

	if warm >= first {
		t.Fatalf("warm rerun misses=%d, want < cold first run %d", warm, first)
	}
	if clean != first {
		t.Fatalf("clean rerun misses=%d, want exactly first run's %d", clean, first)
	}
}

func TestCoreInvalidConfigRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1DSize = 100 // not a power of two
	if _, err := NewCore(cfg, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestCoreICachePressureFromLargeCode(t *testing.T) {
	smallCode := runProgram(t, testProgram(11, 100000, func(b *isa.Block) {
		b.CodeSize = 2048
	}))
	largeCode := runProgram(t, testProgram(11, 100000, func(b *isa.Block) {
		b.CodeSize = 256 << 10 // 256 KB code >> 8 KB L1i
	}))
	if largeCode.get(hpc.EvL1ILoadMiss) <= smallCode.get(hpc.EvL1ILoadMiss)*2 {
		t.Fatalf("icache misses small=%d large=%d: large code should thrash L1i",
			smallCode.get(hpc.EvL1ILoadMiss), largeCode.get(hpc.EvL1ILoadMiss))
	}
	if largeCode.get(hpc.EvITLBLoadMiss) == 0 {
		t.Fatal("256 KB code footprint should miss the 128 KB-coverage iTLB")
	}
}
