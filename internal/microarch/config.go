package microarch

// Config describes the modelled processor. The defaults are a scaled-down
// Intel Xeon X5550: structure sizes are reduced so that the short
// instruction budgets used in simulation exercise the same capacity and
// conflict behaviour that multi-second runs exercise on real silicon (a
// working set that overflows the real 8 MB LLC in a multi-second run
// overflows the scaled 128 KB LLC within a few tens of thousands of
// instructions). Relative sizing between levels is preserved.
type Config struct {
	// L1 instruction cache.
	L1ISize, L1IWays, L1ILine int
	// L1 data cache.
	L1DSize, L1DWays, L1DLine int
	// Unified last-level cache.
	LLCSize, LLCWays, LLCLine int
	// TLBs; entries at PageSize granularity.
	ITLBEntries, ITLBWays int
	DTLBEntries, DTLBWays int
	PageSize              int
	// CachePolicy is the replacement policy for all caches and TLBs
	// (PolicyLRU by default; PolicyRandom for the replacement ablation).
	CachePolicy Policy
	// Branch prediction.
	HistoryBits uint
	BTBEntries  int
	// Penalties, in cycles.
	L1MissPenalty  uint64 // L1 miss that hits LLC
	LLCMissPenalty uint64 // LLC miss serviced by the local node
	RemotePenalty  uint64 // additional latency for remote-node access
	TLBMissPenalty uint64
	MispredPenalty uint64
	SyscallPenalty uint64
	MinorFaultCost uint64
	MajorFaultCost uint64
	DivLatency     uint64
	MulLatency     uint64
	// RemoteNodeFraction in [0,1] is the fraction of memory (by address
	// hash) homed on a remote NUMA node.
	RemoteNodeFraction float64
	// SyscallsPerSwitch is the number of syscalls per observed context
	// switch; SwitchesPerMigration likewise for CPU migrations.
	SyscallsPerSwitch    uint64
	SwitchesPerMigration uint64
	// FileBackedBase: data addresses at or above this are file-backed
	// mappings; their first touch raises a major fault instead of a
	// minor fault. Workload generators place file-scan regions here.
	FileBackedBase uint64
}

// DefaultFileBackedBase is the conventional base address of file-backed
// mappings used by the workload generators.
const DefaultFileBackedBase = 1 << 32

// DefaultConfig returns the scaled X5550 model used throughout the
// reproduction.
func DefaultConfig() Config {
	return Config{
		L1ISize: 8 << 10, L1IWays: 2, L1ILine: 64,
		L1DSize: 8 << 10, L1DWays: 4, L1DLine: 64,
		LLCSize: 128 << 10, LLCWays: 8, LLCLine: 64,
		ITLBEntries: 32, ITLBWays: 4,
		DTLBEntries: 32, DTLBWays: 4,
		PageSize:             4096,
		HistoryBits:          10,
		BTBEntries:           256,
		L1MissPenalty:        10,
		LLCMissPenalty:       100,
		RemotePenalty:        60,
		TLBMissPenalty:       20,
		MispredPenalty:       15,
		SyscallPenalty:       150,
		MinorFaultCost:       400,
		MajorFaultCost:       4000,
		DivLatency:           20,
		MulLatency:           3,
		RemoteNodeFraction:   0.25,
		SyscallsPerSwitch:    4,
		SwitchesPerMigration: 64,
		FileBackedBase:       DefaultFileBackedBase,
	}
}
