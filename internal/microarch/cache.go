// Package microarch implements the behavioural microarchitecture model that
// produces hardware-performance-counter events for the 2SMaRT reproduction:
// a two-level cache hierarchy (split L1, unified LLC), instruction and data
// TLBs, a gshare branch predictor with a BTB, a next-line prefetcher, a
// NUMA-node memory interface and the retired-instruction core model that
// drives them all and emits perf-style events into an hpc.Sink.
//
// The model is behavioural, not cycle-accurate: HPC-based malware detection
// consumes event *counts*, so each structure is modelled at the fidelity
// needed to make counts respond to workload behaviour (working-set size,
// access pattern, branch predictability, code footprint), while cycle costs
// are charged with fixed per-event penalties.
package microarch

import "fmt"

// Policy selects the cache replacement policy.
type Policy uint8

const (
	// PolicyLRU is true least-recently-used replacement (default).
	PolicyLRU Policy = iota
	// PolicyRandom picks a pseudo-random victim way; cheaper in hardware
	// but weaker on looping working sets. Exposed for the replacement
	// ablation.
	PolicyRandom
)

// Cache is a set-associative cache (or TLB, with line size = page size)
// with configurable replacement.
type Cache struct {
	sets      int
	ways      int
	lineShift uint
	setMask   uint64
	policy    Policy

	tags  []uint64 // sets*ways entries
	valid []bool
	stamp []uint64 // LRU timestamps
	clock uint64
	rng   uint64 // xorshift state for PolicyRandom
}

// NewCache builds a cache of the given total size in bytes. Size, ways and
// lineSize must be powers of two with size >= ways*lineSize.
func NewCache(sizeBytes, ways, lineSize int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("microarch: invalid cache geometry size=%d ways=%d line=%d", sizeBytes, ways, lineSize)
	}
	if !isPow2(sizeBytes) || !isPow2(ways) || !isPow2(lineSize) {
		return nil, fmt.Errorf("microarch: cache geometry must be powers of two (size=%d ways=%d line=%d)", sizeBytes, ways, lineSize)
	}
	lines := sizeBytes / lineSize
	if lines < ways {
		return nil, fmt.Errorf("microarch: cache of %d bytes cannot hold %d ways of %d-byte lines", sizeBytes, ways, lineSize)
	}
	sets := lines / ways
	c := &Cache{
		sets:      sets,
		ways:      ways,
		lineShift: log2(uint64(lineSize)),
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, lines),
		valid:     make([]bool, lines),
		stamp:     make([]uint64, lines),
		rng:       0x2545F4914F6CDD1D,
	}
	return c, nil
}

// SetPolicy selects the replacement policy (PolicyLRU by default).
func (c *Cache) SetPolicy(p Policy) { c.policy = p }

// MustNewCache is NewCache but panics on invalid geometry; for use with
// static configurations validated by tests.
func MustNewCache(sizeBytes, ways, lineSize int) *Cache {
	c, err := NewCache(sizeBytes, ways, lineSize)
	if err != nil {
		panic(err)
	}
	return c
}

func isPow2(x int) bool { return x > 0 && x&(x-1) == 0 }

func log2(x uint64) uint {
	var n uint
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineSize returns the line (or page) size in bytes.
func (c *Cache) LineSize() int { return 1 << c.lineShift }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr >> c.lineShift
	return int(line & c.setMask), line >> log2(uint64(c.sets))
}

// victim selects the replacement way within the set starting at base:
// an invalid way if one exists, otherwise per the configured policy.
func (c *Cache) victim(base int) int {
	for i := base; i < base+c.ways; i++ {
		if !c.valid[i] {
			return i
		}
	}
	if c.policy == PolicyRandom {
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		return base + int(c.rng%uint64(c.ways))
	}
	victim := base
	for i := base + 1; i < base+c.ways; i++ {
		if c.stamp[i] < c.stamp[victim] {
			victim = i
		}
	}
	return victim
}

// Access looks up addr, allocating the line on a miss (write-allocate /
// fetch-on-miss for all access types). It reports whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	c.clock++
	for i := base; i < base+c.ways; i++ {
		if c.valid[i] && c.tags[i] == tag {
			c.stamp[i] = c.clock
			return true
		}
	}
	victim := c.victim(base)
	c.tags[victim] = tag
	c.valid[victim] = true
	c.stamp[victim] = c.clock
	return false
}

// Probe reports whether addr is present without changing any state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.valid[i] && c.tags[i] == tag {
			return true
		}
	}
	return false
}

// Insert places addr's line into the cache (used by the prefetcher) without
// counting as a demand access.
func (c *Cache) Insert(addr uint64) {
	set, tag := c.index(addr)
	base := set * c.ways
	c.clock++
	for i := base; i < base+c.ways; i++ {
		if c.valid[i] && c.tags[i] == tag {
			return // already present
		}
	}
	victim := c.victim(base)
	c.tags[victim] = tag
	c.valid[victim] = true
	c.stamp[victim] = c.clock
}

// Reset invalidates every line, returning the cache to a cold state
// (including the replacement randomness, so resets restore determinism).
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.stamp[i] = 0
	}
	c.clock = 0
	c.rng = 0x2545F4914F6CDD1D
}

// Occupancy returns the number of valid lines (useful for contamination
// tests: a destroyed container must observe zero occupancy).
func (c *Cache) Occupancy() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}
