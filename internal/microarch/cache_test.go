package microarch

import (
	"math/rand"
	"testing"
)

func TestNewCacheGeometryValidation(t *testing.T) {
	cases := []struct{ size, ways, line int }{
		{0, 2, 64},
		{1024, 0, 64},
		{1024, 2, 0},
		{1000, 2, 64}, // not power of two
		{1024, 3, 64}, // ways not power of two
		{128, 4, 64},  // too small for ways
	}
	for _, c := range cases {
		if _, err := NewCache(c.size, c.ways, c.line); err == nil {
			t.Errorf("NewCache(%d,%d,%d) accepted invalid geometry", c.size, c.ways, c.line)
		}
	}
	c, err := NewCache(8<<10, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sets() != 32 || c.Ways() != 4 || c.LineSize() != 64 {
		t.Fatalf("geometry: sets=%d ways=%d line=%d", c.Sets(), c.Ways(), c.LineSize())
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := MustNewCache(1024, 2, 64)
	if c.Access(0x1000) {
		t.Fatal("cold cache hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1008) {
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1040) {
		t.Fatal("next line hit while cold")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 64B lines, 2 sets => set stride 128.
	c := MustNewCache(256, 2, 64)
	// Three lines mapping to set 0: line addresses 0, 128, 256.
	c.Access(0)
	c.Access(128)
	c.Access(0) // make 128 the LRU
	c.Access(256)
	if c.Probe(128) {
		t.Fatal("LRU line not evicted")
	}
	if !c.Probe(0) {
		t.Fatal("MRU line evicted")
	}
}

func TestCacheProbeDoesNotAllocate(t *testing.T) {
	c := MustNewCache(1024, 2, 64)
	if c.Probe(0x2000) {
		t.Fatal("probe hit in cold cache")
	}
	if c.Access(0x2000) {
		t.Fatal("probe must not allocate")
	}
	if !c.Probe(0x2000) {
		t.Fatal("probe missed after access")
	}
}

func TestCacheInsert(t *testing.T) {
	c := MustNewCache(1024, 2, 64)
	c.Insert(0x3000)
	if !c.Access(0x3000) {
		t.Fatal("inserted line not present")
	}
	c.Insert(0x3000) // idempotent
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy=%d, want 1", c.Occupancy())
	}
}

func TestCacheResetAndOccupancy(t *testing.T) {
	c := MustNewCache(1024, 2, 64)
	for i := 0; i < 8; i++ {
		c.Access(uint64(i * 64))
	}
	if c.Occupancy() != 8 {
		t.Fatalf("occupancy=%d, want 8", c.Occupancy())
	}
	c.Reset()
	if c.Occupancy() != 0 {
		t.Fatalf("occupancy after reset=%d, want 0", c.Occupancy())
	}
	if c.Access(0) {
		t.Fatal("hit after reset")
	}
}

// Property: working sets that fit see near-perfect reuse; working sets far
// larger than the cache see high miss rates under random access.
func TestCacheCapacityBehaviour(t *testing.T) {
	c := MustNewCache(8<<10, 4, 64)
	// Fits: 4 KB working set, sequential, two passes.
	misses := 0
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 4096; a += 64 {
			if !c.Access(a) && pass == 1 {
				misses++
			}
		}
	}
	if misses != 0 {
		t.Fatalf("fitting working set had %d second-pass misses", misses)
	}

	c.Reset()
	rng := rand.New(rand.NewSource(1))
	misses = 0
	const accesses = 20000
	for i := 0; i < accesses; i++ {
		a := uint64(rng.Intn(1 << 20)) // 1 MB >> 8 KB cache
		if !c.Access(a) {
			misses++
		}
	}
	if rate := float64(misses) / accesses; rate < 0.9 {
		t.Fatalf("random over-capacity miss rate = %.2f, want > 0.9", rate)
	}
}

func TestMustNewCachePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewCache did not panic")
		}
	}()
	MustNewCache(0, 0, 0)
}

func TestBranchPredictorLearnsBias(t *testing.T) {
	bp := NewBranchPredictor(10, 256)
	pc := uint64(0x400)
	// Train always-taken.
	for i := 0; i < 64; i++ {
		bp.UpdateDirection(pc, true)
	}
	if !bp.PredictDirection(pc) {
		t.Fatal("predictor failed to learn always-taken")
	}
}

func TestBranchPredictorLearnsPattern(t *testing.T) {
	bp := NewBranchPredictor(10, 256)
	pc := uint64(0x800)
	pattern := []bool{true, true, false, true}
	// Warm up.
	for i := 0; i < 400; i++ {
		bp.UpdateDirection(pc, pattern[i%len(pattern)])
	}
	// After warmup, gshare should predict the periodic pattern well.
	correct := 0
	for i := 400; i < 800; i++ {
		want := pattern[i%len(pattern)]
		if bp.PredictDirection(pc) == want {
			correct++
		}
		bp.UpdateDirection(pc, want)
	}
	if acc := float64(correct) / 400; acc < 0.9 {
		t.Fatalf("pattern accuracy = %.2f, want > 0.9", acc)
	}
}

func TestBTB(t *testing.T) {
	bp := NewBranchPredictor(10, 256)
	if _, hit := bp.LookupBTB(0x1000); hit {
		t.Fatal("cold BTB hit")
	}
	bp.UpdateBTB(0x1000, 0x2000)
	target, hit := bp.LookupBTB(0x1000)
	if !hit || target != 0x2000 {
		t.Fatalf("BTB lookup = (%#x,%v), want (0x2000,true)", target, hit)
	}
	// Conflicting PC (same index, different tag) evicts.
	conflict := uint64(0x1000 + 256*4)
	bp.UpdateBTB(conflict, 0x3000)
	if _, hit := bp.LookupBTB(0x1000); hit {
		t.Fatal("direct-mapped BTB kept both conflicting entries")
	}
}

func TestBranchPredictorReset(t *testing.T) {
	bp := NewBranchPredictor(8, 64)
	for i := 0; i < 32; i++ {
		bp.UpdateDirection(0x10, true)
	}
	bp.UpdateBTB(0x10, 0x20)
	bp.Reset()
	if bp.PredictDirection(0x10) {
		t.Fatal("predictor state survived reset")
	}
	if _, hit := bp.LookupBTB(0x10); hit {
		t.Fatal("BTB state survived reset")
	}
}

func TestBranchPredictorConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewBranchPredictor(0, 64) },
		func() { NewBranchPredictor(25, 64) },
		func() { NewBranchPredictor(10, 100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor accepted invalid parameters")
				}
			}()
			f()
		}()
	}
}

func TestRandomPolicyDeterministic(t *testing.T) {
	run := func() []bool {
		c := MustNewCache(512, 2, 64)
		c.SetPolicy(PolicyRandom)
		out := make([]bool, 0, 200)
		for i := 0; i < 200; i++ {
			out = append(out, c.Access(uint64(i%24)*64))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random policy not deterministic across fresh caches")
		}
	}
	c := MustNewCache(512, 2, 64)
	c.SetPolicy(PolicyRandom)
	first := make([]bool, 0, 50)
	for i := 0; i < 50; i++ {
		first = append(first, c.Access(uint64(i%24)*64))
	}
	c.Reset()
	for i := 0; i < 50; i++ {
		if c.Access(uint64(i%24)*64) != first[i] {
			t.Fatal("Reset did not restore replacement determinism")
		}
	}
}

// The classic replacement-policy result: on a cyclic working set slightly
// over capacity, LRU thrashes pathologically (every access evicts the line
// needed soonest) while random replacement retains a fraction of the loop.
func TestRandomBeatsLRUOnOverCapacityLoops(t *testing.T) {
	missRate := func(p Policy) float64 {
		c := MustNewCache(4096, 4, 64) // 64 lines
		c.SetPolicy(p)
		misses, total := 0, 0
		for pass := 0; pass < 50; pass++ {
			for line := 0; line < 80; line++ { // 125% of capacity
				total++
				if !c.Access(uint64(line) * 64) {
					misses++
				}
			}
		}
		return float64(misses) / float64(total)
	}
	lru, rnd := missRate(PolicyLRU), missRate(PolicyRandom)
	if lru < 0.95 {
		t.Fatalf("LRU miss rate %.3f on an over-capacity cycle, want thrashing (~1.0)", lru)
	}
	if rnd >= lru {
		t.Fatalf("random (%.3f) not better than LRU (%.3f) on over-capacity cycle", rnd, lru)
	}
	// And LRU must win where it should: a skewed pattern with a hot
	// subset reused between cold streaming accesses.
	skewRate := func(p Policy) float64 {
		c := MustNewCache(4096, 4, 64)
		c.SetPolicy(p)
		misses, total := 0, 0
		cold := uint64(1 << 20)
		for i := 0; i < 4000; i++ {
			// Three hot lines touched constantly...
			for h := uint64(0); h < 3; h++ {
				total++
				if !c.Access(h * 64) {
					misses++
				}
			}
			// ...plus a cold streaming line mapping to the same set.
			total++
			if !c.Access(cold) {
				misses++
			}
			cold += 4096 // same set each time
		}
		return float64(misses) / float64(total)
	}
	lruSkew, rndSkew := skewRate(PolicyLRU), skewRate(PolicyRandom)
	if lruSkew >= rndSkew {
		t.Fatalf("LRU (%.3f) not better than random (%.3f) on hot/cold pattern", lruSkew, rndSkew)
	}
}
