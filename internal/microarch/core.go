package microarch

import (
	"twosmart/internal/hpc"
	"twosmart/internal/isa"
)

// Core is the retired-instruction processor model. Each instruction drives
// the structural models (caches, TLBs, branch predictor, prefetcher, NUMA
// node interface) and emits the corresponding perf-style events into the
// bound hpc.Sink.
type Core struct {
	cfg  Config
	sink hpc.Sink

	l1i, l1d, llc *Cache
	itlb, dtlb    *Cache
	bp            *BranchPredictor

	stream isa.Stream
	cycles uint64

	lastFetchLine uint64
	lastFetchPage uint64
	haveFetch     bool

	// next-line prefetcher state
	lastMissLine uint64

	touchedPages map[uint64]struct{}

	syscalls uint64
	switches uint64

	ins isa.Instr // scratch, avoids per-step allocation
}

// NewCore builds a core with the given configuration, emitting events into
// sink. A nil sink discards all events.
func NewCore(cfg Config, sink hpc.Sink) (*Core, error) {
	if sink == nil {
		sink = hpc.NullSink{}
	}
	l1i, err := NewCache(cfg.L1ISize, cfg.L1IWays, cfg.L1ILine)
	if err != nil {
		return nil, err
	}
	l1d, err := NewCache(cfg.L1DSize, cfg.L1DWays, cfg.L1DLine)
	if err != nil {
		return nil, err
	}
	llc, err := NewCache(cfg.LLCSize, cfg.LLCWays, cfg.LLCLine)
	if err != nil {
		return nil, err
	}
	itlb, err := NewCache(cfg.ITLBEntries*cfg.PageSize, cfg.ITLBWays, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	dtlb, err := NewCache(cfg.DTLBEntries*cfg.PageSize, cfg.DTLBWays, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	for _, c := range []*Cache{l1i, l1d, llc, itlb, dtlb} {
		c.SetPolicy(cfg.CachePolicy)
	}
	return &Core{
		cfg:          cfg,
		sink:         sink,
		l1i:          l1i,
		l1d:          l1d,
		llc:          llc,
		itlb:         itlb,
		dtlb:         dtlb,
		bp:           NewBranchPredictor(cfg.HistoryBits, cfg.BTBEntries),
		touchedPages: make(map[uint64]struct{}),
	}, nil
}

// MustNewCore is NewCore but panics on configuration errors.
func MustNewCore(cfg Config, sink hpc.Sink) *Core {
	c, err := NewCore(cfg, sink)
	if err != nil {
		panic(err)
	}
	return c
}

// SetSink redirects event emission, e.g. when the counter file is
// reprogrammed between multiplexing batches.
func (c *Core) SetSink(sink hpc.Sink) {
	if sink == nil {
		sink = hpc.NullSink{}
	}
	c.sink = sink
}

// Bind attaches a workload instruction stream to the core.
func (c *Core) Bind(s isa.Stream) { c.stream = s }

// CycleCount implements hpc.Processor.
func (c *Core) CycleCount() uint64 { return c.cycles }

// Reset returns every structure to its power-on state: cold caches, cold
// TLBs, cleared predictor and no touched pages. This models destroying and
// recreating the execution container between profiling runs; skipping it
// leaves residual state that contaminates the next run's counters.
func (c *Core) Reset() {
	c.l1i.Reset()
	c.l1d.Reset()
	c.llc.Reset()
	c.itlb.Reset()
	c.dtlb.Reset()
	c.bp.Reset()
	c.cycles = 0
	c.haveFetch = false
	c.lastMissLine = 0
	c.touchedPages = make(map[uint64]struct{})
	c.syscalls = 0
	c.switches = 0
}

// Occupancy returns the total number of valid lines across caches and TLBs,
// exposing residual state for the sandbox contamination model.
func (c *Core) Occupancy() int {
	return c.l1i.Occupancy() + c.l1d.Occupancy() + c.llc.Occupancy() +
		c.itlb.Occupancy() + c.dtlb.Occupancy()
}

// Run implements hpc.Processor: it executes up to maxInstrs instructions of
// the bound stream, returning the number executed (0 when the program has
// finished or no stream is bound).
func (c *Core) Run(maxInstrs int64) int64 {
	if c.stream == nil {
		return 0
	}
	var n int64
	for n < maxInstrs {
		if !c.stream.Next(&c.ins) {
			break
		}
		c.step(&c.ins)
		n++
	}
	return n
}

func (c *Core) step(ins *isa.Instr) {
	cfg := &c.cfg
	sink := c.sink
	sink.Inc(hpc.EvInstrs, 1)
	cycles := uint64(1)
	var stallFront, stallBack uint64

	// --- Front end: instruction fetch through L1i and iTLB. A fetch
	// access occurs when execution enters a new cache line or page.
	line := ins.PC >> 6
	page := ins.PC / uint64(cfg.PageSize)
	if !c.haveFetch || line != c.lastFetchLine {
		sink.Inc(hpc.EvL1ILoads, 1)
		if !c.l1i.Access(ins.PC) {
			sink.Inc(hpc.EvL1ILoadMiss, 1)
			sink.Inc(hpc.EvCacheRef, 1)
			sink.Inc(hpc.EvLLCLoads, 1)
			if !c.llc.Access(ins.PC) {
				sink.Inc(hpc.EvLLCLoadMiss, 1)
				sink.Inc(hpc.EvCacheMiss, 1)
				c.nodeLoad(ins.PC, &stallBack)
				stallFront += cfg.LLCMissPenalty
			} else {
				stallFront += cfg.L1MissPenalty
			}
		}
	}
	if !c.haveFetch || page != c.lastFetchPage {
		sink.Inc(hpc.EvITLBLoads, 1)
		if !c.itlb.Access(ins.PC) {
			sink.Inc(hpc.EvITLBLoadMiss, 1)
			stallFront += cfg.TLBMissPenalty
		}
	}
	c.lastFetchLine, c.lastFetchPage, c.haveFetch = line, page, true

	switch ins.Kind {
	case isa.KindLoad:
		c.dataAccess(ins.Addr, false, &stallBack)
	case isa.KindStore:
		c.dataAccess(ins.Addr, true, &stallBack)
	case isa.KindBranch:
		sink.Inc(hpc.EvBranchInstr, 1)
		sink.Inc(hpc.EvBranchLoads, 1)
		predicted := c.bp.PredictDirection(ins.PC)
		if _, hit := c.bp.LookupBTB(ins.PC); !hit {
			sink.Inc(hpc.EvBranchLoadMiss, 1)
			if ins.Taken {
				// Taken branch with unknown target redirects fetch.
				stallFront += cfg.MispredPenalty
			}
		}
		if predicted != ins.Taken {
			sink.Inc(hpc.EvBranchMiss, 1)
			stallFront += cfg.MispredPenalty
		}
		c.bp.UpdateDirection(ins.PC, ins.Taken)
		if ins.Taken {
			c.bp.UpdateBTB(ins.PC, ins.Target)
		}
	case isa.KindCall, isa.KindReturn:
		sink.Inc(hpc.EvBranchInstr, 1)
		sink.Inc(hpc.EvBranchLoads, 1)
		if _, hit := c.bp.LookupBTB(ins.PC); !hit {
			sink.Inc(hpc.EvBranchLoadMiss, 1)
			stallFront += cfg.MispredPenalty
		}
		c.bp.UpdateBTB(ins.PC, ins.Target)
	case isa.KindSyscall:
		c.syscalls++
		cycles += cfg.SyscallPenalty
		stallFront += cfg.SyscallPenalty
		if cfg.SyscallsPerSwitch > 0 && c.syscalls%cfg.SyscallsPerSwitch == 0 {
			sink.Inc(hpc.EvCtxSwitch, 1)
			c.switches++
			if cfg.SwitchesPerMigration > 0 && c.switches%cfg.SwitchesPerMigration == 0 {
				sink.Inc(hpc.EvMigrations, 1)
			}
		}
	case isa.KindDiv:
		cycles += cfg.DivLatency
		stallBack += cfg.DivLatency
	case isa.KindMul:
		cycles += cfg.MulLatency
	}

	cycles += stallFront + stallBack
	c.cycles += cycles
	sink.Inc(hpc.EvCycles, cycles)
	sink.Inc(hpc.EvRefCycles, cycles)
	if stallFront > 0 {
		sink.Inc(hpc.EvStallFront, stallFront)
	}
	if stallBack > 0 {
		sink.Inc(hpc.EvStallBack, stallBack)
	}
}

// dataAccess models a load or store through the dTLB, L1d, LLC and node
// interface, plus demand paging on first touch.
func (c *Core) dataAccess(addr uint64, store bool, stallBack *uint64) {
	cfg := &c.cfg
	sink := c.sink

	// Demand paging: first touch of a page faults.
	page := addr / uint64(cfg.PageSize)
	if _, ok := c.touchedPages[page]; !ok {
		c.touchedPages[page] = struct{}{}
		sink.Inc(hpc.EvPageFaults, 1)
		if addr >= cfg.FileBackedBase {
			sink.Inc(hpc.EvMajorFault, 1)
			*stallBack += cfg.MajorFaultCost
		} else {
			sink.Inc(hpc.EvMinorFault, 1)
			*stallBack += cfg.MinorFaultCost
		}
	}

	if store {
		sink.Inc(hpc.EvDTLBStores, 1)
		if !c.dtlb.Access(addr) {
			sink.Inc(hpc.EvDTLBStoreMiss, 1)
			*stallBack += cfg.TLBMissPenalty
		}
		sink.Inc(hpc.EvL1DStores, 1)
		if !c.l1d.Access(addr) {
			sink.Inc(hpc.EvL1DStoreMiss, 1)
			sink.Inc(hpc.EvCacheRef, 1)
			sink.Inc(hpc.EvLLCStores, 1)
			if !c.llc.Access(addr) {
				sink.Inc(hpc.EvLLCStoreMiss, 1)
				sink.Inc(hpc.EvCacheMiss, 1)
				c.nodeStore(addr, stallBack)
			} else {
				*stallBack += cfg.L1MissPenalty
			}
		}
		return
	}

	sink.Inc(hpc.EvDTLBLoads, 1)
	if !c.dtlb.Access(addr) {
		sink.Inc(hpc.EvDTLBLoadMiss, 1)
		*stallBack += cfg.TLBMissPenalty
	}
	sink.Inc(hpc.EvL1DLoads, 1)
	if !c.l1d.Access(addr) {
		sink.Inc(hpc.EvL1DLoadMiss, 1)
		sink.Inc(hpc.EvCacheRef, 1)
		sink.Inc(hpc.EvLLCLoads, 1)
		if !c.llc.Access(addr) {
			sink.Inc(hpc.EvLLCLoadMiss, 1)
			sink.Inc(hpc.EvCacheMiss, 1)
			c.nodeLoad(addr, stallBack)
		} else {
			*stallBack += cfg.L1MissPenalty
		}
		c.prefetch(addr, stallBack)
	}
}

// prefetch issues a next-line prefetch after a demand L1d load miss.
func (c *Core) prefetch(addr uint64, stallBack *uint64) {
	sink := c.sink
	line := addr >> 6
	// Only prefetch on the second consecutive-line miss (simple stream
	// detection); random patterns rarely trigger it.
	trigger := line == c.lastMissLine+1
	c.lastMissLine = line
	if !trigger {
		return
	}
	next := (line + 1) << 6
	if c.l1d.Probe(next) {
		return
	}
	sink.Inc(hpc.EvL1DPrefetch, 1)
	if !c.llc.Probe(next) {
		// Deep prefetch: fill from memory into LLC and L1d.
		sink.Inc(hpc.EvL1DPrefetchMiss, 1)
		sink.Inc(hpc.EvLLCPrefetch, 1)
		sink.Inc(hpc.EvLLCPrefetchMiss, 1)
		sink.Inc(hpc.EvNodePrefetch, 1)
		if c.isRemote(next) {
			sink.Inc(hpc.EvNodePrefetchMiss, 1)
		}
		c.llc.Insert(next)
	}
	c.l1d.Insert(next)
	_ = stallBack // prefetches are charged no demand stall
}

// isRemote hashes a physical line address onto the two-node topology.
func (c *Core) isRemote(addr uint64) bool {
	if c.cfg.RemoteNodeFraction <= 0 {
		return false
	}
	h := (addr >> 6) * 0x9E3779B97F4A7C15
	frac := float64(h>>40) / float64(1<<24)
	return frac < c.cfg.RemoteNodeFraction
}

func (c *Core) nodeLoad(addr uint64, stallBack *uint64) {
	c.sink.Inc(hpc.EvNodeLoads, 1)
	*stallBack += c.cfg.LLCMissPenalty
	if c.isRemote(addr) {
		c.sink.Inc(hpc.EvNodeLoadMiss, 1)
		*stallBack += c.cfg.RemotePenalty
	}
}

func (c *Core) nodeStore(addr uint64, stallBack *uint64) {
	c.sink.Inc(hpc.EvNodeStores, 1)
	*stallBack += c.cfg.LLCMissPenalty
	if c.isRemote(addr) {
		c.sink.Inc(hpc.EvNodeStoreMiss, 1)
		*stallBack += c.cfg.RemotePenalty
	}
}
