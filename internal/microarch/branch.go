package microarch

// BranchPredictor is a gshare direction predictor (global history XOR PC
// indexing a table of 2-bit saturating counters) paired with a
// direct-mapped branch target buffer. Conditional-branch direction
// mispredictions drive the branch-misses event; BTB misses drive the
// branch-load-misses event (every control-flow instruction performs a
// branch-unit lookup, which is the branch-loads event).
type BranchPredictor struct {
	historyBits uint
	history     uint64
	pht         []uint8 // 2-bit saturating counters

	btbMask uint64
	btbTag  []uint64
	btbDst  []uint64
	btbVal  []bool
}

// NewBranchPredictor builds a gshare predictor with 2^historyBits pattern
// history table entries and a direct-mapped BTB with btbEntries entries
// (must be a power of two).
func NewBranchPredictor(historyBits uint, btbEntries int) *BranchPredictor {
	if historyBits == 0 || historyBits > 20 {
		panic("microarch: historyBits must be in 1..20")
	}
	if !isPow2(btbEntries) {
		panic("microarch: btbEntries must be a power of two")
	}
	return &BranchPredictor{
		historyBits: historyBits,
		pht:         make([]uint8, 1<<historyBits),
		btbMask:     uint64(btbEntries - 1),
		btbTag:      make([]uint64, btbEntries),
		btbDst:      make([]uint64, btbEntries),
		btbVal:      make([]bool, btbEntries),
	}
}

func (bp *BranchPredictor) phtIndex(pc uint64) int {
	mask := uint64(1)<<bp.historyBits - 1
	return int(((pc >> 2) ^ bp.history) & mask)
}

// PredictDirection returns the predicted direction for the conditional
// branch at pc.
func (bp *BranchPredictor) PredictDirection(pc uint64) bool {
	return bp.pht[bp.phtIndex(pc)] >= 2
}

// UpdateDirection trains the predictor with the resolved outcome and shifts
// the global history.
func (bp *BranchPredictor) UpdateDirection(pc uint64, taken bool) {
	idx := bp.phtIndex(pc)
	ctr := bp.pht[idx]
	if taken {
		if ctr < 3 {
			ctr++
		}
	} else if ctr > 0 {
		ctr--
	}
	bp.pht[idx] = ctr
	bp.history = (bp.history << 1) & (uint64(1)<<bp.historyBits - 1)
	if taken {
		bp.history |= 1
	}
}

// LookupBTB performs a branch-target-buffer lookup for the control
// instruction at pc, reporting whether the entry hit with the given target.
func (bp *BranchPredictor) LookupBTB(pc uint64) (target uint64, hit bool) {
	idx := (pc >> 2) & bp.btbMask
	if bp.btbVal[idx] && bp.btbTag[idx] == pc {
		return bp.btbDst[idx], true
	}
	return 0, false
}

// UpdateBTB installs the resolved target for the control instruction at pc.
func (bp *BranchPredictor) UpdateBTB(pc, target uint64) {
	idx := (pc >> 2) & bp.btbMask
	bp.btbTag[idx] = pc
	bp.btbDst[idx] = target
	bp.btbVal[idx] = true
}

// Reset returns the predictor to its power-on state.
func (bp *BranchPredictor) Reset() {
	bp.history = 0
	for i := range bp.pht {
		bp.pht[i] = 0
	}
	for i := range bp.btbVal {
		bp.btbVal[i] = false
	}
}
