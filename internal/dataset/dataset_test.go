package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func sample() *Dataset {
	d := New([]string{"f0", "f1", "f2"}, []string{"benign", "malware"})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		label := 0
		if i%4 == 0 {
			label = 1
		}
		d.Add(Instance{
			Features: []float64{rng.Float64(), float64(label) + rng.Float64(), float64(i)},
			Label:    label,
			App:      "app",
		})
	}
	return d
}

func TestAddValidation(t *testing.T) {
	d := New([]string{"a"}, []string{"x", "y"})
	if err := d.Add(Instance{Features: []float64{1, 2}, Label: 0}); err == nil {
		t.Fatal("wrong-width instance accepted")
	}
	if err := d.Add(Instance{Features: []float64{1}, Label: 5}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if err := d.Add(Instance{Features: []float64{1}, Label: 1}); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.NumFeatures() != 1 || d.NumClasses() != 2 {
		t.Fatal("dimensions wrong")
	}
}

func TestClassCounts(t *testing.T) {
	d := sample()
	counts := d.ClassCounts()
	if counts[0] != 75 || counts[1] != 25 {
		t.Fatalf("counts=%v, want [75 25]", counts)
	}
}

func TestSplitStratified(t *testing.T) {
	d := sample()
	train, test, err := d.Split(0.6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != d.Len() {
		t.Fatal("split lost instances")
	}
	tc := train.ClassCounts()
	if tc[0] != 45 || tc[1] != 15 {
		t.Fatalf("train counts=%v, want [45 15] (stratified 60%%)", tc)
	}
	// Determinism.
	train2, _, _ := d.Split(0.6, 7)
	for i := range train.Instances {
		if train.Instances[i].Features[2] != train2.Instances[i].Features[2] {
			t.Fatal("split not deterministic")
		}
	}
	// Different seed shuffles differently.
	train3, _, _ := d.Split(0.6, 8)
	same := true
	for i := range train.Instances {
		if train.Instances[i].Features[2] != train3.Instances[i].Features[2] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical splits")
	}
}

func TestSplitRejectsBadFrac(t *testing.T) {
	d := sample()
	for _, f := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := d.Split(f, 1); err == nil {
			t.Fatalf("Split(%v) accepted", f)
		}
	}
}

func TestSelect(t *testing.T) {
	d := sample()
	s, err := d.Select([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.FeatureNames[0] != "f2" || s.FeatureNames[1] != "f0" {
		t.Fatalf("names=%v", s.FeatureNames)
	}
	if s.Instances[5].Features[0] != d.Instances[5].Features[2] {
		t.Fatal("projection wrong")
	}
	if _, err := d.Select([]int{9}); err == nil {
		t.Fatal("out-of-range feature accepted")
	}
}

func TestSelectByName(t *testing.T) {
	d := sample()
	s, err := d.SelectByName([]string{"f1"})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumFeatures() != 1 || s.Instances[0].Features[0] != d.Instances[0].Features[1] {
		t.Fatal("SelectByName wrong")
	}
	if _, err := d.SelectByName([]string{"zzz"}); err == nil {
		t.Fatal("unknown name accepted")
	}
	if d.FeatureIndex("f1") != 1 || d.FeatureIndex("zzz") != -1 {
		t.Fatal("FeatureIndex wrong")
	}
}

func TestFilterAndRelabel(t *testing.T) {
	d := sample()
	mal := d.Filter(func(ins Instance) bool { return ins.Label == 1 })
	if mal.Len() != 25 {
		t.Fatalf("filter kept %d, want 25", mal.Len())
	}
	// Relabel dropping class 1.
	r, err := d.Relabel([]string{"only"}, func(old int) int {
		if old == 1 {
			return -1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 75 || r.NumClasses() != 1 {
		t.Fatal("relabel wrong")
	}
	if _, err := d.Relabel([]string{"only"}, func(int) int { return 3 }); err == nil {
		t.Fatal("out-of-range relabel accepted")
	}
}

func TestColumnLabelsMatrix(t *testing.T) {
	d := sample()
	col := d.Column(2)
	if len(col) != 100 || col[10] != 10 {
		t.Fatal("Column wrong")
	}
	labels := d.Labels()
	if labels[4] != 1 || labels[5] != 0 {
		t.Fatal("Labels wrong")
	}
	m := d.Matrix()
	if m.Rows != 100 || m.Cols != 3 || m.At(10, 2) != 10 {
		t.Fatal("Matrix wrong")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, d.ClassNames)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("round trip lost instances: %d vs %d", got.Len(), d.Len())
	}
	for i := range d.Instances {
		if got.Instances[i].Label != d.Instances[i].Label {
			t.Fatalf("label mismatch at %d", i)
		}
		for j := range d.Instances[i].Features {
			if got.Instances[i].Features[j] != d.Instances[i].Features[j] {
				t.Fatalf("feature mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), []string{"x"}); err == nil {
		t.Fatal("header without class column accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,class\nnope,x\n"), []string{"x"}); err == nil {
		t.Fatal("non-numeric feature accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,class\n1,unknown\n"), []string{"x"}); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestScaler(t *testing.T) {
	d := New([]string{"a", "b"}, []string{"c"})
	d.Add(Instance{Features: []float64{1, 5}, Label: 0})
	d.Add(Instance{Features: []float64{3, 5}, Label: 0})
	s := FitScaler(d)
	if s.Means[0] != 2 {
		t.Fatalf("mean=%v", s.Means[0])
	}
	if s.Stds[1] != 1 {
		t.Fatal("constant feature must get std 1")
	}
	out := s.Apply(d)
	if math.Abs(out.Instances[0].Features[0]+1) > 1e-9 {
		t.Fatalf("standardised value=%v, want -1", out.Instances[0].Features[0])
	}
	if out.Instances[0].Features[1] != 0 {
		t.Fatal("constant feature must map to 0")
	}
	// Original untouched.
	if d.Instances[0].Features[0] != 1 {
		t.Fatal("Apply mutated the input dataset")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := sample()
	c := d.Clone()
	c.Instances[0].Features[0] = 999
	if d.Instances[0].Features[0] == 999 {
		t.Fatal("Clone shares feature storage")
	}
}
