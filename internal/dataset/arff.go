package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteARFF writes the dataset in WEKA's ARFF format: numeric attributes
// for every feature plus a nominal class attribute. The paper performs its
// learning in WEKA, so datasets exported this way can be loaded there
// directly for side-by-side comparison.
func (d *Dataset) WriteARFF(w io.Writer, relation string) error {
	bw := bufio.NewWriter(w)
	if relation == "" {
		relation = "twosmart"
	}
	if _, err := fmt.Fprintf(bw, "@RELATION %s\n\n", arffQuote(relation)); err != nil {
		return err
	}
	for _, name := range d.FeatureNames {
		if _, err := fmt.Fprintf(bw, "@ATTRIBUTE %s NUMERIC\n", arffQuote(name)); err != nil {
			return err
		}
	}
	quoted := make([]string, len(d.ClassNames))
	for i, c := range d.ClassNames {
		quoted[i] = arffQuote(c)
	}
	if _, err := fmt.Fprintf(bw, "@ATTRIBUTE class {%s}\n\n@DATA\n", strings.Join(quoted, ",")); err != nil {
		return err
	}
	for _, ins := range d.Instances {
		for _, v := range ins.Features {
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(arffQuote(d.ClassNames[ins.Label])); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// arffQuote quotes a name if it contains characters ARFF treats specially.
func arffQuote(s string) string {
	if strings.ContainsAny(s, " ,{}%'\"\t") {
		return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
	}
	return s
}

// ReadARFF parses a (numeric-attributes + nominal class) ARFF stream
// written by WriteARFF or WEKA. Only the subset of ARFF this repository
// emits is supported: NUMERIC attributes followed by one nominal class
// attribute, dense @DATA rows.
func ReadARFF(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var featureNames []string
	var classNames []string
	var d *Dataset
	inData := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		if !inData {
			upper := strings.ToUpper(text)
			switch {
			case strings.HasPrefix(upper, "@RELATION"):
				// name ignored
			case strings.HasPrefix(upper, "@ATTRIBUTE"):
				rest := strings.TrimSpace(text[len("@ATTRIBUTE"):])
				name, kind, err := splitAttribute(rest)
				if err != nil {
					return nil, fmt.Errorf("dataset: arff line %d: %w", line, err)
				}
				if strings.HasPrefix(kind, "{") {
					if name != "class" {
						return nil, fmt.Errorf("dataset: arff line %d: nominal attribute %q (only class may be nominal)", line, name)
					}
					inner := strings.TrimSuffix(strings.TrimPrefix(kind, "{"), "}")
					for _, c := range strings.Split(inner, ",") {
						classNames = append(classNames, arffUnquote(strings.TrimSpace(c)))
					}
				} else if strings.EqualFold(kind, "NUMERIC") || strings.EqualFold(kind, "REAL") {
					featureNames = append(featureNames, name)
				} else {
					return nil, fmt.Errorf("dataset: arff line %d: unsupported attribute type %q", line, kind)
				}
			case strings.HasPrefix(upper, "@DATA"):
				if len(classNames) == 0 {
					return nil, fmt.Errorf("dataset: arff has no class attribute")
				}
				d = New(featureNames, classNames)
				inData = true
			default:
				return nil, fmt.Errorf("dataset: arff line %d: unexpected header %q", line, text)
			}
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != len(featureNames)+1 {
			return nil, fmt.Errorf("dataset: arff line %d: %d fields, want %d", line, len(fields), len(featureNames)+1)
		}
		fv := make([]float64, len(featureNames))
		for j := 0; j < len(featureNames); j++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(fields[j]), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: arff line %d field %d: %w", line, j, err)
			}
			fv[j] = v
		}
		className := arffUnquote(strings.TrimSpace(fields[len(fields)-1]))
		label := -1
		for i, c := range classNames {
			if c == className {
				label = i
				break
			}
		}
		if label < 0 {
			return nil, fmt.Errorf("dataset: arff line %d: unknown class %q", line, className)
		}
		if err := d.Add(Instance{Features: fv, Label: label}); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if d == nil {
		return nil, fmt.Errorf("dataset: arff stream has no @DATA section")
	}
	return d, nil
}

// splitAttribute splits "@ATTRIBUTE <name> <type>" taking quoting into
// account.
func splitAttribute(rest string) (name, kind string, err error) {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return "", "", fmt.Errorf("empty attribute declaration")
	}
	if rest[0] == '\'' {
		end := strings.Index(rest[1:], "'")
		if end < 0 {
			return "", "", fmt.Errorf("unterminated quoted name")
		}
		name = rest[1 : 1+end]
		kind = strings.TrimSpace(rest[2+end:])
	} else {
		parts := strings.SplitN(rest, " ", 2)
		if len(parts) != 2 {
			return "", "", fmt.Errorf("attribute %q missing type", rest)
		}
		name = parts[0]
		kind = strings.TrimSpace(parts[1])
	}
	if kind == "" {
		return "", "", fmt.Errorf("attribute %q missing type", name)
	}
	return name, kind, nil
}

func arffUnquote(s string) string {
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return strings.ReplaceAll(s[1:len(s)-1], "\\'", "'")
	}
	return s
}
