// Package dataset provides the labelled feature-vector containers shared by
// the feature-reduction, training and evaluation stages: instances with
// provenance, stratified train/test splitting (the paper uses a 60%/40%
// split), feature projection, relabelling for per-class binary tasks, CSV
// interchange and z-score standardisation.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"

	"twosmart/internal/mat"
)

// Instance is one labelled observation: a feature vector plus the class
// index and the application it was sampled from.
type Instance struct {
	Features []float64
	Label    int
	App      string
}

// Dataset is an ordered collection of instances with shared feature and
// class naming.
type Dataset struct {
	FeatureNames []string
	ClassNames   []string
	Instances    []Instance
}

// New returns an empty dataset with the given schema.
func New(featureNames, classNames []string) *Dataset {
	return &Dataset{
		FeatureNames: append([]string(nil), featureNames...),
		ClassNames:   append([]string(nil), classNames...),
	}
}

// Add appends an instance after validating its shape.
func (d *Dataset) Add(ins Instance) error {
	if len(ins.Features) != len(d.FeatureNames) {
		return fmt.Errorf("dataset: instance has %d features, want %d", len(ins.Features), len(d.FeatureNames))
	}
	if ins.Label < 0 || ins.Label >= len(d.ClassNames) {
		return fmt.Errorf("dataset: label %d out of range [0,%d)", ins.Label, len(d.ClassNames))
	}
	d.Instances = append(d.Instances, ins)
	return nil
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.Instances) }

// NumFeatures returns the feature dimensionality.
func (d *Dataset) NumFeatures() int { return len(d.FeatureNames) }

// NumClasses returns the number of classes in the schema.
func (d *Dataset) NumClasses() int { return len(d.ClassNames) }

// ClassCounts returns the number of instances per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, len(d.ClassNames))
	for _, ins := range d.Instances {
		counts[ins.Label]++
	}
	return counts
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := New(d.FeatureNames, d.ClassNames)
	out.Instances = make([]Instance, len(d.Instances))
	for i, ins := range d.Instances {
		out.Instances[i] = Instance{
			Features: append([]float64(nil), ins.Features...),
			Label:    ins.Label,
			App:      ins.App,
		}
	}
	return out
}

// Split partitions the dataset into train and test sets with a stratified
// shuffle: each class contributes trainFrac of its instances to the
// training set (rounded), preserving the paper's class imbalance in both
// halves. The split is deterministic in seed.
func (d *Dataset) Split(trainFrac float64, seed int64) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: trainFrac %v outside (0,1)", trainFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	byClass := make([][]int, len(d.ClassNames))
	for i, ins := range d.Instances {
		byClass[ins.Label] = append(byClass[ins.Label], i)
	}
	train = New(d.FeatureNames, d.ClassNames)
	test = New(d.FeatureNames, d.ClassNames)
	for _, idxs := range byClass {
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		nTrain := int(math.Round(trainFrac * float64(len(idxs))))
		for k, idx := range idxs {
			if k < nTrain {
				train.Instances = append(train.Instances, d.Instances[idx])
			} else {
				test.Instances = append(test.Instances, d.Instances[idx])
			}
		}
	}
	return train, test, nil
}

// Select projects the dataset onto the given feature indices, in order.
func (d *Dataset) Select(featIdx []int) (*Dataset, error) {
	names := make([]string, len(featIdx))
	for i, f := range featIdx {
		if f < 0 || f >= len(d.FeatureNames) {
			return nil, fmt.Errorf("dataset: feature index %d out of range", f)
		}
		names[i] = d.FeatureNames[f]
	}
	out := New(names, d.ClassNames)
	out.Instances = make([]Instance, len(d.Instances))
	for i, ins := range d.Instances {
		fv := make([]float64, len(featIdx))
		for j, f := range featIdx {
			fv[j] = ins.Features[f]
		}
		out.Instances[i] = Instance{Features: fv, Label: ins.Label, App: ins.App}
	}
	return out, nil
}

// SelectByName projects onto the named features.
func (d *Dataset) SelectByName(names []string) (*Dataset, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		found := -1
		for j, fn := range d.FeatureNames {
			if fn == n {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("dataset: unknown feature %q", n)
		}
		idx[i] = found
	}
	return d.Select(idx)
}

// FeatureIndex returns the index of the named feature, or -1.
func (d *Dataset) FeatureIndex(name string) int {
	for i, n := range d.FeatureNames {
		if n == name {
			return i
		}
	}
	return -1
}

// Filter returns the instances for which keep returns true. Feature vectors
// are shared, not copied.
func (d *Dataset) Filter(keep func(Instance) bool) *Dataset {
	out := New(d.FeatureNames, d.ClassNames)
	for _, ins := range d.Instances {
		if keep(ins) {
			out.Instances = append(out.Instances, ins)
		}
	}
	return out
}

// Relabel maps every label through fn under a new class naming. Instances
// for which fn returns a negative value are dropped.
func (d *Dataset) Relabel(classNames []string, fn func(old int) int) (*Dataset, error) {
	out := New(d.FeatureNames, classNames)
	for _, ins := range d.Instances {
		nl := fn(ins.Label)
		if nl < 0 {
			continue
		}
		if nl >= len(classNames) {
			return nil, fmt.Errorf("dataset: relabel produced %d outside [0,%d)", nl, len(classNames))
		}
		out.Instances = append(out.Instances, Instance{Features: ins.Features, Label: nl, App: ins.App})
	}
	return out, nil
}

// Column returns a copy of feature column j across all instances.
func (d *Dataset) Column(j int) []float64 {
	out := make([]float64, len(d.Instances))
	for i, ins := range d.Instances {
		out[i] = ins.Features[j]
	}
	return out
}

// Labels returns a copy of all labels.
func (d *Dataset) Labels() []int {
	out := make([]int, len(d.Instances))
	for i, ins := range d.Instances {
		out[i] = ins.Label
	}
	return out
}

// Matrix returns the feature matrix (instances x features).
func (d *Dataset) Matrix() *mat.Matrix {
	m := mat.New(len(d.Instances), len(d.FeatureNames))
	for i, ins := range d.Instances {
		copy(m.Row(i), ins.Features)
	}
	return m
}

// WriteCSV writes the dataset with a header row of feature names plus
// "class"; classes are written by name.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(append([]string(nil), d.FeatureNames...), "class")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(d.FeatureNames)+1)
	for _, ins := range d.Instances {
		for j, v := range ins.Features {
			row[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		row[len(row)-1] = d.ClassNames[ins.Label]
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV. classNames fixes the label
// space (and ordering); rows with unknown class names are rejected.
func ReadCSV(r io.Reader, classNames []string) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if len(header) < 2 || header[len(header)-1] != "class" {
		return nil, fmt.Errorf("dataset: header must end with \"class\"")
	}
	d := New(header[:len(header)-1], classNames)
	classIdx := map[string]int{}
	for i, n := range classNames {
		classIdx[n] = i
	}
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		fv := make([]float64, len(row)-1)
		for j := 0; j < len(row)-1; j++ {
			fv[j], err = strconv.ParseFloat(row[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d field %d: %w", len(d.Instances)+1, j, err)
			}
		}
		label, ok := classIdx[row[len(row)-1]]
		if !ok {
			return nil, fmt.Errorf("dataset: unknown class %q", row[len(row)-1])
		}
		if err := d.Add(Instance{Features: fv, Label: label}); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Scaler holds z-score standardisation parameters fitted on a training set.
type Scaler struct {
	Means []float64
	Stds  []float64
}

// FitScaler computes per-feature means and standard deviations. Constant
// features get a standard deviation of 1 so they map to zero.
func FitScaler(d *Dataset) *Scaler {
	n := d.NumFeatures()
	s := &Scaler{Means: make([]float64, n), Stds: make([]float64, n)}
	for j := 0; j < n; j++ {
		col := d.Column(j)
		s.Means[j] = mat.Mean(col)
		sd := mat.StdDev(col)
		if sd == 0 {
			sd = 1
		}
		s.Stds[j] = sd
	}
	return s
}

// Transform standardises a single feature vector in place.
func (s *Scaler) Transform(features []float64) {
	for j := range features {
		features[j] = (features[j] - s.Means[j]) / s.Stds[j]
	}
}

// Apply returns a standardised copy of the dataset.
func (s *Scaler) Apply(d *Dataset) *Dataset {
	out := d.Clone()
	for i := range out.Instances {
		s.Transform(out.Instances[i].Features)
	}
	return out
}
