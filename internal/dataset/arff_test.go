package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func arffSample() *Dataset {
	d := New([]string{"branch-instructions", "cache-references"}, []string{"benign", "malware"})
	d.Add(Instance{Features: []float64{120.5, 33}, Label: 0})
	d.Add(Instance{Features: []float64{240, 90.25}, Label: 1})
	d.Add(Instance{Features: []float64{100, 10}, Label: 0})
	return d
}

func TestARFFRoundTrip(t *testing.T) {
	d := arffSample()
	var buf bytes.Buffer
	if err := d.WriteARFF(&buf, "hmd"); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"@RELATION hmd", "@ATTRIBUTE branch-instructions NUMERIC", "@ATTRIBUTE class {benign,malware}", "@DATA"} {
		if !strings.Contains(text, want) {
			t.Fatalf("ARFF missing %q:\n%s", want, text)
		}
	}
	got, err := ReadARFF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.NumFeatures() != d.NumFeatures() || got.NumClasses() != d.NumClasses() {
		t.Fatal("round trip changed shape")
	}
	for i := range d.Instances {
		if got.Instances[i].Label != d.Instances[i].Label {
			t.Fatalf("label changed at %d", i)
		}
		for j := range d.Instances[i].Features {
			if got.Instances[i].Features[j] != d.Instances[i].Features[j] {
				t.Fatalf("feature changed at %d,%d", i, j)
			}
		}
	}
}

func TestARFFQuoting(t *testing.T) {
	d := New([]string{"has space", "normal"}, []string{"class a", "b"})
	d.Add(Instance{Features: []float64{1, 2}, Label: 0})
	var buf bytes.Buffer
	if err := d.WriteARFF(&buf, "my relation"); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "'has space'") || !strings.Contains(text, "'my relation'") {
		t.Fatalf("quoting missing:\n%s", text)
	}
	got, err := ReadARFF(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got.FeatureNames[0] != "has space" || got.ClassNames[0] != "class a" {
		t.Fatalf("quoted names lost: %v %v", got.FeatureNames, got.ClassNames)
	}
}

func TestARFFCommentsAndBlanks(t *testing.T) {
	src := `% a comment
@RELATION r

@ATTRIBUTE f NUMERIC
@ATTRIBUTE class {x,y}

@DATA
% data comment
1.5,x

2,y
`
	d, err := ReadARFF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("len=%d", d.Len())
	}
}

func TestARFFErrors(t *testing.T) {
	cases := []string{
		"",                                    // empty
		"@RELATION r\n@ATTRIBUTE f NUMERIC\n", // no data section
		"@RELATION r\n@ATTRIBUTE f STRING\n@DATA\n",                                   // unsupported type
		"@RELATION r\n@ATTRIBUTE f {a,b}\n@ATTRIBUTE class {x}\n@DATA\n",              // nominal non-class
		"@RELATION r\n@ATTRIBUTE f NUMERIC\n@DATA\n1,x\n",                             // no class attr
		"@RELATION r\n@ATTRIBUTE f NUMERIC\n@ATTRIBUTE class {x}\n@DATA\n1\n",         // missing field
		"@RELATION r\n@ATTRIBUTE f NUMERIC\n@ATTRIBUTE class {x}\n@DATA\nz,x\n",       // bad number
		"@RELATION r\n@ATTRIBUTE f NUMERIC\n@ATTRIBUTE class {x}\n@DATA\n1,unknown\n", // bad class
		"bogus header\n@DATA\n", // unexpected header
	}
	for i, src := range cases {
		if _, err := ReadARFF(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted:\n%s", i, src)
		}
	}
}

func TestARFFDefaultRelation(t *testing.T) {
	d := arffSample()
	var buf bytes.Buffer
	if err := d.WriteARFF(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "@RELATION twosmart") {
		t.Fatal("default relation missing")
	}
}
