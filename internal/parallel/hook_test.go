package parallel

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// recordingHook counts lifecycle events; it must tolerate concurrent calls
// exactly as the Hook contract demands.
type recordingHook struct {
	mu       sync.Mutex
	starts   int
	dones    int
	failed   int
	negWait  bool
	negDur   bool
	doneIdxs map[int]bool
}

func (h *recordingHook) TaskStart(index int, queueWait time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.starts++
	if queueWait < 0 {
		h.negWait = true
	}
}

func (h *recordingHook) TaskDone(index int, d time.Duration, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dones++
	if err != nil {
		h.failed++
	}
	if d < 0 {
		h.negDur = true
	}
	if h.doneIdxs == nil {
		h.doneIdxs = make(map[int]bool)
	}
	h.doneIdxs[index] = true
}

func TestHookLifecycle(t *testing.T) {
	const n = 50
	h := &recordingHook{}
	err := ForEach(context.Background(), n, Options{Workers: 4, Hook: h}, func(context.Context, int) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.starts != n || h.dones != n {
		t.Fatalf("starts=%d dones=%d, want %d each", h.starts, h.dones, n)
	}
	if h.failed != 0 {
		t.Fatalf("failed=%d, want 0", h.failed)
	}
	if h.negWait || h.negDur {
		t.Fatalf("negative timing: wait=%v dur=%v", h.negWait, h.negDur)
	}
	if len(h.doneIdxs) != n {
		t.Fatalf("distinct done indices = %d, want %d", len(h.doneIdxs), n)
	}
}

func TestHookSeesFailures(t *testing.T) {
	boom := errors.New("boom")
	h := &recordingHook{}
	err := ForEach(context.Background(), 20, Options{Workers: 2, Hook: h}, func(_ context.Context, i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// First-error cancellation means not every task necessarily ran, but
	// every started task must have completed through the hook, and the
	// failure must have been observed.
	if h.starts != h.dones {
		t.Fatalf("starts=%d dones=%d, want equal", h.starts, h.dones)
	}
	if h.failed < 1 {
		t.Fatalf("failed=%d, want >= 1", h.failed)
	}
}

func TestHookNilTakesFastPath(t *testing.T) {
	// Purely behavioural: a run without a hook must still work (the pool
	// skips all clock readings in that configuration).
	if err := ForEach(context.Background(), 10, Options{}, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
