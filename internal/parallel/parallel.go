// Package parallel is the repository's single bounded fan-out primitive.
// Every concurrent layer — corpus profiling, cross-validation folds, the
// specialized-detector sweep, stage-2 training — runs on the same pool so
// that cancellation, error propagation and determinism behave identically
// everywhere:
//
//   - Cancellation: the context is observed both between tasks (a cancelled
//     pool schedules no further work) and inside tasks that choose to poll
//     it, so a SIGINT-driven shutdown is prompt and leaks no goroutines.
//   - Errors: the first failing task cancels the pool; the returned error
//     aggregates every distinct task failure (in input order, so error text
//     is deterministic) and matches errors.Is/errors.As against each.
//   - Determinism: results land at their input index regardless of
//     completion order, so a Seed-identical run produces byte-identical
//     output at any worker count.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

// Hook observes the task lifecycle of one fan-out run. Implementations
// must be safe for concurrent use: workers call them in parallel. The
// package deliberately defines only this interface — telemetry adapters
// (telemetry.PoolHook) satisfy it structurally, keeping the execution
// substrate free of any observability dependency.
type Hook interface {
	// TaskStart fires when a worker picks up task index, queueWait after
	// the feeder offered it.
	TaskStart(index int, queueWait time.Duration)
	// TaskDone fires when the task returns, having run for d (err nil on
	// success). It fires for failed tasks too, unlike OnProgress.
	TaskDone(index int, d time.Duration, err error)
}

// Options tunes a fan-out run. The zero value is ready to use.
type Options struct {
	// Workers bounds concurrency (default runtime.NumCPU()). A run never
	// uses more workers than it has tasks.
	Workers int
	// OnProgress, when non-nil, is called after every completed task with
	// the number of tasks finished so far and the total. Calls are
	// serialized and done is strictly increasing, so the callback needs no
	// locking of its own. Failed and skipped tasks do not report progress.
	OnProgress func(done, total int)
	// Hook, when non-nil, observes every task's start and completion with
	// timing. When nil the pool takes no clock readings at all.
	Hook Hook
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(ctx, i) for every i in [0, n) on a bounded worker pool.
//
// The context passed to fn is derived from ctx and is cancelled as soon as
// any task fails or ctx itself is cancelled; long-running tasks should poll
// it. ForEach returns nil only if every task ran and returned nil. If ctx
// was cancelled, ForEach returns ctx's error (so callers see
// context.Canceled / context.DeadlineExceeded); otherwise it returns the
// aggregated task errors in input order.
func ForEach(ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) error) error {
	_, err := run(ctx, n, opts, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// Map runs fn(ctx, i) for every i in [0, n) on a bounded worker pool and
// collects the results in input order: out[i] is fn's value for index i, no
// matter which worker computed it or when it finished. Error and
// cancellation semantics are those of ForEach; on a non-nil error the
// results are discarded.
func Map[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return run(ctx, n, opts, fn)
}

func run[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type task struct {
		i   int
		enq time.Time // zero unless a Hook is installed
	}
	results := make([]T, n)
	errs := make([]error, n)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
		next = make(chan task)
		hook = opts.Hook
	)

	workers := opts.workers(n)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-pctx.Done():
					return
				case t, ok := <-next:
					if !ok {
						return
					}
					var start time.Time
					if hook != nil {
						start = time.Now()
						hook.TaskStart(t.i, start.Sub(t.enq))
					}
					v, err := fn(pctx, t.i)
					if hook != nil {
						hook.TaskDone(t.i, time.Since(start), err)
					}
					if err != nil {
						errs[t.i] = err
						cancel() // first error stops the pool
						continue
					}
					results[t.i] = v
					if opts.OnProgress != nil {
						mu.Lock()
						done++
						opts.OnProgress(done, n)
						mu.Unlock()
					}
				}
			}
		}()
	}

feed:
	for i := 0; i < n; i++ {
		t := task{i: i}
		if hook != nil {
			t.enq = time.Now()
		}
		select {
		case next <- t:
		case <-pctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// External cancellation wins: report it directly rather than
		// whatever mixture of task errors the teardown produced.
		return nil, err
	}
	// Tasks that merely observed the pool's own abort add no information
	// beyond the failure that triggered it, so drop pure cancellation
	// errors whenever a real failure exists.
	real := false
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			real = true
			break
		}
	}
	var failures []error
	for _, err := range errs {
		if err == nil || (real && errors.Is(err, context.Canceled)) {
			continue
		}
		failures = append(failures, err)
	}
	if len(failures) == 1 {
		return nil, failures[0]
	}
	if len(failures) > 0 {
		return nil, errors.Join(failures...)
	}
	return results, nil
}
