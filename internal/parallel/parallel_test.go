package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdering(t *testing.T) {
	// Results must land at their input index regardless of completion
	// order; later indices finish first here.
	n := 32
	out, err := Map(context.Background(), n, Options{Workers: 8}, func(_ context.Context, i int) (int, error) {
		time.Sleep(time.Duration(n-i) * time.Millisecond / 4)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d]=%d, want %d", i, v, i*i)
		}
	}
}

func TestWorkerBound(t *testing.T) {
	var inFlight, peak atomic.Int32
	err := ForEach(context.Background(), 64, Options{Workers: 3}, func(context.Context, int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent tasks, cap is 3", p)
	}
}

func TestFirstErrorStopsPool(t *testing.T) {
	var started atomic.Int32
	boom := errors.New("boom")
	err := ForEach(context.Background(), 1000, Options{Workers: 2}, func(_ context.Context, i int) error {
		started.Add(1)
		if i == 3 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want boom", err)
	}
	if n := started.Load(); n > 100 {
		t.Fatalf("%d tasks started after the failure; pool did not stop", n)
	}
}

func TestMultiErrorAggregation(t *testing.T) {
	errA := errors.New("task 2 failed")
	errB := errors.New("task 5 failed")
	// Gate every task until all 8 have started, so both failures are
	// in flight before the first can cancel the pool; both must surface.
	var started atomic.Int32
	gate := make(chan struct{})
	err := ForEach(context.Background(), 8, Options{Workers: 8}, func(_ context.Context, i int) error {
		if started.Add(1) == 8 {
			close(gate)
		}
		<-gate
		switch i {
		case 2:
			return errA
		case 5:
			return errB
		default:
			return nil
		}
	})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("aggregate %v must match both failures", err)
	}
}

func TestCancellationEchoesSuppressed(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(context.Background(), 4, Options{Workers: 4}, func(ctx context.Context, i int) error {
		if i == 0 {
			return boom
		}
		// Cooperative tasks report the pool's own abort; that echo must
		// not obscure the real failure.
		time.Sleep(2 * time.Millisecond)
		return ctx.Err()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want boom", err)
	}
	if err.Error() != boom.Error() {
		t.Fatalf("err=%q carries cancellation echoes", err)
	}
}

func TestExternalCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	go func() {
		<-release
		cancel()
	}()
	start := time.Now()
	err := ForEach(ctx, 10000, Options{Workers: 4}, func(ctx context.Context, i int) error {
		if i == 0 {
			close(release)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
			return nil
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	waitForGoroutines(t, before)
}

func TestDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := ForEach(ctx, 1000, Options{Workers: 2}, func(ctx context.Context, _ int) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
			return nil
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want deadline exceeded", err)
	}
}

func TestProgress(t *testing.T) {
	var calls []int
	_, err := Map(context.Background(), 20, Options{Workers: 5, OnProgress: func(done, total int) {
		if total != 20 {
			t.Errorf("total=%d, want 20", total)
		}
		calls = append(calls, done) // serialized by contract: no lock needed
	}}, func(_ context.Context, i int) (int, error) {
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 20 {
		t.Fatalf("progress called %d times, want 20", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress not strictly increasing: %v", calls)
		}
	}
}

func TestZeroTasks(t *testing.T) {
	out, err := Map(context.Background(), 0, Options{}, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn must not run")
		return 0, nil
	})
	if err != nil || out != nil {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEach(ctx, 100, Options{}, func(context.Context, int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d tasks ran under a cancelled context", n)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if got := (Options{}).workers(1000); got != runtime.NumCPU() {
		t.Fatalf("default workers=%d, want NumCPU=%d", got, runtime.NumCPU())
	}
	if got := (Options{Workers: 16}).workers(4); got != 4 {
		t.Fatalf("workers=%d, want clamp to 4 tasks", got)
	}
}

// waitForGoroutines retries until the goroutine count settles back to (or
// below) the baseline, tolerating runtime background goroutines.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
