// Package ensemble implements AdaBoost.M1, the boosting method 2SMaRT
// layers on top of the stage-2 specialized classifiers so that detectors
// restricted to the four run-time-available HPCs recover the detection
// performance of 8- and 16-HPC detectors. Base learners are trained on
// weight-proportional resamples (as WEKA's AdaBoostM1 does by default), so
// any ml.Trainer can serve as the base learner without supporting instance
// weights.
package ensemble

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"twosmart/internal/dataset"
	"twosmart/internal/ml"
)

// AdaBoostTrainer boosts a base trainer with AdaBoost.M1.
type AdaBoostTrainer struct {
	// Base is the weak learner to boost; required.
	Base ml.Trainer
	// Rounds is the number of boosting iterations (WEKA default 10).
	Rounds int
	// Seed drives resampling.
	Seed int64
}

// Name implements ml.Trainer.
func (t *AdaBoostTrainer) Name() string {
	if t.Base != nil {
		return "AdaBoost(" + t.Base.Name() + ")"
	}
	return "AdaBoost"
}

type adaboost struct {
	members    []ml.Classifier
	alphas     []float64
	numClasses int
}

// Train implements ml.Trainer.
func (t *AdaBoostTrainer) Train(d *dataset.Dataset) (ml.Classifier, error) {
	if t.Base == nil {
		return nil, errors.New("ensemble: AdaBoost requires a base trainer")
	}
	if d.Len() == 0 {
		return nil, errors.New("ensemble: AdaBoost on empty dataset")
	}
	rounds := t.Rounds
	if rounds <= 0 {
		rounds = 10
	}
	n := d.Len()
	k := d.NumClasses()
	rng := rand.New(rand.NewSource(t.Seed + 43))

	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1 / float64(n)
	}

	model := &adaboost{numClasses: k}
	for round := 0; round < rounds; round++ {
		sample := resample(d, weights, rng)
		member, err := t.Base.Train(sample)
		if err != nil {
			return nil, fmt.Errorf("ensemble: round %d: %w", round, err)
		}
		// Weighted error on the full (original) training set.
		var errWeight float64
		wrong := make([]bool, n)
		for i, ins := range d.Instances {
			if member.Predict(ins.Features) != ins.Label {
				wrong[i] = true
				errWeight += weights[i]
			}
		}
		if errWeight >= 0.5 {
			// Weak learner no better than chance: stop (keep any
			// earlier members; if none, keep this one with tiny
			// weight so the ensemble is usable).
			if len(model.members) == 0 {
				model.members = append(model.members, member)
				model.alphas = append(model.alphas, 1e-3)
			}
			break
		}
		if errWeight < 1e-10 {
			// Perfect member dominates; include it and stop.
			model.members = append(model.members, member)
			model.alphas = append(model.alphas, 10)
			break
		}
		alpha := math.Log((1 - errWeight) / errWeight)
		model.members = append(model.members, member)
		model.alphas = append(model.alphas, alpha)

		var sum float64
		for i := range weights {
			if wrong[i] {
				weights[i] *= math.Exp(alpha)
			}
			sum += weights[i]
		}
		for i := range weights {
			weights[i] /= sum
		}
	}
	if len(model.members) == 0 {
		return nil, errors.New("ensemble: AdaBoost produced no members")
	}
	return model, nil
}

// resample draws len(d) instances with replacement, proportionally to the
// given weights, using inverse-CDF sampling.
func resample(d *dataset.Dataset, weights []float64, rng *rand.Rand) *dataset.Dataset {
	n := d.Len()
	cdf := make([]float64, n)
	var acc float64
	for i, w := range weights {
		acc += w
		cdf[i] = acc
	}
	out := dataset.New(d.FeatureNames, d.ClassNames)
	out.Instances = make([]dataset.Instance, 0, n)
	for i := 0; i < n; i++ {
		u := rng.Float64() * acc
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out.Instances = append(out.Instances, d.Instances[lo])
	}
	return out
}

// NumClasses implements ml.Classifier.
func (m *adaboost) NumClasses() int { return m.numClasses }

// Scores implements ml.Classifier: the alpha-weighted vote mass per class,
// normalised to sum to one.
func (m *adaboost) Scores(features []float64) []float64 {
	out := make([]float64, m.numClasses)
	var total float64
	for i, member := range m.members {
		out[member.Predict(features)] += m.alphas[i]
		total += m.alphas[i]
	}
	if total > 0 {
		for c := range out {
			out[c] /= total
		}
	}
	return out
}

// Predict implements ml.Classifier.
func (m *adaboost) Predict(features []float64) int { return ml.Argmax(m.Scores(features)) }

// Members returns the ensemble's base classifiers and their vote weights
// (used by the hardware cost model).
func Members(c ml.Classifier) ([]ml.Classifier, []float64, bool) {
	m, ok := c.(*adaboost)
	if !ok {
		return nil, nil, false
	}
	return m.members, m.alphas, true
}

// FromMembers reassembles an AdaBoost ensemble from its members and vote
// weights (used when deserialising a persisted model).
func FromMembers(members []ml.Classifier, alphas []float64, numClasses int) (ml.Classifier, error) {
	if len(members) == 0 || len(members) != len(alphas) {
		return nil, errors.New("ensemble: members and alphas must be non-empty and equal length")
	}
	if numClasses <= 0 {
		return nil, errors.New("ensemble: invalid class count")
	}
	for i, m := range members {
		if m.NumClasses() != numClasses {
			return nil, fmt.Errorf("ensemble: member %d has %d classes, want %d", i, m.NumClasses(), numClasses)
		}
	}
	return &adaboost{
		members:    append([]ml.Classifier(nil), members...),
		alphas:     append([]float64(nil), alphas...),
		numClasses: numClasses,
	}, nil
}
