package ensemble

import (
	"testing"

	"twosmart/internal/dataset"
	"twosmart/internal/ml"
	"twosmart/internal/ml/mltest"
	"twosmart/internal/ml/tree"
)

// stump trains a depth-1 decision tree: a canonical weak learner.
func stump() ml.Trainer { return &tree.J48Trainer{MaxDepth: 1, Confidence: 1} }

func TestAdaBoostImprovesWeakLearner(t *testing.T) {
	// A single stump can only use one of the four weakly-informative
	// features; boosting combines axis-aligned cuts across features.
	d := mltest.Gaussian2Class(1000, 4, 1.2, 1)
	weak, err := ml.TrainAndEvaluate(stump(), d, 0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := ml.TrainAndEvaluate(&AdaBoostTrainer{Base: stump(), Rounds: 25, Seed: 3}, d, 0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if boosted.F1 <= weak.F1+0.02 {
		t.Fatalf("boosting did not help: weak F1=%v boosted F1=%v", weak.F1, boosted.F1)
	}
	if boosted.F1 < 0.8 {
		t.Fatalf("boosted F1=%v", boosted.F1)
	}
}

func TestAdaBoostMembers(t *testing.T) {
	d := mltest.Gaussian2Class(400, 3, 1.0, 4)
	model, err := (&AdaBoostTrainer{Base: stump(), Rounds: 8, Seed: 5}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	members, alphas, ok := Members(model)
	if !ok {
		t.Fatal("Members failed on AdaBoost model")
	}
	if len(members) == 0 || len(members) != len(alphas) {
		t.Fatalf("members=%d alphas=%d", len(members), len(alphas))
	}
	if len(members) > 8 {
		t.Fatalf("more members than rounds: %d", len(members))
	}
	for _, a := range alphas {
		if a <= 0 {
			t.Fatalf("non-positive alpha %v", a)
		}
	}
}

func TestAdaBoostPerfectBaseStopsEarly(t *testing.T) {
	// Hugely separated data: the first stump is perfect, so the ensemble
	// keeps it and stops.
	d := mltest.OneInformative(300, 2, 0, 100.0, 6)
	model, err := (&AdaBoostTrainer{Base: stump(), Rounds: 10, Seed: 7}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	members, _, _ := Members(model)
	if len(members) != 1 {
		t.Fatalf("perfect base produced %d members, want 1", len(members))
	}
	ev, err := ml.EvaluateBinary(model, d)
	if err != nil {
		t.Fatal(err)
	}
	if ev.F1 < 0.99 {
		t.Fatalf("F1=%v", ev.F1)
	}
}

func TestAdaBoostScoresNormalised(t *testing.T) {
	d := mltest.Gaussian2Class(300, 3, 1.5, 8)
	model, err := (&AdaBoostTrainer{Base: stump(), Rounds: 10, Seed: 9}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range d.Instances[:20] {
		s := model.Scores(ins.Features)
		var sum float64
		for _, v := range s {
			if v < 0 || v > 1 {
				t.Fatalf("score %v outside [0,1]", v)
			}
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("scores sum to %v", sum)
		}
	}
}

func TestAdaBoostValidation(t *testing.T) {
	d := mltest.Gaussian2Class(100, 2, 1.0, 10)
	if _, err := (&AdaBoostTrainer{Rounds: 5}).Train(d); err == nil {
		t.Fatal("missing base trainer accepted")
	}
	empty := dataset.New([]string{"a"}, []string{"x", "y"})
	if _, err := (&AdaBoostTrainer{Base: stump()}).Train(empty); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestAdaBoostName(t *testing.T) {
	tr := &AdaBoostTrainer{Base: stump()}
	if tr.Name() != "AdaBoost(J48)" {
		t.Fatalf("Name=%q", tr.Name())
	}
	if (&AdaBoostTrainer{}).Name() != "AdaBoost" {
		t.Fatal("baseless name wrong")
	}
}

func TestAdaBoostDeterministicInSeed(t *testing.T) {
	d := mltest.Gaussian2Class(300, 3, 1.0, 11)
	a, err := (&AdaBoostTrainer{Base: stump(), Rounds: 6, Seed: 12}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&AdaBoostTrainer{Base: stump(), Rounds: 6, Seed: 12}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range d.Instances[:50] {
		if a.Predict(ins.Features) != b.Predict(ins.Features) {
			t.Fatal("same-seed ensembles disagree")
		}
	}
}

func TestAdaBoostMulticlass(t *testing.T) {
	d := mltest.MultiClass(600, 3, 3, 2.5, 13)
	model, err := (&AdaBoostTrainer{Base: &tree.J48Trainer{MaxDepth: 2, Confidence: 1}, Rounds: 10, Seed: 14}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ml.EvaluateMulti(model, d)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Accuracy() < 0.8 {
		t.Fatalf("multiclass accuracy=%v", mc.Accuracy())
	}
}
