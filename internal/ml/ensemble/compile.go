package ensemble

import "twosmart/internal/ml"

// compiledBoost evaluates an AdaBoost.M1 ensemble through its members'
// compiled forms: each member casts its alpha-weighted vote via the
// allocation-free Predict path, and the vote mass is normalised in place.
type compiledBoost struct {
	members []ml.Compiled
	alphas  []float64
	total   float64 // sum of alphas, precomputed
	k       int
	scratch []float64
}

// Compile implements ml.Compilable. Members that cannot compile themselves
// fall back to ml.Compile's interpreted adapter, so a mixed ensemble still
// works (its vote loop then allocates inside those members).
func (m *adaboost) Compile() ml.Compiled {
	c := &compiledBoost{
		members: make([]ml.Compiled, len(m.members)),
		alphas:  append([]float64(nil), m.alphas...),
		k:       m.numClasses,
		scratch: make([]float64, m.numClasses),
	}
	for i, member := range m.members {
		c.members[i] = ml.Compile(member)
		c.total += m.alphas[i]
	}
	return c
}

// NumClasses implements ml.Compiled.
func (m *compiledBoost) NumClasses() int { return m.k }

// ScoresInto implements ml.Compiled: normalised alpha-weighted vote mass.
func (m *compiledBoost) ScoresInto(dst, features []float64) {
	for c := range dst[:m.k] {
		dst[c] = 0
	}
	for i, member := range m.members {
		dst[member.Predict(features)] += m.alphas[i]
	}
	if m.total > 0 {
		for c := 0; c < m.k; c++ {
			dst[c] /= m.total
		}
	}
}

// Predict implements ml.Compiled.
func (m *compiledBoost) Predict(features []float64) int {
	m.ScoresInto(m.scratch, features)
	return ml.Argmax(m.scratch)
}
