// Package ml defines the classifier and trainer interfaces shared by the
// from-scratch learning algorithms in its subpackages (tree: J48/C4.5,
// rules: JRip/RIPPER and OneR, nn: multilayer perceptron, linear:
// multinomial logistic regression, ensemble: AdaBoost.M1), plus the
// evaluation drivers that compute the paper's metrics over a test set.
package ml

import (
	"errors"
	"fmt"

	"twosmart/internal/dataset"
	"twosmart/internal/metrics"
)

// Classifier is a trained model.
type Classifier interface {
	// NumClasses returns the size of the label space the model was
	// trained on.
	NumClasses() int
	// Scores returns one non-negative confidence per class; higher means
	// more likely. Scores need not be calibrated probabilities but must
	// be usable for ranking (ROC/AUC).
	Scores(features []float64) []float64
	// Predict returns the index of the most likely class.
	Predict(features []float64) int
}

// Trainer builds a classifier from a training set.
type Trainer interface {
	// Name identifies the algorithm (e.g. "J48", "JRip", "MLP", "OneR").
	Name() string
	// Train fits a model on the dataset.
	Train(d *dataset.Dataset) (Classifier, error)
}

// Compiled is an evaluator lowered from a trained Classifier into a flat,
// cache-friendly form for the run-time hot path. Implementations own any
// scratch space they need, so the steady-state Score methods perform zero
// heap allocations — which also means a Compiled value is NOT safe for
// concurrent use; compile one evaluator per goroutine (compilation is a
// cheap flattening pass).
type Compiled interface {
	// NumClasses returns the size of the label space.
	NumClasses() int
	// ScoresInto writes one non-negative confidence per class into dst,
	// which must have length NumClasses. The scores are identical to the
	// source Classifier's Scores output (see TestCompiledEquivalence).
	// dst and features are only accessed during the call; the caller may
	// reuse both buffers.
	ScoresInto(dst, features []float64)
	// Predict returns the index of the most likely class without
	// allocating.
	Predict(features []float64) int
}

// Compilable is implemented by classifiers that can lower themselves into
// a Compiled evaluator. All learners in this repository's subpackages
// (tree, rules, nn, linear, ensemble) implement it.
type Compilable interface {
	Compile() Compiled
}

// Compile lowers a trained classifier into its allocation-free compiled
// form. Classifiers that do not implement Compilable are wrapped in an
// interpreted adapter that preserves semantics but still allocates per
// call, so Compile never fails and callers need not special-case exotic
// models.
func Compile(c Classifier) Compiled {
	if cc, ok := c.(Compilable); ok {
		return cc.Compile()
	}
	return interpreted{c}
}

// interpreted adapts a plain Classifier to the Compiled interface without
// changing its (allocating) evaluation path.
type interpreted struct{ c Classifier }

func (a interpreted) NumClasses() int { return a.c.NumClasses() }
func (a interpreted) ScoresInto(dst, features []float64) {
	copy(dst, a.c.Scores(features))
}
func (a interpreted) Predict(features []float64) int { return a.c.Predict(features) }

// ScoreBatch evaluates samples through a compiled model, writing
// samples[i]'s class scores into dst[i*k:(i+1)*k] where k = c.NumClasses().
// dst must have length len(samples)*k. The call performs no heap
// allocations.
func ScoreBatch(c Compiled, dst []float64, samples [][]float64) {
	k := c.NumClasses()
	if len(dst) != len(samples)*k {
		panic(fmt.Sprintf("ml: ScoreBatch dst has %d values, want %d samples x %d classes", len(dst), len(samples), k))
	}
	for i, s := range samples {
		c.ScoresInto(dst[i*k:(i+1)*k:(i+1)*k], s)
	}
}

// PredictBatch fills dst[i] with the predicted class of samples[i]. dst and
// samples must have equal length. The call performs no heap allocations.
func PredictBatch(c Compiled, dst []int, samples [][]float64) {
	if len(dst) != len(samples) {
		panic(fmt.Sprintf("ml: PredictBatch dst has %d slots, want %d", len(dst), len(samples)))
	}
	for i, s := range samples {
		dst[i] = c.Predict(s)
	}
}

// Argmax returns the index of the largest value, breaking ties toward the
// lower index. It returns -1 for an empty slice.
func Argmax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// BinaryEval bundles the paper's binary detection metrics: F-measure
// (detection rate), AUC (robustness) and their product (detection
// performance).
type BinaryEval struct {
	Confusion   metrics.Confusion
	F1          float64
	AUC         float64
	Performance float64
	Accuracy    float64
}

// PositiveClass is the label index treated as "malware" in binary tasks.
const PositiveClass = 1

// EvaluateBinary scores a two-class model on a test set, treating class 1
// as positive (malware).
func EvaluateBinary(c Classifier, test *dataset.Dataset) (BinaryEval, error) {
	if test.NumClasses() != 2 {
		return BinaryEval{}, fmt.Errorf("ml: binary evaluation on %d-class dataset", test.NumClasses())
	}
	if c.NumClasses() != 2 {
		return BinaryEval{}, fmt.Errorf("ml: binary evaluation of %d-class model", c.NumClasses())
	}
	if test.Len() == 0 {
		return BinaryEval{}, errors.New("ml: empty test set")
	}
	var conf metrics.Confusion
	scores := make([]float64, test.Len())
	labels := make([]bool, test.Len())
	for i, ins := range test.Instances {
		s := c.Scores(ins.Features)
		pred := Argmax(s)
		conf.Add(ins.Label == PositiveClass, pred == PositiveClass)
		// Ranking score: margin toward the positive class.
		denom := s[0] + s[1]
		if denom > 0 {
			scores[i] = s[1] / denom
		} else {
			scores[i] = 0.5
		}
		labels[i] = ins.Label == PositiveClass
	}
	auc, err := metrics.AUC(scores, labels)
	if err != nil {
		return BinaryEval{}, err
	}
	f1 := conf.F1()
	return BinaryEval{
		Confusion:   conf,
		F1:          f1,
		AUC:         auc,
		Performance: metrics.DetectionPerformance(f1, auc),
		Accuracy:    conf.Accuracy(),
	}, nil
}

// EvaluateMulti scores a k-class model on a test set.
func EvaluateMulti(c Classifier, test *dataset.Dataset) (*metrics.MultiConfusion, error) {
	if c.NumClasses() != test.NumClasses() {
		return nil, fmt.Errorf("ml: model has %d classes, test set %d", c.NumClasses(), test.NumClasses())
	}
	if test.Len() == 0 {
		return nil, errors.New("ml: empty test set")
	}
	mc := metrics.NewMultiConfusion(test.ClassNames)
	for _, ins := range test.Instances {
		if err := mc.Add(ins.Label, c.Predict(ins.Features)); err != nil {
			return nil, err
		}
	}
	return mc, nil
}

// TrainAndEvaluate is the standard protocol used throughout the
// experiments: split, train, evaluate binary detection metrics.
func TrainAndEvaluate(tr Trainer, d *dataset.Dataset, trainFrac float64, seed int64) (BinaryEval, error) {
	train, test, err := d.Split(trainFrac, seed)
	if err != nil {
		return BinaryEval{}, err
	}
	model, err := tr.Train(train)
	if err != nil {
		return BinaryEval{}, fmt.Errorf("ml: training %s: %w", tr.Name(), err)
	}
	return EvaluateBinary(model, test)
}
