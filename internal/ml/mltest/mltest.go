// Package mltest provides shared synthetic dataset generators for testing
// the learning algorithms: Gaussian blobs with controllable separation and
// the XOR problem for checking nonlinear capacity.
package mltest

import (
	"math/rand"

	"twosmart/internal/dataset"
)

// Gaussian2Class builds a binary dataset of n instances with dims features;
// class 1 instances are shifted by sep on every dimension. Class 0 and 1
// each get n/2 instances.
func Gaussian2Class(n, dims int, sep float64, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, dims)
	for i := range names {
		names[i] = featureName(i)
	}
	d := dataset.New(names, []string{"benign", "malware"})
	for i := 0; i < n; i++ {
		label := i % 2
		fv := make([]float64, dims)
		for j := range fv {
			fv[j] = rng.NormFloat64() + float64(label)*sep
		}
		d.Add(dataset.Instance{Features: fv, Label: label})
	}
	return d
}

// OneInformative builds a binary dataset where only feature `informative`
// carries signal (shift sep); all others are standard normal noise.
func OneInformative(n, dims, informative int, sep float64, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, dims)
	for i := range names {
		names[i] = featureName(i)
	}
	d := dataset.New(names, []string{"benign", "malware"})
	for i := 0; i < n; i++ {
		label := i % 2
		fv := make([]float64, dims)
		for j := range fv {
			fv[j] = rng.NormFloat64()
			if j == informative {
				fv[j] += float64(label) * sep
			}
		}
		d.Add(dataset.Instance{Features: fv, Label: label})
	}
	return d
}

// XOR builds the XOR problem in two dimensions with Gaussian noise: class 1
// iff the two coordinates have the same sign. No linear model can beat 50%.
func XOR(n int, noise float64, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New([]string{"x", "y"}, []string{"benign", "malware"})
	for i := 0; i < n; i++ {
		sx := 1.0
		if rng.Intn(2) == 0 {
			sx = -1
		}
		sy := 1.0
		if rng.Intn(2) == 0 {
			sy = -1
		}
		label := 0
		if sx*sy > 0 {
			label = 1
		}
		d.Add(dataset.Instance{
			Features: []float64{sx + rng.NormFloat64()*noise, sy + rng.NormFloat64()*noise},
			Label:    label,
		})
	}
	return d
}

// MultiClass builds a k-class dataset of Gaussian blobs placed sep apart
// along a diagonal in dims dimensions.
func MultiClass(n, k, dims int, sep float64, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, dims)
	for i := range names {
		names[i] = featureName(i)
	}
	classes := make([]string, k)
	for i := range classes {
		classes[i] = string(rune('a' + i))
	}
	d := dataset.New(names, classes)
	for i := 0; i < n; i++ {
		label := i % k
		fv := make([]float64, dims)
		for j := range fv {
			fv[j] = rng.NormFloat64() + float64(label)*sep
		}
		d.Add(dataset.Instance{Features: fv, Label: label})
	}
	return d
}

func featureName(i int) string {
	return "f" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}
