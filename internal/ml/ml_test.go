package ml

import (
	"math"
	"testing"

	"twosmart/internal/dataset"
	"twosmart/internal/ml/mltest"
)

// thresholdClassifier is a trivial binary stub: positive iff feature 0 > t.
type thresholdClassifier struct{ t float64 }

func (c thresholdClassifier) NumClasses() int { return 2 }
func (c thresholdClassifier) Scores(x []float64) []float64 {
	// Smooth score so ROC has many thresholds.
	s := 1 / (1 + math.Exp(-(x[0] - c.t)))
	return []float64{1 - s, s}
}
func (c thresholdClassifier) Predict(x []float64) int { return Argmax(c.Scores(x)) }

type thresholdTrainer struct{}

func (thresholdTrainer) Name() string { return "stub" }
func (thresholdTrainer) Train(d *dataset.Dataset) (Classifier, error) {
	return thresholdClassifier{t: 0.5}, nil
}

func TestArgmax(t *testing.T) {
	if Argmax(nil) != -1 {
		t.Fatal("empty argmax must be -1")
	}
	if Argmax([]float64{1, 3, 2}) != 1 {
		t.Fatal("argmax wrong")
	}
	if Argmax([]float64{2, 2}) != 0 {
		t.Fatal("ties must break low")
	}
}

func TestEvaluateBinaryOnSeparableData(t *testing.T) {
	d := mltest.Gaussian2Class(600, 3, 4.0, 1)
	ev, err := EvaluateBinary(thresholdClassifier{t: 2.0}, d)
	if err != nil {
		t.Fatal(err)
	}
	if ev.F1 < 0.9 {
		t.Fatalf("F1=%v on well-separated data", ev.F1)
	}
	if ev.AUC < 0.95 {
		t.Fatalf("AUC=%v on well-separated data", ev.AUC)
	}
	if math.Abs(ev.Performance-ev.F1*ev.AUC) > 1e-12 {
		t.Fatal("performance must be F1*AUC")
	}
	if ev.Confusion.Total() != 600 {
		t.Fatal("confusion total wrong")
	}
}

func TestEvaluateBinaryValidation(t *testing.T) {
	multi := mltest.MultiClass(30, 3, 2, 2, 1)
	if _, err := EvaluateBinary(thresholdClassifier{}, multi); err == nil {
		t.Fatal("multiclass test set accepted")
	}
	empty := dataset.New([]string{"a"}, []string{"x", "y"})
	if _, err := EvaluateBinary(thresholdClassifier{}, empty); err == nil {
		t.Fatal("empty test set accepted")
	}
}

func TestEvaluateMulti(t *testing.T) {
	d := mltest.Gaussian2Class(100, 2, 3, 2)
	mc, err := EvaluateMulti(thresholdClassifier{t: 1.5}, d)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Total() != 100 {
		t.Fatal("total wrong")
	}
	if mc.Accuracy() < 0.8 {
		t.Fatalf("accuracy=%v", mc.Accuracy())
	}
	multi := mltest.MultiClass(30, 3, 2, 2, 1)
	if _, err := EvaluateMulti(thresholdClassifier{}, multi); err == nil {
		t.Fatal("class-count mismatch accepted")
	}
}

func TestTrainAndEvaluate(t *testing.T) {
	d := mltest.Gaussian2Class(400, 2, 3, 3)
	ev, err := TrainAndEvaluate(thresholdTrainer{}, d, 0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ev.F1 < 0.8 {
		t.Fatalf("F1=%v", ev.F1)
	}
	if _, err := TrainAndEvaluate(thresholdTrainer{}, d, 1.5, 1); err == nil {
		t.Fatal("bad split fraction accepted")
	}
}
