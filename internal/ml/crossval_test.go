package ml

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"twosmart/internal/dataset"
	"twosmart/internal/ml/mltest"
)

func TestCrossValidateBasics(t *testing.T) {
	d := mltest.Gaussian2Class(300, 3, 3.0, 1)
	res, err := CrossValidate(thresholdTrainer{}, d, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 5 {
		t.Fatalf("folds=%d", len(res.Folds))
	}
	if res.MeanF < 0.8 {
		t.Fatalf("mean F=%v on separable data", res.MeanF)
	}
	if res.StdF < 0 || res.StdF > 0.5 {
		t.Fatalf("std F=%v", res.StdF)
	}
	if res.MeanPerf <= 0 {
		t.Fatal("mean performance missing")
	}
	// Every instance appears in exactly one test fold: total test size
	// across folds equals the dataset.
	total := 0
	for _, f := range res.Folds {
		total += f.Confusion.Total()
	}
	if total != d.Len() {
		t.Fatalf("fold tests cover %d instances, want %d", total, d.Len())
	}
}

func TestCrossValidateStratification(t *testing.T) {
	// Keep only every tenth positive (~9% positives): each of 5 folds
	// must still contain positives.
	d := mltest.Gaussian2Class(400, 2, 3.0, 2)
	positives := 0
	unbalanced := d.Filter(func(ins dataset.Instance) bool {
		if ins.Label == 0 {
			return true
		}
		positives++
		return positives%10 == 0
	})
	res, err := CrossValidate(thresholdTrainer{}, unbalanced, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range res.Folds {
		if f.Confusion.TP+f.Confusion.FN == 0 {
			t.Fatalf("fold %d has no positive instances (stratification broken)", i)
		}
	}
}

func TestCrossValidateValidation(t *testing.T) {
	d := mltest.Gaussian2Class(50, 2, 2.0, 4)
	if _, err := CrossValidate(thresholdTrainer{}, d, 1, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	tiny := mltest.Gaussian2Class(2, 2, 2.0, 5)
	if _, err := CrossValidate(thresholdTrainer{}, tiny, 10, 1); err == nil {
		t.Fatal("more folds than instances accepted")
	}
}

// Parallel fold training must be indistinguishable from the serial path:
// same folds, same per-fold metrics, same aggregates.
func TestCrossValidateParallelMatchesSerial(t *testing.T) {
	d := mltest.Gaussian2Class(300, 3, 2.0, 11)
	serial, err := crossValidate(context.Background(), thresholdTrainer{}, d, 6, 21, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := crossValidate(context.Background(), thresholdTrainer{}, d, 6, 21, runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Folds) != len(par.Folds) {
		t.Fatalf("fold counts differ: %d vs %d", len(serial.Folds), len(par.Folds))
	}
	for i := range serial.Folds {
		if serial.Folds[i] != par.Folds[i] {
			t.Fatalf("fold %d differs: serial=%+v parallel=%+v", i, serial.Folds[i], par.Folds[i])
		}
	}
	if serial.MeanF != par.MeanF || serial.StdF != par.StdF ||
		serial.MeanPerf != par.MeanPerf || serial.StdPerf != par.StdPerf {
		t.Fatalf("aggregates differ: serial=%+v parallel=%+v", serial, par)
	}
}

func TestCrossValidateCancellation(t *testing.T) {
	d := mltest.Gaussian2Class(200, 2, 2.0, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CrossValidateContext(ctx, thresholdTrainer{}, d, 5, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	d := mltest.Gaussian2Class(200, 2, 2.0, 6)
	a, err := CrossValidate(thresholdTrainer{}, d, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(thresholdTrainer{}, d, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Folds {
		if a.Folds[i].F1 != b.Folds[i].F1 {
			t.Fatal("cross-validation not deterministic")
		}
	}
}
