package nn

import (
	"math"

	"twosmart/internal/ml"
)

// compiledMLP is the flat lowering of a trained MLP. Two fusions make the
// hot path allocation-free and shorter than the interpreted network:
//
//   - the z-score standardisation is folded into the first-layer weights
//     (w'[h][j] = w[h][j]/sigma_j, b'[h] = b[h] - sum_j w[h][j]*mu_j/sigma_j),
//     so raw feature vectors feed the matrix directly — no standardised
//     copy of the input is ever materialised;
//   - both weight matrices are flattened into contiguous row-major slabs
//     walked with a running offset, and the hidden activations live in a
//     scratch arena owned by the evaluator.
//
// Folding re-associates a handful of floating-point operations, so scores
// can differ from the interpreted model in the last ulps; predictions are
// verified identical by the randomized equivalence test in internal/ml.
type compiledMLP struct {
	in, hidden, k int
	w1            []float64 // hidden x in, standardisation folded in
	b1            []float64 // hidden
	w2            []float64 // k x hidden
	b2            []float64 // k
	hid           []float64 // scratch: hidden activations
	scratch       []float64 // scratch: class scores for Predict
}

// Compile implements ml.Compilable.
func (m *mlp) Compile() ml.Compiled {
	hidden := len(m.w1)
	in := len(m.w1[0]) - 1
	k := len(m.w2)
	c := &compiledMLP{
		in: in, hidden: hidden, k: k,
		w1:      make([]float64, hidden*in),
		b1:      make([]float64, hidden),
		w2:      make([]float64, k*hidden),
		b2:      make([]float64, k),
		hid:     make([]float64, hidden),
		scratch: make([]float64, k),
	}
	for h, row := range m.w1 {
		bias := row[in]
		for j := 0; j < in; j++ {
			c.w1[h*in+j] = row[j] / m.scaler.Stds[j]
			bias -= row[j] * m.scaler.Means[j] / m.scaler.Stds[j]
		}
		c.b1[h] = bias
	}
	for o, row := range m.w2 {
		copy(c.w2[o*hidden:(o+1)*hidden], row[:hidden])
		c.b2[o] = row[hidden]
	}
	return c
}

// NumClasses implements ml.Compiled.
func (m *compiledMLP) NumClasses() int { return m.k }

// ScoresInto implements ml.Compiled: fused standardise + hidden layer +
// output softmax over raw features.
func (m *compiledMLP) ScoresInto(dst, features []float64) {
	off := 0
	for h := 0; h < m.hidden; h++ {
		s := m.b1[h]
		row := m.w1[off : off+m.in : off+m.in]
		for j, x := range features[:m.in] {
			s += row[j] * x
		}
		m.hid[h] = 1 / (1 + math.Exp(-s))
		off += m.in
	}
	maxLogit := math.Inf(-1)
	off = 0
	for c := 0; c < m.k; c++ {
		s := m.b2[c]
		row := m.w2[off : off+m.hidden : off+m.hidden]
		for h, a := range m.hid {
			s += row[h] * a
		}
		dst[c] = s
		if s > maxLogit {
			maxLogit = s
		}
		off += m.hidden
	}
	var sum float64
	for c := 0; c < m.k; c++ {
		dst[c] = math.Exp(dst[c] - maxLogit)
		sum += dst[c]
	}
	for c := 0; c < m.k; c++ {
		dst[c] /= sum
	}
}

// Predict implements ml.Compiled.
func (m *compiledMLP) Predict(features []float64) int {
	m.ScoresInto(m.scratch, features)
	return ml.Argmax(m.scratch)
}
