package nn

import (
	"math"
	"testing"

	"twosmart/internal/ml"
	"twosmart/internal/ml/mltest"
)

func TestMLPSeparable(t *testing.T) {
	d := mltest.Gaussian2Class(600, 4, 3.0, 1)
	ev, err := ml.TrainAndEvaluate(&MLPTrainer{Epochs: 60, Seed: 1}, d, 0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ev.F1 < 0.9 {
		t.Fatalf("MLP F1=%v", ev.F1)
	}
}

func TestMLPSolvesXOR(t *testing.T) {
	d := mltest.XOR(800, 0.2, 3)
	ev, err := ml.TrainAndEvaluate(&MLPTrainer{Hidden: 8, Epochs: 150, Seed: 2}, d, 0.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ev.F1 < 0.9 {
		t.Fatalf("MLP F1=%v on XOR; a hidden layer should solve it", ev.F1)
	}
}

func TestMLPMulticlass(t *testing.T) {
	d := mltest.MultiClass(600, 4, 3, 3.0, 5)
	model, err := (&MLPTrainer{Epochs: 80, Seed: 3}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ml.EvaluateMulti(model, d)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Accuracy() < 0.85 {
		t.Fatalf("multiclass accuracy=%v", mc.Accuracy())
	}
}

func TestMLPScoresAreProbabilities(t *testing.T) {
	d := mltest.Gaussian2Class(200, 3, 2.0, 6)
	model, err := (&MLPTrainer{Epochs: 30, Seed: 4}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range d.Instances[:20] {
		s := model.Scores(ins.Features)
		var sum float64
		for _, v := range s {
			if v < 0 || v > 1 {
				t.Fatalf("probability %v outside [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("softmax sums to %v", sum)
		}
	}
}

func TestMLPDeterministicInSeed(t *testing.T) {
	d := mltest.Gaussian2Class(200, 3, 1.5, 7)
	a, _ := (&MLPTrainer{Epochs: 20, Seed: 9}).Train(d)
	b, _ := (&MLPTrainer{Epochs: 20, Seed: 9}).Train(d)
	c, _ := (&MLPTrainer{Epochs: 20, Seed: 10}).Train(d)
	sameAB, sameAC := true, true
	for _, ins := range d.Instances[:50] {
		sa, sb, sc := a.Scores(ins.Features), b.Scores(ins.Features), c.Scores(ins.Features)
		if math.Abs(sa[1]-sb[1]) > 1e-12 {
			sameAB = false
		}
		if math.Abs(sa[1]-sc[1]) > 1e-12 {
			sameAC = false
		}
	}
	if !sameAB {
		t.Fatal("same-seed MLPs disagree")
	}
	if sameAC {
		t.Fatal("different-seed MLPs identical")
	}
}

func TestMLPComplexity(t *testing.T) {
	d := mltest.Gaussian2Class(100, 5, 2.0, 8)
	model, err := (&MLPTrainer{Hidden: 7, Epochs: 5, Seed: 1}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	in, hid, out, ok := Complexity(model)
	if !ok {
		t.Fatal("Complexity failed")
	}
	if in != 5 || hid != 7 || out != 2 {
		t.Fatalf("complexity=(%d,%d,%d), want (5,7,2)", in, hid, out)
	}
}

func TestMLPDefaultHiddenHeuristic(t *testing.T) {
	d := mltest.Gaussian2Class(100, 6, 2.0, 9)
	model, err := (&MLPTrainer{Epochs: 5, Seed: 1}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	_, hid, _, _ := Complexity(model)
	if hid != 4 { // (6+2)/2
		t.Fatalf("default hidden=%d, want 4", hid)
	}
}

func TestMLPEmptyDataset(t *testing.T) {
	d := mltest.Gaussian2Class(0, 2, 1, 1)
	if _, err := (&MLPTrainer{}).Train(d); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestMLPDropoutValidation(t *testing.T) {
	d := mltest.Gaussian2Class(100, 2, 2.0, 10)
	if _, err := (&MLPTrainer{Dropout: -0.1, Epochs: 2}).Train(d); err == nil {
		t.Fatal("negative dropout accepted")
	}
	if _, err := (&MLPTrainer{Dropout: 0.95, Epochs: 2}).Train(d); err == nil {
		t.Fatal("dropout near 1 accepted")
	}
	if _, err := (&MLPTrainer{Dropout: 0.3, Epochs: 2, Seed: 1}).Train(d); err != nil {
		t.Fatal(err)
	}
}

func TestMLPDropoutStillLearns(t *testing.T) {
	d := mltest.Gaussian2Class(500, 4, 3.0, 11)
	ev, err := ml.TrainAndEvaluate(&MLPTrainer{Dropout: 0.3, Epochs: 80, Seed: 2}, d, 0.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ev.F1 < 0.85 {
		t.Fatalf("dropout MLP F1=%v", ev.F1)
	}
}

// Dropout regularises: on wide noisy inputs with a small training set (the
// paper's MLP-overfits-with-16-HPCs setting) it must not hurt, and on the
// training data the dropout network must fit *less* tightly than the plain
// one (the signature of regularisation).
func TestMLPDropoutRegularises(t *testing.T) {
	d := mltest.OneInformative(140, 16, 0, 1.2, 12)
	train, _, err := d.Split(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := (&MLPTrainer{Hidden: 24, Epochs: 220, Seed: 3}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := (&MLPTrainer{Hidden: 24, Epochs: 220, Seed: 3, Dropout: 0.5}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	trainAcc := func(m ml.Classifier) float64 {
		ok := 0
		for _, ins := range train.Instances {
			if m.Predict(ins.Features) == ins.Label {
				ok++
			}
		}
		return float64(ok) / float64(train.Len())
	}
	if trainAcc(dropped) > trainAcc(plain)+1e-9 {
		t.Fatalf("dropout fit the training data tighter (%.3f) than plain (%.3f)",
			trainAcc(dropped), trainAcc(plain))
	}
}
