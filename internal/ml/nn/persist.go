package nn

import (
	"encoding/json"
	"errors"

	"twosmart/internal/dataset"
	"twosmart/internal/ml"
)

type mlpDTO struct {
	Means      []float64   `json:"means"`
	Stds       []float64   `json:"stds"`
	W1         [][]float64 `json:"w1"`
	W2         [][]float64 `json:"w2"`
	NumClasses int         `json:"num_classes"`
}

// Marshal serialises an MLP model to JSON; it reports false if c is not an
// MLP model.
func Marshal(c ml.Classifier) ([]byte, bool, error) {
	m, ok := c.(*mlp)
	if !ok {
		return nil, false, nil
	}
	data, err := json.Marshal(mlpDTO{
		Means: m.scaler.Means, Stds: m.scaler.Stds,
		W1: m.w1, W2: m.w2, NumClasses: m.numClasses,
	})
	return data, true, err
}

// Unmarshal reconstructs an MLP model serialised by Marshal.
func Unmarshal(data []byte) (ml.Classifier, error) {
	var dto mlpDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, err
	}
	if len(dto.W1) == 0 || len(dto.W2) == 0 {
		return nil, errors.New("nn: empty weight matrices")
	}
	in := len(dto.W1[0]) - 1
	if len(dto.Means) != in || len(dto.Stds) != in {
		return nil, errors.New("nn: scaler width does not match input layer")
	}
	hidden := len(dto.W1)
	for _, row := range dto.W2 {
		if len(row) != hidden+1 {
			return nil, errors.New("nn: output layer width does not match hidden layer")
		}
	}
	if dto.NumClasses != len(dto.W2) {
		return nil, errors.New("nn: class count does not match output layer")
	}
	return &mlp{
		scaler:     &dataset.Scaler{Means: dto.Means, Stds: dto.Stds},
		w1:         dto.W1,
		w2:         dto.W2,
		numClasses: dto.NumClasses,
	}, nil
}
