// Package nn implements the multilayer perceptron (WEKA's
// MultilayerPerceptron with one hidden layer): sigmoid hidden units, a
// softmax output layer trained by stochastic gradient descent with
// momentum on cross-entropy loss, with z-score input standardisation fitted
// on the training set.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"twosmart/internal/dataset"
	"twosmart/internal/ml"
)

// MLPTrainer trains a single-hidden-layer perceptron.
type MLPTrainer struct {
	// Hidden is the hidden layer width; 0 uses WEKA's 'a' heuristic,
	// (features + classes) / 2, with a floor of 3.
	Hidden int
	// Epochs is the number of training passes (default 120).
	Epochs int
	// LearningRate (default 0.3) and Momentum (default 0.2) are WEKA's
	// defaults.
	LearningRate float64
	Momentum     float64
	// Dropout is the hidden-unit dropout probability in [0, 0.9]
	// (default 0 — plain WEKA behaviour). The paper notes MLP overfits
	// with many HPC features and that "techniques such as dropout can
	// be employed, but at the cost of additional overhead"; this knob
	// implements that suggestion (inverted dropout: activations are
	// scaled during training, inference is unchanged).
	Dropout float64
	// Seed drives weight initialisation, epoch shuffling and dropout
	// masks.
	Seed int64
}

// Name implements ml.Trainer.
func (t *MLPTrainer) Name() string { return "MLP" }

type mlp struct {
	scaler *dataset.Scaler
	// w1[h][in+1]: hidden weights with trailing bias; w2[k][hidden+1].
	w1, w2     [][]float64
	numClasses int
}

// Train implements ml.Trainer.
func (t *MLPTrainer) Train(d *dataset.Dataset) (ml.Classifier, error) {
	if d.Len() == 0 {
		return nil, errors.New("nn: MLP on empty dataset")
	}
	in := d.NumFeatures()
	k := d.NumClasses()
	hidden := t.Hidden
	if hidden <= 0 {
		hidden = (in + k) / 2
		if hidden < 3 {
			hidden = 3
		}
	}
	epochs := t.Epochs
	if epochs <= 0 {
		epochs = 120
	}
	lr := t.LearningRate
	if lr <= 0 {
		lr = 0.3
	}
	mom := t.Momentum
	if mom < 0 {
		mom = 0
	} else if mom == 0 {
		mom = 0.2
	}

	scaler := dataset.FitScaler(d)
	std := scaler.Apply(d)

	rng := rand.New(rand.NewSource(t.Seed + 17))
	m := &mlp{scaler: scaler, numClasses: k}
	m.w1 = randWeights(rng, hidden, in+1)
	m.w2 = randWeights(rng, k, hidden+1)
	dw1 := zeros(hidden, in+1)
	dw2 := zeros(k, hidden+1)

	dropout := t.Dropout
	if dropout < 0 || dropout > 0.9 {
		return nil, fmt.Errorf("nn: dropout %v outside [0, 0.9]", dropout)
	}
	dropScale := 1.0
	if dropout > 0 {
		dropScale = 1 / (1 - dropout)
	}

	order := make([]int, std.Len())
	for i := range order {
		order[i] = i
	}
	hiddenOut := make([]float64, hidden+1) // post-dropout activations (+bias)
	sig := make([]float64, hidden)         // raw sigmoid activations
	keep := make([]bool, hidden)
	outDelta := make([]float64, k)
	hidDelta := make([]float64, hidden)
	probs := make([]float64, k)

	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		// Learning-rate decay keeps late epochs from oscillating.
		eta := lr / (1 + float64(epoch)/float64(epochs))
		for _, idx := range order {
			ins := std.Instances[idx]

			// Forward with inverted dropout on the hidden layer.
			for h := 0; h < hidden; h++ {
				w := m.w1[h]
				s := w[in] // bias
				for j, x := range ins.Features {
					s += w[j] * x
				}
				a := 1 / (1 + math.Exp(-s))
				sig[h] = a
				if dropout > 0 && rng.Float64() < dropout {
					keep[h] = false
					hiddenOut[h] = 0
				} else {
					keep[h] = true
					hiddenOut[h] = a * dropScale
				}
			}
			hiddenOut[hidden] = 1
			m.outputSoftmax(hiddenOut, probs)

			// Output deltas: softmax + cross entropy.
			for c := 0; c < k; c++ {
				target := 0.0
				if c == ins.Label {
					target = 1
				}
				outDelta[c] = probs[c] - target
			}
			// Hidden deltas: gradient flows only through kept units.
			for h := 0; h < hidden; h++ {
				if !keep[h] {
					hidDelta[h] = 0
					continue
				}
				var s float64
				for c := 0; c < k; c++ {
					s += outDelta[c] * m.w2[c][h]
				}
				hidDelta[h] = s * dropScale * sig[h] * (1 - sig[h])
			}
			// Weight updates with momentum.
			for c := 0; c < k; c++ {
				for h := 0; h <= hidden; h++ {
					dw2[c][h] = mom*dw2[c][h] - eta*outDelta[c]*hiddenOut[h]
					m.w2[c][h] += dw2[c][h]
				}
			}
			for h := 0; h < hidden; h++ {
				for j := 0; j < in; j++ {
					dw1[h][j] = mom*dw1[h][j] - eta*hidDelta[h]*ins.Features[j]
					m.w1[h][j] += dw1[h][j]
				}
				dw1[h][in] = mom*dw1[h][in] - eta*hidDelta[h]
				m.w1[h][in] += dw1[h][in]
			}
		}
	}
	return m, nil
}

func randWeights(rng *rand.Rand, rows, cols int) [][]float64 {
	w := make([][]float64, rows)
	scale := 1 / math.Sqrt(float64(cols))
	for i := range w {
		w[i] = make([]float64, cols)
		for j := range w[i] {
			w[i][j] = rng.NormFloat64() * scale
		}
	}
	return w
}

func zeros(rows, cols int) [][]float64 {
	w := make([][]float64, rows)
	for i := range w {
		w[i] = make([]float64, cols)
	}
	return w
}

// forward computes the network output for standardised features; hiddenOut
// must have length hidden+1 and receives the hidden activations plus a
// trailing 1 for the bias.
func (m *mlp) forward(stdFeatures []float64, hiddenOut []float64) []float64 {
	hidden := len(m.w1)
	for h := 0; h < hidden; h++ {
		w := m.w1[h]
		s := w[len(w)-1] // bias
		for j, x := range stdFeatures {
			s += w[j] * x
		}
		hiddenOut[h] = 1 / (1 + math.Exp(-s))
	}
	hiddenOut[hidden] = 1
	probs := make([]float64, len(m.w2))
	m.outputSoftmax(hiddenOut, probs)
	return probs
}

// outputSoftmax fills probs with the softmax of the output layer applied to
// the (bias-extended) hidden activations.
func (m *mlp) outputSoftmax(hiddenOut []float64, probs []float64) {
	maxLogit := math.Inf(-1)
	for c := range m.w2 {
		var s float64
		for h, a := range hiddenOut {
			s += m.w2[c][h] * a
		}
		probs[c] = s
		if s > maxLogit {
			maxLogit = s
		}
	}
	var sum float64
	for c := range probs {
		probs[c] = math.Exp(probs[c] - maxLogit)
		sum += probs[c]
	}
	for c := range probs {
		probs[c] /= sum
	}
}

// NumClasses implements ml.Classifier.
func (m *mlp) NumClasses() int { return m.numClasses }

// Scores implements ml.Classifier.
func (m *mlp) Scores(features []float64) []float64 {
	std := append([]float64(nil), features...)
	m.scaler.Transform(std)
	hiddenOut := make([]float64, len(m.w1)+1)
	return m.forward(std, hiddenOut)
}

// Predict implements ml.Classifier.
func (m *mlp) Predict(features []float64) int { return ml.Argmax(m.Scores(features)) }

// Complexity reports the layer widths of an MLP model, if c is one (used by
// the hardware cost model).
func Complexity(c ml.Classifier) (inputs, hidden, outputs int, ok bool) {
	m, isMLP := c.(*mlp)
	if !isMLP {
		return 0, 0, 0, false
	}
	return len(m.w1[0]) - 1, len(m.w1), len(m.w2), true
}
