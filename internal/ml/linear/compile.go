package linear

import (
	"math"

	"twosmart/internal/ml"
)

// compiledMLR is the fused linear+softmax lowering of a trained MLR model:
// the z-score standardisation is folded into the weight matrix
// (w'[c][j] = w[c][j]/sigma_j, b'[c] = b[c] - sum_j w[c][j]*mu_j/sigma_j),
// the matrix is one contiguous row-major slab, and the softmax writes
// straight into the caller's destination — no standardised input copy and
// no per-call allocation. Folding re-associates a few floating-point
// operations, so scores can differ in the last ulps; predictions are
// verified identical by the randomized equivalence test in internal/ml.
type compiledMLR struct {
	in, k   int
	w       []float64 // k x in, standardisation folded in
	b       []float64 // k
	scratch []float64 // class scores for Predict
}

// Compile implements ml.Compilable.
func (m *mlr) Compile() ml.Compiled {
	k := len(m.w)
	in := len(m.w[0]) - 1
	c := &compiledMLR{
		in: in, k: k,
		w:       make([]float64, k*in),
		b:       make([]float64, k),
		scratch: make([]float64, k),
	}
	for o, row := range m.w {
		bias := row[in]
		for j := 0; j < in; j++ {
			c.w[o*in+j] = row[j] / m.scaler.Stds[j]
			bias -= row[j] * m.scaler.Means[j] / m.scaler.Stds[j]
		}
		c.b[o] = bias
	}
	return c
}

// NumClasses implements ml.Compiled.
func (m *compiledMLR) NumClasses() int { return m.k }

// ScoresInto implements ml.Compiled: calibrated class probabilities.
func (m *compiledMLR) ScoresInto(dst, features []float64) {
	maxLogit := math.Inf(-1)
	off := 0
	for c := 0; c < m.k; c++ {
		s := m.b[c]
		row := m.w[off : off+m.in : off+m.in]
		for j, x := range features[:m.in] {
			s += row[j] * x
		}
		dst[c] = s
		if s > maxLogit {
			maxLogit = s
		}
		off += m.in
	}
	var sum float64
	for c := 0; c < m.k; c++ {
		dst[c] = math.Exp(dst[c] - maxLogit)
		sum += dst[c]
	}
	for c := 0; c < m.k; c++ {
		dst[c] /= sum
	}
}

// Predict implements ml.Compiled.
func (m *compiledMLR) Predict(features []float64) int {
	m.ScoresInto(m.scratch, features)
	return ml.Argmax(m.scratch)
}
