package linear

import (
	"math"
	"testing"

	"twosmart/internal/ml"
	"twosmart/internal/ml/mltest"
)

func TestMLRSeparable(t *testing.T) {
	d := mltest.Gaussian2Class(600, 4, 3.0, 1)
	ev, err := ml.TrainAndEvaluate(&MLRTrainer{Epochs: 80, Seed: 1}, d, 0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ev.F1 < 0.9 {
		t.Fatalf("MLR F1=%v", ev.F1)
	}
}

func TestMLRMulticlass(t *testing.T) {
	d := mltest.MultiClass(750, 5, 3, 3.0, 3)
	model, err := (&MLRTrainer{Epochs: 100, Seed: 2}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ml.EvaluateMulti(model, d)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Accuracy() < 0.85 {
		t.Fatalf("multiclass accuracy=%v", mc.Accuracy())
	}
}

func TestMLRIsLinear(t *testing.T) {
	// XOR is not linearly separable: a correct MLR implementation cannot
	// do much better than chance.
	d := mltest.XOR(800, 0.2, 4)
	model, err := (&MLRTrainer{Epochs: 100, Seed: 3}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, ins := range d.Instances {
		if model.Predict(ins.Features) == ins.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(d.Len()); acc > 0.65 {
		t.Fatalf("MLR accuracy %v on XOR; a linear model should fail", acc)
	}
}

func TestMLRScoresAreProbabilities(t *testing.T) {
	d := mltest.MultiClass(300, 3, 2, 2.0, 5)
	model, err := (&MLRTrainer{Epochs: 40, Seed: 4}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range d.Instances[:20] {
		s := model.Scores(ins.Features)
		var sum float64
		for _, v := range s {
			if v < 0 || v > 1 {
				t.Fatalf("probability %v outside [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("softmax sums to %v", sum)
		}
	}
}

func TestMLRComplexity(t *testing.T) {
	d := mltest.MultiClass(120, 3, 4, 2.0, 6)
	model, err := (&MLRTrainer{Epochs: 10, Seed: 1}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	in, out, ok := Complexity(model)
	if !ok || in != 4 || out != 3 {
		t.Fatalf("complexity=(%d,%d,%v), want (4,3,true)", in, out, ok)
	}
}

func TestMLRDeterministicInSeed(t *testing.T) {
	d := mltest.Gaussian2Class(200, 3, 1.5, 7)
	a, _ := (&MLRTrainer{Epochs: 20, Seed: 5}).Train(d)
	b, _ := (&MLRTrainer{Epochs: 20, Seed: 5}).Train(d)
	for _, ins := range d.Instances[:50] {
		if math.Abs(a.Scores(ins.Features)[1]-b.Scores(ins.Features)[1]) > 1e-12 {
			t.Fatal("same-seed MLR models disagree")
		}
	}
}

func TestMLREmptyDataset(t *testing.T) {
	d := mltest.Gaussian2Class(0, 2, 1, 1)
	if _, err := (&MLRTrainer{}).Train(d); err == nil {
		t.Fatal("empty dataset accepted")
	}
}
