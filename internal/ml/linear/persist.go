package linear

import (
	"encoding/json"
	"errors"

	"twosmart/internal/dataset"
	"twosmart/internal/ml"
)

type mlrDTO struct {
	Means      []float64   `json:"means"`
	Stds       []float64   `json:"stds"`
	W          [][]float64 `json:"w"`
	NumClasses int         `json:"num_classes"`
}

// Marshal serialises an MLR model to JSON; it reports false if c is not an
// MLR model.
func Marshal(c ml.Classifier) ([]byte, bool, error) {
	m, ok := c.(*mlr)
	if !ok {
		return nil, false, nil
	}
	data, err := json.Marshal(mlrDTO{
		Means: m.scaler.Means, Stds: m.scaler.Stds,
		W: m.w, NumClasses: m.numClasses,
	})
	return data, true, err
}

// Unmarshal reconstructs an MLR model serialised by Marshal.
func Unmarshal(data []byte) (ml.Classifier, error) {
	var dto mlrDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, err
	}
	if len(dto.W) == 0 || dto.NumClasses != len(dto.W) {
		return nil, errors.New("linear: weight matrix does not match class count")
	}
	in := len(dto.W[0]) - 1
	if in < 0 || len(dto.Means) != in || len(dto.Stds) != in {
		return nil, errors.New("linear: scaler width does not match weights")
	}
	for _, row := range dto.W {
		if len(row) != in+1 {
			return nil, errors.New("linear: ragged weight matrix")
		}
	}
	return &mlr{
		scaler:     &dataset.Scaler{Means: dto.Means, Stds: dto.Stds},
		w:          dto.W,
		numClasses: dto.NumClasses,
	}, nil
}
