// Package linear implements multinomial logistic regression (MLR), the
// generalised linear model 2SMaRT uses as its stage-1 multiclass
// application-type predictor: softmax over per-class linear scores, trained
// by gradient descent on L2-regularised cross-entropy with z-score input
// standardisation.
package linear

import (
	"errors"
	"math"
	"math/rand"

	"twosmart/internal/dataset"
	"twosmart/internal/ml"
)

// MLRTrainer trains a multinomial logistic regression model.
type MLRTrainer struct {
	// Epochs is the number of SGD passes (default 200).
	Epochs int
	// LearningRate is the initial step size (default 0.1).
	LearningRate float64
	// L2 is the ridge penalty (default 1e-4).
	L2 float64
	// Seed drives epoch shuffling.
	Seed int64
}

// Name implements ml.Trainer.
func (t *MLRTrainer) Name() string { return "MLR" }

type mlr struct {
	scaler *dataset.Scaler
	// w[c][j] with trailing bias at j = numFeatures.
	w          [][]float64
	numClasses int
}

// Train implements ml.Trainer.
func (t *MLRTrainer) Train(d *dataset.Dataset) (ml.Classifier, error) {
	if d.Len() == 0 {
		return nil, errors.New("linear: MLR on empty dataset")
	}
	epochs := t.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	lr := t.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	l2 := t.L2
	if l2 < 0 {
		l2 = 0
	} else if l2 == 0 {
		l2 = 1e-4
	}

	in := d.NumFeatures()
	k := d.NumClasses()
	scaler := dataset.FitScaler(d)
	std := scaler.Apply(d)

	m := &mlr{scaler: scaler, numClasses: k}
	m.w = make([][]float64, k)
	for c := range m.w {
		m.w[c] = make([]float64, in+1)
	}

	rng := rand.New(rand.NewSource(t.Seed + 29))
	order := make([]int, std.Len())
	for i := range order {
		order[i] = i
	}
	probs := make([]float64, k)
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		eta := lr / (1 + float64(epoch)/50)
		for _, idx := range order {
			ins := std.Instances[idx]
			m.softmax(ins.Features, probs)
			for c := 0; c < k; c++ {
				target := 0.0
				if c == ins.Label {
					target = 1
				}
				g := probs[c] - target
				w := m.w[c]
				for j, x := range ins.Features {
					w[j] -= eta * (g*x + l2*w[j])
				}
				w[in] -= eta * g // bias: unregularised
			}
		}
	}
	return m, nil
}

// softmax fills probs with the class probabilities of standardised
// features.
func (m *mlr) softmax(stdFeatures []float64, probs []float64) {
	in := len(stdFeatures)
	maxLogit := math.Inf(-1)
	for c := range m.w {
		w := m.w[c]
		s := w[in]
		for j, x := range stdFeatures {
			s += w[j] * x
		}
		probs[c] = s
		if s > maxLogit {
			maxLogit = s
		}
	}
	var sum float64
	for c := range probs {
		probs[c] = math.Exp(probs[c] - maxLogit)
		sum += probs[c]
	}
	for c := range probs {
		probs[c] /= sum
	}
}

// NumClasses implements ml.Classifier.
func (m *mlr) NumClasses() int { return m.numClasses }

// Scores implements ml.Classifier: calibrated class probabilities.
func (m *mlr) Scores(features []float64) []float64 {
	std := append([]float64(nil), features...)
	m.scaler.Transform(std)
	probs := make([]float64, m.numClasses)
	m.softmax(std, probs)
	return probs
}

// Predict implements ml.Classifier.
func (m *mlr) Predict(features []float64) int { return ml.Argmax(m.Scores(features)) }

// Complexity reports the weight-matrix shape of an MLR model, if c is one
// (used by the hardware cost model).
func Complexity(c ml.Classifier) (inputs, outputs int, ok bool) {
	m, isMLR := c.(*mlr)
	if !isMLR {
		return 0, 0, false
	}
	return len(m.w[0]) - 1, len(m.w), true
}
