package ml

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"twosmart/internal/dataset"
	"twosmart/internal/parallel"
	"twosmart/internal/telemetry"
)

// CVResult summarises a k-fold cross-validation: per-fold binary
// evaluations plus their mean and standard deviation of F-measure and
// detection performance.
type CVResult struct {
	Folds    []BinaryEval
	MeanF    float64
	StdF     float64
	MeanPerf float64
	StdPerf  float64
}

// CrossValidate performs stratified k-fold cross-validation of a trainer on
// a binary dataset: each class's instances are shuffled (deterministically
// in seed) and dealt round-robin into k folds, so every fold preserves the
// class imbalance. The paper uses a single 60/40 split; cross-validation is
// provided for variance estimates on small corpora. It is
// CrossValidateContext without cancellation.
func CrossValidate(tr Trainer, d *dataset.Dataset, k int, seed int64) (*CVResult, error) {
	return CrossValidateContext(context.Background(), tr, d, k, seed)
}

// CrossValidateContext is CrossValidate with cancellation. Folds train
// concurrently on a bounded pool (up to NumCPU workers); fold assignment is
// fixed before the fan-out and every evaluation lands at its fold index, so
// the result is identical to a serial run for the same seed. The Trainer
// must be safe for concurrent Train calls — every trainer in this
// repository is, since Train only reads the receiver's hyperparameters and
// builds local state. When ctx carries a telemetry registry
// (telemetry.NewContext), each fold's train+evaluate time lands in the
// ml_cv_fold_seconds histogram and the fold pool reports under the "cv"
// prefix.
func CrossValidateContext(ctx context.Context, tr Trainer, d *dataset.Dataset, k int, seed int64) (*CVResult, error) {
	return crossValidate(ctx, tr, d, k, seed, 0)
}

// crossValidate is the shared implementation; workers <= 0 means NumCPU
// (tests pin workers to compare against the serial path).
func crossValidate(ctx context.Context, tr Trainer, d *dataset.Dataset, k int, seed int64, workers int) (*CVResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("ml: cross-validation needs k >= 2, got %d", k)
	}
	if d.Len() < k {
		return nil, fmt.Errorf("ml: %d instances cannot fill %d folds", d.Len(), k)
	}
	// Stratified round-robin assignment, fixed before the fan-out so the
	// folds do not depend on scheduling.
	rng := rand.New(rand.NewSource(seed))
	foldOf := make([]int, d.Len())
	byClass := make(map[int][]int)
	for i, ins := range d.Instances {
		byClass[ins.Label] = append(byClass[ins.Label], i)
	}
	next := 0
	for label := 0; label < d.NumClasses(); label++ {
		idxs := byClass[label]
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		for _, idx := range idxs {
			foldOf[idx] = next % k
			next++
		}
	}

	reg := telemetry.FromContext(ctx)
	foldTime := reg.Histogram("ml_cv_fold_seconds", telemetry.LatencyBuckets)
	popts := parallel.Options{Workers: workers}
	if reg.Enabled() {
		popts.Hook = telemetry.NewPoolHook(reg, "cv")
	}
	folds, err := parallel.Map(ctx, k, popts,
		func(ctx context.Context, fold int) (BinaryEval, error) {
			var t0 time.Time
			if reg.Enabled() {
				t0 = time.Now()
				defer func() { foldTime.ObserveDuration(time.Since(t0)) }()
			}
			train := dataset.New(d.FeatureNames, d.ClassNames)
			test := dataset.New(d.FeatureNames, d.ClassNames)
			for i, ins := range d.Instances {
				if foldOf[i] == fold {
					test.Instances = append(test.Instances, ins)
				} else {
					train.Instances = append(train.Instances, ins)
				}
			}
			model, err := tr.Train(train)
			if err != nil {
				return BinaryEval{}, fmt.Errorf("ml: fold %d: %w", fold, err)
			}
			ev, err := EvaluateBinary(model, test)
			if err != nil {
				return BinaryEval{}, fmt.Errorf("ml: fold %d: %w", fold, err)
			}
			return ev, nil
		})
	if err != nil {
		return nil, err
	}

	res := &CVResult{Folds: folds}
	res.MeanF, res.StdF = meanStd(res.Folds, func(e BinaryEval) float64 { return e.F1 })
	res.MeanPerf, res.StdPerf = meanStd(res.Folds, func(e BinaryEval) float64 { return e.Performance })
	return res, nil
}

func meanStd(folds []BinaryEval, get func(BinaryEval) float64) (mean, std float64) {
	for _, f := range folds {
		mean += get(f)
	}
	mean /= float64(len(folds))
	for _, f := range folds {
		d := get(f) - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(folds)))
}
