// Package bayes implements Gaussian Naive Bayes, an extension beyond the
// paper's four stage-2 algorithms. The paper's companion studies by the
// same group (DAC'18, CF'18) include Bayesian learners in their "diverse
// range of ML classifiers"; this package lets the repository's sweeps be
// extended the same way (see BenchmarkExtendedModelZoo).
package bayes

import (
	"errors"
	"math"

	"twosmart/internal/dataset"
	"twosmart/internal/ml"
)

// NBTrainer trains a Gaussian Naive Bayes classifier: per class, each
// feature is modelled as an independent normal distribution; prediction
// maximises the log posterior with the class priors from the training set.
type NBTrainer struct {
	// VarianceFloor prevents degenerate zero-variance features
	// (default 1e-9 relative to the feature's global variance).
	VarianceFloor float64
}

// Name implements ml.Trainer.
func (t *NBTrainer) Name() string { return "NaiveBayes" }

type naiveBayes struct {
	logPriors []float64
	// means[class][feature], variances[class][feature]
	means      [][]float64
	variances  [][]float64
	numClasses int
}

// Train implements ml.Trainer.
func (t *NBTrainer) Train(d *dataset.Dataset) (ml.Classifier, error) {
	if d.Len() == 0 {
		return nil, errors.New("bayes: training on empty dataset")
	}
	k := d.NumClasses()
	nf := d.NumFeatures()
	floor := t.VarianceFloor
	if floor <= 0 {
		floor = 1e-9
	}

	counts := make([]float64, k)
	means := alloc2(k, nf)
	for _, ins := range d.Instances {
		counts[ins.Label]++
		for j, v := range ins.Features {
			means[ins.Label][j] += v
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := 0; j < nf; j++ {
			means[c][j] /= counts[c]
		}
	}
	variances := alloc2(k, nf)
	for _, ins := range d.Instances {
		for j, v := range ins.Features {
			dlt := v - means[ins.Label][j]
			variances[ins.Label][j] += dlt * dlt
		}
	}
	// Global variance per feature provides the floor scale.
	globalVar := make([]float64, nf)
	globalMean := make([]float64, nf)
	for _, ins := range d.Instances {
		for j, v := range ins.Features {
			globalMean[j] += v
		}
	}
	n := float64(d.Len())
	for j := range globalMean {
		globalMean[j] /= n
	}
	for _, ins := range d.Instances {
		for j, v := range ins.Features {
			dlt := v - globalMean[j]
			globalVar[j] += dlt * dlt / n
		}
	}
	for c := 0; c < k; c++ {
		for j := 0; j < nf; j++ {
			if counts[c] > 1 {
				variances[c][j] /= counts[c]
			}
			minVar := floor * (globalVar[j] + 1)
			if variances[c][j] < minVar {
				variances[c][j] = minVar
			}
		}
	}
	logPriors := make([]float64, k)
	for c := 0; c < k; c++ {
		// Laplace-smoothed priors keep unseen classes finite.
		logPriors[c] = math.Log((counts[c] + 1) / (n + float64(k)))
	}
	return &naiveBayes{
		logPriors:  logPriors,
		means:      means,
		variances:  variances,
		numClasses: k,
	}, nil
}

func alloc2(rows, cols int) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = make([]float64, cols)
	}
	return out
}

// NumClasses implements ml.Classifier.
func (m *naiveBayes) NumClasses() int { return m.numClasses }

// Scores implements ml.Classifier: normalised posteriors.
func (m *naiveBayes) Scores(features []float64) []float64 {
	logPost := make([]float64, m.numClasses)
	maxLog := math.Inf(-1)
	for c := 0; c < m.numClasses; c++ {
		lp := m.logPriors[c]
		for j, v := range features {
			mu := m.means[c][j]
			va := m.variances[c][j]
			dlt := v - mu
			lp += -0.5*math.Log(2*math.Pi*va) - dlt*dlt/(2*va)
		}
		logPost[c] = lp
		if lp > maxLog {
			maxLog = lp
		}
	}
	var sum float64
	for c := range logPost {
		logPost[c] = math.Exp(logPost[c] - maxLog)
		sum += logPost[c]
	}
	for c := range logPost {
		logPost[c] /= sum
	}
	return logPost
}

// Predict implements ml.Classifier.
func (m *naiveBayes) Predict(features []float64) int { return ml.Argmax(m.Scores(features)) }

// Complexity reports the parameter-table shape of a Naive Bayes model, if c
// is one (classes x features Gaussians).
func Complexity(c ml.Classifier) (classes, features int, ok bool) {
	m, isNB := c.(*naiveBayes)
	if !isNB {
		return 0, 0, false
	}
	return m.numClasses, len(m.means[0]), true
}
