package bayes

import (
	"encoding/json"
	"errors"

	"twosmart/internal/ml"
)

type nbDTO struct {
	LogPriors  []float64   `json:"log_priors"`
	Means      [][]float64 `json:"means"`
	Variances  [][]float64 `json:"variances"`
	NumClasses int         `json:"num_classes"`
}

// Marshal serialises a Naive Bayes model to JSON; it reports false if c is
// not one.
func Marshal(c ml.Classifier) ([]byte, bool, error) {
	m, ok := c.(*naiveBayes)
	if !ok {
		return nil, false, nil
	}
	data, err := json.Marshal(nbDTO{
		LogPriors: m.logPriors, Means: m.means,
		Variances: m.variances, NumClasses: m.numClasses,
	})
	return data, true, err
}

// Unmarshal reconstructs a Naive Bayes model serialised by Marshal.
func Unmarshal(data []byte) (ml.Classifier, error) {
	var dto nbDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, err
	}
	k := dto.NumClasses
	if k <= 0 || len(dto.LogPriors) != k || len(dto.Means) != k || len(dto.Variances) != k {
		return nil, errors.New("bayes: inconsistent class dimensions")
	}
	if len(dto.Means[0]) == 0 {
		return nil, errors.New("bayes: no features")
	}
	nf := len(dto.Means[0])
	for c := 0; c < k; c++ {
		if len(dto.Means[c]) != nf || len(dto.Variances[c]) != nf {
			return nil, errors.New("bayes: ragged parameter tables")
		}
		for _, v := range dto.Variances[c] {
			if v <= 0 {
				return nil, errors.New("bayes: non-positive variance")
			}
		}
	}
	return &naiveBayes{
		logPriors: dto.LogPriors, means: dto.Means,
		variances: dto.Variances, numClasses: k,
	}, nil
}
