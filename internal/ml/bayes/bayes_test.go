package bayes

import (
	"math"
	"testing"

	"twosmart/internal/dataset"
	"twosmart/internal/ml"
	"twosmart/internal/ml/mltest"
)

func TestNBSeparable(t *testing.T) {
	d := mltest.Gaussian2Class(600, 4, 3.0, 1)
	ev, err := ml.TrainAndEvaluate(&NBTrainer{}, d, 0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ev.F1 < 0.9 {
		t.Fatalf("NB F1=%v on Gaussian data (its home turf)", ev.F1)
	}
	if ev.AUC < 0.95 {
		t.Fatalf("NB AUC=%v", ev.AUC)
	}
}

func TestNBMulticlass(t *testing.T) {
	d := mltest.MultiClass(600, 4, 3, 3.0, 3)
	model, err := (&NBTrainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ml.EvaluateMulti(model, d)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Accuracy() < 0.85 {
		t.Fatalf("multiclass accuracy=%v", mc.Accuracy())
	}
}

func TestNBCannotSolveXOR(t *testing.T) {
	// Naive Bayes assumes feature independence given the class; XOR
	// violates it maximally.
	d := mltest.XOR(800, 0.2, 4)
	model, err := (&NBTrainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, ins := range d.Instances {
		if model.Predict(ins.Features) == ins.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(d.Len()); acc > 0.65 {
		t.Fatalf("NB accuracy %v on XOR; independence assumption should fail", acc)
	}
}

func TestNBScoresAreProbabilities(t *testing.T) {
	d := mltest.Gaussian2Class(300, 3, 2.0, 5)
	model, err := (&NBTrainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range d.Instances[:30] {
		s := model.Scores(ins.Features)
		var sum float64
		for _, v := range s {
			if v < 0 || v > 1 {
				t.Fatalf("posterior %v outside [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("posteriors sum to %v", sum)
		}
	}
}

func TestNBConstantFeatureHandled(t *testing.T) {
	// A zero-variance feature must not produce NaN/Inf posteriors.
	d := mltest.Gaussian2Class(200, 2, 2.0, 6)
	for i := range d.Instances {
		d.Instances[i].Features[1] = 7 // constant
	}
	model, err := (&NBTrainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	s := model.Scores(d.Instances[0].Features)
	for _, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("degenerate posterior %v", v)
		}
	}
}

func TestNBComplexityAndErrors(t *testing.T) {
	d := mltest.Gaussian2Class(100, 5, 2.0, 7)
	model, err := (&NBTrainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	classes, feats, ok := Complexity(model)
	if !ok || classes != 2 || feats != 5 {
		t.Fatalf("complexity=(%d,%d,%v)", classes, feats, ok)
	}
	empty := mltest.Gaussian2Class(0, 2, 1, 1)
	if _, err := (&NBTrainer{}).Train(empty); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if (&NBTrainer{}).Name() != "NaiveBayes" {
		t.Fatal("name wrong")
	}
}

func TestNBImbalancedPriors(t *testing.T) {
	// With a 9:1 prior and fully overlapping features, NB must lean on
	// the prior and predict the majority class.
	d := mltest.Gaussian2Class(400, 2, 0.0, 8)
	minority := 0
	d2 := d.Filter(func(ins dataset.Instance) bool {
		if ins.Label == 0 {
			return true
		}
		minority++
		return minority%10 == 0
	})
	model, err := (&NBTrainer{}).Train(d2)
	if err != nil {
		t.Fatal(err)
	}
	majorityVotes := 0
	for _, ins := range d2.Instances {
		if model.Predict(ins.Features) == 0 {
			majorityVotes++
		}
	}
	if frac := float64(majorityVotes) / float64(d2.Len()); frac < 0.8 {
		t.Fatalf("NB ignored the class prior: majority fraction %v", frac)
	}
}
