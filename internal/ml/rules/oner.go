// Package rules implements the rule-based learners the paper evaluates:
// OneR (Holte's one-attribute rule learner) and JRip, a RIPPER-style
// repeated-incremental-pruning rule inducer.
package rules

import (
	"errors"
	"fmt"
	"sort"

	"twosmart/internal/dataset"
	"twosmart/internal/ml"
)

// OneRTrainer trains a OneR model: it discretises each attribute into bins
// holding at least MinBucket instances of their majority class, builds one
// rule per bin, and keeps the single attribute whose rule set has the
// lowest training error. The paper notes OneR's F-measure is flat across
// HPC counts because it only ever uses its one chosen feature.
type OneRTrainer struct {
	// MinBucket is the minimum number of majority-class instances per
	// bin (WEKA's -B, default 6).
	MinBucket int
}

// Name implements ml.Trainer.
func (t *OneRTrainer) Name() string { return "OneR" }

// oneR is a trained OneR model: thresholds partition the chosen feature's
// range into len(thresholds)+1 bins, each predicting a class.
type oneR struct {
	feature    int
	featName   string
	thresholds []float64
	dists      [][]float64 // per-bin smoothed class distribution
	numClasses int
}

// Train implements ml.Trainer.
func (t *OneRTrainer) Train(d *dataset.Dataset) (ml.Classifier, error) {
	minBucket := t.MinBucket
	if minBucket <= 0 {
		minBucket = 6
	}
	if d.Len() == 0 {
		return nil, errors.New("rules: OneR on empty dataset")
	}
	k := d.NumClasses()
	labels := d.Labels()

	best := -1
	bestErrors := d.Len() + 1
	var bestModel *oneR
	for f := 0; f < d.NumFeatures(); f++ {
		model, errs := buildOneRFeature(d.Column(f), labels, k, minBucket)
		if errs < bestErrors {
			best, bestErrors = f, errs
			model.feature = f
			model.featName = d.FeatureNames[f]
			bestModel = model
		}
	}
	if best < 0 {
		return nil, errors.New("rules: OneR found no usable feature")
	}
	return bestModel, nil
}

type valLabel struct {
	v float64
	l int
}

// buildOneRFeature discretises one feature and returns the model plus its
// training-error count.
func buildOneRFeature(col []float64, labels []int, k, minBucket int) (*oneR, int) {
	pairs := make([]valLabel, len(col))
	for i := range col {
		pairs[i] = valLabel{col[i], labels[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })

	// Greedy binning: close a bin once its majority class has at least
	// minBucket members and the next value differs (never split ties).
	type bin struct {
		counts   []float64
		majority int
		lastV    float64
	}
	var bins []bin
	cur := bin{counts: make([]float64, k)}
	n := 0
	flush := func() {
		if n > 0 {
			cur.majority = argmaxF(cur.counts)
			bins = append(bins, cur)
			cur = bin{counts: make([]float64, k)}
			n = 0
		}
	}
	for i, p := range pairs {
		cur.counts[p.l]++
		cur.lastV = p.v
		n++
		maj := argmaxF(cur.counts)
		if cur.counts[maj] >= float64(minBucket) &&
			i+1 < len(pairs) && pairs[i+1].v != p.v {
			flush()
		}
	}
	flush()

	// Merge adjacent bins with the same majority class.
	merged := bins[:0]
	for _, b := range bins {
		if len(merged) > 0 && merged[len(merged)-1].majority == b.majority {
			last := &merged[len(merged)-1]
			for c := range b.counts {
				last.counts[c] += b.counts[c]
			}
			last.lastV = b.lastV
		} else {
			merged = append(merged, b)
		}
	}
	bins = merged

	model := &oneR{numClasses: k}
	var errs int
	for i, b := range bins {
		if i+1 < len(bins) {
			model.thresholds = append(model.thresholds, b.lastV)
		}
		total := 0.0
		for _, c := range b.counts {
			total += c
		}
		errs += int(total - b.counts[b.majority])
		dist := make([]float64, k)
		for c := range dist {
			dist[c] = (b.counts[c] + 1) / (total + float64(k)) // Laplace
		}
		model.dists = append(model.dists, dist)
	}
	return model, errs
}

func argmaxF(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// NumClasses implements ml.Classifier.
func (m *oneR) NumClasses() int { return m.numClasses }

// Scores implements ml.Classifier.
func (m *oneR) Scores(features []float64) []float64 {
	v := features[m.feature]
	bin := sort.SearchFloat64s(m.thresholds, v)
	// SearchFloat64s returns the first threshold >= v; values equal to a
	// threshold belong to the bin ending at it.
	if bin < len(m.thresholds) && v > m.thresholds[bin] {
		bin++
	}
	out := make([]float64, m.numClasses)
	copy(out, m.dists[bin])
	return out
}

// Predict implements ml.Classifier.
func (m *oneR) Predict(features []float64) int { return ml.Argmax(m.Scores(features)) }

// Feature returns the index and name of the single attribute the model
// selected (the paper observes OneR consistently picks branch
// instructions).
func (m *oneR) Feature() (int, string) { return m.feature, m.featName }

// String summarises the rule set.
func (m *oneR) String() string {
	return fmt.Sprintf("OneR(%s, %d bins)", m.featName, len(m.dists))
}

// FeatureOf exposes the selected attribute of a OneR model, if c is one.
func FeatureOf(c ml.Classifier) (int, string, bool) {
	if m, ok := c.(*oneR); ok {
		idx, name := m.Feature()
		return idx, name, true
	}
	return 0, "", false
}
