package rules

import (
	"sort"

	"twosmart/internal/ml"
)

// compiledJRip is the fused rule-table lowering of a trained JRip model:
// every rule's conditions live contiguously in three parallel arrays
// indexed through per-rule offsets, and each rule's full output
// distribution (winner confidence plus the shared remainder mass) is
// precomputed, so evaluation is one linear scan over flat memory with no
// per-call allocation.
type compiledJRip struct {
	// condStart[r]..condStart[r+1] index the condition arrays for rule r.
	condStart []int32
	condFeat  []int32
	condTh    []float64
	condLE    []bool
	// Per rule: predicted class, its Laplace confidence, and the score
	// every other class receives.
	class []int32
	conf  []float64
	rest  []float64

	defaultDist []float64
	k           int
	scratch     []float64
}

// Compile implements ml.Compilable.
func (m *jrip) Compile() ml.Compiled {
	c := &compiledJRip{
		k:           m.numClasses,
		defaultDist: append([]float64(nil), m.defaultDist...),
		scratch:     make([]float64, m.numClasses),
		condStart:   make([]int32, 1, len(m.rules)+1),
	}
	for _, r := range m.rules {
		for _, cond := range r.conds {
			c.condFeat = append(c.condFeat, int32(cond.feat))
			c.condTh = append(c.condTh, cond.threshold)
			c.condLE = append(c.condLE, cond.le)
		}
		c.condStart = append(c.condStart, int32(len(c.condFeat)))
		c.class = append(c.class, int32(r.class))
		c.conf = append(c.conf, r.laplace)
		c.rest = append(c.rest, (1-r.laplace)/float64(m.numClasses-1))
	}
	return c
}

// match reports whether rule r's conditions all hold for x.
func (m *compiledJRip) match(r int, x []float64) bool {
	for i := m.condStart[r]; i < m.condStart[r+1]; i++ {
		v := x[m.condFeat[i]]
		if m.condLE[i] {
			if v > m.condTh[i] {
				return false
			}
		} else if v <= m.condTh[i] {
			return false
		}
	}
	return true
}

// NumClasses implements ml.Compiled.
func (m *compiledJRip) NumClasses() int { return m.k }

// ScoresInto implements ml.Compiled: the first matching rule wins with its
// Laplace confidence; otherwise the default distribution applies.
func (m *compiledJRip) ScoresInto(dst, features []float64) {
	for r := range m.class {
		if m.match(r, features) {
			for i := range dst[:m.k] {
				dst[i] = m.rest[r]
			}
			dst[m.class[r]] = m.conf[r]
			return
		}
	}
	copy(dst, m.defaultDist)
}

// Predict implements ml.Compiled.
func (m *compiledJRip) Predict(features []float64) int {
	m.ScoresInto(m.scratch, features)
	return ml.Argmax(m.scratch)
}

// compiledOneR is the flat lowering of a OneR model: the bin thresholds and
// the per-bin smoothed distributions in one slab each, evaluated by a
// binary search plus a copy.
type compiledOneR struct {
	feature    int
	thresholds []float64
	dist       []float64 // bins x k
	k          int
}

// Compile implements ml.Compilable.
func (m *oneR) Compile() ml.Compiled {
	c := &compiledOneR{
		feature:    m.feature,
		thresholds: append([]float64(nil), m.thresholds...),
		k:          m.numClasses,
		dist:       make([]float64, 0, len(m.dists)*m.numClasses),
	}
	for _, d := range m.dists {
		c.dist = append(c.dist, d...)
	}
	return c
}

// bin locates the bin covering value v, mirroring oneR.Scores exactly.
func (m *compiledOneR) bin(v float64) int {
	bin := sort.SearchFloat64s(m.thresholds, v)
	if bin < len(m.thresholds) && v > m.thresholds[bin] {
		bin++
	}
	return bin
}

// NumClasses implements ml.Compiled.
func (m *compiledOneR) NumClasses() int { return m.k }

// ScoresInto implements ml.Compiled.
func (m *compiledOneR) ScoresInto(dst, features []float64) {
	b := m.bin(features[m.feature]) * m.k
	copy(dst, m.dist[b:b+m.k])
}

// Predict implements ml.Compiled: argmax directly over the bin slab.
func (m *compiledOneR) Predict(features []float64) int {
	b := m.bin(features[m.feature]) * m.k
	best := 0
	for c := 1; c < m.k; c++ {
		if m.dist[b+c] > m.dist[b+best] {
			best = c
		}
	}
	return best
}
