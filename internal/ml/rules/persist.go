package rules

import (
	"encoding/json"
	"errors"

	"twosmart/internal/ml"
)

// --- OneR ---------------------------------------------------------------

type oneRDTO struct {
	Feature    int         `json:"feature"`
	FeatName   string      `json:"feature_name"`
	Thresholds []float64   `json:"thresholds"`
	Dists      [][]float64 `json:"dists"`
	NumClasses int         `json:"num_classes"`
}

// MarshalOneR serialises a OneR model to JSON; it reports false if c is not
// a OneR model.
func MarshalOneR(c ml.Classifier) ([]byte, bool, error) {
	m, ok := c.(*oneR)
	if !ok {
		return nil, false, nil
	}
	data, err := json.Marshal(oneRDTO{
		Feature: m.feature, FeatName: m.featName,
		Thresholds: m.thresholds, Dists: m.dists, NumClasses: m.numClasses,
	})
	return data, true, err
}

// UnmarshalOneR reconstructs a OneR model serialised by MarshalOneR.
func UnmarshalOneR(data []byte) (ml.Classifier, error) {
	var dto oneRDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, err
	}
	if len(dto.Dists) != len(dto.Thresholds)+1 {
		return nil, errors.New("rules: OneR bins and thresholds inconsistent")
	}
	if dto.NumClasses <= 0 {
		return nil, errors.New("rules: invalid class count")
	}
	for _, d := range dto.Dists {
		if len(d) != dto.NumClasses {
			return nil, errors.New("rules: OneR distribution width mismatch")
		}
	}
	return &oneR{
		feature: dto.Feature, featName: dto.FeatName,
		thresholds: dto.Thresholds, dists: dto.Dists, numClasses: dto.NumClasses,
	}, nil
}

// --- JRip ---------------------------------------------------------------

type conditionDTO struct {
	Feat      int     `json:"feat"`
	Threshold float64 `json:"threshold"`
	LE        bool    `json:"le"`
}

type ruleDTO struct {
	Conds   []conditionDTO `json:"conds"`
	Class   int            `json:"class"`
	Laplace float64        `json:"laplace"`
}

type jripDTO struct {
	Rules       []ruleDTO `json:"rules"`
	DefaultDist []float64 `json:"default_dist"`
	NumClasses  int       `json:"num_classes"`
	FeatNames   []string  `json:"feature_names"`
}

// MarshalJRip serialises a JRip model to JSON; it reports false if c is not
// a JRip model.
func MarshalJRip(c ml.Classifier) ([]byte, bool, error) {
	m, ok := c.(*jrip)
	if !ok {
		return nil, false, nil
	}
	dto := jripDTO{DefaultDist: m.defaultDist, NumClasses: m.numClasses, FeatNames: m.featNames}
	for _, r := range m.rules {
		rd := ruleDTO{Class: r.class, Laplace: r.laplace}
		for _, cond := range r.conds {
			rd.Conds = append(rd.Conds, conditionDTO{Feat: cond.feat, Threshold: cond.threshold, LE: cond.le})
		}
		dto.Rules = append(dto.Rules, rd)
	}
	data, err := json.Marshal(dto)
	return data, true, err
}

// UnmarshalJRip reconstructs a JRip model serialised by MarshalJRip.
func UnmarshalJRip(data []byte) (ml.Classifier, error) {
	var dto jripDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, err
	}
	if dto.NumClasses <= 0 || len(dto.DefaultDist) != dto.NumClasses {
		return nil, errors.New("rules: JRip default distribution inconsistent")
	}
	m := &jrip{defaultDist: dto.DefaultDist, numClasses: dto.NumClasses, featNames: dto.FeatNames}
	for _, rd := range dto.Rules {
		if rd.Class < 0 || rd.Class >= dto.NumClasses {
			return nil, errors.New("rules: JRip rule class out of range")
		}
		r := rule{class: rd.Class, laplace: rd.Laplace}
		for _, cd := range rd.Conds {
			r.conds = append(r.conds, condition{feat: cd.Feat, threshold: cd.Threshold, le: cd.LE})
		}
		m.rules = append(m.rules, r)
	}
	return m, nil
}
