package rules

import "twosmart/internal/ml"

// ExportedCondition is one rule condition: features[Feat] <= Threshold when
// LE, otherwise features[Feat] > Threshold.
type ExportedCondition struct {
	Feat      int
	Threshold float64
	LE        bool
}

// ExportedRule is one ordered rule: when all conditions match, predict
// Class.
type ExportedRule struct {
	Conds []ExportedCondition
	Class int
}

// ExportJRip returns the ordered rule list and default class of a JRip
// model, or false if c is not one.
func ExportJRip(c ml.Classifier) (exported []ExportedRule, defaultClass int, ok bool) {
	m, isJRip := c.(*jrip)
	if !isJRip {
		return nil, 0, false
	}
	for _, r := range m.rules {
		er := ExportedRule{Class: r.class}
		for _, cond := range r.conds {
			er.Conds = append(er.Conds, ExportedCondition{
				Feat: cond.feat, Threshold: cond.threshold, LE: cond.le,
			})
		}
		exported = append(exported, er)
	}
	best := 0
	for i, v := range m.defaultDist {
		if v > m.defaultDist[best] {
			best = i
		}
	}
	return exported, best, true
}

// ExportOneR returns a OneR model's single feature, its ascending bin
// thresholds and the class predicted by each bin (len(classes) ==
// len(thresholds)+1), or false if c is not a OneR model.
func ExportOneR(c ml.Classifier) (feat int, thresholds []float64, classes []int, ok bool) {
	m, isOneR := c.(*oneR)
	if !isOneR {
		return 0, nil, nil, false
	}
	classes = make([]int, len(m.dists))
	for i, dist := range m.dists {
		best := 0
		for j, v := range dist {
			if v > dist[best] {
				best = j
			}
		}
		classes[i] = best
	}
	return m.feature, append([]float64(nil), m.thresholds...), classes, true
}
