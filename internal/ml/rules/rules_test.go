package rules

import (
	"strings"
	"testing"

	"twosmart/internal/ml"
	"twosmart/internal/ml/mltest"
)

func TestOneRPicksInformativeFeature(t *testing.T) {
	d := mltest.OneInformative(400, 5, 3, 4.0, 1)
	model, err := (&OneRTrainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	idx, name, ok := FeatureOf(model)
	if !ok {
		t.Fatal("FeatureOf failed on OneR model")
	}
	if idx != 3 {
		t.Fatalf("OneR picked feature %d (%s), want 3", idx, name)
	}
	ev, err := ml.EvaluateBinary(model, d)
	if err != nil {
		t.Fatal(err)
	}
	if ev.F1 < 0.9 {
		t.Fatalf("OneR F1=%v on separable data", ev.F1)
	}
}

func TestOneRGeneralises(t *testing.T) {
	d := mltest.Gaussian2Class(600, 4, 3.0, 2)
	ev, err := ml.TrainAndEvaluate(&OneRTrainer{}, d, 0.6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ev.F1 < 0.85 {
		t.Fatalf("held-out F1=%v", ev.F1)
	}
}

func TestOneRMinBucket(t *testing.T) {
	d := mltest.Gaussian2Class(200, 2, 2.0, 3)
	small, err := (&OneRTrainer{MinBucket: 2}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	large, err := (&OneRTrainer{MinBucket: 50}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := OneRComplexity(small)
	lb, _ := OneRComplexity(large)
	if sb <= lb {
		t.Fatalf("bins small-bucket=%d, large-bucket=%d: larger buckets must give fewer bins", sb, lb)
	}
}

func TestOneREmptyDataset(t *testing.T) {
	d := mltest.Gaussian2Class(0, 2, 1, 1)
	if _, err := (&OneRTrainer{}).Train(d); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestOneRCannotSolveXOR(t *testing.T) {
	// A single-feature rule cannot represent XOR; accuracy stays near 0.5.
	d := mltest.XOR(600, 0.15, 4)
	model, err := (&OneRTrainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, ins := range d.Instances {
		if model.Predict(ins.Features) == ins.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(d.Len()); acc > 0.7 {
		t.Fatalf("OneR accuracy %v on XOR; a one-feature rule should fail", acc)
	}
}

func TestOneRMulticlass(t *testing.T) {
	d := mltest.MultiClass(450, 3, 3, 3.5, 5)
	model, err := (&OneRTrainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ml.EvaluateMulti(model, d)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Accuracy() < 0.85 {
		t.Fatalf("multiclass accuracy=%v", mc.Accuracy())
	}
}

func TestJRipSeparable(t *testing.T) {
	d := mltest.Gaussian2Class(600, 4, 3.0, 6)
	ev, err := ml.TrainAndEvaluate(&JRipTrainer{Seed: 1}, d, 0.6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ev.F1 < 0.85 {
		t.Fatalf("JRip F1=%v", ev.F1)
	}
}

func TestJRipSolvesXOR(t *testing.T) {
	// Rules with two conditions represent XOR exactly.
	d := mltest.XOR(800, 0.2, 7)
	ev, err := ml.TrainAndEvaluate(&JRipTrainer{Seed: 2}, d, 0.6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ev.F1 < 0.85 {
		t.Fatalf("JRip F1=%v on XOR; conjunctive rules should solve it", ev.F1)
	}
}

func TestJRipComplexityAndString(t *testing.T) {
	d := mltest.Gaussian2Class(400, 3, 3.0, 10)
	model, err := (&JRipTrainer{Seed: 3}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	nRules, nConds, ok := Complexity(model)
	if !ok {
		t.Fatal("Complexity failed on JRip model")
	}
	if nRules == 0 || nConds == 0 {
		t.Fatalf("rules=%d conds=%d", nRules, nConds)
	}
	s := model.(interface{ String() string }).String()
	if !strings.Contains(s, "IF") || !strings.Contains(s, "DEFAULT") {
		t.Fatalf("String()=%q", s)
	}
	// Complexity on a non-JRip classifier reports !ok.
	if _, _, ok := Complexity(mustOneR(t)); ok {
		t.Fatal("Complexity matched a OneR model")
	}
}

func mustOneR(t *testing.T) ml.Classifier {
	t.Helper()
	m, err := (&OneRTrainer{}).Train(mltest.Gaussian2Class(100, 2, 2, 11))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestJRipDeterministicInSeed(t *testing.T) {
	d := mltest.Gaussian2Class(300, 3, 2.0, 12)
	a, err := (&JRipTrainer{Seed: 5}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&JRipTrainer{Seed: 5}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range d.Instances[:50] {
		if a.Predict(ins.Features) != b.Predict(ins.Features) {
			t.Fatal("same-seed JRip models disagree")
		}
	}
}

func TestJRipMulticlass(t *testing.T) {
	d := mltest.MultiClass(600, 3, 3, 3.5, 13)
	model, err := (&JRipTrainer{Seed: 6}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ml.EvaluateMulti(model, d)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Accuracy() < 0.8 {
		t.Fatalf("multiclass accuracy=%v", mc.Accuracy())
	}
}

func TestJRipEmptyDataset(t *testing.T) {
	d := mltest.Gaussian2Class(0, 2, 1, 1)
	if _, err := (&JRipTrainer{}).Train(d); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestOneRScoresSumAndRange(t *testing.T) {
	d := mltest.Gaussian2Class(300, 3, 2.0, 14)
	model, err := (&OneRTrainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range d.Instances[:20] {
		s := model.Scores(ins.Features)
		if len(s) != 2 {
			t.Fatal("score width wrong")
		}
		for _, v := range s {
			if v < 0 || v > 1 {
				t.Fatalf("score %v outside [0,1]", v)
			}
		}
	}
}

func TestTrainerNames(t *testing.T) {
	if (&OneRTrainer{}).Name() != "OneR" || (&JRipTrainer{}).Name() != "JRip" {
		t.Fatal("trainer names wrong")
	}
}

func TestExportJRipAndOneR(t *testing.T) {
	d := mltest.Gaussian2Class(300, 3, 3.0, 15)
	jr, err := (&JRipTrainer{Seed: 9}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	ruleList, defaultClass, ok := ExportJRip(jr)
	if !ok {
		t.Fatal("ExportJRip failed")
	}
	nRules, _, _ := Complexity(jr)
	if len(ruleList) != nRules {
		t.Fatalf("exported %d rules, complexity says %d", len(ruleList), nRules)
	}
	if defaultClass < 0 || defaultClass > 1 {
		t.Fatalf("default class %d", defaultClass)
	}
	if m, ok := jr.(interface{ NumRules() int }); !ok || m.NumRules() != nRules {
		t.Fatal("NumRules mismatch")
	}

	or, err := (&OneRTrainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	feat, thresholds, classes, ok := ExportOneR(or)
	if !ok {
		t.Fatal("ExportOneR failed")
	}
	if len(classes) != len(thresholds)+1 {
		t.Fatal("bin/threshold shape wrong")
	}
	if feat < 0 || feat >= d.NumFeatures() {
		t.Fatalf("feature %d out of range", feat)
	}
	// Cross-family export returns !ok.
	if _, _, ok := ExportJRip(or); ok {
		t.Fatal("OneR matched as JRip")
	}
	if _, _, _, ok := ExportOneR(jr); ok {
		t.Fatal("JRip matched as OneR")
	}
	if s := or.(interface{ String() string }).String(); !strings.Contains(s, "OneR(") {
		t.Fatalf("OneR String()=%q", s)
	}
}

func TestRulesPersistInPackage(t *testing.T) {
	d := mltest.Gaussian2Class(250, 3, 2.5, 16)
	for name, tr := range map[string]ml.Trainer{"OneR": &OneRTrainer{}, "JRip": &JRipTrainer{Seed: 3}} {
		m, err := tr.Train(d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var data []byte
		var ok bool
		if name == "OneR" {
			data, ok, err = MarshalOneR(m)
		} else {
			data, ok, err = MarshalJRip(m)
		}
		if !ok || err != nil {
			t.Fatalf("%s marshal: (%v,%v)", name, ok, err)
		}
		var restored ml.Classifier
		if name == "OneR" {
			restored, err = UnmarshalOneR(data)
		} else {
			restored, err = UnmarshalJRip(data)
		}
		if err != nil {
			t.Fatalf("%s unmarshal: %v", name, err)
		}
		for _, ins := range d.Instances[:30] {
			if restored.Predict(ins.Features) != m.Predict(ins.Features) {
				t.Fatalf("%s round trip changed predictions", name)
			}
		}
	}
	if _, err := UnmarshalOneR([]byte(`{"dists":[[0.5,0.5]],"thresholds":[1],"num_classes":2}`)); err == nil {
		t.Fatal("inconsistent OneR accepted")
	}
	if _, err := UnmarshalJRip([]byte(`{"rules":[{"class":7,"conds":[]}],"default_dist":[0.5,0.5],"num_classes":2}`)); err == nil {
		t.Fatal("out-of-range rule class accepted")
	}
}
