package rules

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"twosmart/internal/dataset"
	"twosmart/internal/ml"
)

// JRipTrainer trains a RIPPER-style rule learner (WEKA's JRip): classes are
// handled in ascending frequency order; for each class, rules are grown on
// two thirds of the data by greedily adding the condition with the best
// FOIL information gain, then pruned on the remaining third by dropping
// trailing conditions to maximise (p-n)/(p+n). Rule addition stops when the
// next rule's pruned accuracy falls below 50% or no positives remain. The
// most frequent class becomes the default. (The implementation omits
// RIPPER's global MDL-based optimisation passes; growing and pruning —
// the parts that determine the rule structure — are faithful.)
type JRipTrainer struct {
	// Seed drives the grow/prune partition shuffle.
	Seed int64
	// MinCover is the minimum number of positives a rule must cover
	// (default 2).
	MinCover int
	// MaxConditions bounds rule length (default 8).
	MaxConditions int
	// Quantiles is the number of candidate thresholds per feature
	// (default 16); thresholds are drawn from covered-instance quantiles.
	Quantiles int
}

// Name implements ml.Trainer.
func (t *JRipTrainer) Name() string { return "JRip" }

// condition is one test: features[feat] <= threshold (le) or > threshold.
type condition struct {
	feat      int
	threshold float64
	le        bool
}

func (c condition) match(x []float64) bool {
	if c.le {
		return x[c.feat] <= c.threshold
	}
	return x[c.feat] > c.threshold
}

// rule predicts class when all conditions match; laplace is its smoothed
// accuracy on the training data, used as the prediction confidence.
type rule struct {
	conds   []condition
	class   int
	laplace float64
}

func (r rule) match(x []float64) bool {
	for _, c := range r.conds {
		if !c.match(x) {
			return false
		}
	}
	return true
}

// jrip is a trained ordered rule list with a default class.
type jrip struct {
	rules       []rule
	defaultDist []float64
	numClasses  int
	featNames   []string
}

// Train implements ml.Trainer.
func (t *JRipTrainer) Train(d *dataset.Dataset) (ml.Classifier, error) {
	if d.Len() == 0 {
		return nil, errors.New("rules: JRip on empty dataset")
	}
	minCover := t.MinCover
	if minCover <= 0 {
		minCover = 2
	}
	maxConds := t.MaxConditions
	if maxConds <= 0 {
		maxConds = 8
	}
	quantiles := t.Quantiles
	if quantiles <= 0 {
		quantiles = 16
	}
	k := d.NumClasses()
	rng := rand.New(rand.NewSource(t.Seed + 1))

	// Order classes by ascending frequency; the last (most frequent) is
	// the default.
	counts := d.ClassCounts()
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] < counts[order[b]] })

	// remaining holds instance indices not yet covered by any rule.
	remaining := make([]int, d.Len())
	for i := range remaining {
		remaining[i] = i
	}

	model := &jrip{numClasses: k, featNames: append([]string(nil), d.FeatureNames...)}
	for _, cls := range order[:k-1] {
		for {
			pos := 0
			for _, idx := range remaining {
				if d.Instances[idx].Label == cls {
					pos++
				}
			}
			if pos < minCover {
				break
			}
			r, ok := growPruneRule(d, remaining, cls, rng, minCover, maxConds, quantiles)
			if !ok {
				break
			}
			model.rules = append(model.rules, r)
			// Remove instances covered by the new rule.
			kept := remaining[:0]
			for _, idx := range remaining {
				if !r.match(d.Instances[idx].Features) {
					kept = append(kept, idx)
				}
			}
			remaining = kept
		}
	}

	// Default distribution from uncovered instances (falling back to the
	// full training distribution when everything is covered).
	dist := make([]float64, k)
	if len(remaining) > 0 {
		for _, idx := range remaining {
			dist[d.Instances[idx].Label]++
		}
	} else {
		for i, c := range counts {
			dist[i] = float64(c)
		}
	}
	var total float64
	for _, v := range dist {
		total += v
	}
	for i := range dist {
		dist[i] = (dist[i] + 1) / (total + float64(k))
	}
	model.defaultDist = dist
	return model, nil
}

// growPruneRule learns one rule for class cls from the remaining instances.
func growPruneRule(d *dataset.Dataset, remaining []int, cls int, rng *rand.Rand, minCover, maxConds, quantiles int) (rule, bool) {
	// 2:1 grow/prune split of the remaining instances.
	shuffled := append([]int(nil), remaining...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	cut := len(shuffled) * 2 / 3
	grow, prune := shuffled[:cut], shuffled[cut:]
	if len(grow) == 0 {
		return rule{}, false
	}

	r := rule{class: cls}
	covered := grow
	for len(r.conds) < maxConds {
		if _, n := coverCounts(d, covered, cls); n == 0 {
			break // rule is pure on the grow set
		}
		cond, gain := bestCondition(d, covered, cls, quantiles)
		if gain <= 0 {
			break
		}
		r.conds = append(r.conds, cond)
		covered = filterCovered(d, covered, cond)
	}
	if len(r.conds) == 0 {
		return rule{}, false
	}

	// Prune: drop trailing conditions to maximise (p-n)/(p+n) on the
	// prune set. An empty prune set keeps the grown rule.
	if len(prune) > 0 {
		bestLen, bestVal := len(r.conds), pruneValue(d, prune, r)
		for l := len(r.conds) - 1; l >= 1; l-- {
			cand := rule{conds: r.conds[:l], class: cls}
			if v := pruneValue(d, prune, cand); v > bestVal {
				bestLen, bestVal = l, v
			}
		}
		r.conds = r.conds[:bestLen]
		if bestVal < 0 {
			return rule{}, false // rule is worse than random on prune data
		}
	}

	// Accept only rules that still cover enough positives with decent
	// precision on all remaining data.
	p, n := 0, 0
	for _, idx := range remaining {
		if r.match(d.Instances[idx].Features) {
			if d.Instances[idx].Label == cls {
				p++
			} else {
				n++
			}
		}
	}
	if p < minCover || p <= n {
		return rule{}, false
	}
	r.laplace = float64(p+1) / float64(p+n+2)
	return r, true
}

func coverCounts(d *dataset.Dataset, idxs []int, cls int) (p, n int) {
	for _, idx := range idxs {
		if d.Instances[idx].Label == cls {
			p++
		} else {
			n++
		}
	}
	return
}

func filterCovered(d *dataset.Dataset, idxs []int, c condition) []int {
	out := make([]int, 0, len(idxs))
	for _, idx := range idxs {
		if c.match(d.Instances[idx].Features) {
			out = append(out, idx)
		}
	}
	return out
}

// bestCondition finds the condition with the highest FOIL gain over the
// currently covered grow instances.
func bestCondition(d *dataset.Dataset, covered []int, cls int, quantiles int) (condition, float64) {
	p0, n0 := coverCounts(d, covered, cls)
	if p0 == 0 {
		return condition{}, 0
	}
	base := math.Log2(float64(p0) / float64(p0+n0))

	var best condition
	bestGain := 0.0
	vals := make([]float64, 0, len(covered))
	for f := 0; f < d.NumFeatures(); f++ {
		vals = vals[:0]
		for _, idx := range covered {
			vals = append(vals, d.Instances[idx].Features[f])
		}
		sort.Float64s(vals)
		// Candidate thresholds at quantiles of the covered values.
		for q := 1; q < quantiles; q++ {
			th := vals[q*(len(vals)-1)/quantiles]
			for _, le := range []bool{true, false} {
				c := condition{feat: f, threshold: th, le: le}
				p1, n1 := 0, 0
				for _, idx := range covered {
					if c.match(d.Instances[idx].Features) {
						if d.Instances[idx].Label == cls {
							p1++
						} else {
							n1++
						}
					}
				}
				if p1 == 0 {
					continue
				}
				gain := float64(p1) * (math.Log2(float64(p1)/float64(p1+n1)) - base)
				if gain > bestGain {
					bestGain = gain
					best = c
				}
			}
		}
	}
	return best, bestGain
}

// pruneValue is RIPPER's pruning metric (p-n)/(p+n) on the prune set.
func pruneValue(d *dataset.Dataset, prune []int, r rule) float64 {
	p, n := 0, 0
	for _, idx := range prune {
		if r.match(d.Instances[idx].Features) {
			if d.Instances[idx].Label == r.class {
				p++
			} else {
				n++
			}
		}
	}
	if p+n == 0 {
		return 0
	}
	return float64(p-n) / float64(p+n)
}

// NumClasses implements ml.Classifier.
func (m *jrip) NumClasses() int { return m.numClasses }

// Scores implements ml.Classifier: the first matching rule wins with its
// Laplace confidence; otherwise the default distribution applies.
func (m *jrip) Scores(features []float64) []float64 {
	for _, r := range m.rules {
		if r.match(features) {
			out := make([]float64, m.numClasses)
			rest := (1 - r.laplace) / float64(m.numClasses-1)
			for i := range out {
				out[i] = rest
			}
			out[r.class] = r.laplace
			return out
		}
	}
	return append([]float64(nil), m.defaultDist...)
}

// Predict implements ml.Classifier.
func (m *jrip) Predict(features []float64) int { return ml.Argmax(m.Scores(features)) }

// NumRules returns the size of the learned rule list (used by the hardware
// cost model).
func (m *jrip) NumRules() int { return len(m.rules) }

// String renders the rule list compactly.
func (m *jrip) String() string {
	var b strings.Builder
	for _, r := range m.rules {
		fmt.Fprintf(&b, "IF ")
		for i, c := range r.conds {
			if i > 0 {
				b.WriteString(" AND ")
			}
			op := ">"
			if c.le {
				op = "<="
			}
			fmt.Fprintf(&b, "%s %s %.4g", m.featNames[c.feat], op, c.threshold)
		}
		fmt.Fprintf(&b, " THEN class=%d (%.2f)\n", r.class, r.laplace)
	}
	fmt.Fprintf(&b, "DEFAULT dist=%v\n", m.defaultDist)
	return b.String()
}

// Complexity reports the rule count and total condition count of a JRip
// model, if c is one (used by the hardware cost model).
func Complexity(c ml.Classifier) (rules, conditions int, ok bool) {
	m, isJrip := c.(*jrip)
	if !isJrip {
		return 0, 0, false
	}
	for _, r := range m.rules {
		conditions += len(r.conds)
	}
	return len(m.rules), conditions, true
}

// OneRComplexity reports the bin count of a OneR model, if c is one.
func OneRComplexity(c ml.Classifier) (bins int, ok bool) {
	if m, isOneR := c.(*oneR); isOneR {
		return len(m.dists), true
	}
	return 0, false
}
