// Package tree implements J48, WEKA's C4.5 decision-tree learner: binary
// splits on numeric attributes chosen by gain ratio, with C4.5-style
// pessimistic error pruning at confidence factor 0.25.
package tree

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"twosmart/internal/dataset"
	"twosmart/internal/ml"
)

// J48Trainer trains a C4.5 decision tree.
type J48Trainer struct {
	// MinLeaf is the minimum number of instances per leaf (WEKA -M,
	// default 2).
	MinLeaf int
	// MaxDepth bounds tree depth (default 25).
	MaxDepth int
	// Confidence is the pruning confidence factor (WEKA -C, default
	// 0.25); higher means less pruning. Set to 1 to disable pruning.
	Confidence float64
}

// Name implements ml.Trainer.
func (t *J48Trainer) Name() string { return "J48" }

type node struct {
	// Internal nodes.
	feat      int
	threshold float64
	left      *node // features[feat] <= threshold
	right     *node
	// All nodes carry the training class distribution for scoring and
	// pruning.
	counts []float64
	leaf   bool
}

type j48 struct {
	root       *node
	numClasses int
	featNames  []string
}

// Train implements ml.Trainer.
func (t *J48Trainer) Train(d *dataset.Dataset) (ml.Classifier, error) {
	if d.Len() == 0 {
		return nil, errors.New("tree: J48 on empty dataset")
	}
	minLeaf := t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	maxDepth := t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 25
	}
	conf := t.Confidence
	if conf <= 0 {
		conf = 0.25
	}

	idxs := make([]int, d.Len())
	for i := range idxs {
		idxs[i] = i
	}
	b := &builder{d: d, k: d.NumClasses(), minLeaf: minLeaf, maxDepth: maxDepth}
	root := b.build(idxs, 0)
	if conf < 1 {
		prune(root, zFromConfidence(conf))
	}
	return &j48{root: root, numClasses: d.NumClasses(), featNames: append([]string(nil), d.FeatureNames...)}, nil
}

type builder struct {
	d        *dataset.Dataset
	k        int
	minLeaf  int
	maxDepth int
}

func (b *builder) classCounts(idxs []int) []float64 {
	counts := make([]float64, b.k)
	for _, i := range idxs {
		counts[b.d.Instances[i].Label]++
	}
	return counts
}

func entropy(counts []float64) float64 {
	var total float64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c > 0 {
			p := c / total
			h -= p * math.Log2(p)
		}
	}
	return h
}

func isPure(counts []float64) bool {
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

func (b *builder) build(idxs []int, depth int) *node {
	counts := b.classCounts(idxs)
	n := &node{counts: counts, leaf: true}
	if len(idxs) < 2*b.minLeaf || depth >= b.maxDepth || isPure(counts) {
		return n
	}
	feat, threshold, ok := b.bestSplit(idxs, counts)
	if !ok {
		return n
	}
	var left, right []int
	for _, i := range idxs {
		if b.d.Instances[i].Features[feat] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.minLeaf || len(right) < b.minLeaf {
		return n
	}
	n.leaf = false
	n.feat = feat
	n.threshold = threshold
	n.left = b.build(left, depth+1)
	n.right = b.build(right, depth+1)
	return n
}

// bestSplit selects the (feature, threshold) with the highest gain ratio
// among splits with above-average information gain, as C4.5 does.
func (b *builder) bestSplit(idxs []int, counts []float64) (int, float64, bool) {
	baseH := entropy(counts)
	total := float64(len(idxs))

	type cand struct {
		feat      int
		threshold float64
		gain      float64
		ratio     float64
	}
	var cands []cand

	vals := make([]float64, len(idxs))
	labels := make([]int, len(idxs))
	order := make([]int, len(idxs))
	for f := 0; f < b.d.NumFeatures(); f++ {
		for j, i := range idxs {
			vals[j] = b.d.Instances[i].Features[f]
			labels[j] = b.d.Instances[i].Label
			order[j] = j
		}
		sort.Slice(order, func(a, c int) bool { return vals[order[a]] < vals[order[c]] })

		leftCounts := make([]float64, b.k)
		rightCounts := append([]float64(nil), counts...)
		bestGain, bestRatio, bestTh := 0.0, 0.0, 0.0
		found := false
		for j := 0; j < len(order)-1; j++ {
			o := order[j]
			leftCounts[labels[o]]++
			rightCounts[labels[o]]--
			v, next := vals[o], vals[order[j+1]]
			if v == next {
				continue // only split between distinct values
			}
			nl := float64(j + 1)
			nr := total - nl
			if int(nl) < b.minLeaf || int(nr) < b.minLeaf {
				continue
			}
			gain := baseH - (nl/total)*entropy(leftCounts) - (nr/total)*entropy(rightCounts)
			if gain <= 1e-12 {
				continue
			}
			pl := nl / total
			splitInfo := -pl*math.Log2(pl) - (1-pl)*math.Log2(1-pl)
			if splitInfo <= 0 {
				continue
			}
			ratio := gain / splitInfo
			if ratio > bestRatio {
				bestGain, bestRatio, bestTh = gain, ratio, (v+next)/2
				found = true
			}
		}
		if found {
			cands = append(cands, cand{feat: f, threshold: bestTh, gain: bestGain, ratio: bestRatio})
		}
	}
	if len(cands) == 0 {
		return 0, 0, false
	}
	// C4.5: among candidates with at least average gain, pick the best
	// gain ratio.
	var avgGain float64
	for _, c := range cands {
		avgGain += c.gain
	}
	avgGain /= float64(len(cands))
	best := -1
	for i, c := range cands {
		if c.gain+1e-12 >= avgGain && (best < 0 || c.ratio > cands[best].ratio) {
			best = i
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return cands[best].feat, cands[best].threshold, true
}

// zFromConfidence converts a C4.5 confidence factor into the corresponding
// standard-normal quantile via a rational approximation (Abramowitz &
// Stegun 26.2.23). CF=0.25 gives z~0.6745.
func zFromConfidence(cf float64) float64 {
	p := cf
	if p <= 0 {
		p = 1e-6
	}
	if p >= 1 {
		return 0
	}
	t := math.Sqrt(-2 * math.Log(p))
	return t - (2.515517+0.802853*t+0.010328*t*t)/(1+1.432788*t+0.189269*t*t+0.001308*t*t*t)
}

// pessimisticErrors is C4.5's upper confidence bound on the error count of
// a leaf with n instances and e errors.
func pessimisticErrors(e, n, z float64) float64 {
	if n == 0 {
		return 0
	}
	f := e / n
	ucb := (f + z*z/(2*n) + z*math.Sqrt(f/n-f*f/n+z*z/(4*n*n))) / (1 + z*z/n)
	return ucb * n
}

// prune applies bottom-up pessimistic pruning: a subtree is replaced by a
// leaf when the leaf's estimated errors do not exceed the subtree's.
func prune(n *node, z float64) float64 {
	total, errs := leafStats(n.counts)
	leafEst := pessimisticErrors(errs, total, z)
	if n.leaf {
		return leafEst
	}
	subtreeEst := prune(n.left, z) + prune(n.right, z)
	if leafEst <= subtreeEst+1e-9 {
		n.leaf = true
		n.left, n.right = nil, nil
		return leafEst
	}
	return subtreeEst
}

func leafStats(counts []float64) (total, errs float64) {
	var maxC float64
	for _, c := range counts {
		total += c
		if c > maxC {
			maxC = c
		}
	}
	return total, total - maxC
}

// NumClasses implements ml.Classifier.
func (m *j48) NumClasses() int { return m.numClasses }

// Scores implements ml.Classifier: the Laplace-smoothed distribution of the
// reached leaf.
func (m *j48) Scores(features []float64) []float64 {
	n := m.root
	for !n.leaf {
		if features[n.feat] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	out := make([]float64, m.numClasses)
	var total float64
	for _, c := range n.counts {
		total += c
	}
	for i, c := range n.counts {
		out[i] = (c + 1) / (total + float64(m.numClasses))
	}
	return out
}

// Predict implements ml.Classifier.
func (m *j48) Predict(features []float64) int { return ml.Argmax(m.Scores(features)) }

// Size returns the number of nodes and leaves, and the maximum depth (used
// by the hardware cost model).
func (m *j48) Size() (nodes, leaves, depth int) {
	var walk func(n *node, d int)
	walk = func(n *node, d int) {
		nodes++
		if d > depth {
			depth = d
		}
		if n.leaf {
			leaves++
			return
		}
		walk(n.left, d+1)
		walk(n.right, d+1)
	}
	walk(m.root, 1)
	return
}

// String renders the tree.
func (m *j48) String() string {
	var b strings.Builder
	var walk func(n *node, indent string)
	walk = func(n *node, indent string) {
		if n.leaf {
			fmt.Fprintf(&b, "%sleaf %v\n", indent, n.counts)
			return
		}
		fmt.Fprintf(&b, "%s%s <= %.4g\n", indent, m.featNames[n.feat], n.threshold)
		walk(n.left, indent+"  ")
		walk(n.right, indent+"  ")
	}
	walk(m.root, "")
	return b.String()
}

// Complexity reports node/leaf/depth counts of a J48 model, if c is one
// (used by the hardware cost model).
func Complexity(c ml.Classifier) (nodes, leaves, depth int, ok bool) {
	if m, isTree := c.(*j48); isTree {
		nodes, leaves, depth = m.Size()
		return nodes, leaves, depth, true
	}
	return 0, 0, 0, false
}
