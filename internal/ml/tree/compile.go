package tree

import "twosmart/internal/ml"

// compiledTree is the struct-of-arrays lowering of a trained J48 tree: the
// internal nodes live in four parallel arrays laid out in breadth-first
// order (so the hot shallow levels share cache lines), children are index
// links rather than pointers, and every leaf's Laplace-smoothed class
// distribution is precomputed into one flat slab. Evaluation is a short
// index walk plus a copy — no pointer chasing, no per-call allocation.
type compiledTree struct {
	feat      []int32   // per internal node: feature tested
	threshold []float64 // per internal node: split point
	// left/right hold the next internal-node index, or ^leafIndex (always
	// negative) when the branch ends in a leaf.
	left, right []int32
	dist        []float64 // leaves x k, Laplace-smoothed as in Scores
	k           int
}

// Compile implements ml.Compilable.
func (m *j48) Compile() ml.Compiled {
	c := &compiledTree{k: m.numClasses}
	// Breadth-first flattening. Each queued node remembers which parent
	// slot links to it; the link is written once the node's own index (or
	// leaf id) is known. parent < 0 marks the root.
	type item struct {
		n      *node
		parent int32
		right  bool
	}
	setLink := func(it item, link int32) {
		if it.parent < 0 {
			return
		}
		if it.right {
			c.right[it.parent] = link
		} else {
			c.left[it.parent] = link
		}
	}
	queue := []item{{m.root, -1, false}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.n.leaf {
			leaf := int32(len(c.dist) / c.k)
			setLink(it, ^leaf)
			var total float64
			for _, cnt := range it.n.counts {
				total += cnt
			}
			for _, cnt := range it.n.counts {
				c.dist = append(c.dist, (cnt+1)/(total+float64(c.k)))
			}
			continue
		}
		idx := int32(len(c.feat))
		setLink(it, idx)
		c.feat = append(c.feat, int32(it.n.feat))
		c.threshold = append(c.threshold, it.n.threshold)
		c.left = append(c.left, 0)
		c.right = append(c.right, 0)
		queue = append(queue, item{it.n.left, idx, false}, item{it.n.right, idx, true})
	}
	return c
}

// leafFor walks the index-linked tree to the leaf covering x and returns
// the leaf index. A root-only tree (no internal nodes) has exactly leaf 0.
func (m *compiledTree) leafFor(x []float64) int {
	if len(m.feat) == 0 {
		return 0
	}
	i := int32(0)
	for {
		var next int32
		if x[m.feat[i]] <= m.threshold[i] {
			next = m.left[i]
		} else {
			next = m.right[i]
		}
		if next < 0 {
			return int(^next)
		}
		i = next
	}
}

// NumClasses implements ml.Compiled.
func (m *compiledTree) NumClasses() int { return m.k }

// ScoresInto implements ml.Compiled.
func (m *compiledTree) ScoresInto(dst, features []float64) {
	leaf := m.leafFor(features) * m.k
	copy(dst, m.dist[leaf:leaf+m.k])
}

// Predict implements ml.Compiled: argmax directly over the leaf slab,
// skipping the copy.
func (m *compiledTree) Predict(features []float64) int {
	leaf := m.leafFor(features) * m.k
	best := 0
	for c := 1; c < m.k; c++ {
		if m.dist[leaf+c] > m.dist[leaf+best] {
			best = c
		}
	}
	return best
}
