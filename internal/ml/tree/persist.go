package tree

import (
	"encoding/json"
	"errors"

	"twosmart/internal/ml"
)

// nodeDTO is the serialised form of a tree node; children are indices into
// the flat node list (-1 for none), keeping the encoding recursion-free.
type nodeDTO struct {
	Feat      int       `json:"feat"`
	Threshold float64   `json:"threshold"`
	Left      int       `json:"left"`
	Right     int       `json:"right"`
	Counts    []float64 `json:"counts"`
	Leaf      bool      `json:"leaf"`
}

// modelDTO is the serialised form of a J48 model.
type modelDTO struct {
	Nodes      []nodeDTO `json:"nodes"` // index 0 is the root
	NumClasses int       `json:"num_classes"`
	FeatNames  []string  `json:"feature_names"`
}

// Marshal serialises a J48 model to JSON. It reports false if c is not a
// J48 model.
func Marshal(c ml.Classifier) ([]byte, bool, error) {
	m, ok := c.(*j48)
	if !ok {
		return nil, false, nil
	}
	dto := modelDTO{NumClasses: m.numClasses, FeatNames: m.featNames}
	var flatten func(n *node) int
	flatten = func(n *node) int {
		idx := len(dto.Nodes)
		dto.Nodes = append(dto.Nodes, nodeDTO{
			Feat: n.feat, Threshold: n.threshold,
			Left: -1, Right: -1,
			Counts: n.counts, Leaf: n.leaf,
		})
		if !n.leaf {
			dto.Nodes[idx].Left = flatten(n.left)
			dto.Nodes[idx].Right = flatten(n.right)
		}
		return idx
	}
	flatten(m.root)
	data, err := json.Marshal(dto)
	return data, true, err
}

// Unmarshal reconstructs a J48 model serialised by Marshal.
func Unmarshal(data []byte) (ml.Classifier, error) {
	var dto modelDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, err
	}
	if len(dto.Nodes) == 0 {
		return nil, errors.New("tree: empty serialised model")
	}
	if dto.NumClasses <= 0 {
		return nil, errors.New("tree: invalid class count")
	}
	nodes := make([]node, len(dto.Nodes))
	// Marshal emits nodes in pre-order, so every child index is strictly
	// greater than its parent's and each node is referenced exactly once.
	// Enforcing both here is what makes the reconstructed pointer graph a
	// tree: child > parent rules out cycles (which would hang Detect and
	// overflow the stack on re-Marshal), and single-reference rules out
	// shared subtrees (which re-Marshal would duplicate exponentially).
	claimed := make([]bool, len(dto.Nodes))
	for i, nd := range dto.Nodes {
		nodes[i] = node{
			feat: nd.Feat, threshold: nd.Threshold,
			counts: nd.Counts, leaf: nd.Leaf,
		}
		if nd.Leaf {
			continue
		}
		if nd.Left <= i || nd.Left >= len(dto.Nodes) || nd.Right <= i || nd.Right >= len(dto.Nodes) ||
			nd.Left == nd.Right {
			return nil, errors.New("tree: corrupt child indices")
		}
		if claimed[nd.Left] || claimed[nd.Right] {
			return nil, errors.New("tree: node referenced by two parents")
		}
		claimed[nd.Left], claimed[nd.Right] = true, true
		nodes[i].left = &nodes[nd.Left]
		nodes[i].right = &nodes[nd.Right]
	}
	return &j48{root: &nodes[0], numClasses: dto.NumClasses, featNames: dto.FeatNames}, nil
}
