package tree

import (
	"strings"
	"testing"

	"twosmart/internal/ml"
	"twosmart/internal/ml/mltest"
)

func TestJ48Separable(t *testing.T) {
	d := mltest.Gaussian2Class(600, 4, 3.0, 1)
	ev, err := ml.TrainAndEvaluate(&J48Trainer{}, d, 0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ev.F1 < 0.9 {
		t.Fatalf("J48 F1=%v", ev.F1)
	}
	if ev.AUC < 0.9 {
		t.Fatalf("J48 AUC=%v", ev.AUC)
	}
}

func TestJ48SolvesXOR(t *testing.T) {
	d := mltest.XOR(800, 0.2, 3)
	ev, err := ml.TrainAndEvaluate(&J48Trainer{}, d, 0.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ev.F1 < 0.9 {
		t.Fatalf("J48 F1=%v on XOR; an axis-aligned tree should solve it", ev.F1)
	}
}

func TestJ48Multiclass(t *testing.T) {
	d := mltest.MultiClass(600, 4, 3, 3.0, 5)
	model, err := (&J48Trainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ml.EvaluateMulti(model, d)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Accuracy() < 0.85 {
		t.Fatalf("multiclass accuracy=%v", mc.Accuracy())
	}
}

func TestJ48PruningShrinksTree(t *testing.T) {
	// Weakly separated, noisy data: the unpruned tree overfits; pruning
	// must reduce node count.
	d := mltest.Gaussian2Class(500, 4, 0.8, 6)
	unpruned, err := (&J48Trainer{Confidence: 1}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := (&J48Trainer{Confidence: 0.25}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	un, _, _, _ := Complexity(unpruned)
	pn, _, _, _ := Complexity(pruned)
	if pn >= un {
		t.Fatalf("pruned nodes=%d, unpruned=%d: pruning must shrink the tree", pn, un)
	}
}

func TestJ48MinLeafLimitsGrowth(t *testing.T) {
	d := mltest.Gaussian2Class(400, 3, 1.0, 7)
	small, _ := (&J48Trainer{MinLeaf: 2, Confidence: 1}).Train(d)
	big, _ := (&J48Trainer{MinLeaf: 50, Confidence: 1}).Train(d)
	sn, _, _, _ := Complexity(small)
	bn, _, _, _ := Complexity(big)
	if bn >= sn {
		t.Fatalf("minLeaf=50 nodes=%d, minLeaf=2 nodes=%d", bn, sn)
	}
}

func TestJ48MaxDepth(t *testing.T) {
	d := mltest.Gaussian2Class(400, 3, 1.0, 8)
	model, err := (&J48Trainer{MaxDepth: 3, Confidence: 1}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	_, _, depth, ok := Complexity(model)
	if !ok {
		t.Fatal("Complexity failed")
	}
	if depth > 4 { // root at depth 1 plus 3 levels
		t.Fatalf("depth=%d exceeds limit", depth)
	}
}

func TestJ48PureLeafShortCircuit(t *testing.T) {
	// Perfectly separable one-feature data: the tree needs one split.
	d := mltest.OneInformative(200, 1, 0, 50.0, 9)
	model, err := (&J48Trainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	nodes, leaves, _, _ := Complexity(model)
	if nodes != 3 || leaves != 2 {
		t.Fatalf("nodes=%d leaves=%d, want 3/2 for one split", nodes, leaves)
	}
}

func TestJ48EmptyDataset(t *testing.T) {
	d := mltest.Gaussian2Class(0, 2, 1, 1)
	if _, err := (&J48Trainer{}).Train(d); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestJ48ScoresDistribution(t *testing.T) {
	d := mltest.Gaussian2Class(300, 3, 2.0, 10)
	model, err := (&J48Trainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range d.Instances[:20] {
		s := model.Scores(ins.Features)
		var sum float64
		for _, v := range s {
			if v <= 0 || v >= 1 {
				t.Fatalf("laplace score %v outside (0,1)", v)
			}
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("scores sum to %v", sum)
		}
	}
}

func TestJ48String(t *testing.T) {
	d := mltest.Gaussian2Class(200, 2, 3.0, 11)
	model, _ := (&J48Trainer{}).Train(d)
	s := model.(interface{ String() string }).String()
	if !strings.Contains(s, "<=") || !strings.Contains(s, "leaf") {
		t.Fatalf("String()=%q", s)
	}
}

func TestZFromConfidence(t *testing.T) {
	// CF=0.25 corresponds to z ~ 0.6745 (75th percentile).
	z := zFromConfidence(0.25)
	if z < 0.6 || z > 0.75 {
		t.Fatalf("z(0.25)=%v, want ~0.6745", z)
	}
	if zFromConfidence(1) != 0 {
		t.Fatal("z(1) must be 0 (no pruning pressure)")
	}
}

func TestJ48NameAndExport(t *testing.T) {
	if (&J48Trainer{}).Name() != "J48" {
		t.Fatal("name wrong")
	}
	d := mltest.Gaussian2Class(200, 2, 3.0, 12)
	m, err := (&J48Trainer{MaxDepth: 3}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	root, ok := Export(m)
	if !ok || root == nil {
		t.Fatal("Export failed")
	}
	// The exported tree must agree with the model on every sample when
	// walked directly.
	var walk func(n *Node, fv []float64) int
	walk = func(n *Node, fv []float64) int {
		if n.Leaf {
			return n.Class
		}
		if fv[n.Feat] <= n.Threshold {
			return walk(n.Left, fv)
		}
		return walk(n.Right, fv)
	}
	for _, ins := range d.Instances[:50] {
		if walk(root, ins.Features) != m.Predict(ins.Features) {
			t.Fatal("exported tree disagrees with model")
		}
	}
}

func TestJ48PersistInPackage(t *testing.T) {
	d := mltest.Gaussian2Class(150, 3, 2.0, 13)
	m, err := (&J48Trainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	data, ok, err := Marshal(m)
	if !ok || err != nil {
		t.Fatalf("Marshal=(%v,%v)", ok, err)
	}
	restored, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range d.Instances[:30] {
		if restored.Predict(ins.Features) != m.Predict(ins.Features) {
			t.Fatal("round trip changed predictions")
		}
	}
	// Non-tree input reports !ok without error.
	if _, ok, err := Marshal(notATree{}); ok || err != nil {
		t.Fatal("foreign classifier matched")
	}
	if _, err := Unmarshal([]byte(`{"nodes":[],"num_classes":2}`)); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := Unmarshal([]byte(`{"nodes":[{"leaf":true,"counts":[1,1]}],"num_classes":0}`)); err == nil {
		t.Fatal("zero classes accepted")
	}
}

type notATree struct{}

func (notATree) NumClasses() int            { return 2 }
func (notATree) Scores([]float64) []float64 { return []float64{1, 0} }
func (notATree) Predict([]float64) int      { return 0 }
