package tree

import "twosmart/internal/ml"

// Node is a read-only structural view of a trained tree, exported for
// tooling (hardware code generation, visualisation). Leaves carry the
// majority class.
type Node struct {
	Leaf      bool
	Feat      int
	Threshold float64
	Class     int
	Left      *Node // features[Feat] <= Threshold
	Right     *Node
}

// Export returns the structure of a J48 model, or false if c is not one.
func Export(c ml.Classifier) (*Node, bool) {
	m, ok := c.(*j48)
	if !ok {
		return nil, false
	}
	var conv func(n *node) *Node
	conv = func(n *node) *Node {
		out := &Node{Leaf: n.leaf, Feat: n.feat, Threshold: n.threshold}
		best := 0
		for i, cnt := range n.counts {
			if cnt > n.counts[best] {
				best = i
			}
		}
		out.Class = best
		if !n.leaf {
			out.Left = conv(n.left)
			out.Right = conv(n.right)
		}
		return out
	}
	return conv(m.root), true
}
