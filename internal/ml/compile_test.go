package ml_test

import (
	"math"
	"math/rand"
	"testing"

	"twosmart/internal/dataset"
	"twosmart/internal/ml"
	"twosmart/internal/ml/bayes"
	"twosmart/internal/ml/ensemble"
	"twosmart/internal/ml/linear"
	"twosmart/internal/ml/mltest"
	"twosmart/internal/ml/nn"
	"twosmart/internal/ml/rules"
	"twosmart/internal/ml/tree"
)

// compileCases lists every classifier kind the compiled inference layer
// must lower, each with a training set matching its role in the paper
// (binary stage-2 detectors; multiclass stage-1 MLR).
func compileCases() []struct {
	name    string
	trainer ml.Trainer
	data    *dataset.Dataset
	// exact demands bit-identical scores; the folded-standardisation
	// models (MLP, MLR) are allowed last-ulp drift.
	exact bool
} {
	binary := mltest.Gaussian2Class(400, 6, 1.5, 11)
	multi := mltest.MultiClass(500, 5, 6, 2.0, 12)
	return []struct {
		name    string
		trainer ml.Trainer
		data    *dataset.Dataset
		exact   bool
	}{
		{"J48", &tree.J48Trainer{}, binary, true},
		{"JRip", &rules.JRipTrainer{Seed: 3}, binary, true},
		{"OneR", &rules.OneRTrainer{}, binary, true},
		{"MLP", &nn.MLPTrainer{Seed: 3, Epochs: 40}, binary, false},
		{"MLR", &linear.MLRTrainer{Seed: 3, Epochs: 60}, multi, false},
		{"AdaBoost-J48", &ensemble.AdaBoostTrainer{Base: &tree.J48Trainer{}, Rounds: 5, Seed: 3}, binary, true},
		{"J48-multiclass", &tree.J48Trainer{}, multi, true},
		{"JRip-multiclass", &rules.JRipTrainer{Seed: 3}, multi, true},
	}
}

// randomVectors draws feature vectors covering and exceeding the training
// data's range, so compiled evaluators are exercised on interpolated and
// extrapolated inputs alike.
func randomVectors(d *dataset.Dataset, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	dims := d.NumFeatures()
	out := make([][]float64, n)
	for i := range out {
		fv := make([]float64, dims)
		if i%4 == 0 {
			// Wide uniform draws stress out-of-distribution routing.
			for j := range fv {
				fv[j] = (rng.Float64() - 0.5) * 20
			}
		} else {
			src := d.Instances[rng.Intn(d.Len())]
			for j := range fv {
				fv[j] = src.Features[j] + rng.NormFloat64()*0.7
			}
		}
		out[i] = fv
	}
	return out
}

// TestCompiledEquivalence is the compiled layer's contract: for every
// classifier kind, the compiled evaluator must produce identical
// predictions (and matching scores) to the interpreted model over
// randomized feature vectors.
func TestCompiledEquivalence(t *testing.T) {
	for _, tc := range compileCases() {
		t.Run(tc.name, func(t *testing.T) {
			model, err := tc.trainer.Train(tc.data)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := model.(ml.Compilable); !ok {
				t.Fatalf("%T does not implement ml.Compilable", model)
			}
			c := ml.Compile(model)
			if c.NumClasses() != model.NumClasses() {
				t.Fatalf("compiled NumClasses = %d, interpreted %d", c.NumClasses(), model.NumClasses())
			}
			tol := 0.0
			if !tc.exact {
				tol = 1e-9
			}
			dst := make([]float64, c.NumClasses())
			for i, fv := range randomVectors(tc.data, 2000, 100) {
				want := model.Scores(fv)
				c.ScoresInto(dst, fv)
				for cls := range want {
					if diff := math.Abs(dst[cls] - want[cls]); diff > tol {
						t.Fatalf("vector %d class %d: compiled score %v, interpreted %v (diff %g)", i, cls, dst[cls], want[cls], diff)
					}
				}
				if got, want := c.Predict(fv), model.Predict(fv); got != want {
					t.Fatalf("vector %d: compiled Predict = %d, interpreted %d", i, got, want)
				}
			}
		})
	}
}

// TestCompiledZeroAlloc pins the compiled layer's allocation contract: the
// steady-state ScoresInto/Predict paths of every lowered kind must not
// touch the heap. This is the per-model half of the contract the CI
// benchmark gate enforces end to end.
func TestCompiledZeroAlloc(t *testing.T) {
	for _, tc := range compileCases() {
		t.Run(tc.name, func(t *testing.T) {
			model, err := tc.trainer.Train(tc.data)
			if err != nil {
				t.Fatal(err)
			}
			c := ml.Compile(model)
			dst := make([]float64, c.NumClasses())
			fv := append([]float64(nil), tc.data.Instances[0].Features...)
			if allocs := testing.AllocsPerRun(200, func() {
				c.ScoresInto(dst, fv)
			}); allocs != 0 {
				t.Errorf("ScoresInto allocates %.1f objects/op, want 0", allocs)
			}
			if allocs := testing.AllocsPerRun(200, func() {
				c.Predict(fv)
			}); allocs != 0 {
				t.Errorf("Predict allocates %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// TestCompileFallback verifies that classifiers without a lowering (here:
// Naive Bayes) still work through Compile's interpreted adapter.
func TestCompileFallback(t *testing.T) {
	d := mltest.Gaussian2Class(200, 4, 2, 7)
	model, err := (&bayes.NBTrainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	c := ml.Compile(model)
	dst := make([]float64, c.NumClasses())
	for _, ins := range d.Instances[:50] {
		c.ScoresInto(dst, ins.Features)
		want := model.Scores(ins.Features)
		for cls := range want {
			if dst[cls] != want[cls] {
				t.Fatalf("fallback score mismatch: %v vs %v", dst, want)
			}
		}
		if c.Predict(ins.Features) != model.Predict(ins.Features) {
			t.Fatal("fallback Predict mismatch")
		}
	}
}

// TestCompiledSingleLeaf covers the degenerate pure-dataset tree: the
// compiled form has no internal nodes and must still score correctly.
func TestCompiledSingleLeaf(t *testing.T) {
	d := dataset.New([]string{"f0", "f1"}, []string{"benign", "malware"})
	for i := 0; i < 10; i++ {
		d.Add(dataset.Instance{Features: []float64{float64(i), -float64(i)}, Label: 0})
	}
	model, err := (&tree.J48Trainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	c := ml.Compile(model)
	fv := []float64{3, 14}
	want := model.Scores(fv)
	dst := make([]float64, 2)
	c.ScoresInto(dst, fv)
	if dst[0] != want[0] || dst[1] != want[1] {
		t.Fatalf("single-leaf scores %v, want %v", dst, want)
	}
	if c.Predict(fv) != 0 {
		t.Fatalf("single-leaf Predict = %d, want 0", c.Predict(fv))
	}
}

// TestScoreBatch checks the batch API against per-sample evaluation and
// its zero-allocation guarantee.
func TestScoreBatch(t *testing.T) {
	d := mltest.Gaussian2Class(300, 5, 1.5, 21)
	model, err := (&tree.J48Trainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	c := ml.Compile(model)
	k := c.NumClasses()
	samples := randomVectors(d, 64, 22)
	scores := make([]float64, len(samples)*k)
	preds := make([]int, len(samples))
	ml.ScoreBatch(c, scores, samples)
	ml.PredictBatch(c, preds, samples)
	single := make([]float64, k)
	for i, fv := range samples {
		c.ScoresInto(single, fv)
		for cls := 0; cls < k; cls++ {
			if scores[i*k+cls] != single[cls] {
				t.Fatalf("sample %d: batch score %v, single %v", i, scores[i*k:(i+1)*k], single)
			}
		}
		if preds[i] != c.Predict(fv) {
			t.Fatalf("sample %d: batch predict %d, single %d", i, preds[i], c.Predict(fv))
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		ml.ScoreBatch(c, scores, samples)
		ml.PredictBatch(c, preds, samples)
	}); allocs != 0 {
		t.Errorf("batch path allocates %.1f objects/op, want 0", allocs)
	}

	// Shape mismatches must panic loudly rather than scribble.
	mustPanic(t, func() { ml.ScoreBatch(c, scores[:1], samples) })
	mustPanic(t, func() { ml.PredictBatch(c, preds[:1], samples) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
