package shadow

import (
	"context"
	"sync"
	"testing"
	"time"

	"twosmart/internal/core"
	"twosmart/internal/corpus"
	"twosmart/internal/dataset"
	"twosmart/internal/parallel"
	"twosmart/internal/telemetry"
)

var (
	fixOnce sync.Once
	fixErr  error
	fixData *dataset.Dataset
	fixDets [2]*core.Detector
)

func fixtures(t *testing.T) (*core.Detector, *core.Detector, *dataset.Dataset) {
	t.Helper()
	fixOnce.Do(func() {
		data, err := corpus.Collect(corpus.Config{
			Scale:       0.001,
			MinPerClass: 24,
			Budget:      30000,
			Seed:        7,
			Omniscient:  true,
		})
		if err != nil {
			fixErr = err
			return
		}
		fixData, err = data.SelectByName(core.CommonFeatures)
		if err != nil {
			fixErr = err
			return
		}
		for i, seed := range []int64{5, 17} {
			fixDets[i], fixErr = core.Train(fixData, core.TrainConfig{Seed: seed})
			if fixErr != nil {
				return
			}
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixDets[0], fixDets[1], fixData
}

// offerAll feeds every dataset sample through the live detector and into
// the shadow, the way the serving tier does.
func offerAll(t *testing.T, s *Shadow, live *core.CompiledDetector, d *dataset.Dataset) {
	t.Helper()
	for _, ins := range d.Instances {
		v, err := live.Detect(ins.Features)
		if err != nil {
			t.Fatal(err)
		}
		score, err := live.MalwareScore(ins.Features)
		if err != nil {
			t.Fatal(err)
		}
		s.Offer(ins.Features, Primary{Malware: v.Malware, Class: v.PredictedClass.String(), Score: score})
	}
}

// TestShadowAgainstItself pins the zero-divergence baseline: a candidate
// identical to the live model must disagree on nothing.
func TestShadowAgainstItself(t *testing.T) {
	live, _, data := fixtures(t)
	s, err := New(live, Config{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	offerAll(t, s, live.Compile(), data)
	rep := s.Close()
	if rep.Scored == 0 || rep.Errors != 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Disagreements != 0 || rep.VerdictDivergence != 0 {
		t.Fatalf("self-shadow diverged: %+v", rep)
	}
	if rep.MaxScoreDelta != 0 || rep.MeanAbsScoreDelta != 0 {
		t.Fatalf("self-shadow score deltas nonzero: %+v", rep)
	}
	if rep.CandidateVersion != 1 {
		t.Fatalf("candidate version %d", rep.CandidateVersion)
	}
}

// TestShadowDetectsDivergence pins that two differently-seeded models
// produce a measured, per-class-attributed divergence, mirrored into
// telemetry.
func TestShadowDetectsDivergence(t *testing.T) {
	live, cand, data := fixtures(t)
	reg := telemetry.New()
	s, err := New(cand, Config{Version: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	offerAll(t, s, live.Compile(), data)
	rep := s.Close()
	if rep.Scored != uint64(len(data.Instances))-rep.Dropped {
		t.Fatalf("scored %d + dropped %d != offered %d", rep.Scored, rep.Dropped, len(data.Instances))
	}
	if rep.MaxScoreDelta <= 0 {
		t.Fatalf("distinct models produced identical scores everywhere: %+v", rep)
	}
	var perClass uint64
	for _, cs := range rep.PerClass {
		perClass += cs.Observed
	}
	if perClass != rep.Scored {
		t.Fatalf("per-class observed %d != scored %d", perClass, rep.Scored)
	}
	if got := reg.Counter("shadow_observed_total").Value(); got != rep.Scored {
		t.Fatalf("shadow_observed_total = %d, want %d", got, rep.Scored)
	}
	if got := reg.Gauge("shadow_divergence").Value(); got != rep.VerdictDivergence {
		t.Fatalf("shadow_divergence = %v, want %v", got, rep.VerdictDivergence)
	}
}

// TestOfferNeverBlocks pins the shed-before-backpressure contract: with a
// tiny queue and no drain headroom, Offer keeps returning immediately and
// the report accounts for every sample as scored or dropped.
func TestOfferNeverBlocks(t *testing.T) {
	live, cand, data := fixtures(t)
	s, err := New(cand, Config{Queue: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		offerAll(t, s, live.Compile(), data)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Offer blocked")
	}
	rep := s.Close()
	if rep.Scored+rep.Dropped != uint64(len(data.Instances)) {
		t.Fatalf("scored %d + dropped %d != offered %d", rep.Scored, rep.Dropped, len(data.Instances))
	}
}

// TestOfferAfterClose pins that a closed shadow refuses samples instead
// of panicking or hanging.
func TestOfferAfterClose(t *testing.T) {
	live, _, data := fixtures(t)
	s, err := New(live, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if s.Offer(data.Instances[0].Features, Primary{}) {
		t.Fatal("closed shadow accepted a sample")
	}
	s.Close() // idempotent
}

// TestEvaluate pins the offline comparator: self-diff is zero, cross-diff
// matches a sequential streaming shadow on the same data.
func TestEvaluate(t *testing.T) {
	live, cand, data := fixtures(t)
	samples := make([][]float64, len(data.Instances))
	for i, ins := range data.Instances {
		samples[i] = ins.Features
	}

	self, err := Evaluate(context.Background(), live, live, samples, parallel.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if self.Disagreements != 0 || self.MaxScoreDelta != 0 {
		t.Fatalf("self-evaluate diverged: %+v", self)
	}
	if self.Scored != uint64(len(samples)) {
		t.Fatalf("self-evaluate scored %d of %d", self.Scored, len(samples))
	}

	cross, err := Evaluate(context.Background(), live, cand, samples, parallel.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(cand, Config{Queue: len(samples)})
	if err != nil {
		t.Fatal(err)
	}
	offerAll(t, ref, live.Compile(), data)
	want := ref.Close()
	if cross.Disagreements != want.Disagreements || cross.Scored != want.Scored {
		t.Fatalf("parallel evaluate %+v != streaming shadow %+v", cross, want)
	}
	if cross.MaxScoreDelta != want.MaxScoreDelta {
		t.Fatalf("max delta %v != %v", cross.MaxScoreDelta, want.MaxScoreDelta)
	}

	if _, err := Evaluate(context.Background(), live, cand, nil, parallel.Options{}); err == nil {
		t.Fatal("empty sample set accepted")
	}
}
