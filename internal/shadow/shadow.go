// Package shadow scores a candidate model side-by-side with the live one
// so an operator can measure how a new registry version would behave on
// real traffic before promoting it. The live path stays untouched: the
// serving tier hands each scored sample (features plus the primary
// verdict) to a Shadow, which copies it into a bounded queue and returns
// immediately; a drain goroutine re-scores the sample with the candidate
// off the hot path and accumulates divergence statistics. When the queue
// is full the sample is dropped and counted — shadow scoring sheds load
// before it can ever back-pressure live detection.
//
// For offline comparison (cmd/smartctl diff), Evaluate scores a replayed
// sample set under both models at once, fanned out through the shared
// worker pool.
package shadow

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"twosmart/internal/core"
	"twosmart/internal/parallel"
	"twosmart/internal/telemetry"
)

// DefaultQueue is the bounded queue depth when Config.Queue is zero.
const DefaultQueue = 1024

// Config tunes a streaming Shadow.
type Config struct {
	// Queue bounds the copy-in queue; offers beyond it are dropped and
	// counted, never blocked on. Defaults to DefaultQueue.
	Queue int
	// Version is the candidate's registry version, echoed in reports.
	Version int
	// Telemetry receives shadow_* instruments; nil disables.
	Telemetry *telemetry.Registry
}

// Primary is the live path's decision for one sample, the baseline the
// candidate is compared against.
type Primary struct {
	Malware bool
	Class   string  // primary's predicted class name, keys per-class stats
	Score   float64 // primary's malware ranking score
}

type observation struct {
	features []float64 // owned copy
	primary  Primary
}

// ClassStat is the divergence of one primary-predicted class.
type ClassStat struct {
	Observed     uint64  `json:"observed"`
	Disagreed    uint64  `json:"disagreed"`
	MeanAbsDelta float64 `json:"mean_abs_delta"`
}

// Report summarises a shadow run. VerdictDivergence is the fraction of
// scored samples where the candidate's malware decision differed from
// the live model's.
type Report struct {
	CandidateVersion  int                  `json:"candidate_version,omitempty"`
	Scored            uint64               `json:"scored"`
	Dropped           uint64               `json:"dropped"`
	Errors            uint64               `json:"errors"`
	Disagreements     uint64               `json:"disagreements"`
	VerdictDivergence float64              `json:"verdict_divergence"`
	MeanAbsScoreDelta float64              `json:"mean_abs_score_delta"`
	MaxScoreDelta     float64              `json:"max_score_delta"`
	PerClass          map[string]ClassStat `json:"per_class,omitempty"`
}

type stats struct {
	scored        uint64
	errors        uint64
	disagreements uint64
	sumAbsDelta   float64
	maxDelta      float64
	perClass      map[string]*classAcc
}

type classAcc struct {
	observed    uint64
	disagreed   uint64
	sumAbsDelta float64
}

func newStats() stats { return stats{perClass: make(map[string]*classAcc)} }

// observe scores one sample with the candidate and folds the comparison
// into the accumulator.
func (st *stats) observe(cand *core.CompiledDetector, features []float64, p Primary) {
	v, err := cand.Detect(features)
	if err != nil {
		st.errors++
		return
	}
	score, err := cand.MalwareScore(features)
	if err != nil {
		st.errors++
		return
	}
	st.scored++
	delta := math.Abs(score - p.Score)
	st.sumAbsDelta += delta
	if delta > st.maxDelta {
		st.maxDelta = delta
	}
	ca := st.perClass[p.Class]
	if ca == nil {
		ca = &classAcc{}
		st.perClass[p.Class] = ca
	}
	ca.observed++
	ca.sumAbsDelta += delta
	if v.Malware != p.Malware {
		st.disagreements++
		ca.disagreed++
	}
}

func (st *stats) merge(o stats) {
	st.scored += o.scored
	st.errors += o.errors
	st.disagreements += o.disagreements
	st.sumAbsDelta += o.sumAbsDelta
	if o.maxDelta > st.maxDelta {
		st.maxDelta = o.maxDelta
	}
	for name, ca := range o.perClass {
		dst := st.perClass[name]
		if dst == nil {
			dst = &classAcc{}
			st.perClass[name] = dst
		}
		dst.observed += ca.observed
		dst.disagreed += ca.disagreed
		dst.sumAbsDelta += ca.sumAbsDelta
	}
}

func (st *stats) report(version int, dropped uint64) Report {
	rep := Report{
		CandidateVersion: version,
		Scored:           st.scored,
		Dropped:          dropped,
		Errors:           st.errors,
		Disagreements:    st.disagreements,
		MaxScoreDelta:    st.maxDelta,
	}
	if st.scored > 0 {
		rep.VerdictDivergence = float64(st.disagreements) / float64(st.scored)
		rep.MeanAbsScoreDelta = st.sumAbsDelta / float64(st.scored)
	}
	if len(st.perClass) > 0 {
		rep.PerClass = make(map[string]ClassStat, len(st.perClass))
		for name, ca := range st.perClass {
			cs := ClassStat{Observed: ca.observed, Disagreed: ca.disagreed}
			if ca.observed > 0 {
				cs.MeanAbsDelta = ca.sumAbsDelta / float64(ca.observed)
			}
			rep.PerClass[name] = cs
		}
	}
	return rep
}

// Shadow re-scores live traffic with a candidate model off the hot path.
// Offer is safe for concurrent use; Close drains and stops the scorer.
type Shadow struct {
	cand    *core.CompiledDetector
	version int

	queue chan observation
	stop  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup

	mu      sync.Mutex
	st      stats
	dropped uint64

	observedC telemetry.Counter
	droppedC  telemetry.Counter
	disagreeC telemetry.Counter
	divergeG  telemetry.Gauge
}

// New compiles the candidate and starts the drain goroutine.
func New(candidate *core.Detector, cfg Config) (*Shadow, error) {
	if candidate == nil {
		return nil, errors.New("shadow: nil candidate detector")
	}
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultQueue
	}
	s := &Shadow{
		cand:      candidate.Compile(),
		version:   cfg.Version,
		queue:     make(chan observation, cfg.Queue),
		stop:      make(chan struct{}),
		st:        newStats(),
		observedC: cfg.Telemetry.Counter("shadow_observed_total"),
		droppedC:  cfg.Telemetry.Counter("shadow_dropped_total"),
		disagreeC: cfg.Telemetry.Counter("shadow_disagreements_total"),
		divergeG:  cfg.Telemetry.Gauge("shadow_divergence"),
	}
	s.wg.Add(1)
	go s.drain()
	return s, nil
}

// NumFeatures returns the candidate's feature width.
func (s *Shadow) NumFeatures() int { return s.cand.NumFeatures() }

// Version returns the candidate's registry version.
func (s *Shadow) Version() int { return s.version }

// Offer hands one already-scored live sample to the shadow. The feature
// vector is copied, so the caller may reuse its buffer. It never blocks:
// when the queue is full (or the shadow is closed) the sample is dropped,
// counted, and false is returned.
func (s *Shadow) Offer(features []float64, primary Primary) bool {
	select {
	case <-s.stop:
		return false
	default:
	}
	o := observation{features: append([]float64(nil), features...), primary: primary}
	select {
	case s.queue <- o:
		return true
	default:
		s.mu.Lock()
		s.dropped++
		s.mu.Unlock()
		s.droppedC.Inc()
		return false
	}
}

func (s *Shadow) drain() {
	defer s.wg.Done()
	for {
		select {
		case o := <-s.queue:
			s.score(o)
		case <-s.stop:
			for {
				select {
				case o := <-s.queue:
					s.score(o)
				default:
					return
				}
			}
		}
	}
}

func (s *Shadow) score(o observation) {
	s.mu.Lock()
	before := s.st.disagreements
	s.st.observe(s.cand, o.features, o.primary)
	disagreed := s.st.disagreements - before
	var div float64
	if s.st.scored > 0 {
		div = float64(s.st.disagreements) / float64(s.st.scored)
	}
	s.mu.Unlock()
	s.observedC.Inc()
	if disagreed > 0 {
		s.disagreeC.Inc()
	}
	s.divergeG.Set(div)
}

// Report returns a snapshot of the divergence accumulated so far.
func (s *Shadow) Report() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.report(s.version, s.dropped)
}

// Close stops accepting samples, drains what is already queued, waits for
// the scorer to finish and returns the final report. Safe to call more
// than once.
func (s *Shadow) Close() Report {
	s.once.Do(func() { close(s.stop) })
	s.wg.Wait()
	return s.Report()
}

// Evaluate replays a sample set under both models at once and reports
// the candidate's divergence from the baseline, fanning the work out
// through the shared worker pool. Each worker compiles its own pair of
// detectors (compiled detectors are single-goroutine by contract).
func Evaluate(ctx context.Context, baseline, candidate *core.Detector, samples [][]float64, opts parallel.Options) (Report, error) {
	if baseline == nil || candidate == nil {
		return Report{}, errors.New("shadow: nil detector")
	}
	if len(samples) == 0 {
		return Report{}, errors.New("shadow: no samples to evaluate")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(samples) {
		workers = len(samples)
	}
	chunk := (len(samples) + workers - 1) / workers
	parts, err := parallel.Map(ctx, workers, opts, func(_ context.Context, w int) (stats, error) {
		lo := w * chunk
		hi := min(lo+chunk, len(samples))
		base, cand := baseline.Compile(), candidate.Compile()
		st := newStats()
		for _, features := range samples[lo:hi] {
			v, err := base.Detect(features)
			if err != nil {
				return stats{}, fmt.Errorf("shadow: baseline: %w", err)
			}
			score, err := base.MalwareScore(features)
			if err != nil {
				return stats{}, fmt.Errorf("shadow: baseline: %w", err)
			}
			st.observe(cand, features, Primary{
				Malware: v.Malware,
				Class:   v.PredictedClass.String(),
				Score:   score,
			})
		}
		return st, nil
	})
	if err != nil {
		return Report{}, err
	}
	total := newStats()
	for _, st := range parts {
		total.merge(st)
	}
	if total.errors > 0 && total.scored == 0 {
		return Report{}, fmt.Errorf("shadow: candidate scored none of %d samples (feature width mismatch?)", len(samples))
	}
	return total.report(0, 0), nil
}
