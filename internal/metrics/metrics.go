// Package metrics implements the evaluation metrics the paper reports:
// precision, recall, F-measure (the detection-rate metric), accuracy,
// ROC curves and the area under the ROC curve (the robustness metric), and
// the combined detection-performance metric F x AUC.
package metrics

import (
	"errors"
	"fmt"
	"sort"
)

// Confusion is a binary confusion matrix with the malware-detection
// convention: positive = malware.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add accumulates one prediction.
func (c *Confusion) Add(actualPositive, predictedPositive bool) {
	switch {
	case actualPositive && predictedPositive:
		c.TP++
	case actualPositive && !predictedPositive:
		c.FN++
	case !actualPositive && predictedPositive:
		c.FP++
	default:
		c.TN++
	}
}

// Total returns the number of accumulated predictions.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Precision returns TP/(TP+FP), or 0 when no positives were predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there are no actual positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall: 2pr/(p+r).
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct predictions.
func (c Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(t)
}

// String renders the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d", c.TP, c.FP, c.TN, c.FN)
}

// MultiConfusion is a k-class confusion matrix; Counts[actual][predicted].
type MultiConfusion struct {
	Classes []string
	Counts  [][]int
}

// NewMultiConfusion returns an empty k-class matrix.
func NewMultiConfusion(classes []string) *MultiConfusion {
	counts := make([][]int, len(classes))
	for i := range counts {
		counts[i] = make([]int, len(classes))
	}
	return &MultiConfusion{Classes: append([]string(nil), classes...), Counts: counts}
}

// Add accumulates one prediction.
func (m *MultiConfusion) Add(actual, predicted int) error {
	k := len(m.Classes)
	if actual < 0 || actual >= k || predicted < 0 || predicted >= k {
		return fmt.Errorf("metrics: class index out of range (actual=%d predicted=%d k=%d)", actual, predicted, k)
	}
	m.Counts[actual][predicted]++
	return nil
}

// Total returns the number of accumulated predictions.
func (m *MultiConfusion) Total() int {
	t := 0
	for _, row := range m.Counts {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Accuracy returns the overall fraction of correct predictions.
func (m *MultiConfusion) Accuracy() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	correct := 0
	for i := range m.Counts {
		correct += m.Counts[i][i]
	}
	return float64(correct) / float64(t)
}

// PerClass returns the one-vs-rest binary confusion for class i.
func (m *MultiConfusion) PerClass(i int) Confusion {
	var c Confusion
	for a, row := range m.Counts {
		for p, n := range row {
			switch {
			case a == i && p == i:
				c.TP += n
			case a == i && p != i:
				c.FN += n
			case a != i && p == i:
				c.FP += n
			default:
				c.TN += n
			}
		}
	}
	return c
}

// MacroF1 returns the unweighted mean of per-class F1 scores.
func (m *MultiConfusion) MacroF1() float64 {
	if len(m.Classes) == 0 {
		return 0
	}
	var sum float64
	for i := range m.Classes {
		sum += m.PerClass(i).F1()
	}
	return sum / float64(len(m.Classes))
}

// ROCPoint is one (false-positive-rate, true-positive-rate) point.
type ROCPoint struct {
	FPR, TPR float64
}

// ROC computes the ROC curve for scores (higher = more likely positive)
// against binary labels (true = positive). Points are ordered from (0,0)
// to (1,1), one per distinct threshold.
func ROC(scores []float64, labels []bool) ([]ROCPoint, error) {
	if len(scores) != len(labels) {
		return nil, errors.New("metrics: scores and labels length mismatch")
	}
	var pos, neg int
	for _, l := range labels {
		if l {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, errors.New("metrics: ROC requires both positive and negative instances")
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	points := []ROCPoint{{0, 0}}
	tp, fp := 0, 0
	i := 0
	for i < len(idx) {
		// Process ties together: all instances with equal score share a
		// threshold.
		j := i
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			if labels[idx[j]] {
				tp++
			} else {
				fp++
			}
			j++
		}
		i = j
		points = append(points, ROCPoint{
			FPR: float64(fp) / float64(neg),
			TPR: float64(tp) / float64(pos),
		})
	}
	return points, nil
}

// AUC returns the area under the ROC curve by trapezoidal integration,
// equivalent to the Mann-Whitney U statistic with tie correction.
func AUC(scores []float64, labels []bool) (float64, error) {
	points, err := ROC(scores, labels)
	if err != nil {
		return 0, err
	}
	var area float64
	for i := 1; i < len(points); i++ {
		dx := points[i].FPR - points[i-1].FPR
		area += dx * (points[i].TPR + points[i-1].TPR) / 2
	}
	return area, nil
}

// DetectionPerformance is the paper's combined metric: F-measure times
// robustness (AUC). Both inputs are in [0,1]; the result is in [0,1].
func DetectionPerformance(f1, auc float64) float64 { return f1 * auc }
