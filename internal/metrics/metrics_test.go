package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestConfusionBasics(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, true)   // TP
	c.Add(true, false)  // FN
	c.Add(false, true)  // FP
	c.Add(false, false) // TN
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("confusion %v", c)
	}
	if c.Total() != 5 {
		t.Fatalf("total=%d", c.Total())
	}
	if p := c.Precision(); math.Abs(p-2.0/3) > 1e-9 {
		t.Fatalf("precision=%v", p)
	}
	if r := c.Recall(); math.Abs(r-2.0/3) > 1e-9 {
		t.Fatalf("recall=%v", r)
	}
	if f := c.F1(); math.Abs(f-2.0/3) > 1e-9 {
		t.Fatalf("f1=%v", f)
	}
	if a := c.Accuracy(); math.Abs(a-0.6) > 1e-9 {
		t.Fatalf("accuracy=%v", a)
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Fatal("empty confusion must yield zeros")
	}
	c.Add(false, false)
	if c.F1() != 0 {
		t.Fatal("no-positives F1 must be 0")
	}
}

func TestF1HarmonicMeanProperty(t *testing.T) {
	// F1 is always between min and max of precision and recall, and equals
	// them when they are equal.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		c := Confusion{TP: rng.Intn(50) + 1, FP: rng.Intn(50), TN: rng.Intn(50), FN: rng.Intn(50)}
		p, r, f := c.Precision(), c.Recall(), c.F1()
		lo, hi := math.Min(p, r), math.Max(p, r)
		if f < lo-1e-12 || f > hi+1e-12 {
			t.Fatalf("F1 %v outside [%v,%v]", f, lo, hi)
		}
	}
}

func TestMultiConfusion(t *testing.T) {
	m := NewMultiConfusion([]string{"a", "b", "c"})
	m.Add(0, 0)
	m.Add(0, 1)
	m.Add(1, 1)
	m.Add(2, 2)
	m.Add(2, 0)
	if m.Total() != 5 {
		t.Fatalf("total=%d", m.Total())
	}
	if acc := m.Accuracy(); math.Abs(acc-0.6) > 1e-9 {
		t.Fatalf("accuracy=%v", acc)
	}
	pc := m.PerClass(0)
	if pc.TP != 1 || pc.FN != 1 || pc.FP != 1 || pc.TN != 2 {
		t.Fatalf("per-class confusion %v", pc)
	}
	if m.MacroF1() <= 0 || m.MacroF1() > 1 {
		t.Fatalf("macro F1 = %v", m.MacroF1())
	}
	if err := m.Add(5, 0); err == nil {
		t.Fatal("out-of-range class accepted")
	}
}

func TestROCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("perfect AUC=%v, want 1", auc)
	}
}

func TestROCWorstClassifier(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{true, true, false, false}
	auc, _ := AUC(scores, labels)
	if auc != 0 {
		t.Fatalf("inverted AUC=%v, want 0", auc)
	}
}

func TestROCRandomClassifierNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 4000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2) == 0
	}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.03 {
		t.Fatalf("random AUC=%v, want ~0.5", auc)
	}
}

func TestROCTieHandling(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5 (one diagonal segment).
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.5 {
		t.Fatalf("all-ties AUC=%v, want 0.5", auc)
	}
	points, _ := ROC(scores, labels)
	if len(points) != 2 {
		t.Fatalf("all-ties ROC has %d points, want 2", len(points))
	}
}

func TestROCErrors(t *testing.T) {
	if _, err := ROC([]float64{1}, []bool{true, false}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ROC([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Fatal("single-class ROC accepted")
	}
}

func TestROCMonotonicProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(100)
		scores := make([]float64, n)
		labels := make([]bool, n)
		pos := false
		neg := false
		for i := range scores {
			scores[i] = rng.NormFloat64()
			labels[i] = rng.Intn(2) == 0
			if labels[i] {
				pos = true
			} else {
				neg = true
			}
		}
		if !pos || !neg {
			continue
		}
		points, err := ROC(scores, labels)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(points); i++ {
			if points[i].FPR < points[i-1].FPR || points[i].TPR < points[i-1].TPR {
				t.Fatal("ROC not monotonic")
			}
		}
		last := points[len(points)-1]
		if last.FPR != 1 || last.TPR != 1 {
			t.Fatalf("ROC does not end at (1,1): %+v", last)
		}
	}
}

func TestAUCSeparationProperty(t *testing.T) {
	// Better-separated score distributions give higher AUC.
	rng := rand.New(rand.NewSource(5))
	aucAt := func(sep float64) float64 {
		n := 1000
		scores := make([]float64, 2*n)
		labels := make([]bool, 2*n)
		for i := 0; i < n; i++ {
			scores[i] = rng.NormFloat64() + sep
			labels[i] = true
			scores[n+i] = rng.NormFloat64()
			labels[n+i] = false
		}
		a, err := AUC(scores, labels)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	weak, strong := aucPair(aucAt)
	if strong <= weak {
		t.Fatalf("AUC not increasing with separation: weak=%v strong=%v", weak, strong)
	}
}

func aucPair(auc func(float64) float64) (weak, strong float64) {
	return auc(0.5), auc(3.0)
}

func TestDetectionPerformance(t *testing.T) {
	if math.Abs(DetectionPerformance(0.9, 0.8)-0.72) > 1e-12 {
		t.Fatal("detection performance must be F x AUC")
	}
}

func TestConfusionString(t *testing.T) {
	c := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	if c.String() != "TP=1 FP=2 TN=3 FN=4" {
		t.Fatalf("String=%q", c.String())
	}
}
