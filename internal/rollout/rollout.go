// Package rollout is the staged canary rollout controller: it drives a
// registry candidate version through pin → bake → gate → widen /
// rollback, with every decision backed by scraped fleet evidence.
//
// The mechanism under it is the registry pin table (registry.Pin): the
// controller pins the candidate to one canary shard, whose
// smartserve -shard-id watch picks it up through the ordinary hot-swap
// path, while the rest of the fleet keeps serving the active version.
// During the bake window the controller repeatedly scrapes the canary
// and the baseline shards (internal/fleet) and evaluates explicit
// gates — shadow divergence, p99 latency regression ratio, the drift
// monitor's retrain-or-rollback verdict, and a minimum canary sample
// count so an idle canary can never pass vacuously. Any gate failure
// rolls the pin back immediately and records why; surviving the full
// bake widens the candidate fleet-wide (Promote + Unpin) through the
// same watch path.
//
// State is durable: rollout.json in the registry root is written
// atomically after every transition and every gate evaluation, so
// `smartctl rollout status` (and a post-mortem) can always see the full
// evidence trail. Aborting is cooperative — `smartctl rollout abort`
// drops a flag file the controller polls — because the registry allows
// only one manifest writer at a time and the controller is it.
package rollout

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"twosmart/internal/fleet"
	"twosmart/internal/registry"
	"twosmart/internal/telemetry"
)

// Phase is a rollout state-machine state.
type Phase string

const (
	// PhasePinning: the candidate is pinned; waiting for the canary
	// shard to report it is actually serving the candidate version.
	PhasePinning Phase = "pinning"
	// PhaseBaking: the canary serves the candidate; evidence is being
	// collected and gated.
	PhaseBaking Phase = "baking"
	// PhaseWidened: every gate held for the whole bake window; the
	// candidate was promoted fleet-wide and the pin removed.
	PhaseWidened Phase = "widened"
	// PhaseRolledBack: a gate failed (or the canary never converged);
	// the pin was removed and the fleet stayed on the baseline.
	PhaseRolledBack Phase = "rolled_back"
	// PhaseAborted: an operator abort unpinned the canary mid-bake.
	PhaseAborted Phase = "aborted"
)

// phaseOrd maps phases onto the rollout_state gauge: the numeric
// encoding is part of the telemetry contract.
var phaseOrd = map[Phase]float64{
	PhasePinning:    1,
	PhaseBaking:     2,
	PhaseWidened:    3,
	PhaseRolledBack: 4,
	PhaseAborted:    5,
}

const (
	// StateFile is the durable controller state, in the registry root.
	StateFile = "rollout.json"
	// abortFile is the cooperative abort flag, in the registry root.
	abortFile = "rollout.abort"
	// stateSchema guards the state document against skew the same way
	// the manifest version does.
	stateSchema = 1
)

// Gates are the explicit promotion thresholds. The drift gate has no
// knob: a retrain-or-rollback verdict on the canary always fails it.
type Gates struct {
	// MaxDivergence fails the gate when the canary's shadow_divergence
	// gauge exceeds it. <= 0 disables the gate; a canary without shadow
	// scoring skips it either way (recorded as divergence -1).
	MaxDivergence float64 `json:"max_divergence"`
	// MaxP99Ratio fails the gate when canary p99 / worst baseline p99
	// exceeds it. <= 0 disables the gate.
	MaxP99Ratio float64 `json:"max_p99_ratio"`
	// MinSamples fails the gate when the canary scored fewer verdicts
	// than this over the evaluation window — an idle canary is not
	// evidence. <= 0 disables the gate.
	MinSamples float64 `json:"min_samples"`
}

// Side is one side of the canary-vs-baseline comparison over an
// evaluation window.
type Side struct {
	Addrs       []string `json:"addrs"`
	Verdicts    float64  `json:"verdicts"`     // verdicts scored in the window
	VerdictRate float64  `json:"verdict_rate"` // verdicts/s
	ShedRate    float64  `json:"shed_rate"`    // shed samples/s
	P99         float64  `json:"p99_seconds"`  // worst per-shard window p99
}

// Evaluation is one gate pass: the evidence both sides produced and the
// verdict the gates reached on it.
type Evaluation struct {
	At       time.Time `json:"at"`
	Canary   Side      `json:"canary"`
	Baseline Side      `json:"baseline"`
	// P99Ratio is canary p99 / baseline p99 (0 when either side saw no
	// traffic — the min-samples gate owns that case).
	P99Ratio float64 `json:"p99_ratio"`
	// Divergence is the canary's shadow_divergence gauge, -1 when the
	// canary runs no shadow scorer.
	Divergence float64 `json:"divergence"`
	// DriftRetrain is true when the canary's drift monitor recommends
	// retrain-or-rollback.
	DriftRetrain bool `json:"drift_retrain"`
	// Pass is the combined gate verdict; Failures lists every gate that
	// tripped, in evaluation order.
	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

// State is the durable rollout document (rollout.json).
type State struct {
	SchemaVersion int    `json:"schema_version"`
	Phase         Phase  `json:"phase"`
	Candidate     int    `json:"candidate_version"`
	Baseline      int    `json:"baseline_version"`
	CanaryShard   string `json:"canary_shard"`
	CanaryAddr    string `json:"canary_addr"`
	// BaselineAddrs are the telemetry addresses of the shards still on
	// the baseline version — the comparison population.
	BaselineAddrs []string  `json:"baseline_addrs"`
	Gates         Gates     `json:"gates"`
	StartedAt     time.Time `json:"started_at"`
	UpdatedAt     time.Time `json:"updated_at"`
	BakeSeconds   float64   `json:"bake_seconds"`
	// Evaluations is the full evidence trail, oldest first.
	Evaluations []Evaluation `json:"evaluations,omitempty"`
	// Reason records why a terminal phase was reached ("every gate held
	// for the bake window", "gate failed: ...", "operator abort").
	Reason string `json:"reason,omitempty"`
}

// Config parameterizes a Controller.
type Config struct {
	Registry  *registry.Registry
	Candidate int // candidate version to roll out
	// CanaryShard is the registry pin key — the canary's -shard-id.
	CanaryShard string
	// CanaryAddr is the canary shard's telemetry address (host:port of
	// its -telemetry-addr), scraped for canary-side evidence.
	CanaryAddr string
	// BaselineAddrs are the baseline shards' telemetry addresses.
	BaselineAddrs []string
	// Bake is the total bake window. Defaults to 2 minutes.
	Bake time.Duration
	// Every is the gate evaluation cadence; each evaluation scrapes
	// both sides twice, Every apart, and gates the deltas. Defaults to
	// Bake/4 (at least a second).
	Every time.Duration
	// ConvergeTimeout bounds how long the canary may take to report the
	// candidate version after the pin lands. Defaults to 30s.
	ConvergeTimeout time.Duration
	Gates           Gates
	Telemetry       *telemetry.Registry
	Log             *slog.Logger
	Client          *http.Client
}

// Controller drives one rollout. Build with New, run with Run.
type Controller struct {
	cfg   Config
	state *State

	stateGauge  telemetry.Gauge
	evals       telemetry.Counter
	gateFails   telemetry.Counter
	widens      telemetry.Counter
	rollbacks   telemetry.Counter
	nonFiniteCt telemetry.Counter
}

// New validates the configuration and builds a controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Registry == nil {
		return nil, errors.New("rollout: registry required")
	}
	if cfg.Candidate <= 0 {
		return nil, errors.New("rollout: candidate version required")
	}
	if cfg.CanaryShard == "" {
		return nil, errors.New("rollout: canary shard id required")
	}
	if cfg.CanaryAddr == "" {
		return nil, errors.New("rollout: canary telemetry address required")
	}
	if len(cfg.BaselineAddrs) == 0 {
		return nil, errors.New("rollout: at least one baseline telemetry address required")
	}
	if cfg.Bake <= 0 {
		cfg.Bake = 2 * time.Minute
	}
	if cfg.Every <= 0 {
		cfg.Every = cfg.Bake / 4
		if cfg.Every < time.Second {
			cfg.Every = time.Second
		}
	}
	if cfg.ConvergeTimeout <= 0 {
		cfg.ConvergeTimeout = 30 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.Log == nil {
		cfg.Log = slog.Default()
	}
	reg := cfg.Telemetry
	return &Controller{
		cfg:         cfg,
		stateGauge:  reg.Gauge("rollout_state"),
		evals:       reg.Counter("rollout_gate_evaluations_total"),
		gateFails:   reg.Counter("rollout_gate_failures_total"),
		widens:      reg.Counter("rollout_widens_total"),
		rollbacks:   reg.Counter("rollout_rollbacks_total"),
		nonFiniteCt: reg.Counter("rollout_nonfinite_samples_total"),
	}, nil
}

// statePath returns the durable state document's location for a registry.
func statePath(r *registry.Registry) string { return filepath.Join(r.Root(), StateFile) }

func abortPath(r *registry.Registry) string { return filepath.Join(r.Root(), abortFile) }

// ReadState loads a registry's rollout state, or (nil, nil) when no
// rollout was ever run against it.
func ReadState(r *registry.Registry) (*State, error) {
	data, err := os.ReadFile(statePath(r))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("rollout: %w", err)
	}
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("rollout: reading %s: %w", StateFile, err)
	}
	if st.SchemaVersion != stateSchema {
		return nil, fmt.Errorf("rollout: unsupported state schema %d (this build reads v%d)",
			st.SchemaVersion, stateSchema)
	}
	return &st, nil
}

// RequestAbort drops the cooperative abort flag. The running controller
// — the registry's single manifest writer — observes it at its next
// poll, unpins the canary and records the abort; this call never
// touches the manifest itself.
func RequestAbort(r *registry.Registry) error {
	st, err := ReadState(r)
	if err != nil {
		return err
	}
	if st == nil || (st.Phase != PhaseBaking && st.Phase != PhasePinning) {
		return errors.New("rollout: no rollout in progress")
	}
	return atomicWrite(abortPath(r), []byte(time.Now().UTC().Format(time.RFC3339)+"\n"))
}

// save persists the state document atomically and mirrors the phase
// onto the rollout_state gauge.
func (c *Controller) save() error {
	c.state.UpdatedAt = time.Now().UTC()
	data, err := json.MarshalIndent(c.state, "", "  ")
	if err != nil {
		return fmt.Errorf("rollout: %w", err)
	}
	c.stateGauge.Set(phaseOrd[c.state.Phase])
	return atomicWrite(statePath(c.cfg.Registry), append(data, '\n'))
}

// Run executes the rollout to a terminal phase and returns the final
// state. A gate failure or failed canary convergence is not an error —
// it is a successful rollback, reported in the state; the error return
// covers registry and persistence failures only.
func (c *Controller) Run(ctx context.Context) (*State, error) {
	reg := c.cfg.Registry
	if prev, err := ReadState(reg); err != nil {
		return nil, err
	} else if prev != nil && (prev.Phase == PhaseBaking || prev.Phase == PhasePinning) {
		return nil, fmt.Errorf("rollout: a rollout is already %s (candidate v%d); abort it first", prev.Phase, prev.Candidate)
	}
	os.Remove(abortPath(reg)) // a stale flag must not kill the new run

	active, err := reg.ActiveEntry()
	if err != nil {
		return nil, err
	}
	if active.Version == c.cfg.Candidate {
		return nil, fmt.Errorf("rollout: candidate v%d is already the active version", c.cfg.Candidate)
	}
	if _, err := reg.Pin(c.cfg.CanaryShard, c.cfg.Candidate); err != nil {
		return nil, err
	}
	now := time.Now().UTC()
	c.state = &State{
		SchemaVersion: stateSchema,
		Phase:         PhasePinning,
		Candidate:     c.cfg.Candidate,
		Baseline:      active.Version,
		CanaryShard:   c.cfg.CanaryShard,
		CanaryAddr:    c.cfg.CanaryAddr,
		BaselineAddrs: c.cfg.BaselineAddrs,
		Gates:         c.cfg.Gates,
		StartedAt:     now,
		BakeSeconds:   c.cfg.Bake.Seconds(),
	}
	if err := c.save(); err != nil {
		return nil, err
	}
	c.cfg.Log.Info("rollout started: candidate pinned to canary",
		"candidate", c.cfg.Candidate, "baseline", active.Version,
		"canary_shard", c.cfg.CanaryShard, "bake", c.cfg.Bake)

	if reason, err := c.awaitConvergence(ctx); err != nil {
		return nil, err
	} else if reason != "" {
		return c.state, c.rollback(reason)
	}

	c.state.Phase = PhaseBaking
	if err := c.save(); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(c.cfg.Bake)
	for {
		if aborted, err := c.checkAbort(); err != nil || aborted {
			return c.state, err
		}
		ev, err := c.evaluate(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return c.state, ctx.Err()
			}
			// A torn scrape is not a gate verdict; log and retry on the
			// next pass. The bake clock keeps running.
			c.cfg.Log.Warn("evidence scrape failed", "err", err)
		} else {
			c.state.Evaluations = append(c.state.Evaluations, *ev)
			c.evals.Inc()
			if err := c.save(); err != nil {
				return nil, err
			}
			c.cfg.Log.Info("gate evaluated",
				"pass", ev.Pass, "failures", ev.Failures,
				"canary_verdicts", ev.Canary.Verdicts, "p99_ratio", ev.P99Ratio,
				"divergence", ev.Divergence, "drift_retrain", ev.DriftRetrain)
			if !ev.Pass {
				c.gateFails.Inc()
				return c.state, c.rollback("gate failed: " + joinFailures(ev.Failures))
			}
		}
		if time.Now().After(deadline) {
			break
		}
		if aborted, err := c.checkAbort(); err != nil || aborted {
			return c.state, err
		}
	}

	if len(c.state.Evaluations) == 0 {
		// The whole bake produced no evidence (every scrape failed);
		// widening on none would be a vacuous pass.
		return c.state, c.rollback("no gate evaluation succeeded during the bake window")
	}
	return c.state, c.widen()
}

// awaitConvergence polls the canary's /metrics until serve_model_info
// reports the candidate as the active generation. Returns a rollback
// reason ("" on success); the error return is for context cancellation.
func (c *Controller) awaitConvergence(ctx context.Context) (string, error) {
	deadline := time.Now().Add(c.cfg.ConvergeTimeout)
	for {
		m, err := fleet.FetchMetrics(ctx, c.cfg.Client, c.cfg.CanaryAddr)
		if err == nil {
			for _, info := range m.Family("serve_model_info") {
				if info.Value == 1 && info.Label("version") == fmt.Sprint(c.cfg.Candidate) {
					c.cfg.Log.Info("canary converged on candidate", "version", c.cfg.Candidate)
					return "", nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Sprintf("canary %s never reported candidate v%d within %s (is it running -watch with -shard-id %s?)",
				c.cfg.CanaryAddr, c.cfg.Candidate, c.cfg.ConvergeTimeout, c.cfg.CanaryShard), nil
		}
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// evaluate collects one evidence window — both sides scraped twice,
// Every apart — and runs the gates over it.
func (c *Controller) evaluate(ctx context.Context) (*Evaluation, error) {
	addrs := append([]string{c.cfg.CanaryAddr}, c.cfg.BaselineAddrs...)
	before, err := c.scrape(ctx, addrs)
	if err != nil {
		return nil, err
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(c.cfg.Every):
	}
	after, err := c.scrape(ctx, addrs)
	if err != nil {
		return nil, err
	}
	sec := c.cfg.Every.Seconds()

	ev := &Evaluation{
		At:         time.Now().UTC(),
		Canary:     sideEvidence([]string{c.cfg.CanaryAddr}, before, after, sec),
		Baseline:   sideEvidence(c.cfg.BaselineAddrs, before, after, sec),
		Divergence: -1,
	}
	if d, ok := after[c.cfg.CanaryAddr].Get("shadow_divergence"); ok {
		ev.Divergence = d
	}
	if alert, ok := after[c.cfg.CanaryAddr].Get("drift_alert"); ok && alert >= 1 {
		ev.DriftRetrain = true
	}
	if ev.Canary.P99 > 0 && ev.Baseline.P99 > 0 {
		ev.P99Ratio = ev.Canary.P99 / ev.Baseline.P99
	}
	ev.Pass, ev.Failures = c.cfg.Gates.check(ev)
	return ev, nil
}

// check runs every gate over one evaluation, returning the combined
// verdict and the failures in evaluation order.
func (g Gates) check(ev *Evaluation) (bool, []string) {
	var failures []string
	if g.MinSamples > 0 && ev.Canary.Verdicts < g.MinSamples {
		failures = append(failures, fmt.Sprintf("min-samples: canary scored %.0f verdicts in the window, need %.0f (an idle canary is not evidence)",
			ev.Canary.Verdicts, g.MinSamples))
	}
	if ev.DriftRetrain {
		failures = append(failures, "drift: canary drift monitor recommends retrain-or-rollback")
	}
	if g.MaxDivergence > 0 && ev.Divergence >= 0 && ev.Divergence > g.MaxDivergence {
		failures = append(failures, fmt.Sprintf("divergence: canary shadow divergence %.4f exceeds max %.4f",
			ev.Divergence, g.MaxDivergence))
	}
	if g.MaxP99Ratio > 0 && ev.P99Ratio > g.MaxP99Ratio {
		failures = append(failures, fmt.Sprintf("p99: canary/baseline latency ratio %.2f exceeds max %.2f",
			ev.P99Ratio, g.MaxP99Ratio))
	}
	return len(failures) == 0, failures
}

// scrape fetches /metrics from every addr; any failure fails the whole
// evidence window (a half-blind comparison is worse than none).
func (c *Controller) scrape(ctx context.Context, addrs []string) (map[string]*fleet.Metrics, error) {
	out := make(map[string]*fleet.Metrics, len(addrs))
	for _, addr := range addrs {
		m, err := fleet.FetchMetrics(ctx, c.cfg.Client, addr)
		if err != nil {
			return nil, fmt.Errorf("scrape %s: %w", addr, err)
		}
		if m.NonFinite > 0 {
			c.nonFiniteCt.Add(uint64(m.NonFinite))
		}
		out[addr] = m
	}
	return out, nil
}

// sideEvidence folds one side's scrape pairs into its window evidence.
// Rates sum across the side's shards; p99 takes the worst shard, so a
// single slow canary cannot hide behind a fast fleet mean.
func sideEvidence(addrs []string, before, after map[string]*fleet.Metrics, sec float64) Side {
	s := Side{Addrs: addrs}
	for _, addr := range addrs {
		b, a := before[addr], after[addr]
		s.Verdicts += fleet.Delta(b, a, "serve_verdicts_total")
		s.ShedRate += fleet.Delta(b, a, "serve_shed_total") / sec
		p99 := fleet.DeltaQuantile(b, a, "serve_verdict_latency_seconds", 0.99)
		if p99 > s.P99 {
			s.P99 = p99
		}
	}
	s.VerdictRate = s.Verdicts / sec
	return s
}

// checkAbort polls the cooperative abort flag; when set it unpins the
// canary, records the abort and reports true.
func (c *Controller) checkAbort() (bool, error) {
	if _, err := os.Stat(abortPath(c.cfg.Registry)); err != nil {
		return false, nil
	}
	os.Remove(abortPath(c.cfg.Registry))
	if err := c.cfg.Registry.Unpin(c.cfg.CanaryShard); err != nil {
		return true, err
	}
	c.state.Phase = PhaseAborted
	c.state.Reason = "operator abort"
	c.cfg.Log.Warn("rollout aborted by operator; canary unpinned",
		"candidate", c.state.Candidate, "baseline", c.state.Baseline)
	return true, c.save()
}

// rollback unpins the canary — its watch swaps it back to the baseline
// — and records why. Not an error: a rollback is the controller doing
// its job.
func (c *Controller) rollback(reason string) error {
	if err := c.cfg.Registry.Unpin(c.cfg.CanaryShard); err != nil {
		return err
	}
	c.rollbacks.Inc()
	c.state.Phase = PhaseRolledBack
	c.state.Reason = reason
	c.cfg.Log.Warn("rollout rolled back; canary unpinned",
		"candidate", c.state.Candidate, "baseline", c.state.Baseline, "reason", reason)
	return c.save()
}

// widen promotes the candidate fleet-wide and removes the pin. Promote
// lands first so the canary's effective version never moves: after the
// promote, pin and active agree, and the unpin is a no-op for it while
// every baseline shard's watch picks the candidate up.
func (c *Controller) widen() error {
	if _, err := c.cfg.Registry.Promote(c.cfg.Candidate); err != nil {
		return err
	}
	if err := c.cfg.Registry.Unpin(c.cfg.CanaryShard); err != nil {
		return err
	}
	c.widens.Inc()
	c.state.Phase = PhaseWidened
	c.state.Reason = fmt.Sprintf("every gate held across %d evaluation(s) for the %s bake window",
		len(c.state.Evaluations), time.Duration(c.state.BakeSeconds*float64(time.Second)))
	c.cfg.Log.Info("rollout widened: candidate promoted fleet-wide",
		"candidate", c.state.Candidate, "evaluations", len(c.state.Evaluations))
	return c.save()
}

func joinFailures(fs []string) string {
	out := ""
	for i, f := range fs {
		if i > 0 {
			out += "; "
		}
		out += f
	}
	return out
}

// atomicWrite mirrors the registry's write-temp-then-rename idiom for
// the controller's own documents.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("rollout: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, path)
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("rollout: %w", werr)
	}
	return nil
}
