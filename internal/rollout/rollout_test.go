package rollout

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"twosmart/internal/core"
	"twosmart/internal/corpus"
	"twosmart/internal/registry"
	"twosmart/internal/telemetry"
)

var (
	fixOnce sync.Once
	fixErr  error
	blobs   [2][]byte
)

// fixtures trains two tiny detectors (different seeds, different bytes)
// shared by the whole package — the registry only publishes real blobs.
func fixtures(t *testing.T) ([]byte, []byte) {
	t.Helper()
	fixOnce.Do(func() {
		data, err := corpus.Collect(corpus.Config{
			Scale:       0.001,
			MinPerClass: 24,
			Budget:      30000,
			Seed:        7,
			Omniscient:  true,
		})
		if err != nil {
			fixErr = err
			return
		}
		common, err := data.SelectByName(core.CommonFeatures)
		if err != nil {
			fixErr = err
			return
		}
		for i, seed := range []int64{5, 17} {
			det, err := core.Train(common, core.TrainConfig{Seed: seed})
			if err != nil {
				fixErr = err
				return
			}
			blobs[i], fixErr = det.Marshal()
			if fixErr != nil {
				return
			}
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return blobs[0], blobs[1]
}

// openWithCandidate builds a registry with v1 active and v2 published
// but not promoted — the standard rollout starting position.
func openWithCandidate(t *testing.T) *registry.Registry {
	t.Helper()
	blob1, blob2 := fixtures(t)
	r, err := registry.Open(filepath.Join(t.TempDir(), "models"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish(blob1, registry.PublishOptions{Promote: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish(blob2, registry.PublishOptions{}); err != nil {
		t.Fatal(err)
	}
	return r
}

// shardOpts shapes one fake shard's exposition.
type shardOpts struct {
	version    int     // serve_model_info generation
	perScrape  int64   // verdicts added per scrape (0 = idle canary)
	slow       bool    // latency mass in the 0.5s bucket instead of 1ms
	driftAlert bool    // drift_alert gauge at 1
	divergence float64 // shadow_divergence gauge when > 0
}

// fakeShard serves /metrics whose counters advance each scrape, like a
// live shard under steady traffic.
func fakeShard(t *testing.T, opts *shardOpts) *httptest.Server {
	t.Helper()
	var mu sync.Mutex
	var scrapes int64
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		scrapes++
		n := scrapes
		o := *opts
		mu.Unlock()
		verdicts := o.perScrape * n
		fast, inf := verdicts, verdicts
		if o.slow {
			fast = 0
		}
		fmt.Fprintf(w, `# TYPE serve_verdicts_total counter
serve_verdicts_total %d
# TYPE serve_shed_total counter
serve_shed_total %d
# TYPE serve_model_info gauge
serve_model_info{model="det",version="%d"} 1
# TYPE serve_verdict_latency_seconds histogram
serve_verdict_latency_seconds_bucket{le="0.001"} %d
serve_verdict_latency_seconds_bucket{le="0.5"} %d
serve_verdict_latency_seconds_bucket{le="+Inf"} %d
serve_verdict_latency_seconds_count %d
`, verdicts, n, o.version, fast, inf, inf, verdicts)
		if o.driftAlert {
			fmt.Fprint(w, "# TYPE drift_alert gauge\ndrift_alert 1\n")
		}
		if o.divergence > 0 {
			fmt.Fprintf(w, "# TYPE shadow_divergence gauge\nshadow_divergence %g\n", o.divergence)
		}
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func addr(srv *httptest.Server) string { return strings.TrimPrefix(srv.URL, "http://") }

func run(t *testing.T, reg *registry.Registry, canary, baseline *shardOpts, gates Gates, tel *telemetry.Registry) *State {
	t.Helper()
	c, err := New(Config{
		Registry:        reg,
		Candidate:       2,
		CanaryShard:     "canary-a",
		CanaryAddr:      addr(fakeShard(t, canary)),
		BaselineAddrs:   []string{addr(fakeShard(t, baseline))},
		Bake:            400 * time.Millisecond,
		Every:           100 * time.Millisecond,
		ConvergeTimeout: 2 * time.Second,
		Gates:           gates,
		Telemetry:       tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// mustPins reads the manifest pin table directly off disk.
func mustPins(t *testing.T, reg *registry.Registry) map[string]int {
	t.Helper()
	m, err := reg.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	return m.Pins
}

// TestRolloutWidens is the happy path: a healthy candidate survives the
// bake, gets promoted fleet-wide, and the pin comes off.
func TestRolloutWidens(t *testing.T) {
	reg := openWithCandidate(t)
	tel := telemetry.New()
	st := run(t, reg,
		&shardOpts{version: 2, perScrape: 100},
		&shardOpts{version: 1, perScrape: 100},
		Gates{MinSamples: 10, MaxP99Ratio: 3, MaxDivergence: 0.1}, tel)

	if st.Phase != PhaseWidened {
		t.Fatalf("phase = %s (reason %q), want widened", st.Phase, st.Reason)
	}
	if len(st.Evaluations) == 0 {
		t.Fatal("widened with no recorded evaluations")
	}
	for i, ev := range st.Evaluations {
		if !ev.Pass {
			t.Fatalf("evaluation %d failed: %v", i, ev.Failures)
		}
		if ev.Canary.Verdicts < 10 {
			t.Fatalf("evaluation %d canary verdicts = %v, want >= 10", i, ev.Canary.Verdicts)
		}
		if ev.Divergence != -1 {
			t.Fatalf("evaluation %d divergence = %v, want -1 (no shadow scorer)", i, ev.Divergence)
		}
	}
	active, err := reg.ActiveEntry()
	if err != nil {
		t.Fatal(err)
	}
	if active.Version != 2 {
		t.Fatalf("active after widen = v%d, want v2", active.Version)
	}
	if pins := mustPins(t, reg); len(pins) != 0 {
		t.Fatalf("pins after widen = %v, want none", pins)
	}
	if got := tel.Gauge("rollout_state").Value(); got != 3 {
		t.Fatalf("rollout_state = %v, want 3 (widened)", got)
	}
	if tel.Counter("rollout_widens_total").Value() != 1 {
		t.Fatal("rollout_widens_total not incremented")
	}

	// The durable document must round-trip with the full evidence trail.
	saved, err := ReadState(reg)
	if err != nil {
		t.Fatal(err)
	}
	if saved == nil || saved.Phase != PhaseWidened || len(saved.Evaluations) != len(st.Evaluations) {
		t.Fatalf("ReadState = %+v, want widened with %d evaluations", saved, len(st.Evaluations))
	}
}

// TestRolloutRollsBackOnDrift: a retrain-or-rollback drift verdict on
// the canary fails the gate immediately, the pin comes off and the
// baseline stays active.
func TestRolloutRollsBackOnDrift(t *testing.T) {
	reg := openWithCandidate(t)
	tel := telemetry.New()
	st := run(t, reg,
		&shardOpts{version: 2, perScrape: 100, driftAlert: true},
		&shardOpts{version: 1, perScrape: 100},
		Gates{MinSamples: 10}, tel)

	if st.Phase != PhaseRolledBack {
		t.Fatalf("phase = %s, want rolled_back", st.Phase)
	}
	if !strings.Contains(st.Reason, "drift") {
		t.Fatalf("reason = %q, want a drift gate failure", st.Reason)
	}
	last := st.Evaluations[len(st.Evaluations)-1]
	if !last.DriftRetrain || last.Pass {
		t.Fatalf("final evaluation = %+v, want drift_retrain and pass=false", last)
	}
	active, err := reg.ActiveEntry()
	if err != nil {
		t.Fatal(err)
	}
	if active.Version != 1 {
		t.Fatalf("active after rollback = v%d, want v1", active.Version)
	}
	if pins := mustPins(t, reg); len(pins) != 0 {
		t.Fatalf("pins after rollback = %v, want none", pins)
	}
	if tel.Counter("rollout_rollbacks_total").Value() != 1 {
		t.Fatal("rollout_rollbacks_total not incremented")
	}
}

// TestRolloutRollsBackOnDivergence: shadow divergence over the
// threshold kills the candidate.
func TestRolloutRollsBackOnDivergence(t *testing.T) {
	reg := openWithCandidate(t)
	st := run(t, reg,
		&shardOpts{version: 2, perScrape: 100, divergence: 0.4},
		&shardOpts{version: 1, perScrape: 100},
		Gates{MinSamples: 10, MaxDivergence: 0.1}, nil)

	if st.Phase != PhaseRolledBack {
		t.Fatalf("phase = %s, want rolled_back", st.Phase)
	}
	if !strings.Contains(st.Reason, "divergence") {
		t.Fatalf("reason = %q, want a divergence gate failure", st.Reason)
	}
}

// TestRolloutRollsBackOnP99: a canary whose latency mass sits at 500ms
// against a 1ms baseline trips the regression-ratio gate.
func TestRolloutRollsBackOnP99(t *testing.T) {
	reg := openWithCandidate(t)
	st := run(t, reg,
		&shardOpts{version: 2, perScrape: 100, slow: true},
		&shardOpts{version: 1, perScrape: 100},
		Gates{MinSamples: 10, MaxP99Ratio: 3}, nil)

	if st.Phase != PhaseRolledBack {
		t.Fatalf("phase = %s, want rolled_back", st.Phase)
	}
	if !strings.Contains(st.Reason, "p99") {
		t.Fatalf("reason = %q, want a p99 gate failure", st.Reason)
	}
	last := st.Evaluations[len(st.Evaluations)-1]
	if last.P99Ratio <= 3 {
		t.Fatalf("p99 ratio = %v, want > 3", last.P99Ratio)
	}
}

// TestIdleCanaryCannotPass: zero canary traffic under a MinSamples gate
// rolls back — absence of evidence is not passing evidence.
func TestIdleCanaryCannotPass(t *testing.T) {
	reg := openWithCandidate(t)
	st := run(t, reg,
		&shardOpts{version: 2, perScrape: 0},
		&shardOpts{version: 1, perScrape: 100},
		Gates{MinSamples: 10}, nil)

	if st.Phase != PhaseRolledBack {
		t.Fatalf("phase = %s, want rolled_back", st.Phase)
	}
	if !strings.Contains(st.Reason, "min-samples") {
		t.Fatalf("reason = %q, want a min-samples failure", st.Reason)
	}
}

// TestRolloutRollsBackWhenCanaryNeverConverges: a canary that keeps
// reporting the baseline version (not running -watch, wrong shard id)
// must not bake — the pin comes off after the converge timeout.
func TestRolloutRollsBackWhenCanaryNeverConverges(t *testing.T) {
	reg := openWithCandidate(t)
	c, err := New(Config{
		Registry:        reg,
		Candidate:       2,
		CanaryShard:     "canary-a",
		CanaryAddr:      addr(fakeShard(t, &shardOpts{version: 1, perScrape: 100})),
		BaselineAddrs:   []string{addr(fakeShard(t, &shardOpts{version: 1, perScrape: 100}))},
		Bake:            200 * time.Millisecond,
		Every:           50 * time.Millisecond,
		ConvergeTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Phase != PhaseRolledBack {
		t.Fatalf("phase = %s, want rolled_back", st.Phase)
	}
	if !strings.Contains(st.Reason, "never reported candidate") {
		t.Fatalf("reason = %q, want a convergence failure", st.Reason)
	}
	if pins := mustPins(t, reg); len(pins) != 0 {
		t.Fatalf("pins after failed convergence = %v, want none", pins)
	}
}

// TestAbortMidBake: the cooperative abort flag unpins the canary and
// lands the rollout in aborted — without the CLI ever touching the
// manifest.
func TestAbortMidBake(t *testing.T) {
	reg := openWithCandidate(t)
	c, err := New(Config{
		Registry:        reg,
		Candidate:       2,
		CanaryShard:     "canary-a",
		CanaryAddr:      addr(fakeShard(t, &shardOpts{version: 2, perScrape: 100})),
		BaselineAddrs:   []string{addr(fakeShard(t, &shardOpts{version: 1, perScrape: 100}))},
		Bake:            30 * time.Second, // never reached; the abort ends it
		Every:           50 * time.Millisecond,
		ConvergeTimeout: 2 * time.Second,
		Gates:           Gates{MinSamples: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *State, 1)
	go func() {
		st, err := c.Run(context.Background())
		if err != nil {
			t.Error(err)
		}
		done <- st
	}()

	// Wait for the durable state to reach baking, then request the abort
	// exactly as smartctl rollout abort would.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := ReadState(reg)
		if err == nil && st != nil && st.Phase == PhaseBaking {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rollout never reached baking")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := RequestAbort(reg); err != nil {
		t.Fatal(err)
	}

	st := <-done
	if st == nil || st.Phase != PhaseAborted {
		t.Fatalf("phase = %+v, want aborted", st)
	}
	if st.Reason != "operator abort" {
		t.Fatalf("reason = %q, want operator abort", st.Reason)
	}
	if pins := mustPins(t, reg); len(pins) != 0 {
		t.Fatalf("pins after abort = %v, want none", pins)
	}
	active, err := reg.ActiveEntry()
	if err != nil {
		t.Fatal(err)
	}
	if active.Version != 1 {
		t.Fatalf("active after abort = v%d, want v1", active.Version)
	}
}

// TestRunRefusesConcurrentRollout: a durable state still in a live
// phase blocks a second controller — the registry has one writer.
func TestRunRefusesConcurrentRollout(t *testing.T) {
	reg := openWithCandidate(t)
	stale := State{SchemaVersion: 1, Phase: PhaseBaking, Candidate: 2}
	data, err := json.Marshal(stale)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(reg.Root(), StateFile), data, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Registry:      reg,
		Candidate:     2,
		CanaryShard:   "canary-a",
		CanaryAddr:    "127.0.0.1:1",
		BaselineAddrs: []string{"127.0.0.1:2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "already") {
		t.Fatalf("Run with a live rollout = %v, want already-in-progress error", err)
	}
}

// TestRequestAbortWithoutRollout: aborting with nothing running is an
// error, not a silently dropped flag file.
func TestRequestAbortWithoutRollout(t *testing.T) {
	reg := openWithCandidate(t)
	if err := RequestAbort(reg); err == nil || !strings.Contains(err.Error(), "no rollout in progress") {
		t.Fatalf("RequestAbort = %v, want no-rollout-in-progress error", err)
	}
}

// TestConfigValidation pins the required-field errors.
func TestConfigValidation(t *testing.T) {
	reg := openWithCandidate(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no registry", Config{Candidate: 2, CanaryShard: "a", CanaryAddr: "x", BaselineAddrs: []string{"y"}}},
		{"no candidate", Config{Registry: reg, CanaryShard: "a", CanaryAddr: "x", BaselineAddrs: []string{"y"}}},
		{"no shard", Config{Registry: reg, Candidate: 2, CanaryAddr: "x", BaselineAddrs: []string{"y"}}},
		{"no canary addr", Config{Registry: reg, Candidate: 2, CanaryShard: "a", BaselineAddrs: []string{"y"}}},
		{"no baseline", Config{Registry: reg, Candidate: 2, CanaryShard: "a", CanaryAddr: "x"}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted an invalid config", tc.name)
		}
	}
}

// TestRunRefusesActiveCandidate: rolling out the version that is
// already active is a no-op request, rejected up front.
func TestRunRefusesActiveCandidate(t *testing.T) {
	reg := openWithCandidate(t)
	c, err := New(Config{
		Registry:      reg,
		Candidate:     1, // already active
		CanaryShard:   "canary-a",
		CanaryAddr:    "127.0.0.1:1",
		BaselineAddrs: []string{"127.0.0.1:2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "already the active") {
		t.Fatalf("Run with active candidate = %v, want already-active error", err)
	}
}
