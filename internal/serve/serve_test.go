package serve

import (
	"context"
	"io"
	"log/slog"
	"net"
	"sync"
	"testing"
	"time"

	"twosmart/internal/core"
	"twosmart/internal/corpus"
	"twosmart/internal/dataset"
	"twosmart/internal/monitor"
	"twosmart/internal/samplelog"
	"twosmart/internal/telemetry"
	"twosmart/internal/wire"
)

var (
	fixOnce sync.Once
	fixDet  *core.Detector
	fixData *dataset.Dataset
	fixErr  error
)

// fixtures trains one tiny Common-4 detector for the whole package and
// keeps the corpus it was trained on as a sample source.
func fixtures(t *testing.T) (*core.Detector, *dataset.Dataset) {
	t.Helper()
	fixOnce.Do(func() {
		data, err := corpus.Collect(corpus.Config{
			Scale:       0.001,
			MinPerClass: 24,
			Budget:      30000,
			Seed:        7,
			Omniscient:  true,
		})
		if err != nil {
			fixErr = err
			return
		}
		fixData, err = data.SelectByName(core.CommonFeatures)
		if err != nil {
			fixErr = err
			return
		}
		fixDet, fixErr = core.Train(fixData, core.TrainConfig{Seed: 5})
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixDet, fixData
}

type testServer struct {
	addr   string
	srv    *Server
	cancel context.CancelFunc
	done   chan error

	waitOnce sync.Once
	waitErr  error
	timedOut bool
}

// stop drains the server and asserts Serve returned nil; it is safe to
// call more than once (tests that drain explicitly race with the cleanup).
func (ts *testServer) stop(t *testing.T) {
	t.Helper()
	ts.cancel()
	ts.waitOnce.Do(func() {
		select {
		case ts.waitErr = <-ts.done:
		case <-time.After(10 * time.Second):
			ts.timedOut = true
		}
	})
	if ts.timedOut {
		t.Error("server did not drain within 10s")
	} else if ts.waitErr != nil {
		t.Errorf("Serve: %v", ts.waitErr)
	}
}

// start boots a server on a loopback port and registers a cleanup that
// drains it and asserts Serve returned nil.
func start(t *testing.T, cfg Config, tweak func(*Server)) *testServer {
	t.Helper()
	if cfg.Detector == nil {
		det, _ := fixtures(t)
		cfg.Detector = det
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tweak != nil {
		tweak(srv)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ts := &testServer{addr: addr.String(), srv: srv, cancel: cancel, done: make(chan error, 1)}
	go func() { ts.done <- srv.Serve(ctx) }()
	t.Cleanup(func() { ts.stop(t) })
	return ts
}

func dial(t *testing.T, ts *testServer) *Client {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, ts.addr, "test-agent")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// samplesFrom returns n feature vectors cycling through the corpus.
func samplesFrom(d *dataset.Dataset, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = d.Instances[i%d.Len()].Features
	}
	return out
}

// TestServeVerdictRoundTrip drives one stream end to end and checks every
// verdict bit against an independently computed reference: same compiled
// detector, same monitor smoothing, fed the same sample order.
func TestServeVerdictRoundTrip(t *testing.T) {
	det, data := fixtures(t)
	reg := telemetry.New()
	ts := start(t, Config{Telemetry: reg, Model: "tiny"}, nil)
	c := dial(t, ts)

	if c.Welcome().Model != "tiny" {
		t.Fatalf("welcome model %q, want tiny", c.Welcome().Model)
	}
	if int(c.Welcome().NumFeatures) != len(core.CommonFeatures) {
		t.Fatalf("welcome features %d, want %d", c.Welcome().NumFeatures, len(core.CommonFeatures))
	}

	// Heartbeat first so its echo is the first frame back.
	if err := c.Heartbeat(42); err != nil {
		t.Fatal(err)
	}
	const n = 96
	samples := samplesFrom(data, n)
	if err := c.OpenStream(7, "app-a"); err != nil {
		t.Fatal(err)
	}
	for i, fv := range samples {
		if err := c.Send(7, uint32(i), fv); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CloseStream(7); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// Reference: one fused scoring pass plus one monitor pass, exactly what
	// the server does per stream regardless of micro-batch boundaries.
	cd := det.Compile()
	wantVerdicts := make([]core.Verdict, n)
	wantScores := make([]float64, n)
	if err := cd.DetectScoredBatch(wantVerdicts, wantScores, samples); err != nil {
		t.Fatal(err)
	}
	mon, err := monitor.New(det.Compile(), monitor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantEvents := make([]monitor.Event, n)
	if err := mon.ObserveScoredBatch(wantEvents, wantScores); err != nil {
		t.Fatal(err)
	}

	f, err := c.Next()
	if err != nil {
		t.Fatal(err)
	}
	if hb, ok := f.(wire.Heartbeat); !ok || hb.Nanos != 42 {
		t.Fatalf("first frame %#v, want Heartbeat{42}", f)
	}
	var got []wire.Verdict
	for {
		f, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := f.(wire.Verdict); ok {
			got = append(got, v)
			continue
		}
		sum, ok := f.(wire.StreamSummary)
		if !ok {
			t.Fatalf("unexpected frame %#v", f)
		}
		if sum.Stream != 7 || sum.Samples != n || sum.Shed != 0 {
			t.Fatalf("summary %+v, want stream 7, %d samples, 0 shed", sum, n)
		}
		break
	}
	if len(got) != n {
		t.Fatalf("received %d verdicts, want %d", len(got), n)
	}
	sawMalware := false
	for i, v := range got {
		if v.Stream != 7 || v.Seq != uint32(i) {
			t.Fatalf("verdict %d: stream/seq %d/%d", i, v.Stream, v.Seq)
		}
		var wantFlags uint8
		if wantVerdicts[i].Malware {
			wantFlags |= wire.FlagMalware
			sawMalware = true
		}
		if wantEvents[i].Alarm {
			wantFlags |= wire.FlagAlarm
		}
		if wantEvents[i].Changed {
			wantFlags |= wire.FlagAlarmChanged
		}
		if v.Flags != wantFlags {
			t.Fatalf("verdict %d: flags %08b, want %08b", i, v.Flags, wantFlags)
		}
		if v.Class != uint8(wantVerdicts[i].PredictedClass) {
			t.Fatalf("verdict %d: class %d, want %d", i, v.Class, wantVerdicts[i].PredictedClass)
		}
		if v.Score != wantScores[i] || v.Smoothed != wantEvents[i].Smoothed {
			t.Fatalf("verdict %d: score %v/%v, want %v/%v", i, v.Score, v.Smoothed, wantScores[i], wantEvents[i].Smoothed)
		}
	}
	if !sawMalware {
		t.Fatal("test corpus produced no malware verdicts; pick different samples")
	}

	if got := reg.Counter("serve_samples_total").Value(); got != n {
		t.Fatalf("serve_samples_total = %d, want %d", got, n)
	}
	if got := reg.Counter("serve_verdicts_total").Value(); got != n {
		t.Fatalf("serve_verdicts_total = %d, want %d", got, n)
	}
	if got := reg.Counter("serve_shed_total").Value(); got != 0 {
		t.Fatalf("serve_shed_total = %d, want 0", got)
	}
	if reg.Histogram("serve_verdict_latency_seconds", telemetry.LatencyBuckets).Summary().Count == 0 {
		t.Fatal("verdict latency histogram empty")
	}
}

// TestServeStreamErrors pins the per-frame protocol errors that do NOT
// kill the connection: duplicate stream ids, a second stream for an app
// already streamed, and closing an unknown stream.
func TestServeStreamErrors(t *testing.T) {
	ts := start(t, Config{}, nil)
	c := dial(t, ts)
	for _, step := range []error{
		c.OpenStream(1, "app-a"),
		c.OpenStream(1, "app-b"), // duplicate id
		c.OpenStream(2, "app-a"), // duplicate app
		c.CloseStream(99),        // never opened
		c.CloseStream(1),
		c.Flush(),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	var errs int
	for {
		f, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		switch fr := f.(type) {
		case wire.Error:
			if fr.Code != wire.CodeBadStream {
				t.Fatalf("error code %d, want CodeBadStream", fr.Code)
			}
			errs++
		case wire.StreamSummary:
			if fr.Stream != 1 || fr.Samples != 0 {
				t.Fatalf("summary %+v, want stream 1 with 0 samples", fr)
			}
			if errs != 3 {
				t.Fatalf("saw %d BadStream errors before the summary, want 3", errs)
			}
			// The connection survived all three errors.
			if err := c.Heartbeat(1); err != nil {
				t.Fatal(err)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			if hb, err := c.Next(); err != nil {
				t.Fatal(err)
			} else if _, ok := hb.(wire.Heartbeat); !ok {
				t.Fatalf("frame %#v, want heartbeat echo", hb)
			}
			return
		default:
			t.Fatalf("unexpected frame %#v", f)
		}
	}
}

// TestServeRejectsVersionMismatch checks the handshake failure path with a
// raw connection speaking a future protocol version.
func TestServeRejectsVersionMismatch(t *testing.T) {
	ts := start(t, Config{}, nil)
	nc, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	w := wire.NewWriter(nc)
	if err := w.Write(wire.Hello{Proto: 99, Agent: "future"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := wire.NewReader(nc).Next()
	if err != nil {
		t.Fatal(err)
	}
	e, ok := f.(wire.Error)
	if !ok || e.Code != wire.CodeVersion {
		t.Fatalf("reply %#v, want Error{CodeVersion}", f)
	}
}

// TestServeRejectsBadFeatureWidth checks that a sample with the wrong
// feature count draws CodeBadFeatures and closes the connection.
func TestServeRejectsBadFeatureWidth(t *testing.T) {
	ts := start(t, Config{}, nil)
	c := dial(t, ts)
	if err := c.OpenStream(1, "app-a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(1, 0, []float64{1, 2}); err != nil { // model wants 4
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	for {
		f, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if e, ok := f.(wire.Error); ok {
			if e.Code != wire.CodeBadFeatures {
				t.Fatalf("error code %d, want CodeBadFeatures", e.Code)
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("connection closed without a CodeBadFeatures error")
	}
}

// TestServeShedsUnderBackpressure slows scoring down artificially so the
// tiny ingress ring must shed, then checks the accounting: every sample is
// either scored (a verdict came back, counted in the summary) or shed
// (counted in the summary and serve_shed_total) — none vanish.
func TestServeShedsUnderBackpressure(t *testing.T) {
	reg := telemetry.New()
	ts := start(t, Config{QueueDepth: 8, Telemetry: reg}, func(s *Server) {
		s.scoreHook = func() { time.Sleep(2 * time.Millisecond) }
	})
	c := dial(t, ts)
	_, data := fixtures(t)
	const n = 400
	if err := c.OpenStream(1, "app-a"); err != nil {
		t.Fatal(err)
	}
	for i, fv := range samplesFrom(data, n) {
		if err := c.Send(1, uint32(i), fv); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CloseStream(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var verdicts uint64
	for {
		f, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := f.(wire.Verdict); ok {
			verdicts++
			continue
		}
		sum, ok := f.(wire.StreamSummary)
		if !ok {
			t.Fatalf("unexpected frame %#v", f)
		}
		if sum.Shed == 0 {
			t.Fatal("expected load shedding with QueueDepth=8 and slowed scoring")
		}
		if sum.Samples != verdicts {
			t.Fatalf("summary says %d samples scored but %d verdicts arrived", sum.Samples, verdicts)
		}
		if sum.Samples+sum.Shed != n {
			t.Fatalf("scored %d + shed %d != sent %d", sum.Samples, sum.Shed, n)
		}
		if got := reg.Counter("serve_shed_total").Value(); got != sum.Shed {
			t.Fatalf("serve_shed_total = %d, summary shed = %d", got, sum.Shed)
		}
		return
	}
}

// TestServeGracefulDrain cancels the server while samples are queued and
// checks that every already-accepted sample still produces a verdict
// before the connection closes.
func TestServeGracefulDrain(t *testing.T) {
	reg := telemetry.New()
	ts := start(t, Config{Telemetry: reg}, nil)
	c := dial(t, ts)
	_, data := fixtures(t)
	const n = 64
	if err := c.OpenStream(3, "app-a"); err != nil {
		t.Fatal(err)
	}
	for i, fv := range samplesFrom(data, n) {
		if err := c.Send(3, uint32(i), fv); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Wait until the server has accepted everything, then pull the plug.
	in := reg.Counter("serve_samples_total")
	for deadline := time.Now().Add(10 * time.Second); in.Value() < n; {
		if time.Now().After(deadline) {
			t.Fatalf("server accepted %d/%d samples", in.Value(), n)
		}
		time.Sleep(time.Millisecond)
	}
	ts.cancel()

	var verdicts int
	var sawDraining bool
	for {
		f, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch fr := f.(type) {
		case wire.Verdict:
			verdicts++
		case wire.Error:
			if fr.Code != wire.CodeDraining {
				t.Fatalf("error %+v, want CodeDraining", fr)
			}
			sawDraining = true
		default:
			t.Fatalf("unexpected frame %#v", f)
		}
	}
	if verdicts != n {
		t.Fatalf("drain delivered %d verdicts, want %d", verdicts, n)
	}
	if !sawDraining {
		t.Fatal("no CodeDraining notice before close")
	}
	ts.stop(t)
}

// TestServeConcurrentConnections exercises the per-stream isolation model
// under the race detector: several connections, each multiplexing two app
// streams, all scoring concurrently.
func TestServeConcurrentConnections(t *testing.T) {
	ts := start(t, Config{}, nil)
	_, data := fixtures(t)
	const (
		conns     = 4
		perStream = 150
	)
	samples := samplesFrom(data, perStream)
	var wg sync.WaitGroup
	errc := make(chan error, conns)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errc <- func() error {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				c, err := Dial(ctx, ts.addr, "racer")
				if err != nil {
					return err
				}
				defer c.Close()
				for s := uint32(1); s <= 2; s++ {
					app := "app-a"
					if s == 2 {
						app = "app-b"
					}
					if err := c.OpenStream(s, app); err != nil {
						return err
					}
				}
				for i := 0; i < perStream; i++ {
					for s := uint32(1); s <= 2; s++ {
						if err := c.Send(s, uint32(i), samples[i]); err != nil {
							return err
						}
					}
				}
				for s := uint32(1); s <= 2; s++ {
					if err := c.CloseStream(s); err != nil {
						return err
					}
				}
				if err := c.Flush(); err != nil {
					return err
				}
				counts := map[uint32]int{}
				summaries := 0
				for summaries < 2 {
					f, err := c.Next()
					if err != nil {
						return err
					}
					switch fr := f.(type) {
					case wire.Verdict:
						counts[fr.Stream]++
					case wire.StreamSummary:
						if fr.Samples+fr.Shed != perStream {
							t.Errorf("stream %d: scored %d + shed %d != %d", fr.Stream, fr.Samples, fr.Shed, perStream)
						}
						summaries++
					default:
						t.Errorf("unexpected frame %#v", f)
						return nil
					}
				}
				for s := uint32(1); s <= 2; s++ {
					if counts[s] == 0 {
						t.Errorf("stream %d: no verdicts", s)
					}
				}
				return nil
			}()
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestServeSampleLog runs a stream with the durable sample log attached
// and checks the recorded reality against the verdicts the wire carried:
// same count, same order, same verdict bits, same features.
func TestServeSampleLog(t *testing.T) {
	det, data := fixtures(t)
	dir := t.TempDir()
	sl, err := samplelog.OpenWriter(samplelog.WriterConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := start(t, Config{SampleLog: sl, ModelVersion: 3}, nil)
	c := dial(t, ts)

	const n = 96
	samples := samplesFrom(data, n)
	if err := c.OpenStream(9, "logged-app"); err != nil {
		t.Fatal(err)
	}
	for i, fv := range samples {
		if err := c.Send(9, uint32(i), fv); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CloseStream(9); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var verdicts []wire.Verdict
	for {
		f, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := f.(wire.Verdict); ok {
			verdicts = append(verdicts, v)
			continue
		}
		if _, ok := f.(wire.StreamSummary); ok {
			break
		}
		t.Fatalf("unexpected frame %#v", f)
	}
	if len(verdicts) != n {
		t.Fatalf("received %d verdicts, want %d", len(verdicts), n)
	}
	ts.stop(t)
	st, err := sl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Appended != n || st.Dropped != 0 {
		t.Fatalf("log stats %+v, want %d appended", st, n)
	}

	var recs []samplelog.Record
	rep, err := samplelog.ReadDir(dir, func(r samplelog.Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != n || rep.ScoredRecords != n || rep.TornBytes != 0 || rep.Corrupted != 0 {
		t.Fatalf("verify %+v", rep)
	}
	cd := det.Compile()
	for i, rec := range recs {
		v := verdicts[i]
		if rec.Stream != 9 || rec.App != "logged-app" || rec.ModelVersion != 3 {
			t.Fatalf("record %d identity: %+v", i, rec)
		}
		if !rec.Scored() {
			t.Fatalf("record %d not marked scored", i)
		}
		if rec.Malware() != (v.Flags&wire.FlagMalware != 0) {
			t.Fatalf("record %d malware %v, verdict flags %08b", i, rec.Malware(), v.Flags)
		}
		if (rec.Flags&samplelog.FlagAlarm != 0) != (v.Flags&wire.FlagAlarm != 0) {
			t.Fatalf("record %d alarm bit disagrees with verdict %08b", i, v.Flags)
		}
		if rec.Class != v.Class || rec.Score != v.Score {
			t.Fatalf("record %d class/score %d/%v, verdict %d/%v", i, rec.Class, rec.Score, v.Class, v.Score)
		}
		want := samples[int(v.Seq)]
		if len(rec.Features) != len(want) {
			t.Fatalf("record %d width %d, want %d", i, len(rec.Features), len(want))
		}
		for j := range want {
			if rec.Features[j] != want[j] {
				t.Fatalf("record %d feature %d: %v, want %v", i, j, rec.Features[j], want[j])
			}
		}
		// Replaying the logged features through the same model reproduces
		// the logged verdict: the log is a faithful backtest substrate.
		rv, err := cd.Detect(rec.Features)
		if err != nil {
			t.Fatal(err)
		}
		if rv.Malware != rec.Malware() {
			t.Fatalf("record %d does not replay to its own verdict", i)
		}
	}
}
