package serve

import (
	"sync"
	"testing"
	"time"

	"twosmart/internal/core"
	"twosmart/internal/drift"
	"twosmart/internal/shadow"
	"twosmart/internal/telemetry"
	"twosmart/internal/wire"
)

var (
	candOnce sync.Once
	candDet  *core.Detector
	candErr  error
)

// candidate trains a second detector (different seed) on the shared
// fixture corpus, so swap tests have a behaviourally distinct model.
func candidate(t *testing.T) *core.Detector {
	t.Helper()
	_, data := fixtures(t)
	candOnce.Do(func() {
		candDet, candErr = core.Train(data, core.TrainConfig{Seed: 17})
	})
	if candErr != nil {
		t.Fatal(candErr)
	}
	return candDet
}

// referenceScores runs the fused scoring pass a stream would.
func referenceScores(t *testing.T, det *core.Detector, samples [][]float64) []float64 {
	t.Helper()
	scores := make([]float64, len(samples))
	verdicts := make([]core.Verdict, len(samples))
	if err := det.Compile().DetectScoredBatch(verdicts, scores, samples); err != nil {
		t.Fatal(err)
	}
	return scores
}

// requireDistinct guards swap tests against vacuity: the two fixture
// models must disagree on at least one sample's score.
func requireDistinct(t *testing.T, a, b []float64) {
	t.Helper()
	for i := range a {
		if a[i] != b[i] {
			return
		}
	}
	t.Fatal("fixture models score identically on every sample; swap tests are vacuous")
}

// collectStream reads frames until the stream's summary, returning the
// verdicts and the summary.
func collectStream(t *testing.T, c *Client, stream uint32) ([]wire.Verdict, wire.StreamSummary) {
	t.Helper()
	var got []wire.Verdict
	for {
		f, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		switch fr := f.(type) {
		case wire.Verdict:
			if fr.Stream == stream {
				got = append(got, fr)
			}
		case wire.StreamSummary:
			if fr.Stream == stream {
				return got, fr
			}
		default:
			t.Fatalf("unexpected frame %#v", f)
		}
	}
}

// TestHotSwapEpochs pins the zero-downtime swap contract end to end:
//   - a stream opened before the swap keeps scoring on its original
//     detector — including samples sent after the swap landed — and its
//     StreamSummary reports the original version;
//   - a connection opened after the swap is welcomed with, and scored
//     by, the new version.
func TestHotSwapEpochs(t *testing.T) {
	det1, data := fixtures(t)
	det2 := candidate(t)
	const n = 64
	samples := samplesFrom(data, n)
	want1 := referenceScores(t, det1, samples)
	want2 := referenceScores(t, det2, samples)
	requireDistinct(t, want1, want2)

	reg := telemetry.New()
	ts := start(t, Config{Detector: det1, Model: "fixture", ModelVersion: 1, Telemetry: reg}, nil)

	c1 := dial(t, ts)
	if got := c1.Welcome().ModelVersion; got != 1 {
		t.Fatalf("pre-swap welcome version %d, want 1", got)
	}
	if err := c1.OpenStream(1, "app-a"); err != nil {
		t.Fatal(err)
	}
	// First half before the swap. Reading these verdicts back proves the
	// worker opened the stream — and captured its epoch — pre-swap.
	for i := 0; i < n/2; i++ {
		if err := c1.Send(1, uint32(i), samples[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Flush(); err != nil {
		t.Fatal(err)
	}
	var verdicts []wire.Verdict
	for len(verdicts) < n/2 {
		f, err := c1.Next()
		if err != nil {
			t.Fatal(err)
		}
		v, ok := f.(wire.Verdict)
		if !ok {
			t.Fatalf("unexpected frame %#v", f)
		}
		verdicts = append(verdicts, v)
	}

	if err := ts.srv.Swap(Model{Detector: det2, Version: 2, Name: "candidate"}); err != nil {
		t.Fatal(err)
	}
	if got := ts.srv.ActiveModel().Version; got != 2 {
		t.Fatalf("active version %d after swap, want 2", got)
	}

	// Second half after the swap: same stream, must still score on det1.
	for i := n / 2; i < n; i++ {
		if err := c1.Send(1, uint32(i), samples[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.CloseStream(1); err != nil {
		t.Fatal(err)
	}
	if err := c1.Flush(); err != nil {
		t.Fatal(err)
	}
	rest, sum := collectStream(t, c1, 1)
	verdicts = append(verdicts, rest...)
	if len(verdicts) != n {
		t.Fatalf("stream 1 got %d verdicts, want %d", len(verdicts), n)
	}
	for i, v := range verdicts {
		if v.Score != want1[i] {
			t.Fatalf("verdict %d scored %v by the wrong model epoch (v1 would give %v)", i, v.Score, want1[i])
		}
	}
	if sum.ModelVersion != 1 {
		t.Fatalf("pre-swap stream summary reports v%d, want v1", sum.ModelVersion)
	}

	// A fresh connection binds the promoted generation.
	c2 := dial(t, ts)
	if got := c2.Welcome().ModelVersion; got != 2 {
		t.Fatalf("post-swap welcome version %d, want 2", got)
	}
	if c2.Welcome().Model != "candidate" {
		t.Fatalf("post-swap welcome model %q", c2.Welcome().Model)
	}
	if err := c2.OpenStream(1, "app-b"); err != nil {
		t.Fatal(err)
	}
	for i, fv := range samples {
		if err := c2.Send(1, uint32(i), fv); err != nil {
			t.Fatal(err)
		}
	}
	if err := c2.CloseStream(1); err != nil {
		t.Fatal(err)
	}
	if err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	verdicts2, sum2 := collectStream(t, c2, 1)
	if len(verdicts2) != n {
		t.Fatalf("stream 2 got %d verdicts, want %d", len(verdicts2), n)
	}
	for i, v := range verdicts2 {
		if v.Score != want2[i] {
			t.Fatalf("post-swap verdict %d scored %v, want v2's %v", i, v.Score, want2[i])
		}
	}
	if sum2.ModelVersion != 2 {
		t.Fatalf("post-swap stream summary reports v%d, want v2", sum2.ModelVersion)
	}

	if got := reg.Counter("serve_model_swaps_total").Value(); got != 1 {
		t.Fatalf("serve_model_swaps_total = %d, want 1", got)
	}
	oldInfo := telemetry.Label(telemetry.Label("serve_model_info", "model", "fixture"), "version", "1")
	newInfo := telemetry.Label(telemetry.Label("serve_model_info", "model", "candidate"), "version", "2")
	if reg.Gauge(oldInfo).Value() != 0 || reg.Gauge(newInfo).Value() != 1 {
		t.Fatalf("model info gauges old=%v new=%v, want 0/1",
			reg.Gauge(oldInfo).Value(), reg.Gauge(newInfo).Value())
	}
}

// TestDrainWithSwapMidStream pins graceful drain while a hot swap lands
// mid-stream: samples already queued when the server starts draining are
// scored by the stream's original detector, every verdict is flushed,
// and the summary still reports the original version.
func TestDrainWithSwapMidStream(t *testing.T) {
	det1, data := fixtures(t)
	det2 := candidate(t)
	const n = 48
	samples := samplesFrom(data, n)
	want1 := referenceScores(t, det1, samples)
	requireDistinct(t, want1, referenceScores(t, det2, samples))

	entered := make(chan struct{})
	release := make(chan struct{})
	var gate sync.Once
	ts := start(t, Config{Detector: det1, ModelVersion: 1, MaxBatch: 8}, func(s *Server) {
		s.scoreHook = func() {
			gate.Do(func() {
				close(entered)
				<-release
			})
		}
	})
	c := dial(t, ts)
	if err := c.OpenStream(3, "app-drain"); err != nil {
		t.Fatal(err)
	}
	for i, fv := range samples {
		if err := c.Send(3, uint32(i), fv); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CloseStream(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// Wait until the worker is inside a scoring round with samples still
	// queued behind it, then land the swap and the drain together.
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never started scoring")
	}
	if err := ts.srv.Swap(Model{Detector: det2, Version: 2}); err != nil {
		t.Fatal(err)
	}
	ts.cancel()
	time.Sleep(10 * time.Millisecond) // let the drain watcher close read sides
	close(release)

	var verdicts []wire.Verdict
	var sum *wire.StreamSummary
	for {
		f, err := c.Next()
		if err != nil {
			break // EOF/draining error frame path ends the read loop
		}
		switch fr := f.(type) {
		case wire.Verdict:
			verdicts = append(verdicts, fr)
		case wire.StreamSummary:
			s := fr
			sum = &s
		}
	}
	if len(verdicts) != n {
		t.Fatalf("drained %d verdicts, want %d", len(verdicts), n)
	}
	for i, v := range verdicts {
		if v.Score != want1[i] {
			t.Fatalf("drained verdict %d scored %v, want original epoch's %v", i, v.Score, want1[i])
		}
	}
	if sum == nil {
		t.Fatal("no StreamSummary flushed during drain")
	}
	if sum.ModelVersion != 1 || sum.Samples != n {
		t.Fatalf("drain summary %+v, want v1 with %d samples", sum, n)
	}
	ts.stop(t)
}

// TestSwapValidation pins the compatibility checks a swap must pass.
func TestSwapValidation(t *testing.T) {
	det, data := fixtures(t)
	ts := start(t, Config{Detector: det, ModelVersion: 1}, nil)

	if err := ts.srv.Swap(Model{}); err == nil {
		t.Fatal("swap with nil detector accepted")
	}
	narrow, err := data.Select([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := drift.BuildReference(narrow, 4)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := drift.NewMonitor(ref, drift.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.srv.Swap(Model{Detector: det, Drift: mon}); err == nil {
		t.Fatal("swap with mismatched drift monitor accepted")
	}
	if got := ts.srv.ActiveModel().Version; got != 1 {
		t.Fatalf("failed swaps changed the active version to %d", got)
	}
}

// TestServeDriftAndShadow pins the two observation taps on the scoring
// path: the active generation's drift monitor sees every scored sample,
// and an attached shadow re-scores them against a candidate.
func TestServeDriftAndShadow(t *testing.T) {
	det1, data := fixtures(t)
	det2 := candidate(t)
	ref, err := drift.BuildReference(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := drift.NewMonitor(ref, drift.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := start(t, Config{Detector: det1, ModelVersion: 1, Drift: dm}, nil)

	sh, err := shadow.New(det2, shadow.Config{Version: 2, Queue: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.srv.SetShadow(sh); err != nil {
		t.Fatal(err)
	}

	const n = 96
	samples := samplesFrom(data, n)
	c := dial(t, ts)
	if err := c.OpenStream(9, "app-tap"); err != nil {
		t.Fatal(err)
	}
	for i, fv := range samples {
		if err := c.Send(9, uint32(i), fv); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CloseStream(9); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, sum := collectStream(t, c, 9); sum.Samples != n {
		t.Fatalf("summary %+v", sum)
	}

	if got := dm.Snapshot().Samples; got != n {
		t.Fatalf("drift monitor saw %d samples, want %d", got, n)
	}
	if err := ts.srv.SetShadow(nil); err != nil {
		t.Fatal(err)
	}
	rep := sh.Close()
	if rep.Scored+rep.Dropped != n {
		t.Fatalf("shadow scored %d + dropped %d, want %d offered", rep.Scored, rep.Dropped, n)
	}
	if rep.CandidateVersion != 2 {
		t.Fatalf("shadow report version %d", rep.CandidateVersion)
	}
}
