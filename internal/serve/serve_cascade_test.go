package serve

import (
	"strings"
	"testing"

	"twosmart/internal/anomaly"
	"twosmart/internal/core"
	"twosmart/internal/dataset"
	"twosmart/internal/monitor"
	"twosmart/internal/telemetry"
	"twosmart/internal/wire"
	"twosmart/internal/workload"
)

// trainEnvelope fits a stage-0 envelope over the benign instances of the
// package fixture corpus, in the fixture detector's feature space.
func trainEnvelope(t *testing.T, data *dataset.Dataset) *anomaly.Envelope {
	t.Helper()
	var benign [][]float64
	for _, ins := range data.Instances {
		if workload.Class(ins.Label) == workload.Benign {
			benign = append(benign, ins.Features)
		}
	}
	env, err := anomaly.Train(data.FeatureNames, benign, anomaly.TrainConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// driveStream opens one stream, pushes samples, closes it and collects
// every verdict frame back.
func driveStream(t *testing.T, c *Client, samples [][]float64) []wire.Verdict {
	t.Helper()
	if err := c.OpenStream(3, "app-c"); err != nil {
		t.Fatal(err)
	}
	for i, fv := range samples {
		if err := c.Send(3, uint32(i), fv); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CloseStream(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []wire.Verdict
	for {
		f, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := f.(wire.Verdict); ok {
			got = append(got, v)
			continue
		}
		if _, ok := f.(wire.StreamSummary); ok {
			break
		}
		t.Fatalf("unexpected frame %#v", f)
	}
	if len(got) != len(samples) {
		t.Fatalf("received %d verdicts, want %d", len(got), len(samples))
	}
	return got
}

// TestServeCascadeShortCircuitAll drives a stream with the threshold
// overridden so high that every sample is clear benign: every verdict
// must carry the short-circuit flag and the telemetry must account for
// all of them in stage 0 with zero pass-throughs.
func TestServeCascadeShortCircuitAll(t *testing.T) {
	_, data := fixtures(t)
	env := trainEnvelope(t, data)
	reg := telemetry.New()
	ts := start(t, Config{Telemetry: reg, Envelope: env, CascadeThreshold: 1e18}, nil)
	c := dial(t, ts)

	const n = 64
	got := driveStream(t, c, samplesFrom(data, n))
	for i, v := range got {
		if v.Flags&wire.FlagShortCircuit == 0 {
			t.Fatalf("verdict %d: flags %08b missing short-circuit", i, v.Flags)
		}
		if v.Flags&wire.FlagMalware != 0 {
			t.Fatalf("verdict %d: short-circuited sample flagged malware", i)
		}
		if v.Class != uint8(workload.Benign) {
			t.Fatalf("verdict %d: class %d, want benign", i, v.Class)
		}
		if v.Score != 0 {
			t.Fatalf("verdict %d: score %v, want 0", i, v.Score)
		}
	}

	if short := reg.Counter("cascade_short_total").Value(); short != n {
		t.Fatalf("cascade_short_total = %d, want %d", short, n)
	}
	if pass := reg.Counter("cascade_pass_total").Value(); pass != 0 {
		t.Fatalf("cascade_pass_total = %d, want 0", pass)
	}
	if nanos := reg.Counter("cascade_stage0_nanos_total").Value(); nanos == 0 {
		t.Fatal("cascade_stage0_nanos_total = 0, want > 0")
	}
	if samples := reg.Counter("cascade_stage0_samples_total").Value(); samples != n {
		t.Fatalf("cascade_stage0_samples_total = %d, want %d", samples, n)
	}
	if s1 := reg.Counter("cascade_stage1_samples_total").Value(); s1 != 0 {
		t.Fatalf("cascade_stage1_samples_total = %d, want 0", s1)
	}
	appShort := reg.Counter(telemetry.Label("cascade_app_short_total", "app", "app-c"))
	if appShort.Value() != n {
		t.Fatalf("per-app short = %d, want %d", appShort.Value(), n)
	}
}

// TestServeCascadeDisabledByKnob checks that CascadeThreshold < 0 turns
// the cascade off even with an envelope configured: no verdict carries
// the flag and no cascade_* family is ever registered.
func TestServeCascadeDisabledByKnob(t *testing.T) {
	_, data := fixtures(t)
	env := trainEnvelope(t, data)
	reg := telemetry.New()
	ts := start(t, Config{Telemetry: reg, Envelope: env, CascadeThreshold: -1}, nil)
	if ts.srv.ActiveModel().CascadeEnabled() {
		t.Fatal("cascade enabled despite negative threshold knob")
	}
	c := dial(t, ts)

	got := driveStream(t, c, samplesFrom(data, 32))
	for i, v := range got {
		if v.Flags&wire.FlagShortCircuit != 0 {
			t.Fatalf("verdict %d: short-circuit flag with cascade disabled", i)
		}
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "cascade_") {
		t.Fatalf("disabled cascade registered cascade_* families:\n%s", sb.String())
	}
}

// TestServeCascadeMixedEquivalence runs the cascade at its calibrated
// threshold over a mixed corpus slice and checks every verdict against an
// independent reference that applies the same partition: short-circuited
// samples get the benign verdict with score 0, pass-throughs get the full
// fused-path verdict, and the EWMA monitor observes the partitioned score
// sequence.
func TestServeCascadeMixedEquivalence(t *testing.T) {
	det, data := fixtures(t)
	env := trainEnvelope(t, data)
	reg := telemetry.New()
	ts := start(t, Config{Telemetry: reg, Envelope: env}, nil)
	c := dial(t, ts)

	const n = 128
	samples := samplesFrom(data, n)
	got := driveStream(t, c, samples)

	// Reference partition + full-path verdicts for the pass-throughs.
	cd := det.Compile()
	wantVerdicts := make([]core.Verdict, n)
	wantScores := make([]float64, n)
	if err := cd.DetectScoredBatch(wantVerdicts, wantScores, samples); err != nil {
		t.Fatal(err)
	}
	shorts := 0
	for i, fv := range samples {
		if env.Score(fv) <= env.Threshold {
			wantVerdicts[i] = core.Verdict{PredictedClass: workload.Benign, Confidence: 1, Stage: core.StageShortCircuit}
			wantScores[i] = 0
			shorts++
		}
	}
	mon, err := monitor.New(det.Compile(), monitor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantEvents := make([]monitor.Event, n)
	if err := mon.ObserveScoredBatch(wantEvents, wantScores); err != nil {
		t.Fatal(err)
	}
	if shorts == 0 || shorts == n {
		t.Fatalf("degenerate partition: %d/%d short-circuited; fixture corpus should mix", shorts, n)
	}

	for i, v := range got {
		var wantFlags uint8
		if wantVerdicts[i].Stage == core.StageShortCircuit {
			wantFlags |= wire.FlagShortCircuit
		}
		if wantVerdicts[i].Malware {
			wantFlags |= wire.FlagMalware
		}
		if wantEvents[i].Alarm {
			wantFlags |= wire.FlagAlarm
		}
		if wantEvents[i].Changed {
			wantFlags |= wire.FlagAlarmChanged
		}
		if v.Flags != wantFlags {
			t.Fatalf("verdict %d: flags %08b, want %08b", i, v.Flags, wantFlags)
		}
		if v.Class != uint8(wantVerdicts[i].PredictedClass) {
			t.Fatalf("verdict %d: class %d, want %d", i, v.Class, wantVerdicts[i].PredictedClass)
		}
		if v.Score != wantScores[i] {
			t.Fatalf("verdict %d: score %v, want %v", i, v.Score, wantScores[i])
		}
	}

	if short := reg.Counter("cascade_short_total").Value(); short != uint64(shorts) {
		t.Fatalf("cascade_short_total = %d, want %d", short, shorts)
	}
	if pass := reg.Counter("cascade_pass_total").Value(); pass != uint64(n-shorts) {
		t.Fatalf("cascade_pass_total = %d, want %d", pass, n-shorts)
	}
	if s1 := reg.Counter("cascade_stage1_samples_total").Value(); s1 != uint64(n-shorts) {
		t.Fatalf("cascade_stage1_samples_total = %d, want %d", s1, n-shorts)
	}
}
