package serve

import (
	"testing"
	"time"

	"twosmart/internal/telemetry"
	"twosmart/internal/wire"
)

// TestServeIdleReapsConnection pins the reap path: a connection that goes
// silent past IdleTimeout is closed by the server, but only after every
// queued sample was scored and flushed, and with a CodeIdle error frame
// so the agent can tell a reap from a network failure.
func TestServeIdleReapsConnection(t *testing.T) {
	_, data := fixtures(t)
	reg := telemetry.New()
	ts := start(t, Config{Telemetry: reg, IdleTimeout: 250 * time.Millisecond}, nil)
	c := dial(t, ts)

	const n = 8
	if err := c.OpenStream(1, "idle-app"); err != nil {
		t.Fatal(err)
	}
	for i, fv := range samplesFrom(data, n) {
		if err := c.Send(1, uint32(i), fv); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// Go silent and read until the server hangs up. The client-side
	// deadline only bounds the test when the reap never happens.
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	verdicts := 0
	var reap *wire.Error
	for {
		f, err := c.Next()
		if err != nil {
			break // EOF once the server closed the reaped connection
		}
		switch fr := f.(type) {
		case wire.Verdict:
			verdicts++
		case wire.Error:
			e := fr
			reap = &e
		}
	}
	if verdicts != n {
		t.Errorf("got %d verdicts before the reap, want %d (queued samples must flush)", verdicts, n)
	}
	if reap == nil {
		t.Fatal("connection closed without a CodeIdle error frame")
	}
	if reap.Code != wire.CodeIdle {
		t.Fatalf("reap error code = %d, want CodeIdle (%d): %s", reap.Code, wire.CodeIdle, reap.Msg)
	}
	if got := reg.Counter("serve_conns_reaped_total").Value(); got != 1 {
		t.Errorf("serve_conns_reaped_total = %d, want 1", got)
	}
}

// TestServeHeartbeatKeepsConnectionAlive pins the other half of the reap
// contract: Heartbeat frames count as activity, so an agent with nothing
// to report stays connected across several idle budgets and can resume
// streaming afterwards.
func TestServeHeartbeatKeepsConnectionAlive(t *testing.T) {
	_, data := fixtures(t)
	reg := telemetry.New()
	ts := start(t, Config{Telemetry: reg, IdleTimeout: 300 * time.Millisecond}, nil)
	c := dial(t, ts)
	c.SetReadDeadline(time.Now().Add(10 * time.Second))

	// Heartbeat-only traffic for three full idle budgets.
	quiet := time.Now().Add(900 * time.Millisecond)
	for time.Now().Before(quiet) {
		if err := c.Heartbeat(uint64(time.Now().UnixNano())); err != nil {
			t.Fatalf("heartbeat write: %v", err)
		}
		if err := c.Flush(); err != nil {
			t.Fatalf("heartbeat flush: %v", err)
		}
		f, err := c.Next()
		if err != nil {
			t.Fatalf("connection died during heartbeats: %v", err)
		}
		if _, ok := f.(wire.Heartbeat); !ok {
			t.Fatalf("heartbeat echoed as %T", f)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Still alive: a real stream round-trips end to end.
	if err := c.OpenStream(1, "kept-alive-app"); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(1, 0, data.Instances[0].Features); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseStream(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for {
		f, err := c.Next()
		if err != nil {
			t.Fatalf("read after keep-alive: %v", err)
		}
		if _, ok := f.(wire.StreamSummary); ok {
			break
		}
	}
	if got := reg.Counter("serve_conns_reaped_total").Value(); got != 0 {
		t.Errorf("serve_conns_reaped_total = %d, want 0 (heartbeats are activity)", got)
	}
}
