// Package serve is the fleet-scale streaming detection service: a TCP
// server that speaks the internal/wire frame protocol, receives per-app
// HPC sample streams from many agents, scores them through the compiled
// allocation-free inference path and pushes verdict frames back.
//
// The dataflow per connection is
//
//	reader ──► bounded ingress ring (drop-oldest shed) ──► worker
//	                                                        │ adaptive micro-batches,
//	                                                        │ per-stream fan-out on
//	                                                        │ internal/parallel
//	writer ◄── verdict / summary frames ◄───────────────────┘
//
// Backpressure is explicit: the ingress ring never grows past QueueDepth;
// an overloaded server sheds the oldest queued samples (counted in
// serve_shed_total and per-stream in StreamSummary.Shed) instead of
// buffering without bound, and a slow client blocks its own worker's
// writes until the ring sheds — one connection cannot consume unbounded
// server memory. Scoring isolation follows the monitor layer's per-stream
// ownership model: each (connection, app) stream owns a compiled detector
// and monitor via a per-connection monitor.Tracker, so streams score
// concurrently without sharing scratch space.
//
// Graceful drain: when the Serve context is cancelled the server stops
// accepting, closes the read side of every connection, scores and flushes
// everything already queued, then closes. cmd/smartserve maps that to
// exit 130 on SIGINT/SIGTERM.
//
// Zero-downtime model swap: the server holds the active model behind an
// atomic pointer. Each stream binds the generation that was active when
// it opened — it compiles that generation's detector and reports that
// generation's version in its StreamSummary — so Swap never touches a
// stream in flight; only streams opened after the swap score with the
// new model. cmd/smartserve triggers Swap from SIGHUP or a registry
// watch loop.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"twosmart/internal/core"
	"twosmart/internal/drift"
	"twosmart/internal/monitor"
	"twosmart/internal/parallel"
	"twosmart/internal/persist"
	"twosmart/internal/shadow"
	"twosmart/internal/telemetry"
	"twosmart/internal/wire"
)

// handshakeTimeout bounds how long a fresh connection may sit without
// completing the Hello/Welcome exchange.
const handshakeTimeout = 10 * time.Second

// batchSizeBuckets is the serve_batch_size histogram layout: powers of
// two up to the default queue depth.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// Config configures a streaming detection server.
type Config struct {
	// Detector is the trained model to serve; every stream gets its own
	// compiled instance. Required.
	Detector *core.Detector
	// Model is the display name advertised in the Welcome frame.
	Model string
	// ModelVersion is the initial model's registry version, echoed in
	// Welcome and StreamSummary frames (0 outside a registry).
	ModelVersion int
	// Drift, when non-nil, receives every scored sample of the initial
	// model generation for feature-distribution monitoring. A hot swap
	// installs the replacement generation's monitor (see Model.Drift).
	Drift *drift.Monitor
	// Monitor tunes the per-stream smoothing and alarm hysteresis.
	Monitor monitor.Config
	// QueueDepth bounds each connection's ingress ring; beyond it the
	// oldest queued samples are shed (default 4096).
	QueueDepth int
	// MaxBatch caps how many samples one stream scores per
	// DetectScoredBatch call inside a drain round (default 512). The
	// effective micro-batch is adaptive: whatever accumulated in the ring
	// since the last round, up to QueueDepth.
	MaxBatch int
	// Workers bounds the per-round scoring fan-out across a connection's
	// streams (default: one worker per touched stream, capped by
	// runtime.NumCPU via internal/parallel).
	Workers int
	// Telemetry, when non-nil, receives the serve_* metric families and
	// the monitor layer's per-app instruments. Nil disables them.
	Telemetry *telemetry.Registry
	// Log receives connection lifecycle events (default slog.Default).
	Log *slog.Logger
}

func (c Config) fill() (Config, error) {
	if c.Detector == nil {
		return c, errors.New("serve: nil detector")
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4096
	}
	if c.QueueDepth < 1 {
		return c, fmt.Errorf("serve: queue depth %d below 1", c.QueueDepth)
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 512
	}
	if c.MaxBatch < 1 {
		return c, fmt.Errorf("serve: max batch %d below 1", c.MaxBatch)
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	if c.Model == "" {
		c.Model = "detector"
	}
	return c, nil
}

// Model is one servable model generation: the detector plus its registry
// identity and optional drift monitor. The server swaps generations
// atomically; streams bind the generation active at open time.
type Model struct {
	// Detector is the trained model; every stream compiles its own
	// instance. Required.
	Detector *core.Detector
	// Version is the registry version (0 outside a registry).
	Version int
	// Name is the display name advertised in the Welcome frame.
	Name string
	// Drift, when non-nil, receives every sample scored under this
	// generation. It must be safe for concurrent use (drift.Monitor is).
	Drift *drift.Monitor
}

// Server serves one trained detector over the wire protocol.
type Server struct {
	cfg         Config
	numFeatures int

	active  atomic.Pointer[Model]
	shadowP atomic.Pointer[shadow.Shadow]

	ln net.Listener
	wg sync.WaitGroup

	// scoreHook, when set (tests only), runs before every per-stream
	// scoring round; a slow hook makes load-shedding deterministic.
	scoreHook func()

	connsActive telemetry.Gauge
	connsTotal  telemetry.Counter
	samplesIn   telemetry.Counter
	verdictsOut telemetry.Counter
	shed        telemetry.Counter
	protoErrs   telemetry.Counter
	swaps       telemetry.Counter
	batchSize   telemetry.Histogram
	latency     telemetry.Histogram
}

// New validates the configuration and builds a server. Call Listen then
// Serve.
func New(cfg Config) (*Server, error) {
	filled, err := cfg.fill()
	if err != nil {
		return nil, err
	}
	// Surface monitor config errors now, not on the first connection.
	if _, err := monitor.New(filled.Detector.Compile(), filled.Monitor); err != nil {
		return nil, err
	}
	n := filled.Detector.NumFeatures()
	if n > wire.MaxFeatures {
		return nil, fmt.Errorf("serve: model expects %d features, above the wire limit %d", n, wire.MaxFeatures)
	}
	if filled.Drift != nil && filled.Drift.NumFeatures() != n {
		return nil, fmt.Errorf("serve: drift monitor covers %d features, model has %d", filled.Drift.NumFeatures(), n)
	}
	reg := filled.Telemetry
	s := &Server{
		cfg:         filled,
		numFeatures: n,
		connsActive: reg.Gauge("serve_connections_active"),
		connsTotal:  reg.Counter("serve_connections_total"),
		samplesIn:   reg.Counter("serve_samples_total"),
		verdictsOut: reg.Counter("serve_verdicts_total"),
		shed:        reg.Counter("serve_shed_total"),
		protoErrs:   reg.Counter("serve_protocol_errors_total"),
		swaps:       reg.Counter("serve_model_swaps_total"),
		batchSize:   reg.Histogram("serve_batch_size", batchSizeBuckets),
		latency:     reg.Histogram("serve_verdict_latency_seconds", telemetry.LatencyBuckets),
	}
	initial := &Model{
		Detector: filled.Detector,
		Version:  filled.ModelVersion,
		Name:     filled.Model,
		Drift:    filled.Drift,
	}
	s.active.Store(initial)
	s.setModelInfo(nil, initial)
	return s, nil
}

// NumFeatures returns the feature width the served model expects.
func (s *Server) NumFeatures() int { return s.numFeatures }

// ActiveModel returns the generation new streams currently bind.
func (s *Server) ActiveModel() Model { return *s.active.Load() }

// Swap atomically promotes a new model generation: streams opened from
// now on compile m.Detector and report m.Version, while streams already
// in flight — including samples still queued for them — finish on the
// generation they opened with. The replacement must keep the feature
// width: connected agents were told the width in their Welcome and the
// read loop enforces it per sample, so changing it would invalidate
// every live connection.
func (s *Server) Swap(m Model) error {
	if m.Detector == nil {
		return errors.New("serve: swap with nil detector")
	}
	if n := m.Detector.NumFeatures(); n != s.numFeatures {
		return fmt.Errorf("serve: swap model expects %d features, serving %d", n, s.numFeatures)
	}
	if m.Drift != nil && m.Drift.NumFeatures() != s.numFeatures {
		return fmt.Errorf("serve: swap drift monitor covers %d features, serving %d", m.Drift.NumFeatures(), s.numFeatures)
	}
	if m.Name == "" {
		m.Name = s.cfg.Model
	}
	old := s.active.Swap(&m)
	s.swaps.Inc()
	s.setModelInfo(old, &m)
	s.cfg.Log.Info("model swapped",
		"from", old.Name, "from_version", old.Version,
		"to", m.Name, "to_version", m.Version)
	return nil
}

// setModelInfo keeps the serve_model_info labeled gauge family pointing
// at exactly one generation: the active one is 1, the demoted one 0.
func (s *Server) setModelInfo(old, cur *Model) {
	reg := s.cfg.Telemetry
	if !reg.Enabled() {
		return
	}
	if old != nil {
		reg.Gauge(modelInfoName(old)).Set(0)
	}
	reg.Gauge(modelInfoName(cur)).Set(1)
}

func modelInfoName(m *Model) string {
	name := telemetry.Label("serve_model_info", "model", m.Name)
	return telemetry.Label(name, "version", strconv.Itoa(m.Version))
}

// SetShadow attaches (or, with nil, detaches) a shadow scorer: every
// sample scored by the live path is offered to it off the hot path, so
// an operator can measure a candidate's divergence on real traffic
// before promoting it. The caller keeps ownership — Close the shadow
// after detaching to collect the final report.
func (s *Server) SetShadow(sh *shadow.Shadow) error {
	if sh != nil && sh.NumFeatures() != s.numFeatures {
		return fmt.Errorf("serve: shadow model expects %d features, serving %d", sh.NumFeatures(), s.numFeatures)
	}
	s.shadowP.Store(sh)
	return nil
}

// Listen binds the server's TCP listener and returns the bound address
// (useful with ":0").
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	return ln.Addr(), nil
}

// Serve accepts and handles connections until ctx is cancelled, then
// drains gracefully: the listener closes, every connection's read side is
// shut, in-flight batches are scored and flushed, and Serve returns nil.
// A listener failure other than the drain close is returned as an error.
func (s *Server) Serve(ctx context.Context) error {
	if s.ln == nil {
		return errors.New("serve: Serve before Listen")
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			s.ln.Close()
		case <-stop:
		}
	}()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			s.wg.Wait()
			return fmt.Errorf("serve: accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(ctx, nc)
		}()
	}
	s.cfg.Log.Info("draining", "reason", context.Cause(ctx))
	s.wg.Wait()
	return nil
}

// stream is one (connection, app) sample stream: its compiled detector
// (owned by the tracker's per-app monitor; see monitor.Tracker.OpenWith)
// plus the reusable micro-batch buffers. A stream is only ever touched by
// its connection's worker goroutine.
//
// det, version and drft are the stream's model epoch, captured from the
// active generation in openStream. A hot swap that lands mid-stream does
// not change them: samples already queued and samples still arriving on
// this stream score on the epoch's detector, and the StreamSummary
// reports the epoch's version.
type stream struct {
	id      uint32
	app     string
	det     *core.CompiledDetector
	version int
	drft    *drift.Monitor

	// pending micro-batch, refilled each drain round
	samples  [][]float64
	bufs     [][]float64 // ring buffers to recycle after scoring
	seqs     []uint32
	ats      []time.Time
	verdicts []core.Verdict
	scores   []float64
	events   []monitor.Event
}

// ctrl is a reader→worker control message (stream open/close), routed
// through a queue separate from the sample ring so load-shedding can
// never drop one.
type ctrl struct {
	open   bool
	stream uint32
	app    string
}

type conn struct {
	s  *Server
	nc net.Conn
	tr *monitor.Tracker
	q  *ring
	r  *wire.Reader

	wmu sync.Mutex
	w   *wire.Writer

	ctrlMu sync.Mutex
	ctrls  []ctrl

	kick       chan struct{} // worker wake-up, capacity 1
	readerDone chan struct{} // closed when the reader stops enqueueing

	streams map[uint32]*stream // worker-owned after handshake
	drain   []item             // reusable drain buffer
	touched []*stream          // reusable per-round stream list
}

func (s *Server) handle(ctx context.Context, nc net.Conn) {
	s.connsTotal.Inc()
	s.connsActive.Add(1)
	defer s.connsActive.Add(-1)
	defer nc.Close()
	log := s.cfg.Log.With("remote", nc.RemoteAddr().String())

	tr, err := monitor.NewTrackerFactory(func() monitor.Scorer {
		return s.active.Load().Detector.Compile()
	}, s.cfg.Monitor)
	if err != nil {
		log.Error("tracker", "err", err)
		return
	}
	c := &conn{
		s:          s,
		nc:         nc,
		tr:         tr,
		q:          newRing(s.cfg.QueueDepth),
		w:          wire.NewWriter(nc),
		kick:       make(chan struct{}, 1),
		readerDone: make(chan struct{}),
		streams:    make(map[uint32]*stream),
	}
	if err := c.handshake(); err != nil {
		log.Warn("handshake", "err", err)
		return
	}

	// Drain watcher: a cancelled server closes the read side so the
	// reader unblocks; everything already queued still gets scored.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-ctx.Done():
			closeRead(nc)
		case <-stopWatch:
		}
	}()

	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		c.work()
	}()

	rerr := c.readLoop()
	close(c.readerDone)
	<-workerDone

	if ctx.Err() != nil {
		// Best-effort notice so agents can distinguish drain from a crash.
		c.writeFrame(wire.Error{Code: wire.CodeDraining, Msg: "server draining"})
	}
	c.flush()
	if rerr != nil && !errors.Is(rerr, io.EOF) && ctx.Err() == nil {
		log.Warn("connection closed", "err", rerr)
	} else {
		log.Info("connection closed")
	}
}

// closeRead half-closes the connection so a blocked reader sees EOF while
// queued verdicts can still be written.
func closeRead(nc net.Conn) {
	type readCloser interface{ CloseRead() error }
	if rc, ok := nc.(readCloser); ok {
		rc.CloseRead()
		return
	}
	nc.SetReadDeadline(time.Now())
}

func (c *conn) handshake() error {
	c.nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	r := wire.NewReader(c.nc)
	f, err := r.Next()
	if err != nil {
		return err
	}
	hello, ok := f.(wire.Hello)
	if !ok {
		c.writeFrame(wire.Error{Code: wire.CodeProtocol, Msg: "expected Hello"})
		c.flush()
		return fmt.Errorf("first frame is %T, want Hello", f)
	}
	if hello.Proto != wire.ProtoVersion {
		c.writeFrame(wire.Error{Code: wire.CodeVersion,
			Msg: fmt.Sprintf("protocol v%d unsupported, server speaks v%d", hello.Proto, wire.ProtoVersion)})
		c.flush()
		return fmt.Errorf("client protocol v%d, want v%d", hello.Proto, wire.ProtoVersion)
	}
	c.nc.SetReadDeadline(time.Time{})
	c.r = r
	am := c.s.active.Load()
	c.writeFrame(wire.Welcome{
		Proto:        wire.ProtoVersion,
		ModelFormat:  persist.FormatVersion,
		ModelVersion: uint32(am.Version),
		NumFeatures:  uint16(c.s.numFeatures),
		Model:        am.Name,
	})
	return c.flush()
}

// readLoop parses frames until EOF, a read error or a protocol violation,
// feeding samples into the ring and stream opens/closes into the control
// queue.
func (c *conn) readLoop() error {
	for {
		f, err := c.r.Next()
		if err != nil {
			return err
		}
		switch fr := f.(type) {
		case wire.Sample:
			if len(fr.Features) != c.s.numFeatures {
				c.s.protoErrs.Inc()
				c.writeFrame(wire.Error{Code: wire.CodeBadFeatures,
					Msg: fmt.Sprintf("sample has %d features, model wants %d", len(fr.Features), c.s.numFeatures)})
				c.flush()
				return fmt.Errorf("sample width %d, want %d", len(fr.Features), c.s.numFeatures)
			}
			c.s.samplesIn.Inc()
			if c.q.push(fr.Stream, fr.Seq, time.Now(), fr.Features) {
				c.s.shed.Inc()
			}
			c.wake()
		case wire.OpenStream:
			c.enqueueCtrl(ctrl{open: true, stream: fr.Stream, app: fr.App})
		case wire.CloseStream:
			c.enqueueCtrl(ctrl{stream: fr.Stream})
		case wire.Heartbeat:
			c.writeFrame(fr)
			c.flush()
		default:
			c.s.protoErrs.Inc()
			c.writeFrame(wire.Error{Code: wire.CodeProtocol, Msg: fmt.Sprintf("unexpected frame type 0x%02x", f.Type())})
			c.flush()
			return fmt.Errorf("unexpected frame %T", f)
		}
	}
}

func (c *conn) enqueueCtrl(m ctrl) {
	c.ctrlMu.Lock()
	c.ctrls = append(c.ctrls, m)
	c.ctrlMu.Unlock()
	c.wake()
}

func (c *conn) wake() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// work is the connection's scoring loop: every wake-up it processes one
// adaptive micro-batch round; when the reader stops it runs a final round
// over whatever is still queued (the graceful-drain flush) and exits.
func (c *conn) work() {
	for {
		select {
		case <-c.kick:
			if err := c.process(); err != nil {
				c.fail(err)
				return
			}
		case <-c.readerDone:
			if err := c.process(); err != nil {
				c.fail(err)
			}
			return
		}
	}
}

// fail tears the connection down after a worker-side error (typically a
// write failure to a dead client).
func (c *conn) fail(err error) {
	c.s.cfg.Log.Warn("connection worker", "remote", c.nc.RemoteAddr().String(), "err", err)
	c.nc.Close() // unblocks the reader
}

// process runs one micro-batch round: apply stream opens, drain the ring,
// fan scoring out across the touched streams, write verdicts, then apply
// stream closes and flush.
func (c *conn) process() error {
	c.ctrlMu.Lock()
	ctrls := c.ctrls
	c.ctrls = nil
	c.ctrlMu.Unlock()

	for _, m := range ctrls {
		if m.open {
			if err := c.openStream(m.stream, m.app); err != nil {
				return err
			}
		}
	}

	c.drain = c.q.drainInto(c.drain[:0])
	if len(c.drain) > 0 {
		c.batchObserve(len(c.drain))
		c.touched = c.touched[:0]
		for i := range c.drain {
			it := &c.drain[i]
			st := c.streams[it.stream]
			if st == nil {
				c.s.protoErrs.Inc()
				c.q.recycle(it.features)
				continue
			}
			if len(st.samples) == 0 {
				c.touched = append(c.touched, st)
			}
			st.samples = append(st.samples, it.features)
			st.bufs = append(st.bufs, it.features)
			st.seqs = append(st.seqs, it.seq)
			st.ats = append(st.ats, it.at)
		}
		// Per-stream fan-out: each stream's monitor and compiled detector
		// are goroutine-isolated (see monitor.Tracker), so streams score
		// concurrently; only the frame writer is shared and mutex-guarded.
		// The fan-out deliberately ignores server cancellation: a drain
		// must score and flush everything already queued.
		err := parallel.ForEach(context.Background(), len(c.touched), parallel.Options{Workers: c.s.cfg.Workers},
			func(_ context.Context, i int) error {
				return c.scoreStream(c.touched[i])
			})
		for _, st := range c.touched {
			for _, buf := range st.bufs {
				c.q.recycle(buf)
			}
			st.samples = st.samples[:0]
			st.bufs = st.bufs[:0]
			st.seqs = st.seqs[:0]
			st.ats = st.ats[:0]
		}
		if err != nil {
			return err
		}
	}

	for _, m := range ctrls {
		if !m.open {
			if err := c.closeStream(m.stream); err != nil {
				return err
			}
		}
	}
	return c.flush()
}

func (c *conn) batchObserve(n int) {
	c.s.batchSize.Observe(float64(n))
}

func (c *conn) openStream(id uint32, app string) error {
	if _, dup := c.streams[id]; dup {
		c.s.protoErrs.Inc()
		c.writeFrame(wire.Error{Code: wire.CodeBadStream, Msg: fmt.Sprintf("stream %d already open", id)})
		return nil
	}
	for _, st := range c.streams {
		if st.app == app {
			c.s.protoErrs.Inc()
			c.writeFrame(wire.Error{Code: wire.CodeBadStream,
				Msg: fmt.Sprintf("app %q already streamed on this connection", app)})
			return nil
		}
	}
	// Capture the stream's model epoch: compile the generation that is
	// active right now and bind the app's monitor to that same instance.
	// A swap after this point only affects streams opened later.
	am := c.s.active.Load()
	det := am.Detector.Compile()
	if !c.tr.OpenWith(app, det) {
		// The app key is already tracked (unreachable after the dup checks
		// above); reuse the tracker-owned scorer so stream and monitor agree.
		var ok bool
		det, ok = c.tr.ScorerFor(app).(*core.CompiledDetector)
		if !ok {
			return fmt.Errorf("serve: tracker scorer for %q is %T, want *core.CompiledDetector", app, c.tr.ScorerFor(app))
		}
	}
	c.streams[id] = &stream{id: id, app: app, det: det, version: am.Version, drft: am.Drift}
	return nil
}

func (c *conn) closeStream(id uint32) error {
	st, ok := c.streams[id]
	if !ok {
		c.s.protoErrs.Inc()
		c.writeFrame(wire.Error{Code: wire.CodeBadStream, Msg: fmt.Sprintf("stream %d not open", id)})
		return nil
	}
	delete(c.streams, id)
	sum, _ := c.tr.Close(st.app)
	_, shedHere := c.q.shedCounts(id)
	c.writeFrame(wire.StreamSummary{
		Stream:       id,
		ModelVersion: uint32(st.version),
		Samples:      uint64(sum.Samples),
		Shed:         shedHere,
		Alarms:       uint32(sum.Alarms),
		MaxSmoothed:  sum.MaxSmoothed,
	})
	return nil
}

// scoreStream scores one stream's pending micro-batch in MaxBatch chunks
// through the fused compiled path and writes the verdict frames.
func (c *conn) scoreStream(st *stream) error {
	if c.s.scoreHook != nil {
		c.s.scoreHook()
	}
	pending := len(st.samples)
	if cap(st.verdicts) < pending {
		st.verdicts = make([]core.Verdict, pending)
		st.scores = make([]float64, pending)
		st.events = make([]monitor.Event, pending)
	}
	for off := 0; off < pending; off += c.s.cfg.MaxBatch {
		end := off + c.s.cfg.MaxBatch
		if end > pending {
			end = pending
		}
		n := end - off
		verdicts := st.verdicts[:n]
		scores := st.scores[:n]
		events := st.events[:n]
		if err := st.det.DetectScoredBatch(verdicts, scores, st.samples[off:end]); err != nil {
			return err
		}
		if err := c.tr.ObserveScoredBatch(st.app, events, scores); err != nil {
			return err
		}
		if st.drft != nil {
			if err := st.drft.ObserveBatch(st.samples[off:end]); err != nil {
				return err
			}
		}
		if sh := c.s.shadowP.Load(); sh != nil {
			for i := 0; i < n; i++ {
				sh.Offer(st.samples[off+i], shadow.Primary{
					Malware: verdicts[i].Malware,
					Class:   verdicts[i].PredictedClass.String(),
					Score:   scores[i],
				})
			}
		}
		now := time.Now()
		c.wmu.Lock()
		for i := 0; i < n; i++ {
			var flags uint8
			if verdicts[i].Malware {
				flags |= wire.FlagMalware
			}
			if events[i].Alarm {
				flags |= wire.FlagAlarm
			}
			if events[i].Changed {
				flags |= wire.FlagAlarmChanged
			}
			if err := c.w.Write(wire.Verdict{
				Stream:   st.id,
				Seq:      st.seqs[off+i],
				Flags:    flags,
				Class:    uint8(verdicts[i].PredictedClass),
				Score:    scores[i],
				Smoothed: events[i].Smoothed,
			}); err != nil {
				c.wmu.Unlock()
				return err
			}
			c.s.latency.ObserveDuration(now.Sub(st.ats[off+i]))
		}
		c.wmu.Unlock()
		c.s.verdictsOut.Add(uint64(n))
	}
	return nil
}

func (c *conn) writeFrame(f wire.Frame) {
	c.wmu.Lock()
	c.w.Write(f)
	c.wmu.Unlock()
}

func (c *conn) flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.w.Flush()
}
