// Package serve is the fleet-scale streaming detection service: a TCP
// server that speaks the internal/wire frame protocol, receives per-app
// HPC sample streams from many agents, scores them through the compiled
// allocation-free inference path and pushes verdict frames back.
//
// The dataflow per connection is
//
//	reader ──► bounded ingress ring (drop-oldest shed) ──► worker
//	                                                        │ adaptive micro-batches,
//	                                                        │ per-stream fan-out on
//	                                                        │ internal/parallel
//	writer ◄── verdict / summary frames ◄───────────────────┘
//
// The ring, worker loop, micro-batching and stream bookkeeping live in
// internal/session — the engine this package shares with the sharded
// gateway tier (internal/cluster) — with the scoring half supplied by
// session.Scoring and the wire framing by this package's conn type.
//
// Backpressure is explicit: the ingress ring never grows past QueueDepth;
// an overloaded server sheds the oldest queued samples (counted in
// serve_shed_total and per-stream in StreamSummary.Shed) instead of
// buffering without bound, and a slow client blocks its own worker's
// writes until the ring sheds — one connection cannot consume unbounded
// server memory. Scoring isolation follows the monitor layer's per-stream
// ownership model: each (connection, app) stream owns a compiled detector
// and monitor via a per-connection monitor.Tracker, so streams score
// concurrently without sharing scratch space.
//
// Graceful drain: when the Serve context is cancelled the server stops
// accepting, closes the read side of every connection, scores and flushes
// everything already queued, then closes. cmd/smartserve maps that to
// exit 130 on SIGINT/SIGTERM.
//
// Idle reaping: with IdleTimeout set, a connection that sends no frame —
// not even a Heartbeat — for that long is reaped (Error{CodeIdle}, then
// close, counted in serve_conns_reaped_total), so dead agents cannot pin
// tracker and ring memory forever. Agents with sparse sample traffic keep
// their connections alive with wire Heartbeat frames, which the server
// echoes and which reset the idle clock like any other frame.
//
// Zero-downtime model swap: the server holds the active model behind an
// atomic pointer. Each stream binds the generation that was active when
// it opened — it compiles that generation's detector and reports that
// generation's version in its StreamSummary — so Swap never touches a
// stream in flight; only streams opened after the swap score with the
// new model. cmd/smartserve triggers Swap from SIGHUP or a registry
// watch loop.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"twosmart/internal/anomaly"
	"twosmart/internal/core"
	"twosmart/internal/drift"
	"twosmart/internal/monitor"
	"twosmart/internal/persist"
	"twosmart/internal/samplelog"
	"twosmart/internal/session"
	"twosmart/internal/shadow"
	"twosmart/internal/telemetry"
	"twosmart/internal/trace"
	"twosmart/internal/wire"
)

// handshakeTimeout bounds how long a fresh connection may sit without
// completing the Hello/Welcome exchange.
const handshakeTimeout = 10 * time.Second

// batchSizeBuckets is the serve_batch_size histogram layout: powers of
// two up to the default queue depth.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// Config configures a streaming detection server.
type Config struct {
	// Detector is the trained model to serve; every stream gets its own
	// compiled instance. Required.
	Detector *core.Detector
	// Model is the display name advertised in the Welcome frame.
	Model string
	// ModelVersion is the initial model's registry version, echoed in
	// Welcome and StreamSummary frames (0 outside a registry).
	ModelVersion int
	// Drift, when non-nil, receives every scored sample of the initial
	// model generation for feature-distribution monitoring. A hot swap
	// installs the replacement generation's monitor (see Model.Drift).
	Drift *drift.Monitor
	// Envelope, when non-nil, enables the stage-0 cascade for the initial
	// model generation: samples inside the envelope short-circuit with a
	// benign verdict before the full detector runs. Must cover the
	// detector's exact feature width.
	Envelope *anomaly.Envelope
	// CascadeThreshold is the operator's short-circuit knob, applied to
	// every generation (initial and swapped-in): 0 uses each envelope's
	// calibrated threshold, > 0 overrides it, < 0 disables the cascade
	// even when an envelope is present.
	CascadeThreshold float64
	// Monitor tunes the per-stream smoothing and alarm hysteresis.
	Monitor monitor.Config
	// QueueDepth bounds each connection's ingress ring; beyond it the
	// oldest queued samples are shed (default 4096).
	QueueDepth int
	// MaxBatch caps how many samples one stream scores per
	// DetectScoredBatch call inside a drain round (default 512). The
	// effective micro-batch is adaptive: whatever accumulated in the ring
	// since the last round, up to QueueDepth.
	MaxBatch int
	// Workers bounds the per-round scoring fan-out across a connection's
	// streams (default: one worker per touched stream, capped by
	// runtime.NumCPU via internal/parallel).
	Workers int
	// IdleTimeout, when positive, reaps connections whose agents send no
	// frame for that long: the read side is torn down, queued samples are
	// still scored and flushed, an Error{CodeIdle} notice is sent, and
	// serve_conns_reaped_total is incremented. Heartbeat frames reset the
	// clock, so a live-but-quiet agent stays connected by probing. Zero
	// disables reaping.
	IdleTimeout time.Duration
	// Telemetry, when non-nil, receives the serve_* metric families and
	// the monitor layer's per-app instruments. Nil disables them.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, samples scored chunks into end-to-end trace
	// records (internal/trace): per-hop attribution from gateway ingress
	// (wire.Sample.IngressNanos, when stamped) through ring wait, batch
	// assembly, scoring and verdict emission. Nil disables tracing.
	Tracer *trace.Tracer
	// SampleLog, when non-nil, records every scored sample (features,
	// verdict, score, model version) to the durable sample log. Append
	// copies and never blocks — a slow log disk sheds records, it cannot
	// stall verdicts. The caller keeps ownership and Closes it after
	// Serve returns.
	SampleLog *samplelog.Writer
	// Log receives connection lifecycle events (default slog.Default).
	Log *slog.Logger
}

func (c Config) fill() (Config, error) {
	if c.Detector == nil {
		return c, errors.New("serve: nil detector")
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4096
	}
	if c.QueueDepth < 1 {
		return c, fmt.Errorf("serve: queue depth %d below 1", c.QueueDepth)
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 512
	}
	if c.MaxBatch < 1 {
		return c, fmt.Errorf("serve: max batch %d below 1", c.MaxBatch)
	}
	if c.IdleTimeout < 0 {
		return c, fmt.Errorf("serve: negative idle timeout %s", c.IdleTimeout)
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	if c.Model == "" {
		c.Model = "detector"
	}
	return c, nil
}

// Model is one servable model generation: the detector plus its registry
// identity and optional drift monitor. The server swaps generations
// atomically; streams bind the generation active at open time.
type Model struct {
	// Detector is the trained model; every stream compiles its own
	// instance. Required.
	Detector *core.Detector
	// Version is the registry version (0 outside a registry).
	Version int
	// Name is the display name advertised in the Welcome frame.
	Name string
	// Drift, when non-nil, receives every sample scored under this
	// generation. It must be safe for concurrent use (drift.Monitor is).
	Drift *drift.Monitor
	// Envelope, when non-nil, is the generation's stage-0 anomaly
	// envelope. The server resolves it against the CascadeThreshold knob
	// at bind/swap time (see resolveCascade); entries without one serve
	// with the cascade disabled.
	Envelope *anomaly.Envelope

	// resolved by New/Swap: the compiled envelope (nil = cascade off for
	// this generation) and the effective short-circuit threshold.
	cascade          *anomaly.Compiled
	cascadeThreshold float64
}

// CascadeEnabled reports whether streams binding this generation run the
// stage-0 cascade.
func (m Model) CascadeEnabled() bool { return m.cascade != nil }

// CascadeThreshold returns the effective short-circuit threshold (0 when
// the cascade is disabled).
func (m Model) CascadeThreshold() float64 { return m.cascadeThreshold }

// resolveCascade compiles m.Envelope into the generation's cascade under
// the server's threshold knob: override < 0 disables the cascade even
// with an envelope present, 0 selects the envelope's calibrated
// threshold, > 0 overrides it. n is the served feature width.
func resolveCascade(m *Model, n int, override float64) error {
	m.cascade, m.cascadeThreshold = nil, 0
	if m.Envelope == nil || override < 0 {
		return nil
	}
	if err := m.Envelope.Validate(); err != nil {
		return fmt.Errorf("serve: anomaly envelope: %w", err)
	}
	if m.Envelope.NumFeatures() != n {
		return fmt.Errorf("serve: anomaly envelope covers %d features, model has %d",
			m.Envelope.NumFeatures(), n)
	}
	m.cascade = m.Envelope.Compile()
	m.cascadeThreshold = m.Envelope.Threshold
	if override > 0 {
		m.cascadeThreshold = override
	}
	return nil
}

// Server serves one trained detector over the wire protocol.
type Server struct {
	cfg         Config
	numFeatures int

	active  atomic.Pointer[Model]
	shadowP atomic.Pointer[shadow.Shadow]

	ln net.Listener
	wg sync.WaitGroup

	// scoreHook, when set (tests only), runs before every per-stream
	// scoring round; a slow hook makes load-shedding deterministic.
	scoreHook func()

	connsActive telemetry.Gauge
	connsTotal  telemetry.Counter
	connsReaped telemetry.Counter
	samplesIn   telemetry.Counter
	verdictsOut telemetry.Counter
	shed        telemetry.Counter
	protoErrs   telemetry.Counter
	swaps       telemetry.Counter
	batchSize   telemetry.Histogram
	latency     telemetry.Histogram
}

// New validates the configuration and builds a server. Call Listen then
// Serve.
func New(cfg Config) (*Server, error) {
	filled, err := cfg.fill()
	if err != nil {
		return nil, err
	}
	// Surface monitor config errors now, not on the first connection.
	if _, err := monitor.New(filled.Detector.Compile(), filled.Monitor); err != nil {
		return nil, err
	}
	n := filled.Detector.NumFeatures()
	if n > wire.MaxFeatures {
		return nil, fmt.Errorf("serve: model expects %d features, above the wire limit %d", n, wire.MaxFeatures)
	}
	if filled.Drift != nil && filled.Drift.NumFeatures() != n {
		return nil, fmt.Errorf("serve: drift monitor covers %d features, model has %d", filled.Drift.NumFeatures(), n)
	}
	reg := filled.Telemetry
	s := &Server{
		cfg:         filled,
		numFeatures: n,
		connsActive: reg.Gauge("serve_connections_active"),
		connsTotal:  reg.Counter("serve_connections_total"),
		connsReaped: reg.Counter("serve_conns_reaped_total"),
		samplesIn:   reg.Counter("serve_samples_total"),
		verdictsOut: reg.Counter("serve_verdicts_total"),
		shed:        reg.Counter("serve_shed_total"),
		protoErrs:   reg.Counter("serve_protocol_errors_total"),
		swaps:       reg.Counter("serve_model_swaps_total"),
		batchSize:   reg.Histogram("serve_batch_size", batchSizeBuckets),
		latency:     reg.Histogram("serve_verdict_latency_seconds", telemetry.LatencyBuckets),
	}
	initial := &Model{
		Detector: filled.Detector,
		Version:  filled.ModelVersion,
		Name:     filled.Model,
		Drift:    filled.Drift,
		Envelope: filled.Envelope,
	}
	if err := resolveCascade(initial, n, filled.CascadeThreshold); err != nil {
		return nil, err
	}
	s.active.Store(initial)
	s.setModelInfo(nil, initial)
	return s, nil
}

// NumFeatures returns the feature width the served model expects.
func (s *Server) NumFeatures() int { return s.numFeatures }

// ActiveModel returns the generation new streams currently bind.
func (s *Server) ActiveModel() Model { return *s.active.Load() }

// Swap atomically promotes a new model generation: streams opened from
// now on compile m.Detector and report m.Version, while streams already
// in flight — including samples still queued for them — finish on the
// generation they opened with. The replacement must keep the feature
// width: connected agents were told the width in their Welcome and the
// read loop enforces it per sample, so changing it would invalidate
// every live connection.
func (s *Server) Swap(m Model) error {
	if m.Detector == nil {
		return errors.New("serve: swap with nil detector")
	}
	if n := m.Detector.NumFeatures(); n != s.numFeatures {
		return fmt.Errorf("serve: swap model expects %d features, serving %d", n, s.numFeatures)
	}
	if m.Drift != nil && m.Drift.NumFeatures() != s.numFeatures {
		return fmt.Errorf("serve: swap drift monitor covers %d features, serving %d", m.Drift.NumFeatures(), s.numFeatures)
	}
	if err := resolveCascade(&m, s.numFeatures, s.cfg.CascadeThreshold); err != nil {
		return err
	}
	if m.Name == "" {
		m.Name = s.cfg.Model
	}
	old := s.active.Swap(&m)
	s.swaps.Inc()
	s.setModelInfo(old, &m)
	s.cfg.Log.Info("model swapped",
		"from", old.Name, "from_version", old.Version,
		"to", m.Name, "to_version", m.Version)
	return nil
}

// setModelInfo keeps the serve_model_info labeled gauge family pointing
// at exactly one generation: the active one is 1, the demoted one 0.
func (s *Server) setModelInfo(old, cur *Model) {
	reg := s.cfg.Telemetry
	if !reg.Enabled() {
		return
	}
	if old != nil {
		reg.Gauge(modelInfoName(old)).Set(0)
	}
	reg.Gauge(modelInfoName(cur)).Set(1)
}

func modelInfoName(m *Model) string {
	name := telemetry.Label("serve_model_info", "model", m.Name)
	return telemetry.Label(name, "version", strconv.Itoa(m.Version))
}

// SetShadow attaches (or, with nil, detaches) a shadow scorer: every
// sample scored by the live path is offered to it off the hot path, so
// an operator can measure a candidate's divergence on real traffic
// before promoting it. The caller keeps ownership — Close the shadow
// after detaching to collect the final report.
func (s *Server) SetShadow(sh *shadow.Shadow) error {
	if sh != nil && sh.NumFeatures() != s.numFeatures {
		return fmt.Errorf("serve: shadow model expects %d features, serving %d", sh.NumFeatures(), s.numFeatures)
	}
	s.shadowP.Store(sh)
	return nil
}

// Listen binds the server's TCP listener and returns the bound address
// (useful with ":0").
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	return ln.Addr(), nil
}

// Serve accepts and handles connections until ctx is cancelled, then
// drains gracefully: the listener closes, every connection's read side is
// shut, in-flight batches are scored and flushed, and Serve returns nil.
// A listener failure other than the drain close is returned as an error.
func (s *Server) Serve(ctx context.Context) error {
	if s.ln == nil {
		return errors.New("serve: Serve before Listen")
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			s.ln.Close()
		case <-stop:
		}
	}()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			s.wg.Wait()
			return fmt.Errorf("serve: accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(ctx, nc)
		}()
	}
	s.cfg.Log.Info("draining", "reason", context.Cause(ctx))
	s.wg.Wait()
	return nil
}

// conn is the wire transport around one connection's session engine: it
// parses inbound frames into the engine and implements session.Emitter
// to turn scored output back into Verdict/StreamSummary frames.
type conn struct {
	s   *Server
	nc  net.Conn
	eng *session.Engine
	r   *wire.Reader

	wmu sync.Mutex
	w   *wire.Writer

	readerDone chan struct{} // closed when the reader stops enqueueing
}

func (s *Server) handle(ctx context.Context, nc net.Conn) {
	s.connsTotal.Inc()
	s.connsActive.Add(1)
	defer s.connsActive.Add(-1)
	defer nc.Close()
	log := s.cfg.Log.With("remote", nc.RemoteAddr().String())

	c := &conn{
		s:          s,
		nc:         nc,
		w:          wire.NewWriter(nc),
		readerDone: make(chan struct{}),
	}
	scoring, err := session.NewScoring(session.ScoringConfig{
		Source: func() session.Generation {
			am := s.active.Load()
			return session.Generation{
				Detector:         am.Detector,
				Version:          am.Version,
				Drift:            am.Drift,
				Cascade:          am.cascade,
				CascadeThreshold: am.cascadeThreshold,
			}
		},
		Emit:      c,
		Monitor:   s.cfg.Monitor,
		MaxBatch:  s.cfg.MaxBatch,
		Tap:       c.tap,
		Tracer:    s.cfg.Tracer,
		Latency:   s.latency,
		Telemetry: s.cfg.Telemetry,
		Hook:      s.scoreHook,
	})
	if err != nil {
		log.Error("scoring", "err", err)
		return
	}
	c.eng, err = session.New(session.Config{
		Handler:    scoring,
		QueueDepth: s.cfg.QueueDepth,
		Workers:    s.cfg.Workers,
		OnReject:   c.reject,
		BatchSize:  s.batchSize,
	})
	if err != nil {
		log.Error("session", "err", err)
		return
	}
	if err := c.handshake(); err != nil {
		log.Warn("handshake", "err", err)
		return
	}

	// Drain watcher: a cancelled server closes the read side so the
	// reader unblocks; everything already queued still gets scored.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-ctx.Done():
			closeRead(nc)
		case <-stopWatch:
		}
	}()

	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		if err := c.eng.Run(c.readerDone); err != nil {
			c.fail(err)
		}
	}()

	rerr := c.readLoop()
	close(c.readerDone)
	<-workerDone

	reaped := s.cfg.IdleTimeout > 0 && ctx.Err() == nil && errors.Is(rerr, os.ErrDeadlineExceeded)
	if reaped {
		s.connsReaped.Inc()
		// Best-effort notice so a half-alive agent can tell a reap from a
		// network failure; queued samples were already scored and flushed.
		c.writeFrame(wire.Error{Code: wire.CodeIdle,
			Msg: fmt.Sprintf("no frames for %s, reaping idle connection", s.cfg.IdleTimeout)})
	}
	if ctx.Err() != nil {
		// Best-effort notice so agents can distinguish drain from a crash.
		c.writeFrame(wire.Error{Code: wire.CodeDraining, Msg: "server draining"})
	}
	c.Flush()
	switch {
	case reaped:
		log.Info("connection reaped", "idle_timeout", s.cfg.IdleTimeout)
	case rerr != nil && !errors.Is(rerr, io.EOF) && ctx.Err() == nil:
		log.Warn("connection closed", "err", rerr)
	default:
		log.Info("connection closed")
	}
}

// closeRead half-closes the connection so a blocked reader sees EOF while
// queued verdicts can still be written.
func closeRead(nc net.Conn) {
	type readCloser interface{ CloseRead() error }
	if rc, ok := nc.(readCloser); ok {
		rc.CloseRead()
		return
	}
	nc.SetReadDeadline(time.Now())
}

func (c *conn) handshake() error {
	c.nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	r := wire.NewReader(c.nc)
	f, err := r.Next()
	if err != nil {
		return err
	}
	hello, ok := f.(wire.Hello)
	if !ok {
		c.writeFrame(wire.Error{Code: wire.CodeProtocol, Msg: "expected Hello"})
		c.Flush()
		return fmt.Errorf("first frame is %T, want Hello", f)
	}
	if hello.Proto != wire.ProtoVersion {
		c.writeFrame(wire.Error{Code: wire.CodeVersion,
			Msg: fmt.Sprintf("protocol v%d unsupported, server speaks v%d", hello.Proto, wire.ProtoVersion)})
		c.Flush()
		return fmt.Errorf("client protocol v%d, want v%d", hello.Proto, wire.ProtoVersion)
	}
	c.nc.SetReadDeadline(time.Time{})
	c.r = r
	am := c.s.active.Load()
	c.writeFrame(wire.Welcome{
		Proto:        wire.ProtoVersion,
		ModelFormat:  persist.FormatVersion,
		ModelVersion: uint32(am.Version),
		NumFeatures:  uint16(c.s.numFeatures),
		Model:        am.Name,
	})
	return c.Flush()
}

// readLoop parses frames until EOF, a read error, an idle-timeout reap
// or a protocol violation, feeding samples into the engine's ring and
// stream opens/closes into its control queue.
func (c *conn) readLoop() error {
	idle := c.s.cfg.IdleTimeout
	var lastArm time.Time
	for {
		// Arm the idle deadline lazily — re-arming costs a poller update,
		// so refresh only after a quarter of the budget has elapsed. Any
		// inbound frame (samples, opens, heartbeats) pushes it out; a
		// connection that stays silent past IdleTimeout fails the read
		// with os.ErrDeadlineExceeded and is reaped by the caller.
		if idle > 0 {
			if now := time.Now(); now.Sub(lastArm) > idle/4 {
				c.nc.SetReadDeadline(now.Add(idle))
				lastArm = now
			}
		}
		f, err := c.r.Next()
		if err != nil {
			return err
		}
		switch fr := f.(type) {
		case wire.Sample:
			if len(fr.Features) != c.s.numFeatures {
				c.s.protoErrs.Inc()
				c.writeFrame(wire.Error{Code: wire.CodeBadFeatures,
					Msg: fmt.Sprintf("sample has %d features, model wants %d", len(fr.Features), c.s.numFeatures)})
				c.Flush()
				return fmt.Errorf("sample width %d, want %d", len(fr.Features), c.s.numFeatures)
			}
			c.s.samplesIn.Inc()
			if c.eng.Push(fr.Stream, fr.Seq, int64(fr.IngressNanos), time.Now(), fr.Features) {
				c.s.shed.Inc()
			}
		case wire.OpenStream:
			c.eng.Open(fr.Stream, fr.App)
		case wire.CloseStream:
			c.eng.Close(fr.Stream)
		case wire.Heartbeat:
			// Echo Nanos verbatim, but stamp the live serving version:
			// probing gateways use heartbeats as their version feed
			// across hot swaps (the dial-time Welcome goes stale).
			fr.ModelVersion = uint32(c.s.active.Load().Version)
			c.writeFrame(fr)
			c.Flush()
		default:
			c.s.protoErrs.Inc()
			c.writeFrame(wire.Error{Code: wire.CodeProtocol, Msg: fmt.Sprintf("unexpected frame type 0x%02x", f.Type())})
			c.Flush()
			return fmt.Errorf("unexpected frame %T", f)
		}
	}
}

// fail tears the connection down after a worker-side error (typically a
// write failure to a dead client).
func (c *conn) fail(err error) {
	c.s.cfg.Log.Warn("connection worker", "remote", c.nc.RemoteAddr().String(), "err", err)
	c.nc.Close() // unblocks the reader
}

// reject maps the engine's per-stream protocol violations onto wire
// Error frames and the serve_protocol_errors_total counter; none of them
// kill the connection.
func (c *conn) reject(id uint32, app string, reason session.RejectReason) {
	c.s.protoErrs.Inc()
	switch reason {
	case session.RejectDupStream:
		c.writeFrame(wire.Error{Code: wire.CodeBadStream, Msg: fmt.Sprintf("stream %d already open", id)})
	case session.RejectDupApp:
		c.writeFrame(wire.Error{Code: wire.CodeBadStream,
			Msg: fmt.Sprintf("app %q already streamed on this connection", app)})
	case session.RejectUnknownClose:
		c.writeFrame(wire.Error{Code: wire.CodeBadStream, Msg: fmt.Sprintf("stream %d not open", id)})
	case session.RejectUnknownSample:
		// Counted only: a shed OpenStream cannot happen (control frames
		// are unsheddable), so this is an agent bug, not worth a frame
		// per sample.
	}
}

// tap offers every scored chunk to the attached shadow scorer and the
// durable sample log, if configured — both off the hot path: Offer and
// Append copy what they keep and never block.
func (c *conn) tap(ch session.TapChunk) {
	if sh := c.s.shadowP.Load(); sh != nil {
		for i := range ch.Samples {
			sh.Offer(ch.Samples[i], shadow.Primary{
				Malware: ch.Verdicts[i].Malware,
				Class:   ch.Verdicts[i].PredictedClass.String(),
				Score:   ch.Scores[i],
			})
		}
	}
	if sl := c.s.cfg.SampleLog; sl != nil {
		// One AppendBatch per chunk: per-record locking here serializes
		// the scoring workers behind the log's mutex at full load. The
		// chunk slice is per-call — taps run concurrently across streams.
		recs := make([]samplelog.Record, len(ch.Samples))
		for i := range ch.Samples {
			flags := samplelog.FlagScored
			if ch.Verdicts[i].Malware {
				flags |= samplelog.FlagMalware
			}
			if ch.Events[i].Alarm {
				flags |= samplelog.FlagAlarm
			}
			if ch.Verdicts[i].Stage == core.StageShortCircuit {
				flags |= samplelog.FlagShortCircuit
			}
			recs[i] = samplelog.Record{
				Nanos:        ch.Ats[i].UnixNano(),
				Stream:       ch.Stream,
				App:          ch.App,
				ModelVersion: uint32(ch.Version),
				Flags:        flags,
				Class:        uint8(ch.Verdicts[i].PredictedClass),
				Score:        ch.Scores[i],
				Features:     ch.Samples[i],
			}
		}
		sl.AppendBatch(recs)
	}
}

// Verdicts implements session.Emitter: one scored chunk becomes a run of
// Verdict frames, written under the connection's writer mutex so chunks
// from concurrently scoring streams interleave at frame granularity.
func (c *conn) Verdicts(id uint32, _ int, seqs []uint32, ats []time.Time,
	verdicts []core.Verdict, scores []float64, events []monitor.Event) error {
	now := time.Now()
	c.wmu.Lock()
	for i := range verdicts {
		var flags uint8
		if verdicts[i].Malware {
			flags |= wire.FlagMalware
		}
		if events[i].Alarm {
			flags |= wire.FlagAlarm
		}
		if events[i].Changed {
			flags |= wire.FlagAlarmChanged
		}
		if verdicts[i].Stage == core.StageShortCircuit {
			flags |= wire.FlagShortCircuit
		}
		if err := c.w.Write(wire.Verdict{
			Stream:   id,
			Seq:      seqs[i],
			Flags:    flags,
			Class:    uint8(verdicts[i].PredictedClass),
			Score:    scores[i],
			Smoothed: events[i].Smoothed,
		}); err != nil {
			c.wmu.Unlock()
			return err
		}
		c.s.latency.ObserveDuration(now.Sub(ats[i]))
	}
	c.wmu.Unlock()
	c.s.verdictsOut.Add(uint64(len(verdicts)))
	return nil
}

// Summary implements session.Emitter: the closing account of a stream
// becomes its StreamSummary frame, reporting the model epoch the stream
// was opened under.
func (c *conn) Summary(id uint32, version int, sum monitor.Summary, shed uint64) error {
	c.writeFrame(wire.StreamSummary{
		Stream:       id,
		ModelVersion: uint32(version),
		Samples:      uint64(sum.Samples),
		Shed:         shed,
		Alarms:       uint32(sum.Alarms),
		MaxSmoothed:  sum.MaxSmoothed,
	})
	return nil
}

func (c *conn) writeFrame(f wire.Frame) {
	c.wmu.Lock()
	c.w.Write(f)
	c.wmu.Unlock()
}

// Flush implements session.Emitter; the engine calls it once per round.
func (c *conn) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.w.Flush()
}
