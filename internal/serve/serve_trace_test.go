package serve

import (
	"testing"
	"time"

	"twosmart/internal/telemetry"
	"twosmart/internal/trace"
	"twosmart/internal/wire"
)

// TestServeTraceCapture streams stamped samples through a server tracing
// every one (SampleEvery=1) and pins the shard-tier record invariants:
// hops telescope exactly to the end-to-end total, the gateway hop
// reflects the frame's ingress stamp, and the verdict-latency histogram
// carries exemplars pointing back at captured trace IDs.
func TestServeTraceCapture(t *testing.T) {
	_, data := fixtures(t)
	reg := telemetry.New()
	tr := trace.New(trace.Config{SampleEvery: 1, Depth: 512})
	ts := start(t, Config{Telemetry: reg, Tracer: tr, Model: "tiny"}, nil)
	c := dial(t, ts)

	const n = 64
	if err := c.OpenStream(3, "traced-app"); err != nil {
		t.Fatal(err)
	}
	// Stamp an ingress time firmly in the past so the gateway hop — the
	// wall-clock delta between stamp and shard receive — is visibly
	// positive.
	ingress := time.Now().Add(-5 * time.Millisecond).UnixNano()
	for i, fv := range samplesFrom(data, n) {
		if err := c.SendAt(3, uint32(i), ingress, fv); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CloseStream(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for {
		f, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := f.(wire.StreamSummary); ok {
			break
		}
	}

	recs := tr.Snapshot()
	if len(recs) == 0 {
		t.Fatal("no trace records captured with SampleEvery=1")
	}
	ids := make(map[uint64]bool, len(recs))
	sawScore := false
	for _, r := range recs {
		ids[r.TraceID] = true
		if r.Tier != trace.TierShard {
			t.Fatalf("record tier %q, want %q", r.Tier, trace.TierShard)
		}
		if r.App != "traced-app" || r.Stream != 3 {
			t.Fatalf("record app/stream = %q/%d, want traced-app/3", r.App, r.Stream)
		}
		var sum int64
		for h, d := range r.Hops {
			if d < 0 {
				t.Fatalf("hop %s negative: %d (record %+v)", trace.HopNames[h], d, r)
			}
			sum += d
		}
		if sum != r.TotalNanos {
			t.Fatalf("hops sum %d != total %d (record %+v)", sum, r.TotalNanos, r)
		}
		if r.Hops[trace.HopGateway] == 0 {
			t.Fatalf("gateway hop 0 despite a stamped ingress 5ms in the past (record %+v)", r)
		}
		if r.Hops[trace.HopScore] > 0 {
			sawScore = true
		}
		if r.StartNanos <= 0 {
			t.Fatalf("StartNanos = %d, want a positive wall-clock anchor", r.StartNanos)
		}
	}
	if !sawScore {
		t.Fatal("no record attributed any time to the score hop")
	}

	s := reg.Histogram("serve_verdict_latency_seconds", telemetry.LatencyBuckets).Summary()
	if len(s.Exemplars) == 0 {
		t.Fatal("verdict latency histogram captured no exemplars")
	}
	for _, ex := range s.Exemplars {
		if !ids[ex.TraceID] {
			t.Fatalf("exemplar trace %d not among captured records", ex.TraceID)
		}
		if ex.Value <= 0 {
			t.Fatalf("exemplar value %v, want > 0", ex.Value)
		}
	}
}

// TestServeTraceUnstampedNoGatewayHop pins the direct-connection case:
// samples sent without an ingress stamp (plain Send, IngressNanos 0)
// must not fabricate a gateway hop.
func TestServeTraceUnstampedNoGatewayHop(t *testing.T) {
	_, data := fixtures(t)
	tr := trace.New(trace.Config{SampleEvery: 1, Depth: 64})
	ts := start(t, Config{Telemetry: telemetry.New(), Tracer: tr}, nil)
	c := dial(t, ts)

	if err := c.OpenStream(1, "direct-app"); err != nil {
		t.Fatal(err)
	}
	for i, fv := range samplesFrom(data, 16) {
		if err := c.Send(1, uint32(i), fv); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CloseStream(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for {
		f, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := f.(wire.StreamSummary); ok {
			break
		}
	}

	recs := tr.Snapshot()
	if len(recs) == 0 {
		t.Fatal("no trace records captured")
	}
	for _, r := range recs {
		if r.Hops[trace.HopGateway] != 0 {
			t.Fatalf("gateway hop %d on an unstamped direct stream (record %+v)", r.Hops[trace.HopGateway], r)
		}
	}
}
