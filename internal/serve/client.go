package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"twosmart/internal/wire"
)

// Client is the agent side of the streaming protocol: it dials a server,
// completes the Hello/Welcome handshake and exposes typed frame I/O. It is
// shared by cmd/smartload and the serve tests. Send/Open/Close/Heartbeat
// may be called from one goroutine while another consumes Next — the write
// path is mutex-guarded and the read path is single-consumer.
type Client struct {
	nc      net.Conn
	r       *wire.Reader
	welcome wire.Welcome

	wmu sync.Mutex
	w   *wire.Writer
}

// Dial connects to a streaming detection server and completes the
// handshake, identifying as agent. Connection-refused errors are retried
// with a short backoff until ctx is cancelled, so an agent can start
// before its server finishes loading the model.
func Dial(ctx context.Context, addr, agent string) (*Client, error) {
	return dialClient(ctx, addr, agent, true)
}

// DialOnce is Dial without the connection-refused retry loop: the first
// dial error is returned immediately. The gateway tier uses it for its
// shard connections — there a refused connection is the health signal
// itself, and retrying would stall stream placement behind a dead shard.
func DialOnce(ctx context.Context, addr, agent string) (*Client, error) {
	return dialClient(ctx, addr, agent, false)
}

func dialClient(ctx context.Context, addr, agent string, retry bool) (*Client, error) {
	var nc net.Conn
	for {
		var err error
		nc, err = (&net.Dialer{}).DialContext(ctx, "tcp", addr)
		if err == nil {
			break
		}
		if !retry || ctx.Err() != nil {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, err
		case <-time.After(50 * time.Millisecond):
		}
	}
	c := &Client{nc: nc, r: wire.NewReader(nc), w: wire.NewWriter(nc)}
	if err := c.handshake(agent); err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) handshake(agent string) error {
	c.wmu.Lock()
	err := c.w.Write(wire.Hello{Proto: wire.ProtoVersion, Agent: agent})
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		return fmt.Errorf("serve: handshake write: %w", err)
	}
	c.nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	defer c.nc.SetReadDeadline(time.Time{})
	f, err := c.r.Next()
	if err != nil {
		return fmt.Errorf("serve: handshake read: %w", err)
	}
	switch fr := f.(type) {
	case wire.Welcome:
		if fr.Proto != wire.ProtoVersion {
			return fmt.Errorf("serve: server speaks protocol v%d, want v%d", fr.Proto, wire.ProtoVersion)
		}
		c.welcome = fr
		return nil
	case wire.Error:
		return fmt.Errorf("serve: server rejected handshake: code %d: %s", fr.Code, fr.Msg)
	default:
		return fmt.Errorf("serve: handshake reply is %T, want Welcome", f)
	}
}

// Welcome returns the server's handshake reply (model name, format
// version, expected feature width).
func (c *Client) Welcome() wire.Welcome { return c.welcome }

func (c *Client) write(f wire.Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.w.Write(f)
}

// OpenStream announces a new per-app sample stream.
func (c *Client) OpenStream(stream uint32, app string) error {
	return c.write(wire.OpenStream{Stream: stream, App: app})
}

// Send queues one sample frame; call Flush to push buffered frames out.
func (c *Client) Send(stream, seq uint32, features []float64) error {
	return c.write(wire.Sample{Stream: stream, Seq: seq, Features: features})
}

// SendAt is Send with an upstream ingress stamp (unix nanos): the
// gateway tier uses it to stamp its own ingress time onto forwarded
// samples so the scoring shard can attribute the gateway→shard hop in
// end-to-end trace records.
func (c *Client) SendAt(stream, seq uint32, ingressNanos int64, features []float64) error {
	return c.write(wire.Sample{Stream: stream, Seq: seq, IngressNanos: uint64(ingressNanos), Features: features})
}

// CloseStream ends a stream; the server answers with a StreamSummary.
func (c *Client) CloseStream(stream uint32) error {
	return c.write(wire.CloseStream{Stream: stream})
}

// Heartbeat sends a liveness probe the server echoes back.
func (c *Client) Heartbeat(nanos uint64) error {
	return c.write(wire.Heartbeat{Nanos: nanos})
}

// Flush pushes buffered frames to the server.
func (c *Client) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.w.Flush()
}

// Next reads the next server frame. It returns io.EOF once the server has
// closed the connection cleanly. Frames that borrow reader-owned buffers
// (none of the server→client types do) follow wire.Reader's aliasing
// rules.
func (c *Client) Next() (wire.Frame, error) {
	return c.r.Next()
}

// Buffered reports how many inbound bytes are already read and waiting to
// be decoded — nonzero means the next Next will not block.
func (c *Client) Buffered() int { return c.r.Buffered() }

// SetReadDeadline bounds the next read; the zero time clears it. Used by
// callers that probe liveness with Heartbeat round-trips.
func (c *Client) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// CloseWrite flushes and half-closes the connection so the server sees
// end-of-stream while its remaining verdicts can still be read.
func (c *Client) CloseWrite() error {
	if err := c.Flush(); err != nil {
		return err
	}
	type writeCloser interface{ CloseWrite() error }
	if wc, ok := c.nc.(writeCloser); ok {
		return wc.CloseWrite()
	}
	return errors.New("serve: connection does not support half-close")
}

// Close tears the connection down.
func (c *Client) Close() error { return c.nc.Close() }
