package hls

import (
	"strings"
	"testing"

	"twosmart/internal/ml"
	"twosmart/internal/ml/mltest"
	"twosmart/internal/ml/nn"
	"twosmart/internal/ml/rules"
	"twosmart/internal/ml/tree"
)

var verilogFeatures = []string{"branch-instructions", "cache-references", "branch-misses", "node-stores"}

func trainFor(t *testing.T, tr ml.Trainer) ml.Classifier {
	t.Helper()
	d := mltest.Gaussian2Class(500, 4, 2.0, 9)
	m, err := tr.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestToFixed(t *testing.T) {
	if ToFixed(1.0) != 1<<16 {
		t.Fatalf("ToFixed(1)=%d", ToFixed(1.0))
	}
	if ToFixed(-2.5) != -(5 << 15) {
		t.Fatalf("ToFixed(-2.5)=%d", ToFixed(-2.5))
	}
	if ToFixed(1e12) != 1<<31-1 {
		t.Fatal("positive saturation failed")
	}
	if ToFixed(-1e12) != -(1 << 31) {
		t.Fatal("negative saturation failed")
	}
}

func TestGenerateVerilogTree(t *testing.T) {
	m := trainFor(t, &tree.J48Trainer{MaxDepth: 5})
	v, err := GenerateVerilog(m, "j48_virus", verilogFeatures)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"module j48_virus (",
		"input  signed [31:0] branch_instructions",
		"input  signed [31:0] node_stores",
		"output [0:0] class_out",
		"assign class_out =",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Fatalf("generated Verilog missing %q:\n%s", want, v)
		}
	}
	// Balanced ternaries: every '?' pairs with a ':'.
	if strings.Count(v, "?") == 0 || strings.Count(v, "?") > strings.Count(v, ":") {
		t.Fatalf("malformed conditional structure:\n%s", v)
	}
}

func TestGenerateVerilogRules(t *testing.T) {
	m := trainFor(t, &rules.JRipTrainer{Seed: 1})
	v, err := GenerateVerilog(m, "jrip_rootkit", verilogFeatures)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v, "wire rule0 =") {
		t.Fatalf("no rule wires:\n%s", v)
	}
	if !strings.Contains(v, "rule0 ?") {
		t.Fatalf("no priority chain:\n%s", v)
	}
	if !strings.Contains(v, "endmodule") {
		t.Fatal("unterminated module")
	}
}

func TestGenerateVerilogOneR(t *testing.T) {
	m := trainFor(t, &rules.OneRTrainer{})
	v, err := GenerateVerilog(m, "", verilogFeatures)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v, "module classifier (") {
		t.Fatal("default module name missing")
	}
	if !strings.Contains(v, "<=") {
		t.Fatal("no threshold comparisons")
	}
}

func TestGenerateVerilogUnsupported(t *testing.T) {
	m := trainFor(t, &nn.MLPTrainer{Epochs: 2, Seed: 1})
	if _, err := GenerateVerilog(m, "x", verilogFeatures); err == nil {
		t.Fatal("MLP accepted by the combinational generator")
	}
}

func TestGenerateVerilogFeatureCountMismatch(t *testing.T) {
	m := trainFor(t, &tree.J48Trainer{})
	if _, err := GenerateVerilog(m, "x", []string{"only-one"}); err == nil {
		t.Fatal("insufficient feature names accepted")
	}
}

// The fixed-point golden model must agree with the floating-point model on
// virtually every sample: Q16.16 quantisation only flips decisions within
// half an LSB of a threshold.
func TestEvaluateFixedMatchesFloat(t *testing.T) {
	d := mltest.Gaussian2Class(800, 4, 2.0, 10)
	for name, tr := range map[string]ml.Trainer{
		"J48":  &tree.J48Trainer{},
		"JRip": &rules.JRipTrainer{Seed: 2},
		"OneR": &rules.OneRTrainer{},
	} {
		m, err := tr.Train(d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mismatches := 0
		for _, ins := range d.Instances {
			fixed, err := EvaluateFixed(m, ins.Features)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if fixed != m.Predict(ins.Features) {
				mismatches++
			}
		}
		if frac := float64(mismatches) / float64(d.Len()); frac > 0.01 {
			t.Fatalf("%s: fixed-point disagrees with float on %.2f%% of samples", name, 100*frac)
		}
	}
}

func TestEvaluateFixedUnsupported(t *testing.T) {
	m := trainFor(t, &nn.MLPTrainer{Epochs: 2, Seed: 1})
	if _, err := EvaluateFixed(m, make([]float64, 4)); err == nil {
		t.Fatal("MLP accepted by the fixed-point evaluator")
	}
}

func TestSignalNameSanitisation(t *testing.T) {
	cases := map[string]string{
		"branch-instructions": "branch_instructions",
		"L1-dcache-loads":     "L1_dcache_loads",
		"0weird":              "f_0weird",
		"":                    "f_",
	}
	for in, want := range cases {
		if got := signalName(in); got != want {
			t.Fatalf("signalName(%q)=%q, want %q", in, got, want)
		}
	}
}

func TestClassWidth(t *testing.T) {
	if classWidth(2) != 1 || classWidth(3) != 2 || classWidth(5) != 3 {
		t.Fatal("class width wrong")
	}
}

func TestFixedLiteralNegative(t *testing.T) {
	if fixedLiteral(-1.0) != "-32'sd65536" {
		t.Fatalf("negative literal=%q", fixedLiteral(-1.0))
	}
	if fixedLiteral(0.5) != "32'sd32768" {
		t.Fatalf("positive literal=%q", fixedLiteral(0.5))
	}
}

func TestGenerateTestbench(t *testing.T) {
	m := trainFor(t, &tree.J48Trainer{MaxDepth: 4})
	d := mltest.Gaussian2Class(20, 4, 2.0, 11)
	vectors := make([][]float64, 0, 10)
	for _, ins := range d.Instances[:10] {
		vectors = append(vectors, ins.Features)
	}
	tb, err := GenerateTestbench(m, "j48_dut", verilogFeatures, vectors)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"module j48_dut_tb;",
		"j48_dut dut (",
		".class_out(class_out)",
		"task check(",
		"$finish;",
		"check(",
	} {
		if !strings.Contains(tb, want) {
			t.Fatalf("testbench missing %q:\n%s", want, tb)
		}
	}
	if got := strings.Count(tb, "check("); got != 11 { // task decl + 10 calls
		t.Fatalf("check appears %d times, want 11", got)
	}
	// Expected values must match the golden model.
	for _, vec := range vectors {
		if _, err := EvaluateFixed(m, vec); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenerateTestbenchValidation(t *testing.T) {
	m := trainFor(t, &tree.J48Trainer{})
	if _, err := GenerateTestbench(m, "x", verilogFeatures, nil); err == nil {
		t.Fatal("empty vector set accepted")
	}
	if _, err := GenerateTestbench(m, "x", verilogFeatures, [][]float64{{1}}); err == nil {
		t.Fatal("short vector accepted")
	}
	mlpModel := trainFor(t, &nn.MLPTrainer{Epochs: 2, Seed: 1})
	if _, err := GenerateTestbench(mlpModel, "x", verilogFeatures, [][]float64{{1, 2, 3, 4}}); err == nil {
		t.Fatal("unsupported model accepted")
	}
}
