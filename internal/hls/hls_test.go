package hls

import (
	"testing"

	"twosmart/internal/ml"
	"twosmart/internal/ml/ensemble"
	"twosmart/internal/ml/linear"
	"twosmart/internal/ml/mltest"
	"twosmart/internal/ml/nn"
	"twosmart/internal/ml/rules"
	"twosmart/internal/ml/tree"
)

func trainAll(t *testing.T, dims int) map[string]ml.Classifier {
	t.Helper()
	d := mltest.Gaussian2Class(400, dims, 2.0, 1)
	out := map[string]ml.Classifier{}
	for name, tr := range map[string]ml.Trainer{
		"J48":  &tree.J48Trainer{},
		"JRip": &rules.JRipTrainer{Seed: 1},
		"OneR": &rules.OneRTrainer{},
		"MLP":  &nn.MLPTrainer{Epochs: 10, Seed: 1},
		"MLR":  &linear.MLRTrainer{Epochs: 10, Seed: 1},
	} {
		m, err := tr.Train(d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = m
	}
	return out
}

func TestEstimateAllFamilies(t *testing.T) {
	models := trainAll(t, 4)
	for name, m := range models {
		cost, err := Estimate(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cost.LatencyCycles <= 0 || cost.LUTs <= 0 {
			t.Fatalf("%s: degenerate cost %+v", name, cost)
		}
		if cost.AreaPercent() <= 0 || cost.AreaPercent() > 100 {
			t.Fatalf("%s: area %.2f%%", name, cost.AreaPercent())
		}
	}
}

// The paper's Table V relations: MLP dominates both latency and area; OneR
// decides in a single cycle; trees and rules cost a few percent.
func TestPaperCostRelations(t *testing.T) {
	models := trainAll(t, 8)
	cost := func(name string) Cost {
		c, err := Estimate(models[name])
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	mlp, j48, jrip, oner := cost("MLP"), cost("J48"), cost("JRip"), cost("OneR")

	if oner.LatencyCycles != 1 {
		t.Fatalf("OneR latency=%d, want 1", oner.LatencyCycles)
	}
	for name, c := range map[string]Cost{"J48": j48, "JRip": jrip, "OneR": oner} {
		if mlp.LatencyCycles <= 5*c.LatencyCycles {
			t.Fatalf("MLP latency %d not far above %s latency %d", mlp.LatencyCycles, name, c.LatencyCycles)
		}
		if mlp.AreaPercent() <= 3*c.AreaPercent() {
			t.Fatalf("MLP area %.1f%% not far above %s area %.1f%%", mlp.AreaPercent(), name, c.AreaPercent())
		}
		if c.AreaPercent() > 15 {
			t.Fatalf("%s area %.1f%%: lightweight classifiers must stay small", name, c.AreaPercent())
		}
	}
	if mlp.AreaPercent() < 10 {
		t.Fatalf("MLP area %.1f%%, expected tens of percent", mlp.AreaPercent())
	}
}

// Fewer input features must not increase cost for feature-scaling models.
func TestFewerFeaturesCostLess(t *testing.T) {
	big := trainAll(t, 8)
	small := trainAll(t, 4)
	for _, name := range []string{"MLP", "MLR"} {
		cb, _ := Estimate(big[name])
		cs, _ := Estimate(small[name])
		if cs.LatencyCycles >= cb.LatencyCycles {
			t.Fatalf("%s: 4-feature latency %d >= 8-feature %d", name, cs.LatencyCycles, cb.LatencyCycles)
		}
		if cs.LUTs >= cb.LUTs {
			t.Fatalf("%s: 4-feature LUTs %d >= 8-feature %d", name, cs.LUTs, cb.LUTs)
		}
	}
}

// Boosting multiplies latency roughly by the member count but adds only
// modest area thanks to datapath sharing.
func TestBoostedCostShape(t *testing.T) {
	d := mltest.Gaussian2Class(500, 4, 1.2, 2)
	baseTr := &tree.J48Trainer{MaxDepth: 4}
	base, err := baseTr.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	boostedTr := &ensemble.AdaBoostTrainer{Base: &tree.J48Trainer{MaxDepth: 4}, Rounds: 10, Seed: 3}
	boosted, err := boostedTr.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	members, _, _ := ensemble.Members(boosted)
	if len(members) < 3 {
		t.Skipf("only %d members; boosting collapsed on this data", len(members))
	}
	cb, err := Estimate(base)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := Estimate(boosted)
	if err != nil {
		t.Fatal(err)
	}
	if ce.LatencyCycles < 3*cb.LatencyCycles {
		t.Fatalf("boosted latency %d not well above base %d", ce.LatencyCycles, cb.LatencyCycles)
	}
	if ce.AreaPercent() > float64(len(members))*cb.AreaPercent() {
		t.Fatalf("boosted area %.1f%% shows no datapath sharing (members=%d, base=%.1f%%)",
			ce.AreaPercent(), len(members), cb.AreaPercent())
	}
	if ce.AreaPercent() <= cb.AreaPercent() {
		t.Fatal("boosting cannot be free in area")
	}
}

func TestEstimateUnsupported(t *testing.T) {
	if _, err := Estimate(fakeClassifier{}); err == nil {
		t.Fatal("unsupported classifier accepted")
	}
}

type fakeClassifier struct{}

func (fakeClassifier) NumClasses() int            { return 2 }
func (fakeClassifier) Scores([]float64) []float64 { return []float64{1, 0} }
func (fakeClassifier) Predict([]float64) int      { return 0 }

func TestCostHelpers(t *testing.T) {
	c := Cost{LatencyCycles: 7, LUTs: 100, FFs: 50, DSPs: 1}
	if c.LatencyNs() != 70 {
		t.Fatalf("LatencyNs=%d", c.LatencyNs())
	}
	sum := c.Add(Cost{LatencyCycles: 3, LUTs: 10})
	if sum.LatencyCycles != 10 || sum.LUTs != 110 {
		t.Fatalf("Add=%+v", sum)
	}
	if ceilLog2(1) != 1 || ceilLog2(2) != 1 || ceilLog2(5) != 3 {
		t.Fatal("ceilLog2 wrong")
	}
}

func TestTwoStageComposition(t *testing.T) {
	models := trainAll(t, 4)
	stage2 := []ml.Classifier{models["J48"], models["JRip"], models["OneR"], models["MLP"]}
	cost, err := TwoStage(models["MLR"], stage2)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := Estimate(models["MLR"])
	var worst, areaSum int
	for _, m := range stage2 {
		c, _ := Estimate(m)
		areaSum += c.LUTs
		if c.LatencyCycles > worst {
			worst = c.LatencyCycles
		}
	}
	if cost.LatencyCycles != s1.LatencyCycles+worst {
		t.Fatalf("latency=%d, want stage1 %d + worst stage2 %d", cost.LatencyCycles, s1.LatencyCycles, worst)
	}
	if cost.LUTs != s1.LUTs+areaSum {
		t.Fatalf("LUTs=%d, want sum %d", cost.LUTs, s1.LUTs+areaSum)
	}
	if _, err := TwoStage(nil, stage2); err == nil {
		t.Fatal("nil stage-1 accepted")
	}
	if _, err := TwoStage(models["MLR"], nil); err == nil {
		t.Fatal("empty stage-2 accepted")
	}
	if _, err := TwoStage(fakeClassifier{}, stage2); err == nil {
		t.Fatal("unsupported stage-1 accepted")
	}
}
