// Package hls estimates the hardware implementation cost of trained
// classifiers, standing in for the paper's Vivado-HLS flow onto a Xilinx
// Virtex-7 FPGA. Each trained model's structure (tree nodes, rule
// conditions, perceptron weights, ensemble members) is scheduled onto a
// simple datapath model, yielding latency in clock cycles at a 10 ns clock
// and resource usage (LUTs, FFs, DSPs) expressed relative to an OpenSPARC
// T1 core budget — the same normalisation the paper uses. The model is
// calibrated so that the paper's qualitative relations hold: MLP dominates
// both latency and area; rule- and tree-based detectors cost a few percent;
// 4-HPC models are smaller than 8-HPC models; boosting multiplies latency
// by roughly the round count but adds only a few percent area because
// members share the comparator datapath.
package hls

import (
	"fmt"
	"math"

	"twosmart/internal/ml"
	"twosmart/internal/ml/ensemble"
	"twosmart/internal/ml/linear"
	"twosmart/internal/ml/nn"
	"twosmart/internal/ml/rules"
	"twosmart/internal/ml/tree"
)

// ClockNs is the modelled clock period (the paper reports cycles @10 ns).
const ClockNs = 10

// OpenSPARC T1 single-core FPGA budget used as the area reference.
const (
	RefLUTs = 60000
	RefFFs  = 40000
	RefDSPs = 16
)

// Per-structure resource costs (32-bit fixed-point datapath).
const (
	lutsPerComparator = 48  // compare + threshold register mux path
	ffsPerComparator  = 40  // threshold + pipeline registers
	lutsPerRuleAND    = 16  // AND-reduce + priority encoding per rule
	lutsPerWeight     = 500 // serial MAC share + weight storage + routing
	ffsPerWeight      = 64
	lutsMLPFixed      = 8000 // activation tables, control FSM
	ffsMLPFixed       = 2000
	lutsPerLinWeight  = 220 // MLR: MAC share + weight store (no activation)
	ffsPerLinWeight   = 48
	lutsVoteLogic     = 220 // ensemble: weighted-vote accumulator
	ffsVoteLogic      = 160
)

// Latency model constants.
const (
	cyclesPerMAC        = 5  // pipelined multiply-accumulate occupancy
	cyclesPerActivation = 10 // sigmoid/softmax lookup + interpolation
	cyclesVote          = 5  // weighted vote accumulate per member
	cyclesFinalCompare  = 2
)

// Cost is the estimated hardware implementation cost of one model.
type Cost struct {
	// LatencyCycles is the end-to-end decision latency in cycles at the
	// 10 ns clock.
	LatencyCycles int
	LUTs, FFs     int
	DSPs          int
}

// LatencyNs returns the decision latency in nanoseconds.
func (c Cost) LatencyNs() int { return c.LatencyCycles * ClockNs }

// AreaPercent expresses the resource usage relative to the OpenSPARC core
// budget, combining LUTs, FFs and DSPs with the weighting the repository
// uses throughout (FFs count half a LUT; a DSP counts 50 LUTs).
func (c Cost) AreaPercent() float64 {
	used := float64(c.LUTs) + float64(c.FFs)/2 + float64(c.DSPs)*50
	ref := float64(RefLUTs) + float64(RefFFs)/2 + float64(RefDSPs)*50
	return 100 * used / ref
}

// Add returns the component-wise sum of two costs with serial latency.
func (c Cost) Add(o Cost) Cost {
	return Cost{
		LatencyCycles: c.LatencyCycles + o.LatencyCycles,
		LUTs:          c.LUTs + o.LUTs,
		FFs:           c.FFs + o.FFs,
		DSPs:          c.DSPs + o.DSPs,
	}
}

// Estimate computes the implementation cost of a trained classifier. It
// recognises the repository's model families (J48, JRip, OneR, MLP, MLR and
// AdaBoost ensembles of these).
func Estimate(c ml.Classifier) (Cost, error) {
	// J48 tree: one comparator per node; decision walks root-to-leaf.
	if nodes, _, depth, ok := tree.Complexity(c); ok {
		internal := nodes // leaves store distributions; count them at half weight below
		return Cost{
			LatencyCycles: depth,
			LUTs:          internal * lutsPerComparator,
			FFs:           internal * ffsPerComparator,
		}, nil
	}
	// JRip: all conditions evaluate in parallel, then an AND tree per
	// rule and a priority select.
	if nRules, nConds, ok := rules.Complexity(c); ok {
		maxConds := 1
		if nRules > 0 {
			// conservative: assume the longest rule holds the mean
			// plus one condition
			maxConds = nConds/maxInt(1, nRules) + 1
		}
		latency := 2 + ceilLog2(maxConds)
		return Cost{
			LatencyCycles: latency,
			LUTs:          nConds*lutsPerComparator + nRules*lutsPerRuleAND,
			FFs:           nConds * ffsPerComparator,
		}, nil
	}
	// OneR: parallel comparators against the bin thresholds plus a
	// priority encoder -- single-cycle.
	if bins, ok := rules.OneRComplexity(c); ok {
		return Cost{
			LatencyCycles: 1,
			LUTs:          bins * lutsPerComparator,
			FFs:           bins * ffsPerComparator,
		}, nil
	}
	// MLP: weights stream through a small set of MAC units; activations
	// are table lookups.
	if in, hidden, out, ok := nn.Complexity(c); ok {
		weights := (in+1)*hidden + (hidden+1)*out
		neurons := hidden + out
		return Cost{
			LatencyCycles: weights*cyclesPerMAC + neurons*cyclesPerActivation,
			LUTs:          weights*lutsPerWeight + lutsMLPFixed,
			FFs:           weights*ffsPerWeight + ffsMLPFixed,
			DSPs:          minInt(RefDSPs, weights/4),
		}, nil
	}
	// MLR: one dot product per class plus an argmax (no activation
	// hardware needed for classification).
	if in, out, ok := linear.Complexity(c); ok {
		weights := (in + 1) * out
		return Cost{
			LatencyCycles: weights*cyclesPerMAC + cyclesFinalCompare,
			LUTs:          weights * lutsPerLinWeight,
			FFs:           weights * ffsPerLinWeight,
			DSPs:          minInt(RefDSPs, weights/8),
		}, nil
	}
	// AdaBoost: members execute sequentially on a shared datapath; area
	// is the largest member plus per-member threshold/weight storage.
	if members, _, ok := ensemble.Members(c); ok {
		var total Cost
		var maxLUTs, maxFFs, maxDSPs int
		var storageLUTs, storageFFs int
		for _, m := range members {
			mc, err := Estimate(m)
			if err != nil {
				return Cost{}, err
			}
			total.LatencyCycles += mc.LatencyCycles + cyclesVote
			if mc.LUTs > maxLUTs {
				maxLUTs = mc.LUTs
			}
			if mc.FFs > maxFFs {
				maxFFs = mc.FFs
			}
			if mc.DSPs > maxDSPs {
				maxDSPs = mc.DSPs
			}
			// Sharing the datapath still needs each member's
			// constants resident (threshold/weight ROMs are an
			// order of magnitude denser than active datapath).
			storageLUTs += mc.LUTs / 10
			storageFFs += mc.FFs / 10
		}
		total.LatencyCycles += cyclesFinalCompare
		total.LUTs = maxLUTs + storageLUTs + lutsVoteLogic
		total.FFs = maxFFs + storageFFs + ffsVoteLogic
		total.DSPs = maxDSPs
		return total, nil
	}
	return Cost{}, fmt.Errorf("hls: unsupported classifier type %T", c)
}

// TwoStage composes the implementation cost of a full 2SMaRT deployment:
// the stage-1 classifier plus all four per-class stage-2 detectors
// instantiated side by side (the predicted class selects which one's output
// is used, so area is the sum while the decision latency is stage 1 plus
// the *slowest* stage-2 detector — the paper's "latency of first stage and
// second stage").
func TwoStage(stage1 ml.Classifier, stage2 []ml.Classifier) (Cost, error) {
	if stage1 == nil || len(stage2) == 0 {
		return Cost{}, fmt.Errorf("hls: two-stage composition needs a stage-1 model and stage-2 detectors")
	}
	total, err := Estimate(stage1)
	if err != nil {
		return Cost{}, fmt.Errorf("hls: stage 1: %w", err)
	}
	worst := 0
	for i, m := range stage2 {
		c, err := Estimate(m)
		if err != nil {
			return Cost{}, fmt.Errorf("hls: stage-2 detector %d: %w", i, err)
		}
		total.LUTs += c.LUTs
		total.FFs += c.FFs
		total.DSPs += c.DSPs
		if c.LatencyCycles > worst {
			worst = c.LatencyCycles
		}
	}
	total.LatencyCycles += worst
	return total, nil
}

// ceilLog2 returns ceil(log2(x)) with a floor of 1.
func ceilLog2(x int) int {
	if x <= 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(x))))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
