// Package sandbox models the isolated execution environment the paper uses
// for profiling: Linux Containers (LXC) that are created fresh for every
// run and destroyed afterwards, because running malware inside a container
// leaves residual state that would contaminate the counters of subsequent
// runs. Here the "residual state" is concrete: warm caches, TLBs, branch
// predictor tables and the touched-page set of the underlying core model.
package sandbox

import (
	"errors"
	"fmt"
	"time"

	"twosmart/internal/hpc"
	"twosmart/internal/isa"
	"twosmart/internal/microarch"
)

// ErrDestroyed is returned when using a container after Destroy.
var ErrDestroyed = errors.New("sandbox: container has been destroyed")

// ProfileOptions configures one profiling run inside a container.
type ProfileOptions struct {
	// FreqHz is the modelled core frequency; 0 means hpc.DefaultFreqHz.
	FreqHz float64
	// Period is the sampling period; 0 means hpc.DefaultPeriod (10 ms).
	Period time.Duration
	// MaxSamples bounds the number of samples; 0 means run to completion.
	MaxSamples int
}

// Manager creates and destroys containers on a host with a fixed processor
// configuration. It tracks lifecycle statistics so experiments can assert
// the "destroy after every run" discipline.
type Manager struct {
	cfg       microarch.Config
	created   int
	destroyed int
	seq       int
}

// NewManager returns a manager that provisions containers whose cores use
// the given configuration.
func NewManager(cfg microarch.Config) *Manager {
	return &Manager{cfg: cfg}
}

// Create provisions a fresh container: a cold core with no residual state.
func (m *Manager) Create() (*Container, error) {
	core, err := microarch.NewCore(m.cfg, nil)
	if err != nil {
		return nil, err
	}
	m.created++
	m.seq++
	return &Container{
		name:    fmt.Sprintf("lxc-%d", m.seq),
		manager: m,
		core:    core,
	}, nil
}

// Created returns the number of containers provisioned so far.
func (m *Manager) Created() int { return m.created }

// Destroyed returns the number of containers destroyed so far.
func (m *Manager) Destroyed() int { return m.destroyed }

// Live returns the number of containers currently alive.
func (m *Manager) Live() int { return m.created - m.destroyed }

// Container is one isolated execution environment. Running multiple
// profiles in the same container is permitted but leaves the second run
// observing the first run's warm microarchitectural state — exactly the
// contamination the paper's destroy-per-run methodology avoids.
type Container struct {
	name      string
	manager   *Manager
	core      *microarch.Core
	destroyed bool
	runs      int
}

// Name returns the container's identifier.
func (c *Container) Name() string { return c.name }

// Runs returns how many profiling runs have executed in this container.
func (c *Container) Runs() int { return c.runs }

// Contaminated reports whether the container holds residual
// microarchitectural state from a previous run.
func (c *Container) Contaminated() bool {
	return !c.destroyed && c.runs > 0 && c.core.Occupancy() > 0
}

// Profile executes the workload to completion inside the container,
// counting the given events (at most hpc.MaxProgrammable of them — the
// 4-register constraint is enforced by the counter file) and sampling them
// every opts.Period of virtual time. The returned samples are per-period
// deltas in the order events were given.
func (c *Container) Profile(workload isa.Stream, events []hpc.Event, opts ProfileOptions) ([]hpc.Sample, error) {
	if c.destroyed {
		return nil, ErrDestroyed
	}
	if workload == nil {
		return nil, errors.New("sandbox: nil workload")
	}
	cf := hpc.NewCounterFile()
	if err := cf.Program(events...); err != nil {
		return nil, err
	}
	c.core.SetSink(cf)
	c.core.Bind(workload)
	sampler := &hpc.Sampler{
		Proc:   c.core,
		CF:     cf,
		FreqHz: opts.FreqHz,
		Period: opts.Period,
	}
	samples, err := sampler.Collect(opts.MaxSamples)
	if err != nil {
		return nil, err
	}
	c.runs++
	return samples, nil
}

// Destroy tears the container down, discarding all residual state. Further
// use returns ErrDestroyed. Destroying twice is an error.
func (c *Container) Destroy() error {
	if c.destroyed {
		return ErrDestroyed
	}
	c.destroyed = true
	c.core.Reset() // release all residual microarchitectural state
	c.manager.destroyed++
	return nil
}

// RunIsolated is the paper's per-run discipline as a helper: create a fresh
// container, profile the workload once, and destroy the container.
func (m *Manager) RunIsolated(workload isa.Stream, events []hpc.Event, opts ProfileOptions) ([]hpc.Sample, error) {
	c, err := m.Create()
	if err != nil {
		return nil, err
	}
	samples, err := c.Profile(workload, events, opts)
	if derr := c.Destroy(); derr != nil && err == nil {
		err = derr
	}
	return samples, err
}
