package sandbox

import (
	"testing"
	"time"

	"twosmart/internal/hpc"
	"twosmart/internal/isa"
	"twosmart/internal/microarch"
)

func testProgram(seed int64) *isa.Program {
	var mix isa.OpMix
	mix[isa.KindALU] = 0.5
	mix[isa.KindLoad] = 0.3
	mix[isa.KindStore] = 0.1
	mix[isa.KindBranch] = 0.1
	return &isa.Program{
		Name: "sbx",
		Blocks: []isa.Block{{
			Name:     "b",
			Mix:      mix,
			CodeBase: 0x1000,
			CodeSize: 4096,
			Loads:    isa.AccessPattern{Kind: isa.AccessRandom, Base: 0x100000, WorkingSet: 64 << 10},
			Stores:   isa.AccessPattern{Kind: isa.AccessSequential, Base: 0x200000, WorkingSet: 8 << 10},
			Len:      100,
		}},
		Budget: 100000,
		Seed:   seed,
	}
}

var fastOpts = ProfileOptions{FreqHz: 1e6, Period: 10 * time.Millisecond} // 10k cycles/sample

func TestProfileProducesSamples(t *testing.T) {
	m := NewManager(microarch.DefaultConfig())
	c, err := m.Create()
	if err != nil {
		t.Fatal(err)
	}
	samples, err := c.Profile(testProgram(1).MustStream(),
		[]hpc.Event{hpc.EvInstrs, hpc.EvBranchInstr}, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	var instrs uint64
	for _, s := range samples {
		if len(s.Counts) != 2 {
			t.Fatalf("sample width %d, want 2", len(s.Counts))
		}
		instrs += s.Counts[0]
	}
	if instrs == 0 || instrs > 100000 {
		t.Fatalf("sampled %d instructions, want (0,100000]", instrs)
	}
}

func TestProfileEnforcesCounterLimit(t *testing.T) {
	m := NewManager(microarch.DefaultConfig())
	c, _ := m.Create()
	events := []hpc.Event{hpc.EvInstrs, hpc.EvCycles, hpc.EvCacheRef, hpc.EvCacheMiss, hpc.EvBranchInstr}
	if _, err := c.Profile(testProgram(1).MustStream(), events, fastOpts); err == nil {
		t.Fatal("five events accepted on a four-register machine")
	}
}

func TestDestroyedContainerRefusesWork(t *testing.T) {
	m := NewManager(microarch.DefaultConfig())
	c, _ := m.Create()
	if err := c.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Profile(testProgram(1).MustStream(), []hpc.Event{hpc.EvInstrs}, fastOpts); err != ErrDestroyed {
		t.Fatalf("got %v, want ErrDestroyed", err)
	}
	if err := c.Destroy(); err != ErrDestroyed {
		t.Fatalf("double destroy got %v, want ErrDestroyed", err)
	}
}

func TestNilWorkloadRejected(t *testing.T) {
	m := NewManager(microarch.DefaultConfig())
	c, _ := m.Create()
	if _, err := c.Profile(nil, []hpc.Event{hpc.EvInstrs}, fastOpts); err == nil {
		t.Fatal("nil workload accepted")
	}
}

func TestManagerLifecycleCounts(t *testing.T) {
	m := NewManager(microarch.DefaultConfig())
	c1, _ := m.Create()
	c2, _ := m.Create()
	if m.Created() != 2 || m.Live() != 2 {
		t.Fatalf("created=%d live=%d", m.Created(), m.Live())
	}
	c1.Destroy()
	if m.Destroyed() != 1 || m.Live() != 1 {
		t.Fatalf("destroyed=%d live=%d", m.Destroyed(), m.Live())
	}
	c2.Destroy()
	if m.Live() != 0 {
		t.Fatalf("live=%d, want 0", m.Live())
	}
}

func TestContaminationAcrossRuns(t *testing.T) {
	m := NewManager(microarch.DefaultConfig())
	c, _ := m.Create()
	if c.Contaminated() {
		t.Fatal("fresh container reports contamination")
	}
	events := []hpc.Event{hpc.EvL1DLoadMiss, hpc.EvInstrs}

	first, err := c.Profile(testProgram(7).MustStream(), events, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Contaminated() {
		t.Fatal("container not contaminated after a run")
	}
	// Second run in the SAME container: warm caches => fewer misses.
	second, err := c.Profile(testProgram(7).MustStream(), events, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(ss []hpc.Sample) (m uint64) {
		for _, s := range ss {
			m += s.Counts[0]
		}
		return
	}
	if sum(second) >= sum(first) {
		t.Fatalf("contaminated rerun misses=%d, want < clean run's %d", sum(second), sum(first))
	}

	// Fresh containers give identical counts for identical programs.
	cleanA, err := m.RunIsolated(testProgram(7).MustStream(), events, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	cleanB, err := m.RunIsolated(testProgram(7).MustStream(), events, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if sum(cleanA) != sum(cleanB) {
		t.Fatalf("isolated runs differ: %d vs %d", sum(cleanA), sum(cleanB))
	}
	if sum(cleanA) != sum(first) {
		t.Fatalf("isolated run (%d misses) differs from first clean run (%d)", sum(cleanA), sum(first))
	}
}

func TestRunIsolatedDestroysContainer(t *testing.T) {
	m := NewManager(microarch.DefaultConfig())
	if _, err := m.RunIsolated(testProgram(2).MustStream(), []hpc.Event{hpc.EvInstrs}, fastOpts); err != nil {
		t.Fatal(err)
	}
	if m.Live() != 0 {
		t.Fatalf("RunIsolated leaked a container (live=%d)", m.Live())
	}
	if m.Created() != 1 || m.Destroyed() != 1 {
		t.Fatalf("created=%d destroyed=%d", m.Created(), m.Destroyed())
	}
}

func TestContainerNamesUnique(t *testing.T) {
	m := NewManager(microarch.DefaultConfig())
	c1, _ := m.Create()
	c2, _ := m.Create()
	if c1.Name() == c2.Name() {
		t.Fatalf("duplicate container names %q", c1.Name())
	}
}

func TestRunsCounter(t *testing.T) {
	m := NewManager(microarch.DefaultConfig())
	c, _ := m.Create()
	if c.Runs() != 0 {
		t.Fatal("fresh container has runs")
	}
	c.Profile(testProgram(3).MustStream(), []hpc.Event{hpc.EvInstrs}, fastOpts)
	if c.Runs() != 1 {
		t.Fatalf("runs=%d, want 1", c.Runs())
	}
}
