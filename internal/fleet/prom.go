// Package fleet implements the observability-plane client side: it
// scrapes the Prometheus text exposition and /debug/traces JSON that
// smartserve and smartgw publish, computes rate deltas over a sampling
// window, and merges everything into one fleet status (per-shard verdict
// rates, p99 latency, shed rates, model versions, drift state, reroute
// counts, and the slowest end-to-end traces with per-hop attribution).
// smartctl status is a thin CLI shell over this package.
package fleet

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition series: a base metric name, its label
// set (nil when unlabeled) and the sampled value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the named label's value ("" when absent).
func (s Sample) Label(key string) string { return s.Labels[key] }

// Metrics is one parsed /metrics scrape.
type Metrics struct {
	// Types maps base metric names to their TYPE comment kind
	// (counter, gauge, histogram).
	Types map[string]string
	// Samples holds every series in exposition order.
	Samples []Sample
	// NonFinite counts series lines dropped because their value was NaN
	// or ±Inf. One poisoned gauge (a division by a zero window, an
	// uninitialised quantile) must not reject the whole node's scrape —
	// the rest of the exposition is still good evidence — but silently
	// keeping the value would poison every aggregate it touches.
	NonFinite int
}

// ParseMetrics parses a Prometheus text exposition (version 0.0.4). It
// understands everything internal/telemetry emits: TYPE comments,
// escaped label values, and cumulative histogram _bucket/_sum/_count
// series. Unknown comment lines are skipped; a malformed series line is
// an error; a series with a NaN or ±Inf value is skipped and counted in
// NonFinite (note: ±Inf as a value — the le="+Inf" bucket *label* is
// untouched).
func ParseMetrics(r io.Reader) (*Metrics, error) {
	m := &Metrics{Types: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if f := strings.Fields(line); len(f) >= 4 && f[1] == "TYPE" {
				m.Types[f[2]] = f[3]
			}
			continue
		}
		s, err := parseSeries(line)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w in series %q", err, line)
		}
		if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
			m.NonFinite++
			continue
		}
		m.Samples = append(m.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: reading exposition: %w", err)
	}
	return m, nil
}

// parseSeries parses one `name{k="v",...} value [timestamp]` line. The
// timestamp, which internal/telemetry never emits, is ignored.
func parseSeries(line string) (Sample, error) {
	var s Sample
	i := strings.IndexAny(line, "{ \t")
	if i < 0 {
		return s, fmt.Errorf("missing value")
	}
	s.Name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		labels, n, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[n:]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("missing value")
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", fields[0])
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a `{k="v",...}` label body starting at s[0] == '{'
// and returns the label map plus the number of bytes consumed. Escaped
// label values (\\, \", \n) are unescaped — the inverse of
// telemetry.Label.
func parseLabels(s string) (map[string]string, int, error) {
	labels := map[string]string{}
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return nil, 0, fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return labels, i + 1, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, 0, fmt.Errorf("label missing '='")
		}
		key := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, 0, fmt.Errorf("label %s missing quoted value", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, 0, fmt.Errorf("unterminated value for label %s", key)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(c)
					val.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels[key] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// matches reports whether the sample carries every given key=value pair
// (pairs is k1, v1, k2, v2, ...).
func matches(s Sample, pairs []string) bool {
	for i := 0; i+1 < len(pairs); i += 2 {
		if s.Labels[pairs[i]] != pairs[i+1] {
			return false
		}
	}
	return true
}

// Get returns the value of the series with the given base name whose
// labels include every k, v pair, and whether one was found.
func (m *Metrics) Get(name string, pairs ...string) (float64, bool) {
	if m == nil {
		return 0, false
	}
	for _, s := range m.Samples {
		if s.Name == name && matches(s, pairs) {
			return s.Value, true
		}
	}
	return 0, false
}

// Family returns every series with the given base name.
func (m *Metrics) Family(name string) []Sample {
	if m == nil {
		return nil
	}
	var out []Sample
	for _, s := range m.Samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// bucket is one cumulative histogram bucket.
type bucket struct {
	le  float64 // upper bound, +Inf for the overflow bucket
	cum float64 // cumulative count at or below le
}

// buckets collects and sorts the _bucket series of histogram name whose
// labels (beyond le) include the given pairs.
func (m *Metrics) buckets(name string, pairs []string) []bucket {
	var bs []bucket
	for _, s := range m.Family(name + "_bucket") {
		if !matches(s, pairs) {
			continue
		}
		le, err := strconv.ParseFloat(s.Labels["le"], 64)
		if err != nil {
			continue
		}
		bs = append(bs, bucket{le: le, cum: s.Value})
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
	return bs
}

// Quantile estimates the q-quantile (0 < q <= 1) of histogram name from
// its cumulative buckets, interpolating linearly inside the owning
// bucket (the histogram_quantile estimator). Returns 0 when the
// histogram is absent or empty. For ranks landing in the +Inf bucket it
// returns the highest finite bound — the estimate is clamped, not
// invented.
func (m *Metrics) Quantile(name string, q float64, pairs ...string) float64 {
	return quantile(m.buckets(name, pairs), q)
}

// DeltaQuantile estimates the q-quantile of the observations histogram
// name accumulated between the before and after scrapes, by differencing
// the cumulative buckets. Returns 0 when nothing was observed in the
// window.
func DeltaQuantile(before, after *Metrics, name string, q float64, pairs ...string) float64 {
	b0 := before.buckets(name, pairs)
	b1 := after.buckets(name, pairs)
	if len(b0) != len(b1) {
		return quantile(b1, q)
	}
	d := make([]bucket, len(b1))
	for i := range b1 {
		d[i] = bucket{le: b1[i].le, cum: b1[i].cum - b0[i].cum}
	}
	return quantile(d, q)
}

func quantile(bs []bucket, q float64) float64 {
	if len(bs) == 0 {
		return 0
	}
	total := bs[len(bs)-1].cum
	if total <= 0 {
		return 0
	}
	rank := q * total
	var prevBound, prevCum float64
	for _, b := range bs {
		if b.cum >= rank {
			if math.IsInf(b.le, 1) {
				return prevBound // clamp: the overflow bucket has no upper edge
			}
			in := b.cum - prevCum
			if in <= 0 {
				return b.le
			}
			return prevBound + (b.le-prevBound)*(rank-prevCum)/in
		}
		if !math.IsInf(b.le, 1) {
			prevBound = b.le
		}
		prevCum = b.cum
	}
	return prevBound
}

// Delta returns the counter increase of name between two scrapes,
// clamped at zero (a restarted process resets its counters; a negative
// rate would be noise, not signal).
func Delta(before, after *Metrics, name string, pairs ...string) float64 {
	b, _ := before.Get(name, pairs...)
	a, _ := after.Get(name, pairs...)
	if a < b {
		return 0
	}
	return a - b
}
