package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"twosmart/internal/trace"
)

// Role classifies a scraped node by the metric families it exports.
type Role string

const (
	RoleGateway Role = "gateway" // exports cluster_* families
	RoleShard   Role = "shard"   // exports serve_* families
	RoleUnknown Role = "unknown"
)

// detectRole classifies a scrape: a gateway exports cluster_* families,
// a shard serve_*. A node exporting both (not a topology we build) is
// reported as a gateway, its distinguishing tier.
func detectRole(m *Metrics) Role {
	role := RoleUnknown
	for name := range m.Types {
		if strings.HasPrefix(name, "cluster_") {
			return RoleGateway
		}
		if strings.HasPrefix(name, "serve_") {
			role = RoleShard
		}
	}
	return role
}

// ShardStatus is one scoring shard's merged view over the window.
type ShardStatus struct {
	Addr         string  `json:"addr"`
	Model        string  `json:"model,omitempty"`
	ModelVersion string  `json:"model_version,omitempty"`
	VerdictRate  float64 `json:"verdict_rate"` // verdicts/s over the window
	ShedRate     float64 `json:"shed_rate"`    // shed samples/s over the window
	P99          float64 `json:"p99_seconds"`  // verdict latency p99 (window, falling back to lifetime)
	DriftAlert   bool    `json:"drift_alert"`
	// Drift is the drift recommendation: "retrain" when the monitor's
	// alert gauge is raised, "steady" when present and clear, "n/a"
	// when the shard runs without a drift reference.
	Drift string `json:"drift"`
	// Rollout is the shard's rollout role: "canary" while the registry
	// pin table targets it (serve_rollout_pinned=1), "active" when it
	// follows the promoted version, "" for a shard without -shard-id
	// (the gauge is absent).
	Rollout      string `json:"rollout,omitempty"`
	TraceCount   int    `json:"trace_count"`
	TraceDropped uint64 `json:"trace_dropped"`
	// Cascade mirrors the node's cascade_* families: absent entirely when
	// the node runs no stage-0 cascade.
	Cascade *CascadeStatus `json:"cascade,omitempty"`
}

// CascadeStatus is one node's stage-0 cascade view: what fraction of its
// traffic the envelope short-circuited and what the envelope pass costs
// per sample. Window rates are preferred; with no window traffic the
// lifetime totals stand in.
type CascadeStatus struct {
	ShortFraction float64 `json:"short_fraction"`
	Stage0PerSamp float64 `json:"stage0_ns_per_sample"`
	ShortTotal    float64 `json:"short_total"`
	PassTotal     float64 `json:"pass_total"`
}

// cascadeStatus extracts the cascade section from a scrape pair, or nil
// when the node exposes no cascade families (cascade disabled: the
// instruments are created lazily on both tiers).
func cascadeStatus(before, after *Metrics) *CascadeStatus {
	if _, ok := after.Get("cascade_stage0_samples_total"); !ok {
		return nil
	}
	cs := &CascadeStatus{}
	cs.ShortTotal, _ = after.Get("cascade_short_total")
	cs.PassTotal, _ = after.Get("cascade_pass_total")
	short := Delta(before, after, "cascade_short_total")
	pass := Delta(before, after, "cascade_pass_total")
	if short+pass == 0 {
		// Quiet window: fall back to lifetime totals.
		short, pass = cs.ShortTotal, cs.PassTotal
	}
	if tot := short + pass; tot > 0 {
		cs.ShortFraction = short / tot
	}
	nanos := Delta(before, after, "cascade_stage0_nanos_total")
	samples := Delta(before, after, "cascade_stage0_samples_total")
	if samples == 0 {
		nanos, _ = after.Get("cascade_stage0_nanos_total")
		samples, _ = after.Get("cascade_stage0_samples_total")
	}
	if samples > 0 {
		cs.Stage0PerSamp = nanos / samples
	}
	return cs
}

// GatewayShard is the gateway's per-upstream view.
type GatewayShard struct {
	Shard       string  `json:"shard"`
	Up          bool    `json:"up"`
	ForwardRate float64 `json:"forward_rate"` // samples forwarded/s over the window
	RelayRate   float64 `json:"relay_rate"`   // verdicts relayed/s over the window
	ProbeRTT    float64 `json:"probe_rtt_seconds"`
	Routed      float64 `json:"streams_routed_total"`
	// ModelVersion is the registry version the shard last reported in a
	// heartbeat echo (0 before the first probe or outside a registry).
	ModelVersion int `json:"model_version,omitempty"`
	// Canary marks the shard as serving a minority version — the live
	// traffic-split label a staged rollout watches.
	Canary bool `json:"canary,omitempty"`
}

// GatewayStatus is one gateway's merged view over the window.
type GatewayStatus struct {
	Addr          string         `json:"addr"`
	ShardsHealthy int            `json:"shards_healthy"`
	Reroutes      float64        `json:"streams_rerouted_total"`
	RerouteRate   float64        `json:"reroute_rate"`
	Shards        []GatewayShard `json:"shards"`
	// CanaryStreams / CanarySampleRate quantify the canary traffic
	// split: streams ever routed to a canary shard, and canary-bound
	// samples/s over the window.
	CanaryStreams    float64 `json:"canary_streams_total,omitempty"`
	CanarySampleRate float64 `json:"canary_sample_rate,omitempty"`
	TraceCount       int     `json:"trace_count"`
	TraceDropped     uint64  `json:"trace_dropped"`
	// Cascade is the gateway's edge-cascade view (nil when the gateway
	// forwards everything).
	Cascade *CascadeStatus `json:"cascade,omitempty"`
}

// NodeError records a node that could not be scraped.
type NodeError struct {
	Addr string `json:"addr"`
	Err  string `json:"err"`
}

// TraceView is one captured record tagged with the node it came from.
type TraceView struct {
	Node string `json:"node"`
	trace.Record
}

// Status is the merged fleet view smartctl status renders.
type Status struct {
	Window   float64         `json:"window_seconds"`
	Gateways []GatewayStatus `json:"gateways"`
	Shards   []ShardStatus   `json:"shards"`
	Errors   []NodeError     `json:"errors,omitempty"`
	// Slowest holds the slowest captured traces across the fleet,
	// descending by total duration. Shard-tier records are end-to-end;
	// gateway-tier records cover only the gateway's own hops.
	Slowest []TraceView `json:"slowest_traces"`
}

// CollectConfig parameterizes CollectStatus.
type CollectConfig struct {
	// Window is how long to wait between the two scrapes that anchor
	// the rate deltas. Defaults to 2s.
	Window time.Duration
	// Top bounds the slowest-traces list. Defaults to 5.
	Top int
	// Client is the HTTP client used for every fetch. Defaults to one
	// with a 5s timeout.
	Client *http.Client
}

// CollectStatus scrapes every addr's /metrics twice, Window apart, plus
// /debug/traces once, and merges the results. Per-node scrape failures
// land in Status.Errors instead of failing the collection; the returned
// error is non-nil only when no node could be scraped at all.
func CollectStatus(ctx context.Context, addrs []string, cfg CollectConfig) (*Status, error) {
	if cfg.Window <= 0 {
		cfg.Window = 2 * time.Second
	}
	if cfg.Top <= 0 {
		cfg.Top = 5
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}

	before := scrapeAll(ctx, cfg.Client, addrs)
	select {
	case <-time.After(cfg.Window):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	after := scrapeAll(ctx, cfg.Client, addrs)

	st := &Status{Window: cfg.Window.Seconds()}
	sec := cfg.Window.Seconds()
	for _, addr := range addrs {
		a := after[addr]
		if a.err != nil {
			st.Errors = append(st.Errors, NodeError{Addr: addr, Err: a.err.Error()})
			continue
		}
		b := before[addr]
		if b.err != nil {
			// One good scrape: report absolute state with zero rates.
			b = result{metrics: a.metrics}
		}
		dump, derr := fetchTraces(ctx, cfg.Client, addr)
		if derr != nil {
			dump = &trace.Dump{}
		}
		for _, r := range dump.Records {
			st.Slowest = append(st.Slowest, TraceView{Node: addr, Record: r})
		}
		switch detectRole(a.metrics) {
		case RoleGateway:
			st.Gateways = append(st.Gateways, gatewayStatus(addr, b.metrics, a.metrics, sec, dump))
		case RoleShard:
			st.Shards = append(st.Shards, shardStatus(addr, b.metrics, a.metrics, sec, dump))
		default:
			st.Errors = append(st.Errors, NodeError{Addr: addr, Err: "exports neither cluster_* nor serve_* metrics"})
		}
	}
	if len(st.Gateways) == 0 && len(st.Shards) == 0 {
		return st, fmt.Errorf("fleet: no node of %d could be scraped", len(addrs))
	}
	sort.Slice(st.Slowest, func(i, j int) bool { return st.Slowest[i].TotalNanos > st.Slowest[j].TotalNanos })
	if len(st.Slowest) > cfg.Top {
		st.Slowest = st.Slowest[:cfg.Top]
	}
	return st, nil
}

func shardStatus(addr string, before, after *Metrics, sec float64, dump *trace.Dump) ShardStatus {
	s := ShardStatus{
		Addr:         addr,
		VerdictRate:  Delta(before, after, "serve_verdicts_total") / sec,
		ShedRate:     Delta(before, after, "serve_shed_total") / sec,
		TraceCount:   len(dump.Records),
		TraceDropped: dump.Dropped,
	}
	// The active model generation is the serve_model_info series at 1.
	for _, info := range after.Family("serve_model_info") {
		if info.Value == 1 {
			s.Model = info.Label("model")
			s.ModelVersion = info.Label("version")
			break
		}
	}
	// p99 over the window when traffic flowed, else lifetime.
	s.P99 = DeltaQuantile(before, after, "serve_verdict_latency_seconds", 0.99)
	if s.P99 == 0 {
		s.P99 = after.Quantile("serve_verdict_latency_seconds", 0.99)
	}
	if alert, ok := after.Get("drift_alert"); !ok {
		s.Drift = "n/a"
	} else if alert >= 1 {
		s.DriftAlert = true
		s.Drift = "retrain"
	} else {
		s.Drift = "steady"
	}
	if pinned, ok := after.Get("serve_rollout_pinned"); ok {
		if pinned >= 1 {
			s.Rollout = "canary"
		} else {
			s.Rollout = "active"
		}
	}
	s.Cascade = cascadeStatus(before, after)
	return s
}

func gatewayStatus(addr string, before, after *Metrics, sec float64, dump *trace.Dump) GatewayStatus {
	g := GatewayStatus{
		Addr:         addr,
		TraceCount:   len(dump.Records),
		TraceDropped: dump.Dropped,
	}
	if v, ok := after.Get("cluster_shards_healthy"); ok {
		g.ShardsHealthy = int(v)
	}
	g.Reroutes, _ = after.Get("cluster_streams_rerouted_total")
	g.RerouteRate = Delta(before, after, "cluster_streams_rerouted_total") / sec
	for _, up := range after.Family("cluster_shard_up") {
		shard := up.Label("shard")
		if shard == "" {
			continue
		}
		gs := GatewayShard{
			Shard:       shard,
			Up:          up.Value >= 1,
			ForwardRate: Delta(before, after, "cluster_samples_forwarded_total", "shard", shard) / sec,
			RelayRate:   Delta(before, after, "cluster_verdicts_relayed_total", "shard", shard) / sec,
		}
		gs.ProbeRTT, _ = after.Get("cluster_probe_rtt_seconds", "shard", shard)
		gs.Routed, _ = after.Get("cluster_streams_routed_total", "shard", shard)
		if v, ok := after.Get("cluster_shard_model_version", "shard", shard); ok {
			gs.ModelVersion = int(v)
		}
		if c, ok := after.Get("cluster_shard_canary", "shard", shard); ok && c >= 1 {
			gs.Canary = true
		}
		g.Shards = append(g.Shards, gs)
	}
	sort.Slice(g.Shards, func(i, j int) bool { return g.Shards[i].Shard < g.Shards[j].Shard })
	g.CanaryStreams, _ = after.Get("cluster_canary_streams_total")
	g.CanarySampleRate = Delta(before, after, "cluster_canary_samples_total") / sec
	g.Cascade = cascadeStatus(before, after)
	return g
}

type result struct {
	metrics *Metrics
	err     error
}

// scrapeAll fetches /metrics from every addr concurrently.
func scrapeAll(ctx context.Context, client *http.Client, addrs []string) map[string]result {
	out := make(map[string]result, len(addrs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, addr := range addrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			m, err := fetchMetrics(ctx, client, addr)
			mu.Lock()
			out[addr] = result{metrics: m, err: err}
			mu.Unlock()
		}(addr)
	}
	wg.Wait()
	return out
}

func get(ctx context.Context, client *http.Client, addr, path string) (*http.Response, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("GET %s%s: %s", addr, path, resp.Status)
	}
	return resp, nil
}

// FetchMetrics scrapes and parses one node's /metrics endpoint. addr may
// be a bare host:port (http:// is assumed). A nil client gets a 5s
// timeout default. The rollout controller builds its canary-vs-baseline
// evidence on this.
func FetchMetrics(ctx context.Context, client *http.Client, addr string) (*Metrics, error) {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return fetchMetrics(ctx, client, addr)
}

func fetchMetrics(ctx context.Context, client *http.Client, addr string) (*Metrics, error) {
	resp, err := get(ctx, client, addr, "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return ParseMetrics(resp.Body)
}

// fetchTraces fetches a node's /debug/traces dump. A node without the
// endpoint (tracing disabled or an older build) is not an error to the
// caller — they get an empty dump.
func fetchTraces(ctx context.Context, client *http.Client, addr string) (*trace.Dump, error) {
	resp, err := get(ctx, client, addr, "/debug/traces")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var d trace.Dump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil, fmt.Errorf("fleet: decoding %s/debug/traces: %w", addr, err)
	}
	return &d, nil
}
