package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"twosmart/internal/telemetry"
	"twosmart/internal/trace"
)

func TestParseMetricsRoundTrip(t *testing.T) {
	// Build the exposition with the real writer so the parser is pinned
	// against what the fleet actually serves, including label escaping.
	reg := telemetry.New()
	reg.Counter("serve_verdicts_total").Add(42)
	reg.Gauge(telemetry.Label("cluster_shard_up", "shard", "127.0.0.1:9000")).Set(1)
	reg.Gauge(telemetry.Label("odd_label", "v", "has\"quote\\and\nnewline")).Set(3)
	h := reg.Histogram("serve_verdict_latency_seconds", telemetry.LatencyBuckets)
	for i := 0; i < 100; i++ {
		h.Observe(0.002)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	m, err := ParseMetrics(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}

	if m.Types["serve_verdicts_total"] != "counter" ||
		m.Types["cluster_shard_up"] != "gauge" ||
		m.Types["serve_verdict_latency_seconds"] != "histogram" {
		t.Fatalf("TYPE classification wrong: %v", m.Types)
	}
	if v, ok := m.Get("serve_verdicts_total"); !ok || v != 42 {
		t.Fatalf("serve_verdicts_total = %v/%v, want 42", v, ok)
	}
	if v, ok := m.Get("cluster_shard_up", "shard", "127.0.0.1:9000"); !ok || v != 1 {
		t.Fatalf("cluster_shard_up{shard} = %v/%v, want 1", v, ok)
	}
	// Escaped label values come back to their original spelling.
	if v, ok := m.Get("odd_label", "v", "has\"quote\\and\nnewline"); !ok || v != 3 {
		t.Fatalf("unescaped label lookup = %v/%v, want 3", v, ok)
	}
	// The cumulative bucket series reconstruct the count and quantile.
	if v, ok := m.Get("serve_verdict_latency_seconds_count"); !ok || v != 100 {
		t.Fatalf("_count = %v/%v, want 100", v, ok)
	}
	p99 := m.Quantile("serve_verdict_latency_seconds", 0.99)
	if p99 <= 0 {
		t.Fatalf("p99 = %v, want > 0", p99)
	}
	// All observations were 0.002; the estimate must live in a bucket
	// whose range contains it.
	if p99 > 0.01 || p99 < 0.0005 {
		t.Fatalf("p99 = %v, implausible for a 2ms point mass", p99)
	}
}

func TestParseMetricsMalformed(t *testing.T) {
	for _, bad := range []string{
		"name_only\n",
		`broken{a="unterminated} 1` + "\n",
		"noval{a=\"b\"}\n",
		"x 1e\n",
	} {
		if _, err := ParseMetrics(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseMetrics(%q) accepted malformed input", bad)
		}
	}
	// +Inf bucket values and comments parse fine.
	ok := "# HELP x something\n# TYPE x histogram\nx_bucket{le=\"+Inf\"} 5\nx_sum 1\nx_count 5\n"
	m, err := ParseMetrics(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	bs := m.buckets("x", nil)
	if len(bs) != 1 || !math.IsInf(bs[0].le, 1) {
		t.Fatalf("buckets = %+v, want one +Inf bucket", bs)
	}
}

// TestParseMetricsNonFiniteValues pins skip-and-count: a NaN or ±Inf
// sample value drops just that series (counted in NonFinite) instead of
// rejecting the node's whole scrape — or worse, silently keeping a
// value that poisons every aggregate built on it. The le="+Inf" bucket
// *label* is not a value and must keep parsing.
func TestParseMetricsNonFiniteValues(t *testing.T) {
	cases := []struct {
		name      string
		in        string
		samples   int
		nonFinite int
	}{
		{"nan skipped", "a 1\nb NaN\nc 2\n", 2, 1},
		{"plus inf skipped", "a +Inf\n", 0, 1},
		{"minus inf skipped", "a -Inf\nb 7\n", 1, 1},
		{"lowercase nan skipped", "a nan\n", 0, 1},
		{"labeled series survives siblings", "x{shard=\"s1\"} NaN\nx{shard=\"s2\"} 3\n", 1, 1},
		{"inf bucket label kept", "x_bucket{le=\"+Inf\"} 5\n", 1, 0},
		{"all finite", "a 1\nb 2\n", 2, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := ParseMetrics(strings.NewReader(tc.in))
			if err != nil {
				t.Fatalf("ParseMetrics(%q): %v", tc.in, err)
			}
			if len(m.Samples) != tc.samples || m.NonFinite != tc.nonFinite {
				t.Fatalf("samples=%d nonfinite=%d, want %d/%d",
					len(m.Samples), m.NonFinite, tc.samples, tc.nonFinite)
			}
		})
	}
	// The surviving labeled sibling is still addressable.
	m, err := ParseMetrics(strings.NewReader("x{shard=\"s1\"} NaN\nx{shard=\"s2\"} 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Get("x", "shard", "s2"); !ok || v != 3 {
		t.Fatalf("x{shard=s2} = %v/%v, want 3", v, ok)
	}
	if _, ok := m.Get("x", "shard", "s1"); ok {
		t.Fatal("NaN series still addressable after skip")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	bs := []bucket{{le: 1, cum: 0}, {le: 2, cum: 100}, {le: math.Inf(1), cum: 100}}
	// All 100 observations sit in (1, 2]; the median interpolates to 1.5.
	if got := quantile(bs, 0.5); got != 1.5 {
		t.Fatalf("median = %v, want 1.5", got)
	}
	// A rank in the +Inf bucket clamps to the last finite bound.
	bs[2].cum = 200
	if got := quantile(bs, 0.99); got != 2 {
		t.Fatalf("p99 with overflow mass = %v, want clamp to 2", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

// fakeNode serves /metrics built per request (so counters can advance
// between the two scrapes) and a fixed /debug/traces dump.
func fakeNode(t *testing.T, metrics func(scrape int64) string, dump trace.Dump) *httptest.Server {
	t.Helper()
	var scrapes atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, metrics(scrapes.Add(1)))
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(dump)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestCollectStatusMergesFleet(t *testing.T) {
	shardTrace := trace.Record{
		TraceID: 9, Tier: trace.TierShard, App: "app-a", Stream: 1, Seq: 5,
		Hops:       [trace.NumHops]int64{1000, 2000, 300, 4000, 700},
		TotalNanos: 8000,
	}
	shard := fakeNode(t, func(n int64) string {
		// 200 verdicts and 10 sheds per scrape interval; latency mass at 2ms.
		return fmt.Sprintf(`# TYPE serve_verdicts_total counter
serve_verdicts_total %d
# TYPE serve_shed_total counter
serve_shed_total %d
# TYPE serve_model_info gauge
serve_model_info{model="tiny",version="3"} 1
serve_model_info{model="tiny",version="2"} 0
# TYPE serve_rollout_pinned gauge
serve_rollout_pinned 1
# TYPE drift_alert gauge
drift_alert 1
# TYPE cascade_short_total counter
cascade_short_total %d
# TYPE cascade_pass_total counter
cascade_pass_total %d
# TYPE cascade_stage0_nanos_total counter
cascade_stage0_nanos_total %d
# TYPE cascade_stage0_samples_total counter
cascade_stage0_samples_total %d
# TYPE serve_verdict_latency_seconds histogram
serve_verdict_latency_seconds_bucket{le="0.001"} 0
serve_verdict_latency_seconds_bucket{le="0.005"} %d
serve_verdict_latency_seconds_bucket{le="+Inf"} %d
serve_verdict_latency_seconds_sum 1
serve_verdict_latency_seconds_count %d
`, 200*n, 10*n, 160*n, 40*n, 10000*n, 200*n, 200*n, 200*n, 200*n)
	}, trace.Dump{SampleEvery: 1, Depth: 256, Dropped: 2, HopNames: trace.HopNames[:], Records: []trace.Record{shardTrace}})

	gwTrace := trace.Record{
		TraceID: 4, Tier: trace.TierGateway, App: "app-a", Shard: "10.0.0.1:7000", Stream: 1, Seq: 2,
		Hops:       [trace.NumHops]int64{0, 500, 100, 0, 400},
		TotalNanos: 1000,
	}
	gw := fakeNode(t, func(n int64) string {
		return fmt.Sprintf(`# TYPE cluster_shards_healthy gauge
cluster_shards_healthy 2
# TYPE cluster_shard_up gauge
cluster_shard_up{shard="10.0.0.1:7000"} 1
cluster_shard_up{shard="10.0.0.2:7000"} 0
# TYPE cluster_samples_forwarded_total counter
cluster_samples_forwarded_total{shard="10.0.0.1:7000"} %d
# TYPE cluster_verdicts_relayed_total counter
cluster_verdicts_relayed_total{shard="10.0.0.1:7000"} %d
# TYPE cluster_streams_rerouted_total counter
cluster_streams_rerouted_total 3
# TYPE cluster_probe_rtt_seconds gauge
cluster_probe_rtt_seconds{shard="10.0.0.1:7000"} 0.0004
# TYPE cluster_streams_routed_total counter
cluster_streams_routed_total{shard="10.0.0.1:7000"} 16
# TYPE cluster_shard_model_version gauge
cluster_shard_model_version{shard="10.0.0.1:7000"} 3
# TYPE cluster_shard_canary gauge
cluster_shard_canary{shard="10.0.0.1:7000"} 1
# TYPE cluster_canary_streams_total counter
cluster_canary_streams_total 16
# TYPE cluster_canary_samples_total counter
cluster_canary_samples_total %d
`, 400*n, 390*n, 400*n)
	}, trace.Dump{Records: []trace.Record{gwTrace}})

	dead := "127.0.0.1:1" // nothing listens here

	window := 100 * time.Millisecond
	st, err := CollectStatus(context.Background(),
		[]string{strings.TrimPrefix(gw.URL, "http://"), strings.TrimPrefix(shard.URL, "http://"), dead},
		CollectConfig{Window: window, Top: 10})
	if err != nil {
		t.Fatal(err)
	}

	if len(st.Shards) != 1 || len(st.Gateways) != 1 {
		t.Fatalf("got %d shards, %d gateways, want 1 each", len(st.Shards), len(st.Gateways))
	}
	sec := window.Seconds()
	sh := st.Shards[0]
	if want := 200 / sec; math.Abs(sh.VerdictRate-want) > want*0.01 {
		t.Fatalf("verdict rate %v, want %v", sh.VerdictRate, want)
	}
	if want := 10 / sec; math.Abs(sh.ShedRate-want) > want*0.01 {
		t.Fatalf("shed rate %v, want %v", sh.ShedRate, want)
	}
	if sh.Model != "tiny" || sh.ModelVersion != "3" {
		t.Fatalf("model %q v%q, want active generation tiny v3", sh.Model, sh.ModelVersion)
	}
	if !sh.DriftAlert || sh.Drift != "retrain" {
		t.Fatalf("drift = %v/%q, want alert/retrain", sh.DriftAlert, sh.Drift)
	}
	if sh.Rollout != "canary" {
		t.Fatalf("rollout = %q, want canary (serve_rollout_pinned=1)", sh.Rollout)
	}
	if sh.P99 <= 0.001 || sh.P99 > 0.005 {
		t.Fatalf("p99 = %v, want inside the (0.001, 0.005] bucket", sh.P99)
	}
	if sh.TraceCount != 1 || sh.TraceDropped != 2 {
		t.Fatalf("trace count/dropped = %d/%d, want 1/2", sh.TraceCount, sh.TraceDropped)
	}
	// 160 shorts + 40 passes per interval → 80% short-circuited; 10000ns
	// over 200 stage-0 samples → 50ns/sample.
	if sh.Cascade == nil {
		t.Fatal("cascade section missing on a cascade-running shard")
	}
	if math.Abs(sh.Cascade.ShortFraction-0.8) > 0.001 {
		t.Fatalf("cascade short fraction %v, want 0.8", sh.Cascade.ShortFraction)
	}
	if math.Abs(sh.Cascade.Stage0PerSamp-50) > 0.5 {
		t.Fatalf("cascade stage-0 cost %vns/sample, want 50", sh.Cascade.Stage0PerSamp)
	}

	g := st.Gateways[0]
	if g.ShardsHealthy != 2 || g.Reroutes != 3 {
		t.Fatalf("gateway healthy/reroutes = %d/%v, want 2/3", g.ShardsHealthy, g.Reroutes)
	}
	if len(g.Shards) != 2 {
		t.Fatalf("gateway reports %d shards, want 2", len(g.Shards))
	}
	up := g.Shards[0] // sorted: 10.0.0.1 first
	if up.Shard != "10.0.0.1:7000" || !up.Up || up.ProbeRTT != 0.0004 {
		t.Fatalf("per-shard view %+v", up)
	}
	if up.ModelVersion != 3 || !up.Canary {
		t.Fatalf("per-shard version view %+v, want v3 canary", up)
	}
	if g.CanaryStreams != 16 {
		t.Fatalf("canary streams = %v, want 16", g.CanaryStreams)
	}
	if want := 400 / sec; math.Abs(g.CanarySampleRate-want) > want*0.01 {
		t.Fatalf("canary sample rate %v, want %v", g.CanarySampleRate, want)
	}
	if want := 400 / sec; math.Abs(up.ForwardRate-want) > want*0.01 {
		t.Fatalf("forward rate %v, want %v", up.ForwardRate, want)
	}
	if g.Shards[1].Up {
		t.Fatalf("down shard reported up: %+v", g.Shards[1])
	}
	if g.Cascade != nil {
		t.Fatalf("no-cascade gateway grew a cascade section: %+v", g.Cascade)
	}

	if len(st.Errors) != 1 || st.Errors[0].Addr != dead {
		t.Fatalf("errors = %+v, want the dead node", st.Errors)
	}

	// Slowest traces merge both tiers, descending by total duration.
	if len(st.Slowest) != 2 {
		t.Fatalf("slowest holds %d traces, want 2", len(st.Slowest))
	}
	if st.Slowest[0].TraceID != 9 || st.Slowest[1].TraceID != 4 {
		t.Fatalf("slowest order %d, %d, want 9 (8µs) before 4 (1µs)",
			st.Slowest[0].TraceID, st.Slowest[1].TraceID)
	}

	// Both render paths work on the merged status.
	var text, js strings.Builder
	st.Render(&text)
	for _, want := range []string{"GATEWAY", "SHARDS", "tiny v3", "retrain", "CASCADE", "80.0% @50ns", "STAGE0", "SLOWEST TRACES", "UNREACHABLE",
		"[1 node(s) UNREACHABLE]", "ROLLOUT", "canary", "v3 (canary)"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("render missing %q:\n%s", want, text.String())
		}
	}
	if err := st.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Status
	if err := json.Unmarshal([]byte(js.String()), &back); err != nil {
		t.Fatalf("JSON mode not round-trippable: %v", err)
	}
	if len(back.Slowest) != 2 || back.Slowest[0].Node == "" {
		t.Fatalf("JSON round trip lost traces: %+v", back.Slowest)
	}
}

func TestCollectStatusAllDead(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st, err := CollectStatus(ctx, []string{"127.0.0.1:1"},
		CollectConfig{Window: 10 * time.Millisecond, Client: &http.Client{Timeout: 200 * time.Millisecond}})
	if err == nil {
		t.Fatal("CollectStatus succeeded with every node dead")
	}
	if st == nil || len(st.Errors) != 1 {
		t.Fatalf("status = %+v, want the node listed in Errors", st)
	}
}
