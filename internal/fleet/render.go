package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"twosmart/internal/trace"
)

// WriteJSON renders the status as indented JSON.
func (st *Status) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

// Render writes the human-readable fleet table: one gateway block per
// gateway with its per-shard forwarding view, one row per shard with
// rates, latency, model and drift state, then the slowest traces with
// their per-hop breakdown.
func (st *Status) Render(w io.Writer) {
	// The unreachable count rides the summary line: a half-blind
	// collection must announce itself up front, not only in per-node
	// rows a scanning operator can miss.
	fmt.Fprintf(w, "fleet status (rates over %gs window)", st.Window)
	if n := len(st.Errors); n > 0 {
		fmt.Fprintf(w, "  [%d node(s) UNREACHABLE]", n)
	}
	fmt.Fprintln(w)

	for _, g := range st.Gateways {
		fmt.Fprintf(w, "\nGATEWAY %s  shards_healthy=%d  reroutes=%.0f (%.1f/s)  traces=%d",
			g.Addr, g.ShardsHealthy, g.Reroutes, g.RerouteRate, g.TraceCount)
		if g.TraceDropped > 0 {
			fmt.Fprintf(w, " (dropped %d)", g.TraceDropped)
		}
		if g.Cascade != nil {
			fmt.Fprintf(w, "  cascade=%s", cascadeCell(g.Cascade))
		}
		if g.CanaryStreams > 0 || g.CanarySampleRate > 0 {
			fmt.Fprintf(w, "  canary_streams=%.0f (%.1f samples/s)", g.CanaryStreams, g.CanarySampleRate)
		}
		fmt.Fprintln(w)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  SHARD\tUP\tVERSION\tFWD/S\tRELAY/S\tPROBE RTT\tROUTED")
		for _, s := range g.Shards {
			up := "down"
			if s.Up {
				up = "up"
			}
			version := "-"
			if s.ModelVersion > 0 {
				version = fmt.Sprintf("v%d", s.ModelVersion)
				if s.Canary {
					version += " (canary)"
				}
			}
			fmt.Fprintf(tw, "  %s\t%s\t%s\t%.1f\t%.1f\t%s\t%.0f\n",
				s.Shard, up, version, s.ForwardRate, s.RelayRate, dur(s.ProbeRTT), s.Routed)
		}
		tw.Flush()
	}

	if len(st.Shards) > 0 {
		fmt.Fprintln(w, "\nSHARDS")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  ADDR\tMODEL\tVERDICTS/S\tSHED/S\tP99\tDRIFT\tROLLOUT\tCASCADE\tTRACES")
		for _, s := range st.Shards {
			model := s.Model
			if model == "" {
				model = "-"
			} else if s.ModelVersion != "" {
				model += " v" + s.ModelVersion
			}
			traces := fmt.Sprintf("%d", s.TraceCount)
			if s.TraceDropped > 0 {
				traces += fmt.Sprintf(" (dropped %d)", s.TraceDropped)
			}
			rollout := s.Rollout
			if rollout == "" {
				rollout = "-"
			}
			fmt.Fprintf(tw, "  %s\t%s\t%.1f\t%.1f\t%s\t%s\t%s\t%s\t%s\n",
				s.Addr, model, s.VerdictRate, s.ShedRate, dur(s.P99), s.Drift, rollout, cascadeCell(s.Cascade), traces)
		}
		tw.Flush()
	}

	for _, e := range st.Errors {
		fmt.Fprintf(w, "\nUNREACHABLE %s: %s\n", e.Addr, e.Err)
	}

	if len(st.Slowest) > 0 {
		fmt.Fprintln(w, "\nSLOWEST TRACES (per-hop attribution)")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  NODE\tTIER\tAPP\tSTREAM:SEQ\tTOTAL\tGATEWAY\tQUEUE\tASSEMBLY\tSTAGE0\tSCORE\tEMIT")
		for _, t := range st.Slowest {
			fmt.Fprintf(tw, "  %s\t%s\t%s\t%d:%d\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
				t.Node, t.Tier, t.App, t.Stream, t.Seq,
				durNanos(t.TotalNanos),
				durNanos(t.Hops[trace.HopGateway]),
				durNanos(t.Hops[trace.HopQueue]),
				durNanos(t.Hops[trace.HopAssembly]),
				durNanos(t.Hops[trace.HopStage0]),
				durNanos(t.Hops[trace.HopScore]),
				durNanos(t.Hops[trace.HopEmit]))
		}
		tw.Flush()
	}
}

// cascadeCell renders one node's cascade column: the short-circuit
// fraction and the stage-0 cost per sample, or "-" when the node runs no
// cascade.
func cascadeCell(cs *CascadeStatus) string {
	if cs == nil {
		return "-"
	}
	return fmt.Sprintf("%.1f%% @%.0fns", cs.ShortFraction*100, cs.Stage0PerSamp)
}

// dur renders seconds compactly (µs/ms/s as appropriate).
func dur(seconds float64) string {
	if seconds == 0 {
		return "-"
	}
	return durNanos(int64(seconds * 1e9))
}

// durNanos renders a nanosecond duration rounded to a readable grain.
func durNanos(ns int64) string {
	if ns == 0 {
		return "0"
	}
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(100 * time.Nanosecond).String()
	default:
		return d.String()
	}
}
