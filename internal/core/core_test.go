package core

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"twosmart/internal/corpus"
	"twosmart/internal/dataset"
	"twosmart/internal/workload"
)

// testCorpus lazily collects one small shared corpus for all core tests.
var (
	corpusOnce sync.Once
	corpusData *dataset.Dataset
	corpusErr  error
)

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	corpusOnce.Do(func() {
		corpusData, corpusErr = corpus.Collect(corpus.Config{
			Scale:       0.001,
			MinPerClass: 24,
			Budget:      30000,
			Seed:        7,
			Omniscient:  true,
		})
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpusData
}

func TestCustomFeatures(t *testing.T) {
	for _, c := range workload.MalwareClasses() {
		feats, err := CustomFeatures(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(feats) != 8 {
			t.Fatalf("%v custom set has %d features, want 8", c, len(feats))
		}
		for i, common := range CommonFeatures {
			if feats[i] != common {
				t.Fatalf("%v feature %d = %q, want common %q", c, i, feats[i], common)
			}
		}
	}
	if _, err := CustomFeatures(workload.Benign); err == nil {
		t.Fatal("benign custom features accepted")
	}
}

func TestKindNames(t *testing.T) {
	if J48.String() != "J48" || OneR.String() != "OneR" {
		t.Fatal("kind names wrong")
	}
	if k, ok := KindByName("MLP"); !ok || k != MLP {
		t.Fatal("KindByName failed")
	}
	if _, ok := KindByName("SVM"); ok {
		t.Fatal("unknown kind resolved")
	}
	if Kind(9).String() != "kind(9)" {
		t.Fatal("unknown kind string wrong")
	}
	if len(Kinds()) != 4 {
		t.Fatal("Kinds incomplete")
	}
}

func TestNewTrainerPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTrainer(Kind(99), 0)
}

func TestBinaryTask(t *testing.T) {
	d := testData(t)
	b, err := BinaryTask(d, workload.Virus)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumClasses() != 2 {
		t.Fatal("binary task not binary")
	}
	counts := b.ClassCounts()
	full := d.ClassCounts()
	if counts[0] != full[int(workload.Benign)] || counts[1] != full[int(workload.Virus)] {
		t.Fatalf("binary counts %v vs full %v", counts, full)
	}
	if _, err := BinaryTask(d, workload.Benign); err == nil {
		t.Fatal("benign binary task accepted")
	}
}

func TestTrainAndDetectEndToEnd(t *testing.T) {
	d := testData(t)
	train, test, err := d.Split(0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	det, err := Train(train, TrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	var malRight, malTotal, benRight, benTotal int
	for _, ins := range test.Instances {
		v, err := det.Detect(ins.Features)
		if err != nil {
			t.Fatal(err)
		}
		if workload.Class(ins.Label).IsMalware() {
			malTotal++
			if v.Malware {
				malRight++
			}
		} else {
			benTotal++
			if !v.Malware {
				benRight++
			}
		}
	}
	if malTotal == 0 || benTotal == 0 {
		t.Fatal("test set missing a side")
	}
	recall := float64(malRight) / float64(malTotal)
	specificity := float64(benRight) / float64(benTotal)
	if recall < 0.6 {
		t.Fatalf("end-to-end malware recall=%.2f", recall)
	}
	if specificity < 0.6 {
		t.Fatalf("end-to-end benign specificity=%.2f", specificity)
	}
	t.Logf("end-to-end recall=%.3f specificity=%.3f", recall, specificity)
}

func TestStage1Predict(t *testing.T) {
	d := testData(t)
	train, test, _ := d.Split(0.6, 2)
	det, err := Train(train, TrainConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, ins := range test.Instances {
		c, err := det.Stage1Predict(ins.Features)
		if err != nil {
			t.Fatal(err)
		}
		if int(c) == ins.Label {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	// The paper reports ~80% stage-1 accuracy with 4 HPCs; require a
	// loose floor well above the 20% chance level.
	if acc < 0.5 {
		t.Fatalf("stage-1 accuracy=%.2f", acc)
	}
	t.Logf("stage-1 accuracy=%.3f", acc)
}

func TestTrainWithFixedKindsAndFeatures(t *testing.T) {
	d := testData(t)
	feats := map[workload.Class][]string{}
	for _, c := range workload.MalwareClasses() {
		f, err := CustomFeatures(c)
		if err != nil {
			t.Fatal(err)
		}
		feats[c] = f
	}
	det, err := Train(d, TrainConfig{
		Stage2Kinds: map[workload.Class]Kind{
			workload.Virus:    OneR,
			workload.Trojan:   J48,
			workload.Backdoor: JRip,
			workload.Rootkit:  MLP,
		},
		Stage2Features: feats,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	k, names, err := det.Stage2Info(workload.Virus)
	if err != nil {
		t.Fatal(err)
	}
	if k != OneR {
		t.Fatalf("virus stage-2 kind=%v, want OneR", k)
	}
	if len(names) != 8 {
		t.Fatalf("virus stage-2 features=%d, want 8", len(names))
	}
	if _, err := det.Stage2Model(workload.Trojan); err != nil {
		t.Fatal(err)
	}
	if _, _, err := det.Stage2Info(workload.Benign); err == nil {
		t.Fatal("stage-2 info for benign accepted")
	}
	if det.Stage1Model() == nil {
		t.Fatal("no stage-1 model")
	}
}

func TestTrainBoosted(t *testing.T) {
	d := testData(t)
	det, err := Train(d, TrainConfig{
		Boost:       true,
		BoostRounds: 5,
		Stage2Kinds: map[workload.Class]Kind{
			workload.Virus: J48, workload.Trojan: J48,
			workload.Backdoor: J48, workload.Rootkit: J48,
		},
		Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := det.Detect(d.Instances[0].Features)
	if err != nil {
		t.Fatal(err)
	}
	if v.Confidence < 0 || v.Confidence > 1 {
		t.Fatalf("confidence=%v", v.Confidence)
	}
}

func TestMalwareScoreRange(t *testing.T) {
	d := testData(t)
	det, err := Train(d, TrainConfig{Seed: 5, Stage2Kinds: map[workload.Class]Kind{
		workload.Virus: OneR, workload.Trojan: OneR,
		workload.Backdoor: OneR, workload.Rootkit: OneR,
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range d.Instances[:50] {
		s, err := det.MalwareScore(ins.Features)
		if err != nil {
			t.Fatal(err)
		}
		if s < 0 || s > 1 {
			t.Fatalf("score %v outside [0,1]", s)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	d := testData(t)
	empty := dataset.New(d.FeatureNames, d.ClassNames)
	if _, err := Train(empty, TrainConfig{}); err == nil {
		t.Fatal("empty training set accepted")
	}
	binary, _ := BinaryTask(d, workload.Virus)
	if _, err := Train(binary, TrainConfig{}); err == nil {
		t.Fatal("binary dataset accepted as 5-class input")
	}
	if _, err := Train(d, TrainConfig{Stage1Features: []string{"nonsense"}}); err == nil {
		t.Fatal("unknown stage-1 feature accepted")
	}
}

func TestDetectValidatesWidth(t *testing.T) {
	d := testData(t)
	det, err := Train(d, TrainConfig{Seed: 6, Stage2Kinds: map[workload.Class]Kind{
		workload.Virus: OneR, workload.Trojan: OneR,
		workload.Backdoor: OneR, workload.Rootkit: OneR,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Detect([]float64{1, 2}); err == nil {
		t.Fatal("short vector accepted")
	}
	if _, err := det.MalwareScore([]float64{1}); err == nil {
		t.Fatal("short vector accepted by MalwareScore")
	}
	if _, err := det.Stage1Predict([]float64{1}); err == nil {
		t.Fatal("short vector accepted by Stage1Predict")
	}
	if got := len(det.FeatureNames()); got != d.NumFeatures() {
		t.Fatalf("FeatureNames=%d", got)
	}
}

// Trained detectors are immutable and must support concurrent Detect calls
// (the run-time monitor scores many applications in parallel).
func TestDetectConcurrent(t *testing.T) {
	d := testData(t)
	det, err := Train(d, TrainConfig{Seed: 31, Stage2Kinds: map[workload.Class]Kind{
		workload.Virus: MLP, workload.Trojan: J48,
		workload.Backdoor: JRip, workload.Rootkit: OneR,
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]bool, 64)
	for i := range want {
		v, err := det.Detect(d.Instances[i].Features)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v.Malware
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				v, err := det.Detect(d.Instances[i].Features)
				if err != nil {
					t.Error(err)
					return
				}
				if v.Malware != want[i] {
					t.Errorf("concurrent verdict differs at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Concurrent stage-2 training must be deterministic: two Train runs with
// the same seed serialize to identical bytes.
func TestTrainDeterministicUnderConcurrency(t *testing.T) {
	d := testData(t)
	a, err := Train(d, TrainConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(d, TrainConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ba, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatal("same-seed detectors serialize differently; stage-2 parallelism broke determinism")
	}
}

func TestTrainContextCancellation(t *testing.T) {
	d := testData(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainContext(ctx, d, TrainConfig{Seed: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
}
