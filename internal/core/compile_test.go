package core

import (
	"math"
	"math/rand"
	"testing"

	"twosmart/internal/workload"
)

// compiledFixtures trains the run-time (plain) and boosted detectors once
// for the compiled-path tests.
func compiledFixtures(t *testing.T, boost bool) (*Detector, *CompiledDetector) {
	t.Helper()
	data, err := testData(t).SelectByName(CommonFeatures)
	if err != nil {
		t.Fatal(err)
	}
	det, err := Train(data, TrainConfig{Boost: boost, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return det, det.Compile()
}

// sameVerdict compares verdicts allowing last-ulp confidence drift from
// the compiled MLP/MLR standardisation folding (see internal/ml/nn).
func sameVerdict(got, want Verdict) bool {
	return got.PredictedClass == want.PredictedClass &&
		got.Malware == want.Malware &&
		got.Stage2Kind == want.Stage2Kind &&
		math.Abs(got.Confidence-want.Confidence) <= 1e-9
}

// TestCompiledDetectorEquivalence verifies the compiled detector against
// the interpreted one over the corpus samples plus randomized
// perturbations: identical verdicts, identical malware scores.
func TestCompiledDetectorEquivalence(t *testing.T) {
	for _, boost := range []bool{false, true} {
		name := "plain"
		if boost {
			name = "boosted"
		}
		t.Run(name, func(t *testing.T) {
			det, cd := compiledFixtures(t, boost)
			if cd.NumFeatures() != len(CommonFeatures) {
				t.Fatalf("NumFeatures = %d, want %d", cd.NumFeatures(), len(CommonFeatures))
			}
			rng := rand.New(rand.NewSource(9))
			data, err := testData(t).SelectByName(CommonFeatures)
			if err != nil {
				t.Fatal(err)
			}
			fv := make([]float64, len(CommonFeatures))
			for trial := 0; trial < 3000; trial++ {
				src := data.Instances[rng.Intn(data.Len())]
				for j, v := range src.Features {
					fv[j] = v * (1 + 0.2*rng.NormFloat64())
				}
				want, err := det.Detect(fv)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cd.Detect(fv)
				if err != nil {
					t.Fatal(err)
				}
				if !sameVerdict(got, want) {
					t.Fatalf("trial %d: compiled verdict %+v, interpreted %+v", trial, got, want)
				}
				wantScore, err := det.MalwareScore(fv)
				if err != nil {
					t.Fatal(err)
				}
				gotScore, err := cd.MalwareScore(fv)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(gotScore-wantScore) > 1e-9 {
					t.Fatalf("trial %d: compiled score %v, interpreted %v", trial, gotScore, wantScore)
				}
			}
		})
	}
}

// TestCompiledDetectorBatch checks the batch APIs against the per-sample
// paths and their input validation.
func TestCompiledDetectorBatch(t *testing.T) {
	det, cd := compiledFixtures(t, false)
	data, err := testData(t).SelectByName(CommonFeatures)
	if err != nil {
		t.Fatal(err)
	}
	n := 128
	samples := make([][]float64, n)
	for i := range samples {
		samples[i] = data.Instances[i%data.Len()].Features
	}
	verdicts := make([]Verdict, n)
	scores := make([]float64, n)
	if err := cd.DetectBatch(verdicts, samples); err != nil {
		t.Fatal(err)
	}
	if err := cd.MalwareScoreBatch(scores, samples); err != nil {
		t.Fatal(err)
	}
	for i, fv := range samples {
		want, err := det.Detect(fv)
		if err != nil {
			t.Fatal(err)
		}
		if !sameVerdict(verdicts[i], want) {
			t.Fatalf("sample %d: batch verdict %+v, want %+v", i, verdicts[i], want)
		}
		wantScore, err := det.MalwareScore(fv)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(scores[i]-wantScore) > 1e-9 {
			t.Fatalf("sample %d: batch score %v, want %v", i, scores[i], wantScore)
		}
	}

	if err := cd.DetectBatch(verdicts[:1], samples); err == nil {
		t.Fatal("short dst accepted by DetectBatch")
	}
	if err := cd.MalwareScoreBatch(scores[:1], samples); err == nil {
		t.Fatal("short dst accepted by MalwareScoreBatch")
	}
	bad := [][]float64{{1, 2}}
	if err := cd.DetectBatch(verdicts[:1], bad); err == nil {
		t.Fatal("wrong-width sample accepted")
	}
}

// TestDetectScoredBatch pins the fused serving-path primitive against the
// two calls it replaces: verdicts match DetectBatch and scores match
// MalwareScoreBatch, from one evaluation per sample, with no allocations.
func TestDetectScoredBatch(t *testing.T) {
	_, cd := compiledFixtures(t, false)
	data, err := testData(t).SelectByName(CommonFeatures)
	if err != nil {
		t.Fatal(err)
	}
	n := 96
	samples := make([][]float64, n)
	for i := range samples {
		samples[i] = data.Instances[i%data.Len()].Features
	}
	wantVerdicts := make([]Verdict, n)
	wantScores := make([]float64, n)
	if err := cd.DetectBatch(wantVerdicts, samples); err != nil {
		t.Fatal(err)
	}
	if err := cd.MalwareScoreBatch(wantScores, samples); err != nil {
		t.Fatal(err)
	}
	verdicts := make([]Verdict, n)
	scores := make([]float64, n)
	if err := cd.DetectScoredBatch(verdicts, scores, samples); err != nil {
		t.Fatal(err)
	}
	for i := range samples {
		if verdicts[i] != wantVerdicts[i] {
			t.Fatalf("sample %d: verdict %+v, want %+v", i, verdicts[i], wantVerdicts[i])
		}
		if scores[i] != wantScores[i] {
			t.Fatalf("sample %d: score %v, want %v", i, scores[i], wantScores[i])
		}
	}
	if err := cd.DetectScoredBatch(verdicts[:1], scores, samples); err == nil {
		t.Fatal("short dst accepted")
	}
	if err := cd.DetectScoredBatch(verdicts, scores[:1], samples); err == nil {
		t.Fatal("short scores accepted")
	}
	if err := cd.DetectScoredBatch(verdicts[:1], scores[:1], [][]float64{{1}}); err == nil {
		t.Fatal("wrong-width sample accepted")
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := cd.DetectScoredBatch(verdicts, scores, samples); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("DetectScoredBatch allocates %.1f objects/op, want 0", allocs)
	}
}

// TestCompiledDetectorZeroAlloc pins the hot-path allocation contract: the
// compiled Detect/MalwareScore and batch paths must not touch the heap.
func TestCompiledDetectorZeroAlloc(t *testing.T) {
	for _, boost := range []bool{false, true} {
		name := "plain"
		if boost {
			name = "boosted"
		}
		t.Run(name, func(t *testing.T) {
			_, cd := compiledFixtures(t, boost)
			data, err := testData(t).SelectByName(CommonFeatures)
			if err != nil {
				t.Fatal(err)
			}
			fv := append([]float64(nil), data.Instances[0].Features...)
			samples := make([][]float64, 32)
			for i := range samples {
				samples[i] = data.Instances[i%data.Len()].Features
			}
			verdicts := make([]Verdict, len(samples))
			scores := make([]float64, len(samples))
			if allocs := testing.AllocsPerRun(200, func() {
				if _, err := cd.Detect(fv); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("Detect allocates %.1f objects/op, want 0", allocs)
			}
			if allocs := testing.AllocsPerRun(200, func() {
				if _, err := cd.MalwareScore(fv); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("MalwareScore allocates %.1f objects/op, want 0", allocs)
			}
			if allocs := testing.AllocsPerRun(50, func() {
				if err := cd.DetectBatch(verdicts, samples); err != nil {
					t.Fatal(err)
				}
				if err := cd.MalwareScoreBatch(scores, samples); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("batch paths allocate %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// TestCompiledStage2Kind checks the compiled dispatch table mirrors the
// interpreted detector's per-class algorithm selection.
func TestCompiledStage2Kind(t *testing.T) {
	det, cd := compiledFixtures(t, false)
	for _, class := range workload.MalwareClasses() {
		want, _, err := det.Stage2Info(class)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cd.Stage2Kind(class)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: compiled kind %v, want %v", class, got, want)
		}
	}
	if _, err := cd.Stage2Kind(workload.Benign); err == nil {
		t.Fatal("benign stage-2 kind accepted")
	}
}
