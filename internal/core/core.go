// Package core implements 2SMaRT, the paper's two-stage run-time
// specialized hardware-assisted malware detector.
//
// Stage 1 is a multinomial logistic regression (MLR) over the four Common
// HPC features (branch instructions, cache references, branch misses, node
// stores) that predicts the application type: benign or one of the four
// malware classes. Stage 2 dispatches to a per-class specialized binary
// classifier — the algorithm that wins for that class (J48, JRip, MLP or
// OneR), trained only on benign-versus-that-class data with that class's
// feature set — optionally boosted with AdaBoost.M1 so that detectors
// restricted to the four run-time-available counter registers match the
// detection performance of 8- and 16-HPC detectors.
package core

import (
	"context"
	"errors"
	"fmt"

	"twosmart/internal/dataset"
	"twosmart/internal/ml"
	"twosmart/internal/ml/ensemble"
	"twosmart/internal/ml/linear"
	"twosmart/internal/ml/nn"
	"twosmart/internal/ml/rules"
	"twosmart/internal/ml/tree"
	"twosmart/internal/parallel"
	"twosmart/internal/telemetry"
	"twosmart/internal/workload"
)

// CommonFeatures are the paper's four Common HPC events (Table II): the
// events that survive feature reduction for every malware class, and the
// only events a 4-register machine can collect in a single run.
var CommonFeatures = []string{
	"branch-instructions",
	"cache-references",
	"branch-misses",
	"node-stores",
}

// paperCustomFeatures lists the four per-class Custom events of Table II,
// which together with the Common four form each class's 8-HPC feature set.
var paperCustomFeatures = map[workload.Class][]string{
	workload.Backdoor: {"branch-loads", "L1-icache-load-misses", "LLC-load-misses", "iTLB-load-misses"},
	workload.Trojan:   {"cache-misses", "L1-icache-load-misses", "LLC-load-misses", "iTLB-load-misses"},
	workload.Virus:    {"LLC-loads", "L1-dcache-loads", "L1-dcache-stores", "iTLB-load-misses"},
	workload.Rootkit:  {"cache-misses", "branch-loads", "LLC-load-misses", "L1-dcache-stores"},
}

// CustomFeatures returns the paper's 8-event feature set for a malware
// class: the 4 Common events followed by the class's 4 Custom events.
func CustomFeatures(class workload.Class) ([]string, error) {
	custom, ok := paperCustomFeatures[class]
	if !ok {
		return nil, fmt.Errorf("core: no custom feature set for class %v", class)
	}
	out := append([]string(nil), CommonFeatures...)
	return append(out, custom...), nil
}

// Kind enumerates the stage-2 classifier algorithms the paper evaluates.
type Kind int

// The four stage-2 algorithm families.
const (
	J48 Kind = iota
	JRip
	MLP
	OneR
)

// Kinds returns all stage-2 algorithm kinds in the paper's order.
func Kinds() []Kind { return []Kind{J48, JRip, MLP, OneR} }

var kindNames = [...]string{J48: "J48", JRip: "JRip", MLP: "MLP", OneR: "OneR"}

// String returns the WEKA-style algorithm name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindByName resolves an algorithm kind from its name.
func KindByName(name string) (Kind, bool) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// NewTrainer builds a trainer of the given kind with the repository's
// default hyperparameters.
func NewTrainer(k Kind, seed int64) ml.Trainer {
	switch k {
	case J48:
		return &tree.J48Trainer{}
	case JRip:
		return &rules.JRipTrainer{Seed: seed}
	case MLP:
		return &nn.MLPTrainer{Seed: seed}
	case OneR:
		return &rules.OneRTrainer{}
	default:
		panic(fmt.Sprintf("core: unknown classifier kind %d", k))
	}
}

// TrainConfig configures 2SMaRT training.
type TrainConfig struct {
	// Stage1Features are the events for the stage-1 MLR (default: the 4
	// Common features).
	Stage1Features []string
	// Stage2Features maps each malware class to its feature set
	// (default: the 4 Common features for every class — the run-time
	// configuration).
	Stage2Features map[workload.Class][]string
	// Stage2Kinds fixes the algorithm per class. Classes absent from
	// the map get the automatically selected winner: each candidate is
	// trained on 2/3 of the training data and validated on the rest,
	// and the best F-measure wins (the paper's "specialized" detector).
	Stage2Kinds map[workload.Class]Kind
	// Boost wraps every stage-2 classifier in AdaBoost.M1 with
	// BoostRounds rounds (default 10), the paper's Boosted-HMD.
	Boost       bool
	BoostRounds int
	// Seed drives all stochastic components.
	Seed int64
	// Telemetry, when non-nil, records training spans (train/stage1 and a
	// train/stage2/<class> span per specialized detector, each feeding a
	// latency histogram) and the per-class kind-selection counters
	// train_stage2_kind_total{class=...,kind=...}.
	Telemetry *telemetry.Registry
}

type stage2Model struct {
	kind     Kind
	model    ml.Classifier
	features []int // indices into the detector's input feature space
}

// Detector is a trained 2SMaRT model. Its Detect input is a feature vector
// in the same feature space it was trained on (normally the full 44-event
// vector, or any projection containing the features it uses).
type Detector struct {
	featureNames []string
	stage1       ml.Classifier
	stage1Feats  []int
	stage2       map[workload.Class]stage2Model
}

// Train fits a 2SMaRT detector on a 5-class dataset whose classes are
// indexed by workload.Class (benign = 0). It is TrainContext without
// cancellation.
func Train(d *dataset.Dataset, cfg TrainConfig) (*Detector, error) {
	return TrainContext(context.Background(), d, cfg)
}

// TrainContext is Train with cancellation. The four specialized stage-2
// detectors are independent, so they train concurrently on a bounded pool;
// each class's model depends only on the data and cfg.Seed, so the trained
// detector is identical to a serial run. Cancelling ctx aborts between
// per-class training steps and returns ctx's error.
func TrainContext(ctx context.Context, d *dataset.Dataset, cfg TrainConfig) (*Detector, error) {
	if d.Len() == 0 {
		return nil, errors.New("core: empty training set")
	}
	if d.NumClasses() != workload.NumClasses {
		return nil, fmt.Errorf("core: training set has %d classes, want %d", d.NumClasses(), workload.NumClasses)
	}
	stage1Names := cfg.Stage1Features
	if stage1Names == nil {
		stage1Names = CommonFeatures
	}

	det := &Detector{
		featureNames: append([]string(nil), d.FeatureNames...),
		stage2:       make(map[workload.Class]stage2Model),
	}

	// --- Stage 1: multiclass MLR on the stage-1 features.
	s1Span := cfg.Telemetry.StartSpan("train/stage1")
	s1Idx, err := featureIndices(d, stage1Names)
	if err != nil {
		return nil, err
	}
	s1Data, err := d.Select(s1Idx)
	if err != nil {
		return nil, err
	}
	mlrTrainer := &linear.MLRTrainer{Seed: cfg.Seed}
	stage1, err := mlrTrainer.Train(s1Data)
	if err != nil {
		return nil, fmt.Errorf("core: stage-1 MLR: %w", err)
	}
	det.stage1 = stage1
	det.stage1Feats = s1Idx
	s1Span.End()

	// --- Stage 2: one specialized binary detector per malware class; the
	// four train independently and concurrently.
	classes := workload.MalwareClasses()
	popts := parallel.Options{}
	if cfg.Telemetry.Enabled() {
		popts.Hook = telemetry.NewPoolHook(cfg.Telemetry, "train_stage2")
	}
	models, err := parallel.Map(ctx, len(classes), popts,
		func(ctx context.Context, i int) (stage2Model, error) {
			return trainClassDetector(ctx, d, cfg, classes[i])
		})
	if err != nil {
		return nil, err
	}
	for i, class := range classes {
		det.stage2[class] = models[i]
	}
	return det, nil
}

// trainClassDetector fits one class's specialized stage-2 detector.
func trainClassDetector(ctx context.Context, d *dataset.Dataset, cfg TrainConfig, class workload.Class) (stage2Model, error) {
	span := cfg.Telemetry.StartSpan("train/stage2/" + class.String())
	defer span.End()
	names := CommonFeatures
	if cfg.Stage2Features != nil && cfg.Stage2Features[class] != nil {
		names = cfg.Stage2Features[class]
	}
	idx, err := featureIndices(d, names)
	if err != nil {
		return stage2Model{}, fmt.Errorf("core: stage-2 %v: %w", class, err)
	}
	binary, err := BinaryTask(d, class)
	if err != nil {
		return stage2Model{}, err
	}
	binary, err = binary.Select(idx)
	if err != nil {
		return stage2Model{}, err
	}

	var kind Kind
	var model ml.Classifier
	if cfg.Stage2Kinds != nil {
		if k, ok := cfg.Stage2Kinds[class]; ok {
			kind = k
			model, err = trainStage2(k, binary, cfg)
			if err != nil {
				return stage2Model{}, fmt.Errorf("core: stage-2 %v (%v): %w", class, k, err)
			}
		}
	}
	if model == nil {
		kind, model, err = selectBest(ctx, binary, cfg)
		if err != nil {
			return stage2Model{}, fmt.Errorf("core: stage-2 %v selection: %w", class, err)
		}
	}
	name := telemetry.Label(telemetry.Label("train_stage2_kind_total", "class", class.String()), "kind", kind.String())
	cfg.Telemetry.Counter(name).Inc()
	return stage2Model{kind: kind, model: model, features: idx}, nil
}

// BinaryTask extracts the benign-versus-one-class binary dataset the
// specialized stage-2 detectors train on: label 0 = benign, 1 = class.
func BinaryTask(d *dataset.Dataset, class workload.Class) (*dataset.Dataset, error) {
	if !class.IsMalware() {
		return nil, fmt.Errorf("core: binary task for non-malware class %v", class)
	}
	return d.Relabel([]string{"benign", class.String()}, func(old int) int {
		switch workload.Class(old) {
		case workload.Benign:
			return 0
		case class:
			return 1
		default:
			return -1 // other malware classes are excluded
		}
	})
}

func trainStage2(k Kind, binary *dataset.Dataset, cfg TrainConfig) (ml.Classifier, error) {
	base := NewTrainer(k, cfg.Seed)
	if cfg.Boost {
		rounds := cfg.BoostRounds
		if rounds <= 0 {
			rounds = 10
		}
		return (&ensemble.AdaBoostTrainer{Base: base, Rounds: rounds, Seed: cfg.Seed}).Train(binary)
	}
	return base.Train(binary)
}

// selectBest trains every candidate kind on 2/3 of the binary data and
// keeps the best validation F-measure. Cancellation is observed between
// candidates.
func selectBest(ctx context.Context, binary *dataset.Dataset, cfg TrainConfig) (Kind, ml.Classifier, error) {
	fit, val, err := binary.Split(2.0/3, cfg.Seed+101)
	if err != nil {
		return 0, nil, err
	}
	bestKind := J48
	bestF := -1.0
	for _, k := range Kinds() {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		model, err := trainStage2(k, fit, cfg)
		if err != nil {
			continue // a failing candidate just loses the selection
		}
		ev, err := ml.EvaluateBinary(model, val)
		if err != nil {
			continue
		}
		if ev.F1 > bestF {
			bestF = ev.F1
			bestKind = k
		}
	}
	if bestF < 0 {
		return 0, nil, errors.New("no stage-2 candidate trained successfully")
	}
	// Refit the winner on all the binary data.
	model, err := trainStage2(bestKind, binary, cfg)
	if err != nil {
		return 0, nil, err
	}
	return bestKind, model, nil
}

func featureIndices(d *dataset.Dataset, names []string) ([]int, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		j := d.FeatureIndex(n)
		if j < 0 {
			return nil, fmt.Errorf("core: feature %q not in dataset", n)
		}
		idx[i] = j
	}
	return idx, nil
}

// CascadeStage marks which stage of the serving cascade produced a
// verdict. The zero value is the full two-stage path, so detectors that
// know nothing about the cascade produce correctly-marked verdicts for
// free.
type CascadeStage uint8

const (
	// StageFull means the full two-stage detector scored the sample.
	StageFull CascadeStage = iota
	// StageShortCircuit means the stage-0 anomaly envelope classified
	// the sample as clear benign and the full detector never ran.
	StageShortCircuit
)

// String names the stage for logs and trace output.
func (s CascadeStage) String() string {
	if s == StageShortCircuit {
		return "stage0-short-circuit"
	}
	return "full"
}

// Verdict is the detector's decision for one sample.
type Verdict struct {
	// PredictedClass is stage 1's application-type prediction.
	PredictedClass workload.Class
	// Malware is the final decision: stage 2's confirmation when stage 1
	// predicted a malware class, false when stage 1 predicted benign.
	Malware bool
	// Stage2Kind is the specialized algorithm consulted (valid when
	// stage 1 predicted a malware class).
	Stage2Kind Kind
	// Confidence is the consulted model's score for its decision.
	Confidence float64
	// Stage records which cascade stage decided: StageFull for the
	// two-stage detector, StageShortCircuit when the stage-0 envelope
	// short-circuited the sample as clear benign.
	Stage CascadeStage
}

// Detect classifies one sample (a feature vector in the training feature
// space). Stage 1's role is detector selection: the MLR picks the malware
// class with the highest probability, and that class's specialized binary
// classifier makes the final malware/benign decision (Fig 3's second stage
// produces the detection output). A stage-1 "benign" prediction therefore
// does not bypass stage 2 — the most probable malware class's detector is
// still consulted, so a routing error cannot silently drop a detection.
func (det *Detector) Detect(features []float64) (Verdict, error) {
	if len(features) != len(det.featureNames) {
		return Verdict{}, fmt.Errorf("core: sample has %d features, want %d", len(features), len(det.featureNames))
	}
	s1 := project(features, det.stage1Feats)
	scores := det.stage1.Scores(s1)
	routed := det.routeClass(scores)
	s2 := det.stage2[routed]
	s2Scores := s2.model.Scores(project(features, s2.features))
	malware := ml.Argmax(s2Scores) == ml.PositiveClass
	conf := s2Scores[ml.Argmax(s2Scores)]
	predicted := workload.Benign
	if malware {
		predicted = routed
	}
	return Verdict{
		PredictedClass: predicted,
		Malware:        malware,
		Stage2Kind:     s2.kind,
		Confidence:     conf,
	}, nil
}

// routeClass returns the malware class with the highest stage-1 probability
// (benign is not a routing target; it is a possible final verdict).
func (det *Detector) routeClass(scores []float64) workload.Class {
	best := workload.MalwareClasses()[0]
	for _, c := range workload.MalwareClasses() {
		if scores[c] > scores[best] {
			best = c
		}
	}
	return best
}

// MalwareScore returns a ranking score in [0,1] for "this sample is
// malware", combining stage-1 class probability and the stage-2 detector's
// score; used for ROC analysis of the end-to-end detector.
func (det *Detector) MalwareScore(features []float64) (float64, error) {
	if len(features) != len(det.featureNames) {
		return 0, fmt.Errorf("core: sample has %d features, want %d", len(features), len(det.featureNames))
	}
	s1 := project(features, det.stage1Feats)
	scores := det.stage1.Scores(s1)
	s2 := det.stage2[det.routeClass(scores)]
	s2Scores := s2.model.Scores(project(features, s2.features))
	total := s2Scores[0] + s2Scores[1]
	if total <= 0 {
		return 0.5, nil
	}
	return s2Scores[1] / total, nil
}

// Stage1Predict exposes the stage-1 class prediction alone (used by the
// single-stage-MLR comparison in Fig 5a).
func (det *Detector) Stage1Predict(features []float64) (workload.Class, error) {
	if len(features) != len(det.featureNames) {
		return 0, fmt.Errorf("core: sample has %d features, want %d", len(features), len(det.featureNames))
	}
	return workload.Class(ml.Argmax(det.stage1.Scores(project(features, det.stage1Feats)))), nil
}

// Stage2Info reports the algorithm kind and feature names used for a
// class's specialized detector.
func (det *Detector) Stage2Info(class workload.Class) (Kind, []string, error) {
	s2, ok := det.stage2[class]
	if !ok {
		return 0, nil, fmt.Errorf("core: no stage-2 detector for class %v", class)
	}
	names := make([]string, len(s2.features))
	for i, idx := range s2.features {
		names[i] = det.featureNames[idx]
	}
	return s2.kind, names, nil
}

// Stage2Model exposes a class's trained stage-2 classifier (used by the
// hardware cost model).
func (det *Detector) Stage2Model(class workload.Class) (ml.Classifier, error) {
	s2, ok := det.stage2[class]
	if !ok {
		return nil, fmt.Errorf("core: no stage-2 detector for class %v", class)
	}
	return s2.model, nil
}

// Stage1Model exposes the trained stage-1 MLR (used by the hardware cost
// model).
func (det *Detector) Stage1Model() ml.Classifier { return det.stage1 }

// FeatureNames returns the input feature space the detector expects.
func (det *Detector) FeatureNames() []string {
	return append([]string(nil), det.featureNames...)
}

// NumFeatures returns the input feature space width the detector
// expects, matching CompiledDetector.NumFeatures without the copy
// FeatureNames makes.
func (det *Detector) NumFeatures() int { return len(det.featureNames) }

func project(features []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = features[j]
	}
	return out
}
