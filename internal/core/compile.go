package core

import (
	"fmt"

	"twosmart/internal/ml"
	"twosmart/internal/workload"
)

// compiledStage2 is one malware class's lowered specialized detector.
type compiledStage2 struct {
	kind     Kind
	model    ml.Compiled
	features []int
}

// CompiledDetector is the allocation-free lowering of a trained Detector
// for the run-time hot path: stage 1 and every stage-2 specialized
// classifier are compiled (see ml.Compile), the per-class dispatch table is
// a dense array instead of a map, and all projection/score buffers are a
// preallocated scratch arena. The steady-state Detect, MalwareScore and
// batch paths perform zero heap allocations per sample.
//
// A CompiledDetector owns scratch space and is therefore NOT safe for
// concurrent use: compile one per goroutine (Detector.Compile is a cheap
// flattening pass; the monitor layer does this per tracked application).
// Input feature slices are only read during a call and never retained, so
// callers may reuse their buffers.
type CompiledDetector struct {
	numFeatures int
	stage1      ml.Compiled
	stage1Feats []int
	stage2      [workload.NumClasses]compiledStage2
	malware     []workload.Class // routing targets, precomputed

	s1In     []float64 // stage-1 projected features
	s1Scores []float64 // stage-1 class probabilities
	s2In     []float64 // stage-2 projected features (max width)
	s2Scores []float64 // stage-2 binary scores
}

// Compile lowers the detector into its allocation-free run-time form. The
// compiled detector is prediction-equivalent to the interpreted one (the
// randomized property test in this package verifies Detect, MalwareScore
// and the batch paths against their interpreted counterparts).
func (det *Detector) Compile() *CompiledDetector {
	cd := &CompiledDetector{
		numFeatures: len(det.featureNames),
		stage1:      ml.Compile(det.stage1),
		stage1Feats: append([]int(nil), det.stage1Feats...),
		malware:     workload.MalwareClasses(),
	}
	maxS2 := 0
	for class, s2 := range det.stage2 {
		cd.stage2[class] = compiledStage2{
			kind:     s2.kind,
			model:    ml.Compile(s2.model),
			features: append([]int(nil), s2.features...),
		}
		if len(s2.features) > maxS2 {
			maxS2 = len(s2.features)
		}
	}
	cd.s1In = make([]float64, len(cd.stage1Feats))
	cd.s1Scores = make([]float64, cd.stage1.NumClasses())
	cd.s2In = make([]float64, maxS2)
	cd.s2Scores = make([]float64, 2)
	return cd
}

// NumFeatures returns the input feature space width the detector expects.
func (cd *CompiledDetector) NumFeatures() int { return cd.numFeatures }

func projectInto(dst, features []float64, idx []int) {
	for i, j := range idx {
		dst[i] = features[j]
	}
}

// route runs stage 1 and the routed class's compiled stage-2 detector on
// the sample, returning the routed malware class and leaving the stage-2
// scores in cd.s2Scores.
func (cd *CompiledDetector) route(features []float64) workload.Class {
	projectInto(cd.s1In, features, cd.stage1Feats)
	cd.stage1.ScoresInto(cd.s1Scores, cd.s1In)
	best := cd.malware[0]
	for _, c := range cd.malware {
		if cd.s1Scores[c] > cd.s1Scores[best] {
			best = c
		}
	}
	s2 := &cd.stage2[best]
	projectInto(cd.s2In[:len(s2.features)], features, s2.features)
	s2.model.ScoresInto(cd.s2Scores, cd.s2In[:len(s2.features)])
	return best
}

// Detect classifies one sample exactly as Detector.Detect does, with zero
// heap allocations on the happy path.
func (cd *CompiledDetector) Detect(features []float64) (Verdict, error) {
	if len(features) != cd.numFeatures {
		return Verdict{}, fmt.Errorf("core: sample has %d features, want %d", len(features), cd.numFeatures)
	}
	routed := cd.route(features)
	best := ml.Argmax(cd.s2Scores)
	malware := best == ml.PositiveClass
	predicted := workload.Benign
	if malware {
		predicted = routed
	}
	return Verdict{
		PredictedClass: predicted,
		Malware:        malware,
		Stage2Kind:     cd.stage2[routed].kind,
		Confidence:     cd.s2Scores[best],
	}, nil
}

// MalwareScore returns the same ranking score as Detector.MalwareScore with
// zero heap allocations on the happy path.
func (cd *CompiledDetector) MalwareScore(features []float64) (float64, error) {
	if len(features) != cd.numFeatures {
		return 0, fmt.Errorf("core: sample has %d features, want %d", len(features), cd.numFeatures)
	}
	cd.route(features)
	total := cd.s2Scores[0] + cd.s2Scores[1]
	if total <= 0 {
		return 0.5, nil
	}
	return cd.s2Scores[1] / total, nil
}

// DetectBatch classifies samples[i] into dst[i] for every sample. dst and
// samples must have equal length. The call performs no heap allocations.
func (cd *CompiledDetector) DetectBatch(dst []Verdict, samples [][]float64) error {
	if len(dst) != len(samples) {
		return fmt.Errorf("core: DetectBatch dst has %d slots, want %d", len(dst), len(samples))
	}
	for i, fv := range samples {
		v, err := cd.Detect(fv)
		if err != nil {
			return fmt.Errorf("core: sample %d: %w", i, err)
		}
		dst[i] = v
	}
	return nil
}

// MalwareScoreBatch scores samples[i] into dst[i] for every sample. dst and
// samples must have equal length. The call performs no heap allocations.
func (cd *CompiledDetector) MalwareScoreBatch(dst []float64, samples [][]float64) error {
	if len(dst) != len(samples) {
		return fmt.Errorf("core: MalwareScoreBatch dst has %d slots, want %d", len(dst), len(samples))
	}
	for i, fv := range samples {
		s, err := cd.MalwareScore(fv)
		if err != nil {
			return fmt.Errorf("core: sample %d: %w", i, err)
		}
		dst[i] = s
	}
	return nil
}

// DetectScoredBatch classifies samples[i] into dst[i] and writes the
// normalized malware ranking score (the MalwareScore value) of samples[i]
// into scores[i], for every sample. dst, scores and samples must have
// equal length. Both outputs derive from a single stage-1 + stage-2
// evaluation per sample — the serving layer uses this to produce a full
// verdict and feed the monitor's smoothing state machine without scoring
// twice. The call performs no heap allocations.
func (cd *CompiledDetector) DetectScoredBatch(dst []Verdict, scores []float64, samples [][]float64) error {
	if len(dst) != len(samples) || len(scores) != len(samples) {
		return fmt.Errorf("core: DetectScoredBatch dst/scores have %d/%d slots, want %d", len(dst), len(scores), len(samples))
	}
	for i, fv := range samples {
		if len(fv) != cd.numFeatures {
			return fmt.Errorf("core: sample %d has %d features, want %d", i, len(fv), cd.numFeatures)
		}
		routed := cd.route(fv)
		best := ml.Argmax(cd.s2Scores)
		malware := best == ml.PositiveClass
		predicted := workload.Benign
		if malware {
			predicted = routed
		}
		dst[i] = Verdict{
			PredictedClass: predicted,
			Malware:        malware,
			Stage2Kind:     cd.stage2[routed].kind,
			Confidence:     cd.s2Scores[best],
		}
		if total := cd.s2Scores[0] + cd.s2Scores[1]; total > 0 {
			scores[i] = cd.s2Scores[1] / total
		} else {
			scores[i] = 0.5
		}
	}
	return nil
}

// Stage2Kind reports the compiled specialized detector's algorithm for a
// malware class (mirrors Detector.Stage2Info for the run-time form).
func (cd *CompiledDetector) Stage2Kind(class workload.Class) (Kind, error) {
	if !class.IsMalware() {
		return 0, fmt.Errorf("core: no stage-2 detector for class %v", class)
	}
	return cd.stage2[class].kind, nil
}
