package core

import (
	"encoding/json"
	"fmt"

	"twosmart/internal/persist"
	"twosmart/internal/workload"
)

type stage2DTO struct {
	Kind     string          `json:"kind"`
	Model    json.RawMessage `json:"model"`
	Features []int           `json:"features"`
}

type detectorDTO struct {
	FeatureNames []string             `json:"feature_names"`
	Stage1       json.RawMessage      `json:"stage1"`
	Stage1Feats  []int                `json:"stage1_features"`
	Stage2       map[string]stage2DTO `json:"stage2"`
}

// Marshal serialises the trained detector (both stages, all per-class
// models and the feature wiring) to JSON. The result round-trips through
// UnmarshalDetector.
func (det *Detector) Marshal() ([]byte, error) {
	s1, err := persist.MarshalClassifier(det.stage1)
	if err != nil {
		return nil, fmt.Errorf("core: serialising stage 1: %w", err)
	}
	dto := detectorDTO{
		FeatureNames: det.featureNames,
		Stage1:       s1,
		Stage1Feats:  det.stage1Feats,
		Stage2:       make(map[string]stage2DTO, len(det.stage2)),
	}
	for class, s2 := range det.stage2 {
		raw, err := persist.MarshalClassifier(s2.model)
		if err != nil {
			return nil, fmt.Errorf("core: serialising stage 2 for %v: %w", class, err)
		}
		dto.Stage2[class.String()] = stage2DTO{
			Kind:     s2.kind.String(),
			Model:    raw,
			Features: s2.features,
		}
	}
	return json.Marshal(dto)
}

// UnmarshalDetector reconstructs a detector serialised by Marshal.
func UnmarshalDetector(data []byte) (*Detector, error) {
	var dto detectorDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, fmt.Errorf("core: reading detector: %w", err)
	}
	if len(dto.FeatureNames) == 0 {
		return nil, fmt.Errorf("core: detector has no feature space")
	}
	stage1, err := persist.UnmarshalClassifier(dto.Stage1)
	if err != nil {
		return nil, fmt.Errorf("core: restoring stage 1: %w", err)
	}
	if err := checkIndices(dto.Stage1Feats, len(dto.FeatureNames)); err != nil {
		return nil, fmt.Errorf("core: stage-1 features: %w", err)
	}
	det := &Detector{
		featureNames: dto.FeatureNames,
		stage1:       stage1,
		stage1Feats:  dto.Stage1Feats,
		stage2:       make(map[workload.Class]stage2Model, len(dto.Stage2)),
	}
	for name, s2 := range dto.Stage2 {
		class, ok := workload.ClassByName(name)
		if !ok || !class.IsMalware() {
			return nil, fmt.Errorf("core: invalid stage-2 class %q", name)
		}
		kind, ok := KindByName(s2.Kind)
		if !ok {
			return nil, fmt.Errorf("core: invalid stage-2 kind %q", s2.Kind)
		}
		model, err := persist.UnmarshalClassifier(s2.Model)
		if err != nil {
			return nil, fmt.Errorf("core: restoring stage 2 for %s: %w", name, err)
		}
		if err := checkIndices(s2.Features, len(dto.FeatureNames)); err != nil {
			return nil, fmt.Errorf("core: stage-2 features for %s: %w", name, err)
		}
		det.stage2[class] = stage2Model{kind: kind, model: model, features: s2.Features}
	}
	for _, class := range workload.MalwareClasses() {
		if _, ok := det.stage2[class]; !ok {
			return nil, fmt.Errorf("core: detector missing stage-2 model for %v", class)
		}
	}
	return det, nil
}

func checkIndices(idx []int, width int) error {
	if len(idx) == 0 {
		return fmt.Errorf("no feature indices")
	}
	for _, j := range idx {
		if j < 0 || j >= width {
			return fmt.Errorf("index %d outside feature space of %d", j, width)
		}
	}
	return nil
}
