package core

import (
	"encoding/json"
	"testing"

	"twosmart/internal/workload"
)

func TestDetectorRoundTrip(t *testing.T) {
	d := testData(t)
	det, err := Train(d, TrainConfig{
		Stage2Kinds: map[workload.Class]Kind{
			workload.Virus: J48, workload.Trojan: OneR,
			workload.Backdoor: JRip, workload.Rootkit: MLP,
		},
		Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := det.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalDetector(data)
	if err != nil {
		t.Fatal(err)
	}

	for _, ins := range d.Instances[:100] {
		va, err := det.Detect(ins.Features)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := restored.Detect(ins.Features)
		if err != nil {
			t.Fatal(err)
		}
		if va != vb {
			t.Fatalf("verdicts differ across round trip: %+v vs %+v", va, vb)
		}
		sa, _ := det.MalwareScore(ins.Features)
		sb, _ := restored.MalwareScore(ins.Features)
		if sa != sb {
			t.Fatalf("scores differ across round trip: %v vs %v", sa, sb)
		}
	}
	// Stage-2 metadata survives.
	kind, feats, err := restored.Stage2Info(workload.Backdoor)
	if err != nil {
		t.Fatal(err)
	}
	if kind != JRip || len(feats) != 4 {
		t.Fatalf("stage-2 info lost: kind=%v feats=%v", kind, feats)
	}
}

func TestDetectorRoundTripBoosted(t *testing.T) {
	d := testData(t)
	det, err := Train(d, TrainConfig{
		Boost: true, BoostRounds: 4,
		Stage2Kinds: map[workload.Class]Kind{
			workload.Virus: J48, workload.Trojan: J48,
			workload.Backdoor: J48, workload.Rootkit: J48,
		},
		Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := det.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalDetector(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range d.Instances[:50] {
		va, _ := det.Detect(ins.Features)
		vb, _ := restored.Detect(ins.Features)
		if va != vb {
			t.Fatal("boosted verdicts differ across round trip")
		}
	}
}

func TestUnmarshalDetectorRejectsCorruptInput(t *testing.T) {
	if _, err := UnmarshalDetector([]byte("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := UnmarshalDetector([]byte(`{}`)); err == nil {
		t.Fatal("empty detector accepted")
	}

	// A valid detector with a stage-2 model removed must be rejected.
	d := testData(t)
	det, err := Train(d, TrainConfig{Seed: 23, Stage2Kinds: map[workload.Class]Kind{
		workload.Virus: OneR, workload.Trojan: OneR,
		workload.Backdoor: OneR, workload.Rootkit: OneR,
	}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := det.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var dto map[string]json.RawMessage
	if err := json.Unmarshal(data, &dto); err != nil {
		t.Fatal(err)
	}
	var stage2 map[string]json.RawMessage
	if err := json.Unmarshal(dto["stage2"], &stage2); err != nil {
		t.Fatal(err)
	}
	delete(stage2, "virus")
	dto["stage2"], _ = json.Marshal(stage2)
	corrupted, _ := json.Marshal(dto)
	if _, err := UnmarshalDetector(corrupted); err == nil {
		t.Fatal("detector missing a stage-2 model accepted")
	}

	// Out-of-range feature index.
	if err := json.Unmarshal(data, &dto); err != nil {
		t.Fatal(err)
	}
	dto["stage1_features"], _ = json.Marshal([]int{999})
	corrupted, _ = json.Marshal(dto)
	if _, err := UnmarshalDetector(corrupted); err == nil {
		t.Fatal("out-of-range feature index accepted")
	}
}
