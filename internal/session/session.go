// Package session is the reusable per-connection stream engine shared by
// the single-node serving tier (internal/serve, shard role) and the
// sharded gateway tier (internal/cluster). It owns everything about a
// connection's sample streams that does not depend on the transport or on
// what "processing" means:
//
//   - the bounded drop-oldest ingress ring with a feature-buffer free
//     list and per-stream shed accounting (the backpressure model from
//     DESIGN §10),
//   - the control queue that carries stream opens/closes outside the
//     sheddable data path,
//   - the worker loop that coalesces whatever accumulated since its last
//     round into adaptive micro-batches and fans processing out across
//     the touched streams on internal/parallel,
//   - stream-table bookkeeping: duplicate-id/duplicate-app rejection,
//     unknown-stream accounting, ordered open→process→close rounds.
//
// The transport supplies a Handler: the serve shard plugs in the Scoring
// handler from this package (compiled-detector epoch capture, tracker
// lifecycle, fused verdict+smoothing evaluation), while the cluster
// gateway plugs in a forwarder that relays each stream's samples to the
// backend shard the consistent-hash ring picked. Both tiers therefore
// run the identical hot path — one copy, pinned by the serve tests.
//
// Goroutine model (inherited from internal/serve and unchanged): one
// reader goroutine calls Push/Open/Close, one worker goroutine runs Run,
// and the handler's per-stream Process calls may execute concurrently
// across *different* streams within a round but never for the same
// stream. Handlers that share output state across streams (a frame
// writer) serialize it themselves.
package session

import (
	"context"
	"fmt"
	"sync"
	"time"

	"twosmart/internal/parallel"
	"twosmart/internal/telemetry"
)

// Batch is one stream's pending micro-batch, handed to Stream.Process.
// The slices are engine-owned and valid only for the duration of the
// call: Samples[i] (with client sequence Seqs[i], received at Ats[i]) is
// a recycled ring buffer that goes back on the free list as soon as
// Process returns. Handlers that retain samples must copy.
//
// Origins[i] is the upstream tier's unix-nano ingress stamp for the
// sample (0 when the agent talked to this process directly); DrainedAt
// is the single timestamp at which this round's ring drain happened.
// Both exist for trace hop attribution (internal/trace) and cost the
// unsampled path nothing beyond the slice append.
type Batch struct {
	Samples   [][]float64
	Seqs      []uint32
	Ats       []time.Time
	Origins   []int64
	DrainedAt time.Time
}

// Len returns the number of samples in the batch.
func (b Batch) Len() int { return len(b.Samples) }

// Stream is one open stream's processing state, produced by
// Handler.OpenStream and owned by the engine's worker goroutine.
type Stream interface {
	// Process handles one adaptive micro-batch in arrival order. An error
	// tears the whole session down (Run returns it).
	Process(b Batch) error
	// Close ends the stream; shed is how many of its queued samples the
	// ingress ring dropped under overload (they were never processed).
	Close(shed uint64) error
}

// Handler is the processing half a transport plugs into the engine.
// All methods run on the engine's worker goroutine.
type Handler interface {
	// OpenStream is called once per accepted stream open, after the
	// engine's duplicate-id and duplicate-app checks passed. An error
	// tears the session down.
	OpenStream(id uint32, app string) (Stream, error)
	// RoundEnd runs after every micro-batch round (including the final
	// drain round); transports flush their buffered output here so a
	// round's verdicts cost one syscall.
	RoundEnd() error
}

// RejectReason classifies per-stream protocol violations the engine
// handles without killing the session.
type RejectReason int

const (
	// RejectDupStream is an OpenStream for an id that is already open.
	RejectDupStream RejectReason = iota
	// RejectDupApp is an OpenStream for an app already streamed on this
	// session (app keys the per-stream monitor, so it must be unique).
	RejectDupApp
	// RejectUnknownClose is a CloseStream for an id that is not open.
	RejectUnknownClose
	// RejectUnknownSample is a queued sample for an id that is not open;
	// the sample is dropped and its buffer recycled.
	RejectUnknownSample
)

// String returns the reason's wire-log spelling.
func (r RejectReason) String() string {
	switch r {
	case RejectDupStream:
		return "duplicate stream"
	case RejectDupApp:
		return "duplicate app"
	case RejectUnknownClose:
		return "close of unopened stream"
	case RejectUnknownSample:
		return "sample for unopened stream"
	default:
		return fmt.Sprintf("reject(%d)", int(r))
	}
}

// Config configures one stream engine (one per connection).
type Config struct {
	// Handler supplies per-stream processing. Required.
	Handler Handler
	// QueueDepth bounds the ingress ring; beyond it the oldest queued
	// samples are shed (default 4096).
	QueueDepth int
	// Workers bounds the per-round processing fan-out across the
	// session's streams (default: one worker per touched stream, capped
	// by runtime.NumCPU via internal/parallel).
	Workers int
	// OnReject, when non-nil, observes per-stream protocol violations
	// (duplicate open, unknown close, sample for an unopened stream).
	// Called on the worker goroutine; app is empty when unknown.
	OnReject func(id uint32, app string, reason RejectReason)
	// BatchSize, when non-nil, observes every non-empty round's drained
	// sample count — the adaptive micro-batch size distribution.
	BatchSize telemetry.Histogram
}

func (c Config) fill() (Config, error) {
	if c.Handler == nil {
		return c, fmt.Errorf("session: nil handler")
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4096
	}
	if c.QueueDepth < 1 {
		return c, fmt.Errorf("session: queue depth %d below 1", c.QueueDepth)
	}
	if c.BatchSize == nil {
		c.BatchSize = telemetry.NopHistogram
	}
	return c, nil
}

// ctrl is a reader→worker control message (stream open/close), routed
// through a queue separate from the sample ring so load-shedding can
// never drop one.
type ctrl struct {
	open   bool
	stream uint32
	app    string
}

// entry is the engine's bookkeeping for one open stream: the handler's
// state plus the reusable per-round micro-batch slices.
type entry struct {
	id  uint32
	app string
	h   Stream

	// pending micro-batch, refilled each round; samples hold ring-owned
	// buffers that are recycled after Process returns.
	samples [][]float64
	seqs    []uint32
	ats     []time.Time
	origins []int64
}

// Engine is one connection's stream pump. The reader goroutine feeds it
// (Push, Open, Close); the worker goroutine drives it (Run).
type Engine struct {
	cfg Config
	q   *ring

	kick chan struct{} // worker wake-up, capacity 1

	ctrlMu sync.Mutex
	ctrls  []ctrl

	streams map[uint32]*entry // worker-owned after construction
	drain   []item            // reusable drain buffer
	touched []*entry          // reusable per-round stream list
}

// New validates the configuration and builds an engine.
func New(cfg Config) (*Engine, error) {
	filled, err := cfg.fill()
	if err != nil {
		return nil, err
	}
	return &Engine{
		cfg:     filled,
		q:       newRing(filled.QueueDepth),
		kick:    make(chan struct{}, 1),
		streams: make(map[uint32]*entry),
	}, nil
}

// Push copies one sample into the ingress ring, waking the worker. It
// reports whether the ring shed its oldest queued sample to make room —
// the caller owns the shed telemetry. origin is the upstream tier's
// unix-nano ingress stamp (wire.Sample.IngressNanos; 0 for direct
// agents), threaded through to Batch.Origins for trace attribution.
// Safe to call from the reader goroutine concurrently with Run.
func (e *Engine) Push(stream, seq uint32, origin int64, at time.Time, features []float64) (shed bool) {
	shed = e.q.push(stream, seq, origin, at, features)
	e.wake()
	return shed
}

// Open enqueues a stream-open control message. Unlike samples, control
// messages are never shed.
func (e *Engine) Open(stream uint32, app string) {
	e.enqueueCtrl(ctrl{open: true, stream: stream, app: app})
}

// Close enqueues a stream-close control message.
func (e *Engine) Close(stream uint32) {
	e.enqueueCtrl(ctrl{stream: stream})
}

func (e *Engine) enqueueCtrl(m ctrl) {
	e.ctrlMu.Lock()
	e.ctrls = append(e.ctrls, m)
	e.ctrlMu.Unlock()
	e.wake()
}

func (e *Engine) wake() {
	select {
	case e.kick <- struct{}{}:
	default:
	}
}

// ShedCounts returns the ring's total and per-stream shed-sample counts.
func (e *Engine) ShedCounts(stream uint32) (total, forStream uint64) {
	return e.q.shedCounts(stream)
}

// Run is the worker loop: every wake-up it processes one adaptive
// micro-batch round; when done closes it runs a final round over
// whatever is still queued (the graceful-drain flush) and returns. A
// handler error aborts the loop and is returned; the transport tears the
// connection down.
func (e *Engine) Run(done <-chan struct{}) error {
	for {
		select {
		case <-e.kick:
			if err := e.round(); err != nil {
				return err
			}
		case <-done:
			return e.round()
		}
	}
}

// round runs one micro-batch round: apply stream opens, drain the ring,
// fan processing out across the touched streams, recycle the buffers,
// then apply stream closes and let the handler flush.
func (e *Engine) round() error {
	e.ctrlMu.Lock()
	ctrls := e.ctrls
	e.ctrls = nil
	e.ctrlMu.Unlock()

	for _, m := range ctrls {
		if m.open {
			if err := e.openStream(m.stream, m.app); err != nil {
				return err
			}
		}
	}

	e.drain = e.q.drainInto(e.drain[:0])
	if len(e.drain) > 0 {
		drainedAt := time.Now()
		e.cfg.BatchSize.Observe(float64(len(e.drain)))
		e.touched = e.touched[:0]
		for i := range e.drain {
			it := &e.drain[i]
			st := e.streams[it.stream]
			if st == nil {
				e.reject(it.stream, "", RejectUnknownSample)
				e.q.recycle(it.features)
				continue
			}
			if len(st.samples) == 0 {
				e.touched = append(e.touched, st)
			}
			st.samples = append(st.samples, it.features)
			st.seqs = append(st.seqs, it.seq)
			st.ats = append(st.ats, it.at)
			st.origins = append(st.origins, it.origin)
		}
		// Per-stream fan-out: each stream's processing state is
		// goroutine-isolated (see the package doc), so streams process
		// concurrently; only the transport's output path is shared and
		// handler-guarded. The fan-out deliberately ignores cancellation:
		// a drain must process and flush everything already queued.
		err := parallel.ForEach(context.Background(), len(e.touched), parallel.Options{Workers: e.cfg.Workers},
			func(_ context.Context, i int) error {
				st := e.touched[i]
				return st.h.Process(Batch{Samples: st.samples, Seqs: st.seqs, Ats: st.ats, Origins: st.origins, DrainedAt: drainedAt})
			})
		for _, st := range e.touched {
			for _, buf := range st.samples {
				e.q.recycle(buf)
			}
			st.samples = st.samples[:0]
			st.seqs = st.seqs[:0]
			st.ats = st.ats[:0]
			st.origins = st.origins[:0]
		}
		if err != nil {
			return err
		}
	}

	for _, m := range ctrls {
		if !m.open {
			if err := e.closeStream(m.stream); err != nil {
				return err
			}
		}
	}
	return e.cfg.Handler.RoundEnd()
}

func (e *Engine) reject(id uint32, app string, reason RejectReason) {
	if e.cfg.OnReject != nil {
		e.cfg.OnReject(id, app, reason)
	}
}

func (e *Engine) openStream(id uint32, app string) error {
	if _, dup := e.streams[id]; dup {
		e.reject(id, app, RejectDupStream)
		return nil
	}
	for _, st := range e.streams {
		if st.app == app {
			e.reject(id, app, RejectDupApp)
			return nil
		}
	}
	h, err := e.cfg.Handler.OpenStream(id, app)
	if err != nil {
		return err
	}
	e.streams[id] = &entry{id: id, app: app, h: h}
	return nil
}

func (e *Engine) closeStream(id uint32) error {
	st, ok := e.streams[id]
	if !ok {
		e.reject(id, "", RejectUnknownClose)
		return nil
	}
	delete(e.streams, id)
	_, shed := e.q.shedCounts(id)
	return st.h.Close(shed)
}
