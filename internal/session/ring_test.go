package session

import (
	"sync"
	"testing"
	"time"
)

func TestRingDropOldest(t *testing.T) {
	r := newRing(3)
	now := time.Now()
	for seq := uint32(0); seq < 5; seq++ {
		shed := r.push(1, seq, 0, now, []float64{float64(seq)})
		if want := seq >= 3; shed != want {
			t.Fatalf("push %d: shed=%v, want %v", seq, shed, want)
		}
	}
	got := r.drainInto(nil)
	if len(got) != 3 {
		t.Fatalf("drained %d items, want 3", len(got))
	}
	// Seqs 0 and 1 were shed; the three newest survive in order.
	for i, it := range got {
		if want := uint32(i + 2); it.seq != want {
			t.Fatalf("item %d: seq %d, want %d", i, it.seq, want)
		}
		if it.features[0] != float64(it.seq) {
			t.Fatalf("item %d: features %v do not match seq %d", i, it.features, it.seq)
		}
	}
	total, forStream := r.shedCounts(1)
	if total != 2 || forStream != 2 {
		t.Fatalf("shedCounts = (%d, %d), want (2, 2)", total, forStream)
	}
	if _, other := r.shedCounts(2); other != 0 {
		t.Fatalf("stream 2 shed count = %d, want 0", other)
	}
}

func TestRingShedCountsPerStream(t *testing.T) {
	r := newRing(1)
	now := time.Now()
	r.push(1, 0, 0, now, []float64{0})
	r.push(2, 0, 0, now, []float64{0}) // sheds stream 1's sample
	r.push(2, 1, 0, now, []float64{0}) // sheds stream 2's
	total, s1 := r.shedCounts(1)
	_, s2 := r.shedCounts(2)
	if total != 2 || s1 != 1 || s2 != 1 {
		t.Fatalf("total=%d s1=%d s2=%d, want 2/1/1", total, s1, s2)
	}
}

// TestRingRecycles pins the steady-state allocation story: once warm, the
// push→drain→recycle cycle reuses feature buffers instead of allocating.
func TestRingRecycles(t *testing.T) {
	r := newRing(4)
	now := time.Now()
	fv := []float64{1, 2, 3, 4}
	var dst []item
	warm := func() {
		for seq := uint32(0); seq < 4; seq++ {
			r.push(1, seq, 0, now, fv)
		}
		dst = r.drainInto(dst[:0])
		for _, it := range dst {
			r.recycle(it.features)
		}
	}
	warm()
	if allocs := testing.AllocsPerRun(50, warm); allocs > 0 {
		t.Fatalf("warm push/drain/recycle cycle allocates %.1f times, want 0", allocs)
	}
	// Pushing a copy must not alias the caller's slice.
	r.push(1, 0, 0, now, fv)
	fv[0] = 99
	if got := r.drainInto(nil)[0].features[0]; got != 1 {
		t.Fatalf("ring aliased the caller's buffer: got %v", got)
	}
}

// TestRingConcurrentProducerConsumer hammers the ring with parallel
// producers against a draining consumer (the real reader/worker
// topology, multiplied) and checks, under -race, that the free-list
// recycling never hands two live items the same buffer and that the shed
// accounting balances: every pushed sample is either consumed intact or
// counted shed, per stream.
func TestRingConcurrentProducerConsumer(t *testing.T) {
	const producers, perProducer = 4, 5000
	r := newRing(64)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(stream uint32) {
			defer wg.Done()
			for seq := uint32(0); seq < perProducer; seq++ {
				// Encode (stream, seq) into the payload so the consumer can
				// detect cross-item buffer corruption.
				r.push(stream, seq, 0, time.Time{}, []float64{float64(stream), float64(seq), 7})
			}
		}(uint32(p))
	}
	producersDone := make(chan struct{})
	go func() { wg.Wait(); close(producersDone) }()

	consumedBy := make(map[uint32]uint64, producers)
	var items []item
	consume := func() {
		items = r.drainInto(items[:0])
		for _, it := range items {
			if len(it.features) != 3 || it.features[0] != float64(it.stream) ||
				it.features[1] != float64(it.seq) || it.features[2] != 7 {
				t.Errorf("stream %d seq %d: corrupted payload %v (free-list buffer shared?)",
					it.stream, it.seq, it.features)
			}
			consumedBy[it.stream]++
			r.recycle(it.features)
		}
	}
	running := true
	for running {
		select {
		case <-producersDone:
			running = false
		default:
		}
		consume()
	}
	consume() // final drain: nothing is in flight anymore

	for p := uint32(0); p < producers; p++ {
		_, shed := r.shedCounts(p)
		if got := consumedBy[p] + shed; got != perProducer {
			t.Fatalf("stream %d: consumed %d + shed %d = %d, want %d",
				p, consumedBy[p], shed, got, perProducer)
		}
	}
	total, _ := r.shedCounts(0)
	var per uint64
	for p := uint32(0); p < producers; p++ {
		_, shed := r.shedCounts(p)
		per += shed
	}
	if total != per {
		t.Fatalf("total shed %d != sum of per-stream sheds %d", total, per)
	}
}
