package session

import (
	"sync"
	"time"
)

// item is one queued ingress sample: which stream it belongs to, the
// client's sequence number, the upstream-tier ingress stamp (unix nanos
// from the gateway, 0 when the agent sent directly), the local ingress
// timestamp (for the end-to-end verdict latency histogram) and the
// feature vector, copied into a ring-owned buffer that is recycled once
// the sample is scored or shed.
type item struct {
	stream   uint32
	seq      uint32
	origin   int64
	at       time.Time
	features []float64
}

// ring is a session's bounded ingress queue with explicit load-shedding:
// pushing into a full ring drops the *oldest* queued sample (the one
// whose 10 ms-period data is most stale and least worth scoring late)
// rather than blocking the reader or buffering without bound. Shed
// samples are counted in total and per stream so the transport can
// export shed counters and report per-stream shed counts in
// StreamSummary frames. Feature buffers cycle through an internal free
// list, so the steady state allocates nothing.
type ring struct {
	mu      sync.Mutex
	buf     []item // fixed capacity, used as a circular queue
	head    int
	n       int
	free    [][]float64
	shedAll uint64
	shedBy  map[uint32]uint64
}

func newRing(depth int) *ring {
	return &ring{
		buf:    make([]item, depth),
		free:   make([][]float64, 0, depth+1),
		shedBy: make(map[uint32]uint64),
	}
}

// grab returns a feature buffer of length n, reusing a recycled one when
// possible. Caller must hold r.mu.
func (r *ring) grab(n int) []float64 {
	if k := len(r.free); k > 0 {
		b := r.free[k-1]
		r.free = r.free[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float64, n)
}

// push copies features into the queue. When the ring is full it sheds the
// oldest queued sample first and reports shed=true.
func (r *ring) push(stream, seq uint32, origin int64, at time.Time, features []float64) (shed bool) {
	r.mu.Lock()
	if r.n == len(r.buf) {
		oldest := &r.buf[r.head]
		r.shedAll++
		r.shedBy[oldest.stream]++
		r.free = append(r.free, oldest.features)
		oldest.features = nil
		r.head = (r.head + 1) % len(r.buf)
		r.n--
		shed = true
	}
	slot := &r.buf[(r.head+r.n)%len(r.buf)]
	buf := r.grab(len(features))
	copy(buf, features)
	*slot = item{stream: stream, seq: seq, origin: origin, at: at, features: buf}
	r.n++
	r.mu.Unlock()
	return shed
}

// drainInto appends every queued item to dst and empties the ring. The
// items' feature buffers are owned by the caller until handed back via
// recycle.
func (r *ring) drainInto(dst []item) []item {
	r.mu.Lock()
	for i := 0; i < r.n; i++ {
		slot := &r.buf[(r.head+i)%len(r.buf)]
		dst = append(dst, *slot)
		slot.features = nil
	}
	r.head, r.n = 0, 0
	r.mu.Unlock()
	return dst
}

// recycle hands a drained item's feature buffer back for reuse.
func (r *ring) recycle(buf []float64) {
	if buf == nil {
		return
	}
	r.mu.Lock()
	r.free = append(r.free, buf)
	r.mu.Unlock()
}

// shedCounts returns the total and the given stream's shed-sample counts.
func (r *ring) shedCounts(stream uint32) (total, forStream uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shedAll, r.shedBy[stream]
}
