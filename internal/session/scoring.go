package session

import (
	"fmt"
	"sync"
	"time"

	"twosmart/internal/anomaly"
	"twosmart/internal/core"
	"twosmart/internal/drift"
	"twosmart/internal/monitor"
	"twosmart/internal/telemetry"
	"twosmart/internal/trace"
	"twosmart/internal/workload"
)

// Generation is one servable model generation as the scoring handler
// binds it: the trained detector, its registry version, the optional
// drift monitor that observes every sample scored under it, and the
// optional stage-0 cascade. The Source callback returns the generation
// active *right now*; each stream captures the generation at open time
// (the hot-swap epoch model from DESIGN §11) and keeps it for life.
type Generation struct {
	Detector *core.Detector
	Version  int
	Drift    *drift.Monitor
	// Cascade, when non-nil, is the compiled stage-0 anomaly envelope:
	// samples scoring <= CascadeThreshold short-circuit with a benign
	// verdict (Stage = core.StageShortCircuit) and never reach the full
	// detector. Must cover the detector's exact feature width — the
	// caller's invariant (serve validates at model bind/swap time).
	Cascade *anomaly.Compiled
	// CascadeThreshold is the effective short-circuit threshold for this
	// generation (the envelope's calibrated default or an operator
	// override, already resolved by the caller).
	CascadeThreshold float64
}

// Emitter receives the scoring handler's output. Methods are called on
// the engine's worker goroutines — concurrently across streams, in order
// within one stream — so implementations serialize their shared output
// path (the serve transport holds its frame-writer mutex per chunk).
type Emitter interface {
	// Verdicts delivers one scored chunk for stream id, bound to model
	// epoch version: parallel slices where verdicts[i]/scores[i]/events[i]
	// belong to the sample with client sequence seqs[i] received at
	// ats[i]. The slices are engine-owned and valid only during the call.
	Verdicts(id uint32, version int, seqs []uint32, ats []time.Time,
		verdicts []core.Verdict, scores []float64, events []monitor.Event) error
	// Summary delivers the closing account of a stream: the monitor's
	// session summary plus how many of the stream's samples the ingress
	// ring shed.
	Summary(id uint32, version int, sum monitor.Summary, shed uint64) error
	// Flush pushes buffered output to the transport; called once per
	// engine round (RoundEnd).
	Flush() error
}

// TapChunk is one scored chunk as handed to ScoringConfig.Tap: the
// stream's identity and model epoch plus parallel slices where
// Samples[i]/Verdicts[i]/Scores[i]/Events[i] belong to the sample
// received at Ats[i]. All slices are engine-owned and valid only during
// the Tap call — consumers copy what they keep.
type TapChunk struct {
	App      string
	Stream   uint32
	Version  int
	Ats      []time.Time
	Samples  [][]float64
	Verdicts []core.Verdict
	Scores   []float64
	Events   []monitor.Event
}

// ScoringConfig configures a Scoring handler (one per connection).
type ScoringConfig struct {
	// Source returns the model generation new streams should bind.
	// Required. Called once per stream open, on the worker goroutine.
	Source func() Generation
	// Emit receives verdicts, summaries and flushes. Required.
	Emit Emitter
	// Monitor tunes the per-stream smoothing and alarm hysteresis.
	Monitor monitor.Config
	// MaxBatch caps how many samples one stream scores per fused
	// DetectScoredBatch call inside a round (default 512).
	MaxBatch int
	// Tap, when non-nil, observes every scored chunk after its verdicts
	// are computed — the shadow-scoring and sample-log hook. The chunk's
	// slices are engine-owned and valid only during the call.
	Tap func(TapChunk)
	// Tracer, when non-nil, samples scored chunks into end-to-end trace
	// records with per-hop attribution (gateway → ring wait → assembly →
	// score → emit). The unsampled path costs one atomic add per chunk.
	Tracer *trace.Tracer
	// Latency, when non-nil, receives a histogram exemplar (the traced
	// sample's end-to-end seconds keyed by trace ID) for every sampled
	// trace. The serve transport passes its verdict-latency histogram so
	// /metrics p99s link back to /debug/traces records.
	Latency telemetry.Histogram
	// Telemetry, when non-nil, receives the cascade_* metric families
	// (short-circuit / pass-through counts, per-stage nanos and sample
	// counts, plus per-app splits). Only touched on streams whose
	// generation carries a cascade, so a no-cascade server exposes no
	// cascade families at all.
	Telemetry *telemetry.Registry
	// Hook, when non-nil (tests only), runs before every per-stream
	// scoring round; a slow hook makes load-shedding deterministic.
	Hook func()
}

// Scoring is the shard-role Handler: it owns the connection's
// monitor.Tracker, captures each stream's model epoch at open time
// (compiling that generation's detector), and scores every micro-batch
// through the fused allocation-free path — one evaluation per sample for
// both its verdict and its smoothed-alarm update.
type Scoring struct {
	cfg ScoringConfig
	tr  *monitor.Tracker

	// cascade instruments, created on the first stream whose generation
	// carries a cascade — a server that never runs one exposes no
	// cascade_* families at all.
	cmOnce sync.Once
	cm     *cascadeMetrics
}

// cascadeInstruments returns the shared cascade_* instruments, creating
// them on first use.
func (s *Scoring) cascadeInstruments() *cascadeMetrics {
	s.cmOnce.Do(func() {
		cm := newCascadeMetrics(s.cfg.Telemetry)
		s.cm = &cm
	})
	return s.cm
}

// cascadeMetrics caches the shared cascade_* instruments so the hot path
// never formats a metric name. All fields come from a *telemetry.Registry
// (nil registry yields valid no-op instruments) but are only incremented
// on streams that actually run a cascade.
type cascadeMetrics struct {
	short         telemetry.Counter // samples short-circuited by stage 0
	pass          telemetry.Counter // samples passed through to the full detector
	stage0Nanos   telemetry.Counter // wall nanos spent in the stage-0 envelope pass
	stage0Samples telemetry.Counter // samples the stage-0 pass scored
	stage1Nanos   telemetry.Counter // wall nanos spent in the full-detector pass
	stage1Samples telemetry.Counter // samples the full detector scored
}

func newCascadeMetrics(reg *telemetry.Registry) cascadeMetrics {
	return cascadeMetrics{
		short:         reg.Counter("cascade_short_total"),
		pass:          reg.Counter("cascade_pass_total"),
		stage0Nanos:   reg.Counter("cascade_stage0_nanos_total"),
		stage0Samples: reg.Counter("cascade_stage0_samples_total"),
		stage1Nanos:   reg.Counter("cascade_stage1_nanos_total"),
		stage1Samples: reg.Counter("cascade_stage1_samples_total"),
	}
}

// NewScoring validates the configuration and builds the handler.
func NewScoring(cfg ScoringConfig) (*Scoring, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("session: nil generation source")
	}
	if cfg.Emit == nil {
		return nil, fmt.Errorf("session: nil emitter")
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 512
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("session: max batch %d below 1", cfg.MaxBatch)
	}
	if cfg.Latency == nil {
		cfg.Latency = telemetry.NopHistogram
	}
	tr, err := monitor.NewTrackerFactory(func() monitor.Scorer {
		return cfg.Source().Detector.Compile()
	}, cfg.Monitor)
	if err != nil {
		return nil, err
	}
	return &Scoring{cfg: cfg, tr: tr}, nil
}

// Tracker exposes the connection's tracker (per-stream monitors and
// session summaries).
func (s *Scoring) Tracker() *monitor.Tracker { return s.tr }

// OpenStream captures the stream's model epoch: it compiles the
// generation that is active right now and binds the app's monitor to
// that same instance. A swap after this point only affects streams
// opened later.
func (s *Scoring) OpenStream(id uint32, app string) (Stream, error) {
	g := s.cfg.Source()
	det := g.Detector.Compile()
	if !s.tr.OpenWith(app, det) {
		// The app key is already tracked (unreachable after the engine's
		// dup checks); reuse the tracker-owned scorer so stream and
		// monitor agree.
		var ok bool
		det, ok = s.tr.ScorerFor(app).(*core.CompiledDetector)
		if !ok {
			return nil, fmt.Errorf("session: tracker scorer for %q is %T, want *core.CompiledDetector", app, s.tr.ScorerFor(app))
		}
	}
	st := &scoredStream{s: s, id: id, app: app, det: det, version: g.Version, drft: g.Drift}
	if g.Cascade != nil {
		st.env = g.Cascade
		st.threshold = g.CascadeThreshold
		st.cm = s.cascadeInstruments()
		st.appShort = s.cfg.Telemetry.Counter(telemetry.Label("cascade_app_short_total", "app", app))
		st.appPass = s.cfg.Telemetry.Counter(telemetry.Label("cascade_app_pass_total", "app", app))
	}
	return st, nil
}

// RoundEnd flushes the emitter's buffered output.
func (s *Scoring) RoundEnd() error { return s.cfg.Emit.Flush() }

// scoredStream is one (connection, app) stream: its compiled detector
// (owned by the tracker's per-app monitor; see monitor.Tracker.OpenWith)
// plus the reusable scoring arenas. A stream is only ever touched by its
// engine's worker goroutines, one round at a time.
//
// det, version and drft are the stream's model epoch, captured from the
// active generation in OpenStream. A hot swap that lands mid-stream does
// not change them: samples already queued and samples still arriving on
// this stream score on the epoch's detector, and the Summary reports the
// epoch's version.
type scoredStream struct {
	s       *Scoring
	id      uint32
	app     string
	det     *core.CompiledDetector
	version int
	drft    *drift.Monitor

	// stage-0 cascade, captured with the epoch (nil = disabled): the
	// compiled envelope, the effective threshold, and this app's
	// short/pass counters.
	env       *anomaly.Compiled
	threshold float64
	cm        *cascadeMetrics
	appShort  telemetry.Counter
	appPass   telemetry.Counter

	// reusable scoring arenas, grown to the largest micro-batch seen
	verdicts []core.Verdict
	scores   []float64
	events   []monitor.Event

	// cascade pass-through scatter/gather arenas: indices of samples the
	// envelope passed onward, their gathered feature rows, and the
	// verdict/score slots the full detector writes before the scatter
	// back into the chunk arenas.
	passIdx      []int
	passSamples  [][]float64
	passVerdicts []core.Verdict
	passScores   []float64
}

// Process scores one pending micro-batch in MaxBatch chunks through the
// fused compiled path and emits the verdict chunks.
func (st *scoredStream) Process(b Batch) error {
	s := st.s
	if s.cfg.Hook != nil {
		s.cfg.Hook()
	}
	pending := b.Len()
	if cap(st.verdicts) < pending {
		st.verdicts = make([]core.Verdict, pending)
		st.scores = make([]float64, pending)
		st.events = make([]monitor.Event, pending)
	}
	for off := 0; off < pending; off += s.cfg.MaxBatch {
		end := off + s.cfg.MaxBatch
		if end > pending {
			end = pending
		}
		n := end - off
		// One sampling decision per chunk: a single atomic add when not
		// chosen, three time.Now calls bracketing score and emit when it is.
		// A cascade chunk is always bracketed — the per-stage cost model is
		// the feature — at two extra time.Now calls amortized over the chunk.
		traceIdx, traceID, traced := s.cfg.Tracer.SampleBatch(n)
		var scoreStart, stage0End time.Time
		verdicts := st.verdicts[:n]
		scores := st.scores[:n]
		events := st.events[:n]
		if st.env != nil {
			scoreStart = time.Now()
			var err error
			stage0End, err = st.cascadeChunk(verdicts, scores, b.Samples[off:end], scoreStart)
			if err != nil {
				return err
			}
		} else {
			if traced {
				scoreStart = time.Now()
			}
			if err := st.det.DetectScoredBatch(verdicts, scores, b.Samples[off:end]); err != nil {
				return err
			}
		}
		if err := s.tr.ObserveScoredBatch(st.app, events, scores); err != nil {
			return err
		}
		if st.drft != nil {
			if err := st.drft.ObserveBatch(b.Samples[off:end]); err != nil {
				return err
			}
		}
		if s.cfg.Tap != nil {
			s.cfg.Tap(TapChunk{
				App:      st.app,
				Stream:   st.id,
				Version:  st.version,
				Ats:      b.Ats[off:end],
				Samples:  b.Samples[off:end],
				Verdicts: verdicts,
				Scores:   scores,
				Events:   events,
			})
		}
		var scoreEnd time.Time
		if traced {
			scoreEnd = time.Now()
		}
		if err := s.cfg.Emit.Verdicts(st.id, st.version, b.Seqs[off:end], b.Ats[off:end], verdicts, scores, events); err != nil {
			return err
		}
		if traced {
			st.capture(b, off+traceIdx, traceID, scoreStart, stage0End, scoreEnd)
		}
	}
	return nil
}

// cascadeChunk runs the stage-0 envelope over one chunk: samples inside
// the envelope (score <= threshold) get a benign short-circuit verdict in
// place; the rest are gathered, scored through the fused full-detector
// path, and scattered back. Returns the stage-0/stage-1 boundary
// timestamp for trace attribution. Verdict and malware-score slots for
// short-circuited samples are written directly (score 0: the envelope
// decided "clear benign", and the stream's EWMA smoothing should see
// exactly that evidence).
func (st *scoredStream) cascadeChunk(verdicts []core.Verdict, scores []float64, samples [][]float64, stage0Start time.Time) (time.Time, error) {
	st.passIdx = st.passIdx[:0]
	st.passSamples = st.passSamples[:0]
	for i, fv := range samples {
		if st.env.Score(fv) <= st.threshold {
			verdicts[i] = core.Verdict{
				PredictedClass: workload.Benign,
				Confidence:     1,
				Stage:          core.StageShortCircuit,
			}
			scores[i] = 0
		} else {
			st.passIdx = append(st.passIdx, i)
			st.passSamples = append(st.passSamples, fv)
		}
	}
	stage0End := time.Now()
	p := len(st.passIdx)
	if p > 0 {
		if cap(st.passVerdicts) < p {
			st.passVerdicts = make([]core.Verdict, len(samples))
			st.passScores = make([]float64, len(samples))
		}
		pv := st.passVerdicts[:p]
		ps := st.passScores[:p]
		if err := st.det.DetectScoredBatch(pv, ps, st.passSamples); err != nil {
			return stage0End, err
		}
		for j, i := range st.passIdx {
			verdicts[i] = pv[j]
			scores[i] = ps[j]
		}
	}
	stage1End := time.Now()

	cm := st.cm
	n := len(samples)
	cm.short.Add(uint64(n - p))
	cm.pass.Add(uint64(p))
	st.appShort.Add(uint64(n - p))
	st.appPass.Add(uint64(p))
	cm.stage0Nanos.Add(uint64(max64(stage0End.Sub(stage0Start).Nanoseconds(), 0)))
	cm.stage0Samples.Add(uint64(n))
	if p > 0 {
		cm.stage1Nanos.Add(uint64(max64(stage1End.Sub(stage0End).Nanoseconds(), 0)))
		cm.stage1Samples.Add(uint64(p))
	}
	return stage0End, nil
}

// capture assembles the end-to-end trace record for the sampled sample
// at batch index i and publishes it. The hops telescope over one
// interval — gateway ingress (or local ingress, for direct agents) →
// verdict handed to the emitter — so their sum equals TotalNanos by
// construction; only HopGateway crosses a process boundary and relies on
// wall clocks (clamped at zero against skew), every other hop is a
// monotonic same-process delta.
func (st *scoredStream) capture(b Batch, i int, traceID uint64, scoreStart, stage0End, scoreEnd time.Time) {
	s := st.s
	emitEnd := time.Now()
	at := b.Ats[i]
	rec := trace.Record{
		TraceID: traceID,
		Tier:    trace.TierShard,
		App:     st.app,
		Stream:  st.id,
		Seq:     b.Seqs[i],
	}
	if origin := b.Origins[i]; origin > 0 {
		if gw := at.UnixNano() - origin; gw > 0 {
			rec.Hops[trace.HopGateway] = gw
		}
	}
	rec.Hops[trace.HopQueue] = max64(b.DrainedAt.Sub(at).Nanoseconds(), 0)
	rec.Hops[trace.HopAssembly] = max64(scoreStart.Sub(b.DrainedAt).Nanoseconds(), 0)
	fullStart := scoreStart
	if !stage0End.IsZero() {
		// Cascade chunk: stage-0's envelope pass owns its own hop and the
		// score hop covers the remaining full-detector work. Without a
		// cascade the stage0 hop stays zero.
		rec.Hops[trace.HopStage0] = stage0End.Sub(scoreStart).Nanoseconds()
		fullStart = stage0End
	}
	rec.Hops[trace.HopScore] = scoreEnd.Sub(fullStart).Nanoseconds()
	rec.Hops[trace.HopEmit] = emitEnd.Sub(scoreEnd).Nanoseconds()
	for _, h := range rec.Hops {
		rec.TotalNanos += h
	}
	rec.StartNanos = emitEnd.UnixNano() - rec.TotalNanos
	s.cfg.Tracer.Add(rec)
	s.cfg.Latency.Exemplar(float64(rec.TotalNanos)/1e9, traceID)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Close removes the stream's monitor and emits its session summary.
func (st *scoredStream) Close(shed uint64) error {
	sum, _ := st.s.tr.Close(st.app)
	return st.s.cfg.Emit.Summary(st.id, st.version, sum, shed)
}
