package session

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeHandler records every engine callback so tests can pin the
// engine's ordering and accounting without any scoring machinery.
type fakeHandler struct {
	mu      sync.Mutex
	streams map[uint32]*fakeStream
	openErr error
	procErr error
	rounds  int
}

func newFakeHandler() *fakeHandler {
	return &fakeHandler{streams: make(map[uint32]*fakeStream)}
}

func (h *fakeHandler) OpenStream(id uint32, app string) (Stream, error) {
	if h.openErr != nil {
		return nil, h.openErr
	}
	st := &fakeStream{h: h, id: id, app: app}
	h.mu.Lock()
	h.streams[id] = st
	h.mu.Unlock()
	return st, nil
}

func (h *fakeHandler) RoundEnd() error {
	h.mu.Lock()
	h.rounds++
	h.mu.Unlock()
	return nil
}

func (h *fakeHandler) stream(id uint32) *fakeStream {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.streams[id]
}

type fakeStream struct {
	h   *fakeHandler
	id  uint32
	app string

	mu       sync.Mutex
	seqs     []uint32
	features [][]float64 // copied: the engine recycles batch buffers
	closed   bool
	shed     uint64
}

func (st *fakeStream) Process(b Batch) error {
	if st.h.procErr != nil {
		return st.h.procErr
	}
	if len(b.Seqs) != b.Len() || len(b.Ats) != b.Len() {
		return fmt.Errorf("ragged batch: %d samples, %d seqs, %d ats", b.Len(), len(b.Seqs), len(b.Ats))
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := range b.Samples {
		st.seqs = append(st.seqs, b.Seqs[i])
		cp := make([]float64, len(b.Samples[i]))
		copy(cp, b.Samples[i])
		st.features = append(st.features, cp)
	}
	return nil
}

func (st *fakeStream) Close(shed uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.closed = true
	st.shed = shed
	return nil
}

// run drives the engine through exactly one final round: everything
// already pushed/enqueued is handled in open→process→close order, then
// Run returns.
func run(t *testing.T, e *Engine) {
	t.Helper()
	done := make(chan struct{})
	close(done)
	if err := e.Run(done); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEngineOpenProcessClose(t *testing.T) {
	h := newFakeHandler()
	e, err := New(Config{Handler: h})
	if err != nil {
		t.Fatal(err)
	}
	e.Open(1, "appA")
	e.Open(2, "appB")
	for i := 0; i < 5; i++ {
		e.Push(1, uint32(i), 0, time.Now(), []float64{float64(i), 1})
		e.Push(2, uint32(i), 0, time.Now(), []float64{float64(i), 2})
	}
	e.Close(1)
	e.Close(2)
	run(t, e)

	for _, id := range []uint32{1, 2} {
		st := h.stream(id)
		if st == nil {
			t.Fatalf("stream %d never opened", id)
		}
		if !st.closed {
			t.Fatalf("stream %d not closed", id)
		}
		if len(st.seqs) != 5 {
			t.Fatalf("stream %d processed %d samples, want 5", id, len(st.seqs))
		}
		for i, seq := range st.seqs {
			if seq != uint32(i) {
				t.Fatalf("stream %d seq[%d] = %d, want %d (order not preserved)", id, i, seq, i)
			}
			if st.features[i][0] != float64(i) || st.features[i][1] != float64(id) {
				t.Fatalf("stream %d sample %d corrupted: %v", id, i, st.features[i])
			}
		}
	}
	if h.rounds == 0 {
		t.Fatal("RoundEnd never called")
	}
}

func TestEngineRejects(t *testing.T) {
	h := newFakeHandler()
	var mu sync.Mutex
	var got []string
	e, err := New(Config{
		Handler: h,
		OnReject: func(id uint32, app string, reason RejectReason) {
			mu.Lock()
			got = append(got, fmt.Sprintf("%d/%s/%s", id, app, reason))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Open(1, "appA")
	e.Open(1, "appB")                         // duplicate stream id
	e.Open(2, "appA")                         // duplicate app
	e.Push(9, 0, 0, time.Now(), []float64{1}) // unknown stream
	e.Close(7)                                // unknown close
	run(t, e)

	want := []string{
		"1/appB/duplicate stream",
		"2/appA/duplicate app",
		"9//sample for unopened stream",
		"7//close of unopened stream",
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("rejects = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reject[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if st := h.stream(1); st == nil || st.app != "appA" {
		t.Fatal("original stream 1 should survive the duplicate opens")
	}
}

func TestEngineShedAccounting(t *testing.T) {
	h := newFakeHandler()
	e, err := New(Config{Handler: h, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	e.Open(1, "appA")
	shed := 0
	for i := 0; i < 10; i++ {
		if e.Push(1, uint32(i), 0, time.Now(), []float64{float64(i)}) {
			shed++
		}
	}
	if shed != 6 {
		t.Fatalf("Push reported %d sheds, want 6 (depth 4, 10 pushes)", shed)
	}
	if total, forStream := e.ShedCounts(1); total != 6 || forStream != 6 {
		t.Fatalf("ShedCounts = (%d, %d), want (6, 6)", total, forStream)
	}
	e.Close(1)
	run(t, e)

	st := h.stream(1)
	if st.shed != 6 {
		t.Fatalf("Close got shed=%d, want 6", st.shed)
	}
	// The survivors are the newest 4, in order.
	if len(st.seqs) != 4 {
		t.Fatalf("processed %d samples, want 4", len(st.seqs))
	}
	for i, seq := range st.seqs {
		if want := uint32(6 + i); seq != want {
			t.Fatalf("survivor[%d] = seq %d, want %d (drop-oldest violated)", i, seq, want)
		}
	}
}

func TestEngineHandlerErrors(t *testing.T) {
	boom := errors.New("boom")

	h := newFakeHandler()
	h.openErr = boom
	e, _ := New(Config{Handler: h})
	e.Open(1, "appA")
	done := make(chan struct{})
	close(done)
	if err := e.Run(done); !errors.Is(err, boom) {
		t.Fatalf("Run after open error = %v, want %v", err, boom)
	}

	h = newFakeHandler()
	h.procErr = boom
	e, _ = New(Config{Handler: h})
	e.Open(1, "appA")
	e.Push(1, 0, 0, time.Now(), []float64{1})
	if err := e.Run(done); !errors.Is(err, boom) {
		t.Fatalf("Run after process error = %v, want %v", err, boom)
	}
}

// TestEngineConcurrentProducer runs the real two-goroutine topology: a
// reader pushing samples and controls against a running worker loop.
// Every sample must be either processed in order or shed — never both,
// never lost.
func TestEngineConcurrentProducer(t *testing.T) {
	h := newFakeHandler()
	e, err := New(Config{Handler: h, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	const streams, perStream = 4, 2000
	readerDone := make(chan struct{})
	workerErr := make(chan error, 1)
	go func() { workerErr <- e.Run(readerDone) }()

	for s := uint32(0); s < streams; s++ {
		e.Open(s, fmt.Sprintf("app%d", s))
	}
	var wg sync.WaitGroup
	for s := uint32(0); s < streams; s++ {
		wg.Add(1)
		go func(s uint32) {
			defer wg.Done()
			for i := 0; i < perStream; i++ {
				e.Push(s, uint32(i), 0, time.Now(), []float64{float64(s), float64(i)})
			}
		}(s)
	}
	wg.Wait()
	for s := uint32(0); s < streams; s++ {
		e.Close(s)
	}
	close(readerDone)
	if err := <-workerErr; err != nil {
		t.Fatalf("Run: %v", err)
	}

	for s := uint32(0); s < streams; s++ {
		st := h.stream(s)
		if st == nil || !st.closed {
			t.Fatalf("stream %d missing or not closed", s)
		}
		if got := uint64(len(st.seqs)) + st.shed; got != perStream {
			t.Fatalf("stream %d: processed %d + shed %d = %d, want %d",
				s, len(st.seqs), st.shed, got, perStream)
		}
		last := -1
		for i, seq := range st.seqs {
			if int(seq) <= last {
				t.Fatalf("stream %d: seq %d at position %d not increasing (prev %d)", s, seq, i, last)
			}
			last = int(seq)
			if st.features[i][0] != float64(s) || st.features[i][1] != float64(seq) {
				t.Fatalf("stream %d sample %d corrupted: %v", s, i, st.features[i])
			}
		}
	}
}
