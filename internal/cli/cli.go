// Package cli provides the shared plumbing of the cmd tools: a root context
// cancelled by SIGINT/SIGTERM, so every long-running path (corpus
// profiling, training, experiment sweeps) shuts down cleanly instead of
// being killed mid-write, and an interrupt-aware exit helper.
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// ExitInterrupted is the exit code for a signal-cancelled run, following
// the shell convention of 128+SIGINT.
const ExitInterrupted = 130

// Context returns a context cancelled on SIGINT or SIGTERM. The returned
// stop function releases the signal handlers; a second signal after
// cancellation kills the process with the default disposition, so a stuck
// shutdown can still be forced.
func Context() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Fatal reports err on stderr prefixed with the tool name and exits: with
// ExitInterrupted for a context cancellation (a clean signal-driven
// shutdown), 1 otherwise.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	if errors.Is(err, context.Canceled) {
		os.Exit(ExitInterrupted)
	}
	os.Exit(1)
}
