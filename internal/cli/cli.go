// Package cli provides the shared runtime of the cmd tools: structured
// logging on log/slog (text by default, JSON behind -log-json), a root
// context cancelled by SIGINT/SIGTERM so every long-running path (corpus
// profiling, training, experiment sweeps) shuts down cleanly instead of
// being killed mid-write, a per-run telemetry registry, and the opt-in
// debug HTTP server behind -telemetry-addr.
package cli

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"twosmart/internal/telemetry"
)

// ExitInterrupted is the exit code for a signal-cancelled run, following
// the shell convention of 128+SIGINT.
const ExitInterrupted = 130

// App bundles one tool's shared runtime. Build it with New before flag
// registration, call Start after flag.Parse, and defer Close.
type App struct {
	// Tool is the command name used in logs and the run report.
	Tool string
	// Log is the tool's logger, ready after Start (also installed as
	// slog.Default).
	Log *slog.Logger
	// Telemetry is the run's metrics registry. It always exists — spans
	// and counters recorded here feed the -report artifact — but the
	// debug server only exposes it when -telemetry-addr is set.
	Telemetry *telemetry.Registry

	logJSON       bool
	quiet         bool
	telemetryAddr string

	stop   context.CancelFunc
	server *telemetry.Server
}

// New builds the app and registers the shared flags (-log-json, -quiet,
// -telemetry-addr) on the default flag set. Call before flag.Parse.
func New(tool string) *App {
	a := &App{Tool: tool, Telemetry: telemetry.New()}
	flag.BoolVar(&a.logJSON, "log-json", false, "emit JSON logs instead of text")
	flag.BoolVar(&a.quiet, "quiet", false, "suppress progress and informational logs (warnings still print)")
	flag.StringVar(&a.telemetryAddr, "telemetry-addr", "",
		"serve /metrics (Prometheus), /debug/vars and /debug/pprof on this address (e.g. :8080, :0 for a random port; empty = disabled)")
	return a
}

// Start finalizes the logger from the parsed flags, installs the
// SIGINT/SIGTERM handler and, when -telemetry-addr is set, starts the
// debug server. The returned context is cancelled on the first signal; a
// second signal kills the process with the default disposition, so a stuck
// shutdown can still be forced.
func (a *App) Start() context.Context {
	level := slog.LevelInfo
	if a.quiet {
		level = slog.LevelWarn
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if a.logJSON {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	a.Log = slog.New(h).With("tool", a.Tool)
	slog.SetDefault(a.Log)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	a.stop = stop

	if a.telemetryAddr != "" {
		srv, err := telemetry.StartServer(a.telemetryAddr, a.Telemetry)
		if err != nil {
			a.Fatal(err)
		}
		a.server = srv
		// Readiness follows the signal context: the first SIGINT/SIGTERM
		// starts the graceful drain, so /healthz flips to 503 while the
		// other endpoints keep serving the drain's telemetry.
		go func() {
			<-ctx.Done()
			srv.SetDraining()
		}()
		a.Log.Info("telemetry server listening",
			"addr", srv.Addr(),
			"endpoints", "/metrics /healthz /debug/vars /debug/pprof/")
	}
	return ctx
}

// DebugHandle mounts an extra handler (e.g. /debug/traces) on the debug
// server. A no-op when -telemetry-addr is unset; call after Start.
func (a *App) DebugHandle(pattern string, h http.Handler) {
	if a.server != nil {
		a.server.Handle(pattern, h)
	}
}

// Quiet reports whether -quiet was set.
func (a *App) Quiet() bool { return a.quiet }

// Progress returns a progress callback (compatible with
// parallel.Options.OnProgress and corpus.Config.Progress) that logs label
// at roughly 10% increments, or nil when -quiet suppresses progress.
// Callers must honor the parallel contract that progress calls are
// serialized.
func (a *App) Progress(label string) func(done, total int) {
	if a.quiet {
		return nil
	}
	lastDecile := -1
	return func(done, total int) {
		decile := done * 10 / total
		if decile == lastDecile && done != total {
			return
		}
		lastDecile = decile
		a.Log.Info(label, "done", done, "total", total)
	}
}

// Close shuts the debug server down gracefully and releases the signal
// handlers. Safe to call more than once and before Start.
func (a *App) Close() {
	if a.server != nil {
		if err := a.server.Close(); err != nil {
			a.Log.Warn("telemetry server shutdown", "err", err)
		}
		a.server = nil
	}
	if a.stop != nil {
		a.stop()
		a.stop = nil
	}
}

// Fatal logs err and exits: with ExitInterrupted for a context
// cancellation (a clean signal-driven shutdown), 1 otherwise. The debug
// server is shut down first so an in-flight /metrics scrape drains.
func (a *App) Fatal(err error) {
	log := a.Log
	if log == nil {
		log = slog.Default().With("tool", a.Tool)
	}
	log.Error("fatal", "err", err)
	a.Close()
	if errors.Is(err, context.Canceled) {
		os.Exit(ExitInterrupted)
	}
	os.Exit(1)
}
