// Package mat provides small dense matrix and vector helpers used by the
// feature-reduction (PCA) and machine-learning packages. It is deliberately
// minimal: row-major float64 matrices, the handful of operations the rest of
// the repository needs, and a Jacobi eigensolver for symmetric matrices.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zero-filled Rows x Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("mat: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product a*b.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("mat: cannot multiply %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m*v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("mat: cannot multiply %dx%d by vector of length %d", m.Rows, m.Cols, len(v))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), v)
	}
	return out, nil
}

// Dot returns the inner product of a and b. It panics if lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: dot of unequal lengths %d and %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// Scale multiplies every element of v by s in place.
func Scale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// AddScaled adds s*src to dst element-wise in place.
func AddScaled(dst, src []float64, s float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mat: addScaled of unequal lengths %d and %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] += s * src[i]
	}
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v, or 0 for fewer than two
// samples.
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	mu := Mean(v)
	var s float64
	for _, x := range v {
		d := x - mu
		s += d * d
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 { return math.Sqrt(Variance(v)) }

// ColumnMeans returns the mean of each column of m.
func (m *Matrix) ColumnMeans() []float64 {
	means := make([]float64, m.Cols)
	if m.Rows == 0 {
		return means
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	inv := 1 / float64(m.Rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// Covariance returns the column covariance matrix of m (population
// normalisation, centring each column on its mean).
func (m *Matrix) Covariance() (*Matrix, error) {
	if m.Rows < 2 {
		return nil, errors.New("mat: covariance needs at least two rows")
	}
	means := m.ColumnMeans()
	cov := New(m.Cols, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i := 0; i < m.Cols; i++ {
			di := row[i] - means[i]
			if di == 0 {
				continue
			}
			crow := cov.Row(i)
			for j := i; j < m.Cols; j++ {
				crow[j] += di * (row[j] - means[j])
			}
		}
	}
	inv := 1 / float64(m.Rows-1)
	for i := 0; i < m.Cols; i++ {
		for j := i; j < m.Cols; j++ {
			v := cov.At(i, j) * inv
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	return cov, nil
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Eigen holds the result of a symmetric eigendecomposition: Values[i] is the
// eigenvalue associated with the eigenvector in column i of Vectors.
// Eigenpairs are sorted by descending eigenvalue.
type Eigen struct {
	Values  []float64
	Vectors *Matrix // Cols eigenvectors, each of length Rows
}

// SymmetricEigen computes the eigendecomposition of a symmetric matrix using
// the cyclic Jacobi method. It returns an error if a is not square or not
// symmetric, or if the iteration fails to converge.
func SymmetricEigen(a *Matrix) (*Eigen, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: eigen of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-9) {
		return nil, errors.New("mat: eigen of non-symmetric matrix")
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < 1e-12 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}
	if offDiagNorm(w) > 1e-6 {
		return nil, errors.New("mat: jacobi eigensolver failed to converge")
	}

	eig := &Eigen{Values: make([]float64, n), Vectors: v}
	for i := 0; i < n; i++ {
		eig.Values[i] = w.At(i, i)
	}
	sortEigen(eig)
	return eig, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j {
				s += m.At(i, j) * m.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}

// rotate applies the Jacobi rotation G(p,q,c,s) as w = G' w G and
// accumulates the rotation into v.
func rotate(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows
	for k := 0; k < n; k++ {
		wkp, wkq := w.At(k, p), w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk, wqk := w.At(p, k), w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func sortEigen(e *Eigen) {
	n := len(e.Values)
	// Selection sort: n is small (feature counts), and we must permute the
	// eigenvector columns alongside the values.
	for i := 0; i < n-1; i++ {
		max := i
		for j := i + 1; j < n; j++ {
			if e.Values[j] > e.Values[max] {
				max = j
			}
		}
		if max != i {
			e.Values[i], e.Values[max] = e.Values[max], e.Values[i]
			swapCols(e.Vectors, i, max)
		}
	}
}

func swapCols(m *Matrix, a, b int) {
	for i := 0; i < m.Rows; i++ {
		va, vb := m.At(i, a), m.At(i, b)
		m.Set(i, a, vb)
		m.Set(i, b, va)
	}
}

// PearsonCorrelation returns the Pearson correlation coefficient between a
// and b, or 0 if either input is constant. It panics if lengths differ.
func PearsonCorrelation(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: correlation of unequal lengths %d and %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var num, da, db float64
	for i := range a {
		xa := a[i] - ma
		xb := b[i] - mb
		num += xa * xb
		da += xa * xa
		db += xb * xb
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}
