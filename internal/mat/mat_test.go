package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewZeroFilled(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromRowsRaggedRejected(t *testing.T) {
	_, err := FromRows([][]float64{{1, 2}, {3}})
	if err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestFromRowsCopiesData(t *testing.T) {
	src := [][]float64{{1, 2}, {3, 4}}
	m, err := FromRows(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0][0] = 99
	if m.At(0, 0) != 1 {
		t.Fatalf("FromRows aliased input: At(0,0)=%v", m.At(0, 0))
	}
}

func TestAtSetRowCol(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2)=%v, want 7", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row(1)[2]=%v, want 7", row[2])
	}
	col := m.Col(2)
	if col[1] != 7 || col[0] != 0 {
		t.Fatalf("Col(2)=%v, want [0 7]", col)
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose is %dx%d, want 3x2", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", tr.Data)
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("c[%d][%d]=%v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapeMismatch(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := Mul(a, b); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	v, err := m.MulVec([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 7 || v[1] != 6 {
		t.Fatalf("MulVec=%v, want [7 6]", v)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestDotAndNorm(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("Dot=%v, want 32", d)
	}
	if n := Norm2([]float64{3, 4}); n != 5 {
		t.Fatalf("Norm2=%v, want 5", n)
	}
}

func TestScaleAddScaled(t *testing.T) {
	v := []float64{1, 2}
	Scale(v, 3)
	if v[0] != 3 || v[1] != 6 {
		t.Fatalf("Scale=%v", v)
	}
	AddScaled(v, []float64{1, 1}, 2)
	if v[0] != 5 || v[1] != 8 {
		t.Fatalf("AddScaled=%v", v)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(v); m != 5 {
		t.Fatalf("Mean=%v, want 5", m)
	}
	if va := Variance(v); !almostEqual(va, 4, 1e-9) {
		t.Fatalf("Variance=%v", va)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty/singleton cases should be 0")
	}
}

func TestColumnMeans(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 10}, {3, 20}})
	means := m.ColumnMeans()
	if means[0] != 2 || means[1] != 15 {
		t.Fatalf("ColumnMeans=%v", means)
	}
}

func TestCovarianceKnown(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	cov, err := m.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	// var(col0)=1, var(col1)=4, cov=2 with sample normalisation
	if !almostEqual(cov.At(0, 0), 1, 1e-9) || !almostEqual(cov.At(1, 1), 4, 1e-9) || !almostEqual(cov.At(0, 1), 2, 1e-9) {
		t.Fatalf("Covariance=%v", cov.Data)
	}
	if !cov.IsSymmetric(1e-12) {
		t.Fatal("covariance must be symmetric")
	}
}

func TestCovarianceTooFewRows(t *testing.T) {
	m := New(1, 3)
	if _, err := m.Covariance(); err == nil {
		t.Fatal("expected error for single-row covariance")
	}
}

func TestSymmetricEigenDiagonal(t *testing.T) {
	a, _ := FromRows([][]float64{{3, 0}, {0, 1}})
	e, err := SymmetricEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Values[0], 3, 1e-9) || !almostEqual(e.Values[1], 1, 1e-9) {
		t.Fatalf("eigenvalues=%v", e.Values)
	}
}

func TestSymmetricEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a, _ := FromRows([][]float64{{2, 1}, {1, 2}})
	e, err := SymmetricEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Values[0], 3, 1e-9) || !almostEqual(e.Values[1], 1, 1e-9) {
		t.Fatalf("eigenvalues=%v, want [3 1]", e.Values)
	}
	// Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
	v0 := e.Vectors.Col(0)
	if !almostEqual(math.Abs(v0[0]), 1/math.Sqrt2, 1e-6) || !almostEqual(math.Abs(v0[1]), 1/math.Sqrt2, 1e-6) {
		t.Fatalf("eigenvector=%v", v0)
	}
}

func TestSymmetricEigenRejectsNonSymmetric(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := SymmetricEigen(a); err == nil {
		t.Fatal("expected error for non-symmetric input")
	}
	b := New(2, 3)
	if _, err := SymmetricEigen(b); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

// Property: for random symmetric matrices, A v = lambda v for every pair and
// eigenvalues are sorted descending.
func TestSymmetricEigenProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(6)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		e, err := SymmetricEigen(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for k := 0; k < n; k++ {
			if k > 0 && e.Values[k] > e.Values[k-1]+1e-9 {
				t.Fatalf("trial %d: eigenvalues not sorted: %v", trial, e.Values)
			}
			v := e.Vectors.Col(k)
			av, _ := a.MulVec(v)
			for i := range av {
				if !almostEqual(av[i], e.Values[k]*v[i], 1e-6) {
					t.Fatalf("trial %d: A v != lambda v at eig %d (%v vs %v)", trial, k, av[i], e.Values[k]*v[i])
				}
			}
			if !almostEqual(Norm2(v), 1, 1e-6) {
				t.Fatalf("trial %d: eigenvector %d not unit norm", trial, k)
			}
		}
	}
}

// Property: trace is preserved by eigendecomposition (sum of eigenvalues).
func TestEigenTraceProperty(t *testing.T) {
	f := func(a1, a2, a3 float64) bool {
		// Clamp to avoid degenerate huge values from quick.
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 100)
		}
		a1, a2, a3 = clamp(a1), clamp(a2), clamp(a3)
		m, _ := FromRows([][]float64{{a1, a3}, {a3, a2}})
		e, err := SymmetricEigen(m)
		if err != nil {
			return false
		}
		return almostEqual(e.Values[0]+e.Values[1], a1+a2, 1e-6*(1+math.Abs(a1)+math.Abs(a2)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if c := PearsonCorrelation(a, b); !almostEqual(c, 1, 1e-12) {
		t.Fatalf("corr=%v, want 1", c)
	}
	neg := []float64{8, 6, 4, 2}
	if c := PearsonCorrelation(a, neg); !almostEqual(c, -1, 1e-12) {
		t.Fatalf("corr=%v, want -1", c)
	}
	if c := PearsonCorrelation(a, []float64{5, 5, 5, 5}); c != 0 {
		t.Fatalf("corr with constant=%v, want 0", c)
	}
	if c := PearsonCorrelation(nil, nil); c != 0 {
		t.Fatalf("corr of empty=%v, want 0", c)
	}
}

// Property: correlation is bounded in [-1, 1] and symmetric.
func TestPearsonCorrelationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		c1 := PearsonCorrelation(a, b)
		c2 := PearsonCorrelation(b, a)
		if math.Abs(c1) > 1+1e-12 {
			t.Fatalf("correlation out of range: %v", c1)
		}
		if !almostEqual(c1, c2, 1e-12) {
			t.Fatalf("correlation not symmetric: %v vs %v", c1, c2)
		}
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("Identity(3)[%d][%d]=%v", i, j, m.At(i, j))
			}
		}
	}
}

func TestClone(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases data")
	}
}
