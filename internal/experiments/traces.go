package experiments

import (
	"fmt"
	"strings"
	"time"

	"twosmart/internal/hpc"
	"twosmart/internal/microarch"
	"twosmart/internal/sandbox"
	"twosmart/internal/workload"
)

// Fig1Result reproduces Fig 1: the branch-instructions and branch-misses
// HPC traces of a benign and a malware application, sampled every 10 ms.
type Fig1Result struct {
	// BenignBranches/BenignMisses and MalwareBranches/MalwareMisses are
	// per-sample counts.
	BenignApp, MalwareApp               string
	BenignBranches, BenignMisses        []float64
	MalwareBranches, MalwareMisses      []float64
	BenignMeanBranch, MalwareMeanBranch float64
	BenignMeanMiss, MalwareMeanMiss     float64
}

// Fig1 profiles one benign and one malware application with the two events
// of Fig 1 on a fresh container each (two of the four counter registers).
func (ctx *Context) Fig1() (*Fig1Result, error) {
	arch := microarch.DefaultConfig()
	mgr := sandbox.NewManager(arch)
	events := []hpc.Event{hpc.EvBranchInstr, hpc.EvBranchMiss}
	opts := sandbox.ProfileOptions{
		FreqHz: ctx.Opts.Corpus.FreqHz,
		Period: 10 * time.Millisecond,
	}
	if opts.FreqHz <= 0 {
		opts.FreqHz = corpusFreq(ctx)
	}

	wopts := workload.Options{Budget: 4 * workloadBudget(ctx), Seed: ctx.Opts.Seed}
	benign := workload.Generate(workload.Benign, 0, wopts)
	malware := workload.Generate(workload.Trojan, 0, wopts)

	res := &Fig1Result{BenignApp: benign.Name, MalwareApp: malware.Name}
	bs, err := mgr.RunIsolated(benign.MustStream(), events, opts)
	if err != nil {
		return nil, err
	}
	ms, err := mgr.RunIsolated(malware.MustStream(), events, opts)
	if err != nil {
		return nil, err
	}
	for _, s := range bs {
		res.BenignBranches = append(res.BenignBranches, float64(s.Counts[0]))
		res.BenignMisses = append(res.BenignMisses, float64(s.Counts[1]))
	}
	for _, s := range ms {
		res.MalwareBranches = append(res.MalwareBranches, float64(s.Counts[0]))
		res.MalwareMisses = append(res.MalwareMisses, float64(s.Counts[1]))
	}
	res.BenignMeanBranch = mean(res.BenignBranches)
	res.MalwareMeanBranch = mean(res.MalwareBranches)
	res.BenignMeanMiss = mean(res.BenignMisses)
	res.MalwareMeanMiss = mean(res.MalwareMisses)
	return res, nil
}

func corpusFreq(ctx *Context) float64 {
	if ctx.Opts.Corpus.FreqHz > 0 {
		return ctx.Opts.Corpus.FreqHz
	}
	return 4e6
}

func workloadBudget(ctx *Context) int64 {
	if ctx.Opts.Corpus.Budget > 0 {
		return ctx.Opts.Corpus.Budget
	}
	return workload.DefaultBudget
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// String renders the traces as aligned per-sample series.
func (res *Fig1Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 1: HPC traces of branch-instructions and branch-misses\n\n")
	fmt.Fprintf(&b, "benign app %s: mean branches/sample=%.0f mean misses/sample=%.0f\n",
		res.BenignApp, res.BenignMeanBranch, res.BenignMeanMiss)
	fmt.Fprintf(&b, "malware app %s: mean branches/sample=%.0f mean misses/sample=%.0f\n\n",
		res.MalwareApp, res.MalwareMeanBranch, res.MalwareMeanMiss)
	n := len(res.BenignBranches)
	if len(res.MalwareBranches) > n {
		n = len(res.MalwareBranches)
	}
	fmt.Fprintf(&b, "%-6s | %-12s %-12s | %-12s %-12s\n", "sample",
		"benign-br", "benign-miss", "malware-br", "malware-miss")
	for i := 0; i < n; i++ {
		row := func(s []float64) string {
			if i < len(s) {
				return fmt.Sprintf("%-12.0f", s[i])
			}
			return fmt.Sprintf("%-12s", "-")
		}
		fmt.Fprintf(&b, "%-6d | %s %s | %s %s\n", i,
			row(res.BenignBranches), row(res.BenignMisses),
			row(res.MalwareBranches), row(res.MalwareMisses))
	}
	return b.String()
}

// Fig2Result reproduces Fig 2, the data-collection methodology: the 44
// events split into 11 batches of 4, one fresh (and afterwards destroyed)
// container per batch, 10 ms sampling.
type Fig2Result struct {
	TotalEvents       int
	Batches           int
	EventsPerBatch    int
	RunsPerApp        int
	ContainersCreated int
	ContainersAlive   int
	SamplesCollected  int
	// OverLimitRejected confirms the counter file refuses more events
	// than registers.
	OverLimitRejected bool
}

// Fig2 executes one application through the faithful multiplexed pipeline
// and reports the methodology statistics.
func (ctx *Context) Fig2() (*Fig2Result, error) {
	arch := microarch.DefaultConfig()
	mgr := sandbox.NewManager(arch)
	groups := hpc.MultiplexSchedule(hpc.AllEvents())
	opts := sandbox.ProfileOptions{
		FreqHz: corpusFreq(ctx),
		Period: 10 * time.Millisecond,
	}
	res := &Fig2Result{
		TotalEvents:    hpc.NumEvents,
		Batches:        len(groups),
		EventsPerBatch: hpc.MaxProgrammable,
	}

	// The 4-register limit is physical: programming five events fails.
	cf := hpc.NewCounterFile()
	res.OverLimitRejected = cf.Program(hpc.EvCycles, hpc.EvInstrs, hpc.EvCacheRef,
		hpc.EvCacheMiss, hpc.EvBranchInstr) != nil

	prog := workload.Generate(workload.Virus, 0, workload.Options{Budget: workloadBudget(ctx), Seed: ctx.Opts.Seed})
	for _, group := range groups {
		samples, err := mgr.RunIsolated(prog.MustStream(), []hpc.Event(group), opts)
		if err != nil {
			return nil, err
		}
		res.SamplesCollected += len(samples)
		res.RunsPerApp++
	}
	res.ContainersCreated = mgr.Created()
	res.ContainersAlive = mgr.Live()
	return res, nil
}

// String summarises the pipeline statistics.
func (res *Fig2Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 2: data-collection pipeline (multiplexed HPC profiling)\n\n")
	fmt.Fprintf(&b, "events to collect:        %d\n", res.TotalEvents)
	fmt.Fprintf(&b, "counter registers:        %d\n", res.EventsPerBatch)
	fmt.Fprintf(&b, "batches (runs per app):   %d\n", res.Batches)
	fmt.Fprintf(&b, "containers created:       %d\n", res.ContainersCreated)
	fmt.Fprintf(&b, "containers left alive:    %d (destroyed after every run)\n", res.ContainersAlive)
	fmt.Fprintf(&b, "samples collected:        %d\n", res.SamplesCollected)
	fmt.Fprintf(&b, ">4 events rejected:       %v\n", res.OverLimitRejected)
	return b.String()
}
