// Package experiments reproduces every table and figure of the paper's
// evaluation: per-experiment drivers over a shared collected corpus, each
// returning a typed result with a String() rendering that mirrors the
// paper's layout. See DESIGN.md for the experiment index and EXPERIMENTS.md
// for measured-versus-paper numbers.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"twosmart/internal/corpus"
	"twosmart/internal/dataset"
	"twosmart/internal/telemetry"
)

// Options configures an experiment run.
type Options struct {
	// Corpus configures data collection. The zero value uses a reduced
	// but representative corpus (Scale 0.15) with the omniscient
	// collection path; the methodology experiment (Fig 2) always
	// exercises the faithful 11-batch multiplexed path regardless.
	Corpus corpus.Config
	// Seed drives splits and stochastic trainers.
	Seed int64
	// BoostRounds is the AdaBoost round count for the boosted
	// configurations (default 10).
	BoostRounds int
	// TrainFrac is the train share of the split (default 0.6, the
	// paper's 60%/40% protocol).
	TrainFrac float64
	// Workers bounds the classifier-sweep fan-out (default NumCPU).
	// Corpus collection parallelism is tuned separately via
	// Corpus.Workers.
	Workers int
	// Progress, when non-nil, reports sweep progress (jobs done, total).
	// Corpus-collection progress is reported via Corpus.Progress.
	Progress func(done, total int)
	// Telemetry, when non-nil, records experiment spans and sweep pool
	// metrics, and is propagated to corpus collection when Corpus has no
	// registry of its own.
	Telemetry *telemetry.Registry
}

func (o Options) fill() Options {
	if o.Corpus.Scale <= 0 {
		o.Corpus.Scale = 0.15
		o.Corpus.Omniscient = true
	}
	if o.Corpus.Seed == 0 {
		o.Corpus.Seed = o.Seed
	}
	if o.Corpus.Telemetry == nil {
		o.Corpus.Telemetry = o.Telemetry
	}
	if o.BoostRounds <= 0 {
		o.BoostRounds = 10
	}
	if o.TrainFrac <= 0 || o.TrainFrac >= 1 {
		o.TrainFrac = 0.6
	}
	return o
}

// Context carries the shared corpus, the 60/40 split, and caches for the
// expensive intermediate artifacts (feature reduction, the classifier
// sweep) that several experiments share.
type Context struct {
	Opts  Options
	Data  *dataset.Dataset
	Train *dataset.Dataset
	Test  *dataset.Dataset

	mu        sync.Mutex
	reduction *Table2Result
	sweep     *SweepResult
}

// NewContext collects the corpus and performs the standard 60/40 stratified
// split. It is NewContextCtx without cancellation.
func NewContext(opts Options) (*Context, error) {
	return NewContextCtx(context.Background(), opts)
}

// NewContextCtx is NewContext with cancellation: corpus collection fans out
// on the shared bounded pool and aborts with ctx's error when ctx is
// cancelled mid-profiling.
func NewContextCtx(ctx context.Context, opts Options) (*Context, error) {
	o := opts.fill()
	data, err := corpus.CollectContext(ctx, o.Corpus)
	if err != nil {
		return nil, fmt.Errorf("experiments: collecting corpus: %w", err)
	}
	train, test, err := data.Split(o.TrainFrac, o.Seed+1)
	if err != nil {
		return nil, err
	}
	return &Context{Opts: o, Data: data, Train: train, Test: test}, nil
}

// NewContextFromDataset builds a context over an already-collected dataset
// (used by tests and by tools that persist the corpus to CSV).
func NewContextFromDataset(d *dataset.Dataset, opts Options) (*Context, error) {
	o := opts.fill()
	train, test, err := d.Split(o.TrainFrac, o.Seed+1)
	if err != nil {
		return nil, err
	}
	return &Context{Opts: o, Data: d, Train: train, Test: test}, nil
}
