package experiments

import (
	"fmt"
	"strings"

	"twosmart/internal/core"
	"twosmart/internal/hls"
	"twosmart/internal/workload"
)

// Table5Configs are the hardware configurations of Table V.
var Table5Configs = []string{"8", "4", "4-Boosted"}

// Table5Result reproduces Table V: hardware implementation cost (latency in
// cycles @10 ns and area as % of an OpenSPARC core) of each stage-2
// classifier at 8 HPCs, 4 HPCs and boosted 4 HPCs. Costs are averaged over
// the four per-class specialized models from the sweep.
type Table5Result struct {
	// Latency[kind][config] in cycles; Area[kind][config] in percent.
	Latency map[core.Kind]map[string]float64
	Area    map[core.Kind]map[string]float64
}

// Table5 estimates hardware costs for the sweep's trained models.
func (ctx *Context) Table5() (*Table5Result, error) {
	sweep, err := ctx.Sweep()
	if err != nil {
		return nil, err
	}
	res := &Table5Result{
		Latency: make(map[core.Kind]map[string]float64),
		Area:    make(map[core.Kind]map[string]float64),
	}
	for _, kind := range core.Kinds() {
		res.Latency[kind] = make(map[string]float64)
		res.Area[kind] = make(map[string]float64)
		for _, config := range Table5Configs {
			var lat, area float64
			n := 0
			for _, class := range workload.MalwareClasses() {
				model := sweep.Models[class][kind][config]
				if model == nil {
					return nil, fmt.Errorf("experiments: missing model %v/%v/%s", class, kind, config)
				}
				cost, err := hls.Estimate(model)
				if err != nil {
					return nil, err
				}
				lat += float64(cost.LatencyCycles)
				area += cost.AreaPercent()
				n++
			}
			res.Latency[kind][config] = lat / float64(n)
			res.Area[kind][config] = area / float64(n)
		}
	}
	return res, nil
}

// String renders the result in the shape of Table V.
func (res *Table5Result) String() string {
	var b strings.Builder
	b.WriteString("Table V: hardware implementation results (cycles @10 ns, area % of OpenSPARC core)\n\n")
	fmt.Fprintf(&b, "%-6s", "Kind")
	for _, config := range Table5Configs {
		fmt.Fprintf(&b, " | %-10s %-8s", config+" lat", config+" area")
	}
	b.WriteString("\n")
	for _, kind := range core.Kinds() {
		fmt.Fprintf(&b, "%-6s", kind)
		for _, config := range Table5Configs {
			fmt.Fprintf(&b, " | %10.0f %7.2f%%", res.Latency[kind][config], res.Area[kind][config])
		}
		b.WriteString("\n")
	}
	return b.String()
}
