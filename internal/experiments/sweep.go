package experiments

import (
	"context"
	"fmt"
	"strings"

	"twosmart/internal/core"
	"twosmart/internal/dataset"
	"twosmart/internal/ml"
	"twosmart/internal/ml/ensemble"
	"twosmart/internal/parallel"
	"twosmart/internal/telemetry"
	"twosmart/internal/workload"
)

// SweepConfigs are the four detector configurations of Tables III/IV and
// Fig 4: 16, 8 and 4 HPC features without boosting, plus the 4-HPC
// AdaBoost-boosted configuration.
var SweepConfigs = []string{"16", "8", "4", "4-Boosted"}

// SweepResult holds the full specialized-detector sweep: one binary
// evaluation per (malware class, algorithm, configuration). It backs
// Table I, Table III, Table IV and Fig 4.
type SweepResult struct {
	Evals map[workload.Class]map[core.Kind]map[string]ml.BinaryEval
	// Models keeps the trained classifiers for the hardware cost
	// analysis (Table V).
	Models map[workload.Class]map[core.Kind]map[string]ml.Classifier
}

// Sweep trains and evaluates every specialized detector combination. The
// result is cached on the context. It is SweepContext without cancellation.
func (ctx *Context) Sweep() (*SweepResult, error) {
	return ctx.SweepContext(context.Background())
}

// SweepContext is Sweep with cancellation: the (class, algorithm,
// configuration) training jobs fan out over a bounded pool sized by
// Options.Workers (default NumCPU), and cancelling ctx aborts the sweep
// with ctx's error. Results are keyed, not ordered, so worker count cannot
// affect the outcome; each job's training is seeded independently.
func (c *Context) SweepContext(ctx context.Context) (*SweepResult, error) {
	c.mu.Lock()
	cached := c.sweep
	c.mu.Unlock()
	if cached != nil {
		return cached, nil
	}

	red, err := c.Table2()
	if err != nil {
		return nil, err
	}

	type job struct {
		class  workload.Class
		kind   core.Kind
		config string
	}
	var jobs []job
	for _, class := range workload.MalwareClasses() {
		for _, kind := range core.Kinds() {
			for _, config := range SweepConfigs {
				jobs = append(jobs, job{class, kind, config})
			}
		}
	}

	type trained struct {
		model ml.Classifier
		ev    ml.BinaryEval
	}
	reg := c.Opts.Telemetry
	span := reg.StartSpan("experiments/sweep")
	popts := parallel.Options{Workers: c.Opts.Workers, OnProgress: c.Opts.Progress}
	if reg.Enabled() {
		popts.Hook = telemetry.NewPoolHook(reg, "sweep")
	}
	out, err := parallel.Map(ctx, len(jobs), popts,
		func(_ context.Context, i int) (trained, error) {
			j := jobs[i]
			model, ev, err := c.trainSpecialized(red, j.class, j.kind, j.config)
			if err != nil {
				return trained{}, fmt.Errorf("experiments: %v/%v/%s: %w", j.class, j.kind, j.config, err)
			}
			return trained{model: model, ev: ev}, nil
		})
	span.End()
	if err != nil {
		return nil, err
	}

	res := &SweepResult{
		Evals:  make(map[workload.Class]map[core.Kind]map[string]ml.BinaryEval),
		Models: make(map[workload.Class]map[core.Kind]map[string]ml.Classifier),
	}
	for _, class := range workload.MalwareClasses() {
		res.Evals[class] = make(map[core.Kind]map[string]ml.BinaryEval)
		res.Models[class] = make(map[core.Kind]map[string]ml.Classifier)
		for _, kind := range core.Kinds() {
			res.Evals[class][kind] = make(map[string]ml.BinaryEval)
			res.Models[class][kind] = make(map[string]ml.Classifier)
		}
	}
	for i, j := range jobs {
		res.Evals[j.class][j.kind][j.config] = out[i].ev
		res.Models[j.class][j.kind][j.config] = out[i].model
	}

	c.mu.Lock()
	c.sweep = res
	c.mu.Unlock()
	return res, nil
}

// trainSpecialized trains one specialized binary detector and evaluates it
// on the held-out test data.
func (ctx *Context) trainSpecialized(red *Table2Result, class workload.Class, kind core.Kind, config string) (ml.Classifier, ml.BinaryEval, error) {
	numHPCs := 4
	boosted := false
	switch config {
	case "16":
		numHPCs = 16
	case "8":
		numHPCs = 8
	case "4":
		numHPCs = 4
	case "4-Boosted":
		numHPCs = 4
		boosted = true
	default:
		return nil, ml.BinaryEval{}, fmt.Errorf("unknown sweep config %q", config)
	}
	feats, err := red.ClassFeatureSet(class, numHPCs)
	if err != nil {
		return nil, ml.BinaryEval{}, err
	}

	trainBin, err := binaryView(ctx.Train, class, feats)
	if err != nil {
		return nil, ml.BinaryEval{}, err
	}
	testBin, err := binaryView(ctx.Test, class, feats)
	if err != nil {
		return nil, ml.BinaryEval{}, err
	}

	var trainer ml.Trainer = core.NewTrainer(kind, ctx.Opts.Seed)
	if boosted {
		trainer = &ensemble.AdaBoostTrainer{
			Base:   core.NewTrainer(kind, ctx.Opts.Seed),
			Rounds: ctx.Opts.BoostRounds,
			Seed:   ctx.Opts.Seed,
		}
	}
	model, err := trainer.Train(trainBin)
	if err != nil {
		return nil, ml.BinaryEval{}, err
	}
	ev, err := ml.EvaluateBinary(model, testBin)
	if err != nil {
		return nil, ml.BinaryEval{}, err
	}
	return model, ev, nil
}

func binaryView(d *dataset.Dataset, class workload.Class, feats []string) (*dataset.Dataset, error) {
	binary, err := core.BinaryTask(d, class)
	if err != nil {
		return nil, err
	}
	return binary.SelectByName(feats)
}

// --- Table I ---------------------------------------------------------------

// Table1Result reproduces Table I: the algorithm with the highest detection
// rate per malware class at 16, 8 and 4 HPCs.
type Table1Result struct {
	// Best[class][hpcs] is the winning algorithm; hpcs in {16, 8, 4}.
	Best map[workload.Class]map[int]core.Kind
}

// Table1 derives the per-class winners from the sweep.
func (ctx *Context) Table1() (*Table1Result, error) {
	sweep, err := ctx.Sweep()
	if err != nil {
		return nil, err
	}
	res := &Table1Result{Best: make(map[workload.Class]map[int]core.Kind)}
	for _, class := range workload.MalwareClasses() {
		res.Best[class] = make(map[int]core.Kind)
		for _, hpcs := range []int{16, 8, 4} {
			config := fmt.Sprintf("%d", hpcs)
			bestKind := core.J48
			bestF := -1.0
			for _, kind := range core.Kinds() {
				if ev := sweep.Evals[class][kind][config]; ev.F1 > bestF {
					bestF = ev.F1
					bestKind = kind
				}
			}
			res.Best[class][hpcs] = bestKind
		}
	}
	return res, nil
}

// DistinctWinners counts how many different algorithms appear in the table
// — the paper's point is that no single classifier wins everywhere.
func (res *Table1Result) DistinctWinners() int {
	seen := map[core.Kind]bool{}
	for _, byHPC := range res.Best {
		for _, k := range byHPC {
			seen[k] = true
		}
	}
	return len(seen)
}

// String renders the result in the shape of Table I.
func (res *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table I: ML classifiers with highest per-class detection rate\n\n")
	fmt.Fprintf(&b, "%-10s | %-6s | %-6s | %-6s\n", "Class", "16HPCs", "8HPCs", "4HPCs")
	for _, class := range workload.MalwareClasses() {
		fmt.Fprintf(&b, "%-10s | %-6s | %-6s | %-6s\n", class,
			res.Best[class][16], res.Best[class][8], res.Best[class][4])
	}
	return b.String()
}

// --- Table III --------------------------------------------------------------

// Table3Result reproduces Table III: F-measure (x100) of every specialized
// detector with and without boosting.
type Table3Result struct {
	// F[class][kind][config] is the F-measure in percent.
	F map[workload.Class]map[core.Kind]map[string]float64
}

// Table3 derives the F-measure table from the sweep.
func (ctx *Context) Table3() (*Table3Result, error) {
	sweep, err := ctx.Sweep()
	if err != nil {
		return nil, err
	}
	res := &Table3Result{F: make(map[workload.Class]map[core.Kind]map[string]float64)}
	for class, byKind := range sweep.Evals {
		res.F[class] = make(map[core.Kind]map[string]float64)
		for kind, byConfig := range byKind {
			res.F[class][kind] = make(map[string]float64)
			for config, ev := range byConfig {
				res.F[class][kind][config] = 100 * ev.F1
			}
		}
	}
	return res, nil
}

// String renders the result in the shape of Table III.
func (res *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table III: F-measure (%) of 2SMaRT detectors with and without boosting\n")
	for _, class := range workload.MalwareClasses() {
		fmt.Fprintf(&b, "\n%s:\n%-6s", class, "")
		for _, config := range SweepConfigs {
			fmt.Fprintf(&b, " | %9s", config)
		}
		b.WriteString("\n")
		for _, kind := range core.Kinds() {
			fmt.Fprintf(&b, "%-6s", kind)
			for _, config := range SweepConfigs {
				fmt.Fprintf(&b, " | %9.1f", res.F[class][kind][config])
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// --- Fig 4 ------------------------------------------------------------------

// Fig4Result reproduces Fig 4: detection performance (F x AUC, x100) for
// every classifier, class and configuration.
type Fig4Result struct {
	Performance map[workload.Class]map[core.Kind]map[string]float64
}

// Fig4 derives detection performance from the sweep.
func (ctx *Context) Fig4() (*Fig4Result, error) {
	sweep, err := ctx.Sweep()
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{Performance: make(map[workload.Class]map[core.Kind]map[string]float64)}
	for class, byKind := range sweep.Evals {
		res.Performance[class] = make(map[core.Kind]map[string]float64)
		for kind, byConfig := range byKind {
			res.Performance[class][kind] = make(map[string]float64)
			for config, ev := range byConfig {
				res.Performance[class][kind][config] = 100 * ev.Performance
			}
		}
	}
	return res, nil
}

// Average returns the mean detection performance across classes and kinds
// for one configuration (the paper quotes 74.8% at 16 HPCs dropping to
// 70.9% at 4 HPCs).
func (res *Fig4Result) Average(config string) float64 {
	var sum float64
	var n int
	for _, byKind := range res.Performance {
		for _, byConfig := range byKind {
			sum += byConfig[config]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// String renders the per-class performance series of Fig 4.
func (res *Fig4Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 4: malware detection performance (F x AUC, %) of 2SMaRT\n")
	for _, class := range workload.MalwareClasses() {
		fmt.Fprintf(&b, "\n%s:\n%-6s", class, "")
		for _, config := range SweepConfigs {
			fmt.Fprintf(&b, " | %9s", config)
		}
		b.WriteString("\n")
		for _, kind := range core.Kinds() {
			fmt.Fprintf(&b, "%-6s", kind)
			for _, config := range SweepConfigs {
				fmt.Fprintf(&b, " | %9.1f", res.Performance[class][kind][config])
			}
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "\naverage performance: 16HPC=%.1f%% 8HPC=%.1f%% 4HPC=%.1f%% 4-Boosted=%.1f%%\n",
		res.Average("16"), res.Average("8"), res.Average("4"), res.Average("4-Boosted"))
	return b.String()
}

// --- Table IV ---------------------------------------------------------------

// Table4Result reproduces Table IV: the average detection-performance
// improvement of the boosted 4-HPC detector over the unboosted 8-HPC and
// 4-HPC detectors, per algorithm.
type Table4Result struct {
	// ImprovementOver8 and ImprovementOver4 are percentages (positive =
	// boosting helps), averaged across malware classes.
	ImprovementOver8 map[core.Kind]float64
	ImprovementOver4 map[core.Kind]float64
}

// Table4 derives the improvement table from the sweep.
func (ctx *Context) Table4() (*Table4Result, error) {
	fig4, err := ctx.Fig4()
	if err != nil {
		return nil, err
	}
	res := &Table4Result{
		ImprovementOver8: make(map[core.Kind]float64),
		ImprovementOver4: make(map[core.Kind]float64),
	}
	for _, kind := range core.Kinds() {
		var over8, over4 float64
		n := 0
		for _, class := range workload.MalwareClasses() {
			perf := fig4.Performance[class][kind]
			boosted := perf["4-Boosted"]
			if perf["8"] > 0 {
				over8 += 100 * (boosted - perf["8"]) / perf["8"]
			}
			if perf["4"] > 0 {
				over4 += 100 * (boosted - perf["4"]) / perf["4"]
			}
			n++
		}
		res.ImprovementOver8[kind] = over8 / float64(n)
		res.ImprovementOver4[kind] = over4 / float64(n)
	}
	return res, nil
}

// String renders the result in the shape of Table IV.
func (res *Table4Result) String() string {
	var b strings.Builder
	b.WriteString("Table IV: average performance improvement of 2SMaRT\n\n")
	fmt.Fprintf(&b, "%-6s | %-22s | %-22s\n", "Kind", "8HPC->4HPC-Boosted", "4HPC->4HPC-Boosted")
	for _, kind := range core.Kinds() {
		fmt.Fprintf(&b, "%-6s | %21.1f%% | %21.1f%%\n", kind,
			res.ImprovementOver8[kind], res.ImprovementOver4[kind])
	}
	return b.String()
}
