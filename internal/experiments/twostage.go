package experiments

import (
	"fmt"
	"strings"

	"twosmart/internal/baseline"
	"twosmart/internal/core"
	"twosmart/internal/metrics"
	"twosmart/internal/workload"
)

// Fig3Result reproduces the end-to-end two-stage architecture of Fig 3:
// stage-1 multiclass accuracy and the final detection quality of the full
// pipeline, trained on the derived Common 4-HPC features.
type Fig3Result struct {
	// Stage1Accuracy4 and Stage1Accuracy16 are the stage-1 MLR
	// multiclass accuracies with 4 and 16 features (the paper reports
	// ~80% and ~83%).
	Stage1Accuracy4  float64
	Stage1Accuracy16 float64
	// EndToEndF is the pooled malware-versus-benign F-measure of the
	// full two-stage detector on the test set.
	EndToEndF float64
	// Stage2Winners is the automatically selected specialized algorithm
	// per class.
	Stage2Winners map[workload.Class]core.Kind
}

// Fig3 trains and evaluates the full two-stage detector.
func (ctx *Context) Fig3() (*Fig3Result, error) {
	red, err := ctx.Table2()
	if err != nil {
		return nil, err
	}
	feats := map[workload.Class][]string{}
	for _, c := range workload.MalwareClasses() {
		feats[c] = core.CommonFeatures
	}
	det, err := core.Train(ctx.Train, core.TrainConfig{
		Stage1Features: core.CommonFeatures,
		Stage2Features: feats,
		Seed:           ctx.Opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	det16, err := core.Train(ctx.Train, core.TrainConfig{
		Stage1Features: red.CorrelationTop16,
		Stage2Features: feats,
		Stage2Kinds: map[workload.Class]core.Kind{ // only stage 1 matters here
			workload.Backdoor: core.OneR, workload.Rootkit: core.OneR,
			workload.Virus: core.OneR, workload.Trojan: core.OneR,
		},
		Seed: ctx.Opts.Seed,
	})
	if err != nil {
		return nil, err
	}

	res := &Fig3Result{Stage2Winners: make(map[workload.Class]core.Kind)}
	for _, c := range workload.MalwareClasses() {
		kind, _, err := det.Stage2Info(c)
		if err != nil {
			return nil, err
		}
		res.Stage2Winners[c] = kind
	}

	var s1ok4, s1ok16 int
	var conf metrics.Confusion
	for _, ins := range ctx.Test.Instances {
		c4, err := det.Stage1Predict(ins.Features)
		if err != nil {
			return nil, err
		}
		if int(c4) == ins.Label {
			s1ok4++
		}
		c16, err := det16.Stage1Predict(ins.Features)
		if err != nil {
			return nil, err
		}
		if int(c16) == ins.Label {
			s1ok16++
		}
		v, err := det.Detect(ins.Features)
		if err != nil {
			return nil, err
		}
		conf.Add(workload.Class(ins.Label).IsMalware(), v.Malware)
	}
	n := float64(ctx.Test.Len())
	res.Stage1Accuracy4 = float64(s1ok4) / n
	res.Stage1Accuracy16 = float64(s1ok16) / n
	res.EndToEndF = conf.F1()
	return res, nil
}

// String summarises the two-stage pipeline results.
func (res *Fig3Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 3: 2SMaRT two-stage pipeline (Common 4-HPC features)\n\n")
	fmt.Fprintf(&b, "stage-1 MLR accuracy (4 HPCs):  %.1f%%\n", 100*res.Stage1Accuracy4)
	fmt.Fprintf(&b, "stage-1 MLR accuracy (16 HPCs): %.1f%%\n", 100*res.Stage1Accuracy16)
	fmt.Fprintf(&b, "end-to-end detection F-measure: %.1f%%\n\n", 100*res.EndToEndF)
	b.WriteString("stage-2 specialized winners:\n")
	for _, c := range workload.MalwareClasses() {
		fmt.Fprintf(&b, "  %-10s %v\n", c, res.Stage2Winners[c])
	}
	return b.String()
}

// Fig5aResult reproduces Fig 5a: F-measure of the stage-1 MLR used alone
// versus the full two-stage 2SMaRT, per malware class, on the Common 4-HPC
// features.
type Fig5aResult struct {
	// Stage1F[class] treats MLR's multiclass output as a detector for
	// that class (malware iff predicted in that class) over the
	// benign-vs-class test subset; TwoStageF[class] runs both stages.
	Stage1F   map[workload.Class]float64
	TwoStageF map[workload.Class]float64
}

// Fig5a compares stage-1-only detection against the two-stage pipeline.
func (ctx *Context) Fig5a() (*Fig5aResult, error) {
	feats := map[workload.Class][]string{}
	for _, c := range workload.MalwareClasses() {
		feats[c] = core.CommonFeatures
	}
	det, err := core.Train(ctx.Train, core.TrainConfig{
		Stage1Features: core.CommonFeatures,
		Stage2Features: feats,
		Seed:           ctx.Opts.Seed,
	})
	if err != nil {
		return nil, err
	}

	res := &Fig5aResult{
		Stage1F:   make(map[workload.Class]float64),
		TwoStageF: make(map[workload.Class]float64),
	}
	for _, class := range workload.MalwareClasses() {
		var s1Conf, tsConf metrics.Confusion
		for _, ins := range ctx.Test.Instances {
			actual := workload.Class(ins.Label)
			if actual != workload.Benign && actual != class {
				continue
			}
			positive := actual == class

			// Both detectors are scored on the malware-vs-benign
			// decision over the benign-plus-class-c subset: the
			// stage-1-only HMD flags malware when MLR predicts any
			// malware class; 2SMaRT flags it when stage 2 confirms.
			c1, err := det.Stage1Predict(ins.Features)
			if err != nil {
				return nil, err
			}
			s1Conf.Add(positive, c1 != workload.Benign)

			v, err := det.Detect(ins.Features)
			if err != nil {
				return nil, err
			}
			tsConf.Add(positive, v.Malware)
		}
		res.Stage1F[class] = s1Conf.F1()
		res.TwoStageF[class] = tsConf.F1()
	}
	return res, nil
}

// AverageImprovement returns the mean F gain (percentage points) of the
// two-stage detector over stage-1 alone.
func (res *Fig5aResult) AverageImprovement() float64 {
	var sum float64
	var n int
	for c, f := range res.TwoStageF {
		sum += 100 * (f - res.Stage1F[c])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// String renders the comparison.
func (res *Fig5aResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 5a: Stage1-MLR alone vs two-stage 2SMaRT (F-measure %, 4 Common HPCs)\n\n")
	fmt.Fprintf(&b, "%-10s | %-11s | %-14s\n", "Class", "Stage1-MLR", "2SMaRT")
	for _, c := range workload.MalwareClasses() {
		fmt.Fprintf(&b, "%-10s | %11.1f | %14.1f\n", c, 100*res.Stage1F[c], 100*res.TwoStageF[c])
	}
	fmt.Fprintf(&b, "\naverage two-stage improvement: %.1f points\n", res.AverageImprovement())
	return b.String()
}

// Fig5bResult reproduces Fig 5b: detection rate of 2SMaRT with 4 HPCs
// (with and without boosting) against the single-stage state-of-the-art
// HMD [2] using 4 and 8 HPCs, per algorithm, on the pooled
// malware-versus-benign task.
type Fig5bResult struct {
	// SingleStage4/SingleStage8: F of the [2]-style general detector.
	SingleStage4, SingleStage8 map[core.Kind]float64
	// TwoStage4/TwoStage4Boosted: F of end-to-end 2SMaRT with the given
	// stage-2 algorithm for all classes.
	TwoStage4, TwoStage4Boosted map[core.Kind]float64
}

// Fig5b runs the comparison against the single-stage baseline.
func (ctx *Context) Fig5b() (*Fig5bResult, error) {
	res := &Fig5bResult{
		SingleStage4:     make(map[core.Kind]float64),
		SingleStage8:     make(map[core.Kind]float64),
		TwoStage4:        make(map[core.Kind]float64),
		TwoStage4Boosted: make(map[core.Kind]float64),
	}
	feats := map[workload.Class][]string{}
	kinds := map[workload.Class]core.Kind{}
	for _, c := range workload.MalwareClasses() {
		feats[c] = core.CommonFeatures
	}

	for _, kind := range core.Kinds() {
		// Single-stage [2]-style general detectors. At 4 HPCs both
		// systems read the same four run-time-available counters (the
		// Common set), so the comparison isolates the architectural
		// difference (general single-stage versus two-stage
		// specialized). At 8 HPCs the baseline gets its own pooled
		// correlation selection, since collecting 8 events already
		// requires two runs.
		for _, n := range []int{4, 8} {
			cfg := baseline.Config{Kind: kind, NumHPCs: n, Seed: ctx.Opts.Seed}
			if n == 4 {
				cfg.Features = core.CommonFeatures
			}
			det, err := baseline.Train(ctx.Train, cfg)
			if err != nil {
				return nil, err
			}
			f, err := macroF(ctx, func(fv []float64) (bool, error) { return det.Detect(fv) })
			if err != nil {
				return nil, err
			}
			if n == 4 {
				res.SingleStage4[kind] = f
			} else {
				res.SingleStage8[kind] = f
			}
		}

		// 2SMaRT with this algorithm as every class's stage-2 detector.
		for _, c := range workload.MalwareClasses() {
			kinds[c] = kind
		}
		for _, boosted := range []bool{false, true} {
			det, err := core.Train(ctx.Train, core.TrainConfig{
				Stage1Features: core.CommonFeatures,
				Stage2Features: feats,
				Stage2Kinds:    kinds,
				Boost:          boosted,
				BoostRounds:    ctx.Opts.BoostRounds,
				Seed:           ctx.Opts.Seed,
			})
			if err != nil {
				return nil, err
			}
			f, err := macroF(ctx, func(fv []float64) (bool, error) {
				v, err := det.Detect(fv)
				return v.Malware, err
			})
			if err != nil {
				return nil, err
			}
			if boosted {
				res.TwoStage4Boosted[kind] = f
			} else {
				res.TwoStage4[kind] = f
			}
		}
	}
	return res, nil
}

// macroF scores a malware/benign decision function as the unweighted mean
// of its F-measures over the four benign-plus-one-class test subsets. The
// macro average weights every malware class equally (as the paper's
// per-class evaluation does), so a detector cannot hide weak rare-class
// recall behind the dominant Trojan population.
func macroF(ctx *Context, detect func([]float64) (bool, error)) (float64, error) {
	var sum float64
	for _, class := range workload.MalwareClasses() {
		var conf metrics.Confusion
		for _, ins := range ctx.Test.Instances {
			actual := workload.Class(ins.Label)
			if actual != workload.Benign && actual != class {
				continue
			}
			malware, err := detect(ins.Features)
			if err != nil {
				return 0, err
			}
			conf.Add(actual == class, malware)
		}
		sum += conf.F1()
	}
	return sum / float64(len(workload.MalwareClasses())), nil
}

// AverageGainOverSingleStage returns the mean F gain (percentage points) of
// 2SMaRT-4HPC (unboosted, boosted) over the single-stage detector with the
// given HPC count.
func (res *Fig5bResult) AverageGainOverSingleStage(hpcs int) (unboosted, boosted float64) {
	single := res.SingleStage4
	if hpcs == 8 {
		single = res.SingleStage8
	}
	var su, sb float64
	var n int
	for kind, f := range single {
		su += 100 * (res.TwoStage4[kind] - f)
		sb += 100 * (res.TwoStage4Boosted[kind] - f)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return su / float64(n), sb / float64(n)
}

// String renders the comparison.
func (res *Fig5bResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 5b: 2SMaRT (4 HPCs) vs single-stage HMD [2] (F-measure %)\n\n")
	fmt.Fprintf(&b, "%-6s | %-9s | %-9s | %-10s | %-16s\n",
		"Kind", "[2] 4HPC", "[2] 8HPC", "2SMaRT-4", "2SMaRT-4-Boosted")
	for _, kind := range core.Kinds() {
		fmt.Fprintf(&b, "%-6s | %9.1f | %9.1f | %10.1f | %16.1f\n", kind,
			100*res.SingleStage4[kind], 100*res.SingleStage8[kind],
			100*res.TwoStage4[kind], 100*res.TwoStage4Boosted[kind])
	}
	u4, b4 := res.AverageGainOverSingleStage(4)
	u8, b8 := res.AverageGainOverSingleStage(8)
	fmt.Fprintf(&b, "\navg gain over [2]-4HPC: %.1f (unboosted), %.1f (boosted) points\n", u4, b4)
	fmt.Fprintf(&b, "avg gain over [2]-8HPC: %.1f (unboosted), %.1f (boosted) points\n", u8, b8)
	return b.String()
}
