package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"twosmart/internal/core"
	"twosmart/internal/corpus"
	"twosmart/internal/hpc"
	"twosmart/internal/workload"
)

var (
	ctxOnce sync.Once
	ctxVal  *Context
	ctxErr  error
)

// testContext builds one reduced-scale shared context for the whole test
// package (collection plus the sweep dominate test time).
func testContext(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() {
		ctxVal, ctxErr = NewContext(Options{
			Corpus: corpus.Config{
				Scale:       0.001,
				MinPerClass: 40,
				Budget:      30000,
				Seed:        3,
				Omniscient:  true,
			},
			Seed:        3,
			BoostRounds: 8,
		})
	})
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return ctxVal
}

func validEvent(name string) bool {
	_, ok := hpc.EventByName(name)
	return ok
}

func TestTable2Reduction(t *testing.T) {
	ctx := testContext(t)
	res, err := ctx.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CorrelationTop16) != 16 {
		t.Fatalf("correlation kept %d features", len(res.CorrelationTop16))
	}
	for _, n := range res.CorrelationTop16 {
		if !validEvent(n) {
			t.Fatalf("unknown event %q in top-16", n)
		}
	}
	for _, c := range workload.MalwareClasses() {
		if len(res.Top8[c]) != 8 {
			t.Fatalf("%v top-8 has %d entries", c, len(res.Top8[c]))
		}
	}
	if len(res.Common) != 4 {
		t.Fatalf("common set has %d features", len(res.Common))
	}
	if s := res.String(); len(s) == 0 {
		t.Fatal("empty rendering")
	}
	t.Logf("\n%s", res)

	// Feature-set accessor.
	if _, err := res.ClassFeatureSet(workload.Virus, 12); err == nil {
		t.Fatal("unsupported HPC count accepted")
	}
	f4, _ := res.ClassFeatureSet(workload.Virus, 4)
	if len(f4) != 4 {
		t.Fatal("4-HPC set wrong size")
	}
}

func TestTable1Winners(t *testing.T) {
	ctx := testContext(t)
	res, err := ctx.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range workload.MalwareClasses() {
		for _, hpcs := range []int{16, 8, 4} {
			k := res.Best[c][hpcs]
			if k.String() == "" {
				t.Fatalf("no winner for %v/%d", c, hpcs)
			}
		}
	}
	t.Logf("\n%s\ndistinct winners: %d", res, res.DistinctWinners())
}

func TestTable3FMeasures(t *testing.T) {
	ctx := testContext(t)
	res, err := ctx.Table3()
	if err != nil {
		t.Fatal(err)
	}
	var sum16, sum4 float64
	var n int
	for _, c := range workload.MalwareClasses() {
		for _, k := range core.Kinds() {
			for _, config := range SweepConfigs {
				f := res.F[c][k][config]
				if f < 0 || f > 100 {
					t.Fatalf("%v/%v/%s F=%v outside [0,100]", c, k, config, f)
				}
			}
			sum16 += res.F[c][k]["16"]
			sum4 += res.F[c][k]["4"]
			n++
		}
	}
	t.Logf("\n%s", res)
	t.Logf("mean F: 16HPC=%.1f 4HPC=%.1f", sum16/float64(n), sum4/float64(n))
}

func TestTable4Improvements(t *testing.T) {
	ctx := testContext(t)
	res, err := ctx.Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range core.Kinds() {
		if _, ok := res.ImprovementOver8[k]; !ok {
			t.Fatalf("missing improvement for %v", k)
		}
	}
	t.Logf("\n%s", res)
}

func TestFig4Performance(t *testing.T) {
	ctx := testContext(t)
	res, err := ctx.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	for _, config := range SweepConfigs {
		avg := res.Average(config)
		if avg <= 0 || avg > 100 {
			t.Fatalf("average performance %v for %s", avg, config)
		}
	}
	t.Logf("\n%s", res)
}

func TestFig3TwoStage(t *testing.T) {
	ctx := testContext(t)
	res, err := ctx.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stage1Accuracy4 < 0.4 {
		t.Fatalf("stage-1 accuracy %.2f too low", res.Stage1Accuracy4)
	}
	if res.EndToEndF < 0.5 {
		t.Fatalf("end-to-end F %.2f too low", res.EndToEndF)
	}
	if len(res.Stage2Winners) != 4 {
		t.Fatal("missing stage-2 winners")
	}
	t.Logf("\n%s", res)
}

func TestFig5aTwoStageBeatsStage1(t *testing.T) {
	ctx := testContext(t)
	res, err := ctx.Fig5a()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range workload.MalwareClasses() {
		if res.Stage1F[c] < 0 || res.Stage1F[c] > 1 || res.TwoStageF[c] < 0 || res.TwoStageF[c] > 1 {
			t.Fatalf("F out of range for %v", c)
		}
	}
	// The paper's claim: the second stage improves on MLR alone (up to
	// +19 points). Allow slack for the reduced corpus but require the
	// average not to regress materially.
	if imp := res.AverageImprovement(); imp < -3 {
		t.Fatalf("two-stage average improvement %.1f points (regressed)", imp)
	}
	t.Logf("\n%s", res)
}

func TestFig5bBeatsSingleStage(t *testing.T) {
	ctx := testContext(t)
	res, err := ctx.Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range core.Kinds() {
		for _, m := range []map[core.Kind]float64{res.SingleStage4, res.SingleStage8, res.TwoStage4, res.TwoStage4Boosted} {
			if f, ok := m[k]; !ok || f < 0 || f > 1 {
				t.Fatalf("missing or invalid F for %v", k)
			}
		}
	}
	t.Logf("\n%s", res)
}

func TestTable5Hardware(t *testing.T) {
	ctx := testContext(t)
	res, err := ctx.Table5()
	if err != nil {
		t.Fatal(err)
	}
	// OneR decides in one cycle regardless of configuration.
	if res.Latency[core.OneR]["4"] != 1 || res.Latency[core.OneR]["8"] != 1 {
		t.Fatalf("OneR latency %v/%v, want 1", res.Latency[core.OneR]["8"], res.Latency[core.OneR]["4"])
	}
	// MLP dominates latency and area at every configuration.
	for _, config := range Table5Configs {
		for _, k := range []core.Kind{core.J48, core.JRip, core.OneR} {
			if res.Latency[core.MLP][config] <= res.Latency[k][config] {
				t.Fatalf("MLP latency %v not above %v's %v at %s",
					res.Latency[core.MLP][config], k, res.Latency[k][config], config)
			}
			if res.Area[core.MLP][config] <= res.Area[k][config] {
				t.Fatalf("MLP area %v not above %v's %v at %s",
					res.Area[core.MLP][config], k, res.Area[k][config], config)
			}
		}
	}
	// Boosting increases latency over the unboosted 4-HPC detector.
	for _, k := range core.Kinds() {
		if res.Latency[k]["4-Boosted"] <= res.Latency[k]["4"] {
			t.Fatalf("%v boosted latency %v not above unboosted %v",
				k, res.Latency[k]["4-Boosted"], res.Latency[k]["4"])
		}
	}
	t.Logf("\n%s", res)
}

func TestFig1Traces(t *testing.T) {
	ctx := testContext(t)
	res, err := ctx.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BenignBranches) == 0 || len(res.MalwareBranches) == 0 {
		t.Fatal("missing trace samples")
	}
	// Fig 1's claim is that malware traces differ significantly from
	// benign ones on both events. Direction depends on CPI (per-interval
	// counts shrink when miss-heavy payloads stall the core), so require
	// a large relative difference either way.
	relDiff := func(a, b float64) float64 {
		if b == 0 {
			return 1
		}
		d := a/b - 1
		if d < 0 {
			d = -d
		}
		return d
	}
	if relDiff(res.MalwareMeanBranch, res.BenignMeanBranch) < 0.3 {
		t.Fatalf("branch traces too similar: malware %.0f vs benign %.0f",
			res.MalwareMeanBranch, res.BenignMeanBranch)
	}
	if relDiff(res.MalwareMeanMiss, res.BenignMeanMiss) < 0.3 {
		t.Fatalf("branch-miss traces too similar: malware %.0f vs benign %.0f",
			res.MalwareMeanMiss, res.BenignMeanMiss)
	}
	t.Logf("\n%s", res)
}

func TestFig2Pipeline(t *testing.T) {
	ctx := testContext(t)
	res, err := ctx.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 11 || res.EventsPerBatch != 4 || res.TotalEvents != 44 {
		t.Fatalf("schedule %d batches x %d events over %d total",
			res.Batches, res.EventsPerBatch, res.TotalEvents)
	}
	if res.RunsPerApp != 11 {
		t.Fatalf("runs per app=%d, want 11", res.RunsPerApp)
	}
	if res.ContainersCreated != 11 || res.ContainersAlive != 0 {
		t.Fatalf("containers created=%d alive=%d, want 11/0",
			res.ContainersCreated, res.ContainersAlive)
	}
	if !res.OverLimitRejected {
		t.Fatal("counter file accepted more events than registers")
	}
	t.Logf("\n%s", res)
}

func TestContextFromDataset(t *testing.T) {
	ctx := testContext(t)
	ctx2, err := NewContextFromDataset(ctx.Data, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ctx2.Train.Len()+ctx2.Test.Len() != ctx.Data.Len() {
		t.Fatal("split lost instances")
	}
}

func TestReportJSON(t *testing.T) {
	ctx := testContext(t)
	report, err := ctx.Report()
	if err != nil {
		t.Fatal(err)
	}
	if report.Meta.CorpusSamples != ctx.Data.Len() {
		t.Fatal("meta wrong")
	}
	if len(report.Table3) != 4 || len(report.Fig4) != 4 {
		t.Fatal("sweep sections incomplete")
	}
	if len(report.Table2.Top8) != 4 || len(report.Table2.CorrelationTop16) != 16 {
		t.Fatal("reduction section incomplete")
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round map[string]any
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{"meta", "fig1", "table1", "table2", "fig2", "fig3", "table3_f_measure", "fig4_performance", "table4", "fig5a", "fig5b", "table5"} {
		if _, ok := round[key]; !ok {
			t.Fatalf("report missing section %q", key)
		}
	}
}

func TestExtGranularity(t *testing.T) {
	ctx := testContext(t)
	res, err := ctx.ExtGranularity()
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleF <= 0 || res.SampleF > 1 || res.AppF <= 0 || res.AppF > 1 {
		t.Fatalf("F out of range: sample=%v app=%v", res.SampleF, res.AppF)
	}
	if res.Apps == 0 {
		t.Fatal("no applications")
	}
	// Majority voting must not be materially worse than per-sample
	// decisions (it denoises them).
	if res.AppF < res.SampleF-0.05 {
		t.Fatalf("app-level F %.3f well below sample-level %.3f", res.AppF, res.SampleF)
	}
	t.Logf("\n%s", res)
}

func TestExtLatency(t *testing.T) {
	ctx := testContext(t)
	res, err := ctx.ExtLatency()
	if err != nil {
		t.Fatal(err)
	}
	if res.Total == 0 || res.BenignTotal == 0 {
		t.Fatal("no applications streamed")
	}
	if res.Detected < res.Total*2/3 {
		t.Fatalf("monitor detected only %d/%d malware apps", res.Detected, res.Total)
	}
	if res.Detected > 0 && res.MeanSamples <= 0 {
		t.Fatal("no latency recorded")
	}
	t.Logf("\n%s", res)
}

func TestExtInterference(t *testing.T) {
	ctx := testContext(t)
	res, err := ctx.ExtInterference()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recall) != len(res.Shares) {
		t.Fatal("shape mismatch")
	}
	for i, r := range res.Recall {
		if r < 0 || r > 1 {
			t.Fatalf("recall[%d]=%v", i, r)
		}
	}
	// Isolated malware must be detected well; dilution reduces recall.
	if res.Recall[0] < 0.6 {
		t.Fatalf("isolated recall %.2f too low", res.Recall[0])
	}
	if res.Recall[len(res.Recall)-1] > res.Recall[0]+0.05 {
		t.Fatalf("dilution did not reduce recall: %v", res.Recall)
	}
	t.Logf("\n%s", res)
}

func TestExtCascade(t *testing.T) {
	ctx := testContext(t)
	res, err := ctx.ExtCascade()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(extCascadeMultipliers) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(extCascadeMultipliers))
	}
	if res.BaselineF <= 0 || res.BaselineF > 1 || res.BaselineNs <= 0 {
		t.Fatalf("baseline out of range: F=%v ns=%v", res.BaselineF, res.BaselineNs)
	}
	for i, p := range res.Points {
		if p.ShortFrac < 0 || p.ShortFrac > 1 {
			t.Fatalf("point %d short fraction %v", i, p.ShortFrac)
		}
		if p.Stage0Ns <= 0 {
			t.Fatalf("point %d has no stage-0 cost", i)
		}
		if p.F < 0 || p.F > 1 {
			t.Fatalf("point %d F %v", i, p.F)
		}
		// Widening the threshold can only short-circuit more.
		if i > 0 && p.ShortFrac < res.Points[i-1].ShortFrac {
			t.Fatalf("short fraction not monotone: %v then %v", res.Points[i-1].ShortFrac, p.ShortFrac)
		}
	}
	// The trained operating point is calibrated so held-out benign
	// mostly scores inside the envelope: on a benign-carrying split it
	// must short-circuit a meaningful share of the benign traffic. The
	// accuracy delta is a reported measurement, not an invariant — at
	// this reduced corpus scale the envelope sees too few benign samples
	// to bound malware overlap.
	trained := res.Points[2]
	if trained.Multiplier != 1 {
		t.Fatalf("point order changed: %v", res.Points)
	}
	if res.TestBenignFrac > 0 && trained.ShortFrac < res.TestBenignFrac/2 {
		t.Fatalf("calibrated threshold short-circuited %.1f%% with %.1f%% benign traffic",
			100*trained.ShortFrac, 100*res.TestBenignFrac)
	}
	t.Logf("\n%s", res)
}

// Cancelling mid-sweep must abort promptly with context.Canceled, leak no
// goroutines, and leave the sweep cache unpopulated so a later call can
// retry.
func TestSweepCancellation(t *testing.T) {
	shared := testContext(t)
	// A fresh context over the same data: the shared one may already have
	// a cached sweep.
	c, err := NewContextFromDataset(shared.Data, shared.Opts)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := c.SweepContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	c.mu.Lock()
	cached := c.sweep
	c.mu.Unlock()
	if cached != nil {
		t.Fatal("cancelled sweep must not populate the cache")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The Workers knob must bound sweep concurrency (the old implementation
// hard-coded 8) without changing results.
func TestSweepWorkersKnob(t *testing.T) {
	shared := testContext(t)
	ref, err := shared.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	opts := shared.Opts
	opts.Workers = 1
	c, err := NewContextFromDataset(shared.Data, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range workload.MalwareClasses() {
		for _, kind := range core.Kinds() {
			for _, config := range SweepConfigs {
				if ref.Evals[class][kind][config] != got.Evals[class][kind][config] {
					t.Fatalf("%v/%v/%s differs between Workers=default and Workers=1",
						class, kind, config)
				}
			}
		}
	}
}
