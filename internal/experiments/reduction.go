package experiments

import (
	"fmt"
	"sort"
	"strings"

	"twosmart/internal/core"
	"twosmart/internal/features"
	"twosmart/internal/workload"
)

// Table2Result reproduces Table II: the feature-reduction pipeline's output
// — the shared correlation top-16, each malware class's PCA top-8, and the
// derived Common (shared across all classes) and per-class feature sets
// used by the detector sweep.
type Table2Result struct {
	// CorrelationTop16 is the shared correlation-selected event list
	// (rank order) computed on the multiclass training data.
	CorrelationTop16 []string
	// Top8 is each class's PCA-selected eight events (rank order).
	Top8 map[workload.Class][]string
	// Common are the events shared by every class's top-8 (the paper
	// finds exactly four), padded from the correlation ranking if fewer
	// than four are shared; truncated to four if more are.
	Common []string
	// PaperCommon is the paper's published Common set, for comparison.
	PaperCommon []string
}

// Table2 runs the feature-reduction pipeline of Section III-B: correlation
// attribute evaluation keeps 16 of the 44 events; per-class PCA over those
// 16 keeps 8 per malware class; the events shared by all classes form the
// Common set.
func (ctx *Context) Table2() (*Table2Result, error) {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	if ctx.reduction != nil {
		return ctx.reduction, nil
	}

	ranked, err := features.CorrelationRank(ctx.Train)
	if err != nil {
		return nil, err
	}
	top16 := features.Names(ranked, 16)

	res := &Table2Result{
		CorrelationTop16: top16,
		Top8:             make(map[workload.Class][]string),
		PaperCommon:      append([]string(nil), core.CommonFeatures...),
	}

	for _, class := range workload.MalwareClasses() {
		binary, err := core.BinaryTask(ctx.Train, class)
		if err != nil {
			return nil, err
		}
		sub, err := binary.SelectByName(top16)
		if err != nil {
			return nil, err
		}
		pca, err := features.FitPCA(sub)
		if err != nil {
			return nil, fmt.Errorf("experiments: PCA for %v: %w", class, err)
		}
		// Rank over the leading components carrying most variance.
		res.Top8[class] = features.Names(pca.RankFeatures(8), 8)
	}

	res.Common = deriveCommon(res, top16)
	ctx.reduction = res
	return res, nil
}

// deriveCommon intersects the per-class top-8 sets and returns the four
// best-ranked shared events, padding from the correlation order when the
// intersection is smaller than four.
func deriveCommon(res *Table2Result, corrOrder []string) []string {
	shared := map[string]int{}
	for _, class := range workload.MalwareClasses() {
		for _, name := range res.Top8[class] {
			shared[name]++
		}
	}
	rank := map[string]int{}
	for i, name := range corrOrder {
		rank[name] = i
	}
	var common []string
	for name, n := range shared {
		if n == len(workload.MalwareClasses()) {
			common = append(common, name)
		}
	}
	sort.Slice(common, func(i, j int) bool { return rank[common[i]] < rank[common[j]] })
	if len(common) > 4 {
		common = common[:4]
	}
	for _, name := range corrOrder {
		if len(common) >= 4 {
			break
		}
		already := false
		for _, c := range common {
			if c == name {
				already = true
				break
			}
		}
		if !already {
			common = append(common, name)
		}
	}
	return common
}

// ClassFeatureSet returns the feature list the detector experiments use for
// one class at a given HPC count. The 16-HPC set is the measured
// correlation selection (the paper does not publish its 16). The 8- and
// 4-HPC sets are the paper's published Table II configuration (per-class
// Custom-8 and the Common-4): the experiments reproduce the paper's
// *configured system*, while the data-driven reduction output (Top8 /
// Common) is reported by Table2 for comparison — our simulator's most
// correlated events differ from the Xeon's, which EXPERIMENTS.md discusses.
func (res *Table2Result) ClassFeatureSet(class workload.Class, numHPCs int) ([]string, error) {
	switch numHPCs {
	case 16:
		return res.CorrelationTop16, nil
	case 8:
		return core.CustomFeatures(class)
	case 4:
		return core.CommonFeatures, nil
	default:
		return nil, fmt.Errorf("experiments: unsupported HPC count %d (want 16, 8 or 4)", numHPCs)
	}
}

// String renders the result in the shape of Table II.
func (res *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: prominent top-8 HPC features per malware class\n")
	fmt.Fprintf(&b, "(correlation top-16: %s)\n\n", strings.Join(res.CorrelationTop16, ", "))
	classes := workload.MalwareClasses()
	fmt.Fprintf(&b, "%-4s", "rank")
	for _, c := range classes {
		fmt.Fprintf(&b, " | %-26s", c)
	}
	b.WriteString("\n")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "%-4d", i+1)
		for _, c := range classes {
			fmt.Fprintf(&b, " | %-26s", res.Top8[c][i])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "\nderived Common set: %s\n", strings.Join(res.Common, ", "))
	fmt.Fprintf(&b, "paper's Common set: %s\n", strings.Join(res.PaperCommon, ", "))
	return b.String()
}
