package experiments

import (
	"fmt"
	"strings"
	"time"

	"twosmart/internal/anomaly"
	"twosmart/internal/core"
	"twosmart/internal/metrics"
	"twosmart/internal/workload"
)

// ExtCascadePoint is one operating point of the stage-0 cascade sweep:
// the detection cascade evaluated at one short-circuit threshold.
type ExtCascadePoint struct {
	// Multiplier scales the envelope's calibrated threshold (1.0 is the
	// trained operating point; 0 short-circuits only samples strictly
	// inside the envelope).
	Multiplier float64
	// Threshold is the resulting absolute short-circuit threshold.
	Threshold float64
	// ShortFrac is the fraction of held-out samples the cascade resolved
	// at stage 0 without running the detector.
	ShortFrac float64
	// Stage0Ns is the envelope cost amortized over every sample;
	// Stage1Ns is the detector cost per sample that passed stage 0.
	Stage0Ns, Stage1Ns float64
	// EffectiveNs is the cascade's blended scoring cost per sample:
	// Stage0Ns + (1-ShortFrac)*Stage1Ns.
	EffectiveNs float64
	// F is the pooled malware-vs-benign F-measure with the cascade in
	// front; DeltaF is F minus the no-cascade baseline (negative =
	// accuracy given up for the speedup).
	F, DeltaF float64
}

// ExtCascadeResult sweeps the stage-0 anomaly cascade's short-circuit
// threshold over the held-out split and reports, per operating point, how
// much traffic short-circuits, what each stage costs, and what the
// shortcut does to detection quality relative to always running both
// detector stages.
type ExtCascadeResult struct {
	// BaselineF and BaselineNs are the no-cascade reference: pooled
	// F-measure and detector ns/sample when every sample runs stage 1/2.
	BaselineF, BaselineNs float64
	// Calibrated is the envelope's trained threshold (budget
	// anomaly.DefaultBudget over the training benign split).
	Calibrated float64
	// TestBenignFrac is the benign share of the held-out split — the
	// ceiling on useful short-circuiting.
	TestBenignFrac float64
	Points         []ExtCascadePoint
}

// extCascadeMultipliers are the swept scalings of the calibrated
// threshold: the trained point, tighter (fewer short-circuits, safer) and
// looser (more short-circuits, riskier) settings.
var extCascadeMultipliers = []float64{0, 0.5, 1, 2, 4}

// ExtCascade trains the runtime 4-HPC detector and a stage-0 benign
// envelope on the training split, then sweeps the short-circuit threshold
// over the held-out split.
func (ctx *Context) ExtCascade() (*ExtCascadeResult, error) {
	det, err := ctx.runtimeDetector(false)
	if err != nil {
		return nil, err
	}
	train, err := ctx.Train.SelectByName(core.CommonFeatures)
	if err != nil {
		return nil, err
	}
	test, err := ctx.Test.SelectByName(core.CommonFeatures)
	if err != nil {
		return nil, err
	}
	var benign [][]float64
	for _, ins := range train.Instances {
		if workload.Class(ins.Label) == workload.Benign {
			benign = append(benign, ins.Features)
		}
	}
	env, err := anomaly.Train(train.FeatureNames, benign, anomaly.TrainConfig{Seed: ctx.Opts.Seed})
	if err != nil {
		return nil, err
	}
	cenv := env.Compile()
	cd := det.Compile()

	feats := make([][]float64, test.Len())
	actual := make([]bool, test.Len())
	benignCount := 0
	for i, ins := range test.Instances {
		feats[i] = ins.Features
		actual[i] = workload.Class(ins.Label).IsMalware()
		if !actual[i] {
			benignCount++
		}
	}
	if len(feats) == 0 {
		return nil, fmt.Errorf("experiments: empty held-out split")
	}

	res := &ExtCascadeResult{
		Calibrated:     env.Threshold,
		TestBenignFrac: float64(benignCount) / float64(len(feats)),
	}

	// No-cascade baseline: every sample runs the full detector.
	var baseConf metrics.Confusion
	start := time.Now()
	for i, fv := range feats {
		v, err := cd.Detect(fv)
		if err != nil {
			return nil, err
		}
		baseConf.Add(actual[i], v.Malware)
	}
	res.BaselineNs = float64(time.Since(start).Nanoseconds()) / float64(len(feats))
	res.BaselineF = baseConf.F1()

	scores := make([]float64, len(feats))
	for _, mult := range extCascadeMultipliers {
		threshold := mult * env.Threshold
		// Stage 0 over everything, timed in bulk so the per-sample cost
		// is not swamped by timer reads.
		start = time.Now()
		for i, fv := range feats {
			scores[i] = cenv.Score(fv)
		}
		stage0 := float64(time.Since(start).Nanoseconds()) / float64(len(feats))

		var conf metrics.Confusion
		passed := 0
		start = time.Now()
		for i, fv := range feats {
			if scores[i] <= threshold {
				conf.Add(actual[i], false) // short-circuit: benign verdict
				continue
			}
			passed++
			v, err := cd.Detect(fv)
			if err != nil {
				return nil, err
			}
			conf.Add(actual[i], v.Malware)
		}
		stage1Total := float64(time.Since(start).Nanoseconds())
		p := ExtCascadePoint{
			Multiplier: mult,
			Threshold:  threshold,
			ShortFrac:  1 - float64(passed)/float64(len(feats)),
			Stage0Ns:   stage0,
			F:          conf.F1(),
			DeltaF:     conf.F1() - res.BaselineF,
		}
		if passed > 0 {
			p.Stage1Ns = stage1Total / float64(passed)
		}
		p.EffectiveNs = p.Stage0Ns + (1-p.ShortFrac)*p.Stage1Ns
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// String renders the cascade sweep.
func (res *ExtCascadeResult) String() string {
	var b strings.Builder
	b.WriteString("Extension: stage-0 cascade threshold sweep (4 Common HPCs)\n\n")
	fmt.Fprintf(&b, "no-cascade baseline: F=%.1f%% at %.0f ns/sample; calibrated threshold %.4g; test benign share %.0f%%\n\n",
		100*res.BaselineF, res.BaselineNs, res.Calibrated, 100*res.TestBenignFrac)
	fmt.Fprintf(&b, "%-10s | %-11s | %-12s | %-10s | %-10s | %-12s | %-8s\n",
		"threshold", "short-circ.", "stage0 ns", "stage1 ns", "eff. ns", "F-measure", "delta F")
	for _, p := range res.Points {
		fmt.Fprintf(&b, "%9.2fx | %10.1f%% | %12.1f | %10.1f | %10.1f | %11.1f%% | %+7.2fpp\n",
			p.Multiplier, 100*p.ShortFrac, p.Stage0Ns, p.Stage1Ns, p.EffectiveNs,
			100*p.F, 100*p.DeltaF)
	}
	return b.String()
}
