package experiments

import (
	"encoding/json"
	"io"

	"twosmart/internal/core"
	"twosmart/internal/workload"
)

// Report aggregates every experiment into one machine-readable artifact
// (cmd/benchtab -json). Map keys are class, algorithm and configuration
// names, so the JSON is plot-script friendly.
type Report struct {
	Meta struct {
		CorpusSamples int     `json:"corpus_samples"`
		CorpusScale   float64 `json:"corpus_scale"`
		Seed          int64   `json:"seed"`
		TrainFrac     float64 `json:"train_frac"`
	} `json:"meta"`

	Fig1 struct {
		BenignApp       string    `json:"benign_app"`
		MalwareApp      string    `json:"malware_app"`
		BenignBranches  []float64 `json:"benign_branches"`
		BenignMisses    []float64 `json:"benign_misses"`
		MalwareBranches []float64 `json:"malware_branches"`
		MalwareMisses   []float64 `json:"malware_misses"`
	} `json:"fig1"`

	Table1 map[string]map[string]string `json:"table1"` // class -> hpcs -> kind

	Table2 struct {
		CorrelationTop16 []string            `json:"correlation_top16"`
		Top8             map[string][]string `json:"top8"`
		Common           []string            `json:"common"`
		PaperCommon      []string            `json:"paper_common"`
	} `json:"table2"`

	Fig2 *Fig2Result `json:"fig2"`

	Fig3 struct {
		Stage1Accuracy4  float64           `json:"stage1_accuracy_4hpc"`
		Stage1Accuracy16 float64           `json:"stage1_accuracy_16hpc"`
		EndToEndF        float64           `json:"end_to_end_f"`
		Stage2Winners    map[string]string `json:"stage2_winners"`
	} `json:"fig3"`

	// Table3/Fig4: class -> kind -> config -> value (percent).
	Table3 map[string]map[string]map[string]float64 `json:"table3_f_measure"`
	Fig4   map[string]map[string]map[string]float64 `json:"fig4_performance"`

	Table4 struct {
		Over8 map[string]float64 `json:"improvement_over_8hpc"`
		Over4 map[string]float64 `json:"improvement_over_4hpc"`
	} `json:"table4"`

	Fig5a struct {
		Stage1F   map[string]float64 `json:"stage1_f"`
		TwoStageF map[string]float64 `json:"two_stage_f"`
	} `json:"fig5a"`

	Fig5b struct {
		SingleStage4     map[string]float64 `json:"single_stage_4hpc"`
		SingleStage8     map[string]float64 `json:"single_stage_8hpc"`
		TwoStage4        map[string]float64 `json:"two_stage_4hpc"`
		TwoStage4Boosted map[string]float64 `json:"two_stage_4hpc_boosted"`
	} `json:"fig5b"`

	Table5 struct {
		Latency map[string]map[string]float64 `json:"latency_cycles"`
		Area    map[string]map[string]float64 `json:"area_percent"`
	} `json:"table5"`

	// Extensions beyond the paper's evaluation.
	Extensions struct {
		Granularity  *ExtGranularityResult  `json:"granularity"`
		Latency      *ExtLatencyResult      `json:"detection_latency"`
		Interference *ExtInterferenceResult `json:"interference"`
		Cascade      *ExtCascadeResult      `json:"cascade"`
	} `json:"extensions"`
}

// Report runs every experiment driver and assembles the aggregate report.
func (ctx *Context) Report() (*Report, error) {
	r := &Report{}
	r.Meta.CorpusSamples = ctx.Data.Len()
	r.Meta.CorpusScale = ctx.Opts.Corpus.Scale
	r.Meta.Seed = ctx.Opts.Seed
	r.Meta.TrainFrac = ctx.Opts.TrainFrac

	fig1, err := ctx.Fig1()
	if err != nil {
		return nil, err
	}
	r.Fig1.BenignApp = fig1.BenignApp
	r.Fig1.MalwareApp = fig1.MalwareApp
	r.Fig1.BenignBranches = fig1.BenignBranches
	r.Fig1.BenignMisses = fig1.BenignMisses
	r.Fig1.MalwareBranches = fig1.MalwareBranches
	r.Fig1.MalwareMisses = fig1.MalwareMisses

	tab1, err := ctx.Table1()
	if err != nil {
		return nil, err
	}
	r.Table1 = map[string]map[string]string{}
	for class, byHPC := range tab1.Best {
		m := map[string]string{}
		for hpcs, kind := range byHPC {
			m[hpcsKey(hpcs)] = kind.String()
		}
		r.Table1[class.String()] = m
	}

	tab2, err := ctx.Table2()
	if err != nil {
		return nil, err
	}
	r.Table2.CorrelationTop16 = tab2.CorrelationTop16
	r.Table2.Common = tab2.Common
	r.Table2.PaperCommon = tab2.PaperCommon
	r.Table2.Top8 = map[string][]string{}
	for class, feats := range tab2.Top8 {
		r.Table2.Top8[class.String()] = feats
	}

	if r.Fig2, err = ctx.Fig2(); err != nil {
		return nil, err
	}

	fig3, err := ctx.Fig3()
	if err != nil {
		return nil, err
	}
	r.Fig3.Stage1Accuracy4 = fig3.Stage1Accuracy4
	r.Fig3.Stage1Accuracy16 = fig3.Stage1Accuracy16
	r.Fig3.EndToEndF = fig3.EndToEndF
	r.Fig3.Stage2Winners = map[string]string{}
	for class, kind := range fig3.Stage2Winners {
		r.Fig3.Stage2Winners[class.String()] = kind.String()
	}

	tab3, err := ctx.Table3()
	if err != nil {
		return nil, err
	}
	r.Table3 = classKindConfig(tab3.F)

	fig4, err := ctx.Fig4()
	if err != nil {
		return nil, err
	}
	r.Fig4 = classKindConfig(fig4.Performance)

	tab4, err := ctx.Table4()
	if err != nil {
		return nil, err
	}
	r.Table4.Over8 = kindMap(tab4.ImprovementOver8)
	r.Table4.Over4 = kindMap(tab4.ImprovementOver4)

	fig5a, err := ctx.Fig5a()
	if err != nil {
		return nil, err
	}
	r.Fig5a.Stage1F = classMap(fig5a.Stage1F)
	r.Fig5a.TwoStageF = classMap(fig5a.TwoStageF)

	fig5b, err := ctx.Fig5b()
	if err != nil {
		return nil, err
	}
	r.Fig5b.SingleStage4 = kindMap(fig5b.SingleStage4)
	r.Fig5b.SingleStage8 = kindMap(fig5b.SingleStage8)
	r.Fig5b.TwoStage4 = kindMap(fig5b.TwoStage4)
	r.Fig5b.TwoStage4Boosted = kindMap(fig5b.TwoStage4Boosted)

	tab5, err := ctx.Table5()
	if err != nil {
		return nil, err
	}
	r.Table5.Latency = kindConfig(tab5.Latency)
	r.Table5.Area = kindConfig(tab5.Area)

	if r.Extensions.Granularity, err = ctx.ExtGranularity(); err != nil {
		return nil, err
	}
	if r.Extensions.Latency, err = ctx.ExtLatency(); err != nil {
		return nil, err
	}
	if r.Extensions.Interference, err = ctx.ExtInterference(); err != nil {
		return nil, err
	}
	if r.Extensions.Cascade, err = ctx.ExtCascade(); err != nil {
		return nil, err
	}

	return r, nil
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func hpcsKey(hpcs int) string {
	switch hpcs {
	case 16:
		return "16"
	case 8:
		return "8"
	default:
		return "4"
	}
}

func classKindConfig(src map[workload.Class]map[core.Kind]map[string]float64) map[string]map[string]map[string]float64 {
	out := map[string]map[string]map[string]float64{}
	for class, byKind := range src {
		km := map[string]map[string]float64{}
		for kind, byConfig := range byKind {
			cm := map[string]float64{}
			for config, v := range byConfig {
				cm[config] = v
			}
			km[kind.String()] = cm
		}
		out[class.String()] = km
	}
	return out
}

func kindMap(src map[core.Kind]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range src {
		out[k.String()] = v
	}
	return out
}

func classMap(src map[workload.Class]float64) map[string]float64 {
	out := map[string]float64{}
	for c, v := range src {
		out[c.String()] = v
	}
	return out
}

func kindConfig(src map[core.Kind]map[string]float64) map[string]map[string]float64 {
	out := map[string]map[string]float64{}
	for k, byConfig := range src {
		cm := map[string]float64{}
		for config, v := range byConfig {
			cm[config] = v
		}
		out[k.String()] = cm
	}
	return out
}
