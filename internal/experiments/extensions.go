package experiments

import (
	"fmt"
	"strings"
	"time"

	"twosmart/internal/core"
	"twosmart/internal/hpc"
	"twosmart/internal/isa"
	"twosmart/internal/metrics"
	"twosmart/internal/microarch"
	"twosmart/internal/monitor"
	"twosmart/internal/sandbox"
	"twosmart/internal/workload"
)

// The experiments in this file go beyond the paper's evaluation: they
// quantify properties the paper motivates but does not measure —
// application-level decision aggregation, detection latency, and robustness
// to co-scheduled benign work.

// ExtGranularityResult compares detection quality at two decision
// granularities: per 10 ms sample (the paper's evaluation unit) and per
// application (majority vote over the application's samples, which is what
// an OS response policy would act on).
type ExtGranularityResult struct {
	SampleF float64
	AppF    float64
	Apps    int
}

// ExtGranularity evaluates the 4-HPC two-stage detector at sample and
// application granularity on the held-out test split.
func (ctx *Context) ExtGranularity() (*ExtGranularityResult, error) {
	det, err := ctx.runtimeDetector(false)
	if err != nil {
		return nil, err
	}
	test, err := ctx.Test.SelectByName(core.CommonFeatures)
	if err != nil {
		return nil, err
	}
	var sampleConf metrics.Confusion
	type appAgg struct {
		malware bool
		votes   int
		samples int
	}
	apps := map[string]*appAgg{}
	for _, ins := range test.Instances {
		v, err := det.Detect(ins.Features)
		if err != nil {
			return nil, err
		}
		actual := workload.Class(ins.Label).IsMalware()
		sampleConf.Add(actual, v.Malware)
		agg, ok := apps[ins.App]
		if !ok {
			agg = &appAgg{malware: actual}
			apps[ins.App] = agg
		}
		agg.samples++
		if v.Malware {
			agg.votes++
		}
	}
	var appConf metrics.Confusion
	for _, agg := range apps {
		appConf.Add(agg.malware, 2*agg.votes > agg.samples)
	}
	return &ExtGranularityResult{
		SampleF: sampleConf.F1(),
		AppF:    appConf.F1(),
		Apps:    len(apps),
	}, nil
}

// String renders the granularity comparison.
func (res *ExtGranularityResult) String() string {
	return fmt.Sprintf(
		"Extension: decision granularity (4 Common HPCs)\n\n"+
			"per-sample F-measure:      %.1f%%\n"+
			"per-application F-measure: %.1f%% (majority vote over %d apps)\n",
		100*res.SampleF, 100*res.AppF, res.Apps)
}

// ExtLatencyResult measures detection latency: how many 10 ms samples a
// freshly started malware application runs before the run-time monitor
// raises its first alarm (the paper's introduction motivates HMD by
// detection-latency reduction but reports no latency numbers).
type ExtLatencyResult struct {
	// MeanSamples/MaxSamples to first alarm over the detected apps.
	MeanSamples float64
	MaxSamples  int
	// Detected / Total malware applications streamed.
	Detected, Total int
	// BenignFalseAlarms counts benign applications whose monitor ever
	// raised.
	BenignFalseAlarms, BenignTotal int
}

// ExtLatency streams unseen applications through the boosted 4-HPC detector
// wrapped in the run-time monitor and measures time to first alarm.
func (ctx *Context) ExtLatency() (*ExtLatencyResult, error) {
	det, err := ctx.runtimeDetector(true)
	if err != nil {
		return nil, err
	}
	// Each tracked application gets its own compiled detector, so the
	// per-sample monitoring loop below is allocation-free end to end.
	mon, err := monitor.NewTrackerFactory(func() monitor.Scorer { return det.Compile() },
		monitor.Config{MinSamples: 2})
	if err != nil {
		return nil, err
	}
	mgr := sandbox.NewManager(microarch.DefaultConfig())
	events, err := commonEvents()
	if err != nil {
		return nil, err
	}

	res := &ExtLatencyResult{}
	var totalLatency int
	const appsPerClass = 6
	fv := make([]float64, len(events)) // reused: Observe never retains it
	for _, class := range workload.AllClasses() {
		for id := 0; id < appsPerClass; id++ {
			prog := workload.Generate(class, 5000+id, workload.Options{
				Budget: 4 * workloadBudget(ctx),
				Seed:   ctx.Opts.Seed + 777,
			})
			samples, err := mgr.RunIsolated(prog.MustStream(), events, sandbox.ProfileOptions{
				FreqHz: corpusFreq(ctx), Period: 10 * time.Millisecond,
			})
			if err != nil {
				return nil, err
			}
			firstAlarm := -1
			for _, s := range samples {
				for j, c := range s.Counts {
					fv[j] = float64(c) * 1000 / float64(s.Fixed[0])
				}
				ev, err := mon.Observe(prog.Name, fv)
				if err != nil {
					return nil, err
				}
				if ev.Alarm && firstAlarm < 0 {
					firstAlarm = s.Index + 1
				}
			}
			mon.Close(prog.Name)
			if class.IsMalware() {
				res.Total++
				if firstAlarm >= 0 {
					res.Detected++
					totalLatency += firstAlarm
					if firstAlarm > res.MaxSamples {
						res.MaxSamples = firstAlarm
					}
				}
			} else {
				res.BenignTotal++
				if firstAlarm >= 0 {
					res.BenignFalseAlarms++
				}
			}
		}
	}
	if res.Detected > 0 {
		res.MeanSamples = float64(totalLatency) / float64(res.Detected)
	}
	return res, nil
}

// String renders the latency measurement.
func (res *ExtLatencyResult) String() string {
	return fmt.Sprintf(
		"Extension: run-time detection latency (boosted 4-HPC detector + monitor)\n\n"+
			"malware detected:        %d/%d applications\n"+
			"mean time to alarm:      %.1f samples (%.0f ms)\n"+
			"worst time to alarm:     %d samples (%d ms)\n"+
			"benign false alarms:     %d/%d applications\n",
		res.Detected, res.Total,
		res.MeanSamples, res.MeanSamples*10,
		res.MaxSamples, res.MaxSamples*10,
		res.BenignFalseAlarms, res.BenignTotal)
}

// ExtInterferenceResult measures robustness to co-scheduling: malware
// timeslice-interleaved with benign work dilutes its HPC signature; the
// table reports detection recall as the malware's share of the timeslices
// shrinks.
type ExtInterferenceResult struct {
	// Recall[i] corresponds to Shares[i] (fraction of quanta that run
	// malware; 1.0 = the paper's isolated-profiling setting).
	Shares []float64
	Recall []float64
}

// ExtInterference profiles trojan applications interleaved with benign ones
// at several timeslice shares and reports sample-level detection recall.
func (ctx *Context) ExtInterference() (*ExtInterferenceResult, error) {
	det, err := ctx.runtimeDetector(true)
	if err != nil {
		return nil, err
	}
	mgr := sandbox.NewManager(microarch.DefaultConfig())
	events, err := commonEvents()
	if err != nil {
		return nil, err
	}
	res := &ExtInterferenceResult{Shares: []float64{1.0, 0.5, 0.25}}
	const quantum = 2000 // instructions per timeslice
	const apps = 8
	for _, share := range res.Shares {
		detected, total := 0, 0
		for id := 0; id < apps; id++ {
			mal := workload.Generate(workload.Trojan, 6000+id, workload.Options{
				Budget: workloadBudget(ctx), Seed: ctx.Opts.Seed + 888,
			})
			var stream isa.Stream = mal.MustStream()
			if share < 1 {
				// One malware stream against k benign streams gives
				// the malware a 1/(k+1) share of the quanta.
				k := int(1/share) - 1
				streams := []isa.Stream{stream}
				for b := 0; b < k; b++ {
					ben := workload.Generate(workload.Benign, 6100+id*4+b, workload.Options{
						Budget: workloadBudget(ctx), Seed: ctx.Opts.Seed + 888,
					})
					streams = append(streams, ben.MustStream())
				}
				stream = isa.Interleave(quantum, streams...)
			}
			samples, err := mgr.RunIsolated(stream, events, sandbox.ProfileOptions{
				FreqHz: corpusFreq(ctx), Period: 10 * time.Millisecond,
			})
			if err != nil {
				return nil, err
			}
			for _, s := range samples {
				fv := make([]float64, len(events))
				for j, c := range s.Counts {
					fv[j] = float64(c) * 1000 / float64(s.Fixed[0])
				}
				v, err := det.Detect(fv)
				if err != nil {
					return nil, err
				}
				total++
				if v.Malware {
					detected++
				}
			}
		}
		if total == 0 {
			return nil, fmt.Errorf("experiments: no samples at share %.2f", share)
		}
		res.Recall = append(res.Recall, float64(detected)/float64(total))
	}
	return res, nil
}

// String renders the interference sweep.
func (res *ExtInterferenceResult) String() string {
	var b strings.Builder
	b.WriteString("Extension: co-scheduling interference (trojan interleaved with benign)\n\n")
	fmt.Fprintf(&b, "%-16s | %-14s\n", "malware share", "sample recall")
	for i, share := range res.Shares {
		fmt.Fprintf(&b, "%15.0f%% | %13.1f%%\n", 100*share, 100*res.Recall[i])
	}
	return b.String()
}

// runtimeDetector trains the run-time configuration (Common-4 features,
// J48 stage 2) used by the extension experiments.
func (ctx *Context) runtimeDetector(boost bool) (*core.Detector, error) {
	feats := map[workload.Class][]string{}
	kinds := map[workload.Class]core.Kind{}
	for _, c := range workload.MalwareClasses() {
		feats[c] = core.CommonFeatures
		kinds[c] = core.J48
	}
	full, err := ctx.Train.SelectByName(core.CommonFeatures)
	if err != nil {
		return nil, err
	}
	return core.Train(full, core.TrainConfig{
		Stage1Features: core.CommonFeatures,
		Stage2Features: map[workload.Class][]string{
			workload.Backdoor: core.CommonFeatures, workload.Rootkit: core.CommonFeatures,
			workload.Virus: core.CommonFeatures, workload.Trojan: core.CommonFeatures,
		},
		Stage2Kinds: kinds,
		Boost:       boost,
		BoostRounds: ctx.Opts.BoostRounds,
		Seed:        ctx.Opts.Seed,
	})
}

func commonEvents() ([]hpc.Event, error) {
	events := make([]hpc.Event, 0, len(core.CommonFeatures))
	for _, name := range core.CommonFeatures {
		e, ok := hpc.EventByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown event %q", name)
		}
		events = append(events, e)
	}
	return events, nil
}
