package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanOverflowDropAccounting pins the span-log bound: spans past
// maxSpans are dropped, counted, and reported in the run report while
// the per-name histogram still observes every completion.
func TestSpanOverflowDropAccounting(t *testing.T) {
	r := New()
	const extra = 7
	for i := 0; i < maxSpans+extra; i++ {
		r.StartSpan("stage").End()
	}
	if got := len(r.Spans()); got != maxSpans {
		t.Fatalf("kept %d spans, want the maxSpans bound %d", got, maxSpans)
	}
	rep := r.Report("test")
	if rep.SpansDropped != extra {
		t.Fatalf("SpansDropped = %d, want %d", rep.SpansDropped, extra)
	}
	if len(rep.Spans) != maxSpans {
		t.Fatalf("report carries %d spans, want %d", len(rep.Spans), maxSpans)
	}
	// The histogram is not subject to the span-log bound.
	h := rep.Histograms["span_stage_seconds"]
	if h.Count != maxSpans+extra {
		t.Fatalf("span histogram count = %d, want %d", h.Count, maxSpans+extra)
	}
}

// TestLabelEscapingThroughPrometheus drives label values containing
// quotes, backslashes and newlines through Label and the text
// exposition, asserting the escaped spellings Prometheus requires.
func TestLabelEscapingThroughPrometheus(t *testing.T) {
	cases := []struct {
		value   string
		escaped string
	}{
		{`plain`, `plain`},
		{`has"quote`, `has\"quote`},
		{`back\slash`, `back\\slash`},
		{"new\nline", `new\nline`},
		{"all\"three\\and\nmore", `all\"three\\and\nmore`},
	}
	r := New()
	for i, tc := range cases {
		name := Label("escape_total", "v", tc.value)
		want := fmt.Sprintf(`escape_total{v="%s"}`, tc.escaped)
		if name != want {
			t.Errorf("case %d: Label = %s, want %s", i, name, want)
		}
		r.Counter(name).Add(uint64(i + 1))
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "\n") != len(cases)+1 { // one TYPE line + one series per case
		t.Fatalf("exposition has unexpected shape:\n%s", out)
	}
	for i, tc := range cases {
		line := fmt.Sprintf(`escape_total{v="%s"} %d`, tc.escaped, i+1)
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
	// A raw newline inside a series line would corrupt the whole format.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("exposition contains an empty line (unescaped newline leaked):\n%s", out)
		}
	}
}

// TestExemplarCapture pins the slowest-K semantics: the set keeps the
// largest values in descending order and caps at maxExemplars.
func TestExemplarCapture(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	for i := 1; i <= 20; i++ {
		v := float64(i) / 1000
		h.Observe(v)
		h.Exemplar(v, uint64(i))
	}
	s := h.Summary()
	if len(s.Exemplars) != maxExemplars {
		t.Fatalf("kept %d exemplars, want %d", len(s.Exemplars), maxExemplars)
	}
	for i, ex := range s.Exemplars {
		wantID := uint64(20 - i)
		if ex.TraceID != wantID {
			t.Fatalf("exemplar[%d] = %+v, want trace %d (descending slowest-K)", i, ex, wantID)
		}
		if i > 0 && ex.Value > s.Exemplars[i-1].Value {
			t.Fatalf("exemplars not sorted descending: %+v", s.Exemplars)
		}
	}
	// A value below the floor of a full set is rejected.
	h.Exemplar(0.0001, 999)
	for _, ex := range h.Summary().Exemplars {
		if ex.TraceID == 999 {
			t.Fatal("below-floor exemplar displaced a slower one")
		}
	}
}

// TestExemplarConcurrent hammers Exemplar/Observe/Summary from many
// goroutines; run under -race this pins the capture path's safety.
func TestExemplarConcurrent(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v := float64(g*1000+i) / 1e6
				h.Observe(v)
				h.Exemplar(v, uint64(g*1000+i+1))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s := h.Summary()
			if len(s.Exemplars) > maxExemplars {
				t.Errorf("summary holds %d exemplars, cap is %d", len(s.Exemplars), maxExemplars)
				return
			}
		}
	}()
	wg.Wait()
	s := h.Summary()
	if len(s.Exemplars) != maxExemplars {
		t.Fatalf("kept %d exemplars, want %d", len(s.Exemplars), maxExemplars)
	}
	// The global slowest value must have survived every interleaving.
	if want := float64(7999) / 1e6; s.Exemplars[0].Value != want {
		t.Fatalf("slowest exemplar = %v, want %v", s.Exemplars[0].Value, want)
	}
}

// TestServerHealthz pins the drain-aware readiness endpoint and the
// post-start Handle hook.
func TestServerHealthz(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/debug/extra", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "extra")
	}))

	get := func(path string) (int, string) {
		t.Helper()
		cl := &http.Client{Timeout: 5 * time.Second}
		resp, err := cl.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("ready /healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := get("/debug/extra"); code != http.StatusOK || body != "extra" {
		t.Fatalf("/debug/extra = %d %q, want the mounted handler", code, body)
	}
	srv.SetDraining()
	if !srv.Draining() {
		t.Fatal("Draining() false after SetDraining")
	}
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503", code)
	}
	// Metrics stay up during the drain: the draining process is still
	// observable.
	if code, _ := get("/metrics"); code != http.StatusOK {
		t.Fatalf("draining /metrics = %d, want 200", code)
	}
}
