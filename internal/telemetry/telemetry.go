// Package telemetry is the repository's zero-dependency observability
// layer: an atomic metrics registry (counters, gauges and fixed-bucket
// latency histograms with quantile estimation), lightweight spans for
// pipeline stages, Prometheus text exposition, a machine-readable run
// report, and an opt-in debug HTTP server (/metrics, /debug/vars,
// /debug/pprof).
//
// The layer is designed to be near-free when disabled: a nil *Registry is
// valid everywhere — its instrument constructors return shared no-op
// implementations and Enabled() reports false — so instrumented hot paths
// (monitor.Observe is the canonical one) pay a single predictable branch
// when telemetry is off. See BenchmarkObserve for the measured overhead.
//
// Metric names follow the Prometheus convention (snake_case with a unit
// suffix, _total for counters). Low-cardinality dimensions are encoded as
// labels with the Label helper: the registry keys instruments by the full
// name-plus-labels string and the exposition writer emits them verbatim.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter interface {
	Inc()
	Add(delta uint64)
	Value() uint64
}

// Gauge is a metric that can go up and down.
type Gauge interface {
	Set(v float64)
	Add(delta float64)
	Value() float64
}

// Histogram accumulates observations into fixed buckets and tracks
// count, sum, min and max, from which Summary derives p50/p95/p99.
type Histogram interface {
	Observe(v float64)
	ObserveDuration(d time.Duration)
	// Exemplar offers one traced observation (value + trace ID). The
	// histogram keeps the slowest few so a p99 on /metrics can be chased
	// to a concrete /debug/traces record. Callers invoke it only for
	// already-sampled observations — it is not a hot-path method.
	Exemplar(v float64, traceID uint64)
	Summary() HistogramSummary
}

// --- no-op implementations -------------------------------------------------

type nopCounter struct{}

func (nopCounter) Inc()          {}
func (nopCounter) Add(uint64)    {}
func (nopCounter) Value() uint64 { return 0 }

type nopGauge struct{}

func (nopGauge) Set(float64)    {}
func (nopGauge) Add(float64)    {}
func (nopGauge) Value() float64 { return 0 }

type nopHistogram struct{}

func (nopHistogram) Observe(float64)               {}
func (nopHistogram) ObserveDuration(time.Duration) {}
func (nopHistogram) Exemplar(float64, uint64)      {}
func (nopHistogram) Summary() HistogramSummary     { return HistogramSummary{} }

// The shared no-op instruments returned by a nil registry.
var (
	NopCounter   Counter   = nopCounter{}
	NopGauge     Gauge     = nopGauge{}
	NopHistogram Histogram = nopHistogram{}
)

// --- atomic implementations ------------------------------------------------

type counter struct {
	v atomic.Uint64
}

func (c *counter) Inc()          { c.v.Add(1) }
func (c *counter) Add(d uint64)  { c.v.Add(d) }
func (c *counter) Value() uint64 { return c.v.Load() }

type gauge struct {
	bits atomic.Uint64 // float64 bits
}

func (g *gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

func (g *gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (g *gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// --- registry --------------------------------------------------------------

// Registry holds named instruments and completed spans. All methods are
// safe for concurrent use; instrument updates are lock-free atomics. A nil
// *Registry is valid: every method degrades to a no-op.
type Registry struct {
	start time.Time

	mu       sync.Mutex
	counters map[string]*counter
	gauges   map[string]*gauge
	hists    map[string]*histogram
	spans    []SpanRecord
	dropped  int // spans discarded once maxSpans is reached
}

// maxSpans bounds the per-registry span log so a long-running process
// cannot grow it without limit; later spans are counted but dropped.
const maxSpans = 4096

// New builds an empty registry. The construction time anchors span start
// offsets.
func New() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: make(map[string]*counter),
		gauges:   make(map[string]*gauge),
		hists:    make(map[string]*histogram),
	}
}

// Enabled reports whether the registry records anything; it is the cheap
// guard hot paths use before calling time.Now.
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns the named counter, creating it on first use. A nil
// registry returns the shared no-op counter.
func (r *Registry) Counter(name string) Counter {
	if r == nil {
		return NopCounter
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns the shared no-op gauge.
func (r *Registry) Gauge(name string) Gauge {
	if r == nil {
		return NopGauge
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls reuse the existing buckets). A
// nil registry returns the shared no-op histogram.
func (r *Registry) Histogram(name string, buckets []float64) Histogram {
	if r == nil {
		return NopHistogram
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(buckets)
		r.hists[name] = h
	}
	return h
}

// Label appends a key="value" Prometheus label to a metric name, merging
// with labels the name already carries:
//
//	Label("x_total", "class", "virus")            -> `x_total{class="virus"}`
//	Label(`x_total{a="b"}`, "class", "virus")     -> `x_total{a="b",class="virus"}`
func Label(name, key, value string) string {
	value = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(value)
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return fmt.Sprintf(`%s,%s="%s"}`, name[:len(name)-1], key, value)
	}
	return fmt.Sprintf(`%s{%s="%s"}`, name, key, value)
}

// baseName strips the label set from a full metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelSet returns the label body (without braces) of a full metric name,
// or "" when it has none.
func labelSet(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[i+1 : len(name)-1]
	}
	return ""
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
