// The Observe benchmark lives in an external test package because it
// exercises monitor (which imports telemetry); an internal test would form
// an import cycle.
package telemetry_test

import (
	"testing"

	"twosmart/internal/monitor"
	"twosmart/internal/telemetry"
)

type constScorer struct{ score float64 }

func (c constScorer) MalwareScore([]float64) (float64, error) { return c.score, nil }

// bareObserve replicates Monitor.Observe's smoothing and hysteresis with
// no telemetry branch at all — the pre-instrumentation baseline the
// "disabled" case is compared against.
type bareObserve struct {
	scorer  monitor.Scorer
	alpha   float64
	raise   float64
	clear   float64
	minSamp int
	samples int
	ewma    float64
	alarm   bool
}

func (m *bareObserve) observe(features []float64) (monitor.Event, error) {
	score, err := m.scorer.MalwareScore(features)
	if err != nil {
		return monitor.Event{}, err
	}
	if m.samples == 0 {
		m.ewma = score
	} else {
		m.ewma = m.alpha*score + (1-m.alpha)*m.ewma
	}
	ev := monitor.Event{Sample: m.samples, Score: score, Smoothed: m.ewma}
	m.samples++
	prev := m.alarm
	if m.samples >= m.minSamp && !m.alarm && m.ewma > m.raise {
		m.alarm = true
	} else if m.alarm && m.ewma < m.clear {
		m.alarm = false
	}
	ev.Alarm = m.alarm
	ev.Changed = m.alarm != prev
	return ev, nil
}

// BenchmarkObserve measures the telemetry cost on the run-time detection
// hot path. The acceptance bar is the "disabled" case (nil Config.Telemetry
// — the default): it must sit within 5 ns/op of "baseline" (the same logic
// with no telemetry branch at all), because every Observe pays it whether
// or not anyone is watching.
func BenchmarkObserve(b *testing.B) {
	fv := []float64{1.2, 3.4, 0.5, 9.1}
	b.Run("baseline", func(b *testing.B) {
		m := &bareObserve{scorer: constScorer{0.2}, alpha: 0.3, raise: 0.6, clear: 0.4, minSamp: 3}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.observe(fv); err != nil {
				b.Fatal(err)
			}
		}
	})
	run := func(b *testing.B, cfg monitor.Config) {
		m, err := monitor.New(constScorer{0.2}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Observe(fv); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, monitor.Config{}) })
	b.Run("enabled", func(b *testing.B) { run(b, monitor.Config{Telemetry: telemetry.New()}) })
}
