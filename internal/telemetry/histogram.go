package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the default bucket layout for latency histograms in
// seconds: 1 µs to 10 s in a 1-2.5-5 progression. It spans everything the
// pipeline measures, from a sub-microsecond Monitor.Observe to a
// multi-second training stage.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// HistogramSummary is a point-in-time digest of a histogram. Quantiles are
// estimated by linear interpolation inside the owning bucket, so their
// error is bounded by that bucket's width; Min and Max are exact.
// Exemplars, when any were offered, are the slowest traced observations
// in descending value order.
type HistogramSummary struct {
	Count     uint64           `json:"count"`
	Sum       float64          `json:"sum"`
	Min       float64          `json:"min"`
	Max       float64          `json:"max"`
	P50       float64          `json:"p50"`
	P95       float64          `json:"p95"`
	P99       float64          `json:"p99"`
	Exemplars []ExemplarRecord `json:"exemplars,omitempty"`
}

// ExemplarRecord links one observed value to the trace that produced it.
type ExemplarRecord struct {
	Value   float64 `json:"value"`
	TraceID uint64  `json:"trace_id"`
}

// maxExemplars bounds the slowest-K exemplar set kept per histogram.
const maxExemplars = 8

// Mean returns Sum/Count, or 0 for an empty histogram.
func (s HistogramSummary) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

type histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // valid only when count > 0
	maxBits atomic.Uint64

	// Exemplars arrive only for trace-sampled observations (a small
	// fraction of Observe traffic), so a mutex-guarded slowest-K set is
	// cheap enough and keeps Summary torn-read free.
	exMu sync.Mutex
	ex   []ExemplarRecord
}

func newHistogram(bounds []float64) *histogram {
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	h := &histogram{
		bounds:  sorted,
		buckets: make([]atomic.Uint64, len(sorted)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

func (h *histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
	atomicMinFloat(&h.minBits, v)
	atomicMaxFloat(&h.maxBits, v)
}

func (h *histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Exemplar keeps the slowest maxExemplars traced observations. The set is
// maintained sorted descending; a new value below the current floor of a
// full set is rejected in O(1).
func (h *histogram) Exemplar(v float64, traceID uint64) {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if len(h.ex) == maxExemplars {
		if v <= h.ex[len(h.ex)-1].Value {
			return
		}
		h.ex = h.ex[:len(h.ex)-1]
	}
	i := sort.Search(len(h.ex), func(i int) bool { return h.ex[i].Value < v })
	h.ex = append(h.ex, ExemplarRecord{})
	copy(h.ex[i+1:], h.ex[i:])
	h.ex[i] = ExemplarRecord{Value: v, TraceID: traceID}
}

func (h *histogram) Summary() HistogramSummary {
	s := HistogramSummary{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sumBits.Load()),
	}
	if s.Count == 0 {
		return s
	}
	s.Min = math.Float64frombits(h.minBits.Load())
	s.Max = math.Float64frombits(h.maxBits.Load())
	counts := h.snapshot()
	s.P50 = quantile(h.bounds, counts, s.Min, s.Max, 0.50)
	s.P95 = quantile(h.bounds, counts, s.Min, s.Max, 0.95)
	s.P99 = quantile(h.bounds, counts, s.Min, s.Max, 0.99)
	h.exMu.Lock()
	if len(h.ex) > 0 {
		s.Exemplars = append([]ExemplarRecord(nil), h.ex...)
	}
	h.exMu.Unlock()
	return s
}

func (h *histogram) snapshot() []uint64 {
	counts := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return counts
}

// quantile estimates the q-quantile from bucket counts by locating the
// bucket holding the q*total-th observation and interpolating linearly
// between its bounds, clamped to the exact observed [min, max].
func quantile(bounds []float64, counts []uint64, min, max float64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		lo := min
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := max
		if i < len(bounds) && bounds[i] < max {
			hi = bounds[i]
		}
		if hi < lo {
			hi = lo
		}
		// Position of the rank inside this bucket.
		frac := 1.0
		if c > 0 {
			frac = (rank - float64(cum-c)) / float64(c)
		}
		v := lo + frac*(hi-lo)
		return math.Max(min, math.Min(max, v))
	}
	return max
}

func atomicAddFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

func atomicMinFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func atomicMaxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
