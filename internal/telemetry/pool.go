package telemetry

import "time"

// PoolHook adapts a Registry to parallel.Options.Hook without the parallel
// package importing telemetry (the interface is satisfied structurally, so
// the execution substrate stays dependency-free). One hook instruments one
// logical pool and exports, under its name prefix:
//
//	<name>_tasks_started_total / _completed_total / _failed_total
//	<name>_queue_wait_seconds   histogram of hand-off latency
//	<name>_task_seconds         histogram of task run time
//	<name>_busy_seconds         gauge accumulating worker busy time
//	<name>_inflight             gauge of currently running tasks
//
// Worker utilization over a window is rate(<name>_busy_seconds) divided by
// the pool's worker count. All methods are safe for concurrent use.
type PoolHook struct {
	started   Counter
	completed Counter
	failed    Counter
	queueWait Histogram
	taskDur   Histogram
	busy      Gauge
	inflight  Gauge
}

// NewPoolHook builds a pool hook named name over reg. With a nil registry
// the hook still works but records nothing; callers who want a truly
// absent hook should leave parallel.Options.Hook nil instead (a nil-valued
// non-nil interface would defeat the substrate's hook==nil fast path).
func NewPoolHook(reg *Registry, name string) *PoolHook {
	return &PoolHook{
		started:   reg.Counter(name + "_tasks_started_total"),
		completed: reg.Counter(name + "_tasks_completed_total"),
		failed:    reg.Counter(name + "_tasks_failed_total"),
		queueWait: reg.Histogram(name+"_queue_wait_seconds", LatencyBuckets),
		taskDur:   reg.Histogram(name+"_task_seconds", LatencyBuckets),
		busy:      reg.Gauge(name + "_busy_seconds"),
		inflight:  reg.Gauge(name + "_inflight"),
	}
}

// TaskStart records a worker picking up a task after queueWait in the
// hand-off queue.
func (h *PoolHook) TaskStart(index int, queueWait time.Duration) {
	h.started.Inc()
	h.queueWait.Observe(queueWait.Seconds())
	h.inflight.Add(1)
}

// TaskDone records a task finishing after running for d.
func (h *PoolHook) TaskDone(index int, d time.Duration, err error) {
	h.inflight.Add(-1)
	h.taskDur.Observe(d.Seconds())
	h.busy.Add(d.Seconds())
	if err != nil {
		h.failed.Inc()
	} else {
		h.completed.Inc()
	}
}
