package telemetry

import (
	"strings"
	"testing"
)

func TestWritePrometheusGolden(t *testing.T) {
	reg := New()
	reg.Counter("jobs_total").Add(2)
	reg.Counter(Label("kind_total", "class", "virus")).Inc()
	reg.Gauge("temp").Set(1.5)
	h := reg.Histogram("lat_seconds", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	lh := reg.Histogram(Label("app_seconds", "app", "x"), []float64{1})
	lh.Observe(0.5)

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# TYPE jobs_total counter
jobs_total 2
# TYPE kind_total counter
kind_total{class="virus"} 1
# TYPE temp gauge
temp 1.5
# TYPE app_seconds histogram
app_seconds_bucket{app="x",le="1"} 1
app_seconds_bucket{app="x",le="+Inf"} 1
app_seconds_sum{app="x"} 0.5
app_seconds_count{app="x"} 1
# TYPE lat_seconds histogram
lat_seconds_bucket{le="1"} 1
lat_seconds_bucket{le="2"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 5
lat_seconds_count 3
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	reg := New()
	for _, name := range []string{"b_total", "a_total", "c_total"} {
		reg.Counter(name).Inc()
	}
	var first strings.Builder
	reg.WritePrometheus(&first)
	for i := 0; i < 5; i++ {
		var again strings.Builder
		reg.WritePrometheus(&again)
		if again.String() != first.String() {
			t.Fatalf("non-deterministic output:\n%s\nvs\n%s", again.String(), first.String())
		}
	}
	a := strings.Index(first.String(), "a_total 1")
	b := strings.Index(first.String(), "b_total 1")
	c := strings.Index(first.String(), "c_total 1")
	if !(a >= 0 && a < b && b < c) {
		t.Fatalf("counters not sorted:\n%s", first.String())
	}
}
