package telemetry

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Server is the opt-in debug HTTP endpoint behind -telemetry-addr. It
// serves:
//
//	/metrics       Prometheus text exposition of the registry
//	/healthz       drain-aware readiness (200 until SetDraining, then 503)
//	/debug/vars    expvar (Go runtime memstats + a "telemetry" snapshot)
//	/debug/pprof/  the standard pprof profiles (heap, profile, trace, ...)
//
// Tools can mount extra endpoints (e.g. /debug/traces) with Handle.
// Close shuts it down gracefully and leaks no goroutines.
type Server struct {
	ln       net.Listener
	srv      *http.Server
	mux      *http.ServeMux
	draining atomic.Bool
	done     chan struct{}
}

// expvarReg is the registry the process-global expvar "telemetry" variable
// snapshots. expvar.Publish is global and panics on re-publish, so the
// variable is installed once and reads whichever registry the most recent
// StartServer supplied.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// StartServer listens on addr (":0" picks a free port; see Addr) and
// serves the debug endpoints for reg in a background goroutine.
func StartServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}

	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return expvarReg.Load().Report("expvar")
		}))
	})

	mux := http.NewServeMux()
	s := &Server{
		ln:   ln,
		mux:  mux,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
		done: make(chan struct{}),
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "twosmart telemetry\n\n/metrics\n/healthz\n/debug/vars\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "ok\n")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns http.ErrServerClosed on Shutdown
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Handle mounts an extra handler on the debug mux (e.g. /debug/traces).
// Safe to call after the server started serving; panics (like
// http.ServeMux) on a duplicate pattern.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// SetDraining flips /healthz to 503 so external orchestration stops
// routing to this process while its graceful drain runs. The metrics and
// debug endpoints keep serving — a draining process is still observable.
func (s *Server) SetDraining() { s.draining.Store(true) }

// Draining reports whether SetDraining was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains in-flight requests (bounded at 5 s, then hard-closes) and
// waits for the serve goroutine to exit.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		s.srv.Close()
	}
	<-s.done
	return err
}
