package telemetry

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Server is the opt-in debug HTTP endpoint behind -telemetry-addr. It
// serves:
//
//	/metrics       Prometheus text exposition of the registry
//	/debug/vars    expvar (Go runtime memstats + a "telemetry" snapshot)
//	/debug/pprof/  the standard pprof profiles (heap, profile, trace, ...)
//
// Close shuts it down gracefully and leaks no goroutines.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// expvarReg is the registry the process-global expvar "telemetry" variable
// snapshots. expvar.Publish is global and panics on re-publish, so the
// variable is installed once and reads whichever registry the most recent
// StartServer supplied.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// StartServer listens on addr (":0" picks a free port; see Addr) and
// serves the debug endpoints for reg in a background goroutine.
func StartServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}

	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return expvarReg.Load().Report("expvar")
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "twosmart telemetry\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns http.ErrServerClosed on Shutdown
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close drains in-flight requests (bounded at 5 s, then hard-closes) and
// waits for the serve goroutine to exit.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		s.srv.Close()
	}
	<-s.done
	return err
}
