package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	reg := New()
	c := reg.Counter("hits_total")
	const goroutines, per = 16, 10000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	// The same name resolves to the same counter.
	if got := reg.Counter("hits_total").Value(); got != goroutines*per {
		t.Fatalf("re-resolved counter = %d, want %d", got, goroutines*per)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	reg := New()
	g := reg.Gauge("inflight")
	var wg sync.WaitGroup
	wg.Add(8)
	for w := 0; w < 8; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := New()
	h := reg.Histogram("lat_seconds", []float64{0.1, 1, 10})
	var wg sync.WaitGroup
	wg.Add(8)
	for w := 0; w < 8; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	s := h.Summary()
	if s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
	if s.Sum < 3999 || s.Sum > 4001 {
		t.Fatalf("sum = %v, want ~4000", s.Sum)
	}
	if s.Min != 0.5 || s.Max != 0.5 {
		t.Fatalf("min/max = %v/%v, want 0.5/0.5", s.Min, s.Max)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var reg *Registry
	if reg.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	// None of these may panic, and all must be no-ops.
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Histogram("h", LatencyBuckets).Observe(1)
	span := reg.StartSpan("stage")
	if d := span.End(); d != 0 {
		t.Fatalf("nil span duration = %v, want 0", d)
	}
	if spans := reg.Spans(); spans != nil {
		t.Fatalf("nil registry spans = %v, want nil", spans)
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	rep := reg.Report("tool")
	if rep == nil || rep.Tool != "tool" {
		t.Fatalf("nil registry report = %+v", rep)
	}
}

func TestSpansRecorded(t *testing.T) {
	reg := New()
	s := reg.StartSpan("train/stage2/virus")
	time.Sleep(time.Millisecond)
	d := s.End()
	if d < time.Millisecond {
		t.Fatalf("span duration = %v, want >= 1ms", d)
	}
	spans := reg.Spans()
	if len(spans) != 1 || spans[0].Name != "train/stage2/virus" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Duration < 0.001 {
		t.Fatalf("recorded duration = %v, want >= 0.001", spans[0].Duration)
	}
	// The span feeds a sanitized latency histogram.
	if sum := reg.Histogram("span_train_stage2_virus_seconds", LatencyBuckets).Summary(); sum.Count != 1 {
		t.Fatalf("span histogram count = %d, want 1", sum.Count)
	}
}

func TestLabel(t *testing.T) {
	for _, tc := range []struct{ name, key, value, want string }{
		{"x_total", "class", "virus", `x_total{class="virus"}`},
		{`x_total{a="b"}`, "kind", "J48", `x_total{a="b",kind="J48"}`},
		{"x_total", "q", `a"b\c`, `x_total{q="a\"b\\c"}`},
	} {
		if got := Label(tc.name, tc.key, tc.value); got != tc.want {
			t.Errorf("Label(%q, %q, %q) = %q, want %q", tc.name, tc.key, tc.value, got, tc.want)
		}
	}
}

func TestReportSnapshot(t *testing.T) {
	reg := New()
	reg.Counter("a_total").Add(3)
	reg.Gauge("g").Set(1.5)
	reg.Histogram("h_seconds", []float64{1, 2}).Observe(1.5)
	reg.StartSpan("stage").End()

	rep := reg.Report("test")
	if rep.Tool != "test" {
		t.Fatalf("tool = %q", rep.Tool)
	}
	if rep.Counters["a_total"] != 3 {
		t.Fatalf("counters = %v", rep.Counters)
	}
	if rep.Gauges["g"] != 1.5 {
		t.Fatalf("gauges = %v", rep.Gauges)
	}
	if h := rep.Histograms["h_seconds"]; h.Count != 1 || h.Sum != 1.5 {
		t.Fatalf("histograms = %+v", rep.Histograms)
	}
	if len(rep.Spans) != 1 || rep.Spans[0].Name != "stage" {
		t.Fatalf("spans = %+v", rep.Spans)
	}
	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"a_total": 3`) {
		t.Fatalf("JSON missing counter: %s", buf.String())
	}
}
