package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4), sorted by metric name so the output
// is deterministic. Histograms emit cumulative _bucket series with an le
// label merged into any labels the metric name already carries, plus _sum
// and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]*histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	typed := map[string]bool{}
	writeType := func(name, kind string) {
		base := baseName(name)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
	}

	for _, name := range sortedKeys(counters) {
		writeType(name, "counter")
		fmt.Fprintf(w, "%s %d\n", name, counters[name])
	}
	for _, name := range sortedKeys(gauges) {
		writeType(name, "gauge")
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(gauges[name]))
	}
	for _, name := range sortedKeys(hists) {
		writeType(name, "histogram")
		h := hists[name]
		counts := h.snapshot()
		base, labels := baseName(name), labelSet(name)
		var cum uint64
		for i, c := range counts {
			cum += c
			le := "+Inf"
			if i < len(h.bounds) {
				le = formatFloat(h.bounds[i])
			}
			if labels != "" {
				fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", base, labels, le, cum)
			} else {
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", base, le, cum)
			}
		}
		sum := math.Float64frombits(h.sumBits.Load())
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		fmt.Fprintf(w, "%s_sum%s %s\n", base, suffix, formatFloat(sum))
		fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, cum)
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
