package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refQuantile is the nearest-rank quantile of the exact value set, the
// reference the bucketed estimate is checked against.
func refQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// bucketWidth returns the width of the bucket that owns v — the bound on
// the quantile estimate's error.
func bucketWidth(bounds []float64, min, max, v float64) float64 {
	i := sort.SearchFloat64s(bounds, v)
	lo := min
	if i > 0 && bounds[i-1] > lo {
		lo = bounds[i-1]
	}
	hi := max
	if i < len(bounds) && bounds[i] < hi {
		hi = bounds[i]
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

func TestHistogramQuantilesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dist := range []struct {
		name string
		gen  func() float64
	}{
		{"uniform", func() float64 { return rng.Float64() * 9 }},
		{"exponentialish", func() float64 { return math.Pow(10, -5+5*rng.Float64()) }},
		{"clustered", func() float64 { return 0.001 + 0.0001*rng.NormFloat64() }},
	} {
		t.Run(dist.name, func(t *testing.T) {
			h := newHistogram(LatencyBuckets)
			values := make([]float64, 5000)
			for i := range values {
				v := math.Abs(dist.gen())
				values[i] = v
				h.Observe(v)
			}
			sort.Float64s(values)

			s := h.Summary()
			if s.Count != uint64(len(values)) {
				t.Fatalf("count = %d, want %d", s.Count, len(values))
			}
			if s.Min != values[0] || s.Max != values[len(values)-1] {
				t.Fatalf("min/max = %v/%v, want exact %v/%v", s.Min, s.Max, values[0], values[len(values)-1])
			}
			var sum float64
			for _, v := range values {
				sum += v
			}
			if math.Abs(s.Sum-sum) > 1e-6*sum {
				t.Fatalf("sum = %v, want %v", s.Sum, sum)
			}

			for _, tc := range []struct {
				q   float64
				got float64
			}{{0.50, s.P50}, {0.95, s.P95}, {0.99, s.P99}} {
				ref := refQuantile(values, tc.q)
				tol := bucketWidth(LatencyBuckets, s.Min, s.Max, ref) + 1e-12
				if math.Abs(tc.got-ref) > tol {
					t.Errorf("p%d = %v, reference %v, |err| %v exceeds bucket width %v",
						int(tc.q*100), tc.got, ref, math.Abs(tc.got-ref), tol)
				}
				if tc.got < s.Min || tc.got > s.Max {
					t.Errorf("p%d = %v outside observed [%v, %v]", int(tc.q*100), tc.got, s.Min, s.Max)
				}
			}
			if s.P50 > s.P95 || s.P95 > s.P99 {
				t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
			}
		})
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	h.Observe(0.003)
	s := h.Summary()
	if s.Count != 1 || s.Min != 0.003 || s.Max != 0.003 {
		t.Fatalf("summary = %+v", s)
	}
	// With one observation every quantile collapses to the exact value.
	if s.P50 != 0.003 || s.P95 != 0.003 || s.P99 != 0.003 {
		t.Fatalf("quantiles = %v/%v/%v, want 0.003 each", s.P50, s.P95, s.P99)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	s := h.Summary()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 ||
		s.P50 != 0 || s.P95 != 0 || s.P99 != 0 || s.Exemplars != nil {
		t.Fatalf("empty summary = %+v, want zero value", s)
	}
	if s.Mean() != 0 {
		t.Fatalf("empty mean = %v", s.Mean())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	// Values beyond the last bound land in the +Inf bucket; Min/Max stay
	// exact so quantiles remain clamped to reality.
	h := newHistogram([]float64{1, 2})
	h.Observe(100)
	h.Observe(200)
	s := h.Summary()
	if s.Min != 100 || s.Max != 200 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P99 < 100 || s.P99 > 200 {
		t.Fatalf("p99 = %v outside [100, 200]", s.P99)
	}
}
