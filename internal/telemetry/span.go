package telemetry

import (
	"context"
	"strings"
	"time"
)

// SpanRecord is one completed pipeline stage: its name, its start offset
// from registry creation, and its wall duration, both in seconds. The run
// report serializes these verbatim.
type SpanRecord struct {
	Name     string  `json:"name"`
	StartS   float64 `json:"start_s"`
	Duration float64 `json:"duration_s"`
}

// Span is an in-flight stage timer returned by StartSpan. The zero Span
// (and any span from a nil registry) is inert.
type Span struct {
	r     *Registry
	name  string
	start time.Time
}

// StartSpan opens a named stage timer. Span names use '/' to express
// nesting ("train/stage2/virus"); End records the span and feeds a
// per-name latency histogram (span_<name>_seconds with '/' mapped to '_'),
// so repeated stages (cross-validation folds, sweep jobs) get quantiles
// for free.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, start: time.Now()}
}

// End completes the span and returns its duration. Safe on an inert span.
func (s Span) End() time.Duration {
	if s.r == nil {
		return 0
	}
	d := time.Since(s.start)
	rec := SpanRecord{
		Name:     s.name,
		StartS:   s.start.Sub(s.r.start).Seconds(),
		Duration: d.Seconds(),
	}
	s.r.mu.Lock()
	if len(s.r.spans) < maxSpans {
		s.r.spans = append(s.r.spans, rec)
	} else {
		s.r.dropped++
	}
	s.r.mu.Unlock()
	s.r.Histogram("span_"+spanMetricName(s.name)+"_seconds", LatencyBuckets).Observe(d.Seconds())
	return d
}

// Spans returns a copy of the completed spans in completion order.
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanRecord(nil), r.spans...)
}

func spanMetricName(name string) string {
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			return c
		default:
			return '_'
		}
	}, name)
}

// --- context plumbing ------------------------------------------------------

type ctxKey struct{}

// NewContext returns ctx carrying the registry, for call chains (like
// ml.CrossValidate) whose signatures predate telemetry.
func NewContext(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext extracts the registry carried by NewContext, or nil — which
// is itself a valid, disabled registry.
func FromContext(ctx context.Context) *Registry {
	r, _ := ctx.Value(ctxKey{}).(*Registry)
	return r
}
