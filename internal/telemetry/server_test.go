package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestServerEndpoints(t *testing.T) {
	reg := New()
	reg.Counter("requests_total").Add(7)
	reg.Histogram("work_seconds", []float64{1}).Observe(0.5)

	before := runtime.NumGoroutine()
	s, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	base := "http://" + s.Addr()

	// A dedicated transport so idle keep-alive connections (and their
	// goroutines) are torn down before the leak check.
	tr := &http.Transport{}
	client := &http.Client{Transport: tr, Timeout: 5 * time.Second}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "requests_total 7") ||
		!strings.Contains(body, `work_seconds_bucket{le="1"} 1`) {
		t.Errorf("/metrics: code=%d body:\n%s", code, body)
	}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	resp.Body.Close()

	if code, body := get("/debug/vars"); code != http.StatusOK ||
		!strings.Contains(body, `"telemetry"`) || !strings.Contains(body, `"memstats"`) {
		t.Errorf("/debug/vars: code=%d body starts: %.200s", code, body)
	}
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code=%d body starts: %.200s", code, body)
	}
	if code, _ := get("/"); code != http.StatusOK {
		t.Errorf("/: code=%d", code)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope: code=%d, want 404", code)
	}

	tr.CloseIdleConnections()
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	// The server must be down and its goroutines gone.
	if _, err := client.Get(base + "/metrics"); err == nil {
		t.Error("server still reachable after Close")
	}
	tr.CloseIdleConnections()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before StartServer, %d after Close", before, runtime.NumGoroutine())
}

func TestServerCloseIdempotentRegistrySwap(t *testing.T) {
	// A second StartServer must not panic on expvar re-publish, and the
	// expvar snapshot must follow the most recent registry.
	reg1 := New()
	s1, err := StartServer("127.0.0.1:0", reg1)
	if err != nil {
		t.Fatalf("StartServer 1: %v", err)
	}
	defer s1.Close()
	reg2 := New()
	reg2.Counter("second_total").Inc()
	s2, err := StartServer("127.0.0.1:0", reg2)
	if err != nil {
		t.Fatalf("StartServer 2: %v", err)
	}
	defer s2.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", s2.Addr()))
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "second_total") {
		t.Errorf("expvar snapshot not following latest registry: %.300s", body)
	}
}
