package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"time"
)

// RunReport is the machine-readable artifact behind the -report flag: one
// JSON document per run with stage timings (spans), every metric's final
// value, and tool-supplied dataset statistics and result figures. Schema
// documented in README.md ("Observability").
type RunReport struct {
	Tool      string    `json:"tool"`
	StartedAt time.Time `json:"started_at"`
	WallS     float64   `json:"wall_s"`

	Spans        []SpanRecord `json:"spans"`
	SpansDropped int          `json:"spans_dropped,omitempty"`

	Counters   map[string]uint64           `json:"counters"`
	Gauges     map[string]float64          `json:"gauges"`
	Histograms map[string]HistogramSummary `json:"histograms"`

	// Dataset describes the corpus the run worked on (nil when the tool
	// did not touch a dataset).
	Dataset *DatasetStats `json:"dataset,omitempty"`
	// Results holds the tool's headline figures (final model metrics,
	// accuracy, F-measure) keyed by a stable snake_case name.
	Results map[string]float64 `json:"results,omitempty"`
	// Notes holds tool-supplied string annotations that don't fit a
	// numeric result — e.g. smartserve's drift recommendation
	// ("ok" / "retrain-or-rollback") — keyed like Results.
	Notes map[string]string `json:"notes,omitempty"`
}

// DatasetStats summarises a dataset for the run report.
type DatasetStats struct {
	Samples  int            `json:"samples"`
	Features int            `json:"features"`
	Classes  map[string]int `json:"classes,omitempty"`
}

// Report snapshots the registry into a run report. The caller fills
// Dataset and Results before writing.
func (r *Registry) Report(tool string) *RunReport {
	rep := &RunReport{
		Tool:       tool,
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSummary{},
		Results:    map[string]float64{},
	}
	if r == nil {
		return rep
	}
	rep.StartedAt = r.start
	rep.WallS = time.Since(r.start).Seconds()

	r.mu.Lock()
	rep.Spans = append([]SpanRecord(nil), r.spans...)
	rep.SpansDropped = r.dropped
	counters := make(map[string]*counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	for name, c := range counters {
		rep.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		rep.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		rep.Histograms[name] = h.Summary()
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (rep *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteFile writes the report to path ("-" means stdout).
func (rep *RunReport) WriteFile(path string) error {
	if path == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
