package corpus

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
	"time"

	"twosmart/internal/dataset"
	"twosmart/internal/hpc"
	"twosmart/internal/workload"
)

func smallConfig() Config {
	return Config{
		Scale:       0.001, // floors at MinPerClass
		MinPerClass: 3,
		Budget:      30000,
		Seed:        1,
	}
}

func TestPaperCounts(t *testing.T) {
	counts := PaperCounts()
	if counts[workload.Backdoor] != 452 || counts[workload.Rootkit] != 350 ||
		counts[workload.Virus] != 650 || counts[workload.Trojan] != 1169 {
		t.Fatalf("malware counts %v do not match the paper", counts)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total <= 3000 {
		t.Fatalf("total corpus %d, paper says more than 3000", total)
	}
}

func TestCountsScaling(t *testing.T) {
	c := Config{Scale: 0.1, MinPerClass: 5}
	counts := c.Counts()
	if counts[workload.Trojan] != 116 {
		t.Fatalf("trojan scaled count=%d, want 116", counts[workload.Trojan])
	}
	if counts[workload.Rootkit] != 35 {
		t.Fatalf("rootkit scaled count=%d, want 35", counts[workload.Rootkit])
	}
	tiny := Config{Scale: 0.0001, MinPerClass: 5}
	for cls, n := range tiny.Counts() {
		if n != 5 {
			t.Fatalf("%v count=%d, want MinPerClass floor 5", cls, n)
		}
	}
}

func TestAppsEnumeration(t *testing.T) {
	c := smallConfig()
	apps := c.Apps()
	if len(apps) != 15 { // 5 classes x 3
		t.Fatalf("apps=%d, want 15", len(apps))
	}
	if apps[0].Class != workload.Benign || apps[0].ID != 0 {
		t.Fatal("enumeration must start with benign-0000")
	}
	seen := map[string]bool{}
	for _, a := range apps {
		if seen[a.Name] {
			t.Fatalf("duplicate app %s", a.Name)
		}
		seen[a.Name] = true
	}
}

func TestSchemaNames(t *testing.T) {
	feats := FeatureNames()
	if len(feats) != hpc.NumEvents {
		t.Fatalf("features=%d, want %d", len(feats), hpc.NumEvents)
	}
	if feats[int(hpc.EvBranchInstr)] != "branch-instructions" {
		t.Fatal("feature order must follow event order")
	}
	classes := ClassNames()
	if classes[int(workload.Benign)] != "benign" || classes[int(workload.Trojan)] != "trojan" {
		t.Fatalf("class names %v", classes)
	}
}

func TestCollectOmniscient(t *testing.T) {
	cfg := smallConfig()
	cfg.Omniscient = true
	d, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumFeatures() != hpc.NumEvents || d.NumClasses() != workload.NumClasses {
		t.Fatalf("schema %dx%d", d.NumFeatures(), d.NumClasses())
	}
	if d.Len() == 0 {
		t.Fatal("no instances")
	}
	counts := d.ClassCounts()
	for cls, n := range counts {
		if n == 0 {
			t.Fatalf("class %s has no samples", d.ClassNames[cls])
		}
	}
	// Every app contributes at most SamplesPerApp instances.
	perApp := map[string]int{}
	for _, ins := range d.Instances {
		perApp[ins.App]++
		if perApp[ins.App] > 4 {
			t.Fatalf("app %s has %d samples, cap is 4", ins.App, perApp[ins.App])
		}
	}
	// instructions (a always-counted event) must be positive everywhere.
	instrIdx := d.FeatureIndex("instructions")
	for _, ins := range d.Instances {
		if ins.Features[instrIdx] <= 0 {
			t.Fatal("sample with no instructions")
		}
	}
}

// The faithful 11-batch multiplexed path and the omniscient single-run path
// must produce identical datasets, because program replay is deterministic.
// This is the property that lets the 11 per-application runs be merged
// sample-by-sample.
func TestMultiplexedMatchesOmniscient(t *testing.T) {
	base := smallConfig()
	base.MinPerClass = 2

	omni := base
	omni.Omniscient = true
	do, err := Collect(omni)
	if err != nil {
		t.Fatal(err)
	}
	faithful := base
	faithful.Omniscient = false
	df, err := Collect(faithful)
	if err != nil {
		t.Fatal(err)
	}
	if do.Len() != df.Len() {
		t.Fatalf("lengths differ: omniscient=%d multiplexed=%d", do.Len(), df.Len())
	}
	for i := range do.Instances {
		a, b := do.Instances[i], df.Instances[i]
		if a.App != b.App || a.Label != b.Label {
			t.Fatalf("instance %d metadata differs", i)
		}
		for j := range a.Features {
			if a.Features[j] != b.Features[j] {
				t.Fatalf("instance %d (%s) feature %s differs: %v vs %v",
					i, a.App, do.FeatureNames[j], a.Features[j], b.Features[j])
			}
		}
	}
}

func TestCollectDeterministic(t *testing.T) {
	cfg := smallConfig()
	cfg.Omniscient = true
	a, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("collections differ in length")
	}
	for i := range a.Instances {
		for j := range a.Instances[i].Features {
			if a.Instances[i].Features[j] != b.Instances[i].Features[j] {
				t.Fatal("collections differ despite identical config")
			}
		}
	}
}

// Same seed must yield an identical dataset — instance order and values —
// at any worker count: results land at their enumeration index regardless
// of which worker profiled them.
func TestCollectDeterministicAcrossWorkers(t *testing.T) {
	collect := func(workers int, omniscient bool) *dataset.Dataset {
		t.Helper()
		cfg := smallConfig()
		cfg.Omniscient = omniscient
		cfg.Workers = workers
		d, err := Collect(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	for _, omniscient := range []bool{true, false} {
		ref := collect(1, omniscient)
		for _, workers := range []int{4, runtime.NumCPU()} {
			got := collect(workers, omniscient)
			if got.Len() != ref.Len() {
				t.Fatalf("workers=%d omniscient=%v: %d instances, want %d",
					workers, omniscient, got.Len(), ref.Len())
			}
			for i := range ref.Instances {
				a, b := ref.Instances[i], got.Instances[i]
				if a.App != b.App || a.Label != b.Label {
					t.Fatalf("workers=%d: instance %d metadata differs", workers, i)
				}
				for j := range a.Features {
					if a.Features[j] != b.Features[j] {
						t.Fatalf("workers=%d: instance %d feature %d: %v vs %v",
							workers, i, j, a.Features[j], b.Features[j])
					}
				}
			}
		}
	}
}

// Cancelling mid-collection must return context.Canceled promptly and leave
// no worker goroutines behind.
func TestCollectContextCancellation(t *testing.T) {
	for _, omniscient := range []bool{true, false} {
		before := runtime.NumGoroutine()
		cfg := smallConfig()
		cfg.Omniscient = omniscient
		cfg.MinPerClass = 6
		cfg.Workers = 4
		ctx, cancel := context.WithCancel(context.Background())
		// Cancel as soon as the first application completes, so the pool
		// is mid-flight with work still queued.
		cfg.Progress = func(done, total int) {
			if done == 1 {
				cancel()
			}
		}
		start := time.Now()
		d, err := CollectContext(ctx, cfg)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("omniscient=%v: err=%v, want context.Canceled", omniscient, err)
		}
		if d != nil {
			t.Fatal("cancelled collection must not return a dataset")
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("cancellation took %v, want prompt return", elapsed)
		}
		cancel()
		waitForGoroutines(t, before)
	}
}

// TestCollectPreCancelled verifies no profiling work starts under an
// already-cancelled context.
func TestCollectPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := smallConfig()
	cfg.Omniscient = true
	started := false
	cfg.Progress = func(done, total int) { started = true }
	if _, err := CollectContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if started {
		t.Fatal("profiling ran under a cancelled context")
	}
}

func TestCollectProgress(t *testing.T) {
	cfg := smallConfig()
	cfg.Omniscient = true
	var last, calls int
	cfg.Progress = func(done, total int) {
		if total != 15 { // 5 classes x MinPerClass 3
			t.Errorf("total=%d, want 15", total)
		}
		if done != last+1 {
			t.Errorf("progress done=%d after %d, want strictly increasing", done, last)
		}
		last = done
		calls++
	}
	if _, err := Collect(cfg); err != nil {
		t.Fatal(err)
	}
	if calls != 15 {
		t.Fatalf("progress called %d times, want 15", calls)
	}
}

func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCollectTooSmallBudget(t *testing.T) {
	cfg := smallConfig()
	cfg.Omniscient = true
	cfg.Budget = 50 // far less than one 10 ms period
	if _, err := Collect(cfg); err == nil {
		t.Fatal("expected error when no sample fits the budget")
	}
}

func TestManifest(t *testing.T) {
	cfg := Config{Scale: 0.1, Seed: 5, Budget: 40000}
	m := cfg.Manifest()
	if m.Total <= 0 {
		t.Fatal("empty manifest population")
	}
	if m.Counts["trojan"] != 116 {
		t.Fatalf("trojan count=%d", m.Counts["trojan"])
	}
	if m.CounterRegisters != 4 || m.MultiplexBatches != 11 {
		t.Fatalf("registers=%d batches=%d", m.CounterRegisters, m.MultiplexBatches)
	}
	if m.RunsPerApp != 11 {
		t.Fatalf("faithful runs per app=%d, want 11", m.RunsPerApp)
	}
	omni := cfg
	omni.Omniscient = true
	if omni.Manifest().RunsPerApp != 1 {
		t.Fatal("omniscient runs per app wrong")
	}
	if len(m.EventNames) != hpc.NumEvents || len(m.ClassNames) != workload.NumClasses {
		t.Fatal("schema wrong")
	}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf, time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	var round map[string]any
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if round["generated_at"] != "2026-07-01T00:00:00Z" {
		t.Fatalf("timestamp=%v", round["generated_at"])
	}
	if round["total_applications"].(float64) <= 0 {
		t.Fatal("total missing in JSON")
	}
}
