// Package corpus assembles the profiling corpus and drives data collection:
// it generates the benign and malware application population (scaled from
// the paper's 1000+ benign, 452 Backdoor, 350 Rootkit, 650 Virus and 1169
// Trojan samples), executes every application in disposable sandbox
// containers, collects the 44 perf events through the 4-register counter
// file using the 11-batch multiplexing schedule (one fresh container per
// batch, as the paper runs each application 11 times), and emits a labelled
// dataset with one instance per 10 ms sample.
package corpus

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"twosmart/internal/dataset"
	"twosmart/internal/hpc"
	"twosmart/internal/microarch"
	"twosmart/internal/parallel"
	"twosmart/internal/sandbox"
	"twosmart/internal/telemetry"
	"twosmart/internal/workload"
)

// PaperCounts returns the application population of the paper: the four
// malware class sizes from Section III-A plus ~1000 benign applications
// (MiBench, system programs, browsers, editors, word processors) making the
// stated "more than 3000" total.
func PaperCounts() map[workload.Class]int {
	return map[workload.Class]int{
		workload.Benign:   1000,
		workload.Backdoor: 452,
		workload.Rootkit:  350,
		workload.Virus:    650,
		workload.Trojan:   1169,
	}
}

// Config controls corpus generation and profiling.
type Config struct {
	// Scale multiplies the paper's per-class application counts
	// (1.0 = full 3621-application corpus). Each class keeps at least
	// MinPerClass applications.
	Scale float64
	// MinPerClass floors the per-class population (default 8).
	MinPerClass int
	// Budget is the per-run dynamic instruction count
	// (default workload.DefaultBudget).
	Budget int64
	// Seed perturbs the whole corpus deterministically.
	Seed int64
	// SamplesPerApp caps the 10 ms samples kept per application
	// (default 4; 0 keeps all).
	SamplesPerApp int
	// FreqHz is the modelled core frequency. The default of 4 MHz is the
	// X5550's 2.67 GHz scaled down by the same factor as the instruction
	// budgets, so a 10 ms sampling period spans a proportionate slice of
	// each program's execution.
	FreqHz float64
	// Arch is the processor model (default microarch.DefaultConfig).
	Arch *microarch.Config
	// Omniscient collects all 44 events in a single run per application
	// using a simulator-only sink, instead of the faithful 11-batch
	// multiplexed schedule. Because program streams are deterministic,
	// the two paths produce identical datasets; the omniscient path is
	// 11x faster and intended for tests. The faithful path is the
	// default and is what the methodology experiments exercise.
	Omniscient bool
	// Workers bounds profiling parallelism (default NumCPU).
	Workers int
	// Progress, when non-nil, is called after each application finishes
	// profiling with the number of applications done and the total.
	// Calls are serialized (see parallel.Options.OnProgress).
	Progress func(done, total int)
	// Telemetry, when non-nil, records collection metrics (apps profiled,
	// multiplex batches, per-app wall time, pool utilization under the
	// "corpus" prefix) and a corpus/collect span.
	Telemetry *telemetry.Registry
}

// DefaultFreqHz is the scaled modelled core frequency used for sampling.
const DefaultFreqHz = 4e6

func (c *Config) fill() Config {
	out := *c
	if out.Scale <= 0 {
		out.Scale = 1
	}
	if out.MinPerClass <= 0 {
		out.MinPerClass = 8
	}
	if out.Budget <= 0 {
		out.Budget = workload.DefaultBudget
	}
	if out.SamplesPerApp < 0 {
		out.SamplesPerApp = 0
	} else if out.SamplesPerApp == 0 {
		out.SamplesPerApp = 4
	}
	if out.FreqHz <= 0 {
		out.FreqHz = DefaultFreqHz
	}
	if out.Arch == nil {
		cfg := microarch.DefaultConfig()
		out.Arch = &cfg
	}
	if out.Workers <= 0 {
		out.Workers = runtime.NumCPU()
	}
	return out
}

// Counts returns the scaled per-class application counts for this config.
func (c Config) Counts() map[workload.Class]int {
	cfg := c.fill()
	out := make(map[workload.Class]int, workload.NumClasses)
	for cls, n := range PaperCounts() {
		scaled := int(float64(n) * cfg.Scale)
		if scaled < cfg.MinPerClass {
			scaled = cfg.MinPerClass
		}
		out[cls] = scaled
	}
	return out
}

// App identifies one application in the corpus.
type App struct {
	Class workload.Class
	ID    int
	Name  string
}

// Apps enumerates the corpus population in deterministic order: benign
// first, then the malware classes in canonical order.
func (c Config) Apps() []App {
	counts := c.Counts()
	var apps []App
	for _, cls := range workload.AllClasses() {
		for id := 0; id < counts[cls]; id++ {
			apps = append(apps, App{
				Class: cls,
				ID:    id,
				Name:  fmt.Sprintf("%s-%04d", cls, id),
			})
		}
	}
	return apps
}

// ClassNames returns the dataset class naming, indexed by workload.Class.
func ClassNames() []string {
	names := make([]string, workload.NumClasses)
	for _, c := range workload.AllClasses() {
		names[c] = c.String()
	}
	return names
}

// FeatureNames returns the 44 event names in canonical order.
func FeatureNames() []string {
	events := hpc.AllEvents()
	names := make([]string, len(events))
	for i, e := range events {
		names[i] = e.String()
	}
	return names
}

// Collect profiles the whole corpus and returns the labelled dataset: one
// instance per (application, sample) with 44 features in canonical event
// order. It is CollectContext without cancellation.
func Collect(cfg Config) (*dataset.Dataset, error) {
	return CollectContext(context.Background(), cfg)
}

// CollectContext is Collect with cancellation: profiling fans out over a
// bounded worker pool (Config.Workers) and stops promptly — between
// applications, between multiplex batches, and between samples within a
// run — when ctx is cancelled, returning ctx's error. The dataset is
// byte-identical for a given Seed at any worker count, because every
// application's rows land at its enumeration index.
func CollectContext(ctx context.Context, cfg Config) (*dataset.Dataset, error) {
	c := cfg.fill()
	apps := c.Apps()
	d := dataset.New(FeatureNames(), ClassNames())

	reg := c.Telemetry
	span := reg.StartSpan("corpus/collect")
	defer span.End()
	appsProfiled := reg.Counter("corpus_apps_profiled_total")
	samplesKept := reg.Counter("corpus_samples_total")
	appWall := reg.Histogram("corpus_app_profile_seconds", telemetry.LatencyBuckets)

	popts := parallel.Options{Workers: c.Workers, OnProgress: c.Progress}
	if reg.Enabled() {
		popts.Hook = telemetry.NewPoolHook(reg, "corpus")
	}
	results, err := parallel.Map(ctx, len(apps), popts, func(ctx context.Context, i int) ([][]float64, error) {
		var t0 time.Time
		if reg.Enabled() {
			t0 = time.Now()
		}
		rows, err := profileApp(ctx, &c, apps[i])
		if err != nil {
			return nil, fmt.Errorf("corpus: profiling %s: %w", apps[i].Name, err)
		}
		if reg.Enabled() {
			appWall.ObserveDuration(time.Since(t0))
			appsProfiled.Inc()
			samplesKept.Add(uint64(len(rows)))
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}

	for i, rows := range results {
		for _, row := range rows {
			if err := d.Add(dataset.Instance{
				Features: row,
				Label:    int(apps[i].Class),
				App:      apps[i].Name,
			}); err != nil {
				return nil, err
			}
		}
	}
	if d.Len() == 0 {
		return nil, errors.New("corpus: no samples collected; budget too small for one sampling period")
	}
	return d, nil
}

// profileApp collects the per-sample 44-event rows for one application.
func profileApp(ctx context.Context, c *Config, app App) ([][]float64, error) {
	opts := workload.Options{Budget: c.Budget, Seed: c.Seed}
	if c.Omniscient {
		return profileOmniscient(ctx, c, app, opts)
	}
	return profileMultiplexed(ctx, c, app, opts)
}

// profileMultiplexed is the faithful path: 11 batches of at most 4 events,
// each batch executed in a fresh container (the paper destroys the LXC
// container after every run to avoid contamination). Deterministic program
// streams make the 11 executions identical, so per-batch samples align
// exactly by index.
func profileMultiplexed(ctx context.Context, c *Config, app App, opts workload.Options) ([][]float64, error) {
	mgr := sandbox.NewManager(*c.Arch)
	groups := hpc.MultiplexSchedule(hpc.AllEvents())
	profOpts := sandbox.ProfileOptions{
		FreqHz:     c.FreqHz,
		Period:     10 * time.Millisecond,
		MaxSamples: c.SamplesPerApp,
	}

	batches := c.Telemetry.Counter("corpus_batches_total")
	var rows [][]float64
	numSamples := -1
	for _, group := range groups {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		batches.Inc()
		prog := workload.Generate(app.Class, app.ID, opts)
		stream, err := prog.Stream()
		if err != nil {
			return nil, err
		}
		samples, err := mgr.RunIsolated(stream, []hpc.Event(group), profOpts)
		if err != nil {
			return nil, err
		}
		if numSamples < 0 {
			numSamples = len(samples)
			rows = make([][]float64, numSamples)
			for i := range rows {
				rows[i] = make([]float64, hpc.NumEvents)
			}
		} else if len(samples) != numSamples {
			return nil, fmt.Errorf("batch produced %d samples, want %d (non-deterministic replay?)", len(samples), numSamples)
		}
		for si, s := range samples {
			for ei, ev := range group {
				rows[si][int(ev)] = float64(s.Counts[ei])
			}
			// The fixed-function counters come for free with every
			// batch; any batch may fill them in (all agree, since
			// replay is deterministic).
			for fi, ev := range hpc.FixedEvents {
				rows[si][int(ev)] = float64(s.Fixed[fi])
			}
		}
	}
	for _, row := range rows {
		normalizeRow(row)
	}
	return rows, nil
}

// normalizeRow converts raw per-interval counts into the detector feature
// representation: every event becomes a rate per thousand retired
// instructions, using the fixed-function instruction counter that run-time
// detectors read alongside the programmable registers. The instruction
// count itself stays raw (per-interval throughput is informative in its own
// right). Normalising removes the CPI confound: a miss-heavy payload that
// stalls the core retires fewer instructions per 10 ms, which would
// otherwise scale every event down together.
func normalizeRow(row []float64) {
	instr := row[int(hpc.EvInstrs)]
	if instr <= 0 {
		return
	}
	k := 1000 / instr
	for e := range row {
		if hpc.Event(e) == hpc.EvInstrs {
			continue
		}
		row[e] *= k
	}
}

// profileOmniscient collects all 44 events in one run.
func profileOmniscient(ctx context.Context, c *Config, app App, opts workload.Options) ([][]float64, error) {
	prog := workload.Generate(app.Class, app.ID, opts)
	stream, err := prog.Stream()
	if err != nil {
		return nil, err
	}
	sink := &hpc.Accumulator{}
	core, err := microarch.NewCore(*c.Arch, sink)
	if err != nil {
		return nil, err
	}
	core.Bind(stream)

	cyclesPerPeriod := uint64(c.FreqHz * (10 * time.Millisecond).Seconds())
	if cyclesPerPeriod == 0 {
		return nil, errors.New("sampling period shorter than one cycle")
	}
	var rows [][]float64
	var prev [hpc.NumEvents]uint64
	boundary := cyclesPerPeriod
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if core.Run(1024) == 0 {
			return rows, nil // drop partial tail, as the sampler does
		}
		for core.CycleCount() >= boundary {
			// Software clocks advance per period, as in hpc.Sampler.
			ns := uint64((10 * time.Millisecond).Nanoseconds())
			sink.Inc(hpc.EvCPUClock, ns)
			sink.Inc(hpc.EvTaskClock, ns)
			row := make([]float64, hpc.NumEvents)
			for e := 0; e < hpc.NumEvents; e++ {
				cur := sink.Count(hpc.Event(e))
				row[e] = float64(cur - prev[e])
				prev[e] = cur
			}
			normalizeRow(row)
			rows = append(rows, row)
			// Coalesce missed ticks, mirroring hpc.Sampler.
			for boundary <= core.CycleCount() {
				boundary += cyclesPerPeriod
			}
			if c.SamplesPerApp > 0 && len(rows) >= c.SamplesPerApp {
				return rows, nil
			}
		}
	}
}
