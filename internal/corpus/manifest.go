package corpus

import (
	"encoding/json"
	"io"
	"time"

	"twosmart/internal/hpc"
	"twosmart/internal/workload"
)

// Manifest describes a corpus configuration in a machine-readable form: the
// population, profiling parameters and schema. It is the provenance record
// written next to an exported dataset so downstream users know exactly what
// produced it.
type Manifest struct {
	// Population.
	Counts map[string]int `json:"counts"`
	Total  int            `json:"total_applications"`
	// Profiling parameters.
	Scale             float64  `json:"scale"`
	Seed              int64    `json:"seed"`
	BudgetInstrs      int64    `json:"budget_instructions"`
	SamplesPerApp     int      `json:"samples_per_app"`
	FreqHz            float64  `json:"freq_hz"`
	SamplingPeriodMS  int      `json:"sampling_period_ms"`
	Omniscient        bool     `json:"omniscient_collection"`
	CounterRegisters  int      `json:"counter_registers"`
	MultiplexBatches  int      `json:"multiplex_batches"`
	RunsPerApp        int      `json:"runs_per_application"`
	EventNames        []string `json:"event_names"`
	ClassNames        []string `json:"class_names"`
	BenignArchetypes  []string `json:"benign_archetypes"`
	FeatureNormalised string   `json:"feature_normalisation"`
}

// Manifest builds the provenance record for this configuration.
func (c Config) Manifest() Manifest {
	cfg := c.fill()
	counts := c.Counts()
	m := Manifest{
		Counts:            make(map[string]int, len(counts)),
		Scale:             cfg.Scale,
		Seed:              cfg.Seed,
		BudgetInstrs:      cfg.Budget,
		SamplesPerApp:     cfg.SamplesPerApp,
		FreqHz:            cfg.FreqHz,
		SamplingPeriodMS:  10,
		Omniscient:        cfg.Omniscient,
		CounterRegisters:  hpc.MaxProgrammable,
		MultiplexBatches:  len(hpc.MultiplexSchedule(hpc.AllEvents())),
		EventNames:        FeatureNames(),
		ClassNames:        ClassNames(),
		BenignArchetypes:  workload.BenignArchetypes(),
		FeatureNormalised: "events per 1000 retired instructions (fixed-function counter)",
	}
	m.RunsPerApp = m.MultiplexBatches
	if cfg.Omniscient {
		m.RunsPerApp = 1
	}
	for class, n := range counts {
		m.Counts[class.String()] = n
		m.Total += n
	}
	return m
}

// WriteJSON writes the manifest as indented JSON with a generation
// timestamp comment field.
func (m Manifest) WriteJSON(w io.Writer, now time.Time) error {
	type stamped struct {
		GeneratedAt string `json:"generated_at,omitempty"`
		Manifest
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	s := stamped{Manifest: m}
	if !now.IsZero() {
		s.GeneratedAt = now.UTC().Format(time.RFC3339)
	}
	return enc.Encode(s)
}
