package monitor

import (
	"errors"
	"math"
	"sync"
	"testing"
)

// scriptScorer returns a scripted sequence of scores; the feature vector's
// first element selects the script position when non-negative.
type scriptScorer struct {
	scores []float64
	pos    int
}

func (s *scriptScorer) MalwareScore(features []float64) (float64, error) {
	if len(features) > 0 && features[0] < 0 {
		return 0, errors.New("scripted failure")
	}
	v := s.scores[s.pos%len(s.scores)]
	s.pos++
	return v, nil
}

// constScorer always returns the same score.
type constScorer float64

func (c constScorer) MalwareScore([]float64) (float64, error) { return float64(c), nil }

func TestConfigValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil scorer accepted")
	}
	bad := []Config{
		{Alpha: -1},
		{Alpha: 2},
		{RaiseThreshold: 0.3, ClearThreshold: 0.5},
		{MinSamples: -1},
	}
	for _, cfg := range bad {
		if _, err := New(constScorer(0.5), cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if _, err := New(constScorer(0.5), Config{}); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestAlarmRaisesAfterWarmup(t *testing.T) {
	m, err := New(constScorer(0.95), Config{MinSamples: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		ev, err := m.Observe(nil)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Alarm {
			t.Fatalf("alarm raised during warm-up at sample %d", i)
		}
	}
	ev, _ := m.Observe(nil)
	if !ev.Alarm || !ev.Changed {
		t.Fatalf("alarm did not raise after warm-up: %+v", ev)
	}
	ev, _ = m.Observe(nil)
	if !ev.Alarm || ev.Changed {
		t.Fatalf("alarm must stay raised without a new transition: %+v", ev)
	}
	if !m.Alarmed() || m.Samples() != 4 {
		t.Fatal("monitor state wrong")
	}
}

func TestHysteresis(t *testing.T) {
	// Score oscillates around the raise threshold; hysteresis must keep
	// the alarm stable once raised until the score drops well below.
	script := &scriptScorer{scores: []float64{
		0.9, 0.9, 0.9, // raise
		0.55, 0.55, 0.55, // inside the hysteresis band: stays raised
		0.05, 0.05, 0.05, 0.05, // clears
	}}
	m, err := New(script, Config{Alpha: 0.5, RaiseThreshold: 0.6, ClearThreshold: 0.4, MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for i := 0; i < 10; i++ {
		ev, err := m.Observe(nil)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if !events[0].Alarm {
		t.Fatal("alarm did not raise immediately with MinSamples=1")
	}
	for i := 3; i < 6; i++ {
		if !events[i].Alarm {
			t.Fatalf("alarm dropped inside hysteresis band at %d", i)
		}
	}
	if events[9].Alarm {
		t.Fatal("alarm did not clear after sustained low scores")
	}
	raises := 0
	for _, ev := range events {
		if ev.Changed && ev.Alarm {
			raises++
		}
	}
	if raises != 1 {
		t.Fatalf("alarm raised %d times, want exactly 1 (hysteresis)", raises)
	}
}

func TestEWMASmoothing(t *testing.T) {
	script := &scriptScorer{scores: []float64{1, 0, 0, 0}}
	m, _ := New(script, Config{Alpha: 0.5, MinSamples: 1})
	ev, _ := m.Observe(nil)
	if ev.Smoothed != 1 {
		t.Fatalf("first sample seeds the EWMA: %v", ev.Smoothed)
	}
	ev, _ = m.Observe(nil)
	if math.Abs(ev.Smoothed-0.5) > 1e-12 {
		t.Fatalf("smoothed=%v, want 0.5", ev.Smoothed)
	}
	ev, _ = m.Observe(nil)
	if math.Abs(ev.Smoothed-0.25) > 1e-12 {
		t.Fatalf("smoothed=%v, want 0.25", ev.Smoothed)
	}
}

func TestObserveError(t *testing.T) {
	m, _ := New(&scriptScorer{scores: []float64{0.5}}, Config{})
	if _, err := m.Observe([]float64{-1}); err == nil {
		t.Fatal("scorer error swallowed")
	}
}

func TestReset(t *testing.T) {
	m, _ := New(constScorer(0.99), Config{MinSamples: 1})
	m.Observe(nil)
	m.Observe(nil)
	if !m.Alarmed() {
		t.Fatal("expected alarm")
	}
	m.Reset()
	if m.Alarmed() || m.Samples() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestTrackerPerAppIsolation(t *testing.T) {
	tr, err := NewTracker(constScorer(0.9), Config{MinSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	// App A gets enough samples to alarm; app B does not.
	for i := 0; i < 4; i++ {
		if _, err := tr.Observe("a", nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Observe("b", nil); err != nil {
		t.Fatal(err)
	}
	alarmed := tr.Alarmed()
	if len(alarmed) != 1 || alarmed[0] != "a" {
		t.Fatalf("alarmed=%v, want [a]", alarmed)
	}
	active := tr.Active()
	if len(active) != 2 || active[0] != "a" || active[1] != "b" {
		t.Fatalf("active=%v", active)
	}

	sum, ok := tr.Close("a")
	if !ok {
		t.Fatal("close failed")
	}
	if sum.Samples != 4 || sum.Alarms != 1 || !sum.AlarmActive {
		t.Fatalf("summary %+v", sum)
	}
	if _, ok := tr.Close("a"); ok {
		t.Fatal("double close succeeded")
	}
	if len(tr.Active()) != 1 {
		t.Fatal("close did not remove the app")
	}
}

func TestTrackerValidation(t *testing.T) {
	if _, err := NewTracker(nil, Config{}); err == nil {
		t.Fatal("nil scorer accepted")
	}
	if _, err := NewTracker(constScorer(0), Config{Alpha: 5}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestTrackerConcurrentApps(t *testing.T) {
	tr, err := NewTracker(constScorer(0.7), Config{MinSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			app := string(rune('a' + g))
			for i := 0; i < 100; i++ {
				if _, err := tr.Observe(app, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if len(tr.Active()) != 8 {
		t.Fatalf("active=%d, want 8", len(tr.Active()))
	}
	for _, app := range tr.Active() {
		sum, _ := tr.Close(app)
		if sum.Samples != 100 {
			t.Fatalf("%s samples=%d", app, sum.Samples)
		}
	}
}
